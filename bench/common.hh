/**
 * @file
 * Shared bench harness: loads the 90-trace suite (scaled by env
 * CONSTABLE_TRACE_OPS, optionally truncated by CONSTABLE_SUITE_LIMIT),
 * runs configurations in parallel, and prints the per-category tables the
 * paper's figures report.
 */

#ifndef CONSTABLE_BENCH_COMMON_HH
#define CONSTABLE_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "inspector/load_inspector.hh"
#include "sim/batch.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace constable {
namespace bench {

/** One prepared workload: spec, trace, and offline analysis. */
struct Workload
{
    WorkloadSpec spec;
    Trace trace;
    LoadInspectorResult inspection;
};

inline size_t
suiteLimit()
{
    if (const char* env = std::getenv("CONSTABLE_SUITE_LIMIT")) {
        long v = std::atol(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return SIZE_MAX;
}

/** Generate (in parallel) the evaluation suite with offline inspection. */
inline std::vector<Workload>
prepareSuite(bool inspect = true)
{
    auto specs = paperSuite(defaultTraceOps());
    if (specs.size() > suiteLimit())
        specs.resize(suiteLimit());
    std::vector<Workload> out(specs.size());
    parallelFor(specs.size(), [&](size_t i) {
        out[i].spec = specs[i];
        out[i].trace = generateTrace(specs[i]);
        if (inspect)
            out[i].inspection = inspectLoads(out[i].trace);
    });
    return out;
}

/** Suite views consumed by runMatrix(): trace pointers plus (optionally)
 *  per-workload global-stable PC sets with stable addresses. */
struct SuiteMatrixInputs
{
    std::vector<const Trace*> traces;
    std::vector<std::unordered_set<PC>> gsSets;
    std::vector<const std::unordered_set<PC>*> gs; ///< points into gsSets

    SuiteMatrixInputs() = default;
    // gs points into gsSets' heap storage: moving the vectors keeps those
    // element addresses valid, but a copy would alias the source object.
    SuiteMatrixInputs(const SuiteMatrixInputs&) = delete;
    SuiteMatrixInputs& operator=(const SuiteMatrixInputs&) = delete;
    SuiteMatrixInputs(SuiteMatrixInputs&&) = default;
    SuiteMatrixInputs& operator=(SuiteMatrixInputs&&) = default;
};

inline SuiteMatrixInputs
matrixInputs(const std::vector<Workload>& suite, bool use_gs = true)
{
    SuiteMatrixInputs in;
    in.traces.reserve(suite.size());
    for (const Workload& w : suite)
        in.traces.push_back(&w.trace);
    if (use_gs) {
        in.gsSets.reserve(suite.size());
        for (const Workload& w : suite)
            in.gsSets.push_back(w.inspection.globalStablePcs());
        in.gs.reserve(suite.size());
        for (const auto& s : in.gsSets)
            in.gs.push_back(&s);
    }
    return in;
}

/** Row-independent matrix column from a mechanism preset. */
inline ConfigFactory
fixedMech(MechanismConfig mech, CoreConfig core = CoreConfig{})
{
    return [mech = std::move(mech), core](size_t) {
        return SystemConfig { core, mech };
    };
}

/** SMT2 trace-pair rows for runSmtMatrix() from suite pairings. */
inline std::vector<std::pair<const Trace*, const Trace*>>
matrixSmtPairs(const std::vector<Workload>& suite)
{
    std::vector<std::pair<const Trace*, const Trace*>> out;
    for (auto [a, b] : smtPairs(suite.size()))
        out.emplace_back(&suite[a].trace, &suite[b].trace);
    return out;
}

/** Run one mechanism config over every workload, in parallel. */
inline std::vector<RunResult>
runAll(const std::vector<Workload>& suite,
       const std::function<MechanismConfig(const Workload&)>& mech,
       const CoreConfig& core = CoreConfig{}, bool use_gs_stats = true)
{
    std::vector<RunResult> out(suite.size());
    std::vector<std::unordered_set<PC>> gs(suite.size());
    parallelFor(suite.size(), [&](size_t i) {
        gs[i] = suite[i].inspection.globalStablePcs();
        SystemConfig cfg { core, mech(suite[i]) };
        out[i] = runTrace(suite[i].trace, cfg,
                          use_gs_stats ? &gs[i] : nullptr);
    });
    return out;
}

/** Per-category and overall geomean of per-workload ratios. */
inline void
printCategoryGeomeans(const std::string& header,
                      const std::vector<Workload>& suite,
                      const std::vector<std::vector<double>>& series,
                      const std::vector<std::string>& series_names)
{
    std::map<std::string, std::vector<size_t>> byCat;
    for (size_t i = 0; i < suite.size(); ++i)
        byCat[suite[i].spec.category].push_back(i);

    std::printf("%s\n", header.c_str());
    std::printf("%-14s", "config");
    for (const auto& [cat, idx] : byCat)
        std::printf("%12s", cat.c_str());
    std::printf("%12s\n", "GEOMEAN");
    for (size_t s = 0; s < series.size(); ++s) {
        std::printf("%-14s", series_names[s].c_str());
        for (const auto& [cat, idxs] : byCat) {
            std::vector<double> vals;
            for (size_t i : idxs)
                vals.push_back(series[s][i]);
            std::printf("%12.4f", geomean(vals));
        }
        std::printf("%12.4f\n", geomean(series[s]));
    }
}

/** Per-category and overall arithmetic mean (for fraction-type series). */
inline void
printCategoryMeans(const std::string& header,
                   const std::vector<Workload>& suite,
                   const std::vector<std::vector<double>>& series,
                   const std::vector<std::string>& series_names,
                   double scale = 100.0, const char* unit = "%")
{
    std::map<std::string, std::vector<size_t>> byCat;
    for (size_t i = 0; i < suite.size(); ++i)
        byCat[suite[i].spec.category].push_back(i);

    std::printf("%s\n", header.c_str());
    std::printf("%-26s", "series");
    for (const auto& [cat, idx] : byCat)
        std::printf("%12s", cat.c_str());
    std::printf("%12s\n", "AVG");
    for (size_t s = 0; s < series.size(); ++s) {
        std::printf("%-26s", series_names[s].c_str());
        for (const auto& [cat, idxs] : byCat) {
            std::vector<double> vals;
            for (size_t i : idxs)
                vals.push_back(series[s][i]);
            std::printf("%11.2f%s", scale * mean(vals), unit);
        }
        std::printf("%11.2f%s\n", scale * mean(series[s]), unit);
    }
}

/** Box-and-whisker summary line per category (Figs 9, 18, 21). */
inline void
printCategoryBoxWhisker(const std::string& header,
                        const std::vector<Workload>& suite,
                        const std::vector<double>& samples)
{
    std::map<std::string, std::vector<double>> byCat;
    for (size_t i = 0; i < suite.size(); ++i)
        byCat[suite[i].spec.category].push_back(samples[i]);
    std::printf("%s\n", header.c_str());
    for (const auto& [cat, vals] : byCat) {
        std::printf("  %-12s %s\n", cat.c_str(),
                    BoxWhisker::from(vals).str().c_str());
    }
    std::printf("  %-12s %s\n", "ALL",
                BoxWhisker::from(samples).str().c_str());
}

/** Ratio of speedups helper. */
inline std::vector<double>
speedups(const std::vector<RunResult>& test,
         const std::vector<RunResult>& base)
{
    std::vector<double> out(test.size());
    for (size_t i = 0; i < test.size(); ++i)
        out[i] = speedup(test[i], base[i]);
    return out;
}

} // namespace bench
} // namespace constable

#endif
