/**
 * @file
 * Reproduces paper Fig 3: (a) fraction of dynamic loads that are
 * global-stable, (b) their addressing-mode distribution, (c) their
 * inter-occurrence-distance distribution, (d) distance by addressing mode.
 * Paper reference values: (a) AVG 34.2%; (b) 20% PC-rel / 42.6% stack-rel /
 * 37.4% reg-rel; (c) bimodal with ~31.9% under 50 and ~31.8% over 250.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig03", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    // Offline study: no matrix cells to share, so non-reporting shards of
    // a fleet just stay silent (the reporting shard prints everything).
    if (!opts.printsReport())
        return 0;

    std::vector<std::vector<double>> fracs(1);
    std::vector<std::vector<double>> modes(3);
    std::vector<std::vector<double>> dist(4);
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto& r = suite.inspection(i);
        fracs[0].push_back(r.globalStableFrac());
        modes[0].push_back(r.modeFrac(AddrMode::PcRel));
        modes[1].push_back(r.modeFrac(AddrMode::StackRel));
        modes[2].push_back(r.modeFrac(AddrMode::RegRel));
        for (size_t b = 0; b < 4; ++b)
            dist[b].push_back(r.distanceHist.bucketFrac(b));
    }

    suite.printMeans("Fig 3(a): global-stable fraction of dynamic loads "
                     "(paper AVG: 34.2%)",
                     fracs, { "global-stable" });
    std::printf("\n");
    suite.printMeans("Fig 3(b): addressing-mode distribution of "
                     "global-stable loads (paper: 20/42.6/37.4%)",
                     modes,
                     { "PC-relative", "Stack-relative", "Reg-relative" });
    std::printf("\n");
    suite.printMeans("Fig 3(c): inter-occurrence distance of global-"
                     "stable loads (paper: bimodal, ~32%/32% ends)",
                     dist, { "[0,50)", "[50,100)", "[100,250)", "250+" });

    // Fig 3(d): distance distribution per addressing mode (suite-wide).
    std::printf("\nFig 3(d): distance distribution by addressing mode\n");
    std::printf("%-16s%10s%10s%10s%10s\n", "mode", "[0,50)", "[50,100)",
                "[100,250)", "250+");
    const AddrMode order[3] = { AddrMode::PcRel, AddrMode::StackRel,
                                AddrMode::RegRel };
    for (AddrMode m : order) {
        Histogram agg({ 50, 100, 250 });
        for (size_t i = 0; i < suite.size(); ++i) {
            const auto& h =
                suite.inspection(i).distByMode[static_cast<unsigned>(m)];
            for (size_t b = 0; b < 4; ++b)
                agg.add(b == 0 ? 0 : (b == 1 ? 50 : (b == 2 ? 100 : 250)),
                        h.bucketCount(b));
        }
        std::printf("%-16s", addrModeName(m).c_str());
        for (size_t b = 0; b < 4; ++b)
            std::printf("%9.1f%%", 100.0 * agg.bucketFrac(b));
        std::printf("\n");
    }
    return 0;
}
