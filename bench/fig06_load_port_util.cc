/**
 * @file
 * Reproduces paper Fig 6: (a) fraction of cycles with at least one load
 * port utilized (paper AVG: 32.7% on baseline+EVES), and (b) the fraction
 * of load-utilized cycles where a global-stable load occupies a port while
 * a non-global-stable load waits (paper AVG: 23.0%).
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig06", opts))
        return 0;
    Suite suite = Suite::prepare(opts);
    auto res = Experiment("fig06", suite, opts)
                   .addPreset("eves")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    std::vector<std::vector<double>> util(1), cat(3);
    for (size_t i = 0; i < suite.size(); ++i) {
        const StatSet& s = res.at(i, "eves").stats;
        double cycles = s.get("cycles");
        double lu = s.get("cycles.loadUtil");
        util[0].push_back(ratio(lu, cycles));
        double gsWait = s.get("cycles.gsOccupiedWait");
        double gsNoWait = s.get("cycles.gsOccupiedNoWait");
        cat[0].push_back(ratio(gsWait, lu));
        cat[1].push_back(ratio(gsNoWait, lu));
        cat[2].push_back(ratio(lu - gsWait - gsNoWait, lu));
    }

    res.printMeans("Fig 6(a): load-utilized cycle fraction "
                   "(paper AVG: 32.7%)",
                   util, { "load-utilized" });
    std::printf("\n");
    res.printMeans(
        "Fig 6(b): load-utilized cycle categories (paper: 23.0% "
        "gs-occupied-while-waiting)",
        cat,
        { "gs busy, non-gs waits", "gs busy, none waits", "non-gs only" });
    return 0;
}
