/**
 * @file
 * Reproduces paper Fig 7 (§4.4 headroom study): Ideal Stable LVP, Ideal
 * Stable LVP + data-fetch elimination, 2x load execution width, and Ideal
 * Constable, over the baseline.
 * Paper reference: 1.043 / 1.0669 / 1.088 / 1.091.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto lvp = runAll(suite, [](const Workload& w) {
        return idealMech(IdealMode::StableLvp,
                         w.inspection.globalStablePcs());
    });
    auto nofetch = runAll(suite, [](const Workload& w) {
        return idealMech(IdealMode::StableLvpNoFetch,
                         w.inspection.globalStablePcs());
    });
    CoreConfig wide;
    wide.loadPorts *= 2;
    auto width2 = runAll(
        suite, [](const Workload&) { return baselineMech(); }, wide);
    auto ideal = runAll(suite, [](const Workload& w) {
        return idealMech(IdealMode::Constable,
                         w.inspection.globalStablePcs());
    });

    printCategoryGeomeans(
        "Fig 7: headroom over baseline "
        "(paper: LVP 1.043, LVP+noFetch 1.067, 2xWidth 1.088, Ideal 1.091)",
        suite,
        { speedups(lvp, base), speedups(nofetch, base),
          speedups(width2, base), speedups(ideal, base) },
        { "IdealLVP", "LVP+noFetch", "2xLoadWidth", "IdealConst" });
    return 0;
}
