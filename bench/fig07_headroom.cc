/**
 * @file
 * Reproduces paper Fig 7 (§4.4 headroom study): Ideal Stable LVP, Ideal
 * Stable LVP + data-fetch elimination, 2x load execution width, and Ideal
 * Constable, over the baseline.
 * Paper reference: 1.043 / 1.0669 / 1.088 / 1.091.
 */

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig07", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    CoreConfig wide;
    wide.loadPorts *= 2;

    auto res =
        Experiment("fig07", suite, opts)
            .addPreset("baseline")
            .addPreset("ideal-stable-lvp")
            .addPreset("ideal-stable-lvp-nofetch")
            .add("width2", mechFor("baseline"), wide)
            .addPreset("ideal-constable")
            .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    res.printGeomeans(
        "Fig 7: headroom over baseline "
        "(paper: LVP 1.043, LVP+noFetch 1.067, 2xWidth 1.088, Ideal 1.091)",
        { res.speedups("ideal-stable-lvp", "baseline"),
          res.speedups("ideal-stable-lvp-nofetch", "baseline"),
          res.speedups("width2", "baseline"),
          res.speedups("ideal-constable", "baseline") },
        { "IdealLVP", "LVP+noFetch", "2xLoadWidth", "IdealConst" });
    return 0;
}
