/**
 * @file
 * Reproduces paper Fig 9: (a) SLD can_eliminate updates per rename cycle
 * (paper: 0.28 average; 98.23% of cycles have two or fewer), and (b) the
 * performance change from letting wrong-path instructions update
 * Constable's structures (paper: 0.2% average absolute change; 82 of 90
 * workloads under 1%).
 */

#include <cmath>
#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig09", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    MechanismConfig noWp = mechFor("constable");
    noWp.constable.wrongPathUpdates = false;

    auto res = Experiment("fig09", suite, opts)
                   .addPreset("constable")
                   .add("noWrongPath", noWp)
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    std::vector<double> updates =
        res.statColumn("constable", "sld.updates.perCycle");
    double leTwoSum = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const StatSet& s = res.at(i, "constable").stats;
        // Histogram buckets: [0,1) [1,2) [2,3) [3,4) 4+.
        leTwoSum += s.get("sld.updates.hist.0") +
                    s.get("sld.updates.hist.1") +
                    s.get("sld.updates.hist.2");
    }
    res.printBoxWhisker(
        "Fig 9(a): SLD updates per cycle (paper mean: 0.28)", updates);
    std::printf("  cycles with <= 2 updates: %.2f%% (paper: 98.23%%)\n\n",
                100.0 * leTwoSum / static_cast<double>(suite.size()));

    auto relative = res.speedups("noWrongPath", "constable");
    std::vector<double> change;
    unsigned under1pct = 0;
    for (double r : relative) {
        double c = r - 1.0;
        change.push_back(c);
        if (std::abs(c) < 0.01)
            ++under1pct;
    }
    res.printBoxWhisker(
        "Fig 9(b): performance change, correct-path-only updates vs "
        "all-path updates (paper avg: 0.2%)",
        change);
    std::printf("  workloads with <1%% absolute change: %u / %zu "
                "(paper: 82 / 90)\n",
                under1pct, suite.size());
    return 0;
}
