/**
 * @file
 * Reproduces paper Fig 9: (a) SLD can_eliminate updates per rename cycle
 * (paper: 0.28 average; 98.23% of cycles have two or fewer), and (b) the
 * performance change from letting wrong-path instructions update
 * Constable's structures (paper: 0.2% average absolute change; 82 of 90
 * workloads under 1%).
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });

    std::vector<double> updates;
    double leTwoSum = 0;
    for (const auto& r : cons) {
        updates.push_back(r.stats.get("sld.updates.perCycle"));
        // Histogram buckets: [0,1) [1,2) [2,3) [3,4) 4+.
        leTwoSum += r.stats.get("sld.updates.hist.0") +
                    r.stats.get("sld.updates.hist.1") +
                    r.stats.get("sld.updates.hist.2");
    }
    printCategoryBoxWhisker(
        "Fig 9(a): SLD updates per cycle (paper mean: 0.28)", suite,
        updates);
    std::printf("  cycles with <= 2 updates: %.2f%% (paper: 98.23%%)\n\n",
                100.0 * leTwoSum / static_cast<double>(cons.size()));

    MechanismConfig noWp = constableMech();
    noWp.constable.wrongPathUpdates = false;
    auto consNoWp = runAll(suite, [&](const Workload&) { return noWp; });

    std::vector<double> change;
    unsigned under1pct = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        double c = speedup(consNoWp[i], cons[i]) - 1.0;
        change.push_back(c);
        if (std::abs(c) < 0.01)
            ++under1pct;
    }
    printCategoryBoxWhisker(
        "Fig 9(b): performance change, correct-path-only updates vs "
        "all-path updates (paper avg: 0.2%)",
        suite, change);
    std::printf("  workloads with <1%% absolute change: %u / %zu "
                "(paper: 82 / 90)\n",
                under1pct, suite.size());
    return 0;
}
