/**
 * @file
 * Reproduces paper Fig 11: geomean speedup over the baseline (noSMT) of
 * EVES, Constable, EVES+Constable, and EVES+Ideal Constable.
 * Paper reference: 1.047 / 1.051 / 1.085 / 1.103.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto eves = runAll(suite, [](const Workload&) { return evesMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });
    auto both = runAll(
        suite, [](const Workload&) { return evesPlusConstableMech(); });
    auto ideal = runAll(suite, [](const Workload& w) {
        return evesPlusIdealConstableMech(w.inspection.globalStablePcs());
    });

    printCategoryGeomeans(
        "Fig 11: speedup over baseline, noSMT "
        "(paper: EVES 1.047, Constable 1.051, E+C 1.085, E+Ideal 1.103)",
        suite,
        { speedups(eves, base), speedups(cons, base), speedups(both, base),
          speedups(ideal, base) },
        { "EVES", "Constable", "EVES+Const", "EVES+Ideal" });
    return 0;
}
