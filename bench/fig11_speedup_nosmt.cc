/**
 * @file
 * Reproduces paper Fig 11: geomean speedup over the baseline (noSMT) of
 * EVES, Constable, EVES+Constable, and EVES+Ideal Constable.
 * Paper reference: 1.047 / 1.051 / 1.085 / 1.103.
 *
 * Runs as one named-config Experiment on the deterministic batch matrix;
 * --threads=1 (or CONSTABLE_THREADS=1) replays serially with identical
 * numbers, and --checkpoint-dir resumes an interrupted sweep.
 */

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig11", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    auto res =
        Experiment("fig11", suite, opts)
            .addPreset("baseline")
            .addPreset("eves")
            .addPreset("constable")
            .addPreset("eves+constable")
            .addPreset("eves+ideal-constable")
            .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    res.printGeomeans(
        "Fig 11: speedup over baseline, noSMT "
        "(paper: EVES 1.047, Constable 1.051, E+C 1.085, E+Ideal 1.103)",
        { res.speedups("eves", "baseline"),
          res.speedups("constable", "baseline"),
          res.speedups("eves+constable", "baseline"),
          res.speedups("eves+ideal-constable", "baseline") },
        { "EVES", "Constable", "EVES+Const", "EVES+Ideal" });
    return 0;
}
