/**
 * @file
 * Reproduces paper Fig 11: geomean speedup over the baseline (noSMT) of
 * EVES, Constable, EVES+Constable, and EVES+Ideal Constable.
 * Paper reference: 1.047 / 1.051 / 1.085 / 1.103.
 *
 * Runs as one {trace x config} matrix on the batch runner; set
 * CONSTABLE_THREADS=1 to replay serially (numbers are identical).
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto in = matrixInputs(suite);

    std::vector<ConfigFactory> configs = {
        fixedMech(baselineMech()),
        fixedMech(evesMech()),
        fixedMech(constableMech()),
        fixedMech(evesPlusConstableMech()),
        [&in](size_t row) {
            return SystemConfig { CoreConfig{}, evesPlusIdealConstableMech(
                in.gsSets[row]) };
        },
    };
    MatrixResult m = runMatrix(in.traces, configs, in.gs,
                               batchOptionsFromEnv());

    printCategoryGeomeans(
        "Fig 11: speedup over baseline, noSMT "
        "(paper: EVES 1.047, Constable 1.051, E+C 1.085, E+Ideal 1.103)",
        suite,
        { m.speedupsOver(1, 0), m.speedupsOver(2, 0), m.speedupsOver(3, 0),
          m.speedupsOver(4, 0) },
        { "EVES", "Constable", "EVES+Const", "EVES+Ideal" });
    return 0;
}
