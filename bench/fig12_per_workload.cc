/**
 * @file
 * Reproduces paper Fig 12: per-workload speedup line graph (sorted by EVES
 * speedup) for EVES, Constable and EVES+Constable. Paper reference:
 * Constable beats EVES on 60 of 90 workloads (by 4.9% on average); EVES
 * wins the remaining 30 (by 9.2%); the combination beats both everywhere.
 *
 * Runs as one {trace x config} matrix on the batch runner; set
 * CONSTABLE_THREADS=1 to replay serially (numbers are identical).
 */

#include <algorithm>
#include <numeric>

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto in = matrixInputs(suite);

    std::vector<ConfigFactory> configs = {
        fixedMech(baselineMech()),
        fixedMech(evesMech()),
        fixedMech(constableMech()),
        fixedMech(evesPlusConstableMech()),
    };
    MatrixResult m = runMatrix(in.traces, configs, in.gs,
                               batchOptionsFromEnv());

    auto se = m.speedupsOver(1, 0);
    auto sc = m.speedupsOver(2, 0);
    auto sb = m.speedupsOver(3, 0);

    std::vector<size_t> order(suite.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return se[a] < se[b]; });

    std::printf("Fig 12: per-workload speedups, sorted by EVES gain\n");
    std::printf("%4s %-34s%10s%10s%10s\n", "#", "workload", "EVES",
                "Constable", "E+C");
    unsigned consWins = 0;
    double consWinMargin = 0, evesWinMargin = 0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
        size_t i = order[rank];
        std::printf("%4zu %-34s%10.3f%10.3f%10.3f\n", rank + 1,
                    suite[i].spec.name.c_str(), se[i], sc[i], sb[i]);
        if (sc[i] >= se[i]) {
            ++consWins;
            consWinMargin += sc[i] / se[i] - 1.0;
        } else {
            evesWinMargin += se[i] / sc[i] - 1.0;
        }
    }
    size_t n = suite.size();
    std::printf("\nConstable wins %u / %zu workloads (avg margin %.1f%%); "
                "EVES wins %zu (avg margin %.1f%%)\n",
                consWins, n,
                consWins ? 100.0 * consWinMargin / consWins : 0.0,
                n - consWins,
                n - consWins ? 100.0 * evesWinMargin / (n - consWins) : 0.0);
    std::printf("(paper: Constable wins 60/90 by 4.9%%; EVES wins 30 by "
                "9.2%%)\n");
    return 0;
}
