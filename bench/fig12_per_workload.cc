/**
 * @file
 * Reproduces paper Fig 12: per-workload speedup line graph (sorted by EVES
 * speedup) for EVES, Constable and EVES+Constable. Paper reference:
 * Constable beats EVES on 60 of 90 workloads (by 4.9% on average); EVES
 * wins the remaining 30 (by 9.2%); the combination beats both everywhere.
 *
 * Runs as one named-config Experiment on the deterministic batch matrix;
 * --threads=1 (or CONSTABLE_THREADS=1) replays serially with identical
 * numbers.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig12", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    auto res = Experiment("fig12", suite, opts)
                   .addPreset("baseline")
                   .addPreset("eves")
                   .addPreset("constable")
                   .addPreset("eves+constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    auto se = res.speedups("eves", "baseline");
    auto sc = res.speedups("constable", "baseline");
    auto sb = res.speedups("eves+constable", "baseline");

    std::vector<size_t> order(suite.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return se[a] < se[b]; });

    std::printf("Fig 12: per-workload speedups, sorted by EVES gain\n");
    std::printf("%4s %-34s%10s%10s%10s\n", "#", "workload", "EVES",
                "Constable", "E+C");
    unsigned consWins = 0;
    double consWinMargin = 0, evesWinMargin = 0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
        size_t i = order[rank];
        std::printf("%4zu %-34s%10.3f%10.3f%10.3f\n", rank + 1,
                    suite.spec(i).name.c_str(), se[i], sc[i], sb[i]);
        if (sc[i] >= se[i]) {
            ++consWins;
            consWinMargin += sc[i] / se[i] - 1.0;
        } else {
            evesWinMargin += se[i] / sc[i] - 1.0;
        }
    }
    size_t n = suite.size();
    std::printf("\nConstable wins %u / %zu workloads (avg margin %.1f%%); "
                "EVES wins %zu (avg margin %.1f%%)\n",
                consWins, n,
                consWins ? 100.0 * consWinMargin / consWins : 0.0,
                n - consWins,
                n - consWins ? 100.0 * evesWinMargin / (n - consWins) : 0.0);
    std::printf("(paper: Constable wins 60/90 by 4.9%%; EVES wins 30 by "
                "9.2%%)\n");
    return 0;
}
