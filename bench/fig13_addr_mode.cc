/**
 * @file
 * Reproduces paper Fig 13: speedup when Constable eliminates only
 * PC-relative, only stack-relative, or only register-relative loads,
 * against the full mechanism. Paper reference: 1.011 / 1.026 / 1.018,
 * nearly additive to the full 1.051.
 */

#include "sim/experiment.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    Suite suite = Suite::prepare(opts);

    auto res = Experiment("fig13", suite, opts)
                   .add("baseline", baselineMech())
                   .add("pc-only", constableModeOnlyMech(AddrMode::PcRel))
                   .add("stack-only",
                        constableModeOnlyMech(AddrMode::StackRel))
                   .add("reg-only", constableModeOnlyMech(AddrMode::RegRel))
                   .add("all", constableMech())
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    res.printGeomeans(
        "Fig 13: speedup by eliminated addressing mode "
        "(paper: PC 1.011, stack 1.026, reg 1.018, all 1.051)",
        { res.speedups("pc-only", "baseline"),
          res.speedups("stack-only", "baseline"),
          res.speedups("reg-only", "baseline"),
          res.speedups("all", "baseline") },
        { "PC-rel only", "Stack only", "Reg only", "All loads" });
    return 0;
}
