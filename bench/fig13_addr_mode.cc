/**
 * @file
 * Reproduces paper Fig 13: speedup when Constable eliminates only
 * PC-relative, only stack-relative, or only register-relative loads,
 * against the full mechanism. Paper reference: 1.011 / 1.026 / 1.018,
 * nearly additive to the full 1.051.
 */

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig13", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    auto res = Experiment("fig13", suite, opts)
                   .addPreset("baseline")
                   .addPreset("constable-pcrel")
                   .addPreset("constable-stackrel")
                   .addPreset("constable-regrel")
                   .addPreset("constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    res.printGeomeans(
        "Fig 13: speedup by eliminated addressing mode "
        "(paper: PC 1.011, stack 1.026, reg 1.018, all 1.051)",
        { res.speedups("constable-pcrel", "baseline"),
          res.speedups("constable-stackrel", "baseline"),
          res.speedups("constable-regrel", "baseline"),
          res.speedups("constable", "baseline") },
        { "PC-rel only", "Stack only", "Reg only", "All loads" });
    // Byte-level fingerprint: the CI scenario-smoke job diffs this line
    // against a --mech/--scenario run of the same preset list.
    printResultFingerprint(res);
    return 0;
}
