/**
 * @file
 * Reproduces paper Fig 13: speedup when Constable eliminates only
 * PC-relative, only stack-relative, or only register-relative loads,
 * against the full mechanism. Paper reference: 1.011 / 1.026 / 1.018,
 * nearly additive to the full 1.051.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto pc = runAll(suite, [](const Workload&) {
        return constableModeOnlyMech(AddrMode::PcRel);
    });
    auto stack = runAll(suite, [](const Workload&) {
        return constableModeOnlyMech(AddrMode::StackRel);
    });
    auto reg = runAll(suite, [](const Workload&) {
        return constableModeOnlyMech(AddrMode::RegRel);
    });
    auto all = runAll(suite,
                      [](const Workload&) { return constableMech(); });

    printCategoryGeomeans(
        "Fig 13: speedup by eliminated addressing mode "
        "(paper: PC 1.011, stack 1.026, reg 1.018, all 1.051)",
        suite,
        { speedups(pc, base), speedups(stack, base), speedups(reg, base),
          speedups(all, base) },
        { "PC-rel only", "Stack only", "Reg only", "All loads" });
    return 0;
}
