/**
 * @file
 * Reproduces paper Fig 14: speedup over the baseline in the 2-way SMT
 * configuration (45 pairs). Paper reference: EVES 1.036, Constable 1.088,
 * EVES+Constable 1.113 — under SMT, Constable's load-resource relief
 * dominates and it clearly outruns EVES.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite(false);
    auto pairs = smtPairs(suite.size());

    auto runPairs = [&](const MechanismConfig& mech) {
        std::vector<RunResult> out(pairs.size());
        parallelFor(pairs.size(), [&](size_t i) {
            SystemConfig cfg { CoreConfig{}, mech };
            out[i] = runSmtPair(suite[pairs[i].first].trace,
                                suite[pairs[i].second].trace, cfg);
        });
        return out;
    };

    auto base = runPairs(baselineMech());
    auto eves = runPairs(evesMech());
    auto cons = runPairs(constableMech());
    auto both = runPairs(evesPlusConstableMech());

    auto gm = [&](const std::vector<RunResult>& rs) {
        std::vector<double> s;
        for (size_t i = 0; i < rs.size(); ++i)
            s.push_back(speedup(rs[i], base[i]));
        return geomean(s);
    };

    std::printf("Fig 14: SMT2 speedup over baseline, 45 pairs "
                "(paper: EVES 1.036, Constable 1.088, E+C 1.113)\n");
    std::printf("%-14s%12s\n", "config", "GEOMEAN");
    std::printf("%-14s%12.4f\n", "EVES", gm(eves));
    std::printf("%-14s%12.4f\n", "Constable", gm(cons));
    std::printf("%-14s%12.4f\n", "EVES+Const", gm(both));
    return 0;
}
