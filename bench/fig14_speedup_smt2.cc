/**
 * @file
 * Reproduces paper Fig 14: speedup over the baseline in the 2-way SMT
 * configuration (45 pairs). Paper reference: EVES 1.036, Constable 1.088,
 * EVES+Constable 1.113 — under SMT, Constable's load-resource relief
 * dominates and it clearly outruns EVES.
 *
 * Runs as one {pair x config} matrix on the batch runner; set
 * CONSTABLE_THREADS=1 to replay serially (numbers are identical).
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite(false);
    auto pairs = matrixSmtPairs(suite);

    std::vector<ConfigFactory> configs = {
        fixedMech(baselineMech()),
        fixedMech(evesMech()),
        fixedMech(constableMech()),
        fixedMech(evesPlusConstableMech()),
    };
    MatrixResult m = runSmtMatrix(pairs, configs, batchOptionsFromEnv());

    std::printf("Fig 14: SMT2 speedup over baseline, 45 pairs "
                "(paper: EVES 1.036, Constable 1.088, E+C 1.113)\n");
    std::printf("%-14s%12s\n", "config", "GEOMEAN");
    std::printf("%-14s%12.4f\n", "EVES", geomean(m.speedupsOver(1, 0)));
    std::printf("%-14s%12.4f\n", "Constable", geomean(m.speedupsOver(2, 0)));
    std::printf("%-14s%12.4f\n", "EVES+Const", geomean(m.speedupsOver(3, 0)));
    return 0;
}
