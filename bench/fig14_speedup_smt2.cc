/**
 * @file
 * Reproduces paper Fig 14: speedup over the baseline in the 2-way SMT
 * configuration (45 pairs). Paper reference: EVES 1.036, Constable 1.088,
 * EVES+Constable 1.113 — under SMT, Constable's load-resource relief
 * dominates and it clearly outruns EVES.
 *
 * Runs as one named-config SMT Experiment on the deterministic batch
 * matrix; --threads=1 (or CONSTABLE_THREADS=1) replays serially with
 * identical numbers.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig14", opts))
        return 0;
    Suite suite = Suite::prepare(opts, /*inspect=*/false);

    auto res = Experiment("fig14", suite, opts)
                   .addPreset("baseline")
                   .addPreset("eves")
                   .addPreset("constable")
                   .addPreset("eves+constable")
                   .runSmt();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    std::printf("Fig 14: SMT2 speedup over baseline, 45 pairs "
                "(paper: EVES 1.036, Constable 1.088, E+C 1.113)\n");
    std::printf("%-14s%12s\n", "config", "GEOMEAN");
    std::printf("%-14s%12.4f\n", "EVES",
                geomean(res.speedups("eves", "baseline")));
    std::printf("%-14s%12.4f\n", "Constable",
                geomean(res.speedups("constable", "baseline")));
    std::printf("%-14s%12.4f\n", "EVES+Const",
                geomean(res.speedups("eves+constable", "baseline")));
    return 0;
}
