/**
 * @file
 * Reproduces paper Fig 15: Constable vs ELAR and RFP, standalone and
 * combined. Paper reference: ELAR 1.007, RFP 1.0448, Constable 1.051,
 * ELAR+Constable 1.054, RFP+Constable 1.081.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto elar = runAll(suite, [](const Workload&) { return elarMech(); });
    auto rfp = runAll(suite, [](const Workload&) { return rfpMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });
    auto ec = runAll(suite,
                     [](const Workload&) { return elarPlusConstableMech(); });
    auto rc = runAll(suite,
                     [](const Workload&) { return rfpPlusConstableMech(); });

    printCategoryGeomeans(
        "Fig 15: Constable vs prior works "
        "(paper: ELAR 1.007, RFP 1.045, Const 1.051, E+C 1.054, R+C 1.081)",
        suite,
        { speedups(elar, base), speedups(rfp, base), speedups(cons, base),
          speedups(ec, base), speedups(rc, base) },
        { "ELAR", "RFP", "Constable", "ELAR+Const", "RFP+Const" });
    return 0;
}
