/**
 * @file
 * Reproduces paper Fig 15: Constable vs ELAR and RFP, standalone and
 * combined. Paper reference: ELAR 1.007, RFP 1.0448, Constable 1.051,
 * ELAR+Constable 1.054, RFP+Constable 1.081.
 */

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig15", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    auto res = Experiment("fig15", suite, opts)
                   .addPreset("baseline")
                   .addPreset("elar")
                   .addPreset("rfp")
                   .addPreset("constable")
                   .addPreset("elar+constable")
                   .addPreset("rfp+constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    res.printGeomeans(
        "Fig 15: Constable vs prior works "
        "(paper: ELAR 1.007, RFP 1.045, Const 1.051, E+C 1.054, R+C 1.081)",
        { res.speedups("elar", "baseline"),
          res.speedups("rfp", "baseline"),
          res.speedups("constable", "baseline"),
          res.speedups("elar+constable", "baseline"),
          res.speedups("rfp+constable", "baseline") },
        { "ELAR", "RFP", "Constable", "ELAR+Const", "RFP+Const" });
    return 0;
}
