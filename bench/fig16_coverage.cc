/**
 * @file
 * Reproduces paper Fig 16: load coverage — the fraction of loads either
 * value-predicted (EVES) or eliminated (Constable). Paper reference:
 * EVES 27.3%, Constable 23.5%, EVES+Constable 35.5%, EVES+Ideal 41.6%.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

namespace {

std::vector<double>
coverage(const std::vector<RunResult>& rs)
{
    std::vector<double> out;
    for (const auto& r : rs) {
        out.push_back(ratio(r.stats.get("loads.eliminated") +
                                r.stats.get("loads.vp"),
                            r.stats.get("loads.retired")));
    }
    return out;
}

} // namespace

int
main()
{
    auto suite = prepareSuite();
    auto eves = runAll(suite, [](const Workload&) { return evesMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });
    auto both = runAll(
        suite, [](const Workload&) { return evesPlusConstableMech(); });
    auto ideal = runAll(suite, [](const Workload& w) {
        return evesPlusIdealConstableMech(w.inspection.globalStablePcs());
    });

    printCategoryMeans(
        "Fig 16: load coverage (paper: EVES 27.3%, Constable 23.5%, "
        "E+C 35.5%, E+Ideal 41.6%)",
        suite,
        { coverage(eves), coverage(cons), coverage(both), coverage(ideal) },
        { "EVES", "Constable", "EVES+Const", "EVES+Ideal" });
    return 0;
}
