/**
 * @file
 * Reproduces paper Fig 16: load coverage — the fraction of loads either
 * value-predicted (EVES) or eliminated (Constable). Paper reference:
 * EVES 27.3%, Constable 23.5%, EVES+Constable 35.5%, EVES+Ideal 41.6%.
 */

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig16", opts))
        return 0;
    Suite suite = Suite::prepare(opts);

    auto res =
        Experiment("fig16", suite, opts)
            .addPreset("eves")
            .addPreset("constable")
            .addPreset("eves+constable")
            .addPreset("eves+ideal-constable")
            .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    auto coverage = [&](const std::string& cfg) {
        std::vector<double> out;
        for (size_t i = 0; i < suite.size(); ++i) {
            const StatSet& s = res.at(i, cfg).stats;
            out.push_back(ratio(s.get("loads.eliminated") +
                                    s.get("loads.vp"),
                                s.get("loads.retired")));
        }
        return out;
    };

    res.printMeans(
        "Fig 16: load coverage (paper: EVES 27.3%, Constable 23.5%, "
        "E+C 35.5%, E+Ideal 41.6%)",
        { coverage("eves"), coverage("constable"), coverage("eves+constable"),
          coverage("eves+ideal-constable") },
        { "EVES", "Constable", "EVES+Const", "EVES+Ideal" });
    return 0;
}
