/**
 * @file
 * Reproduces paper Fig 17 / §9.3.1: how many global-stable loads Constable
 * actually eliminates at runtime, per addressing mode, plus the loads
 * eliminated that are not global-stable (phase-stable only).
 * Paper reference: 56.4% of global-stable loads eliminated; PC-relative
 * highest (70.2%), register-relative lowest (33.2%); plus 13.5% extra
 * non-global-stable eliminations.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig17", opts))
        return 0;
    Suite suite = Suite::prepare(opts);
    auto res = Experiment("fig17", suite, opts)
                   .addPreset("constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    std::vector<std::vector<double>> rows(3);
    std::vector<std::vector<double>> perMode(3);
    for (size_t i = 0; i < suite.size(); ++i) {
        const StatSet& s = res.at(i, "constable").stats;
        double gs = s.get("loads.gs");
        rows[0].push_back(ratio(s.get("loads.gsEliminated"), gs));
        rows[1].push_back(ratio(gs - s.get("loads.gsEliminated"), gs));
        rows[2].push_back(ratio(s.get("loads.nonGsEliminated"), gs));

        // Runtime elimination rate by mode, over the inspection totals.
        const auto& insp = suite.inspection(i);
        double dynGs[3] = {
            static_cast<double>(insp.dynGlobalStableByMode[
                static_cast<unsigned>(AddrMode::PcRel)]),
            static_cast<double>(insp.dynGlobalStableByMode[
                static_cast<unsigned>(AddrMode::StackRel)]),
            static_cast<double>(insp.dynGlobalStableByMode[
                static_cast<unsigned>(AddrMode::RegRel)]),
        };
        perMode[0].push_back(ratio(s.get("loads.elim.pcRel"), dynGs[0]));
        perMode[1].push_back(ratio(s.get("loads.elim.stackRel"), dynGs[1]));
        perMode[2].push_back(ratio(s.get("loads.elim.regRel"), dynGs[2]));
    }

    res.printMeans(
        "Fig 17: eliminated fraction of global-stable loads "
        "(paper: 56.4% eliminated; +13.5% extra non-global-stable)",
        rows,
        { "gs eliminated", "gs not eliminated", "non-gs eliminated" });
    std::printf("\n");
    res.printMeans(
        "Fig 17 (by mode): eliminations / dynamic global-stable loads "
        "(paper: PC-rel 70.2%, reg-rel 33.2%)",
        perMode, { "PC-relative", "Stack-relative", "Reg-relative" });
    return 0;
}
