/**
 * @file
 * Reproduces paper Fig 18: reduction in (a) reservation-station
 * allocations and (b) L1D accesses with Constable over the baseline.
 * Paper reference: RS allocations -8.8% avg (up to -35.1%); L1D accesses
 * -26.0% avg; Server highest, ISPEC17 lowest.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });

    std::vector<double> rs, l1d;
    for (size_t i = 0; i < suite.size(); ++i) {
        rs.push_back(1.0 - ratio(cons[i].stats.get("rs.allocs"),
                                 base[i].stats.get("rs.allocs")));
        double cl = cons[i].stats.get("mem.l1d.reads") +
                    cons[i].stats.get("mem.l1d.writes");
        double bl = base[i].stats.get("mem.l1d.reads") +
                    base[i].stats.get("mem.l1d.writes");
        l1d.push_back(1.0 - ratio(cl, bl));
    }
    printCategoryBoxWhisker(
        "Fig 18(a): RS allocation reduction (paper avg: 8.8%)", suite, rs);
    std::printf("\n");
    printCategoryBoxWhisker(
        "Fig 18(b): L1D access reduction (paper avg: 26.0%)", suite, l1d);
    return 0;
}
