/**
 * @file
 * Reproduces paper Fig 18: reduction in (a) reservation-station
 * allocations and (b) L1D accesses with Constable over the baseline.
 * Paper reference: RS allocations -8.8% avg (up to -35.1%); L1D accesses
 * -26.0% avg; Server highest, ISPEC17 lowest.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig18", opts))
        return 0;
    Suite suite = Suite::prepare(opts);
    auto res = Experiment("fig18", suite, opts)
                   .addPreset("baseline")
                   .addPreset("constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    std::vector<double> rs, l1d;
    for (size_t i = 0; i < suite.size(); ++i) {
        const StatSet& c = res.at(i, "constable").stats;
        const StatSet& b = res.at(i, "baseline").stats;
        rs.push_back(1.0 - ratio(c.get("rs.allocs"), b.get("rs.allocs")));
        double cl = c.get("mem.l1d.reads") + c.get("mem.l1d.writes");
        double bl = b.get("mem.l1d.reads") + b.get("mem.l1d.writes");
        l1d.push_back(1.0 - ratio(cl, bl));
    }
    res.printBoxWhisker(
        "Fig 18(a): RS allocation reduction (paper avg: 8.8%)", rs);
    std::printf("\n");
    res.printBoxWhisker(
        "Fig 18(b): L1D access reduction (paper avg: 26.0%)", l1d);
    return 0;
}
