/**
 * @file
 * Reproduces paper Fig 19: core dynamic power of EVES, Constable and
 * EVES+Constable normalized to the baseline, with the OOO and MEU unit
 * breakdowns. Paper reference: Constable -3.4% core power (EVES only
 * -0.2%); RS sub-unit -5.1%; L1D sub-unit -9.1%.
 */

#include <cstdio>

#include "power/power.hh"
#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig19", opts))
        return 0;
    Suite suite = Suite::prepare(opts);
    auto res = Experiment("fig19", suite, opts)
                   .addPreset("baseline")
                   .addPreset("eves")
                   .addPreset("constable")
                   .addPreset("eves+constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    struct Agg
    {
        double total = 0, rs = 0, rat = 0, rob = 0, l1d = 0, dtlb = 0,
               fe = 0, eu = 0;
    };
    auto aggregate = [&](const std::string& cfg) {
        Agg a;
        for (size_t i = 0; i < suite.size(); ++i) {
            PowerBreakdown b = computePower(res.at(i, cfg).stats);
            a.total += b.total();
            a.rs += b.oooRs;
            a.rat += b.oooRat;
            a.rob += b.oooRob;
            a.l1d += b.meuL1d;
            a.dtlb += b.meuDtlb;
            a.fe += b.fe;
            a.eu += b.eu;
        }
        return a;
    };

    Agg ab = aggregate("baseline"), ae = aggregate("eves"),
        ac = aggregate("constable"), a2 = aggregate("eves+constable");

    auto row = [&](const char* name, const Agg& a) {
        std::printf("%-12s%10.4f%10.4f%10.4f%10.4f%10.4f%10.4f\n", name,
                    a.total / ab.total, a.fe / ab.fe, a.rs / ab.rs,
                    a.rob / ab.rob, a.l1d / ab.l1d, a.dtlb / ab.dtlb);
    };
    std::printf("Fig 19: core dynamic energy normalized to baseline "
                "(paper: Constable total 0.966, RS 0.949, L1D 0.909)\n");
    std::printf("%-12s%10s%10s%10s%10s%10s%10s\n", "config", "total", "FE",
                "OOO.RS", "OOO.ROB", "MEU.L1D", "MEU.DTLB");
    row("baseline", ab);
    row("EVES", ae);
    row("Constable", ac);
    row("EVES+Const", a2);
    return 0;
}
