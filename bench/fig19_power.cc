/**
 * @file
 * Reproduces paper Fig 19: core dynamic power of EVES, Constable and
 * EVES+Constable normalized to the baseline, with the OOO and MEU unit
 * breakdowns. Paper reference: Constable -3.4% core power (EVES only
 * -0.2%); RS sub-unit -5.1%; L1D sub-unit -9.1%.
 */

#include "bench/common.hh"
#include "power/power.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto eves = runAll(suite, [](const Workload&) { return evesMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });
    auto both = runAll(
        suite, [](const Workload&) { return evesPlusConstableMech(); });

    struct Agg
    {
        double total = 0, rs = 0, rat = 0, rob = 0, l1d = 0, dtlb = 0,
               fe = 0, eu = 0;
    };
    auto aggregate = [&](const std::vector<RunResult>& rs) {
        Agg a;
        for (const auto& r : rs) {
            PowerBreakdown b = computePower(r.stats);
            a.total += b.total();
            a.rs += b.oooRs;
            a.rat += b.oooRat;
            a.rob += b.oooRob;
            a.l1d += b.meuL1d;
            a.dtlb += b.meuDtlb;
            a.fe += b.fe;
            a.eu += b.eu;
        }
        return a;
    };

    Agg ab = aggregate(base), ae = aggregate(eves), ac = aggregate(cons),
        a2 = aggregate(both);

    auto row = [&](const char* name, const Agg& a) {
        std::printf("%-12s%10.4f%10.4f%10.4f%10.4f%10.4f%10.4f\n", name,
                    a.total / ab.total, a.fe / ab.fe, a.rs / ab.rs,
                    a.rob / ab.rob, a.l1d / ab.l1d, a.dtlb / ab.dtlb);
    };
    std::printf("Fig 19: core dynamic energy normalized to baseline "
                "(paper: Constable total 0.966, RS 0.949, L1D 0.909)\n");
    std::printf("%-12s%10s%10s%10s%10s%10s%10s\n", "config", "total", "FE",
                "OOO.RS", "OOO.ROB", "MEU.L1D", "MEU.DTLB");
    row("baseline", ab);
    row("EVES", ae);
    row("Constable", ac);
    row("EVES+Const", a2);
    return 0;
}
