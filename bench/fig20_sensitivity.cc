/**
 * @file
 * Reproduces paper Fig 20 (appendix A.1): sensitivity of the baseline and
 * Constable to (a) load execution width 3..6 and (b) pipeline-depth
 * scaling 1..4x. Paper reference: Constable with 3 load units matches a
 * baseline with one extra unit; Constable keeps adding ~3.4-5% at every
 * scaling point.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite(false);

    std::printf("Fig 20(a): load execution width sweep "
                "(speedup over width-3 baseline)\n");
    std::printf("%8s%12s%12s\n", "width", "baseline", "constable");
    std::vector<RunResult> ref;
    for (unsigned width = 3; width <= 6; ++width) {
        CoreConfig core;
        core.loadPorts = width;
        auto b = runAll(suite, [](const Workload&) { return baselineMech(); },
                        core, false);
        auto c = runAll(suite,
                        [](const Workload&) { return constableMech(); },
                        core, false);
        if (width == 3)
            ref = b;
        std::printf("%8u%12.4f%12.4f\n", width,
                    geomean(speedups(b, ref)), geomean(speedups(c, ref)));
    }

    std::printf("\nFig 20(b): pipeline depth sweep "
                "(speedup over 1x baseline)\n");
    std::printf("%8s%12s%12s\n", "scale", "baseline", "constable");
    ref.clear();
    for (unsigned scale = 1; scale <= 4; ++scale) {
        CoreConfig core;
        core.depthScale = static_cast<double>(scale);
        auto b = runAll(suite, [](const Workload&) { return baselineMech(); },
                        core, false);
        auto c = runAll(suite,
                        [](const Workload&) { return constableMech(); },
                        core, false);
        if (scale == 1)
            ref = b;
        std::printf("%8u%12.4f%12.4f\n", scale,
                    geomean(speedups(b, ref)), geomean(speedups(c, ref)));
    }
    return 0;
}
