/**
 * @file
 * Reproduces paper Fig 20 (appendix A.1): sensitivity of the baseline and
 * Constable to (a) load execution width 3..6 and (b) pipeline-depth
 * scaling 1..4x. Paper reference: Constable with 3 load units matches a
 * baseline with one extra unit; Constable keeps adding ~3.4-5% at every
 * scaling point.
 *
 * Each sweep is one Experiment whose config names encode the swept value
 * (base-w4, const-d2, ...), so the whole sensitivity study is a single
 * checkpointable matrix per sweep.
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig20", opts))
        return 0;
    Suite suite = Suite::prepare(opts, /*inspect=*/false);

    Experiment width("fig20a-width", suite, opts);
    for (unsigned w = 3; w <= 6; ++w) {
        CoreConfig core;
        core.loadPorts = w;
        width.add("base-w" + std::to_string(w), mechFor("baseline"), core);
        width.add("const-w" + std::to_string(w), mechFor("constable"), core);
    }
    auto wres = width.run();

    Experiment depth("fig20b-depth", suite, opts);
    for (unsigned d = 1; d <= 4; ++d) {
        CoreConfig core;
        core.depthScale = static_cast<double>(d);
        depth.add("base-d" + std::to_string(d), mechFor("baseline"), core);
        depth.add("const-d" + std::to_string(d), mechFor("constable"), core);
    }
    auto dres = depth.run();

    // Sharded fleets: the gate sits after BOTH sweeps so a non-reporting
    // shard still contributes cells to each of them.
    if (!opts.printsReport())
        return 0;

    std::printf("Fig 20(a): load execution width sweep "
                "(speedup over width-3 baseline)\n");
    std::printf("%8s%12s%12s\n", "width", "baseline", "constable");
    for (unsigned w = 3; w <= 6; ++w) {
        std::string ws = std::to_string(w);
        std::printf("%8u%12.4f%12.4f\n", w,
                    geomean(wres.speedups("base-w" + ws, "base-w3")),
                    geomean(wres.speedups("const-w" + ws, "base-w3")));
    }

    std::printf("\nFig 20(b): pipeline depth sweep "
                "(speedup over 1x baseline)\n");
    std::printf("%8s%12s%12s\n", "scale", "baseline", "constable");
    for (unsigned d = 1; d <= 4; ++d) {
        std::string ds = std::to_string(d);
        std::printf("%8u%12.4f%12.4f\n", d,
                    geomean(dres.speedups("base-d" + ds, "base-d1")),
                    geomean(dres.speedups("const-d" + ds, "base-d1")));
    }
    return 0;
}
