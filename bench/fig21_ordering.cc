/**
 * @file
 * Reproduces paper Fig 21 (appendix A.2): (a) fraction of eliminated loads
 * that violate memory ordering (paper avg: 0.09%; <0.5% in 86/90
 * workloads) and (b) the increase in ROB allocations due to the resulting
 * re-executions (paper avg: +0.3%; <1% in 79/90 workloads).
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig21", opts))
        return 0;
    Suite suite = Suite::prepare(opts);
    auto res = Experiment("fig21", suite, opts)
                   .addPreset("baseline")
                   .addPreset("constable")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    std::vector<double> viol, robInc;
    unsigned under05 = 0, under1 = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const StatSet& c = res.at(i, "constable").stats;
        double v = ratio(c.get("ordering.elimViolations"),
                         c.get("loads.eliminated"));
        viol.push_back(v);
        if (v < 0.005)
            ++under05;
        double ri = ratio(c.get("rob.allocs"),
                          res.at(i, "baseline").stats.get("rob.allocs")) -
                    1.0;
        robInc.push_back(ri);
        if (ri < 0.01)
            ++under1;
    }
    res.printBoxWhisker(
        "Fig 21(a): eliminated loads violating ordering "
        "(paper avg: 0.09%)",
        viol);
    std::printf("  workloads under 0.5%%: %u / %zu (paper: 86 / 90)\n\n",
                under05, suite.size());
    res.printBoxWhisker(
        "Fig 21(b): ROB allocation increase (paper avg: +0.3%)", robInc);
    std::printf("  workloads under 1%%: %u / %zu (paper: 79 / 90)\n",
                under1, suite.size());
    return 0;
}
