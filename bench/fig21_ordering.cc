/**
 * @file
 * Reproduces paper Fig 21 (appendix A.2): (a) fraction of eliminated loads
 * that violate memory ordering (paper avg: 0.09%; <0.5% in 86/90
 * workloads) and (b) the increase in ROB allocations due to the resulting
 * re-executions (paper avg: +0.3%; <1% in 79/90 workloads).
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });

    std::vector<double> viol, robInc;
    unsigned under05 = 0, under1 = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        double v = ratio(cons[i].stats.get("ordering.elimViolations"),
                         cons[i].stats.get("loads.eliminated"));
        viol.push_back(v);
        if (v < 0.005)
            ++under05;
        double ri = ratio(cons[i].stats.get("rob.allocs"),
                          base[i].stats.get("rob.allocs")) - 1.0;
        robInc.push_back(ri);
        if (ri < 0.01)
            ++under1;
    }
    printCategoryBoxWhisker(
        "Fig 21(a): eliminated loads violating ordering "
        "(paper avg: 0.09%)",
        suite, viol);
    std::printf("  workloads under 0.5%%: %u / %zu (paper: 86 / 90)\n\n",
                under05, suite.size());
    printCategoryBoxWhisker(
        "Fig 21(b): ROB allocation increase (paper avg: +0.3%)", suite,
        robInc);
    std::printf("  workloads under 1%%: %u / %zu (paper: 79 / 90)\n",
                under1, suite.size());
    return 0;
}
