/**
 * @file
 * Reproduces paper Fig 22 (appendix A.3): the Constable-AMT-I variant
 * (AMT invalidated on every L1D eviction, no CV-bit pinning) against
 * vanilla Constable. Paper reference: speedup 1.051 vs 1.042; coverage
 * 23.5% vs 20.2% — CV-bit pinning is the better design point.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto suite = prepareSuite();
    auto base = runAll(suite, [](const Workload&) { return baselineMech(); });
    auto cons = runAll(suite,
                       [](const Workload&) { return constableMech(); });
    auto amtI = runAll(suite,
                       [](const Workload&) { return constableAmtIMech(); });

    auto cov = [](const std::vector<RunResult>& rs) {
        std::vector<double> out;
        for (const auto& r : rs)
            out.push_back(ratio(r.stats.get("loads.eliminated"),
                                r.stats.get("loads.retired")));
        return out;
    };

    printCategoryGeomeans(
        "Fig 22(a): speedup, CV-bit pinning vs AMT-invalidate-on-evict "
        "(paper: 1.051 vs 1.042)",
        suite, { speedups(cons, base), speedups(amtI, base) },
        { "Constable", "Const-AMT-I" });
    std::printf("\n");
    printCategoryMeans(
        "Fig 22(b): elimination coverage (paper: 23.5% vs 20.2%)", suite,
        { cov(cons), cov(amtI) }, { "Constable", "Const-AMT-I" });
    return 0;
}
