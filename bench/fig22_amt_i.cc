/**
 * @file
 * Reproduces paper Fig 22 (appendix A.3): the Constable-AMT-I variant
 * (AMT invalidated on every L1D eviction, no CV-bit pinning) against
 * vanilla Constable. Paper reference: speedup 1.051 vs 1.042; coverage
 * 23.5% vs 20.2% — CV-bit pinning is the better design point.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig22", opts))
        return 0;
    Suite suite = Suite::prepare(opts);
    auto res = Experiment("fig22", suite, opts)
                   .addPreset("baseline")
                   .addPreset("constable")
                   .addPreset("constable-amt-i")
                   .run();

    // Sharded fleets: every worker computed (and merged) the full
    // matrix above; only the reporting shard prints it.
    if (!opts.printsReport())
        return 0;

    auto cov = [&](const std::string& cfg) {
        std::vector<double> out;
        for (size_t i = 0; i < suite.size(); ++i) {
            const StatSet& s = res.at(i, cfg).stats;
            out.push_back(ratio(s.get("loads.eliminated"),
                                s.get("loads.retired")));
        }
        return out;
    };

    res.printGeomeans(
        "Fig 22(a): speedup, CV-bit pinning vs AMT-invalidate-on-evict "
        "(paper: 1.051 vs 1.042)",
        { res.speedups("constable", "baseline"),
          res.speedups("constable-amt-i", "baseline") },
        { "Constable", "Const-AMT-I" });
    std::printf("\n");
    res.printMeans(
        "Fig 22(b): elimination coverage (paper: 23.5% vs 20.2%)",
        { cov("constable"), cov("constable-amt-i") }, { "Constable", "Const-AMT-I" });
    return 0;
}
