/**
 * @file
 * Reproduces paper Fig 23/24 (appendix B): the effect of doubling the
 * architectural registers (Intel APX, 16 -> 32) on dynamic load counts and
 * on the global-stable load population, over the SPEC-like categories.
 * Paper reference: APX removes ~11.7% of dynamic loads but the
 * global-stable fraction stays nearly the same (13.7% -> 14.2%);
 * stack-relative share of global-stable loads drops (21.1% -> 16%) while
 * the PC-relative share is unchanged — compile-time register allocation
 * and Constable are largely orthogonal.
 */

#include "bench/common.hh"

using namespace constable;
using namespace constable::bench;

int
main()
{
    auto specs = paperSuite(defaultTraceOps());
    std::vector<WorkloadSpec> spec16;
    for (const auto& s : specs) {
        if (s.category == "FSPEC17" || s.category == "ISPEC17")
            spec16.push_back(s);
    }
    if (spec16.size() > suiteLimit())
        spec16.resize(suiteLimit());

    struct Row
    {
        double loadReduction = 0;
        double gsFrac16 = 0, gsFrac32 = 0;
        double stackShare16 = 0, stackShare32 = 0;
        double pcShare16 = 0, pcShare32 = 0;
    };
    std::vector<Row> rows(spec16.size());
    parallelFor(spec16.size(), [&](size_t i) {
        WorkloadSpec s16 = spec16[i];
        WorkloadSpec s32 = spec16[i];
        s32.numArchRegs = 32;
        Trace t16 = generateTrace(s16);
        Trace t32 = generateTrace(s32);
        auto i16 = inspectLoads(t16);
        auto i32 = inspectLoads(t32);
        double l16 = static_cast<double>(i16.dynLoads) /
                     static_cast<double>(i16.dynOps);
        double l32 = static_cast<double>(i32.dynLoads) /
                     static_cast<double>(i32.dynOps);
        rows[i].loadReduction = 1.0 - l32 / l16;
        rows[i].gsFrac16 = i16.globalStableFrac();
        rows[i].gsFrac32 = i32.globalStableFrac();
        rows[i].stackShare16 = i16.modeFrac(AddrMode::StackRel);
        rows[i].stackShare32 = i32.modeFrac(AddrMode::StackRel);
        rows[i].pcShare16 = i16.modeFrac(AddrMode::PcRel);
        rows[i].pcShare32 = i32.modeFrac(AddrMode::PcRel);
    });

    double lr = 0, g16 = 0, g32 = 0, s16 = 0, s32 = 0, p16 = 0, p32 = 0;
    for (const auto& r : rows) {
        lr += r.loadReduction;
        g16 += r.gsFrac16;
        g32 += r.gsFrac32;
        s16 += r.stackShare16;
        s32 += r.stackShare32;
        p16 += r.pcShare16;
        p32 += r.pcShare32;
    }
    double n = static_cast<double>(rows.size());
    std::printf("Fig 23: APX (32 architectural registers) study over "
                "%zu SPEC-like traces\n", rows.size());
    std::printf("  dynamic-load reduction with APX: %.1f%% "
                "(paper: 11.7%%)\n", 100.0 * lr / n);
    std::printf("  global-stable fraction: %.1f%% (16 regs) vs %.1f%% "
                "(APX) (paper: 13.7%% vs 14.2%%)\n",
                100.0 * g16 / n, 100.0 * g32 / n);
    std::printf("\nFig 24: global-stable addressing-mode shares\n");
    std::printf("  stack-relative: %.1f%% -> %.1f%% with APX "
                "(paper: 21.1%% -> 16%%)\n",
                100.0 * s16 / n, 100.0 * s32 / n);
    std::printf("  PC-relative:    %.1f%% -> %.1f%% with APX "
                "(paper: 38.3%% -> 38.9%%)\n",
                100.0 * p16 / n, 100.0 * p32 / n);
    return 0;
}
