/**
 * @file
 * Reproduces paper Fig 23/24 (appendix B): the effect of doubling the
 * architectural registers (Intel APX, 16 -> 32) on dynamic load counts and
 * on the global-stable load population, over the SPEC-like categories.
 * Paper reference: APX removes ~11.7% of dynamic loads but the
 * global-stable fraction stays nearly the same (13.7% -> 14.2%);
 * stack-relative share of global-stable loads drops (21.1% -> 16%) while
 * the PC-relative share is unchanged — compile-time register allocation
 * and Constable are largely orthogonal.
 *
 * Pure offline study: both register-width variants go through
 * Suite::fromSpecs, which generates (or cache-loads) and inspects every
 * trace on the batch pool.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/scenario.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);
    // --mech / --scenario replace the compiled-in figure with a
    // named registry sweep (sim/scenario.hh).
    if (runNamedSweepIfRequested("fig23", opts))
        return 0;

    auto specs = paperSuite(opts.traceOps);
    std::vector<WorkloadSpec> spec16;
    for (const auto& s : specs) {
        if (s.category == "FSPEC17" || s.category == "ISPEC17")
            spec16.push_back(s);
    }
    if (spec16.size() > opts.suiteLimit)
        spec16.resize(opts.suiteLimit);
    std::vector<WorkloadSpec> spec32 = spec16;
    for (auto& s : spec32) {
        s.name += "/apx";
        s.numArchRegs = 32;
    }

    Suite s16 = Suite::fromSpecs(std::move(spec16), opts);
    Suite s32 = Suite::fromSpecs(std::move(spec32), opts);

    // Offline study: no matrix cells to share, so non-reporting shards of
    // a fleet just stay silent (the reporting shard prints everything).
    if (!opts.printsReport())
        return 0;

    double lr = 0, g16 = 0, g32 = 0, st16 = 0, st32 = 0, p16 = 0, p32 = 0;
    for (size_t i = 0; i < s16.size(); ++i) {
        const auto& i16 = s16.inspection(i);
        const auto& i32 = s32.inspection(i);
        double l16 = static_cast<double>(i16.dynLoads) /
                     static_cast<double>(i16.dynOps);
        double l32 = static_cast<double>(i32.dynLoads) /
                     static_cast<double>(i32.dynOps);
        lr += 1.0 - l32 / l16;
        g16 += i16.globalStableFrac();
        g32 += i32.globalStableFrac();
        st16 += i16.modeFrac(AddrMode::StackRel);
        st32 += i32.modeFrac(AddrMode::StackRel);
        p16 += i16.modeFrac(AddrMode::PcRel);
        p32 += i32.modeFrac(AddrMode::PcRel);
    }
    double n = static_cast<double>(s16.size());
    std::printf("Fig 23: APX (32 architectural registers) study over "
                "%zu SPEC-like traces\n", s16.size());
    std::printf("  dynamic-load reduction with APX: %.1f%% "
                "(paper: 11.7%%)\n", 100.0 * lr / n);
    std::printf("  global-stable fraction: %.1f%% (16 regs) vs %.1f%% "
                "(APX) (paper: 13.7%% vs 14.2%%)\n",
                100.0 * g16 / n, 100.0 * g32 / n);
    std::printf("\nFig 24: global-stable addressing-mode shares\n");
    std::printf("  stack-relative: %.1f%% -> %.1f%% with APX "
                "(paper: 21.1%% -> 16%%)\n",
                100.0 * st16 / n, 100.0 * st32 / n);
    std::printf("  PC-relative:    %.1f%% -> %.1f%% with APX "
                "(paper: 38.3%% -> 38.9%%)\n",
                100.0 * p16 / n, 100.0 * p32 / n);
    return 0;
}
