/**
 * @file
 * google-benchmark microbenchmarks of Constable's hardware-structure
 * models: SLD lookup/train, RMT insert/drain, AMT insert/invalidate, and
 * the end-to-end engine rename path. These gauge simulator throughput
 * (not hardware latency) so regressions in the model's hot paths surface.
 */

#include <benchmark/benchmark.h>

#include "core/constable.hh"

namespace constable {
namespace {

void
BM_SldLookup(benchmark::State& state)
{
    Sld sld;
    for (PC pc = 0; pc < 512; ++pc)
        sld.train(0x400000 + 4 * pc, 0x1000 + 64 * pc, pc, false);
    PC pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sld.lookup(0x400000 + 4 * (pc++ % 512)));
    }
}
BENCHMARK(BM_SldLookup);

void
BM_SldTrain(benchmark::State& state)
{
    Sld sld;
    PC pc = 0;
    for (auto _ : state) {
        sld.train(0x400000 + 4 * (pc % 512), 0x1000, 42, false);
        ++pc;
    }
}
BENCHMARK(BM_SldTrain);

void
BM_RmtInsertDrain(benchmark::State& state)
{
    Rmt rmt;
    std::vector<PC> evicted;
    PC pc = 0;
    for (auto _ : state) {
        rmt.insert(RBX, 0x400000 + 4 * (pc++ % 8), evicted);
        if (pc % 8 == 0) {
            benchmark::DoNotOptimize(rmt.drainOnWrite(RBX));
            evicted.clear();
        }
    }
}
BENCHMARK(BM_RmtInsertDrain);

void
BM_AmtInsertInvalidate(benchmark::State& state)
{
    Amt amt;
    std::vector<PC> evicted;
    Addr a = 0;
    for (auto _ : state) {
        amt.insert(0x10000 + 64 * (a % 128), 0x400000 + 4 * (a % 64),
                   evicted);
        if (a % 4 == 3)
            benchmark::DoNotOptimize(
                amt.invalidate(0x10000 + 64 * (a % 128)));
        ++a;
        evicted.clear();
    }
}
BENCHMARK(BM_AmtInsertInvalidate);

void
BM_EngineRenamePath(benchmark::State& state)
{
    ConstableEngine engine;
    // Warm one PC to elimination.
    for (int i = 0; i < 40; ++i) {
        ElimDecision d = engine.renameLoad(0x400000, AddrMode::PcRel);
        if (d.eliminate) {
            engine.releaseEliminated();
            break;
        }
        engine.writebackLoad(0x400000, 0x1000, 42, d.likelyStable,
                             { kNoReg, kNoReg, kNoReg });
    }
    for (auto _ : state) {
        ElimDecision d = engine.renameLoad(0x400000, AddrMode::PcRel);
        benchmark::DoNotOptimize(d);
        if (d.eliminate)
            engine.releaseEliminated();
    }
}
BENCHMARK(BM_EngineRenamePath);

} // namespace
} // namespace constable

BENCHMARK_MAIN();
