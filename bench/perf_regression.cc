/**
 * @file
 * Wall-clock regression bench for the simulator itself (not the modeled
 * core): times a {suite x mechanism-preset} sweep through the Experiment
 * API and reports simulated mega-ops per wall-second per preset, so every
 * PR leaves a recorded performance trajectory.
 *
 * Output is machine-readable JSON (BENCH_perf.json by default). With
 * --check-against=FILE the bench compares its total throughput against a
 * previously recorded file and exits non-zero on a regression beyond
 * --max-regression (CI gate).
 *
 *   ./build/bench/perf_regression                      # measure + write
 *   ./build/bench/perf_regression --repeats=3 \
 *       --check-against=bench/BENCH_perf_baseline.json # gate vs baseline
 *
 * Build Release (-O2, NDEBUG) for meaningful numbers; per-cell checkpoints
 * are force-disabled so every cell really simulates.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace constable {
namespace {

struct PerfFlags
{
    std::string jsonOut = "BENCH_perf.json";
    std::string checkAgainst;
    double maxRegression = 0.25;
    unsigned repeats = 1;
    /** > 1: also time the combined preset sweep serially vs forked across
     *  this many worker processes and record the scaling. */
    unsigned shardScaling = 0;
    /** Also time every preset in phase-sampled mode and record the
     *  effective (extrapolated-instructions / sampled-wall) throughput as
     *  its own series. Empty spec: the built-in sampling defaults. */
    bool sampledLeg = false;
    std::string sampledSpec;
};

struct PresetTiming
{
    std::string name;
    size_t cells = 0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double wallSeconds = 0.0;

    double mopsPerSec() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(instructions) / wallSeconds / 1e6;
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Minimal value extractor for the JSON this bench itself emits: finds
 * "key":<number> after position pos. Good enough for the regression gate
 * without a JSON dependency.
 */
bool
extractNumber(const std::string& json, const std::string& key, size_t pos,
              double& out)
{
    std::string needle = "\"" + key + "\":";
    size_t at = json.find(needle, pos);
    if (at == std::string::npos)
        return false;
    out = std::strtod(json.c_str() + at + needle.size(), nullptr);
    return true;
}

bool
readWholeFile(const std::string& path, std::string& out)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    out.resize(sz > 0 ? static_cast<size_t>(sz) : 0);
    size_t got = std::fread(out.data(), 1, out.size(), f);
    std::fclose(f);
    return got == out.size();
}

} // namespace

int
perfMain(int argc, char** argv)
{
    // Split this bench's own flags from the shared Experiment options.
    PerfFlags flags;
    std::vector<char*> rest;
    rest.push_back(argc > 0 ? argv[0] : const_cast<char*>("perf_regression"));
    auto valueOf = [&](const std::string& arg, int& i) -> std::string {
        if (auto eq = arg.find('='); eq != std::string::npos)
            return arg.substr(eq + 1);
        if (i + 1 >= argc)
            fatal(arg + " requires a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string flag = arg.substr(0, arg.find('='));
        if (flag == "--json-out") {
            flags.jsonOut = valueOf(arg, i);
        } else if (flag == "--check-against") {
            flags.checkAgainst = valueOf(arg, i);
        } else if (flag == "--max-regression") {
            flags.maxRegression = std::strtod(valueOf(arg, i).c_str(),
                                              nullptr);
        } else if (flag == "--repeats") {
            flags.repeats = static_cast<unsigned>(
                parseU64InRange("--repeats", valueOf(arg, i), 1, 1000));
        } else if (flag == "--shard-scaling") {
            flags.shardScaling = static_cast<unsigned>(
                parseU64Strict("--shard-scaling", valueOf(arg, i)));
        } else if (flag == "--sampled-leg") {
            flags.sampledLeg = true;
            if (arg.find('=') != std::string::npos)
                flags.sampledSpec = valueOf(arg, i);
        } else {
            if (flag == "--help" || flag == "-h") {
                std::printf(
                    "perf_regression extra options:\n"
                    "  --json-out=PATH        result JSON (default "
                    "BENCH_perf.json)\n"
                    "  --check-against=PATH   fail on throughput regression "
                    "vs this file\n"
                    "  --max-regression=F     allowed fractional slowdown "
                    "(default 0.25)\n"
                    "  --repeats=N            timed repeats, best-of "
                    "(default 1)\n"
                    "  --shard-scaling=N      also time the preset sweep "
                    "1-process vs N forked\n                         "
                    "workers and record the speedup\n"
                    "  --sampled-leg[=SPEC]   also time every preset "
                    "phase-sampled and record the\n                     "
                    "    effective Mops/s series (default spec if omitted)\n");
            }
            rest.push_back(argv[i]);
        }
    }

    ExperimentOptions opts = ExperimentOptions::fromArgs(
        static_cast<int>(rest.size()), rest.data());
    // A perf measurement must simulate every cell: checkpoint resume would
    // turn the sweep into file reads and time nothing.
    opts.checkpointDir.clear();

    std::printf("preparing suite (workloads x %zu ops)...\n", opts.traceOps);
    Suite suite = Suite::prepare(opts, /*inspect=*/false);

    const std::vector<std::pair<std::string, MechanismConfig>> presets = {
        { "baseline", mechFor("baseline") },
        { "constable", mechFor("constable") },
        { "eves", mechFor("eves") },
        { "eves+constable", mechFor("eves+constable") },
        { "elar+constable", mechFor("elar+constable") },
        { "rfp+constable", mechFor("rfp+constable") },
    };

    std::vector<PresetTiming> timings;
    uint64_t determinism = 0;
    for (const auto& [name, mech] : presets) {
        Experiment exp("perf_" + name, suite, opts);
        exp.add(name, mech);

        PresetTiming t;
        t.name = name;
        t.cells = suite.size();
        double best = -1.0;
        for (unsigned rep = 0; rep < flags.repeats; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            ExperimentResult res = exp.run();
            double secs = secondsSince(t0);
            if (best < 0.0 || secs < best) {
                best = secs;
                t.instructions = 0;
                t.cycles = 0;
                for (size_t row = 0; row < res.numRows(); ++row) {
                    t.instructions += res.at(row, 0).instructions;
                    t.cycles += res.at(row, 0).cycles;
                }
            }
            if (rep == 0) // repeats are identical; fold each preset once
                determinism ^= res.totalCycles();
        }
        t.wallSeconds = best;
        timings.push_back(t);
        std::printf("%-18s %6.3fs  %8.2f Mops/s  (%zu cells, %llu insts)\n",
                    name.c_str(), t.wallSeconds, t.mopsPerSec(), t.cells,
                    static_cast<unsigned long long>(t.instructions));
    }

    double totalSecs = 0.0;
    uint64_t totalInsts = 0;
    for (const PresetTiming& t : timings) {
        totalSecs += t.wallSeconds;
        totalInsts += t.instructions;
    }
    double totalMops =
        totalSecs <= 0.0 ? 0.0
                         : static_cast<double>(totalInsts) / totalSecs / 1e6;
    std::printf("total              %6.3fs  %8.2f Mops/s  (determinism "
                "%016llx)\n",
                totalSecs, totalMops,
                static_cast<unsigned long long>(determinism));

    // --------------------------------------------------------- sampled leg
    // Same presets in phase-sampled mode. A sampled RunResult reports
    // extrapolated whole-trace instructions, so mopsPerSec() here is
    // *effective* throughput — directly comparable to the full series
    // above, and only meaningfully >1x on long traces (see README
    // "Sampled simulation").
    std::vector<PresetTiming> sampledTimings;
    SampleOptions sampleSpec;
    double sampledSecs = 0.0, sampledMops = 0.0;
    if (flags.sampledLeg) {
        sampleSpec = flags.sampledSpec.empty()
                         ? [] {
                               SampleOptions s;
                               s.enabled = true;
                               return s;
                           }()
                         : SampleOptions::parse(flags.sampledSpec);
        ExperimentOptions sopts = opts;
        sopts.sample = sampleSpec;
        uint64_t sampledInsts = 0;
        for (const auto& [name, mech] : presets) {
            Experiment exp("perf_sampled_" + name, suite, sopts);
            exp.add(name, mech);
            PresetTiming t;
            t.name = name;
            t.cells = suite.size();
            double best = -1.0;
            for (unsigned rep = 0; rep < flags.repeats; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                ExperimentResult res = exp.run();
                double secs = secondsSince(t0);
                if (best < 0.0 || secs < best) {
                    best = secs;
                    t.instructions = 0;
                    t.cycles = 0;
                    for (size_t row = 0; row < res.numRows(); ++row) {
                        t.instructions += res.at(row, 0).instructions;
                        t.cycles += res.at(row, 0).cycles;
                    }
                }
            }
            t.wallSeconds = best;
            sampledTimings.push_back(t);
            sampledSecs += t.wallSeconds;
            sampledInsts += t.instructions;
            std::printf("%-18s %6.3fs  %8.2f eff-Mops/s  (sampled)\n",
                        name.c_str(), t.wallSeconds, t.mopsPerSec());
        }
        sampledMops = sampledSecs <= 0.0
                          ? 0.0
                          : static_cast<double>(sampledInsts) /
                                sampledSecs / 1e6;
        std::printf("sampled total      %6.3fs  %8.2f eff-Mops/s  "
                    "(%.2fx vs full, spec %s)\n",
                    sampledSecs, sampledMops,
                    totalMops > 0.0 ? sampledMops / totalMops : 0.0,
                    sampleSpec.spec().c_str());
    }

    // ------------------------------------------------ multi-process scaling
    // Times the combined preset sweep once serially and once forked across
    // N single-threaded worker processes (sim/shard.hh), verifying the
    // results agree, so the perf trajectory records what each shard buys.
    double scaleSerialSecs = 0.0, scaleShardedSecs = 0.0;
    if (flags.shardScaling > 1) {
        auto combined = [&](const ExperimentOptions& o) {
            Experiment exp("perf_shard_scaling", suite, o);
            for (const auto& [name, mech] : presets)
                exp.add(name, mech);
            return exp.run();
        };
        ExperimentOptions serial = opts;
        serial.threads = 1;
        serial.shards = 1;
        auto t0 = std::chrono::steady_clock::now();
        ExperimentResult sref = combined(serial);
        scaleSerialSecs = secondsSince(t0);

        ExperimentOptions sharded = opts;
        sharded.threads = 1; // processes, not threads, carry the fan-out
        sharded.shards = flags.shardScaling;
        t0 = std::chrono::steady_clock::now();
        ExperimentResult sres = combined(sharded);
        scaleShardedSecs = secondsSince(t0);

        if (sres.totalCycles() != sref.totalCycles())
            fatal("sharded sweep diverged from the serial reference");
        std::printf("shard scaling      %u procs: %6.3fs vs %6.3fs serial "
                    "(%.2fx)\n",
                    flags.shardScaling, scaleShardedSecs, scaleSerialSecs,
                    scaleShardedSecs > 0.0
                        ? scaleSerialSecs / scaleShardedSecs
                        : 0.0);
        unsigned cpus = std::thread::hardware_concurrency();
        if (cpus != 0 && cpus < flags.shardScaling) {
            std::printf("  (note: only %u CPU%s visible — CPU-bound cells "
                        "cannot speed up past that;\n   see the "
                        "sleep-cell scaling assertion in tests/"
                        "test_shard.cc for the harness ceiling)\n",
                        cpus, cpus == 1 ? "" : "s");
        }
    }

    // ------------------------------------------------------------- JSON out
    std::string json = "{\n  \"schema\": \"constable-perf-v1\",\n";
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "  \"suite\": {\"workloads\":%zu, \"trace_ops\":%zu, "
                      "\"threads\":%u, \"repeats\":%u},\n",
                      suite.size(), opts.traceOps, opts.threads,
                      flags.repeats);
        json += buf;
        json += "  \"presets\": [\n";
        for (size_t i = 0; i < timings.size(); ++i) {
            const PresetTiming& t = timings[i];
            std::snprintf(
                buf, sizeof(buf),
                "    {\"name\":\"%s\", \"cells\":%zu, "
                "\"instructions\":%llu, \"cycles\":%llu, "
                "\"wall_seconds\":%.6f, \"mops_per_sec\":%.3f}%s\n",
                t.name.c_str(), t.cells,
                static_cast<unsigned long long>(t.instructions),
                static_cast<unsigned long long>(t.cycles), t.wallSeconds,
                t.mopsPerSec(), i + 1 < timings.size() ? "," : "");
            json += buf;
        }
        json += "  ],\n";
        if (flags.shardScaling > 1) {
            std::snprintf(
                buf, sizeof(buf),
                "  \"shard_scaling\": {\"shards\":%u, \"host_cpus\":%u, "
                "\"serial_seconds\":%.6f, \"sharded_seconds\":%.6f, "
                "\"speedup\":%.3f},\n",
                flags.shardScaling, std::thread::hardware_concurrency(),
                scaleSerialSecs, scaleShardedSecs,
                scaleShardedSecs > 0.0 ? scaleSerialSecs / scaleShardedSecs
                                       : 0.0);
            json += buf;
        }
        if (flags.sampledLeg) {
            std::snprintf(buf, sizeof(buf),
                          "  \"sampled\": {\"spec\":\"%s\", \"presets\": [\n",
                          sampleSpec.spec().c_str());
            json += buf;
            for (size_t i = 0; i < sampledTimings.size(); ++i) {
                const PresetTiming& t = sampledTimings[i];
                std::snprintf(
                    buf, sizeof(buf),
                    "    {\"name\":\"%s\", \"wall_seconds\":%.6f, "
                    "\"effective_mops_per_sec\":%.3f}%s\n",
                    t.name.c_str(), t.wallSeconds, t.mopsPerSec(),
                    i + 1 < sampledTimings.size() ? "," : "");
                json += buf;
            }
            std::snprintf(
                buf, sizeof(buf),
                "  ], \"wall_seconds\":%.6f, "
                "\"effective_mops_per_sec\":%.3f, "
                "\"speedup_vs_full\":%.3f},\n",
                sampledSecs, sampledMops,
                totalMops > 0.0 ? sampledMops / totalMops : 0.0);
            json += buf;
        }
        std::snprintf(buf, sizeof(buf),
                      "  \"total\": {\"wall_seconds\":%.6f, "
                      "\"mops_per_sec\":%.3f}\n}\n",
                      totalSecs, totalMops);
        json += buf;
    }
    std::FILE* out = std::fopen(flags.jsonOut.c_str(), "wb");
    if (!out)
        fatal("cannot write " + flags.jsonOut);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", flags.jsonOut.c_str());

    // ------------------------------------------------------ regression gate
    // Gates per-preset Mops/s as well as the total: a regression confined
    // to one mechanism's hook path (e.g. constable's stability tables)
    // barely moves the 6-preset total, and the total-only gate used to
    // let exactly that class of slowdown through.
    if (!flags.checkAgainst.empty()) {
        std::string baseline;
        if (!readWholeFile(flags.checkAgainst, baseline))
            fatal("cannot read baseline " + flags.checkAgainst);
        size_t totalAt = baseline.find("\"total\"");
        double baseMops = 0.0;
        if (totalAt == std::string::npos ||
            !extractNumber(baseline, "mops_per_sec", totalAt, baseMops))
            fatal("baseline " + flags.checkAgainst +
                  " has no total mops_per_sec");
        int regressions = 0;
        // Full-fidelity presets only: scope the per-preset lookup to the
        // first "presets" array so the sampled section's entries (which
        // share names) can never be mistaken for baselines.
        size_t presetsAt = baseline.find("\"presets\"");
        size_t presetsEnd = presetsAt == std::string::npos
                                ? std::string::npos
                                : baseline.find(']', presetsAt);
        for (const PresetTiming& t : timings) {
            size_t at = baseline.find("\"name\":\"" + t.name + "\"",
                                      presetsAt);
            double base = 0.0;
            if (at == std::string::npos || at > presetsEnd ||
                !extractNumber(baseline, "mops_per_sec", at, base)) {
                std::printf("  %-18s no baseline entry; skipped\n",
                            t.name.c_str());
                continue;
            }
            double presetFloor = base * (1.0 - flags.maxRegression);
            std::printf("  %-18s current %8.2f vs baseline %8.2f Mops/s "
                        "(floor %8.2f)%s\n",
                        t.name.c_str(), t.mopsPerSec(), base, presetFloor,
                        t.mopsPerSec() < presetFloor ? "  REGRESSED" : "");
            if (t.mopsPerSec() < presetFloor) {
                std::fprintf(stderr,
                             "PERF REGRESSION: preset %s at %.2f Mops/s is "
                             "%.1f%% below baseline %.2f\n",
                             t.name.c_str(), t.mopsPerSec(),
                             100.0 * (1.0 - t.mopsPerSec() / base), base);
                ++regressions;
            }
        }
        double floor = baseMops * (1.0 - flags.maxRegression);
        std::printf("regression gate: current %.2f vs baseline %.2f Mops/s "
                    "(floor %.2f)\n",
                    totalMops, baseMops, floor);
        if (totalMops < floor) {
            std::fprintf(stderr,
                         "PERF REGRESSION: %.2f Mops/s is %.1f%% below "
                         "baseline %.2f\n",
                         totalMops, 100.0 * (1.0 - totalMops / baseMops),
                         baseMops);
            ++regressions;
        }
        if (regressions > 0)
            return 1;
        std::printf("regression gate passed (%zu presets + total)\n",
                    timings.size());
    }
    return 0;
}

} // namespace constable

int
main(int argc, char** argv)
{
    return constable::perfMain(argc, argv);
}
