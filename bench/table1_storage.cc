/**
 * @file
 * Reproduces paper Table 1: Constable's per-core storage overhead
 * (paper: SLD 7.9 KB, RMT 0.4 KB, AMT 4.0 KB, total 12.4 KB).
 */

#include <cstdio>

#include "core/storage.hh"

using namespace constable;

int
main()
{
    ConstableConfig cfg;
    std::printf("Table 1: Constable storage overhead "
                "(paper total: 12.4 KB)\n");
    std::printf("%-8s%12s%16s%12s\n", "struct", "entries", "bits/entry",
                "size KB");
    for (const auto& row : storageOverhead(cfg)) {
        std::printf("%-8s%12llu%16llu%12.2f\n", row.name.c_str(),
                    static_cast<unsigned long long>(row.entries),
                    static_cast<unsigned long long>(row.bitsPerEntry),
                    row.kb());
    }
    std::printf("%-8s%40.2f\n", "Total", totalStorageKb(cfg));
    return 0;
}
