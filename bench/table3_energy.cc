/**
 * @file
 * Reproduces paper Table 3: access energy, leakage power and area of
 * Constable's structures at 14 nm (constants transcribed from the paper;
 * CACTI is unavailable offline — see DESIGN.md).
 */

#include <cstdio>

#include "core/storage.hh"

using namespace constable;

int
main()
{
    std::printf("Table 3: Constable structure energy/leakage/area (14 nm)\n");
    std::printf("%-28s%10s%10s%12s%10s\n", "component", "read pJ",
                "write pJ", "leak mW", "area mm2");
    for (const auto& row : constableEnergyTable()) {
        std::printf("%-28s%10.2f%10.2f%12.2f%10.3f\n", row.name.c_str(),
                    row.readPj, row.writePj, row.leakageMw, row.areaMm2);
    }
    return 0;
}
