/**
 * @file
 * Scenario example: why do global-stable loads exist at all (paper §4.2)?
 * This example hand-builds the paper's two disassembly case studies as
 * micro-traces — 541.leela_r's runtime-constant `s_rng` pointer and
 * 557.xz_r's inlined `rc_shift_low` argument reloads — runs the Load
 * Inspector on them, and shows Constable eliminating what the compiler at
 * -O3 could not. Hand-built traces enter the Experiment API through
 * Suite::fromTraces.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "trace/builder.hh"

using namespace constable;

namespace {

/** leela-style: a getter for a pointer initialized once (Random::get_Rng):
 *  `mov rax, QWORD PTR [rip+0x1f4ac5]` executes on every call. */
void
emitGetRng(ProgramBuilder& b, Addr s_rng)
{
    b.load(0x432624, RAX, AddrMode::PcRel, s_rng);   // rax = s_rng
    b.alu(0x43262b, RCX, RAX);                       // test/use
    b.branch(0x43262e, false, 0x432638);             // never null again
}

/** xz-style: inlined rc_shift_low reloading its stack-resident arguments
 *  (`mov rdi, [r15]` / `cmp [rsp+0x8], rdi`) in a do-while loop. */
void
emitRcShiftLow(ProgramBuilder& b, Addr frame, uint64_t& out_pos)
{
    uint8_t rdi = RDI;
    b.load(0x4134cb, rdi, AddrMode::StackRel, frame + 0x0, RSP);  // out ptr
    b.load(0x4134f0, RDX, AddrMode::StackRel, frame + 0x8, RSP);  // out_size
    b.alu(0x4134d9, RAX, rdi, RDX);
    b.store(0x4134dc, AddrMode::RegRel, 0x60000 + (out_pos % 512), 0xff,
            rdi);                                     // out[*out_pos] = ...
    ++out_pos;
    b.branch(0x4134f5, true, 0x4134d0);               // loop
}

} // namespace

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);

    ProgramBuilder b(1234, 16);
    Addr s_rng = 0x626ef0;
    b.mem().write(s_rng, 0x7f3210008000ull, 8); // initialized once
    b.mem().write(b.regVal(RSP) + 0x100, 0x60000, 8);
    b.mem().write(b.regVal(RSP) + 0x108, 512, 8);

    uint64_t out_pos = 0;
    for (int iter = 0; iter < 4000; ++iter) {
        emitGetRng(b, s_rng);
        for (int k = 0; k < 3; ++k)
            emitRcShiftLow(b, b.regVal(RSP) + 0x100, out_pos);
        // Unrelated work between calls.
        for (int j = 0; j < 4; ++j)
            b.alu(0x500000 + 4 * j, b.scratch(j), b.scratch(j + 1));
    }

    std::vector<Trace> traces;
    traces.push_back(b.finish("compiler_limits", "Example"));
    Suite suite = Suite::fromTraces(std::move(traces));

    const LoadInspectorResult& insp = suite.inspection(0);
    std::printf("micro-trace from the paper's two -O3 disassembly case "
                "studies: %zu ops\n", suite.trace(0).size());
    std::printf("global-stable loads: %.1f%% of dynamic loads\n",
                100.0 * insp.globalStableFrac());
    std::printf("  PC-relative   (leela s_rng)      : %.1f%%\n",
                100.0 * insp.modeFrac(AddrMode::PcRel));
    std::printf("  stack-relative (xz rc_shift_low) : %.1f%%\n",
                100.0 * insp.modeFrac(AddrMode::StackRel));

    auto res = Experiment("compiler_limits", suite, opts)
                   .add("baseline", mechFor("baseline"))
                   .add("constable", mechFor("constable"))
                   .run();
    const RunResult& base = res.at(0, "baseline");
    const RunResult& cons = res.at(0, "constable");
    std::printf("\nbaseline IPC %.2f -> Constable IPC %.2f "
                "(speedup %.3fx)\n",
                base.ipc(), cons.ipc(),
                res.speedups("constable", "baseline")[0]);
    std::printf("Constable eliminated %.1f%% of the loads the compiler "
                "could not remove\n",
                100.0 * cons.stats.get("loads.eliminated") /
                    cons.stats.get("loads.retired"));
    return 0;
}
