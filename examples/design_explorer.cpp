/**
 * @file
 * Scenario example: design-space exploration of Constable's own knobs —
 * stability-confidence threshold, SLD capacity, and xPRF size — on one
 * workload. Shows the coverage/safety trade-off the paper's threshold of
 * 30 sits on: lower thresholds eliminate more but violate ordering more
 * often; smaller SLDs lose coverage.
 *
 * The whole exploration is one Experiment whose config names encode the
 * swept knob value, so --checkpoint-dir resumes an interrupted sweep and
 * --threads controls the fan-out.
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);

    WorkloadSpec spec = smokeSuite(60'000)[1]; // Enterprise-class
    Suite suite = Suite::fromSpecs({ spec }, opts);

    const unsigned thresholds[] = { 2, 8, 15, 30 };
    const unsigned sldSets[] = { 4, 8, 16, 32 };
    const unsigned xprfSizes[] = { 4, 8, 16, 32, 64 };

    Experiment exp("design_explorer", suite, opts);
    exp.add("baseline", mechFor("baseline"));
    for (unsigned thr : thresholds) {
        MechanismConfig m = mechFor("constable");
        m.constable.sld.confThreshold = static_cast<uint8_t>(thr);
        exp.add("thr-" + std::to_string(thr), m);
    }
    for (unsigned sets : sldSets) {
        MechanismConfig m = mechFor("constable");
        m.constable.sld.sets = sets;
        exp.add("sld-" + std::to_string(sets), m);
    }
    for (unsigned xprf : xprfSizes) {
        MechanismConfig m = mechFor("constable");
        m.constable.xprfEntries = xprf;
        exp.add("xprf-" + std::to_string(xprf), m);
    }
    auto res = exp.run();

    const RunResult& base = res.at(0, "baseline");
    std::printf("workload %s, baseline IPC %.2f\n\n",
                suite.trace(0).name.c_str(), base.ipc());

    auto elimPct = [&](const RunResult& r) {
        return 100.0 * r.stats.get("loads.eliminated") /
               r.stats.get("loads.retired");
    };

    std::printf("confidence-threshold sweep (paper uses 30):\n");
    std::printf("%10s%12s%12s%14s\n", "threshold", "speedup", "elim %",
                "violations");
    for (unsigned thr : thresholds) {
        const RunResult& r = res.at(0, "thr-" + std::to_string(thr));
        std::printf("%10u%12.4f%11.1f%%%14.0f\n", thr, speedup(r, base),
                    elimPct(r), r.stats.get("ordering.elimViolations"));
    }

    std::printf("\nSLD capacity sweep (paper: 512 entries):\n");
    std::printf("%10s%12s%12s\n", "entries", "speedup", "elim %");
    for (unsigned sets : sldSets) {
        const RunResult& r = res.at(0, "sld-" + std::to_string(sets));
        std::printf("%10u%12.4f%11.1f%%\n", sets * 16, speedup(r, base),
                    elimPct(r));
    }

    std::printf("\nxPRF size sweep (paper: 32 entries, 0.2%% rejects):\n");
    std::printf("%10s%12s%14s\n", "entries", "speedup", "rejects");
    for (unsigned xprf : xprfSizes) {
        const RunResult& r = res.at(0, "xprf-" + std::to_string(xprf));
        std::printf("%10u%12.4f%14.0f\n", xprf, speedup(r, base),
                    r.stats.get("constable.xprfRejected"));
    }
    return 0;
}
