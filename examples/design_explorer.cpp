/**
 * @file
 * Scenario example: design-space exploration of Constable's own knobs —
 * stability-confidence threshold, SLD capacity, and xPRF size — on one
 * workload. Shows the coverage/safety trade-off the paper's threshold of
 * 30 sits on: lower thresholds eliminate more but violate ordering more
 * often; smaller SLDs lose coverage.
 */

#include <cstdio>

#include "sim/runner.hh"
#include "workloads/suite.hh"

using namespace constable;

int
main()
{
    WorkloadSpec spec = smokeSuite(60'000)[1]; // Enterprise-class
    Trace t = generateTrace(spec);
    RunResult base = runTrace(t, { CoreConfig{}, baselineMech() });

    std::printf("workload %s, baseline IPC %.2f\n\n", t.name.c_str(),
                base.ipc());

    std::printf("confidence-threshold sweep (paper uses 30):\n");
    std::printf("%10s%12s%12s%14s\n", "threshold", "speedup", "elim %",
                "violations");
    for (unsigned thr : { 2u, 8u, 15u, 30u }) {
        MechanismConfig m = constableMech();
        m.constable.sld.confThreshold = static_cast<uint8_t>(thr);
        RunResult r = runTrace(t, { CoreConfig{}, m });
        std::printf("%10u%12.4f%11.1f%%%14.0f\n", thr, speedup(r, base),
                    100.0 * r.stats.get("loads.eliminated") /
                        r.stats.get("loads.retired"),
                    r.stats.get("ordering.elimViolations"));
    }

    std::printf("\nSLD capacity sweep (paper: 512 entries):\n");
    std::printf("%10s%12s%12s\n", "entries", "speedup", "elim %");
    for (unsigned sets : { 4u, 8u, 16u, 32u }) {
        MechanismConfig m = constableMech();
        m.constable.sld.sets = sets;
        RunResult r = runTrace(t, { CoreConfig{}, m });
        std::printf("%10u%12.4f%11.1f%%\n", sets * 16, speedup(r, base),
                    100.0 * r.stats.get("loads.eliminated") /
                        r.stats.get("loads.retired"));
    }

    std::printf("\nxPRF size sweep (paper: 32 entries, 0.2%% rejects):\n");
    std::printf("%10s%12s%14s\n", "entries", "speedup", "rejects");
    for (unsigned xprf : { 4u, 8u, 16u, 32u, 64u }) {
        MechanismConfig m = constableMech();
        m.constable.xprfEntries = xprf;
        RunResult r = runTrace(t, { CoreConfig{}, m });
        std::printf("%10u%12.4f%14.0f\n", xprf, speedup(r, base),
                    r.stats.get("constable.xprfRejected"));
    }
    return 0;
}
