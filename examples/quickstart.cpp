/**
 * @file
 * Quickstart: build a one-workload Suite, run the baseline and Constable
 * configurations through the Experiment API, and print the headline
 * numbers the paper reports (speedup, elimination coverage, RS-allocation
 * and L1D-access reductions). Pass --trace-dir=DIR to see the trace cache
 * in action: the second invocation loads the trace instead of
 * regenerating it.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);

    // 1. Pick a workload spec; the Suite generates (or cache-loads) its
    //    trace and runs the offline global-stable load inspection.
    WorkloadSpec spec = smokeSuite(60'000).front();
    spec.name = "quickstart/client";
    Suite suite = Suite::fromSpecs({ spec }, opts);
    std::printf("workload %-22s %zu micro-ops, %zu loads%s\n",
                suite.trace(0).name.c_str(), suite.trace(0).size(),
                suite.trace(0).countClass(OpClass::Load),
                suite.cacheHits() ? " (loaded from trace cache)" : "");
    std::printf("global-stable loads: %.1f%% of dynamic loads\n",
                100.0 * suite.inspection(0).globalStableFrac());

    // 2. Run named configurations as one experiment.
    auto res = Experiment("quickstart", suite, opts)
                   .add("baseline", mechFor("baseline"))
                   .add("constable", mechFor("constable"))
                   .run();

    const RunResult& rb = res.at(0, "baseline");
    const RunResult& rc = res.at(0, "constable");
    std::printf("baseline : %8llu cycles, IPC %.3f\n",
                static_cast<unsigned long long>(rb.cycles), rb.ipc());
    std::printf("constable: %8llu cycles, IPC %.3f  (speedup %.3fx)\n",
                static_cast<unsigned long long>(rc.cycles), rc.ipc(),
                res.speedups("constable", "baseline")[0]);
    std::printf("eliminated loads: %.1f%% of retired loads\n",
                100.0 * rc.stats.get("loads.eliminated") /
                    rc.stats.get("loads.retired"));
    std::printf("RS allocations: %.1f%% fewer than baseline\n",
                100.0 * (1.0 - rc.stats.get("rs.allocs") /
                                   rb.stats.get("rs.allocs")));
    std::printf("L1D accesses  : %.1f%% fewer than baseline\n",
                100.0 * (1.0 - (rc.stats.get("mem.l1d.reads") +
                                rc.stats.get("mem.l1d.writes")) /
                                   (rb.stats.get("mem.l1d.reads") +
                                    rb.stats.get("mem.l1d.writes"))));
    return 0;
}
