/**
 * @file
 * Quickstart: generate a synthetic workload, inspect its global-stable
 * loads, run the baseline and Constable configurations, and print the
 * headline numbers the paper reports (speedup, elimination coverage,
 * RS-allocation and L1D-access reductions).
 */

#include <cstdio>

#include "inspector/load_inspector.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

using namespace constable;

int
main()
{
    // 1. Pick a workload spec and generate its trace (deterministic).
    WorkloadSpec spec = smokeSuite(60'000).front();
    spec.name = "quickstart/client";
    Trace trace = generateTrace(spec);
    std::printf("workload %-22s %zu micro-ops, %zu loads\n",
                trace.name.c_str(), trace.size(),
                trace.countClass(OpClass::Load));

    // 2. Offline analysis: which loads are global-stable?
    LoadInspectorResult insp = inspectLoads(trace);
    std::printf("global-stable loads: %.1f%% of dynamic loads\n",
                100.0 * insp.globalStableFrac());

    // 3. Run the baseline (MRN + folding optimizations) and Constable.
    SystemConfig base { CoreConfig{}, baselineMech() };
    SystemConfig cons { CoreConfig{}, constableMech() };
    RunResult rb = runTrace(trace, base);
    RunResult rc = runTrace(trace, cons);

    std::printf("baseline : %8llu cycles, IPC %.3f\n",
                static_cast<unsigned long long>(rb.cycles), rb.ipc());
    std::printf("constable: %8llu cycles, IPC %.3f  (speedup %.3fx)\n",
                static_cast<unsigned long long>(rc.cycles), rc.ipc(),
                speedup(rc, rb));
    std::printf("eliminated loads: %.1f%% of retired loads\n",
                100.0 * rc.stats.get("loads.eliminated") /
                    rc.stats.get("loads.retired"));
    std::printf("RS allocations: %.1f%% fewer than baseline\n",
                100.0 * (1.0 - rc.stats.get("rs.allocs") /
                                   rb.stats.get("rs.allocs")));
    std::printf("L1D accesses  : %.1f%% fewer than baseline\n",
                100.0 * (1.0 - (rc.stats.get("mem.l1d.reads") +
                                rc.stats.get("mem.l1d.writes")) /
                                   (rb.stats.get("mem.l1d.reads") +
                                    rb.stats.get("mem.l1d.writes"))));
    return 0;
}
