/**
 * @file
 * Scenario example: a server consolidation study. Two server-class
 * workloads share a physical core via 2-way SMT — the situation where the
 * paper reports Constable's largest wins (8.8% vs EVES' 3.6%), because
 * load execution resources are contended between hardware threads and
 * eliminating load execution frees them outright.
 *
 * One Suite feeds two matrices of the same Experiment shape: runSmt() for
 * the co-run and run() for the serial per-workload reference.
 */

#include <cstdio>

#include "sim/experiment.hh"

using namespace constable;

int
main(int argc, char** argv)
{
    auto opts = ExperimentOptions::fromArgs(argc, argv);

    // Two server workloads: a key-value front end and a log-ingest worker.
    auto all = paperSuite(50'000);
    std::vector<WorkloadSpec> specs;
    for (const auto& s : all) {
        if (s.name == "Server/server_kv_store" ||
            s.name == "Server/server_log_ingest")
            specs.push_back(s);
    }
    if (specs.size() != 2) {
        std::fprintf(stderr, "suite layout changed\n");
        return 1;
    }
    Suite suite = Suite::fromSpecs(specs, opts, /*inspect=*/false);
    std::printf("co-scheduling %s + %s on one SMT2 core\n",
                suite.trace(0).name.c_str(), suite.trace(1).name.c_str());

    Experiment exp("webserver_smt", suite, opts);
    exp.add("baseline", mechFor("baseline"))
        .add("eves", mechFor("eves"))
        .add("constable", mechFor("constable"))
        .add("eves+const", mechFor("eves+constable"));
    auto smt = exp.runSmt();    // one row: the (kv, log) pair
    auto serial = exp.run();    // two rows: each workload alone

    const RunResult& rb = smt.at(0, "baseline");
    const RunResult& rc = smt.at(0, "constable");
    std::printf("  baseline      : %8llu cycles (aggregate IPC %.2f)\n",
                static_cast<unsigned long long>(rb.cycles), rb.ipc());
    std::printf("  EVES          : speedup %.3fx\n",
                smt.speedups("eves", "baseline")[0]);
    std::printf("  Constable     : speedup %.3fx "
                "(%.1f%% of loads eliminated)\n",
                smt.speedups("constable", "baseline")[0],
                100.0 * rc.stats.get("loads.eliminated") /
                    rc.stats.get("loads.retired"));
    std::printf("  EVES+Constable: speedup %.3fx\n",
                smt.speedups("eves+const", "baseline")[0]);

    // Contrast with the same pair run back to back without SMT.
    const RunResult& sa = serial.at(0, "baseline");
    const RunResult& sb = serial.at(1, "baseline");
    std::printf("SMT throughput gain over serial execution: %.2fx\n",
                static_cast<double>(sa.cycles + sb.cycles) /
                    static_cast<double>(rb.cycles));
    return 0;
}
