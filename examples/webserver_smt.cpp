/**
 * @file
 * Scenario example: a server consolidation study. Two server-class
 * workloads share a physical core via 2-way SMT — the situation where the
 * paper reports Constable's largest wins (8.8% vs EVES' 3.6%), because
 * load execution resources are contended between hardware threads and
 * eliminating load execution frees them outright.
 */

#include <cstdio>

#include "sim/runner.hh"
#include "workloads/suite.hh"

using namespace constable;

int
main()
{
    // Two server workloads: a key-value front end and a log-ingest worker.
    auto suite = paperSuite(50'000);
    const WorkloadSpec* kv = nullptr;
    const WorkloadSpec* log = nullptr;
    for (const auto& s : suite) {
        if (s.name == "Server/server_kv_store")
            kv = &s;
        if (s.name == "Server/server_log_ingest")
            log = &s;
    }
    if (!kv || !log) {
        std::fprintf(stderr, "suite layout changed\n");
        return 1;
    }
    Trace a = generateTrace(*kv);
    Trace b = generateTrace(*log);
    std::printf("co-scheduling %s + %s on one SMT2 core\n",
                a.name.c_str(), b.name.c_str());

    SystemConfig base { CoreConfig{}, baselineMech() };
    RunResult rb = runSmtPair(a, b, base);
    RunResult re = runSmtPair(a, b, { CoreConfig{}, evesMech() });
    RunResult rc = runSmtPair(a, b, { CoreConfig{}, constableMech() });
    RunResult r2 = runSmtPair(a, b,
                              { CoreConfig{}, evesPlusConstableMech() });

    std::printf("  baseline      : %8llu cycles (aggregate IPC %.2f)\n",
                static_cast<unsigned long long>(rb.cycles), rb.ipc());
    std::printf("  EVES          : speedup %.3fx\n", speedup(re, rb));
    std::printf("  Constable     : speedup %.3fx "
                "(%.1f%% of loads eliminated)\n",
                speedup(rc, rb),
                100.0 * rc.stats.get("loads.eliminated") /
                    rc.stats.get("loads.retired"));
    std::printf("  EVES+Constable: speedup %.3fx\n", speedup(r2, rb));

    // Contrast with the same pair run back to back without SMT.
    RunResult sa = runTrace(a, base);
    RunResult sb = runTrace(b, base);
    std::printf("SMT throughput gain over serial execution: %.2fx\n",
                static_cast<double>(sa.cycles + sb.cycles) /
                    static_cast<double>(rb.cycles));
    return 0;
}
