/**
 * @file
 * Invariant-check macros for the simulator's load-bearing data structures.
 *
 * CONSTABLE_ASSERT(cond, msg)  O(1) invariant checks on hot paths (ready
 *                              queue live counts, event-wheel bitmap
 *                              agreement, lease protocol steps).
 * CONSTABLE_DCHECK(cond, msg)  checks that may cost more than a few
 *                              instructions (ordered-list walks, heap
 *                              property probes).
 *
 * Both compile out in Release (NDEBUG) builds so the perf-regression gate
 * keeps measuring the real simulator; sanitizer CI builds are Debug and run
 * every check. -DCONSTABLE_FORCE_CHECKS re-enables them in any build type.
 * A failed check abort()s (so sanitizers and core dumps capture the state)
 * after printing file:line, the expression, and the message.
 */

#ifndef CONSTABLE_COMMON_CHECK_HH
#define CONSTABLE_COMMON_CHECK_HH

#include <cstdio>
#include <cstdlib>

namespace constable {

[[noreturn]] inline void
checkFailed(const char* file, int line, const char* expr, const char* msg)
{
    std::fprintf(stderr, "%s:%d: invariant check failed: (%s): %s\n",
                 file, line, expr, msg);
    std::abort();
}

} // namespace constable

#if !defined(NDEBUG) || defined(CONSTABLE_FORCE_CHECKS)
#define CONSTABLE_CHECKS_ENABLED 1
#endif

#ifdef CONSTABLE_CHECKS_ENABLED
#define CONSTABLE_ASSERT(cond, msg)                                         \
    ((cond) ? static_cast<void>(0)                                          \
            : constable::checkFailed(__FILE__, __LINE__, #cond, msg))
#define CONSTABLE_DCHECK(cond, msg) CONSTABLE_ASSERT(cond, msg)
#else
// The sizeof keeps the condition type-checked (and its operands "used" for
// warning purposes) without evaluating it at runtime.
#define CONSTABLE_ASSERT(cond, msg)                                         \
    (static_cast<void>(sizeof((cond) ? 1 : 0)))
#define CONSTABLE_DCHECK(cond, msg)                                         \
    (static_cast<void>(sizeof((cond) ? 1 : 0)))
#endif

#endif
