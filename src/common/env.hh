/**
 * @file
 * Strict parsing for CONSTABLE_* environment variables. Every knob goes
 * through these helpers so a typo (CONSTABLE_THREADS=abc, a stray trailing
 * character, an out-of-range value) terminates with a clear message instead
 * of silently becoming 0 and running the sweep with the wrong setting.
 */

#ifndef CONSTABLE_COMMON_ENV_HH
#define CONSTABLE_COMMON_ENV_HH

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/logging.hh"

namespace constable {

/**
 * Parse a non-negative base-10 integer from a named source. fatal()s on
 * empty strings, trailing junk, signs, leading zeros, 0x-prefixes, or
 * overflow.
 */
inline uint64_t
parseU64Strict(const std::string& what, const std::string& value)
{
    size_t start = 0;
    while (start < value.size() &&
           std::isspace(static_cast<unsigned char>(value[start])))
        ++start;
    if (start == value.size() || value[start] == '-' || value[start] == '+')
        fatal(what + " must be a non-negative integer, got '" + value + "'");
    // The base is forced to 10: strtoull's base-0 auto-detection would
    // silently parse "010" as octal 8 and "0x10" as hex 16, so anything
    // starting with '0' other than a bare "0" is rejected outright rather
    // than re-based behind the caller's back.
    if (value[start] == '0' && start + 1 < value.size()) {
        fatal(what + " must be a plain base-10 integer (no leading zeros "
              "or 0x prefix), got '" + value + "'");
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(value.c_str() + start, &end, 10);
    if (end == value.c_str() + start || *end != '\0' || errno == ERANGE) {
        fatal(what + " must be a non-negative integer, got '" + value +
              "'");
    }
    return static_cast<uint64_t>(v);
}

/**
 * parseU64Strict plus an inclusive range check, for knobs where an
 * out-of-range value means a misconfigured fleet rather than a big sweep
 * (CONSTABLE_SHARDS=0, a shard id beyond the shard count, a zero lease
 * TTL that would make every lease instantly reclaimable).
 */
inline uint64_t
parseU64InRange(const std::string& what, const std::string& value,
                uint64_t min, uint64_t max)
{
    uint64_t v = parseU64Strict(what, value);
    if (v < min || v > max) {
        fatal(what + " must be in [" + std::to_string(min) + ", " +
              std::to_string(max) + "], got '" + value + "'");
    }
    return v;
}

/** Read an integer env var. Unset -> nullopt; malformed -> fatal(). */
inline std::optional<uint64_t>
envU64(const char* name)
{
    const char* v = std::getenv(name);
    if (!v)
        return std::nullopt;
    return parseU64Strict(name, v);
}

/** envU64 with an inclusive range check (see parseU64InRange). */
inline std::optional<uint64_t>
envU64InRange(const char* name, uint64_t min, uint64_t max)
{
    const char* v = std::getenv(name);
    if (!v)
        return std::nullopt;
    return parseU64InRange(name, v, min, max);
}

/** Read a string env var (empty counts as unset). */
inline std::optional<std::string>
envStr(const char* name)
{
    const char* v = std::getenv(name);
    if (!v || *v == '\0')
        return std::nullopt;
    return std::string(v);
}

} // namespace constable

#endif
