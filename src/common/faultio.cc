#include "common/faultio.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace constable {

const std::vector<FaultPointInfo>&
faultPointTable()
{
    // Every filesystem touchpoint, named. The faultsweep driver arms each
    // of these in turn; a new I/O call site must register here (and a
    // registered point must keep a live call site, or the sweep reports
    // it as never-hit).
    static const std::vector<FaultPointInfo> table = {
        { "atomic.tmp.open", "write",
          "writeFileAtomic: creating the tmp file" },
        { "atomic.tmp.write", "write",
          "writeFileAtomic: writing the payload into the tmp file" },
        { "atomic.tmp.fsync", "sync",
          "writeFileAtomic: fsync of the tmp file before the commit" },
        { "atomic.commit.rename", "write",
          "writeFileAtomic: the rename that commits the file" },
        { "atomic.dir.fsync", "sync",
          "writeFileAtomic: directory fsync after the commit rename" },
        { "trace.cache.read", "read",
          "loadTrace: reading a trace-cache entry" },
        { "trace.cache.write", "write",
          "saveTrace: writing a trace-cache entry" },
        { "ckpt.cell.read", "read",
          "loadRunResult: reading a checkpoint cell" },
        { "ckpt.cell.commit", "write",
          "saveRunResult: committing a checkpoint cell" },
        { "sweep.manifest.read", "read",
          "loadManifest: reading a sweep manifest" },
        { "sweep.manifest.write", "write",
          "saveManifest: writing a sweep manifest" },
        { "lease.acquire", "write",
          "tryAcquireLease: O_CREAT|O_EXCL lease creation" },
        { "lease.read", "read",
          "readLease: reading a lease record (commit ownership check)" },
        { "lease.release", "write",
          "removeLease: releasing a lease after commit" },
        { "lease.heartbeat", "write",
          "LeaseHeartbeat: background mtime refresh of a held lease" },
        { "lease.age", "clock",
          "guarded lease age: reader clock vs lease-file mtime" },
        { "fleet.calib.read", "read",
          "runFleetScenario: reading the calibration cache" },
        { "fleet.calib.write", "write",
          "runFleetScenario: writing the calibration cache" },
    };
    return table;
}

namespace detail {

std::atomic<bool> faultArmed { false };
std::atomic<FaultRetryObserver> retryObserver { nullptr };

} // namespace detail

namespace {

struct FaultClause
{
    std::string point;
    FaultAction action = FaultAction::None;
    /** eio/enospc/torn: inject while hits <= param; crash: fire on the
     *  param-th hit; skew: seconds of injected skew. */
    uint64_t param = 1;
    uint64_t hits = 0;
};

struct FaultState
{
    std::mutex mu;
    std::vector<FaultClause> clauses;
    std::string markerDir;
    uint64_t seed = 0x5eedfa17ull;
};

FaultState&
state()
{
    static FaultState s;
    return s;
}

thread_local bool tl_tornPending = false;

/** Marker-file-safe spelling of a point name. */
std::string
markerName(const std::string& point)
{
    std::string s = point;
    for (char& c : s) {
        bool keep = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
        if (!keep)
            c = '_';
    }
    return s;
}

bool
knownPoint(const std::string& name)
{
    for (const FaultPointInfo& p : faultPointTable()) {
        if (name == p.name)
            return true;
    }
    return false;
}

FaultAction
parseAction(const std::string& s, const std::string& clause)
{
    if (s == "eio")
        return FaultAction::Eio;
    if (s == "enospc")
        return FaultAction::Enospc;
    if (s == "torn")
        return FaultAction::Torn;
    if (s == "crash")
        return FaultAction::Crash;
    if (s == "skew")
        return FaultAction::Skew;
    fatal("fault plan clause '" + clause + "': unknown action '" + s +
          "' (eio|enospc|torn|crash|skew)");
}

/** Parse "point:action[@N]" clauses joined by ';' or ','. */
std::vector<FaultClause>
parsePlan(const std::string& spec)
{
    std::vector<FaultClause> out;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t end = spec.find_first_of(";,", pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string clause = spec.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding spaces; empty clauses (trailing ';') are ok.
        while (!clause.empty() && clause.front() == ' ')
            clause.erase(clause.begin());
        while (!clause.empty() && clause.back() == ' ')
            clause.pop_back();
        if (clause.empty()) {
            if (pos > spec.size())
                break;
            continue;
        }
        size_t colon = clause.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= clause.size()) {
            fatal("fault plan clause '" + clause +
                  "' is not point:action[@N] (see README, \"Fault "
                  "injection & recovery\")");
        }
        FaultClause c;
        c.point = clause.substr(0, colon);
        std::string actionStr = clause.substr(colon + 1);
        size_t at = actionStr.find('@');
        if (at != std::string::npos) {
            c.param = parseU64Strict("fault plan clause '" + clause + "'",
                                     actionStr.substr(at + 1));
            actionStr = actionStr.substr(0, at);
        }
        c.action = parseAction(actionStr, clause);
        if (c.action == FaultAction::Skew && at == std::string::npos)
            c.param = 300; // default injected skew: 5 minutes
        if (c.param == 0 && c.action != FaultAction::Skew) {
            fatal("fault plan clause '" + clause +
                  "': @N must be >= 1 for " + actionStr);
        }
        if (!knownPoint(c.point)) {
            fatal("fault plan clause '" + clause +
                  "': unknown fault point '" + c.point +
                  "' (constable-faultsweep --list prints the registry)");
        }
        out.push_back(std::move(c));
    }
    return out;
}

/** Crash-once gate: create the point's marker with O_CREAT|O_EXCL. True
 *  means this process won the creation and must crash; false means an
 *  earlier launch already crashed here, so the crash is disarmed. Checked
 *  at fire time, not install time, so a re-launched (or forked) process
 *  sees crashes its predecessors already took. */
bool
claimCrashMarker(const std::string& marker_dir, const std::string& point)
{
    if (marker_dir.empty())
        return true; // no marker dir: crash every time
    std::string path = marker_dir + "/crash-" + markerName(point);
    std::FILE* f = std::fopen(path.c_str(), "wbx");
    if (!f)
        return false;
    std::fclose(f);
    return true;
}

void
installLocked(FaultState& s, const std::string& spec,
              const std::string& marker_dir)
{
    s.clauses = parsePlan(spec);
    s.markerDir = marker_dir;
    if (auto v = envU64("CONSTABLE_FAULT_SEED"))
        s.seed = *v;
    detail::faultArmed.store(!s.clauses.empty(),
                             std::memory_order_relaxed);
}

/** One-time lazy pickup of the env plan (call sites reach faultFailed()
 *  long before any CLI parsing, e.g. in tests). */
void
ensureEnvPlanOnce()
{
    static const bool loaded = [] {
        auto plan = envStr("CONSTABLE_FAULT_PLAN");
        if (!plan)
            return true;
        FaultState& s = state();
        std::lock_guard<std::mutex> lk(s.mu);
        if (s.clauses.empty()) {
            std::string marker =
                envStr("CONSTABLE_FAULT_MARKER_DIR").value_or("");
            installLocked(s, *plan, marker);
        }
        return true;
    }();
    (void)loaded;
}

FaultSleepFn&
sleepHook()
{
    static FaultSleepFn fn = nullptr;
    return fn;
}

/** Eager env pickup: faultFailed()'s fast path is a bare atomic load, so
 *  a CONSTABLE_FAULT_PLAN must be armed before the first check — at
 *  static init of this TU (linked into every binary via the call sites).
 *  A malformed plan dies loudly before main(). */
const bool g_envPlanLoaded = [] {
    ensureEnvPlanOnce();
    return true;
}();

} // namespace

namespace detail {

bool
faultFailedSlow(const char* point)
{
    FaultState& s = state();
    std::string marker;
    FaultAction act = FaultAction::None;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        for (FaultClause& c : s.clauses) {
            if (c.point != point)
                continue;
            ++c.hits;
            switch (c.action) {
              case FaultAction::Eio:
              case FaultAction::Enospc:
              case FaultAction::Torn:
                if (c.hits <= c.param)
                    act = c.action;
                break;
              case FaultAction::Crash:
                if (c.hits == c.param) {
                    act = c.action;
                    marker = s.markerDir;
                }
                break;
              case FaultAction::Skew:
              case FaultAction::None:
                break; // polled via faultSkewSeconds(), not here
            }
            break;
        }
    }
    switch (act) {
      case FaultAction::Eio:
      case FaultAction::Enospc:
        return true;
      case FaultAction::Torn:
        tl_tornPending = true;
        return false;
      case FaultAction::Crash:
        if (claimCrashMarker(marker, point)) {
            std::fprintf(stderr,
                         "faultio: injected crash at fault point '%s'\n",
                         point);
            std::fflush(nullptr);
            std::_Exit(kFaultCrashExitCode);
        }
        return false;
      default:
        return false;
    }
}

void
faultEnsureEnvPlan()
{
    ensureEnvPlanOnce();
}

} // namespace detail

bool
faultConsumeTorn()
{
    if (!tl_tornPending)
        return false;
    tl_tornPending = false;
    return true;
}

double
faultSkewSeconds(const char* point)
{
    if (!detail::faultArmed.load(std::memory_order_relaxed))
        return 0.0;
    FaultState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    for (FaultClause& c : s.clauses) {
        if (c.point == point && c.action == FaultAction::Skew) {
            ++c.hits;
            return static_cast<double>(c.param);
        }
    }
    return 0.0;
}

bool
faultPlanArmed()
{
    detail::faultEnsureEnvPlan();
    return detail::faultArmed.load(std::memory_order_relaxed);
}

void
installFaultPlan(const std::string& spec, const std::string& marker_dir)
{
    FaultState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    installLocked(s, spec, marker_dir);
}

void
clearFaultPlan()
{
    FaultState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.clauses.clear();
    s.markerDir.clear();
    detail::faultArmed.store(false, std::memory_order_relaxed);
    tl_tornPending = false;
}

void
faultLoadEnvPlan()
{
    detail::faultEnsureEnvPlan();
}

uint64_t
faultPointHits(const std::string& point)
{
    FaultState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    uint64_t total = 0;
    for (const FaultClause& c : s.clauses) {
        if (c.point == point)
            total += c.hits;
    }
    return total;
}

std::vector<std::pair<std::string, uint64_t>>
faultArmedHits()
{
    FaultState& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const FaultClause& c : s.clauses)
        out.emplace_back(c.point, c.hits);
    return out;
}

unsigned
backoffDelayMs(const char* point, unsigned attempt, const BackoffPolicy& p)
{
    double delay = static_cast<double>(p.baseMs);
    for (unsigned k = 0; k < attempt; ++k)
        delay *= p.mult;
    // Jitter from a per-(point, attempt) stream: deterministic across
    // runs and threads (never wall clock or a global RNG), yet distinct
    // points desynchronize instead of thundering-herding their retries.
    uint64_t pointHash = 0xcbf29ce484222325ull;
    for (const char* c = point; *c; ++c) {
        pointHash ^= static_cast<uint8_t>(*c);
        pointHash *= 0x100000001b3ull;
    }
    uint64_t seed;
    {
        FaultState& s = state();
        std::lock_guard<std::mutex> lk(s.mu);
        seed = s.seed;
    }
    Rng rng(Rng::splitmix(seed ^ pointHash ^ attempt));
    delay *= 1.0 + p.jitterFrac * rng.uniform();
    delay = std::min(delay, static_cast<double>(p.capMs));
    return static_cast<unsigned>(delay);
}

FaultRetryObserver
setFaultRetryObserver(FaultRetryObserver fn)
{
    return detail::retryObserver.exchange(fn, std::memory_order_relaxed);
}

FaultSleepFn
setFaultSleepFn(FaultSleepFn fn)
{
    FaultSleepFn prev = sleepHook();
    sleepHook() = fn;
    return prev;
}

void
faultSleepMs(unsigned ms)
{
    FaultSleepFn fn = sleepHook();
    if (fn)
        fn(ms);
    else
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace constable
