/**
 * @file
 * Deterministic fault injection for every filesystem touchpoint: the
 * robustness proof-layer behind `tools/constable-faultsweep`.
 *
 * Each I/O call site (atomic writes, lease create/heartbeat/release,
 * checkpoint and trace-cache reads/writes, fleet calibration persistence)
 * names a *fault point* from the central registry (faultPointTable()) and
 * asks faultFailed() whether an armed FaultPlan wants to inject a failure
 * there. With no plan armed — the production and CI-perf configuration —
 * every check is a single relaxed atomic load and a predicted branch, so
 * the shim adds nothing measurable to paths that are about to issue real
 * syscalls anyway.
 *
 * A plan comes from CONSTABLE_FAULT_PLAN (or --fault-plan, or
 * installFaultPlan() in tests) with the grammar
 *
 *     plan   := clause (';' clause)*            (',' also accepted)
 *     clause := point ':' action ['@' N]
 *     action := eio | enospc | torn | crash | skew
 *
 *  - eio/enospc fail the point's first N hits (default 1), then heal:
 *    the transient-failure model the retry/backoff policy must absorb.
 *  - torn arms a torn-write for the first N hits: the next atomic write
 *    silently commits only half its payload (rename still happens), the
 *    corruption the trailing checksums must catch.
 *  - crash calls _Exit(kFaultCrashExitCode) on the point's N-th hit. When
 *    CONSTABLE_FAULT_MARKER_DIR is set, the crash first creates a marker
 *    file there with O_EXCL; an existing marker disarms the crash, so a
 *    re-launched process recovers instead of crash-looping.
 *  - skew reports N seconds of clock skew (file mtimes ahead of the
 *    reader's clock) via faultSkewSeconds(); N defaults to 300.
 *
 * Unknown point or action names fatal() at parse time. All injection
 * decisions are counted deterministically per process — no wall clock, no
 * ambient randomness — so an armed run is exactly reproducible.
 */

#ifndef CONSTABLE_COMMON_FAULTIO_HH
#define CONSTABLE_COMMON_FAULTIO_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace constable {

/** Exit code of an injected crash point (distinguishable from fatal()'s
 *  exit 1 and from a real signal death in the faultsweep driver). */
inline constexpr int kFaultCrashExitCode = 86;

/** What an armed plan wants a call site to do. Call sites only ever see
 *  Eio/Enospc (as `true` from faultFailed); Torn is delivered through the
 *  pending torn-write flag, Crash never returns, Skew is polled separately
 *  via faultSkewSeconds(). */
enum class FaultAction : uint8_t { None, Eio, Enospc, Torn, Crash, Skew };

/** One registered fault point. `kind` drives which actions the faultsweep
 *  driver arms: "read" and "sync" take eio+crash, "write" takes
 *  eio+torn+crash, "clock" takes skew. */
struct FaultPointInfo
{
    const char* name; ///< e.g. "ckpt.cell.commit" (the faultFailed() key)
    const char* kind; ///< "read" | "write" | "sync" | "clock"
    const char* site; ///< human description of the call site
};

/** The central compiled-in registry of every fault point. Call sites must
 *  use names from this table (checked when a plan is armed), and the
 *  faultsweep driver enumerates it — a point added here without a call
 *  site shows up as never-hit in the sweep. */
const std::vector<FaultPointInfo>& faultPointTable();

namespace detail {

/** Armed flag (relaxed: arming happens-before any injected check the
 *  caller cares about via the plan-install path). */
extern std::atomic<bool> faultArmed;

bool faultFailedSlow(const char* point);
void faultEnsureEnvPlan();

} // namespace detail

/**
 * The main hook: returns true when the armed plan injects a transient
 * failure (EIO/ENOSPC) at this point — the call site then behaves exactly
 * as if the corresponding syscall failed. Torn arms the pending torn-write
 * flag and returns false; crash does not return; skew is ignored here.
 * With no plan armed this is one atomic load.
 */
inline bool
faultFailed(const char* point)
{
    if (!detail::faultArmed.load(std::memory_order_relaxed))
        return false;
    return detail::faultFailedSlow(point);
}

/** Consume the thread-local pending torn-write flag (set by a Torn clause
 *  at any point on this thread). writeFileAtomic() calls this once per
 *  write; true means "commit only half the payload, report success". */
bool faultConsumeTorn();

/** Seconds of injected clock skew at a "clock"-kind point (mtimes appear
 *  this far in the future); 0.0 when no skew clause is armed. */
double faultSkewSeconds(const char* point);

/** True when any fault plan is currently armed. */
bool faultPlanArmed();

/**
 * Arm a plan programmatically (tests, --fault-plan). Replaces any armed
 * plan; fatal() on malformed specs or unknown point/action names.
 * @p marker_dir backs crash-once markers (empty: crashes always fire).
 */
void installFaultPlan(const std::string& spec,
                      const std::string& marker_dir = "");

/** Disarm and forget the current plan (test teardown). */
void clearFaultPlan();

/** Force the lazy CONSTABLE_FAULT_PLAN / CONSTABLE_FAULT_MARKER_DIR load
 *  now, so a malformed env plan dies at startup instead of at the first
 *  I/O (ExperimentOptions::fromEnv calls this). */
void faultLoadEnvPlan();

/** Times the named point was evaluated while a plan was armed (armed
 *  clauses only; 0 for unknown or never-hit points). */
uint64_t faultPointHits(const std::string& point);

/** (point, hits) for every clause of the armed plan — what the faultsweep
 *  child prints so the driver can tell a recovered run from a vacuous one
 *  whose fault never fired. */
std::vector<std::pair<std::string, uint64_t>> faultArmedHits();

// ------------------------------------------------- deterministic retry

/**
 * Exponential backoff with *seeded* jitter: delay for attempt k is
 * baseMs * mult^k, scaled by a jitter factor drawn from an Rng seeded
 * from (CONSTABLE_FAULT_SEED ^ hash(point) ^ k) — the same point and
 * attempt always back off identically, across runs and across threads,
 * so TSan/golden jobs see one schedule.
 */
struct BackoffPolicy
{
    unsigned attempts = 4;    ///< total tries (1 initial + attempts-1 retries)
    unsigned baseMs = 5;      ///< first retry delay
    double mult = 2.0;        ///< per-attempt multiplier
    double jitterFrac = 0.5;  ///< delay *= 1 + jitterFrac * uniform[0,1)
    unsigned capMs = 1000;    ///< hard per-delay ceiling
};

/** The deterministic delay before retry `attempt` (0-based) of `point`. */
unsigned backoffDelayMs(const char* point, unsigned attempt,
                        const BackoffPolicy& p = {});

/** Sleep hook: tests swap in a counting no-op so retry paths run at full
 *  speed and deterministically under TSan. Returns the previous hook;
 *  nullptr restores the real sleep. */
using FaultSleepFn = void (*)(unsigned ms);
FaultSleepFn setFaultSleepFn(FaultSleepFn fn);

/** Sleep via the current hook (default: std::this_thread::sleep_for). */
void faultSleepMs(unsigned ms);

/**
 * Observer invoked after each retryWithBackoff() sleep with the point
 * name and the delay just taken. The observability tier (common/obs)
 * installs one at arm time to count retries and reconstruct backoff
 * spans; faultio itself never depends on obs. Relaxed atomic: the
 * unobserved path costs one load.
 */
using FaultRetryObserver = void (*)(const char* point, unsigned ms);

namespace detail {
extern std::atomic<FaultRetryObserver> retryObserver;
} // namespace detail

/** Install (or clear, with nullptr) the retry observer; returns the
 *  previous one. */
FaultRetryObserver setFaultRetryObserver(FaultRetryObserver fn);

/**
 * Run `fn` until it returns true, sleeping backoffDelayMs() between
 * tries, up to p.attempts total tries. Returns the final outcome. The
 * transient-failure absorber for lease/commit/manifest writes.
 */
template <typename Fn>
bool
retryWithBackoff(const char* point, Fn&& fn, const BackoffPolicy& p = {})
{
    for (unsigned attempt = 0;; ++attempt) {
        if (fn())
            return true;
        if (attempt + 1 >= p.attempts)
            return false;
        unsigned ms = backoffDelayMs(point, attempt, p);
        faultSleepMs(ms);
        if (FaultRetryObserver ob =
                detail::retryObserver.load(std::memory_order_relaxed))
            ob(point, ms);
    }
}

} // namespace constable

#endif
