#include "common/logging.hh"

#include <map>
#include <mutex>
#include <set>

// env.hh includes logging.hh (fatal() backs the strict parsers), so the
// CONSTABLE_LOG_LEVEL parse lives here, in a .cc that can see both.
#include "common/env.hh"

namespace constable {
namespace logdetail {

std::atomic<int> logLevel { -1 };

int
logLevelSlow()
{
    // Racing first calls both parse and store the same value; the strict
    // parser fatal()s on anything outside 0..2.
    int v = 2;
    if (auto e = envU64InRange("CONSTABLE_LOG_LEVEL", 0, 2))
        v = static_cast<int>(*e);
    logLevel.store(v, std::memory_order_relaxed);
    return v;
}

namespace {

struct OnceState
{
    std::mutex mu;
    std::set<std::string> seen;
    std::map<std::string, uint64_t> counts;
};

OnceState&
onceState()
{
    static OnceState s;
    return s;
}

} // namespace

bool
firstOccurrence(const std::string& key)
{
    OnceState& s = onceState();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.seen.insert(key).second;
}

bool
everyNth(const std::string& key, unsigned n)
{
    OnceState& s = onceState();
    std::lock_guard<std::mutex> lk(s.mu);
    uint64_t count = ++s.counts[key];
    return n == 0 || (count - 1) % n == 0;
}

} // namespace logdetail
} // namespace constable
