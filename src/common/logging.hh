/**
 * @file
 * gem5-style status/error helpers: fatal() for user errors, panic() for
 * model bugs, warn()/inform() for diagnostics.
 *
 * warn() and inform() are gated by CONSTABLE_LOG_LEVEL (strict-parsed,
 * 0..2): 0 silences both, 1 shows warnings only, 2 (the default) shows
 * everything. fatal() and panic() always print — they terminate the
 * process and must never be silenced.
 *
 * warnOnce() deduplicates on the full message text (periodic pollers that
 * would otherwise repeat one warning forever), warnEvery() prints the
 * first occurrence of a key and then every Nth.
 */

#ifndef CONSTABLE_COMMON_LOGGING_HH
#define CONSTABLE_COMMON_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace constable {

namespace logdetail {

/** Resolved CONSTABLE_LOG_LEVEL; -1 until the first gated call parses it
 *  (in logging.cc, via env.hh — malformed values fatal() there). */
extern std::atomic<int> logLevel;

int logLevelSlow();

inline int
logLevelNow()
{
    int v = logLevel.load(std::memory_order_relaxed);
    return v >= 0 ? v : logLevelSlow();
}

/** True the first time `key` is seen (then false forever). */
bool firstOccurrence(const std::string& key);

/** True on occurrence 1, N+1, 2N+1, ... of `key`. */
bool everyNth(const std::string& key, unsigned n);

} // namespace logdetail

/** Terminate the process because of a user/configuration error. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Terminate the process because of a simulator bug (invariant violation). */
[[noreturn]] inline void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Non-fatal warning about questionable behaviour (log level >= 1). */
inline void
warn(const std::string& msg)
{
    if (logdetail::logLevelNow() >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational status message (log level >= 2). */
inline void
inform(const std::string& msg)
{
    if (logdetail::logLevelNow() >= 2)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** warn(), but at most once per distinct message text for the process
 *  lifetime — for polling loops that re-derive the same condition. */
inline void
warnOnce(const std::string& msg)
{
    if (logdetail::logLevelNow() >= 1 && logdetail::firstOccurrence(msg))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** warnOnce() with an explicit dedup key, for messages whose text embeds
 *  a varying measurement (e.g. a skew magnitude) but whose condition is
 *  per-entity (e.g. per lease path). */
inline void
warnOnce(const std::string& key, const std::string& msg)
{
    if (logdetail::logLevelNow() >= 1 && logdetail::firstOccurrence(key))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Rate-limited warn(): prints the first occurrence of `key` and then
 *  every `n`th, annotated with the suppressed count. */
inline void
warnEvery(const std::string& key, const std::string& msg, unsigned n = 100)
{
    if (logdetail::logLevelNow() >= 1 && logdetail::everyNth(key, n))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace constable

#endif
