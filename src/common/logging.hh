/**
 * @file
 * gem5-style status/error helpers: fatal() for user errors, panic() for
 * model bugs, warn()/inform() for diagnostics.
 */

#ifndef CONSTABLE_COMMON_LOGGING_HH
#define CONSTABLE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace constable {

/** Terminate the process because of a user/configuration error. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Terminate the process because of a simulator bug (invariant violation). */
[[noreturn]] inline void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Non-fatal warning about questionable behaviour. */
inline void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational status message. */
inline void
inform(const std::string& msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace constable

#endif
