#include "common/obs.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/faultio.hh"
#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace constable {

namespace {

/** Spans per thread lane before overflow starts dropping (and counting). */
constexpr size_t kRingCap = 4096;

/** One recorded slice. Names/cats point at string literals or interned
 *  strings (stable for the process lifetime). */
struct SpanRec
{
    const char* name;
    const char* cat;
    uint64_t startUs;
    uint64_t durUs;
};

/** A trace lane: one real thread's ring buffer, or a synthetic lane
 *  (merged shard partials, fleet machine classes). */
struct Lane
{
    std::string name;
    std::vector<SpanRec> spans;
    uint64_t dropped = 0;
};

struct Registry
{
    std::mutex mu;
    std::map<std::string, std::unique_ptr<ObsCounter>> counters;
    std::map<std::string, std::unique_ptr<ObsGauge>> gauges;
    std::map<std::string, std::unique_ptr<ObsHistogram>> histograms;
    /** Thread lanes in registration order, then synthetic lanes; lanes
     *  are never destroyed (thread_local pointers outlive their thread's
     *  useful life only until process exit). */
    std::vector<std::unique_ptr<Lane>> lanes;
    /** Interned span names/cats for spans not backed by literals. */
    std::set<std::string> intern;
    std::string traceOut;
    std::string metricsOut;
    bool atexitRegistered = false;
    uint64_t threadLaneCount = 0;
};

Registry&
reg()
{
    static Registry r;
    return r;
}

uint64_t
processId()
{
#if defined(__unix__) || defined(__APPLE__)
    return static_cast<uint64_t>(::getpid());
#else
    return 1;
#endif
}

const char*
internString(Registry& r, const std::string& s)
{
    return r.intern.insert(s).first->c_str();
}

Lane&
laneForThisThread()
{
    // Registration is once per thread; afterwards the pointer is reused.
    // All mutation of a lane's spans happens under reg().mu (spans are
    // coarse — cells, cache preps, backoffs — so the lock is cold).
    thread_local Lane* tl = nullptr;
    if (!tl) {
        Registry& r = reg();
        std::lock_guard<std::mutex> lk(r.mu);
        auto lane = std::make_unique<Lane>();
        lane->name = r.threadLaneCount == 0
                         ? "main"
                         : "thread-" + std::to_string(r.threadLaneCount);
        ++r.threadLaneCount;
        lane->spans.reserve(kRingCap);
        tl = lane.get();
        r.lanes.push_back(std::move(lane));
    }
    return *tl;
}

Lane&
namedLaneLocked(Registry& r, const std::string& name)
{
    for (auto& l : r.lanes) {
        if (l->name == name)
            return *l;
    }
    auto lane = std::make_unique<Lane>();
    lane->name = name;
    Lane& ref = *lane;
    r.lanes.push_back(std::move(lane));
    return ref;
}

void
appendSpanLocked(Lane& lane, const SpanRec& s)
{
    if (lane.spans.size() >= kRingCap) {
        ++lane.dropped;
        return;
    }
    lane.spans.push_back(s);
}

/** JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Atomic whole-file write: tmp + rename. This is src/common, below the
 *  faultio shim's clients — obs output is diagnostics, not simulated
 *  state, so it deliberately does not route through fault injection. */
bool
writeAtomic(const std::string& path, const std::string& content)
{
    std::string tmp =
        path + ".tmp." + std::to_string(processId());
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    size_t put = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = put == content.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readAll(const std::string& path, std::string& out)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, got);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

/** Lenient digit-run parser for partial/status payloads: corrupt input
 *  must fail the merge, not fatal() the coordinator (env.hh's strict
 *  parsers are for operator-supplied knobs). */
bool
parseU64Field(const std::string& s, uint64_t& out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        uint64_t d = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

void
writeOutputsAtExit()
{
    Registry& r = reg();
    std::string traceOut, metricsOut;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        traceOut = r.traceOut;
        metricsOut = r.metricsOut;
    }
    if (!metricsOut.empty() && !obsWriteMetrics(metricsOut))
        warn("cannot write metrics snapshot '" + metricsOut + "'");
    if (!traceOut.empty() && !obsWriteTrace(traceOut))
        warn("cannot write trace '" + traceOut + "'");
}

// ---------------------------------------------------------- progress

struct ProgressState
{
    std::mutex mu;
    std::string label;
    std::string statusPath;
    size_t total = 0;
    size_t doneLocal = 0;
    size_t doneExternal = 0;
    uint64_t ops = 0;
    unsigned intervalSec = 10;
    uint64_t beginUs = 0;
    uint64_t lastReportUs = 0;
    uint64_t lastReportOps = 0;
    uint64_t lastStatusUs = 0;
    bool reported = false;
};

std::atomic<bool> progressActive { false };

ProgressState&
progress()
{
    static ProgressState p;
    return p;
}

/** Seconds since the unix epoch, for status.json consumers on other
 *  machines (steady_clock has no cross-process meaning as a date).
 *  Diagnostics only — never feeds simulated state. lint:wallclock */
uint64_t
unixNowSec()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            // lint:wallclock status.json freshness stamp, never sim state
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Emit the stderr line and/or rewrite status.json when their intervals
 *  have elapsed (or unconditionally when `final`). Caller holds p.mu. */
void
progressEmitLocked(ProgressState& p, bool final)
{
    uint64_t nowUs = obsdetail::obsNowUs();
    size_t done = std::max(p.doneLocal, p.doneExternal);
    double elapsedSec =
        static_cast<double>(nowUs - p.beginUs) / 1e6;

    // Rolling Mops/s over the window since the last report; overall
    // average when the window carries no ops (e.g. external-scan ticks).
    auto mopsOver = [&](uint64_t ops, double sec) {
        return sec > 0.0 ? static_cast<double>(ops) / sec / 1e6 : 0.0;
    };
    double rollingMops =
        p.ops > p.lastReportOps && nowUs > p.lastReportUs
            ? mopsOver(p.ops - p.lastReportOps,
                       static_cast<double>(nowUs - p.lastReportUs) / 1e6)
            : mopsOver(p.ops, elapsedSec);

    // Observed-cost ETA: remaining cells at the average per-cell
    // wall-clock so far (the same model the sharded claim order uses).
    uint64_t etaSec = 0;
    if (done > 0 && done < p.total) {
        etaSec = static_cast<uint64_t>(
            elapsedSec / static_cast<double>(done) *
            static_cast<double>(p.total - done));
    }

    // The closing summary only prints when a periodic line preceded it:
    // runs shorter than one interval stay completely silent on stderr
    // (unit tests, smoke benches) while long sweeps always end with a
    // final "done" line even if the last interval was cut short.
    if (p.intervalSec > 0 &&
        (final ? p.reported
               : nowUs - p.lastReportUs >=
                     static_cast<uint64_t>(p.intervalSec) * 1'000'000ull)) {
        double pct = p.total > 0
                         ? 100.0 * static_cast<double>(done) /
                               static_cast<double>(p.total)
                         : 0.0;
        if (final) {
            std::fprintf(stderr,
                         "progress: %s done, %zu/%zu cells, %.2f Mops/s, "
                         "%.1fs elapsed\n",
                         p.label.c_str(), done, p.total, rollingMops,
                         elapsedSec);
        } else {
            std::fprintf(stderr,
                         "progress: %s %zu/%zu cells (%.1f%%), %.2f "
                         "Mops/s, eta %llus\n",
                         p.label.c_str(), done, p.total, pct, rollingMops,
                         static_cast<unsigned long long>(etaSec));
        }
        p.lastReportUs = nowUs;
        p.lastReportOps = p.ops;
        p.reported = true;
    }

    // status.json is throttled to ~1/s so pollers never starve writers;
    // the atomic rename means a concurrent reader sees old or new bytes,
    // never a torn file.
    if (!p.statusPath.empty() &&
        (final || nowUs - p.lastStatusUs >= 1'000'000ull)) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "{\"experiment\":\"%s\",\"state\":\"%s\","
            "\"cells_done\":%zu,\"cells_total\":%zu,"
            "\"mops\":%.3f,\"eta_sec\":%llu,\"elapsed_sec\":%.1f,"
            "\"owner\":\"pid-%llu\",\"updated_unix_sec\":%llu}\n",
            jsonEscape(p.label).c_str(), final ? "done" : "running", done,
            p.total, rollingMops, static_cast<unsigned long long>(etaSec),
            elapsedSec, static_cast<unsigned long long>(processId()),
            static_cast<unsigned long long>(unixNowSec()));
        writeAtomic(p.statusPath, buf);
        p.lastStatusUs = nowUs;
    }
}

/** Minimal flat-JSON field readers for obsFormatStatus (the schema is
 *  ours and flat; a full parser would be overkill). */
bool
jsonNumField(const std::string& json, const std::string& key, double& out)
{
    size_t at = json.find("\"" + key + "\":");
    if (at == std::string::npos)
        return false;
    at += key.size() + 3;
    // Parse manually: digits, optional '.', digits (no strtod — keep the
    // dependency surface tiny and locale-proof).
    uint64_t ip = 0;
    size_t i = at;
    bool any = false;
    while (i < json.size() && json[i] >= '0' && json[i] <= '9') {
        ip = ip * 10 + static_cast<uint64_t>(json[i] - '0');
        ++i;
        any = true;
    }
    double v = static_cast<double>(ip);
    if (i < json.size() && json[i] == '.') {
        ++i;
        double scale = 0.1;
        while (i < json.size() && json[i] >= '0' && json[i] <= '9') {
            v += scale * (json[i] - '0');
            scale *= 0.1;
            ++i;
            any = true;
        }
    }
    if (!any)
        return false;
    out = v;
    return true;
}

bool
jsonStrField(const std::string& json, const std::string& key,
             std::string& out)
{
    size_t at = json.find("\"" + key + "\":\"");
    if (at == std::string::npos)
        return false;
    at += key.size() + 4;
    size_t end = at;
    while (end < json.size() && json[end] != '"') {
        if (json[end] == '\\')
            ++end;
        ++end;
    }
    if (end >= json.size())
        return false;
    out = json.substr(at, end - at);
    return true;
}

} // namespace

namespace obsdetail {

std::atomic<bool> obsArmedFlag { false };

uint64_t
obsNowUs()
{
    // The epoch is pinned at static init (g_obsEpochPinned below), so
    // fork children inherit it and their span timestamps align with the
    // coordinator's on one CLOCK_MONOTONIC timeline.
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void
obsRecordSpan(const char* name, const char* cat, uint64_t start_us,
              uint64_t dur_us)
{
    Lane& lane = laneForThisThread();
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    appendSpanLocked(lane, SpanRec { name, cat, start_us, dur_us });
}

} // namespace obsdetail

namespace {

/** Pin the span epoch before main() so every process (and every fork
 *  child) measures from the same early instant. */
const uint64_t g_obsEpochPinned = obsdetail::obsNowUs();

/** Retry observer: counts faultio backoff sleeps and reconstructs each
 *  as a span on the sleeping thread's lane (the sleep already happened,
 *  so the span is synthesized as [now - ms, now]). */
void
faultRetryObserved(const char* point, unsigned ms)
{
    static ObsCounter& retries = obsCounter("faultio.retries");
    static ObsHistogram& backoff = obsHistogram("faultio.backoff_ms");
    retries.add();
    backoff.record(ms);
    uint64_t nowUs = obsdetail::obsNowUs();
    uint64_t durUs = static_cast<uint64_t>(ms) * 1000;
    obsEmitSpan("", std::string("fault.backoff:") + point, "faultio",
                nowUs >= durUs ? nowUs - durUs : 0, durUs);
}

} // namespace

void
obsArm()
{
    (void)g_obsEpochPinned;
    obsdetail::obsArmedFlag.store(true, std::memory_order_relaxed);
    setFaultRetryObserver(&faultRetryObserved);
}

void
obsConfigureOutputs(const std::string& trace_out,
                    const std::string& metrics_out)
{
    Registry& r = reg();
    bool arm = false;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        r.traceOut = trace_out;
        r.metricsOut = metrics_out;
        arm = !trace_out.empty() || !metrics_out.empty();
        if (arm && !r.atexitRegistered) {
            std::atexit(writeOutputsAtExit);
            r.atexitRegistered = true;
        }
    }
    if (arm)
        obsArm();
}

void
obsReset()
{
    obsdetail::obsArmedFlag.store(false, std::memory_order_relaxed);
    progressActive.store(false, std::memory_order_relaxed);
    setFaultRetryObserver(nullptr);
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    // Counter/gauge/histogram objects must survive (call sites hold
    // static references), so values reset in place.
    for (auto& kv : r.counters)
        kv.second->reset();
    for (auto& kv : r.gauges)
        kv.second->reset();
    for (auto& kv : r.histograms)
        kv.second->reset();
    for (auto& l : r.lanes) {
        l->spans.clear();
        l->dropped = 0;
    }
    r.traceOut.clear();
    r.metricsOut.clear();
}

ObsCounter&
obsCounter(const std::string& name)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    auto& slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<ObsCounter>();
    return *slot;
}

ObsGauge&
obsGauge(const std::string& name)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    auto& slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<ObsGauge>();
    return *slot;
}

ObsHistogram&
obsHistogram(const std::string& name)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    auto& slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<ObsHistogram>();
    return *slot;
}

void
obsSetThreadLane(const std::string& lane)
{
    Lane& l = laneForThisThread();
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    l.name = lane;
}

void
obsEmitSpan(const std::string& lane, const std::string& name,
            const std::string& cat, uint64_t start_us, uint64_t dur_us)
{
    if (!obsArmed())
        return;
    if (lane.empty()) {
        Lane& l = laneForThisThread();
        Registry& r = reg();
        std::lock_guard<std::mutex> lk(r.mu);
        appendSpanLocked(l, SpanRec { internString(r, name),
                                      internString(r, cat), start_us,
                                      dur_us });
        return;
    }
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    Lane& l = namedLaneLocked(r, lane);
    appendSpanLocked(l, SpanRec { internString(r, name),
                                  internString(r, cat), start_us, dur_us });
}

uint64_t
obsSpansDropped()
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    uint64_t total = 0;
    for (const auto& l : r.lanes)
        total += l->dropped;
    return total;
}

uint64_t
obsSpanCount()
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    uint64_t total = 0;
    for (const auto& l : r.lanes)
        total += l->spans.size();
    return total;
}

bool
obsWriteMetrics(const std::string& path)
{
    Registry& r = reg();
    std::string out;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        out += "{\n  \"counters\": {";
        bool first = true;
        for (const auto& [name, c] : r.counters) {
            out += first ? "\n" : ",\n";
            out += "    \"" + jsonEscape(name) +
                   "\": " + std::to_string(c->value());
            first = false;
        }
        out += "\n  },\n  \"gauges\": {";
        first = true;
        for (const auto& [name, g] : r.gauges) {
            out += first ? "\n" : ",\n";
            out += "    \"" + jsonEscape(name) +
                   "\": " + std::to_string(g->value());
            first = false;
        }
        out += "\n  },\n  \"histograms\": {";
        first = true;
        for (const auto& [name, h] : r.histograms) {
            out += first ? "\n" : ",\n";
            out += "    \"" + jsonEscape(name) +
                   "\": {\"count\": " + std::to_string(h->count()) +
                   ", \"sum\": " + std::to_string(h->sum()) +
                   ", \"buckets\": [";
            for (size_t b = 0; b < ObsHistogram::kBuckets; ++b) {
                if (b)
                    out += ", ";
                out += std::to_string(h->bucket(b));
            }
            out += "]}";
            first = false;
        }
        uint64_t buffered = 0, dropped = 0;
        for (const auto& l : r.lanes) {
            buffered += l->spans.size();
            dropped += l->dropped;
        }
        out += "\n  },\n  \"spans\": {\"buffered\": " +
               std::to_string(buffered) +
               ", \"dropped\": " + std::to_string(dropped) + "}\n}\n";
    }
    return writeAtomic(path, out);
}

bool
obsWriteTrace(const std::string& path)
{
    Registry& r = reg();
    std::string out;
    {
        std::lock_guard<std::mutex> lk(r.mu);
        uint64_t pid = processId();
        out += "{\"traceEvents\":[\n";
        bool first = true;
        uint64_t tid = 1;
        for (const auto& l : r.lanes) {
            std::string pidTid = "\"pid\":" + std::to_string(pid) +
                                 ",\"tid\":" + std::to_string(tid);
            out += first ? "" : ",\n";
            first = false;
            out += "{\"ph\":\"M\",\"name\":\"thread_name\"," + pidTid +
                   ",\"args\":{\"name\":\"" + jsonEscape(l->name) + "\"}}";
            for (const SpanRec& s : l->spans) {
                out += ",\n{\"ph\":\"X\"," + pidTid +
                       ",\"ts\":" + std::to_string(s.startUs) +
                       ",\"dur\":" + std::to_string(s.durUs) +
                       ",\"name\":\"" + jsonEscape(s.name) +
                       "\",\"cat\":\"" + jsonEscape(s.cat) + "\"}";
            }
            ++tid;
        }
        out += "\n]}\n";
    }
    return writeAtomic(path, out);
}

bool
obsSavePartial(const std::string& path, const std::string& lane_override)
{
    Registry& r = reg();
    std::string out = "obs-partial v1\n";
    {
        std::lock_guard<std::mutex> lk(r.mu);
        for (const auto& [name, c] : r.counters) {
            if (c->value() != 0)
                out += "C " + name + " " + std::to_string(c->value()) + "\n";
        }
        for (const auto& [name, g] : r.gauges) {
            if (g->value() != 0)
                out += "G " + name + " " + std::to_string(g->value()) + "\n";
        }
        for (const auto& [name, h] : r.histograms) {
            if (h->count() == 0)
                continue;
            out += "H " + name + " " + std::to_string(h->count()) + " " +
                   std::to_string(h->sum());
            for (size_t b = 0; b < ObsHistogram::kBuckets; ++b) {
                out += ' ';
                out += std::to_string(h->bucket(b));
            }
            out += "\n";
        }
        uint64_t dropped = 0;
        for (const auto& l : r.lanes) {
            dropped += l->dropped;
            for (const SpanRec& s : l->spans) {
                out += "S " +
                       (lane_override.empty() ? l->name : lane_override) +
                       " " + std::to_string(s.startUs) + " " +
                       std::to_string(s.durUs) + " " + std::string(s.cat) +
                       " " + std::string(s.name) + "\n";
            }
        }
        if (dropped != 0)
            out += "D " + std::to_string(dropped) + "\n";
    }
    return writeAtomic(path, out);
}

bool
obsMergePartial(const std::string& path)
{
    std::string text;
    if (!readAll(path, text))
        return false;
    if (text.rfind("obs-partial v1\n", 0) != 0)
        return false;

    // Tokenize each line; malformed lines fail the whole merge (a torn
    // partial should be noticed, not half-applied).
    size_t pos = text.find('\n') + 1;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::vector<std::string> f;
        size_t start = 0;
        // Spans carry the free-text name last; split only the leading
        // fields and keep the remainder intact.
        size_t maxFields = line[0] == 'S' ? 5 : (line[0] == 'H' ? 999 : 3);
        while (f.size() + 1 < maxFields) {
            size_t sp = line.find(' ', start);
            if (sp == std::string::npos)
                break;
            f.push_back(line.substr(start, sp - start));
            start = sp + 1;
        }
        f.push_back(line.substr(start));

        if (f[0] == "C" && f.size() == 3) {
            uint64_t v;
            if (!parseU64Field(f[2], v))
                return false;
            obsCounter(f[1]).merge(v);
        } else if (f[0] == "G" && f.size() == 3) {
            uint64_t v;
            if (!parseU64Field(f[2], v))
                return false;
            obsGauge(f[1]).merge(v);
        } else if (f[0] == "H") {
            // H name count sum b0..b31 — resplit fully.
            std::vector<std::string> hf;
            size_t hs = 0;
            for (;;) {
                size_t sp = line.find(' ', hs);
                if (sp == std::string::npos) {
                    hf.push_back(line.substr(hs));
                    break;
                }
                hf.push_back(line.substr(hs, sp - hs));
                hs = sp + 1;
            }
            if (hf.size() != 4 + ObsHistogram::kBuckets)
                return false;
            uint64_t count, sum, buckets[ObsHistogram::kBuckets];
            if (!parseU64Field(hf[2], count) || !parseU64Field(hf[3], sum))
                return false;
            for (size_t b = 0; b < ObsHistogram::kBuckets; ++b) {
                if (!parseU64Field(hf[4 + b], buckets[b]))
                    return false;
            }
            obsHistogram(hf[1]).merge(count, sum, buckets);
        } else if (f[0] == "S" && f.size() == 5) {
            // S lane start dur cat name...
            size_t sp3 = f[4].find(' ');
            if (sp3 == std::string::npos)
                return false;
            std::string cat = f[4].substr(0, sp3);
            std::string name = f[4].substr(sp3 + 1);
            uint64_t startUs, durUs;
            if (!parseU64Field(f[2], startUs) ||
                !parseU64Field(f[3], durUs))
                return false;
            obsEmitSpan(f[1], name, cat, startUs, durUs);
        } else if (f[0] == "D" && f.size() == 2) {
            uint64_t dropped;
            if (!parseU64Field(f[1], dropped))
                return false;
            Registry& r = reg();
            std::lock_guard<std::mutex> lk(r.mu);
            namedLaneLocked(r, "merged").dropped += dropped;
        } else {
            return false;
        }
    }
    return true;
}

// ----------------------------------------------------------- progress

void
obsProgressBegin(const ObsProgressConfig& cfg)
{
    ProgressState& p = progress();
    std::lock_guard<std::mutex> lk(p.mu);
    p.label = cfg.label;
    p.statusPath = cfg.statusPath;
    p.total = cfg.total;
    p.intervalSec = cfg.intervalSec;
    p.doneLocal = 0;
    p.doneExternal = 0;
    p.ops = 0;
    p.beginUs = obsdetail::obsNowUs();
    p.lastReportUs = p.beginUs;
    p.lastReportOps = 0;
    p.lastStatusUs = 0;
    p.reported = false;
    bool active = cfg.total > 0 &&
                  (cfg.intervalSec > 0 || !cfg.statusPath.empty());
    progressActive.store(active, std::memory_order_relaxed);
    if (active && !p.statusPath.empty())
        progressEmitLocked(p, /*final=*/false);
}

void
obsProgressCellDone(uint64_t ops)
{
    if (!progressActive.load(std::memory_order_relaxed))
        return;
    ProgressState& p = progress();
    std::lock_guard<std::mutex> lk(p.mu);
    ++p.doneLocal;
    p.ops += ops;
    progressEmitLocked(p, /*final=*/false);
}

void
obsProgressUpdate(size_t done)
{
    if (!progressActive.load(std::memory_order_relaxed))
        return;
    ProgressState& p = progress();
    std::lock_guard<std::mutex> lk(p.mu);
    p.doneExternal = std::max(p.doneExternal, done);
    progressEmitLocked(p, /*final=*/false);
}

void
obsProgressNoteOps(uint64_t ops)
{
    if (!progressActive.load(std::memory_order_relaxed))
        return;
    ProgressState& p = progress();
    std::lock_guard<std::mutex> lk(p.mu);
    p.ops += ops;
}

void
obsProgressEnd()
{
    if (!progressActive.load(std::memory_order_relaxed))
        return;
    progressActive.store(false, std::memory_order_relaxed);
    ProgressState& p = progress();
    std::lock_guard<std::mutex> lk(p.mu);
    size_t done = std::max(p.doneLocal, p.doneExternal);
    p.doneExternal = std::max(done, p.total);
    progressEmitLocked(p, /*final=*/true);
}

std::string
obsReadStatus(const std::string& path)
{
    std::string text;
    if (!readAll(path, text))
        return "";
    return text;
}

std::string
obsFormatStatus(const std::string& json)
{
    std::string experiment, state;
    double done = 0, total = 0, mops = 0, eta = 0, elapsed = 0;
    if (!jsonStrField(json, "experiment", experiment) ||
        !jsonStrField(json, "state", state) ||
        !jsonNumField(json, "cells_done", done) ||
        !jsonNumField(json, "cells_total", total))
        return "";
    jsonNumField(json, "mops", mops);
    jsonNumField(json, "eta_sec", eta);
    jsonNumField(json, "elapsed_sec", elapsed);
    std::string owner;
    jsonStrField(json, "owner", owner);

    double pct = total > 0 ? 100.0 * done / total : 0.0;
    char buf[512];
    if (state == "done") {
        std::snprintf(buf, sizeof(buf),
                      "sweep '%s': done — %.0f/%.0f cells, %.2f Mops/s, "
                      "%.1fs elapsed%s%s",
                      experiment.c_str(), done, total, mops, elapsed,
                      owner.empty() ? "" : ", owner ", owner.c_str());
    } else {
        std::snprintf(buf, sizeof(buf),
                      "sweep '%s': %s — %.0f/%.0f cells (%.1f%%), %.2f "
                      "Mops/s, eta %.0fs, %.1fs elapsed%s%s",
                      experiment.c_str(), state.c_str(), done, total, pct,
                      mops, eta, elapsed, owner.empty() ? "" : ", owner ",
                      owner.c_str());
    }
    return buf;
}

} // namespace constable
