/**
 * @file
 * Observability tier: a typed metrics registry (counters, gauges,
 * histograms, scoped timers), a per-thread ring-buffer span recorder that
 * emits Chrome trace-event / Perfetto JSON, and live sweep progress with
 * an atomically rewritten status.json.
 *
 * Everything here lives strictly *outside* the simulated state: no obs
 * object ever reaches RunResult or a StatSet, so arming observability can
 * never perturb golden-snapshot fingerprints. The disabled path follows
 * the same discipline as common/faultio: one relaxed atomic load and a
 * predicted branch, so a disarmed build costs nothing measurable (the
 * perf-regression gate runs with obs compiled in and disarmed).
 *
 * Arming happens through --trace-out / --metrics-out (or the
 * CONSTABLE_TRACE_OUT / CONSTABLE_METRICS_OUT env knobs): either output
 * path arms the registry and registers an atexit writer for the requested
 * files. Fork-based shard workers save their spans and counters as a
 * partial file which the coordinator merges, so one trace holds a lane
 * per shard process next to the coordinator's pool-worker lanes.
 *
 * Call sites keep a function-local static reference so the registry
 * lookup (a mutex + map) happens once per site:
 *
 *     static ObsCounter& hits = obsCounter("trace.cache.hit");
 *     hits.add();                       // armed-gated relaxed fetch_add
 *
 *     { ObsSpan span("cell.compute", "cell"); ... }  // RAII slice
 */

#ifndef CONSTABLE_COMMON_OBS_HH
#define CONSTABLE_COMMON_OBS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace constable {

namespace obsdetail {

/** Armed flag; relaxed everywhere (observability tolerates races). */
extern std::atomic<bool> obsArmedFlag;

/** Microseconds since the process's obs epoch (steady clock). */
uint64_t obsNowUs();

/** Record a finished span on the calling thread's ring buffer. */
void obsRecordSpan(const char* name, const char* cat, uint64_t start_us,
                   uint64_t dur_us);

} // namespace obsdetail

/** True when any obs output (trace or metrics) is armed. */
inline bool
obsArmed()
{
    return obsdetail::obsArmedFlag.load(std::memory_order_relaxed);
}

/** Arm the registry without configuring outputs (tests). */
void obsArm();

/** Set output paths and arm when either is non-empty; registers the
 *  atexit writer once. Later calls override earlier paths (CLI over env). */
void obsConfigureOutputs(const std::string& trace_out,
                         const std::string& metrics_out);

/** Disarm and clear every counter, histogram, span, lane, progress state
 *  and output path (test teardown). */
void obsReset();

/** Monotonic counter. Stable address for the process lifetime. */
class ObsCounter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (!obsArmed())
            return;
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

    /** Ungated add for merging shard partials (not a hot path). */
    void merge(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_ { 0 };
};

/** Last-write-wins gauge. */
class ObsGauge
{
  public:
    void
    set(uint64_t v)
    {
        if (!obsArmed())
            return;
        v_.store(v, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

    /** Ungated last-write-wins set for merging shard partials. */
    void merge(uint64_t v) { v_.store(v, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_ { 0 };
};

/** Power-of-two bucketed histogram (bucket b holds values in
 *  [2^b, 2^(b+1)), bucket 0 holds 0 and 1). */
class ObsHistogram
{
  public:
    static constexpr size_t kBuckets = 32;

    void
    record(uint64_t v)
    {
        if (!obsArmed())
            return;
        size_t b = 0;
        while (b + 1 < kBuckets && (v >> (b + 1)) != 0)
            ++b;
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    uint64_t
    bucket(size_t b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        for (size_t b = 0; b < kBuckets; ++b)
            buckets_[b].store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

    /** Ungated bulk add for merging shard partials. */
    void
    merge(uint64_t count, uint64_t sum, const uint64_t* buckets)
    {
        for (size_t b = 0; b < kBuckets; ++b)
            buckets_[b].fetch_add(buckets[b], std::memory_order_relaxed);
        count_.fetch_add(count, std::memory_order_relaxed);
        sum_.fetch_add(sum, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> buckets_[kBuckets] {};
    std::atomic<uint64_t> count_ { 0 };
    std::atomic<uint64_t> sum_ { 0 };
};

/** Registry lookups: one mutex-guarded map hit per call, so call sites
 *  should cache the reference in a function-local static. Names must be
 *  stable for the process lifetime (string literals). */
ObsCounter& obsCounter(const std::string& name);
ObsGauge& obsGauge(const std::string& name);
ObsHistogram& obsHistogram(const std::string& name);

/** Scoped wall-clock timer: records elapsed microseconds into a histogram
 *  at scope exit. Costs two steady-clock reads when armed, nothing when
 *  disarmed. */
class ObsTimer
{
  public:
    explicit ObsTimer(ObsHistogram& h)
        : h_(h), startUs_(obsArmed() ? obsdetail::obsNowUs() : 0)
    {}

    ~ObsTimer()
    {
        if (obsArmed())
            h_.record(obsdetail::obsNowUs() - startUs_);
    }

    ObsTimer(const ObsTimer&) = delete;
    ObsTimer& operator=(const ObsTimer&) = delete;

  private:
    ObsHistogram& h_;
    uint64_t startUs_;
};

/** RAII span: a complete ("ph":"X") slice on the calling thread's lane
 *  from construction to destruction. Ring overflow drops the span and
 *  counts it (obsSpansDropped). `name` and `cat` must be string literals
 *  (stored by pointer). */
class ObsSpan
{
  public:
    explicit ObsSpan(const char* name, const char* cat = "sim")
        : name_(name), cat_(cat),
          startUs_(obsArmed() ? obsdetail::obsNowUs() : 0),
          armed_(obsArmed())
    {}

    ~ObsSpan()
    {
        if (armed_) {
            obsdetail::obsRecordSpan(name_, cat_, startUs_,
                                     obsdetail::obsNowUs() - startUs_);
        }
    }

    ObsSpan(const ObsSpan&) = delete;
    ObsSpan& operator=(const ObsSpan&) = delete;

  private:
    const char* name_;
    const char* cat_;
    uint64_t startUs_;
    bool armed_;
};

/** Name the calling thread's trace lane ("pool-3", "shard-1", ...). The
 *  first thread to record anything without naming itself is "main". */
void obsSetThreadLane(const std::string& lane);

/** Append a span with explicit timing to a named (possibly synthetic)
 *  lane — fleet machine classes, fault-backoff sleeps reconstructed after
 *  the fact. Empty lane = the calling thread's lane. Mutex-guarded, so
 *  keep this off hot paths. */
void obsEmitSpan(const std::string& lane, const std::string& name,
                 const std::string& cat, uint64_t start_us, uint64_t dur_us);

/** Current time on the obs span timeline (microseconds since the process
 *  epoch) — the clock obsEmitSpan() timestamps live on. */
inline uint64_t
obsTimestampUs()
{
    return obsdetail::obsNowUs();
}

/** Spans dropped to ring overflow, across all lanes (plus merged
 *  partials). */
uint64_t obsSpansDropped();

/** Total spans currently buffered across all lanes. */
uint64_t obsSpanCount();

/** Write a metrics snapshot: sorted-key JSON of every counter, gauge and
 *  histogram. Atomic (tmp + rename). False on I/O failure. */
bool obsWriteMetrics(const std::string& path);

/** Write all buffered spans as Chrome trace-event JSON ("traceEvents"
 *  array plus thread_name metadata per lane), loadable by Perfetto and
 *  chrome://tracing. Atomic. False on I/O failure. */
bool obsWriteTrace(const std::string& path);

/** Serialize this process's spans + counters + histograms to a
 *  line-oriented partial file; every thread-lane span is relabelled to
 *  `lane_override` (fork children: "shard-<k>"). Atomic. */
bool obsSavePartial(const std::string& path,
                    const std::string& lane_override);

/** Merge a partial written by obsSavePartial into this process: counters
 *  and histograms add, spans append under their recorded lanes. */
bool obsMergePartial(const std::string& path);

// ------------------------------------------------------- live progress

/** Configuration for one sweep's progress reporting. */
struct ObsProgressConfig
{
    std::string label;      ///< experiment name (status.json "experiment")
    size_t total = 0;       ///< total cells
    std::string statusPath; ///< status.json path; empty disables the file
    /** Min seconds between one-line stderr reports; 0 disables them. */
    unsigned intervalSec = 10;
};

/** Begin progress tracking; replaces any previous sweep's state. Passive:
 *  starts no threads, so fork children inherit it safely. */
void obsProgressBegin(const ObsProgressConfig& cfg);

/** One cell finished locally; `ops` feeds the rolling Mops/s. */
void obsProgressCellDone(uint64_t ops);

/** Absolute done-count from an external scan (sharded workers observe
 *  other processes' committed cells). Monotonic: lower counts ignored. */
void obsProgressUpdate(size_t done);

/** Credit ops executed elsewhere (a shard coordinator summing merged
 *  cells) to the Mops/s accounting without advancing the done count. */
void obsProgressNoteOps(uint64_t ops);

/** Final update: marks state "done" in status.json and prints a closing
 *  report line if reporting is enabled. */
void obsProgressEnd();

/** Read a status.json (returns "" when missing/unreadable). */
std::string obsReadStatus(const std::string& path);

/** Human-readable rendering of a status.json payload (the
 *  `constable-sweep --status` verb). Returns "" on unparsable input. */
std::string obsFormatStatus(const std::string& json);

} // namespace constable

#endif
