/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic trace
 * generator and the probabilistic confidence counters. A small xorshift-star
 * generator keeps trace generation fast and fully reproducible from a seed.
 */

#ifndef CONSTABLE_COMMON_RNG_HH
#define CONSTABLE_COMMON_RNG_HH

#include <cstdint>

namespace constable {

/**
 * 64-bit xorshift* PRNG. Deterministic from its seed; distinct streams are
 * derived by seeding with splitmix64 of a master seed plus a stream id.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(splitmix(seed ? seed : 1)) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability p (0..1). */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0,1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** splitmix64 hash step, also usable as a standalone mixing function. */
    static uint64_t
    splitmix(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

  private:
    uint64_t state;
};

} // namespace constable

#endif
