/**
 * @file
 * The outcome of one simulation run: cycle/instruction totals, per-thread
 * figures, the golden-check verdict, and the full named-stat map. Lives in
 * common/ (not cpu/) because every layer above the core consumes it --
 * trace/serialize.cc checkpoints it, sim/ sweeps aggregate it, serve/
 * calibrates from it -- and the layering rule (see tools/constable-lint)
 * forbids those layers' headers from reaching back into cpu/.
 */

#ifndef CONSTABLE_COMMON_RUN_RESULT_HH
#define CONSTABLE_COMMON_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace constable {

/** Outcome of one simulation run. */
struct RunResult
{
    Cycle cycles = 0;
    uint64_t instructions = 0;
    std::array<uint64_t, 2> threadInstructions { 0, 0 };
    std::array<Cycle, 2> threadFinishCycle { 0, 0 };
    bool goldenCheckFailed = false;
    std::string goldenCheckMessage;
    StatSet stats;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

} // namespace constable

#endif
