/**
 * @file
 * SmallVec: a push/clear/index sequence with inline storage for the first N
 * elements and a retained heap spill beyond. Built for the simulator's
 * per-slot scratch lists (e.g. an in-flight op's consumer list): the common
 * case never touches the heap, and clear() keeps the spill buffer's
 * capacity, so steady-state reuse is allocation-free.
 */

#ifndef CONSTABLE_COMMON_SMALL_VEC_HH
#define CONSTABLE_COMMON_SMALL_VEC_HH

#include <array>
#include <cstddef>
#include <vector>

namespace constable {

template <typename T, size_t N>
class SmallVec
{
  public:
    void
    push_back(const T& v)
    {
        if (n_ < N)
            inline_[n_] = v;
        else
            spill_.push_back(v);
        ++n_;
    }

    /** Drop all elements; inline slots and spill capacity are retained. */
    void
    clear()
    {
        n_ = 0;
        spill_.clear();
    }

    /** Drop the last element (precondition: non-empty). */
    void
    pop_back()
    {
        --n_;
        if (n_ >= N)
            spill_.pop_back();
    }

    size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }

    const T&
    operator[](size_t i) const
    {
        return i < N ? inline_[i] : spill_[i - N];
    }

    T&
    operator[](size_t i)
    {
        return i < N ? inline_[i] : spill_[i - N];
    }

  private:
    size_t n_ = 0;
    std::array<T, N> inline_ {};
    std::vector<T> spill_;
};

} // namespace constable

#endif
