#include "common/stats.hh"

#include <cstdio>

namespace constable {

double
geomean(const std::vector<double>& v)
{
    // Skip non-positive samples (see stats.hh): one zero latency or a
    // negative energy delta must not zero-out / NaN-out the whole mean.
    double acc = 0.0;
    size_t n = 0;
    for (double x : v) {
        if (x > 0.0) {
            acc += std::log(x);
            ++n;
        }
    }
    if (n == 0)
        return 0.0;
    return std::exp(acc / static_cast<double>(n));
}

double
mean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
percentileSorted(const std::vector<double>& s, double p)
{
    if (s.empty())
        return 0.0;
    if (s.size() == 1)
        return s[0];
    double idx = p * static_cast<double>(s.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, s.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

BoxWhisker
BoxWhisker::from(std::vector<double> samples)
{
    BoxWhisker b;
    b.n = samples.size();
    if (samples.empty())
        return b;
    std::sort(samples.begin(), samples.end());
    b.min = samples.front();
    b.max = samples.back();
    b.q1 = percentileSorted(samples, 0.25);
    b.median = percentileSorted(samples, 0.50);
    b.q3 = percentileSorted(samples, 0.75);
    b.meanVal = mean(samples);
    double iqr = b.q3 - b.q1;
    // Whiskers extend to the farthest sample within 1.5*IQR of the box.
    double loLimit = b.q1 - 1.5 * iqr;
    double hiLimit = b.q3 + 1.5 * iqr;
    b.whiskerLo = b.max;
    b.whiskerHi = b.min;
    for (double s : samples) {
        if (s >= loLimit)
            b.whiskerLo = std::min(b.whiskerLo, s);
        if (s <= hiLimit)
            b.whiskerHi = std::max(b.whiskerHi, s);
    }
    return b;
}

std::string
BoxWhisker::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "min=%.4g wLo=%.4g q1=%.4g med=%.4g q3=%.4g wHi=%.4g "
                  "max=%.4g mean=%.4g n=%zu",
                  min, whiskerLo, q1, median, q3, whiskerHi, max, meanVal, n);
    return buf;
}

Histogram::Histogram(std::vector<uint64_t> edges)
    : upperEdges(std::move(edges)), counts(upperEdges.size() + 1, 0)
{
}

void
Histogram::add(uint64_t sample, uint64_t weight)
{
    size_t i = 0;
    while (i < upperEdges.size() && sample >= upperEdges[i])
        ++i;
    counts[i] += weight;
    totalCount += weight;
}

double
Histogram::bucketFrac(size_t i) const
{
    return totalCount == 0
        ? 0.0
        : static_cast<double>(counts.at(i)) / static_cast<double>(totalCount);
}

std::string
Histogram::bucketLabel(size_t i) const
{
    char buf[64];
    if (i == upperEdges.size()) {
        std::snprintf(buf, sizeof(buf), "%llu+",
                      static_cast<unsigned long long>(
                          upperEdges.empty() ? 0 : upperEdges.back()));
    } else {
        uint64_t lo = i == 0 ? 0 : upperEdges[i - 1];
        std::snprintf(buf, sizeof(buf), "[%llu,%llu)",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(upperEdges[i]));
    }
    return buf;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [k, v] : other.vals)
        vals[k] += v;
}

} // namespace constable
