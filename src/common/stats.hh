/**
 * @file
 * Lightweight statistics toolkit: counters, histograms, box-and-whisker
 * summaries (used throughout the paper's figures), and geometric means.
 */

#ifndef CONSTABLE_COMMON_STATS_HH
#define CONSTABLE_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace constable {

/** Ratio helper that tolerates zero denominators. */
inline double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/**
 * Geometric mean over the *positive* samples of v. Non-positive samples
 * have no geometric mean — log(0) = -inf collapses the whole mean to 0 and
 * the log of a negative value is NaN — so they are skipped and the mean of
 * the remaining positive subset is returned; 0 when no positive sample
 * remains (including empty input).
 */
double geomean(const std::vector<double>& v);

/** Arithmetic mean (returns 0 for empty). */
double mean(const std::vector<double>& v);

/**
 * Linear-interpolated percentile (p in [0, 1]) of an ascending-sorted
 * sample vector; 0 for empty input. The primitive behind BoxWhisker's
 * quartiles and the serving tier's latency tails (p50/p95/p99).
 */
double percentileSorted(const std::vector<double>& sorted, double p);

/**
 * Five-number summary used by the paper's box-and-whisker plots
 * (Figs 9, 18, 21): quartiles, 1.5*IQR whiskers, and the mean.
 */
struct BoxWhisker
{
    double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
    double whiskerLo = 0, whiskerHi = 0;
    double meanVal = 0;
    size_t n = 0;

    /** Compute the summary from raw samples. */
    static BoxWhisker from(std::vector<double> samples);

    /** One-line rendering, e.g. for bench output tables. */
    std::string str() const;
};

/**
 * Fixed-bucket histogram with user-defined upper bin edges; the last bucket
 * is open-ended. Used for inter-occurrence-distance breakdowns (Fig 3c/d)
 * and SLD updates-per-cycle distributions (Fig 9a).
 */
class Histogram
{
  public:
    /** @param edges ascending exclusive upper edges; a final +inf bucket is
     *         appended automatically. */
    explicit Histogram(std::vector<uint64_t> edges);

    /** Record one sample. */
    void add(uint64_t sample, uint64_t weight = 1);

    uint64_t total() const { return totalCount; }
    size_t numBuckets() const { return counts.size(); }
    uint64_t bucketCount(size_t i) const { return counts.at(i); }

    /** Fraction of samples in bucket i (0 if empty histogram). */
    double bucketFrac(size_t i) const;

    /** Human-readable bucket label, e.g. "[50,100)" or "250+". */
    std::string bucketLabel(size_t i) const;

  private:
    std::vector<uint64_t> upperEdges;
    std::vector<uint64_t> counts;
    uint64_t totalCount = 0;
};

/**
 * Named scalar counters grouped per simulation run. The core, memory
 * hierarchy, Constable engine and power model all report through this so
 * benches can diff configurations uniformly.
 *
 * Export-only by design: there is deliberately no string-keyed increment.
 * Per-op/per-cycle paths bump raw integer members on their owning component
 * and publish them exactly once, at the end of a run, through an
 * exportStats()/exportFinalStats() hook -- a string-keyed map update per
 * event is a hash+allocation tax the simulation inner loop must not pay.
 */
class StatSet
{
  public:
    /** Set/overwrite a named value. */
    void set(const std::string& name, double v) { vals[name] = v; }

    /** Read a counter; missing names read as 0. */
    double
    get(const std::string& name) const
    {
        auto it = vals.find(name);
        return it == vals.end() ? 0.0 : it->second;
    }

    bool has(const std::string& name) const { return vals.count(name) > 0; }

    const std::map<std::string, double>& all() const { return vals; }

    /** Merge another set by summation (SMT thread aggregation). */
    void merge(const StatSet& other);

  private:
    std::map<std::string, double> vals;
};

} // namespace constable

#endif
