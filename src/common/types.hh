/**
 * @file
 * Fundamental scalar types shared across the Constable reproduction.
 */

#ifndef CONSTABLE_COMMON_TYPES_HH
#define CONSTABLE_COMMON_TYPES_HH

#include <cstdint>

namespace constable {

/** Absolute simulation cycle count. */
using Cycle = uint64_t;

/** Virtual or physical byte address. In this model the two spaces coincide. */
using Addr = uint64_t;

/** Program counter of a static instruction. */
using PC = uint64_t;

/** Global dynamic-instruction sequence number (program order). */
using SeqNum = uint64_t;

/** Hardware thread identifier (0 or 1 in SMT2). */
using ThreadId = uint8_t;

/** Sentinel for "no register". */
inline constexpr uint8_t kNoReg = 0xff;

/** Cacheline geometry shared by every cache level and by the AMT. */
inline constexpr unsigned kLineBytes = 64;
inline constexpr unsigned kLineShift = 6;

/** Extract the cacheline (block) address of a byte address. */
constexpr Addr
lineAddr(Addr a)
{
    return a >> kLineShift;
}

} // namespace constable

#endif
