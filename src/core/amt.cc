#include "core/amt.hh"

#include <algorithm>

#include "common/logging.hh"

namespace constable {

Amt::Amt(const AmtConfig& amt_cfg)
    : cfg(amt_cfg), entries(amt_cfg.sets * amt_cfg.ways)
{
    if ((cfg.sets & (cfg.sets - 1)) != 0)
        fatal("Amt: set count must be a power of two");
}

void
Amt::insert(Addr addr, PC load_pc, std::vector<PC>& evicted_out)
{
    Addr key = keyOf(addr);
    unsigned set = setOf(key);
    Entry* target = nullptr;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry& e = entries[set * cfg.ways + w];
        if (e.valid && e.key == key) {
            target = &e;
            break;
        }
    }
    if (!target) {
        // Allocate; evicting a victim loses its PCs' tracking, so the
        // caller must reset their elimination status (safety first).
        Entry* victim = &entries[set * cfg.ways];
        for (unsigned w = 0; w < cfg.ways; ++w) {
            Entry& cand = entries[set * cfg.ways + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (cand.lru < victim->lru)
                victim = &cand;
        }
        if (victim->valid) {
            ++capacityEvictions;
            for (PC pc : victim->pcs)
                evicted_out.push_back(pc);
        }
        victim->valid = true;
        victim->key = key;
        victim->pcs.clear();
        target = victim;
    }
    target->lru = ++stamp;
    auto& pcs = target->pcs;
    if (std::find(pcs.begin(), pcs.end(), load_pc) != pcs.end())
        return;
    if (pcs.size() >= cfg.pcsPerEntry) {
        ++capacityEvictions;
        evicted_out.push_back(pcs.front());
        pcs.erase(pcs.begin());
    }
    pcs.push_back(load_pc);
    ++inserts;
}

std::vector<PC>
Amt::invalidate(Addr addr)
{
    Addr key = keyOf(addr);
    unsigned set = setOf(key);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry& e = entries[set * cfg.ways + w];
        if (e.valid && e.key == key) {
            ++invalidations;
            std::vector<PC> pcs = std::move(e.pcs);
            e = Entry{};
            return pcs;
        }
    }
    return {};
}

bool
Amt::contains(Addr addr) const
{
    Addr key = keyOf(addr);
    unsigned set = setOf(key);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        const Entry& e = entries[set * cfg.ways + w];
        if (e.valid && e.key == key)
            return true;
    }
    return false;
}

void
Amt::flushAll()
{
    for (Entry& e : entries)
        e = Entry{};
}

} // namespace constable
