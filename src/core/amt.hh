/**
 * @file
 * Address Monitor Table (AMT): physical-address-indexed (cacheline
 * granularity, §6.6) table mapping monitored lines to the load PCs
 * currently being eliminated from them. Stores and snoops consult the AMT
 * and reset the listed loads' elimination — Condition 2 of the safety
 * argument (§6.1, §6.4.3-6.4.4). Table 1 geometry: 256 entries, 32 sets x
 * 8 ways, 4 load PCs per entry.
 */

#ifndef CONSTABLE_CORE_AMT_HH
#define CONSTABLE_CORE_AMT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** AMT geometry. */
struct AmtConfig
{
    unsigned sets = 32;
    unsigned ways = 8;
    unsigned pcsPerEntry = 4;
    /** Index/tag at full byte-address granularity instead of cachelines
     *  (the paper's 0.4%-better full-address variant, §6.6). */
    bool fullAddress = false;
};

class Amt
{
  public:
    explicit Amt(const AmtConfig& cfg = AmtConfig{});

    /**
     * Track an eliminated load's address (writeback of a likely-stable
     * load, §6.4.1 step 5). Allocates the entry if absent.
     * @param evicted_out PCs whose tracking was lost to capacity (entry or
     *        PC-list eviction); the caller must reset them.
     */
    void insert(Addr addr, PC load_pc, std::vector<PC>& evicted_out);

    /**
     * A store's address was generated, or a snoop arrived (§6.4.3-6.4.4):
     * return all PCs monitoring the matching entry and evict it.
     */
    std::vector<PC> invalidate(Addr addr);

    /** Is this address currently monitored? */
    bool contains(Addr addr) const;

    void flushAll();

    uint64_t inserts = 0;
    uint64_t invalidations = 0;      ///< store/snoop hits
    uint64_t capacityEvictions = 0;

  private:
    struct Entry
    {
        Addr key = 0;
        std::vector<PC> pcs;
        bool valid = false;
        uint64_t lru = 0;
    };

    Addr keyOf(Addr addr) const
    {
        return cfg.fullAddress ? addr : lineAddr(addr);
    }
    /** Hashed index: real physical addresses are well spread, but aligned
     *  allocations would otherwise pile into one set. */
    unsigned
    setOf(Addr key) const
    {
        return static_cast<unsigned>(
            (key ^ (key >> 5) ^ (key >> 11) ^ (key >> 17)) &
            (cfg.sets - 1));
    }

    AmtConfig cfg;
    std::vector<Entry> entries;
    uint64_t stamp = 0;
};

} // namespace constable

#endif
