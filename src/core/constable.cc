#include "core/constable.hh"

namespace constable {

ConstableEngine::ConstableEngine(const ConstableConfig& engine_cfg)
    : sld(engine_cfg.sld), rmt(engine_cfg.rmt), amt(engine_cfg.amt),
      xprf(engine_cfg.xprfEntries), cfg(engine_cfg)
{
}

bool
ConstableEngine::modeAllowed(AddrMode mode) const
{
    switch (mode) {
      case AddrMode::PcRel: return cfg.eliminatePcRel;
      case AddrMode::StackRel: return cfg.eliminateStackRel;
      case AddrMode::RegRel: return cfg.eliminateRegRel;
      default: return false;
    }
}

ElimDecision
ConstableEngine::renameLoad(PC pc, AddrMode mode)
{
    ElimDecision d;
    if (!cfg.enabled || !modeAllowed(mode))
        return d;
    SldLookup r = sld.lookup(pc);
    if (!r.hit)
        return d;
    if (r.canEliminate) {
        if (!xprf.tryAlloc()) {
            // No free xPRF register: execute normally (paper §6.3).
            ++xprfRejected;
            d.likelyStable = r.likelyStable;
            return d;
        }
        d.eliminate = true;
        d.addr = r.addr;
        d.value = r.value;
        ++eliminated;
        ++eliminatedByMode[static_cast<unsigned>(mode)];
        return d;
    }
    d.likelyStable = r.likelyStable;
    return d;
}

void
ConstableEngine::resetPcs(const std::vector<PC>& pcs)
{
    for (PC pc : pcs) {
        sld.resetCanEliminate(pc);
        // Drop all other monitoring of this PC so it is re-inserted fresh
        // on its next writeback (keeps RMT lists small, §6.7.1).
        rmt.removePc(pc);
    }
}

unsigned
ConstableEngine::renameDstWrite(uint8_t dst_reg)
{
    if (!cfg.enabled || dst_reg == kNoReg)
        return 0;
    std::vector<PC> pcs = rmt.drainOnWrite(dst_reg);
    resetPcs(pcs);
    return static_cast<unsigned>(pcs.size());
}

bool
ConstableEngine::writebackLoad(PC pc, Addr addr, uint64_t value,
                               bool likely_stable_marked,
                               const std::array<uint8_t, 3>& srcs)
{
    if (!cfg.enabled)
        return false;
    bool armed = sld.train(pc, addr, value, likely_stable_marked);
    if (!armed)
        return false;

    std::vector<PC> evicted;
    for (uint8_t s : srcs) {
        if (s != kNoReg)
            rmt.insert(s, pc, evicted);
    }
    amt.insert(addr, pc, evicted);
    resetPcs(evicted);
    // The armed load itself may have been a victim of its own inserts'
    // capacity evictions: honor the reset.
    for (PC e : evicted) {
        if (e == pc)
            return false;
    }
    return true;
}

void
ConstableEngine::storeOrSnoopAddr(Addr addr)
{
    if (!cfg.enabled)
        return;
    std::vector<PC> pcs = amt.invalidate(addr);
    if (pcs.empty())
        return;
    ++storeResets;
    resetPcs(pcs);
}

void
ConstableEngine::onEliminationViolation(PC pc)
{
    if (!cfg.enabled)
        return;
    sld.halveConfidence(pc);
    rmt.removePc(pc);
}

void
ConstableEngine::onL1Evict(Addr line)
{
    if (!cfg.enabled || cfg.cvBitPinning)
        return;
    // Constable-AMT-I: without CV-bit pinning, a private-cache eviction
    // ends snoop visibility for the line, so tracking must be dropped.
    std::vector<PC> pcs = amt.invalidate(line << kLineShift);
    if (!pcs.empty()) {
        ++snoopResets;
        resetPcs(pcs);
    }
}

void
ConstableEngine::releaseEliminated()
{
    xprf.release();
}

void
ConstableEngine::contextSwitch()
{
    sld.flushAll();
    rmt.flushAll();
    amt.flushAll();
}

void
ConstableEngine::exportStats(StatSet& stats) const
{
    stats.set("constable.eliminated", static_cast<double>(eliminated));
    stats.set("constable.elim.pcRel",
              static_cast<double>(
                  eliminatedByMode[static_cast<unsigned>(AddrMode::PcRel)]));
    stats.set("constable.elim.stackRel",
              static_cast<double>(eliminatedByMode[static_cast<unsigned>(
                  AddrMode::StackRel)]));
    stats.set("constable.elim.regRel",
              static_cast<double>(
                  eliminatedByMode[static_cast<unsigned>(AddrMode::RegRel)]));
    stats.set("constable.xprfRejected", static_cast<double>(xprfRejected));
    stats.set("constable.sld.lookups", static_cast<double>(sld.lookups));
    stats.set("constable.sld.arms", static_cast<double>(sld.arms));
    stats.set("constable.sld.resets", static_cast<double>(sld.resets));
    stats.set("constable.sld.trainMatches",
              static_cast<double>(sld.trainMatches));
    stats.set("constable.sld.trainMismatches",
              static_cast<double>(sld.trainMismatches));
    stats.set("constable.rmt.inserts", static_cast<double>(rmt.inserts));
    stats.set("constable.rmt.capacityEvictions",
              static_cast<double>(rmt.capacityEvictions));
    stats.set("constable.amt.inserts", static_cast<double>(amt.inserts));
    stats.set("constable.amt.invalidations",
              static_cast<double>(amt.invalidations));
    stats.set("constable.amt.capacityEvictions",
              static_cast<double>(amt.capacityEvictions));
    stats.set("constable.xprf.allocs", static_cast<double>(xprf.allocs));
    stats.set("constable.xprf.allocFailures",
              static_cast<double>(xprf.allocFailures));
}

} // namespace constable
