/**
 * @file
 * ConstableEngine: the public facade of the paper's mechanism, wiring the
 * Stable Load Detector, Register Monitor Table, Address Monitor Table and
 * xPRF together and exposing the pipeline touch-points the core calls
 * (Fig 8's numbered operations). Unit-testable without the core.
 */

#ifndef CONSTABLE_CORE_CONSTABLE_HH
#define CONSTABLE_CORE_CONSTABLE_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "core/amt.hh"
#include "core/rmt.hh"
#include "core/sld.hh"
#include "core/xprf.hh"
#include "isa/microop.hh"

namespace constable {

/** Full Constable configuration. */
struct ConstableConfig
{
    bool enabled = true;
    SldConfig sld;
    RmtConfig rmt;
    AmtConfig amt;
    unsigned xprfEntries = 32;

    /** CV-bit pinning (§6.6). When false, the Constable-AMT-I variant is
     *  modeled instead: the AMT entry is invalidated on every L1D eviction
     *  (Fig 22). */
    bool cvBitPinning = true;

    /** Addressing-mode elimination filters (Fig 13). */
    bool eliminatePcRel = true;
    bool eliminateStackRel = true;
    bool eliminateRegRel = true;

    /** Let wrong-path renames update RMT/SLD (Fig 9b sensitivity). */
    bool wrongPathUpdates = true;
};

/** Rename-stage decision for one load (Fig 8 steps 1-3). */
struct ElimDecision
{
    bool eliminate = false;      ///< convert to a rename-completed move
    bool likelyStable = false;   ///< execute normally, arm at writeback
    Addr addr = 0;               ///< last-computed address (for the LB entry)
    uint64_t value = 0;          ///< last-fetched value (xPRF payload)
};

class ConstableEngine
{
  public:
    explicit ConstableEngine(const ConstableConfig& cfg = ConstableConfig{});

    /**
     * Rename-stage load lookup (step 1). Applies the addressing-mode
     * filter, the confidence gate, and xPRF availability.
     */
    ElimDecision renameLoad(PC pc, AddrMode mode);

    /**
     * A renamed instruction writes @p dst_reg (steps 7-8): drain the RMT
     * entry and reset every listed load in the SLD.
     * @return number of SLD can_eliminate updates performed (write-port
     *         pressure modeling, §6.7.1 / Fig 9a).
     */
    unsigned renameDstWrite(uint8_t dst_reg);

    /**
     * Writeback of a non-eliminated load (steps 4-6).
     * @param likely_stable_marked set at rename when confidence >= threshold
     * @param srcs address source registers for RMT insertion
     * @return true when can_eliminate was armed (caller pins the CV bit)
     */
    bool writebackLoad(PC pc, Addr addr, uint64_t value,
                       bool likely_stable_marked,
                       const std::array<uint8_t, 3>& srcs);

    /** Store address generated, or snoop arrived (steps 9-10 + 8). */
    void storeOrSnoopAddr(Addr addr);

    /** An eliminated instance of this load violated memory ordering and is
     *  being re-executed: halve its confidence (Fig 10 step G) so repeated
     *  store-load races back off instead of thrashing. */
    void onEliminationViolation(PC pc);

    /** L1D eviction notification (Constable-AMT-I variant only). */
    void onL1Evict(Addr line);

    /** Eliminated load retired or squashed: free its xPRF register. */
    void releaseEliminated();

    /** Physical address mapping changed (§6.7.3): flush everything. */
    void contextSwitch();

    bool modeAllowed(AddrMode mode) const;

    void exportStats(StatSet& stats) const;

    const ConstableConfig& config() const { return cfg; }

    // Exposed for unit tests and benches.
    Sld sld;
    Rmt rmt;
    Amt amt;
    Xprf xprf;

    uint64_t eliminated = 0;
    std::array<uint64_t, 4> eliminatedByMode { 0, 0, 0, 0 };
    uint64_t xprfRejected = 0;
    uint64_t storeResets = 0;
    uint64_t snoopResets = 0;

  private:
    void resetPcs(const std::vector<PC>& pcs);

    ConstableConfig cfg;
};

} // namespace constable

#endif
