#include "core/rmt.hh"

#include <algorithm>

namespace constable {

Rmt::Rmt(const RmtConfig& rmt_cfg) : cfg(rmt_cfg), lists(kMaxArchRegs)
{
}

bool
Rmt::insert(uint8_t reg, PC load_pc, std::vector<PC>& evicted_out)
{
    if (reg >= kMaxArchRegs)
        return false;
    auto& list = lists[reg];
    if (std::find(list.begin(), list.end(), load_pc) != list.end())
        return false;
    unsigned cap = isStackReg(reg) ? cfg.stackRegPcs : cfg.otherRegPcs;
    if (list.size() >= cap) {
        // Conservative capacity handling: evict the oldest tracked PC and
        // have the caller reset its elimination (loses coverage, never
        // safety).
        evicted_out.push_back(list.front());
        list.erase(list.begin());
        ++capacityEvictions;
    }
    list.push_back(load_pc);
    ++inserts;
    return true;
}

std::vector<PC>
Rmt::drainOnWrite(uint8_t reg)
{
    std::vector<PC> drained;
    if (reg >= kMaxArchRegs)
        return drained;
    auto& list = lists[reg];
    if (!list.empty()) {
        drained.swap(list);
        ++drains;
    }
    return drained;
}

void
Rmt::removePc(PC load_pc)
{
    for (auto& list : lists)
        std::erase(list, load_pc);
}

void
Rmt::flushAll()
{
    for (auto& list : lists)
        list.clear();
}

} // namespace constable
