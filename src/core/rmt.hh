/**
 * @file
 * Register Monitor Table (RMT): architectural-register-indexed lists of
 * load PCs currently being eliminated that use the register as an address
 * source. Every renamed instruction consults the RMT with its destination
 * register and resets the elimination status of the listed loads —
 * enforcing Condition 1 of the paper's safety argument (§6.1, §6.4.2).
 * Table 1 capacity: 16 PCs for RSP/RBP, 8 for the other 14 registers.
 */

#ifndef CONSTABLE_CORE_RMT_HH
#define CONSTABLE_CORE_RMT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/reg.hh"

namespace constable {

/** RMT capacity configuration. */
struct RmtConfig
{
    unsigned stackRegPcs = 16;   ///< RSP/RBP entry capacity
    unsigned otherRegPcs = 8;
};

class Rmt
{
  public:
    explicit Rmt(const RmtConfig& cfg = RmtConfig{});

    /**
     * Track an eliminated load's source register.
     * @param evicted_out when the entry is full the oldest PC is evicted;
     *        the caller must reset its elimination status (safety).
     * @return true if inserted (false if already present).
     */
    bool insert(uint8_t reg, PC load_pc, std::vector<PC>& evicted_out);

    /**
     * A renamed instruction writes @p reg: drain and return every load PC
     * monitoring that register (the caller resets them in the SLD).
     */
    std::vector<PC> drainOnWrite(uint8_t reg);

    /** Remove a specific PC everywhere (entry re-learned after a reset). */
    void removePc(PC load_pc);

    void flushAll();

    size_t occupancy(uint8_t reg) const { return lists[reg].size(); }

    uint64_t inserts = 0;
    uint64_t drains = 0;         ///< register writes that drained PCs
    uint64_t capacityEvictions = 0;

  private:
    RmtConfig cfg;
    std::vector<std::vector<PC>> lists;   ///< per architectural register
};

} // namespace constable

#endif
