#include "core/sld.hh"

#include "common/logging.hh"

namespace constable {

Sld::Sld(const SldConfig& sld_cfg)
    : cfg(sld_cfg), entries(sld_cfg.sets * sld_cfg.ways)
{
    if ((cfg.sets & (cfg.sets - 1)) != 0)
        fatal("Sld: set count must be a power of two");
}

Sld::Entry*
Sld::find(PC pc)
{
    unsigned set = setOf(pc);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Entry& e = entries[set * cfg.ways + w];
        if (e.valid && e.tag == pc)
            return &e;
    }
    return nullptr;
}

SldLookup
Sld::lookup(PC pc)
{
    SldLookup r;
    ++lookups;
    Entry* e = find(pc);
    if (!e)
        return r;
    e->lru = ++stamp;
    r.hit = true;
    r.canEliminate = e->canEliminate;
    r.likelyStable = e->conf >= cfg.confThreshold;
    r.addr = e->addr;
    r.value = e->value;
    return r;
}

bool
Sld::train(PC pc, Addr addr, uint64_t value, bool arm_if_stable)
{
    Entry* e = find(pc);
    if (!e) {
        // Allocate: LRU victim within the set.
        unsigned set = setOf(pc);
        Entry* victim = &entries[set * cfg.ways];
        for (unsigned w = 0; w < cfg.ways; ++w) {
            Entry& cand = entries[set * cfg.ways + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (cand.lru < victim->lru)
                victim = &cand;
        }
        *victim = Entry{};
        victim->valid = true;
        victim->tag = pc;
        victim->addr = addr;
        victim->value = value;
        victim->conf = 0;
        victim->lru = ++stamp;
        return false;
    }

    e->lru = ++stamp;
    if (e->addr == addr && e->value == value) {
        ++trainMatches;
        if (e->conf < cfg.confMax)
            ++e->conf;
        if (arm_if_stable && !e->canEliminate) {
            e->canEliminate = true;
            ++arms;
            return true;
        }
        return false;
    }
    ++trainMismatches;
    e->conf /= 2;
    e->addr = addr;
    e->value = value;
    e->canEliminate = false;
    return false;
}

void
Sld::resetCanEliminate(PC pc)
{
    Entry* e = find(pc);
    if (e && e->canEliminate) {
        e->canEliminate = false;
        ++resets;
    }
}

void
Sld::halveConfidence(PC pc)
{
    Entry* e = find(pc);
    if (!e)
        return;
    e->conf /= 2;
    if (e->canEliminate) {
        e->canEliminate = false;
        ++resets;
    }
}

void
Sld::flushAll()
{
    for (Entry& e : entries)
        e = Entry{};
}

double
Sld::likelyStableFrac() const
{
    uint64_t valid = 0, stable = 0;
    for (const Entry& e : entries) {
        if (e.valid) {
            ++valid;
            if (e.conf >= cfg.confThreshold)
                ++stable;
        }
    }
    return valid == 0 ? 0.0
                      : static_cast<double>(stable) /
                            static_cast<double>(valid);
}

} // namespace constable
