/**
 * @file
 * Stable Load Detector (SLD): PC-indexed set-associative table that
 * (1) identifies likely-stable loads via a 5-bit stability confidence
 * counter, (2) decides whether an instance can be eliminated
 * (can_eliminate flag), and (3) supplies the last-computed address and
 * last-fetched value of the load (paper §6.1-6.2; Table 1 geometry:
 * 512 entries, 32 sets x 16 ways).
 */

#ifndef CONSTABLE_CORE_SLD_HH
#define CONSTABLE_CORE_SLD_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** SLD geometry and learning parameters. */
struct SldConfig
{
    unsigned sets = 32;
    unsigned ways = 16;
    /** Stability confidence threshold (paper: 30 with a 5-bit counter). */
    uint8_t confThreshold = 30;
    uint8_t confMax = 31;
    unsigned readPorts = 3;
    unsigned writePorts = 2;
};

/** Result of a rename-stage SLD lookup. */
struct SldLookup
{
    bool hit = false;
    bool canEliminate = false;
    bool likelyStable = false;  ///< confidence has reached the threshold
    Addr addr = 0;              ///< last-computed load address
    uint64_t value = 0;         ///< last-fetched value
};

class Sld
{
  public:
    explicit Sld(const SldConfig& cfg = SldConfig{});

    /** Rename-stage lookup (consumes a read port at the call site). */
    SldLookup lookup(PC pc);

    /**
     * Writeback-stage training of a non-eliminated load.
     * Allocates the entry on a miss. Increments confidence when (addr,
     * value) repeat; halves it otherwise (paper §6.2).
     * @param arm_if_stable the instance was marked likely-stable at rename,
     *        so a matching outcome sets can_eliminate (paper §6.4.1).
     * @return true when can_eliminate was set by this call.
     */
    bool train(PC pc, Addr addr, uint64_t value, bool arm_if_stable);

    /** Reset can_eliminate (RMT/AMT-triggered; paper steps 8). */
    void resetCanEliminate(PC pc);

    /** Halve the stability confidence and reset can_eliminate: applied when
     *  an eliminated instance is caught by memory disambiguation and
     *  re-executed (paper Fig 10 step G). */
    void halveConfidence(PC pc);

    /** Full invalidation (physical address mapping change, §6.7.3). */
    void flushAll();

    /** Fraction of valid entries currently above threshold (diagnostics). */
    double likelyStableFrac() const;

    const SldConfig& config() const { return cfg; }

    uint64_t lookups = 0;
    uint64_t trainMatches = 0;
    uint64_t trainMismatches = 0;
    uint64_t arms = 0;          ///< can_eliminate set events
    uint64_t resets = 0;        ///< can_eliminate reset events

  private:
    struct Entry
    {
        PC tag = 0;
        Addr addr = 0;
        uint64_t value = 0;
        uint8_t conf = 0;
        bool canEliminate = false;
        bool valid = false;
        uint64_t lru = 0;
    };

    /** Hashed index to spread aligned code regions across sets. */
    unsigned
    setOf(PC pc) const
    {
        PC p = pc >> 2;
        return static_cast<unsigned>((p ^ (p >> 5) ^ (p >> 10)) &
                                     (cfg.sets - 1));
    }
    Entry* find(PC pc);

    SldConfig cfg;
    std::vector<Entry> entries;
    uint64_t stamp = 0;
};

} // namespace constable

#endif
