#include "core/storage.hh"

namespace constable {

std::vector<StorageRow>
storageOverhead(const ConstableConfig& cfg)
{
    std::vector<StorageRow> rows;

    StorageRow sld;
    sld.name = "SLD";
    sld.entries = static_cast<uint64_t>(cfg.sld.sets) * cfg.sld.ways;
    sld.bitsPerEntry = 24 /*tag*/ + 32 /*addr*/ + 64 /*value*/ +
                       5 /*confidence*/ + 1 /*can_eliminate*/;
    rows.push_back(sld);

    StorageRow rmt;
    rmt.name = "RMT";
    // 16 hashed PCs for each stack register, 8 for the other 14 registers.
    rmt.entries = 2ull * cfg.rmt.stackRegPcs + 14ull * cfg.rmt.otherRegPcs;
    rmt.bitsPerEntry = 24; // hashed load PC
    rows.push_back(rmt);

    StorageRow amt;
    amt.name = "AMT";
    amt.entries = static_cast<uint64_t>(cfg.amt.sets) * cfg.amt.ways;
    amt.bitsPerEntry = 32 /*physical address tag*/ +
                       24ull * cfg.amt.pcsPerEntry /*hashed load PCs*/;
    rows.push_back(amt);

    return rows;
}

double
totalStorageKb(const ConstableConfig& cfg)
{
    double total = 0;
    for (const auto& row : storageOverhead(cfg))
        total += row.kb();
    return total;
}

std::vector<EnergyRow>
constableEnergyTable()
{
    return {
        { "SLD (7.9KB, 3R/2W ports)", 10.76, 16.70, 1.02, 0.211 },
        { "RMT (0.4KB, 2R/6W ports)", 0.15, 0.20, 0.31, 0.004 },
        { "AMT (4.0KB, 1R/1W ports)", 1.58, 4.22, 0.74, 0.017 },
    };
}

} // namespace constable
