/**
 * @file
 * Storage-overhead accounting (paper Table 1) and the CACTI-derived
 * access-energy/leakage/area estimates for Constable's structures
 * (paper Table 3, 14 nm). The bit-widths follow the paper: SLD entries
 * store a 24 b tag, 32 b compressed address, 64 b value, 5 b confidence
 * and the can_eliminate flag; the RMT stores 24 b hashed load PCs; AMT
 * entries store a 32 b physical tag and four 24 b hashed load PCs.
 */

#ifndef CONSTABLE_CORE_STORAGE_HH
#define CONSTABLE_CORE_STORAGE_HH

#include <string>
#include <vector>

#include "core/constable.hh"

namespace constable {

/** One structure's storage accounting. */
struct StorageRow
{
    std::string name;
    uint64_t entries = 0;
    uint64_t bitsPerEntry = 0;
    double kb() const
    {
        return static_cast<double>(entries * bitsPerEntry) / 8.0 / 1024.0;
    }
};

/** Compute Table 1 from a configuration. */
std::vector<StorageRow> storageOverhead(const ConstableConfig& cfg);

/** Total storage in KB (paper: 12.4 KB with default config). */
double totalStorageKb(const ConstableConfig& cfg);

/** Table 3: per-structure energy/leakage/area (14 nm). */
struct EnergyRow
{
    std::string name;
    double readPj = 0;
    double writePj = 0;
    double leakageMw = 0;
    double areaMm2 = 0;
};

/** CACTI-7 22 nm estimates scaled to 14 nm, transcribed from the paper
 *  (CACTI is not available offline; the consuming power model is ours). */
std::vector<EnergyRow> constableEnergyTable();

} // namespace constable

#endif
