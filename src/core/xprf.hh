/**
 * @file
 * xPRF: the small extra register file (32 entries) that holds the values
 * of in-flight eliminated loads so their dependents can be woken without
 * adding PRF write ports (paper §6.3). Modeled as an occupancy-tracked
 * allocator: when it is full, the load is executed normally instead
 * (observed rarely; paper reports 0.2%).
 */

#ifndef CONSTABLE_CORE_XPRF_HH
#define CONSTABLE_CORE_XPRF_HH

#include <cstdint>

namespace constable {

class Xprf
{
  public:
    explicit Xprf(unsigned entries = 32) : capacity(entries) {}

    /** Try to allocate a register for an eliminated load. */
    bool
    tryAlloc()
    {
        if (used >= capacity) {
            ++allocFailures;
            return false;
        }
        ++used;
        ++allocs;
        return true;
    }

    /** Release at retirement or squash of the eliminated load. */
    void
    release()
    {
        if (used > 0)
            --used;
    }

    unsigned occupancy() const { return used; }
    unsigned size() const { return capacity; }

    uint64_t allocs = 0;
    uint64_t allocFailures = 0;

  private:
    unsigned capacity;
    unsigned used = 0;
};

} // namespace constable

#endif
