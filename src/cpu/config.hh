/**
 * @file
 * Core configuration (paper Table 2, Golden-Cove-class) and the mechanism
 * bundle selecting which load-optimization techniques are active.
 */

#ifndef CONSTABLE_CPU_CONFIG_HH
#define CONSTABLE_CPU_CONFIG_HH

#include "core/constable.hh"
#include "mem/hierarchy.hh"
#include "vp/ideal.hh"

namespace constable {

/** Pipeline geometry; defaults follow the paper's Table 2. */
struct CoreConfig
{
    unsigned renameWidth = 6;
    unsigned retireWidth = 6;

    unsigned robEntries = 512;
    unsigned lbEntries = 240;
    unsigned sbEntries = 112;
    unsigned rsEntries = 248;

    unsigned aluPorts = 5;
    /** Combined AGU + load-port units ("load execution width"). */
    unsigned loadPorts = 3;
    /** Cycles a load occupies its unit (bank conflicts, pick bandwidth and
     *  replays make real L1D ports deliver < 1 load/cycle sustained; this
     *  is what gives the paper its strong load-width sensitivity, Fig 20a). */
    unsigned loadPortOccupancy = 2;
    unsigned staPorts = 2;

    unsigned branchMispredictPenalty = 20;
    unsigned valueMispredictPenalty = 20;

    unsigned aluLat = 1;
    unsigned mulLat = 3;
    unsigned divLat = 18;
    unsigned fpLat = 4;
    unsigned aguLat = 1;
    unsigned storeForwardLat = 5;

    /** 2-way SMT (two trace contexts share the core, §8.1). */
    bool smt2 = false;

    /** Scale ROB/LB/SB/RS together (Fig 20b pipeline-depth sweep). */
    double depthScale = 1.0;

    /** Memory hierarchy geometry/latencies (Table 2). */
    HierarchyConfig mem;

    /** Safety valve against model deadlock. */
    uint64_t maxCycles = 500'000'000;

    unsigned robPerThread() const
    {
        unsigned rob = static_cast<unsigned>(robEntries * depthScale);
        return smt2 ? rob / 2 : rob;
    }
    unsigned lbPerThread() const
    {
        unsigned lb = static_cast<unsigned>(lbEntries * depthScale);
        return smt2 ? lb / 2 : lb;
    }
    unsigned sbPerThread() const
    {
        unsigned sb = static_cast<unsigned>(sbEntries * depthScale);
        return smt2 ? sb / 2 : sb;
    }
    unsigned rsTotal() const
    {
        return static_cast<unsigned>(rsEntries * depthScale);
    }
};

/** A ConstableConfig with the mechanism switched off (baseline default). */
inline ConstableConfig
disabledConstable()
{
    ConstableConfig c;
    c.enabled = false;
    return c;
}

/** Which optimizations run on top of the baseline. The paper's baseline
 *  already includes MRN plus move/zero elimination, constant and branch
 *  folding (always on in this core). */
struct MechanismConfig
{
    bool mrn = true;
    bool eves = false;
    bool elar = false;
    bool rfp = false;
    ConstableConfig constable = disabledConstable();
    IdealSpec ideal;
    unsigned rfpLatency = 5;
};

} // namespace constable

#endif
