#include "cpu/core.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace constable {

OooCore::OooCore(const CoreConfig& core_cfg, const MechanismConfig& mech_cfg,
                 std::vector<const Trace*> traces,
                 const std::unordered_set<PC>* global_stable)
    : cfg(core_cfg), mech(mech_cfg), globalStable(global_stable),
      memory(core_cfg.mem), engine(mech_cfg.constable)
{
    if (traces.empty() || traces.size() > 2)
        fatal("OooCore: need 1 or 2 traces");
    if (traces.size() == 2 && !cfg.smt2)
        fatal("OooCore: two traces require smt2");

    threads.resize(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        threads[i].trace = traces[i];
        threads[i].renameMap.fill(Ref{});
        threads[i].recentOps.reserve(32);
    }

    size_t totalSlots = static_cast<size_t>(cfg.robPerThread()) *
                            traces.size() + 8;
    slots.resize(totalSlots);
    freeSlots.reserve(totalSlots);
    for (size_t i = 0; i < totalSlots; ++i)
        freeSlots.push_back(static_cast<int>(totalSlots - 1 - i));
    blockedLoads.reserve(64);
    for (ReadyQueue& q : readyQ)
        q.heap.reserve(64);

    // Warm L2/LLC with the trace footprint (memory-state snapshot).
    // Repeated warmLine() calls on a present line are no-ops, so dedupe
    // up front: one hash probe replaces three set-associative way scans
    // for every revisited line of the footprint.
    std::unordered_set<Addr> warmed;
    warmed.reserve(1024);
    for (const ThreadCtx& t : threads) {
        for (const MicroOp& op : t.trace->ops) {
            if (op.isMem() && warmed.insert(lineAddr(op.effAddr)).second)
                memory.warmLine(lineAddr(op.effAddr));
        }
    }

    if (mech.constable.enabled && !mech.constable.cvBitPinning) {
        // Constable-AMT-I: private-cache evictions kill AMT tracking.
        memory.setL1EvictHook([this](Addr line, bool dirty) {
            engine.onL1Evict(line);
        });
    }
}

bool
OooCore::refValid(const Ref& r) const
{
    return r.slot >= 0 && slots[r.slot].valid && slots[r.slot].gen == r.gen;
}

int
OooCore::allocSlot()
{
    if (freeSlots.empty())
        return -1;
    int s = freeSlots.back();
    freeSlots.pop_back();
    InFlight& e = slots[s];
    // Aggregate reset of the trivially-copyable part; the consumer list
    // keeps its (already empty, see wakeConsumers/freeSlot) spill storage.
    static_cast<InFlightState&>(e) = InFlightState{};
    e.consumers.clear();
    e.gen = genCounter++;
    e.valid = true;
    return s;
}

void
OooCore::freeSlot(int slot)
{
    slots[slot].valid = false;
    freeSlots.push_back(slot);
}

void
OooCore::schedule(int slot, EventKind kind, unsigned delay)
{
    if (delay == 0)
        delay = 1;
    if (delay >= kWheelSize)
        delay = kWheelSize - 1;
    unsigned idx = (now + delay) % kWheelSize;
    wheel[idx].push_back(Event{ slot, slots[slot].gen, kind });
    wheelOccupied[idx / 64] |= 1ull << (idx % 64);
    ++pendingEvents;
}

/** Smallest delay d >= 1 with a populated wheel bucket; 0 when the wheel is
 *  empty. The current bucket is always drained, so a set bit is never at
 *  delay 0. */
unsigned
OooCore::nextEventDelay() const
{
    if (pendingEvents == 0)
        return 0;
    constexpr unsigned kWords = kWheelSize / 64;
    unsigned cur = static_cast<unsigned>(now % kWheelSize);
    unsigned s0 = (cur + 1) % kWheelSize;
    unsigned found = kWheelSize;
    uint64_t head = wheelOccupied[s0 / 64] & (~0ull << (s0 % 64));
    if (head != 0) {
        found = (s0 / 64) * 64 +
                static_cast<unsigned>(std::countr_zero(head));
    } else {
        for (unsigned i = 1; i <= kWords; ++i) {
            unsigned w = (s0 / 64 + i) % kWords;
            uint64_t bits = wheelOccupied[w];
            if (w == s0 / 64) // wrapped: only bits below the start count
                bits &= (s0 % 64) ? ((1ull << (s0 % 64)) - 1) : 0;
            if (bits != 0) {
                found = w * 64 +
                        static_cast<unsigned>(std::countr_zero(bits));
                break;
            }
        }
    }
    return (found + kWheelSize - cur) % kWheelSize;
}

void
OooCore::addReady(int slot)
{
    InFlight& e = at(slot);
    e.state = State::Ready;
    e.readyAt = now + 1;
    unsigned port = static_cast<unsigned>(portOf(e));
    ReadyQueue& q = readyQ[port];
    q.heap.push_back(ReadyEntry{ e.gen, slot });
    std::push_heap(q.heap.begin(), q.heap.end(),
                   [](const ReadyEntry& a, const ReadyEntry& b) {
                       return a.gen > b.gen;
                   });
    ++q.live;
    if (port == static_cast<unsigned>(PortType::Load) && !e.isGsLoad)
        ++readyNonGsLoads;
}

void
OooCore::removeReady(int slot)
{
    // Lazy invalidation: only the live count drops; the heap entry stays
    // behind and popReady() discards it by generation mismatch (the slot is
    // freed or re-allocated under a strictly larger gen).
    InFlight& e = at(slot);
    unsigned port = static_cast<unsigned>(portOf(e));
    --readyQ[port].live;
    if (port == static_cast<unsigned>(PortType::Load) && !e.isGsLoad)
        --readyNonGsLoads;
}

/** Pop the oldest live ready op on a port, discarding stale heap entries on
 *  the way; -1 when nothing live remains. */
int
OooCore::popReady(unsigned port)
{
    ReadyQueue& q = readyQ[port];
    auto older = [](const ReadyEntry& a, const ReadyEntry& b) {
        return a.gen > b.gen;
    };
    while (!q.heap.empty()) {
        ReadyEntry top = q.heap.front();
        std::pop_heap(q.heap.begin(), q.heap.end(), older);
        q.heap.pop_back();
        InFlight& e = slots[top.slot];
        if (e.valid && e.gen == top.gen && e.state == State::Ready) {
            --q.live;
            if (port == static_cast<unsigned>(PortType::Load) &&
                !e.isGsLoad)
                --readyNonGsLoads;
            return top.slot;
        }
    }
    return -1;
}

OooCore::PortType
OooCore::portOf(const InFlight& e) const
{
    if (e.op.isLoad())
        return PortType::Load;
    if (e.op.isStore())
        return PortType::Sta;
    if (e.op.cls == OpClass::Branch)
        return PortType::Branch;
    return PortType::Alu;
}

unsigned
OooCore::pickThread() const
{
    if (threads.size() == 1)
        return 0;
    // ICOUNT-style: among fetchable threads, fewer in-flight ops wins; a
    // frontend-blocked thread cedes the rename stage to its sibling.
    auto weight = [this](const ThreadCtx& t) -> size_t {
        if (t.done)
            return SIZE_MAX;
        if (now < t.frontendBlockedUntil || refValid(t.pendingBranch))
            return SIZE_MAX - 1;
        return t.rob.size();
    };
    size_t s0 = weight(threads[0]);
    size_t s1 = weight(threads[1]);
    return s0 <= s1 ? 0 : 1;
}

bool
OooCore::overlaps(Addr a1, unsigned s1, Addr a2, unsigned s2) const
{
    return a1 < a2 + s2 && a2 < a1 + s1;
}

// ------------------------------------------------------------------ rename

void
OooCore::injectWrongPath(ThreadCtx& t)
{
    if (!mech.constable.enabled || !mech.constable.wrongPathUpdates)
        return;
    if (t.recentOps.empty())
        return;
    // Wrong-path micro-ops rename (and pollute the RMT/SLD) but are
    // squashed before allocation, so they never hold ROB/RS resources.
    for (unsigned w = 0; w < cfg.renameWidth; ++w) {
        const MicroOp& op = t.recentOps[t.recentIdx++ % t.recentOps.size()];
        if (op.dst != kNoReg) {
            unsigned n = engine.renameDstWrite(op.dst);
            sldUpdateTotal += n;
        }
    }
}

bool
OooCore::renameOne(ThreadCtx& t, unsigned& loads_this_cycle,
                   unsigned& sld_updates_this_cycle)
{
    if (t.traceIdx >= t.trace->ops.size())
        return false;
    const MicroOp& op = t.trace->ops[t.traceIdx];

    // Structural resource checks (allocate stage).
    if (t.rob.size() >= cfg.robPerThread()) {
        ++stallRobFull;
        return false;
    }
    bool classRenameDone =
        op.cls == OpClass::Nop || op.cls == OpClass::Jump ||
        op.cls == OpClass::Move || op.cls == OpClass::ZeroIdiom ||
        op.cls == OpClass::StackAdj;
    if (!classRenameDone && rsUsed >= cfg.rsTotal()) {
        ++stallRsFull;
        return false;
    }
    if (op.isLoad() && t.lbUsed >= cfg.lbPerThread()) {
        ++stallLbFull;
        return false;
    }
    if (op.isStore() && t.sbUsed >= cfg.sbPerThread()) {
        ++stallSbFull;
        return false;
    }

    // SLD read-port constraint: at most 3 load lookups per rename group
    // (§6.7.1); a fourth load stalls the group to the next cycle.
    if (op.isLoad() && mech.constable.enabled &&
        loads_this_cycle >= engine.config().sld.readPorts) {
        ++renameStallsSldRead;
        return false;
    }

    int s = allocSlot();
    if (s < 0)
        return false;
    InFlight& e = at(s);
    e.op = op;
    e.traceIdx = t.traceIdx;
    e.seq = t.nextSeq;
    e.tid = static_cast<ThreadId>(&t - threads.data());
    ++robAllocs;
    ++renamedOps;

    // Branch direction prediction at fetch; jumps are branch-folded.
    bool mispredict = false;
    if (op.cls == OpClass::Branch) {
        bool pred = branchPred.predict(op.pc);
        branchPred.update(op.pc, op.taken);
        mispredict = pred != op.taken;
        if (mispredict)
            ++branchMispredicts;
    }

    if (classRenameDone)
        e.doneAtRename = true;

    bool registerSrcDeps = !classRenameDone;

    if (op.isLoad()) {
        ++loads_this_cycle;
        e.isGsLoad = globalStable && globalStable->count(op.pc);
        bool handled = false;

        // Oracle configurations (Fig 7).
        if (mech.ideal.mode != IdealMode::None &&
            mech.ideal.stablePcs.count(op.pc)) {
            if (mech.ideal.mode == IdealMode::Constable) {
                e.idealEliminated = true;
                e.doneAtRename = true;
                e.lbAddr = op.effAddr;
                e.lbAddrValid = true;
                e.loadValueDelivered = true;
                e.elimValue = op.value;
                handled = true;
            } else {
                e.vpApplied = true;
                e.valueAvailable = true;
                if (mech.ideal.mode == IdealMode::StableLvpNoFetch)
                    e.noDataFetch = true;
                handled = true;
            }
        }

        // Constable (steps 1-3 of Fig 8).
        if (!handled && mech.constable.enabled) {
            ElimDecision d = engine.renameLoad(op.pc, op.addrMode);
            if (d.eliminate) {
                e.eliminated = true;
                e.xprfHeld = true;
                e.doneAtRename = true;
                e.lbAddr = d.addr;
                e.lbAddrValid = true;
                e.loadValueDelivered = true;
                e.elimValue = d.value;
                handled = true;
            } else {
                e.likelyStableMarked = d.likelyStable;
            }
        }

        // EVES load value prediction.
        if (!handled && mech.eves) {
            ValuePrediction p = eves.predict(op.pc);
            eves.notifyRename(op.pc);
            e.evesTracked = true;
            if (p.valid) {
                e.vpApplied = true;
                e.valueAvailable = true;
                e.evesPredicted = true;
                e.vpWrong = p.value != op.value;
                if (e.vpWrong)
                    ++vpWrongByPc[op.pc];
                handled = true;
            }
        }

        // Memory Renaming: forward from the predicted in-flight store.
        if (!handled && mech.mrn) {
            MrnPrediction p = mrn.predict(op.pc);
            if (p.valid) {
                auto it = t.lastStoreByPc.find(p.storePc);
                if (it != t.lastStoreByPc.end() && refValid(it->second)) {
                    const InFlight& st = at(it->second.slot);
                    e.vpApplied = true;
                    e.valueAvailable = true;
                    e.mrnForwarded = true;
                    e.vpWrong = st.op.value != op.value;
                    if (e.vpWrong)
                        ++vpWrongByPc[op.pc];
                    ++mrn.predictions;
                    if (e.vpWrong)
                        ++mrn.misforwards;
                    else
                        ++mrn.correctForwards;
                    handled = true;
                }
            }
        }

        // Register File Prefetching: early access via predicted address.
        if (!handled && mech.rfp) {
            RfpPrediction p = rfp.predict(op.pc);
            if (p.valid) {
                e.vpApplied = true;
                e.rfpPredicted = true;
                e.vpWrong = p.addr != op.effAddr;
                schedule(s, EventKind::ValueAvail, mech.rfpLatency);
                handled = true;
            }
        }

        // ELAR: stack loads have their address resolved before execute.
        if (mech.elar && op.addrMode == AddrMode::StackRel &&
            !e.doneAtRename) {
            e.elarReady = true;
            registerSrcDeps = false; // address needs no register sources
        }
        if (e.doneAtRename)
            registerSrcDeps = false;
    }

    // Register source dependences (rename lookup of the RAT).
    if (registerSrcDeps) {
        for (uint8_t src : op.src) {
            if (src == kNoReg)
                continue;
            Ref w = t.renameMap[src];
            if (!refValid(w))
                continue;
            InFlight& p = at(w.slot);
            if (p.state == State::Done || p.doneAtRename ||
                p.valueAvailable)
                continue;
            p.consumers.push_back(Ref{ s, e.gen });
            ++e.pendingSrcs;
        }
    }

    // Constable steps 7-8: every instruction's destination write drains the
    // RMT and resets listed loads in the SLD; the SLD has 2 write ports, so
    // a third update in one cycle stalls the rename group (§6.7.1).
    bool stopAfterThis = false;
    if (mech.constable.enabled && op.dst != kNoReg) {
        unsigned n = engine.renameDstWrite(op.dst);
        sld_updates_this_cycle += n;
        sldUpdateTotal += n;
        if (sld_updates_this_cycle > engine.config().sld.writePorts) {
            ++renameStallsSldWrite;
            stopAfterThis = true;
        }
    }

    // Rename-map update with squash checkpoint.
    e.dstReg = op.dst;
    if (op.dst != kNoReg) {
        e.prevWriter = t.renameMap[op.dst];
        t.renameMap[op.dst] = Ref{ s, e.gen };
        // The superseded writer's xPRF register can be reclaimed: its
        // mapping is no longer architecturally visible and all in-flight
        // consumers took their mapping at their own rename.
        if (refValid(e.prevWriter)) {
            InFlight& prev = at(e.prevWriter.slot);
            if (prev.xprfHeld) {
                prev.xprfHeld = false;
                engine.releaseEliminated();
            }
        }
    }

    // Allocate downstream resources.
    if (!e.doneAtRename) {
        ++rsUsed;
        e.inRs = true;
        ++rsAllocs;
    }
    if (op.isLoad()) {
        ++t.lbUsed;
        t.loadList.push_back(s);
    }
    if (op.isStore()) {
        ++t.sbUsed;
        t.storeList.push_back(s);
        t.lastStoreByPc[op.pc] = Ref{ s, e.gen };
    }
    t.rob.push_back(s);

    // Wrong-path template ring.
    if (t.recentOps.size() < 32)
        t.recentOps.push_back(op);
    else
        t.recentOps[e.seq % 32] = op;

    if (e.doneAtRename) {
        e.state = State::Done;
        e.valueAvailable = true;
    } else if (e.pendingSrcs == 0) {
        addReady(s);
    }

    ++t.traceIdx;
    ++t.nextSeq;

    if (mispredict) {
        // Frontend redirect: no younger op enters the pipeline until the
        // branch resolves at execute plus the redirect penalty.
        t.pendingBranch = Ref{ s, e.gen };
        return false;
    }
    return !stopAfterThis;
}

void
OooCore::renameStage()
{
    unsigned tid = pickThread();
    ThreadCtx& t = threads[tid];
    unsigned loadsThisCycle = 0;
    unsigned sldUpdatesThisCycle = 0;

    bool blocked = t.done || now < t.frontendBlockedUntil ||
                   refValid(t.pendingBranch);
    if (blocked) {
        if (!t.done) {
            ++stallFrontend;
            if (refValid(t.pendingBranch))
                ++stallPendingBranch;
        }
        if (refValid(t.pendingBranch))
            injectWrongPath(t);
    } else {
        unsigned renamed = 0;
        for (unsigned w = 0; w < cfg.renameWidth; ++w) {
            if (!renameOne(t, loadsThisCycle, sldUpdatesThisCycle))
                break;
            ++renamed;
        }
        if (renamed == 0)
            ++renameZeroCycles;
    }
    if (mech.constable.enabled) {
        sldUpdateHist.add(sldUpdatesThisCycle);
        ++sldUpdateCycles;
    }
}

// ------------------------------------------------------------------- issue

void
OooCore::issueStage()
{
    unsigned capacity[4] = { cfg.aluPorts, cfg.loadPorts, cfg.staPorts,
                             cfg.aluPorts };

    // Replenish load-issue tokens (burst cap: one cycle's worth extra).
    loadTokens = std::min(loadTokens + cfg.loadPorts, 2 * cfg.loadPorts);

    // Branches first (they share ALU ports): fast branch resolution.
    static const unsigned order[4] = { 3, 0, 1, 2 };
    unsigned branchIssued = 0;
    for (unsigned oi = 0; oi < 4; ++oi) {
        unsigned ty = order[oi];
        unsigned used = 0;
        unsigned cap = capacity[ty];
        if (ty == static_cast<unsigned>(PortType::Alu))
            cap = cap > branchIssued ? cap - branchIssued : 0;
        bool isLoadPort = ty == static_cast<unsigned>(PortType::Load);
        bool gsIssued = false;
        while (used < cap) {
            if (isLoadPort && loadTokens < cfg.loadPortOccupancy)
                break;
            int s = popReady(ty);
            if (s < 0)
                break;
            InFlight& e = at(s);
            e.state = State::Issued;
            ++issueEvents;
            if (e.inRs) {
                e.inRs = false;
                --rsUsed;
            }
            switch (e.op.cls) {
              case OpClass::Load:
                if (!e.elarReady)
                    ++aguExecs;
                schedule(s, EventKind::AguDone, cfg.aguLat);
                loadTokens -= cfg.loadPortOccupancy;
                if (e.isGsLoad)
                    gsIssued = true;
                break;
              case OpClass::Store:
                ++aguExecs;
                schedule(s, EventKind::StaDone, cfg.aguLat);
                break;
              case OpClass::Mul:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.mulLat);
                break;
              case OpClass::Div:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.divLat);
                break;
              case OpClass::FpOp:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.fpLat);
                break;
              default:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.aluLat);
                break;
            }
            ++used;
        }
        if (ty == static_cast<unsigned>(PortType::Branch))
            branchIssued = used;
        if (ty == static_cast<unsigned>(PortType::Load)) {
            if (used > 0)
                ++loadUtilCycles;
            if (gsIssued) {
                // Fig 6b: is a non-global-stable load waiting on the same
                // ports this cycle? O(1) via the live ready-non-GS count
                // (equals what a scan of the remaining queue would find).
                if (readyNonGsLoads > 0)
                    ++gsOccupiedWaitCycles;
                else
                    ++gsOccupiedNoWaitCycles;
            }
        }
    }
}

// ------------------------------------------------------------- exec events

void
OooCore::handleEvent(int slot, uint64_t gen, EventKind kind)
{
    InFlight& e = at(slot);
    if (!e.valid || e.gen != gen)
        return; // squashed
    switch (kind) {
      case EventKind::AguDone:
        onLoadAgu(slot);
        break;
      case EventKind::StaDone:
        onStaDone(slot);
        break;
      case EventKind::ExecDone:
        completeOp(slot);
        break;
      case EventKind::ValueAvail:
        e.valueAvailable = true;
        wakeConsumers(e);
        break;
    }
}

void
OooCore::onLoadAgu(int slot)
{
    InFlight& e = at(slot);
    ThreadCtx& t = threads[e.tid];
    e.lbAddr = e.op.effAddr;
    e.lbAddrValid = true;

    // Memory dependence prediction: wait only on older unresolved stores in
    // the same store set (aggressive OOO load issue otherwise).
    Ssid lss = storeSets.lookup(e.op.pc);
    int blocking = -1;
    int fwdStore = -1;
    for (int sid : t.storeList) {
        InFlight& st = at(sid);
        if (st.seq >= e.seq)
            break;
        if (!st.storeAddrResolved) {
            if (lss != kInvalidSsid && storeSets.lookup(st.op.pc) == lss)
                blocking = sid;
        } else if (overlaps(st.op.effAddr, st.op.size, e.lbAddr,
                            e.op.size)) {
            fwdStore = sid; // keep the youngest older match
        }
    }
    if (blocking >= 0) {
        e.state = State::Blocked;
        e.blockingStore = Ref{ blocking, at(blocking).gen };
        blockedLoads.push_back(Ref{ slot, e.gen });
        return;
    }
    if (fwdStore >= 0) {
        // Store-to-load forwarding from the SB.
        e.fwdFromStorePc = at(fwdStore).op.pc;
        schedule(slot, EventKind::ExecDone, cfg.storeForwardLat);
        return;
    }
    if (e.noDataFetch) {
        // Ideal Stable LVP + data-fetch elimination: stop after the AGU.
        schedule(slot, EventKind::ExecDone, 1);
        return;
    }
    MemAccessResult res = memory.load(e.op.pc, e.op.effAddr);
    schedule(slot, EventKind::ExecDone, std::max(1u, res.latency));
}

void
OooCore::onStaDone(int slot)
{
    InFlight& st = at(slot);
    ThreadCtx& t = threads[st.tid];
    st.storeAddrResolved = true;

    // Constable step 9: the generated store address probes the AMT and
    // resets the elimination status of matching loads.
    if (mech.constable.enabled)
        engine.storeOrSnoopAddr(st.op.effAddr);

    // Memory disambiguation: any younger load with a delivered value and an
    // overlapping address violated ordering -> flush from that load. Only
    // loads can match, and loadList is program-ordered, so binary-search to
    // the first load younger than the store instead of walking the ROB.
    auto seqOf = [this](int sid, SeqNum seq) { return at(sid).seq < seq; };
    auto it = std::upper_bound(t.loadList.begin(), t.loadList.end(), st.seq,
                               [this](SeqNum seq, int sid) {
                                   return seq < at(sid).seq;
                               });
    int violSlot = -1;
    for (; it != t.loadList.end(); ++it) {
        InFlight& ld = at(*it);
        if (!ld.lbAddrValid || !ld.loadValueDelivered)
            continue;
        // Oracle eliminations are correct by construction (global-stable
        // loads never change value), so the limit study excludes them from
        // ordering flushes; the retirement golden check still verifies.
        if (ld.idealEliminated)
            continue;
        if (overlaps(st.op.effAddr, st.op.size, ld.lbAddr, ld.op.size)) {
            violSlot = *it;
            ++orderingViolations;
            if (ld.eliminated) {
                ++elimOrderingViolations;
                engine.onEliminationViolation(ld.op.pc);
            }
            storeSets.merge(ld.op.pc, st.op.pc);
            break;
        }
    }
    if (violSlot >= 0) {
        // The ROB is program-ordered too: recover the flush position by seq.
        auto rit = std::lower_bound(t.rob.begin(), t.rob.end(),
                                    at(violSlot).seq, seqOf);
        squashFrom(t, static_cast<size_t>(rit - t.rob.begin()),
                   cfg.branchMispredictPenalty);
    }

    completeOp(slot);
}

void
OooCore::wakeConsumers(InFlight& e)
{
    for (size_t i = 0; i < e.consumers.size(); ++i) {
        const Ref r = e.consumers[i];
        if (!refValid(r))
            continue;
        InFlight& c = at(r.slot);
        if (c.state != State::WaitDeps || c.pendingSrcs == 0)
            continue;
        if (--c.pendingSrcs == 0)
            addReady(r.slot);
    }
    e.consumers.clear();
}

void
OooCore::completeOp(int slot)
{
    InFlight& e = at(slot);
    ThreadCtx& t = threads[e.tid];
    e.state = State::Done;
    e.valueAvailable = true;
    wakeConsumers(e);

    if (e.op.isLoad() && !e.eliminated && !e.idealEliminated) {
        e.loadValueDelivered = true;
        // Writeback-stage training. EVES/RFP train at commit instead
        // (CVP-style): completion-time training would see out-of-order and
        // replayed instances, which poisons stride learning.
        if (mech.mrn)
            mrn.train(e.op.pc, e.fwdFromStorePc);
        if (mech.constable.enabled) {
            // Close the writeback/store race: a store younger than this
            // load may have already generated its (matching) address, so
            // its AMT probe ran before this arm would insert its entry.
            // Arming would eliminate with a value the store is about to
            // change. Probe the SB for resolved younger matching stores
            // and suppress the arm (unresolved ones are caught later by
            // the normal AMT probe at their STA).
            bool armBlocked = false;
            auto sit = std::upper_bound(t.storeList.begin(),
                                        t.storeList.end(), e.seq,
                                        [this](SeqNum seq, int sid) {
                                            return seq < at(sid).seq;
                                        });
            for (; sit != t.storeList.end(); ++sit) {
                InFlight& st2 = at(*sit);
                if (st2.storeAddrResolved &&
                    lineAddr(st2.op.effAddr) == lineAddr(e.op.effAddr)) {
                    armBlocked = true;
                    break;
                }
            }
            // Steps 4-6: arm elimination for a likely-stable load.
            bool armed = engine.writebackLoad(e.op.pc, e.op.effAddr,
                                              e.op.value,
                                              e.likelyStableMarked &&
                                                  !armBlocked,
                                              e.op.src);
            if (armed && mech.constable.cvBitPinning)
                directory.pin(lineAddr(e.op.effAddr));
        }
        // Value-speculation verification.
        if (e.vpApplied && e.vpWrong) {
            ++vpFlushes;
            if (e.mrnForwarded)
                mrn.punish(e.op.pc);
            if (e.rfpPredicted)
                rfp.punish(e.op.pc);
            // Squash everything younger than the mispredicted load.
            for (size_t i = 0; i < t.rob.size(); ++i) {
                if (t.rob[i] == slot) {
                    squashFrom(t, i + 1, cfg.valueMispredictPenalty);
                    break;
                }
            }
            e.vpWrong = false;
        }
    }

    if (e.op.cls == OpClass::Branch && refValid(t.pendingBranch) &&
        t.pendingBranch.slot == slot) {
        // Mispredicted branch resolved: redirect after the penalty.
        t.pendingBranch = Ref{};
        t.frontendBlockedUntil = now + cfg.branchMispredictPenalty;
        ++fbuBranch;
    }
}

void
OooCore::checkBlockedLoads()
{
    size_t w = 0;
    for (size_t i = 0; i < blockedLoads.size(); ++i) {
        Ref r = blockedLoads[i];
        if (!refValid(r))
            continue;
        InFlight& e = at(r.slot);
        if (e.state != State::Blocked)
            continue;
        bool storeGone = !refValid(e.blockingStore) ||
                         at(e.blockingStore.slot).storeAddrResolved;
        if (storeGone) {
            e.state = State::Issued;
            onLoadAgu(r.slot);
            if (e.state == State::Blocked) {
                // Re-blocked on another store; keep it in the list.
                blockedLoads[w++] = Ref{ r.slot, e.gen };
            }
            continue;
        }
        blockedLoads[w++] = r;
    }
    blockedLoads.resize(w);
}

// ------------------------------------------------------------------ squash

void
OooCore::squashFrom(ThreadCtx& t, size_t rob_pos, Cycle restart_delay)
{
    if (rob_pos >= t.rob.size())
        return;
    size_t firstTraceIdx = at(t.rob[rob_pos]).traceIdx;
    SeqNum firstSeq = at(t.rob[rob_pos]).seq;

    for (size_t i = t.rob.size(); i-- > rob_pos;) {
        int s = t.rob[i];
        InFlight& e = at(s);
        if (e.dstReg != kNoReg)
            t.renameMap[e.dstReg] = e.prevWriter;
        if (e.inRs)
            --rsUsed;
        if (e.state == State::Ready)
            removeReady(s);
        if (e.op.isLoad())
            --t.lbUsed;
        if (e.op.isStore())
            --t.sbUsed;
        if (e.eliminated && e.xprfHeld)
            engine.releaseEliminated();
        if (e.evesTracked)
            eves.abortInflight(e.op.pc);
        if (e.rfpPredicted)
            rfp.abortInflight(e.op.pc);
        freeSlot(s);
    }
    t.rob.resize(rob_pos);

    // Rebuild the store/load lists from surviving entries.
    t.storeList.clear();
    t.loadList.clear();
    for (int s : t.rob) {
        if (at(s).op.isStore())
            t.storeList.push_back(s);
        else if (at(s).op.isLoad())
            t.loadList.push_back(s);
    }

    if (refValid(t.pendingBranch) && at(t.pendingBranch.slot).seq >= firstSeq)
        t.pendingBranch = Ref{};

    t.traceIdx = firstTraceIdx;
    t.nextSeq = firstSeq;
    t.frontendBlockedUntil =
        std::max(t.frontendBlockedUntil, now + restart_delay);
    ++fbuSquash;
}

// ------------------------------------------------------------------ retire

void
OooCore::deliverSnoops(ThreadCtx& t, size_t upto_trace_idx)
{
    const auto& snoops = t.trace->snoops;
    while (t.snoopIdx < snoops.size() &&
           snoops[t.snoopIdx].beforeSeq <= upto_trace_idx) {
        Addr addr = snoops[t.snoopIdx].addr;
        // Step 10: snoop probes the AMT; directory CV bit resets; caches
        // invalidate the line.
        if (mech.constable.enabled) {
            engine.storeOrSnoopAddr(addr);
            ++engine.snoopResets;
        }
        directory.snoopDelivered(lineAddr(addr));
        memory.snoop(addr);
        ++t.snoopIdx;
    }
}

void
OooCore::goldenCheck(const InFlight& e)
{
    if (!e.op.isLoad())
        return;
    if (e.eliminated || e.idealEliminated) {
        if (e.lbAddr != e.op.effAddr || e.elimValue != e.op.value) {
            goldenFailed = true;
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "golden check failed: pc=%#llx addr %#llx vs "
                          "%#llx value %#llx vs %#llx",
                          (unsigned long long)e.op.pc,
                          (unsigned long long)e.lbAddr,
                          (unsigned long long)e.op.effAddr,
                          (unsigned long long)e.elimValue,
                          (unsigned long long)e.op.value);
            goldenMsg = buf;
        }
    }
    // Executed loads fetch their value from the functional trace record,
    // so their golden check is satisfied by construction.
}

void
OooCore::retireStage()
{
    unsigned budget = cfg.retireWidth;
    for (size_t round = 0; round < threads.size() && budget > 0; ++round) {
        // Alternate priority between SMT threads cycle by cycle.
        ThreadCtx& t =
            threads[(round + static_cast<size_t>(now)) % threads.size()];
        while (budget > 0 && !t.rob.empty()) {
            int s = t.rob.front();
            InFlight& e = at(s);
            if (e.state != State::Done)
                break;
            deliverSnoops(t, e.traceIdx);
            goldenCheck(e);

            if (e.op.isLoad()) {
                ++loadsRetired;
                // Commit-time predictor training (in order, exactly once).
                if (!e.eliminated && !e.idealEliminated) {
                    if (mech.eves)
                        eves.train(e.op.pc, e.op.value);
                    if (mech.rfp)
                        rfp.train(e.op.pc, e.op.effAddr);
                }
                bool gs = e.isGsLoad;
                if (gs)
                    ++gsLoadsRetired;
                if (e.eliminated || e.idealEliminated) {
                    ++loadsEliminatedRetired;
                    ++loadsElimRetiredByMode[static_cast<unsigned>(
                        e.op.addrMode)];
                    if (gs)
                        ++gsElimRetired;
                    else
                        ++nonGsElimRetired;
                } else if (e.vpApplied) {
                    ++loadsVpRetired;
                }
                --t.lbUsed;
                if (!t.loadList.empty() && t.loadList.front() == s)
                    t.loadList.pop_front();
            }
            if (e.op.isStore()) {
                // Senior-store drain into the L1D.
                memory.store(e.op.pc, e.op.effAddr);
                --t.sbUsed;
                if (!t.storeList.empty() && t.storeList.front() == s)
                    t.storeList.pop_front();
            }
            if (e.eliminated && e.xprfHeld) {
                e.xprfHeld = false;
                engine.releaseEliminated();
            }
            if (e.op.isBranch())
                eves.pushHistory(e.op.taken);

            t.rob.pop_front();
            freeSlot(s);
            ++t.retired;
            --budget;

            if (t.traceIdx >= t.trace->ops.size() && t.rob.empty()) {
                // Deliver any trailing snoops, then finish the context.
                deliverSnoops(t, t.trace->ops.size());
                t.done = true;
                t.finishCycle = now;
                break;
            }
        }
    }
}

// -------------------------------------------------------------------- run

/**
 * Idle-cycle fast-forward: when the next cycle provably does nothing but
 * bump per-cycle stall counters -- no event due, nothing ready to issue,
 * nothing retirable, the rename stage stalled for a frozen reason -- jump
 * `now` to just before the next cycle that can make progress (next
 * populated wheel bucket or frontend-unblock point) and account the skipped
 * cycles' counters in bulk. Every branch here mirrors what the skipped
 * renameStage()/issueStage() iterations would have done, so RunResult stays
 * bit-identical to the cycle-by-cycle loop (the golden snapshot test locks
 * this).
 */
void
OooCore::tryFastForward()
{
    for (const ReadyQueue& q : readyQ)
        if (q.live > 0)
            return; // issueStage would issue
    for (const ThreadCtx& t : threads)
        if (!t.rob.empty() && at(t.rob.front()).state == State::Done)
            return; // retireStage would retire

    unsigned d = nextEventDelay();
    if (d == 1)
        return; // events due next cycle
    uint64_t target = d ? now + d : UINT64_MAX;
    // A frontend-blocked thread wakes exactly at frontendBlockedUntil:
    // rename-ability and pickThread() weights are frozen strictly before it.
    for (const ThreadCtx& t : threads)
        if (!t.done && t.frontendBlockedUntil > now)
            target = std::min<uint64_t>(target, t.frontendBlockedUntil);
    target = std::min<uint64_t>(target, cfg.maxCycles);
    if (target <= now + 1)
        return;

    // Replicate the one rename attempt every skipped cycle would make (all
    // inputs are frozen across the window, so one evaluation stands for k).
    const Cycle c = now + 1;
    unsigned tid = 0;
    if (threads.size() > 1) {
        auto weight = [&](const ThreadCtx& t) -> size_t {
            if (t.done)
                return SIZE_MAX;
            if (c < t.frontendBlockedUntil || refValid(t.pendingBranch))
                return SIZE_MAX - 1;
            return t.rob.size();
        };
        tid = weight(threads[0]) <= weight(threads[1]) ? 0 : 1;
    }
    ThreadCtx& t = threads[tid];
    bool pb = refValid(t.pendingBranch);
    bool blocked = t.done || c < t.frontendBlockedUntil || pb;
    uint64_t dFrontend = 0, dPendingBranch = 0, dRobFull = 0, dRsFull = 0;
    uint64_t dLbFull = 0, dSbFull = 0, dSldRead = 0, dZero = 0;
    if (blocked) {
        // Wrong-path injection mutates the RMT/SLD every blocked cycle;
        // those cycles cannot be batched.
        if (pb && mech.constable.enabled && mech.constable.wrongPathUpdates &&
            !t.recentOps.empty())
            return;
        if (!t.done) {
            dFrontend = 1;
            dPendingBranch = pb ? 1 : 0;
        }
    } else if (t.traceIdx >= t.trace->ops.size()) {
        dZero = 1; // trace drained; renameOne returns without a stall stat
    } else {
        const MicroOp& op = t.trace->ops[t.traceIdx];
        bool classRenameDone =
            op.cls == OpClass::Nop || op.cls == OpClass::Jump ||
            op.cls == OpClass::Move || op.cls == OpClass::ZeroIdiom ||
            op.cls == OpClass::StackAdj;
        if (t.rob.size() >= cfg.robPerThread()) {
            dRobFull = dZero = 1;
        } else if (!classRenameDone && rsUsed >= cfg.rsTotal()) {
            dRsFull = dZero = 1;
        } else if (op.isLoad() && t.lbUsed >= cfg.lbPerThread()) {
            dLbFull = dZero = 1;
        } else if (op.isStore() && t.sbUsed >= cfg.sbPerThread()) {
            dSbFull = dZero = 1;
        } else if (op.isLoad() && mech.constable.enabled &&
                   engine.config().sld.readPorts == 0) {
            dSldRead = dZero = 1;
        } else if (freeSlots.empty()) {
            dZero = 1;
        } else {
            return; // the next cycle would rename: real progress
        }
    }

    uint64_t k = target - 1 - now;
    stallFrontend += dFrontend * k;
    stallPendingBranch += dPendingBranch * k;
    stallRobFull += dRobFull * k;
    stallRsFull += dRsFull * k;
    stallLbFull += dLbFull * k;
    stallSbFull += dSbFull * k;
    renameStallsSldRead += dSldRead * k;
    renameZeroCycles += dZero * k;
    if (mech.constable.enabled) {
        sldUpdateHist.add(0, k);
        sldUpdateCycles += k;
    }
    // issueStage token replenish saturates monotonically: k steps == one.
    loadTokens = static_cast<unsigned>(
        std::min<uint64_t>(loadTokens + k * cfg.loadPorts,
                           2 * cfg.loadPorts));
    now = target - 1;
}

RunResult
OooCore::run()
{
    bool allDone = false;
    while (!allDone && now < cfg.maxCycles) {
        tryFastForward();
        ++now;
        auto& events = wheel[now % kWheelSize];
        if (!events.empty()) {
            // Recycled slab: drain in place (schedule() can never target
            // the live bucket -- delays are clamped to [1, kWheelSize-1])
            // and clear() keeps the capacity for the next lap.
            size_t n = events.size();
            pendingEvents -= n;
            unsigned idx = static_cast<unsigned>(now % kWheelSize);
            wheelOccupied[idx / 64] &= ~(1ull << (idx % 64));
            for (size_t i = 0; i < n; ++i) {
                Event ev = events[i];
                handleEvent(ev.slot, ev.gen, ev.kind);
            }
            events.clear();
        }
        checkBlockedLoads();
        retireStage();
        issueStage();
        renameStage();

        allDone = true;
        for (const ThreadCtx& t : threads)
            allDone &= t.done;
    }
    if (!allDone)
        panic("OooCore: exceeded maxCycles (model deadlock?)");

    RunResult r;
    r.cycles = now;
    for (size_t i = 0; i < threads.size(); ++i) {
        r.instructions += threads[i].retired;
        r.threadInstructions[i] = threads[i].retired;
        r.threadFinishCycle[i] = threads[i].finishCycle;
    }
    r.goldenCheckFailed = goldenFailed;
    r.goldenCheckMessage = goldenMsg;
    exportFinalStats(r);
    return r;
}

void
OooCore::exportFinalStats(RunResult& r)
{
    StatSet& s = r.stats;
    s.set("cycles", static_cast<double>(now));
    s.set("instructions", static_cast<double>(r.instructions));
    s.set("ipc", r.ipc());
    s.set("rob.allocs", static_cast<double>(robAllocs));
    s.set("rs.allocs", static_cast<double>(rsAllocs));
    s.set("issue.events", static_cast<double>(issueEvents));
    s.set("renamed.ops", static_cast<double>(renamedOps));
    s.set("exec.alu", static_cast<double>(aluExecs));
    s.set("exec.agu", static_cast<double>(aguExecs));
    s.set("branch.lookups", static_cast<double>(branchPred.lookups));
    s.set("branch.mispredicts", static_cast<double>(branchMispredicts));
    s.set("loads.retired", static_cast<double>(loadsRetired));
    s.set("loads.eliminated", static_cast<double>(loadsEliminatedRetired));
    s.set("loads.vp", static_cast<double>(loadsVpRetired));
    s.set("loads.gs", static_cast<double>(gsLoadsRetired));
    s.set("loads.gsEliminated", static_cast<double>(gsElimRetired));
    s.set("loads.nonGsEliminated", static_cast<double>(nonGsElimRetired));
    s.set("loads.elim.pcRel", static_cast<double>(loadsElimRetiredByMode[
        static_cast<unsigned>(AddrMode::PcRel)]));
    s.set("loads.elim.stackRel", static_cast<double>(loadsElimRetiredByMode[
        static_cast<unsigned>(AddrMode::StackRel)]));
    s.set("loads.elim.regRel", static_cast<double>(loadsElimRetiredByMode[
        static_cast<unsigned>(AddrMode::RegRel)]));
    s.set("ordering.violations", static_cast<double>(orderingViolations));
    s.set("ordering.elimViolations",
          static_cast<double>(elimOrderingViolations));
    s.set("vp.flushes", static_cast<double>(vpFlushes));
    s.set("eves.predictions", static_cast<double>(eves.predictions));
    s.set("mrn.predictions", static_cast<double>(mrn.predictions));
    s.set("mrn.misforwards", static_cast<double>(mrn.misforwards));
    s.set("rfp.predictions", static_cast<double>(rfp.predictions));
    s.set("cycles.loadUtil", static_cast<double>(loadUtilCycles));
    s.set("cycles.gsOccupiedWait", static_cast<double>(gsOccupiedWaitCycles));
    s.set("cycles.gsOccupiedNoWait",
          static_cast<double>(gsOccupiedNoWaitCycles));
    s.set("stall.frontend", static_cast<double>(stallFrontend));
    s.set("stall.pendingBranch", static_cast<double>(stallPendingBranch));
    s.set("fbu.branch", static_cast<double>(fbuBranch));
    s.set("fbu.squash", static_cast<double>(fbuSquash));
    s.set("stall.robFull", static_cast<double>(stallRobFull));
    s.set("stall.rsFull", static_cast<double>(stallRsFull));
    s.set("stall.lbFull", static_cast<double>(stallLbFull));
    s.set("stall.sbFull", static_cast<double>(stallSbFull));
    s.set("stall.renameZero", static_cast<double>(renameZeroCycles));
    s.set("rename.stalls.sldRead", static_cast<double>(renameStallsSldRead));
    s.set("rename.stalls.sldWrite",
          static_cast<double>(renameStallsSldWrite));
    s.set("sld.updates.total", static_cast<double>(sldUpdateTotal));
    s.set("sld.updates.cycles", static_cast<double>(sldUpdateCycles));
    s.set("sld.updates.perCycle",
          ratio(static_cast<double>(sldUpdateTotal),
                static_cast<double>(sldUpdateCycles)));
    for (size_t b = 0; b < sldUpdateHist.numBuckets(); ++b) {
        s.set("sld.updates.hist." + std::to_string(b),
              sldUpdateHist.bucketFrac(b));
    }
    for (const auto& [pc, n] : vpWrongByPc) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "debug.vpwrong.%llx",
                      (unsigned long long)pc);
        s.set(buf, static_cast<double>(n));
    }
    s.set("directory.pins", static_cast<double>(directory.pinCount));
    s.set("directory.snoops",
          static_cast<double>(directory.snoopsDelivered));
    memory.exportStats(s);
    engine.exportStats(s);
}

} // namespace constable
