/**
 * @file
 * OooCore construction (resource sizing, cache warm-up, mechanism attach)
 * and end-of-run statistics export. The per-cycle stage logic lives in
 * cpu/rename.cc, cpu/schedule.cc, cpu/mem_pipe.cc and cpu/retire.cc.
 */

#include "cpu/core.hh"

#include <cstdio>
#include <unordered_set>

#include "common/logging.hh"

namespace constable {

OooCore::OooCore(const CoreConfig& core_cfg, const MechanismConfig& mech_cfg,
                 std::vector<const Trace*> traces,
                 const std::unordered_set<PC>* global_stable)
    : CoreState(core_cfg, mech_cfg)
{
    globalStable = global_stable;
    if (traces.empty() || traces.size() > 2)
        fatal("OooCore: need 1 or 2 traces");
    if (traces.size() == 2 && !cfg.smt2)
        fatal("OooCore: two traces require smt2");

    threads.resize(traces.size());
    for (size_t i = 0; i < traces.size(); ++i) {
        threads[i].trace = traces[i];
        threads[i].renameMap.fill(SlotRef{});
        threads[i].recentOps.reserve(32);
    }

    size_t totalSlots = static_cast<size_t>(cfg.robPerThread()) *
                            traces.size() + 8;
    slots.resize(totalSlots);
    freeSlots.reserve(totalSlots);
    for (size_t i = 0; i < totalSlots; ++i)
        freeSlots.push_back(static_cast<int>(totalSlots - 1 - i));
    blockedLoads.reserve(64);
    for (ReadyQueue& q : readyQ)
        q.heap.reserve(64);

    // Warm L2/LLC with the trace footprint (memory-state snapshot).
    // Repeated warmLine() calls on a present line are no-ops, so dedupe
    // up front: one hash probe replaces three set-associative way scans
    // for every revisited line of the footprint.
    std::unordered_set<Addr> warmed;
    warmed.reserve(1024);
    for (const ThreadCtx& t : threads) {
        for (const MicroOp& op : t.trace->ops) {
            if (op.isMem() && warmed.insert(lineAddr(op.effAddr)).second)
                memory.warmLine(lineAddr(op.effAddr));
        }
    }

    mechs.attach(*this);
}

void
OooCore::exportFinalStats(RunResult& r)
{
    StatSet& s = r.stats;
    s.set("cycles", static_cast<double>(now));
    s.set("instructions", static_cast<double>(r.instructions));
    s.set("ipc", r.ipc());
    s.set("rob.allocs", static_cast<double>(robAllocs));
    s.set("rs.allocs", static_cast<double>(rsAllocs));
    s.set("issue.events", static_cast<double>(issueEvents));
    s.set("renamed.ops", static_cast<double>(renamedOps));
    s.set("exec.alu", static_cast<double>(aluExecs));
    s.set("exec.agu", static_cast<double>(aguExecs));
    s.set("branch.lookups", static_cast<double>(branchPred.lookups));
    s.set("branch.mispredicts", static_cast<double>(branchMispredicts));
    s.set("loads.retired", static_cast<double>(loadsRetired));
    s.set("loads.eliminated", static_cast<double>(loadsEliminatedRetired));
    s.set("loads.vp", static_cast<double>(loadsVpRetired));
    s.set("loads.gs", static_cast<double>(gsLoadsRetired));
    s.set("loads.gsEliminated", static_cast<double>(gsElimRetired));
    s.set("loads.nonGsEliminated", static_cast<double>(nonGsElimRetired));
    s.set("loads.elim.pcRel", static_cast<double>(loadsElimRetiredByMode[
        static_cast<unsigned>(AddrMode::PcRel)]));
    s.set("loads.elim.stackRel", static_cast<double>(loadsElimRetiredByMode[
        static_cast<unsigned>(AddrMode::StackRel)]));
    s.set("loads.elim.regRel", static_cast<double>(loadsElimRetiredByMode[
        static_cast<unsigned>(AddrMode::RegRel)]));
    s.set("ordering.violations", static_cast<double>(orderingViolations));
    s.set("ordering.elimViolations",
          static_cast<double>(elimOrderingViolations));
    s.set("vp.flushes", static_cast<double>(vpFlushes));
    s.set("cycles.loadUtil", static_cast<double>(loadUtilCycles));
    s.set("cycles.gsOccupiedWait", static_cast<double>(gsOccupiedWaitCycles));
    s.set("cycles.gsOccupiedNoWait",
          static_cast<double>(gsOccupiedNoWaitCycles));
    s.set("stall.frontend", static_cast<double>(stallFrontend));
    s.set("stall.pendingBranch", static_cast<double>(stallPendingBranch));
    s.set("fbu.branch", static_cast<double>(fbuBranch));
    s.set("fbu.squash", static_cast<double>(fbuSquash));
    s.set("stall.robFull", static_cast<double>(stallRobFull));
    s.set("stall.rsFull", static_cast<double>(stallRsFull));
    s.set("stall.lbFull", static_cast<double>(stallLbFull));
    s.set("stall.sbFull", static_cast<double>(stallSbFull));
    s.set("stall.renameZero", static_cast<double>(renameZeroCycles));
    s.set("rename.stalls.sldRead", static_cast<double>(renameStallsSldRead));
    s.set("rename.stalls.sldWrite",
          static_cast<double>(renameStallsSldWrite));
    s.set("sld.updates.total", static_cast<double>(sldUpdateTotal));
    s.set("sld.updates.cycles", static_cast<double>(sldUpdateCycles));
    s.set("sld.updates.perCycle",
          ratio(static_cast<double>(sldUpdateTotal),
                static_cast<double>(sldUpdateCycles)));
    for (size_t b = 0; b < sldUpdateHist.numBuckets(); ++b) {
        s.set("sld.updates.hist." + std::to_string(b),
              sldUpdateHist.bucketFrac(b));
    }
    // StatSet keys on a std::map, so insertion order of these per-PC
    // counters never reaches serialized bytes or reports. lint:ordered
    for (const auto& [pc, n] : vpWrongByPc) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "debug.vpwrong.%llx",
                      (unsigned long long)pc);
        s.set(buf, static_cast<double>(n));
    }
    s.set("directory.pins", static_cast<double>(directory.pinCount));
    s.set("directory.snoops",
          static_cast<double>(directory.snoopsDelivered));
    memory.exportStats(s);
    mechs.exportStats(s);
}

} // namespace constable
