/**
 * @file
 * Trace-driven, cycle-level out-of-order core modeling the nine-stage
 * pipeline of the paper's Fig 1 (fetch/decode/allocate/rename/issue/
 * execute/memory/writeback/retire collapse here into rename, allocate,
 * issue/execute, complete and retire events over explicit ROB/RS/LB/SB and
 * issue-port resources). Supports the baseline rename optimizations (MRN,
 * move/zero elimination, constant/branch folding), EVES/ELAR/RFP, the
 * ideal oracle modes, and Constable itself, in noSMT or 2-way SMT.
 *
 * The trace is both the instruction stream and the functional reference:
 * every retired load passes the paper's golden check (§8.5) comparing the
 * microarchitecturally-delivered (address, value) against the trace.
 */

#ifndef CONSTABLE_CPU_CORE_HH
#define CONSTABLE_CPU_CORE_HH

#include <array>
#include <deque>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/small_vec.hh"
#include "common/stats.hh"
#include "cpu/config.hh"
#include "mem/directory.hh"
#include "mem/hierarchy.hh"
#include "predictor/branch.hh"
#include "predictor/storeset.hh"
#include "trace/trace.hh"
#include "vp/eves.hh"
#include "vp/mrn.hh"
#include "vp/rfp.hh"

namespace constable {

/** Outcome of one simulation run. */
struct RunResult
{
    Cycle cycles = 0;
    uint64_t instructions = 0;
    std::array<uint64_t, 2> threadInstructions { 0, 0 };
    std::array<Cycle, 2> threadFinishCycle { 0, 0 };
    bool goldenCheckFailed = false;
    std::string goldenCheckMessage;
    StatSet stats;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

class OooCore
{
  public:
    /**
     * @param traces one trace (noSMT) or two (SMT2).
     * @param global_stable optional offline-identified global-stable PCs
     *        used only for statistics classification (Fig 6b, Fig 17).
     */
    OooCore(const CoreConfig& core_cfg, const MechanismConfig& mech_cfg,
            std::vector<const Trace*> traces,
            const std::unordered_set<PC>* global_stable = nullptr);

    /** Run to completion of all trace contexts. */
    RunResult run();

    /** Event-wheel span: the farthest ahead an event can be scheduled
     *  (longer delays clamp to kWheelSize - 1). */
    static constexpr unsigned kWheelSize = 2048;

  private:
    // ------------------------------------------------------------ types
    enum class State : uint8_t {
        WaitDeps, Ready, Blocked, Issued, Done,
    };
    enum class EventKind : uint8_t {
        ExecDone,    ///< non-memory op finished / load data returned
        AguDone,     ///< load address generated -> memory stage
        StaDone,     ///< store address resolved -> disambiguation
        ValueAvail,  ///< speculative value delivered to dependents (RFP)
    };
    /** Branches share the ALU ports but issue with priority (fast branch
     *  resolution keeps mispredict windows short). */
    enum class PortType : uint8_t { Alu = 0, Load = 1, Sta = 2, Branch = 3 };

    struct Ref
    {
        int slot = -1;
        uint64_t gen = 0;
    };

    /**
     * Trivially-copyable part of an in-flight op: slot recycling resets it
     * with one aggregate assignment (memset-class code) instead of running
     * member-wise constructors, and keeps the consumer list's storage alive
     * across generations.
     */
    struct InFlightState
    {
        MicroOp op;
        uint64_t gen = 0;
        size_t traceIdx = 0;
        SeqNum seq = 0;       ///< per-thread program-order sequence
        ThreadId tid = 0;
        State state = State::WaitDeps;
        bool valid = false;

        bool inRs = false;
        bool doneAtRename = false;
        bool eliminated = false;        ///< Constable elimination
        bool idealEliminated = false;
        bool likelyStableMarked = false;
        bool vpApplied = false;         ///< dependents woken speculatively
        bool vpWrong = false;
        bool valueAvailable = false;    ///< consumers need not wait
        bool noDataFetch = false;       ///< ideal LVP-no-fetch (AGU only)
        bool elarReady = false;         ///< address resolved at decode
        bool mrnForwarded = false;
        bool evesPredicted = false;
        bool evesTracked = false;       ///< counted in E-Stride inflight
        bool xprfHeld = false;          ///< owns an xPRF register
        bool rfpPredicted = false;
        bool isGsLoad = false;          ///< PC in the global-stable set
                                        ///< (cached at rename; the set is
                                        ///< immutable during a run)
        PC fwdFromStorePc = 0;          ///< actual forwarding store (MRN train)

        Addr lbAddr = 0;
        bool lbAddrValid = false;
        uint64_t elimValue = 0;         ///< SLD-provided value (golden check)
        bool storeAddrResolved = false;
        bool loadValueDelivered = false; ///< disambiguation "completed" bit

        unsigned pendingSrcs = 0;
        uint8_t dstReg = kNoReg;
        Ref prevWriter;                 ///< rename-map checkpoint for squash
        Ref blockingStore;              ///< MDP wait target
        Cycle readyAt = 0;
    };
    static_assert(std::is_trivially_copyable_v<InFlightState>,
                  "slot recycling relies on aggregate reset");

    struct InFlight : InFlightState
    {
        /** Dependent ops woken at completion; inline for the common fan-out,
         *  spill storage retained across slot reuse. */
        SmallVec<Ref, 4> consumers;
    };

    struct ThreadCtx
    {
        const Trace* trace = nullptr;
        size_t traceIdx = 0;
        size_t snoopIdx = 0;
        SeqNum nextSeq = 0;
        std::deque<int> rob;            ///< slot ids in program order
        std::deque<int> storeList;      ///< in-flight stores, program order
        std::deque<int> loadList;       ///< in-flight loads, program order
                                        ///< (disambiguation scans loads
                                        ///< only, not the whole ROB)
        std::array<Ref, kMaxArchRegs> renameMap;
        unsigned lbUsed = 0;
        unsigned sbUsed = 0;
        Cycle frontendBlockedUntil = 0;
        Ref pendingBranch;              ///< unresolved mispredicted branch
        std::vector<MicroOp> recentOps; ///< wrong-path template ring
        size_t recentIdx = 0;
        std::unordered_map<PC, Ref> lastStoreByPc;  ///< MRN producer lookup
        uint64_t retired = 0;
        Cycle finishCycle = 0;
        bool done = false;
    };

    // ------------------------------------------------------------ stages
    void renameStage();
    bool renameOne(ThreadCtx& t, unsigned& loads_this_cycle,
                   unsigned& sld_updates_this_cycle);
    void injectWrongPath(ThreadCtx& t);
    void issueStage();
    void handleEvent(int slot, uint64_t gen, EventKind kind);
    void onLoadAgu(int slot);
    void onStaDone(int slot);
    void completeOp(int slot);
    void wakeConsumers(InFlight& e);
    void retireStage();
    void deliverSnoops(ThreadCtx& t, size_t upto_trace_idx);
    void squashFrom(ThreadCtx& t, size_t rob_pos, Cycle restart_delay);
    void checkBlockedLoads();

    // ------------------------------------------------------------ helpers
    int allocSlot();
    void freeSlot(int slot);
    InFlight& at(int slot) { return slots[slot]; }
    bool refValid(const Ref& r) const;
    void schedule(int slot, EventKind kind, unsigned delay);
    void addReady(int slot);
    void removeReady(int slot);
    int popReady(unsigned port);
    unsigned nextEventDelay() const;
    void tryFastForward();
    PortType portOf(const InFlight& e) const;
    unsigned pickThread() const;
    bool overlaps(Addr a1, unsigned s1, Addr a2, unsigned s2) const;
    void goldenCheck(const InFlight& e);
    void exportFinalStats(RunResult& r);

    // ------------------------------------------------------------ members
    CoreConfig cfg;
    MechanismConfig mech;
    std::vector<ThreadCtx> threads;
    const std::unordered_set<PC>* globalStable;

    MemHierarchy memory;
    Directory directory;
    TageLite branchPred;
    StoreSets storeSets;
    EvesPredictor eves;
    MrnTable mrn;
    RfpPredictor rfp;
    ConstableEngine engine;

    std::vector<InFlight> slots;
    std::vector<int> freeSlots;
    uint64_t genCounter = 1;

    unsigned rsUsed = 0;
    Cycle now = 0;

    /**
     * Per-port ready queue: a binary min-heap over allocation generation
     * (gens are unique and monotonically increasing, so min-gen order is
     * exactly the (tid, seq) age order the old red-black tree gave).
     * Squash does not search the heap; it just drops the live count and
     * leaves a stale entry behind that popReady() discards when it surfaces
     * (lazy invalidation). push/pop are allocation-free once the backing
     * vector has warmed.
     */
    struct ReadyEntry
    {
        uint64_t gen;
        int slot;
    };
    struct ReadyQueue
    {
        std::vector<ReadyEntry> heap;
        size_t live = 0;        ///< non-stale entries (idle-skip gate)
    };
    ReadyQueue readyQ[4];
    /** Ready (state Ready, not yet issued) loads whose PC is NOT in the
     *  global-stable set: makes the Fig 6b "is a non-GS load waiting?"
     *  check O(1) instead of a queue scan per GS-load-issue cycle. */
    uint64_t readyNonGsLoads = 0;
    std::vector<Ref> blockedLoads;
    /** Load-issue token bucket: loadPorts tokens arrive per cycle, each
     *  issued load costs loadPortOccupancy tokens (sustained bandwidth
     *  loadPorts / occupancy, age-fair across cycles). */
    unsigned loadTokens = 0;

    struct Event
    {
        int slot;
        uint64_t gen;
        EventKind kind;
    };
    /** Flat event wheel: one recycled slab per future cycle (clear() keeps
     *  capacity, so steady state schedules without allocating), plus an
     *  occupancy bitmap so the idle-cycle fast-forward finds the next
     *  populated bucket with a handful of word scans. */
    std::array<std::vector<Event>, kWheelSize> wheel;
    std::array<uint64_t, kWheelSize / 64> wheelOccupied {};
    uint64_t pendingEvents = 0;

    // ---------------------------------------------------------- statistics
    StatSet stats;
    Histogram sldUpdateHist { { 1, 2, 3, 4 } };
    uint64_t sldUpdateCycles = 0;
    uint64_t sldUpdateTotal = 0;
    uint64_t loadUtilCycles = 0;
    uint64_t gsOccupiedWaitCycles = 0;
    uint64_t gsOccupiedNoWaitCycles = 0;
    uint64_t robAllocs = 0;
    uint64_t rsAllocs = 0;
    uint64_t renameStallsSldRead = 0;
    uint64_t renameStallsSldWrite = 0;
    uint64_t elimOrderingViolations = 0;
    uint64_t orderingViolations = 0;
    uint64_t vpFlushes = 0;
    uint64_t branchMispredicts = 0;
    uint64_t loadsRetired = 0;
    uint64_t loadsEliminatedRetired = 0;
    uint64_t loadsVpRetired = 0;
    uint64_t loadsElimRetiredByMode[4] = { 0, 0, 0, 0 };
    uint64_t gsElimRetired = 0;
    uint64_t nonGsElimRetired = 0;
    uint64_t gsLoadsRetired = 0;
    uint64_t aluExecs = 0;
    uint64_t aguExecs = 0;
    uint64_t issueEvents = 0;
    uint64_t renamedOps = 0;
    // Rename-stall attribution (first blocking reason per cycle).
    uint64_t stallFrontend = 0;
    uint64_t stallPendingBranch = 0;
    uint64_t fbuBranch = 0;
    uint64_t fbuSquash = 0;
    uint64_t stallRobFull = 0;
    uint64_t stallRsFull = 0;
    uint64_t stallLbFull = 0;
    uint64_t stallSbFull = 0;
    uint64_t renameZeroCycles = 0;
    std::unordered_map<PC, uint64_t> vpWrongByPc;
    bool goldenFailed = false;
    std::string goldenMsg;
};

} // namespace constable

#endif
