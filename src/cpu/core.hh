/**
 * @file
 * Trace-driven, cycle-level out-of-order core modeling the nine-stage
 * pipeline of the paper's Fig 1 (fetch/decode/allocate/rename/issue/
 * execute/memory/writeback/retire collapse here into rename, allocate,
 * issue/execute, complete and retire events over explicit ROB/RS/LB/SB and
 * issue-port resources). Load-optimization techniques (MRN, EVES, ELAR,
 * RFP, the ideal oracles, and Constable itself) plug in through the
 * mechanism hook points of cpu/mechanism.hh; the stage logic itself lives
 * in one translation unit per pipeline region:
 *
 *   cpu/rename.cc    frontend: thread pick, wrong-path injection, rename
 *   cpu/schedule.cc  issue ports, the event wheel, idle fast-forward, run()
 *   cpu/mem_pipe.cc  AGU, disambiguation, writeback, squash recovery
 *   cpu/retire.cc    in-order retire, snoop delivery, the golden check
 *   cpu/core.cc      construction and final stat export
 *   cpu/warmup.cc    functional fast-forward + measured sampled windows
 *
 * all over the shared CoreState of cpu/core_state.hh.
 *
 * The trace is both the instruction stream and the functional reference:
 * every retired load passes the paper's golden check (§8.5) comparing the
 * microarchitecturally-delivered (address, value) against the trace.
 */

#ifndef CONSTABLE_CPU_CORE_HH
#define CONSTABLE_CPU_CORE_HH

#include <string>
#include <unordered_set>
#include <vector>

#include "common/run_result.hh"
#include "cpu/core_state.hh"

namespace constable {

class OooCore : private CoreState
{
  public:
    /**
     * @param traces one trace (noSMT) or two (SMT2).
     * @param global_stable optional offline-identified global-stable PCs
     *        used only for statistics classification (Fig 6b, Fig 17).
     */
    OooCore(const CoreConfig& core_cfg, const MechanismConfig& mech_cfg,
            std::vector<const Trace*> traces,
            const std::unordered_set<PC>* global_stable = nullptr);

    /** Run to completion of all trace contexts. */
    RunResult run();

    // ---- sampled simulation (cpu/warmup.cc; single-trace cores only) ----

    /** Cycles and retired-op count of one measured sampled window. */
    struct WindowTiming
    {
        Cycle cycles = 0;
        uint64_t ops = 0;
    };

    /** Next trace index the sampled drivers would rename (thread 0). */
    size_t sampleCursor() const { return threads[0].traceIdx; }

    /**
     * Functional fast-forward of thread 0 to trace index @p target_idx
     * without OoO scheduling. Ops at indices >= @p touch_from_idx update
     * caches/TLB, the branch predictor, the memory-dependence heuristic and
     * every active mechanism's tables (MechanismSet::warmupLoad); earlier
     * ops run a branch-predictor-only fast skip (plus snoop delivery and a
     * mechanism-table flush), so a distant window costs the cheap branch
     * replay plus the detailed-warm horizon before it.
     */
    void warmupAdvance(size_t target_idx, size_t touch_from_idx);

    /** One measured region of a chained detailed run ([begin, end) trace
     *  indices). Segments must be sorted and non-overlapping. */
    struct SampleSegment
    {
        size_t begin = 0;
        size_t end = 0;
    };

    /**
     * Run one continuous detailed stretch covering several measured
     * segments: rename from the current cursor (the fill prefix that
     * re-fills the pipeline), record the cycle at which each segment
     * boundary retires, and return per-segment cycle/op counts. Ops
     * between segments stay detailed but unmeasured, which is what keeps
     * near-adjacent windows unbiased — a squash between them would make
     * the later window measure a pipeline-refill ramp. After the last
     * segment everything still in flight is squashed so the cursor rests
     * at the first unretired op. @p rename_limit (>= the last segment
     * end) keeps the frontend fed through the tail of the measurement
     * without running ahead forever.
     */
    std::vector<WindowTiming>
    runSampleWindows(const std::vector<SampleSegment>& segs,
                     size_t rename_limit);

    /** Assemble a RunResult from the current (partially simulated) state:
     *  the sampled driver (sim/sample.cc) overwrites the cycle/instruction
     *  totals with its extrapolation. */
    RunResult sampledResult();

    /** Event-wheel span (see core_state.hh). */
    static constexpr unsigned kWheelSize = kEventWheelSize;

  private:
    // cpu/rename.cc
    void renameStage();
    bool renameOne(ThreadCtx& t, unsigned& loads_this_cycle,
                   unsigned& sld_updates_this_cycle);
    void injectWrongPath(ThreadCtx& t);
    unsigned pickThread() const;

    // cpu/schedule.cc
    void issueStage();
    void handleEvent(int slot, uint64_t gen, EventKind kind);
    void tryFastForward();

    // cpu/mem_pipe.cc
    void onLoadAgu(int slot);
    void onStaDone(int slot);
    void completeOp(int slot);
    void wakeConsumers(InFlight& e);
    void checkBlockedLoads();
    void squashFrom(ThreadCtx& t, size_t rob_pos, Cycle restart_delay);
    void storeIndexInsert(ThreadCtx& t, int slot);
    void storeIndexErase(ThreadCtx& t, int slot);

    // cpu/retire.cc
    void retireStage();
    void deliverSnoops(ThreadCtx& t, size_t upto_trace_idx);
    void goldenCheck(const InFlight& e);

    // cpu/core.cc
    void exportFinalStats(RunResult& r);
};

} // namespace constable

#endif
