/**
 * @file
 * The narrow shared state of the out-of-order core: in-flight op slots,
 * per-thread contexts, ready queues, the event wheel, and every statistic
 * counter. The pipeline-stage translation units (cpu/rename.cc,
 * cpu/schedule.cc, cpu/mem_pipe.cc, cpu/retire.cc) and the pluggable
 * load-elimination mechanisms (cpu/mechanism.hh) all operate on this one
 * struct; none of them sees the others' code.
 */

#ifndef CONSTABLE_CPU_CORE_STATE_HH
#define CONSTABLE_CPU_CORE_STATE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <deque>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.hh"
#include "common/small_vec.hh"
#include "common/stats.hh"
#include "cpu/config.hh"
#include "cpu/mechanism.hh"
#include "mem/directory.hh"
#include "mem/hierarchy.hh"
#include "predictor/branch.hh"
#include "predictor/storeset.hh"
#include "trace/trace.hh"

namespace constable {

/** Event-wheel span: the farthest ahead an event can be scheduled (longer
 *  delays clamp to kEventWheelSize - 1). */
inline constexpr unsigned kEventWheelSize = 2048;

/** Scheduling state of an in-flight op. */
enum class OpState : uint8_t {
    WaitDeps, Ready, Blocked, Issued, Done,
};

enum class EventKind : uint8_t {
    ExecDone,    ///< non-memory op finished / load data returned
    AguDone,     ///< load address generated -> memory stage
    StaDone,     ///< store address resolved -> disambiguation
    ValueAvail,  ///< speculative value delivered to dependents (RFP)
};

/** Branches share the ALU ports but issue with priority (fast branch
 *  resolution keeps mispredict windows short). */
enum class PortType : uint8_t { Alu = 0, Load = 1, Sta = 2, Branch = 3 };

/** Generation-checked reference to an in-flight slot. */
struct SlotRef
{
    int slot = -1;
    uint64_t gen = 0;
};

/**
 * Trivially-copyable part of an in-flight op: slot recycling resets it
 * with one aggregate assignment (memset-class code) instead of running
 * member-wise constructors, and keeps the consumer list's storage alive
 * across generations.
 */
struct InFlightState
{
    MicroOp op;
    uint64_t gen = 0;
    size_t traceIdx = 0;
    SeqNum seq = 0;       ///< per-thread program-order sequence
    ThreadId tid = 0;
    OpState state = OpState::WaitDeps;
    bool valid = false;

    bool inRs = false;
    bool doneAtRename = false;
    bool eliminated = false;        ///< Constable elimination
    bool idealEliminated = false;
    bool likelyStableMarked = false;
    bool vpApplied = false;         ///< dependents woken speculatively
    bool vpWrong = false;
    bool valueAvailable = false;    ///< consumers need not wait
    bool noDataFetch = false;       ///< ideal LVP-no-fetch (AGU only)
    bool elarReady = false;         ///< address resolved at decode
    bool mrnForwarded = false;
    bool evesPredicted = false;
    bool evesTracked = false;       ///< counted in E-Stride inflight
    bool xprfHeld = false;          ///< owns an xPRF register
    bool rfpPredicted = false;
    bool isGsLoad = false;          ///< PC in the global-stable set
                                    ///< (cached at rename; the set is
                                    ///< immutable during a run)
    PC fwdFromStorePc = 0;          ///< actual forwarding store (MRN train)

    Addr lbAddr = 0;
    bool lbAddrValid = false;
    uint64_t elimValue = 0;         ///< SLD-provided value (golden check)
    bool storeAddrResolved = false;
    bool loadValueDelivered = false; ///< disambiguation "completed" bit

    unsigned pendingSrcs = 0;
    uint8_t dstReg = kNoReg;
    SlotRef prevWriter;             ///< rename-map checkpoint for squash
    SlotRef blockingStore;          ///< MDP wait target
    Cycle readyAt = 0;
};
static_assert(std::is_trivially_copyable_v<InFlightState>,
              "slot recycling relies on aggregate reset");

struct InFlight : InFlightState
{
    /** Dependent ops woken at completion; inline for the common fan-out,
     *  spill storage retained across slot reuse. */
    SmallVec<SlotRef, 4> consumers;
};

struct ThreadCtx
{
    const Trace* trace = nullptr;
    size_t traceIdx = 0;
    size_t snoopIdx = 0;
    SeqNum nextSeq = 0;
    std::deque<int> rob;            ///< slot ids in program order
    std::deque<int> storeList;      ///< in-flight stores, program order
    std::deque<int> loadList;       ///< in-flight loads, program order
                                    ///< (disambiguation scans loads
                                    ///< only, not the whole ROB)
    /** In-flight stores whose address is still unresolved, in program
     *  order: the load-AGU memory-dependence check walks only these (the
     *  handful of recently issued stores) instead of the whole SB. */
    std::vector<int> unresolvedStores;
    /**
     * Resolved in-flight stores indexed by the 8-byte-aligned chunks their
     * byte range covers (a store of size <= 8 spans at most two chunks).
     * Two byte ranges that overlap share a byte and therefore a chunk, so
     * probing the load's chunks finds every forwarding candidate without
     * scanning the store buffer. Maintained incrementally: insert at STA,
     * erase at store retire and on squash.
     */
    std::unordered_map<Addr, SmallVec<int, 2>> storeAddrIndex;
    std::array<SlotRef, kMaxArchRegs> renameMap;
    unsigned lbUsed = 0;
    unsigned sbUsed = 0;
    Cycle frontendBlockedUntil = 0;
    SlotRef pendingBranch;          ///< unresolved mispredicted branch
    std::vector<MicroOp> recentOps; ///< wrong-path template ring
    size_t recentIdx = 0;
    std::unordered_map<PC, SlotRef> lastStoreByPc; ///< MRN producer lookup
    uint64_t retired = 0;
    Cycle finishCycle = 0;
    bool done = false;
    /** Rename fence for sampled windows (cpu/warmup.cc): ops at indices
     *  >= renameLimit never enter the pipeline. SIZE_MAX (the default)
     *  reproduces full-fidelity behaviour exactly. */
    size_t renameLimit = SIZE_MAX;

    /** First trace index rename must not cross (trace end or the sampled
     *  window fence, whichever is lower). */
    size_t
    opsEnd() const
    {
        return std::min(renameLimit, trace->ops.size());
    }
};

/**
 * Per-port ready queue: a binary min-heap over allocation generation
 * (gens are unique and monotonically increasing, so min-gen order is
 * exactly the (tid, seq) age order the old red-black tree gave).
 * Squash does not search the heap; it just drops the live count and
 * leaves a stale entry behind that popReady() discards when it surfaces
 * (lazy invalidation). push/pop are allocation-free once the backing
 * vector has warmed.
 */
struct ReadyEntry
{
    uint64_t gen;
    int slot;
};
struct ReadyQueue
{
    std::vector<ReadyEntry> heap;
    size_t live = 0;        ///< non-stale entries (idle-skip gate)
};

struct Event
{
    int slot;
    uint64_t gen;
    EventKind kind;
};

/** Shared core state; see file header. Construction and the run loop live
 *  in OooCore (cpu/core.hh), which derives from this. */
struct CoreState
{
    CoreState(const CoreConfig& core_cfg, const MechanismConfig& mech_cfg)
        : cfg(core_cfg), memory(core_cfg.mem), mechs(mech_cfg)
    {}

    CoreConfig cfg;
    std::vector<ThreadCtx> threads;
    const std::unordered_set<PC>* globalStable = nullptr;

    MemHierarchy memory;
    Directory directory;
    TageLite branchPred;
    StoreSets storeSets;
    /** The active load-elimination mechanisms (Constable, EVES, ...). */
    MechanismSet mechs;

    std::vector<InFlight> slots;
    std::vector<int> freeSlots;
    uint64_t genCounter = 1;

    unsigned rsUsed = 0;
    Cycle now = 0;

    ReadyQueue readyQ[4];
    /** Ready (state Ready, not yet issued) loads whose PC is NOT in the
     *  global-stable set: makes the Fig 6b "is a non-GS load waiting?"
     *  check O(1) instead of a queue scan per GS-load-issue cycle. */
    uint64_t readyNonGsLoads = 0;
    std::vector<SlotRef> blockedLoads;
    /** Load-issue token bucket: loadPorts tokens arrive per cycle, each
     *  issued load costs loadPortOccupancy tokens (sustained bandwidth
     *  loadPorts / occupancy, age-fair across cycles). */
    unsigned loadTokens = 0;

    /** Flat event wheel: one recycled slab per future cycle (clear() keeps
     *  capacity, so steady state schedules without allocating), plus an
     *  occupancy bitmap so the idle-cycle fast-forward finds the next
     *  populated bucket with a handful of word scans. */
    std::array<std::vector<Event>, kEventWheelSize> wheel;
    std::array<uint64_t, kEventWheelSize / 64> wheelOccupied {};
    uint64_t pendingEvents = 0;

    // ---------------------------------------------------------- statistics
    Histogram sldUpdateHist { { 1, 2, 3, 4 } };
    uint64_t sldUpdateCycles = 0;
    uint64_t sldUpdateTotal = 0;
    uint64_t loadUtilCycles = 0;
    uint64_t gsOccupiedWaitCycles = 0;
    uint64_t gsOccupiedNoWaitCycles = 0;
    uint64_t robAllocs = 0;
    uint64_t rsAllocs = 0;
    uint64_t renameStallsSldRead = 0;
    uint64_t renameStallsSldWrite = 0;
    uint64_t elimOrderingViolations = 0;
    uint64_t orderingViolations = 0;
    uint64_t vpFlushes = 0;
    uint64_t branchMispredicts = 0;
    uint64_t loadsRetired = 0;
    uint64_t loadsEliminatedRetired = 0;
    uint64_t loadsVpRetired = 0;
    uint64_t loadsElimRetiredByMode[4] = { 0, 0, 0, 0 };
    uint64_t gsElimRetired = 0;
    uint64_t nonGsElimRetired = 0;
    uint64_t gsLoadsRetired = 0;
    uint64_t aluExecs = 0;
    uint64_t aguExecs = 0;
    uint64_t issueEvents = 0;
    uint64_t renamedOps = 0;
    // Rename-stall attribution (first blocking reason per cycle).
    uint64_t stallFrontend = 0;
    uint64_t stallPendingBranch = 0;
    uint64_t fbuBranch = 0;
    uint64_t fbuSquash = 0;
    uint64_t stallRobFull = 0;
    uint64_t stallRsFull = 0;
    uint64_t stallLbFull = 0;
    uint64_t stallSbFull = 0;
    uint64_t renameZeroCycles = 0;
    /** Cycles skipped wholesale by tryFastForward(). Observability-only:
     *  flushed to the obs registry at the end of run(), never exported
     *  into a RunResult or StatSet (the stall counters above already
     *  account these cycles for the simulated stats). */
    uint64_t idleFastForwardedCycles = 0;
    std::unordered_map<PC, uint64_t> vpWrongByPc;
    bool goldenFailed = false;
    std::string goldenMsg;

    // ------------------------------------------------------------ helpers

    InFlight& at(int slot) { return slots[slot]; }
    const InFlight& at(int slot) const { return slots[slot]; }

    bool
    refValid(const SlotRef& r) const
    {
        return r.slot >= 0 && slots[r.slot].valid && slots[r.slot].gen ==
                                                         r.gen;
    }

    int
    allocSlot()
    {
        if (freeSlots.empty())
            return -1;
        int s = freeSlots.back();
        freeSlots.pop_back();
        InFlight& e = slots[s];
        // Aggregate reset of the trivially-copyable part; the consumer list
        // keeps its (already empty, see wakeConsumers/freeSlot) spill
        // storage.
        static_cast<InFlightState&>(e) = InFlightState{};
        e.consumers.clear();
        e.gen = genCounter++;
        e.valid = true;
        return s;
    }

    void
    freeSlot(int slot)
    {
        slots[slot].valid = false;
        freeSlots.push_back(slot);
    }

    void
    schedule(int slot, EventKind kind, unsigned delay)
    {
        CONSTABLE_ASSERT(slots[slot].valid,
                         "scheduling an event for a freed slot");
        if (delay == 0)
            delay = 1;
        if (delay >= kEventWheelSize)
            delay = kEventWheelSize - 1;
        unsigned idx = (now + delay) % kEventWheelSize;
        wheel[idx].push_back(Event{ slot, slots[slot].gen, kind });
        wheelOccupied[idx / 64] |= 1ull << (idx % 64);
        ++pendingEvents;
    }

    /** Smallest delay d >= 1 with a populated wheel bucket; 0 when the
     *  wheel is empty. The current bucket is always drained, so a set bit
     *  is never at delay 0. */
    unsigned
    nextEventDelay() const
    {
        if (pendingEvents == 0)
            return 0;
        constexpr unsigned kWords = kEventWheelSize / 64;
        unsigned cur = static_cast<unsigned>(now % kEventWheelSize);
        unsigned s0 = (cur + 1) % kEventWheelSize;
        unsigned found = kEventWheelSize;
        uint64_t head = wheelOccupied[s0 / 64] & (~0ull << (s0 % 64));
        if (head != 0) {
            found = (s0 / 64) * 64 +
                    static_cast<unsigned>(std::countr_zero(head));
        } else {
            for (unsigned i = 1; i <= kWords; ++i) {
                unsigned w = (s0 / 64 + i) % kWords;
                uint64_t bits = wheelOccupied[w];
                if (w == s0 / 64) // wrapped: only bits below the start count
                    bits &= (s0 % 64) ? ((1ull << (s0 % 64)) - 1) : 0;
                if (bits != 0) {
                    found = w * 64 +
                            static_cast<unsigned>(std::countr_zero(bits));
                    break;
                }
            }
        }
        CONSTABLE_ASSERT(found != kEventWheelSize,
                         "pendingEvents != 0 but the occupancy bitmap has "
                         "no set bit: wheel and bitmap disagree");
        return (found + kEventWheelSize - cur) % kEventWheelSize;
    }

    PortType
    portOf(const InFlight& e) const
    {
        if (e.op.isLoad())
            return PortType::Load;
        if (e.op.isStore())
            return PortType::Sta;
        if (e.op.cls == OpClass::Branch)
            return PortType::Branch;
        return PortType::Alu;
    }

    void
    addReady(int slot)
    {
        InFlight& e = at(slot);
        e.state = OpState::Ready;
        e.readyAt = now + 1;
        unsigned port = static_cast<unsigned>(portOf(e));
        ReadyQueue& q = readyQ[port];
        q.heap.push_back(ReadyEntry{ e.gen, slot });
        std::push_heap(q.heap.begin(), q.heap.end(),
                       [](const ReadyEntry& a, const ReadyEntry& b) {
                           return a.gen > b.gen;
                       });
        ++q.live;
        CONSTABLE_ASSERT(q.live <= q.heap.size(),
                         "ready-queue live count exceeds heap size: a "
                         "removeReady was missed or double-counted");
        if (port == static_cast<unsigned>(PortType::Load) && !e.isGsLoad)
            ++readyNonGsLoads;
    }

    void
    removeReady(int slot)
    {
        // Lazy invalidation: only the live count drops; the heap entry
        // stays behind and popReady() discards it by generation mismatch
        // (the slot is freed or re-allocated under a strictly larger gen).
        InFlight& e = at(slot);
        unsigned port = static_cast<unsigned>(portOf(e));
        CONSTABLE_ASSERT(readyQ[port].live > 0,
                         "removeReady on a port with no live entries");
        --readyQ[port].live;
        if (port == static_cast<unsigned>(PortType::Load) && !e.isGsLoad) {
            CONSTABLE_ASSERT(readyNonGsLoads > 0,
                             "non-GS ready-load counter underflow");
            --readyNonGsLoads;
        }
    }

    /** Pop the oldest live ready op on a port, discarding stale heap
     *  entries on the way; -1 when nothing live remains. */
    int
    popReady(unsigned port)
    {
        ReadyQueue& q = readyQ[port];
        auto older = [](const ReadyEntry& a, const ReadyEntry& b) {
            return a.gen > b.gen;
        };
        // O(heap) probe, so DCHECK: min-heap order over gen is what makes
        // pop order == age order (the determinism contract of issue).
        CONSTABLE_DCHECK(std::is_heap(q.heap.begin(), q.heap.end(), older),
                         "ready-queue heap property violated");
        while (!q.heap.empty()) {
            ReadyEntry top = q.heap.front();
            std::pop_heap(q.heap.begin(), q.heap.end(), older);
            q.heap.pop_back();
            InFlight& e = slots[top.slot];
            if (e.valid && e.gen == top.gen && e.state == OpState::Ready) {
                CONSTABLE_ASSERT(q.live > 0,
                                 "live ready entry found on a port whose "
                                 "live count is zero");
                --q.live;
                if (port == static_cast<unsigned>(PortType::Load) &&
                    !e.isGsLoad)
                    --readyNonGsLoads;
                return top.slot;
            }
        }
        CONSTABLE_ASSERT(q.live == 0,
                         "ready-queue drained but live count is nonzero: "
                         "a live entry was lost to a stale generation");
        return -1;
    }

    bool
    overlaps(Addr a1, unsigned s1, Addr a2, unsigned s2) const
    {
        return a1 < a2 + s2 && a2 < a1 + s1;
    }
};

} // namespace constable

#endif
