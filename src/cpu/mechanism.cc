#include "cpu/mechanism.hh"

#include <algorithm>

#include "cpu/core_state.hh"

namespace constable {

// ----------------------------------------------------------- MechanismSet

MechanismSet::MechanismSet(const MechanismConfig& mc)
    : ideal_(mc.ideal), constable_(mc.constable), rfp_(mc.rfpLatency)
{
    constableActive_ = mc.constable.enabled;
    constableWrongPath_ = mc.constable.wrongPathUpdates;

    // Canonical priority order: matches the rename-stage gating of the
    // original monolithic core (an oracle claims a load before Constable,
    // Constable before EVES, ... ); ELAR is last and non-exclusive.
    if (mc.ideal.mode != IdealMode::None)
        active_.push_back(&ideal_);
    if (mc.constable.enabled)
        active_.push_back(&constable_);
    if (mc.eves)
        active_.push_back(&eves_);
    if (mc.mrn)
        active_.push_back(&mrn_);
    if (mc.rfp)
        active_.push_back(&rfp_);
    if (mc.elar)
        active_.push_back(&elar_);
}

void
MechanismSet::attach(CoreState& cs)
{
    dispatch([&](auto* m) {
        if constexpr (requires { m->attach(cs); })
            m->attach(cs);
    });
}

void
MechanismSet::exportStats(StatSet& s) const
{
    // Emitted for every configuration (zeros when inactive) so the stat
    // key set -- and thus serialized RunResult bytes -- never depends on
    // which mechanisms are enabled.
    s.set("eves.predictions", static_cast<double>(eves_.eves.predictions));
    s.set("mrn.predictions", static_cast<double>(mrn_.mrn.predictions));
    s.set("mrn.misforwards", static_cast<double>(mrn_.mrn.misforwards));
    s.set("rfp.predictions", static_cast<double>(rfp_.rfp.predictions));
    constable_.engine.exportStats(s);
}

// -------------------------------------------------------- IdealOracleMech

void
IdealOracleMech::renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e,
                            int slot, bool& handled)
{
    (void)cs;
    (void)t;
    (void)slot;
    if (handled || !spec_.stablePcs.count(e.op.pc))
        return;
    if (spec_.mode == IdealMode::Constable) {
        e.idealEliminated = true;
        e.doneAtRename = true;
        e.lbAddr = e.op.effAddr;
        e.lbAddrValid = true;
        e.loadValueDelivered = true;
        e.elimValue = e.op.value;
    } else {
        e.vpApplied = true;
        e.valueAvailable = true;
        if (spec_.mode == IdealMode::StableLvpNoFetch)
            e.noDataFetch = true;
    }
    handled = true;
}

// ---------------------------------------------------------- ConstableMech

void
ConstableMech::attach(CoreState& cs)
{
    if (!engine.config().cvBitPinning) {
        // Constable-AMT-I: private-cache evictions kill AMT tracking.
        cs.memory.setL1EvictHook([this](Addr line, bool dirty) {
            (void)dirty;
            engine.onL1Evict(line);
        });
    }
}

void
ConstableMech::renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e,
                          int slot, bool& handled)
{
    (void)cs;
    (void)t;
    (void)slot;
    if (handled)
        return;
    // Steps 1-3 of Fig 8.
    ElimDecision d = engine.renameLoad(e.op.pc, e.op.addrMode);
    if (d.eliminate) {
        e.eliminated = true;
        e.xprfHeld = true;
        e.doneAtRename = true;
        e.lbAddr = d.addr;
        e.lbAddrValid = true;
        e.loadValueDelivered = true;
        e.elimValue = d.value;
        handled = true;
    } else {
        e.likelyStableMarked = d.likelyStable;
    }
}

void
ConstableMech::loadWriteback(CoreState& cs, ThreadCtx& t, InFlight& e)
{
    // Close the writeback/store race: a store younger than this load may
    // have already generated its (matching) address, so its AMT probe ran
    // before this arm would insert its entry. Arming would eliminate with
    // a value the store is about to change. Probe the SB for resolved
    // younger matching stores and suppress the arm (unresolved ones are
    // caught later by the normal AMT probe at their STA).
    bool armBlocked = false;
    auto sit = std::upper_bound(t.storeList.begin(), t.storeList.end(),
                                e.seq, [&cs](SeqNum seq, int sid) {
                                    return seq < cs.at(sid).seq;
                                });
    for (; sit != t.storeList.end(); ++sit) {
        InFlight& st2 = cs.at(*sit);
        if (st2.storeAddrResolved &&
            lineAddr(st2.op.effAddr) == lineAddr(e.op.effAddr)) {
            armBlocked = true;
            break;
        }
    }
    // Steps 4-6: arm elimination for a likely-stable load.
    bool armed = engine.writebackLoad(e.op.pc, e.op.effAddr, e.op.value,
                                      e.likelyStableMarked && !armBlocked,
                                      e.op.src);
    if (armed && engine.config().cvBitPinning)
        cs.directory.pin(lineAddr(e.op.effAddr));
}

void
ConstableMech::warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc)
{
    (void)fwd_store_pc;
    // In-order functional replay of the rename -> writeback sequence. An
    // elimination would hold its xPRF register only until retire, which in
    // the untimed replay is immediate; a non-eliminated load trains the
    // SLD/AMT exactly as loadWriteback would (the store-buffer race that
    // blocks arming there needs in-flight stores, which do not exist here).
    ElimDecision d = engine.renameLoad(op.pc, op.addrMode);
    if (d.eliminate) {
        engine.releaseEliminated();
        return;
    }
    bool armed = engine.writebackLoad(op.pc, op.effAddr, op.value,
                                      d.likelyStable, op.src);
    if (armed && engine.config().cvBitPinning)
        cs.directory.pin(lineAddr(op.effAddr));
}

void
ConstableMech::squashOp(InFlight& e)
{
    if (e.eliminated && e.xprfHeld)
        engine.releaseEliminated();
}

// --------------------------------------------------------------- EvesMech

void
EvesMech::renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                     bool& handled)
{
    (void)t;
    (void)slot;
    if (handled)
        return;
    ValuePrediction p = eves.predict(e.op.pc);
    eves.notifyRename(e.op.pc);
    e.evesTracked = true;
    if (p.valid) {
        e.vpApplied = true;
        e.valueAvailable = true;
        e.evesPredicted = true;
        e.vpWrong = p.value != e.op.value;
        if (e.vpWrong)
            ++cs.vpWrongByPc[e.op.pc];
        handled = true;
    }
}

void
EvesMech::warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc)
{
    (void)cs;
    (void)fwd_store_pc;
    // Matched notifyRename/train pairs keep E-Stride's in-flight instance
    // accounting balanced through the warm-up.
    eves.notifyRename(op.pc);
    eves.train(op.pc, op.value);
}

void
EvesMech::squashOp(InFlight& e)
{
    if (e.evesTracked)
        eves.abortInflight(e.op.pc);
}

void
EvesMech::retireLoad(InFlight& e)
{
    eves.train(e.op.pc, e.op.value);
}

// ---------------------------------------------------------------- MrnMech

void
MrnMech::renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled)
{
    (void)slot;
    if (handled)
        return;
    MrnPrediction p = mrn.predict(e.op.pc);
    if (!p.valid)
        return;
    auto it = t.lastStoreByPc.find(p.storePc);
    if (it == t.lastStoreByPc.end() || !cs.refValid(it->second))
        return;
    const InFlight& st = cs.at(it->second.slot);
    e.vpApplied = true;
    e.valueAvailable = true;
    e.mrnForwarded = true;
    e.vpWrong = st.op.value != e.op.value;
    if (e.vpWrong)
        ++cs.vpWrongByPc[e.op.pc];
    ++mrn.predictions;
    if (e.vpWrong)
        ++mrn.misforwards;
    else
        ++mrn.correctForwards;
    handled = true;
}

void
MrnMech::loadWriteback(CoreState& cs, ThreadCtx& t, InFlight& e)
{
    (void)cs;
    (void)t;
    // Writeback-stage training. EVES/RFP train at commit instead
    // (CVP-style): completion-time training would see out-of-order and
    // replayed instances, which poisons stride learning.
    mrn.train(e.op.pc, e.fwdFromStorePc);
}

void
MrnMech::warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc)
{
    (void)cs;
    mrn.train(op.pc, fwd_store_pc);
}

void
MrnMech::onValueMispredict(InFlight& e)
{
    if (e.mrnForwarded)
        mrn.punish(e.op.pc);
}

// ---------------------------------------------------------------- RfpMech

void
RfpMech::renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled)
{
    (void)t;
    if (handled)
        return;
    RfpPrediction p = rfp.predict(e.op.pc);
    if (!p.valid)
        return;
    e.vpApplied = true;
    e.rfpPredicted = true;
    e.vpWrong = p.addr != e.op.effAddr;
    cs.schedule(slot, EventKind::ValueAvail, latency_);
    handled = true;
}

void
RfpMech::warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc)
{
    (void)cs;
    (void)fwd_store_pc;
    rfp.train(op.pc, op.effAddr);
}

void
RfpMech::onValueMispredict(InFlight& e)
{
    if (e.rfpPredicted)
        rfp.punish(e.op.pc);
}

void
RfpMech::squashOp(InFlight& e)
{
    if (e.rfpPredicted)
        rfp.abortInflight(e.op.pc);
}

void
RfpMech::retireLoad(InFlight& e)
{
    rfp.train(e.op.pc, e.op.effAddr);
}

// --------------------------------------------------------------- ElarMech

void
ElarMech::renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                     bool& handled)
{
    (void)cs;
    (void)t;
    (void)slot;
    (void)handled; // non-exclusive: applies even to predicted loads
    if (e.op.addrMode == AddrMode::StackRel && !e.doneAtRename)
        e.elarReady = true;
}

} // namespace constable
