/**
 * @file
 * Pluggable load-elimination / value-prediction mechanisms. Each technique
 * the paper evaluates (Constable, EVES, MRN, RFP, ELAR, the ideal oracles)
 * is a small class implementing the pipeline hook points it cares about:
 *
 *   attach        core construction (e.g. L1-eviction callbacks)
 *   renameLoad    a load reaches rename (eliminate / predict / mark)
 *   loadWriteback a non-eliminated load completed (train / arm)
 *   onValueMispredict / squashOp / retireLoad / retireBranch
 *
 * MechanismSet owns one instance of every mechanism and a variant-based
 * dispatch list of the *active* ones in the paper's canonical priority
 * order (ideal > Constable > EVES > MRN > RFP > ELAR, matching the old
 * hard-coded rename gating). Dispatch is virtual-free: each hook loops
 * over a SmallVec of std::variant pointers and `if constexpr` skips
 * mechanisms that do not implement the hook. Adding a mechanism means
 * writing a class here and listing it in MechRef -- the core's stage code
 * (cpu/rename.cc etc.) does not change.
 *
 * Inactive mechanism objects still exist (they are a few tables each, as
 * the monolithic core always constructed them) so exported statistics keep
 * the exact same key set and zero values across configurations -- the
 * golden-snapshot fingerprints depend on that.
 */

#ifndef CONSTABLE_CPU_MECHANISM_HH
#define CONSTABLE_CPU_MECHANISM_HH

#include <limits>
#include <variant>

#include "common/small_vec.hh"
#include "core/constable.hh"
#include "cpu/config.hh"
#include "vp/eves.hh"
#include "vp/ideal.hh"
#include "vp/mrn.hh"
#include "vp/rfp.hh"

namespace constable {

struct CoreState;
struct InFlight;
struct ThreadCtx;

/** Fig 7 oracle treatments of offline-identified global-stable loads. */
class IdealOracleMech
{
  public:
    explicit IdealOracleMech(IdealSpec spec) : spec_(std::move(spec)) {}

    void renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled);

  private:
    IdealSpec spec_;
};

/** Constable (the paper's mechanism): SLD/RMT/AMT/xPRF behind the engine
 *  facade, plus the rename/writeback/store/snoop touch points of Fig 8. */
class ConstableMech
{
  public:
    explicit ConstableMech(const ConstableConfig& cfg) : engine(cfg) {}

    void attach(CoreState& cs);
    void renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled);
    void loadWriteback(CoreState& cs, ThreadCtx& t, InFlight& e);
    void warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc);
    void squashOp(InFlight& e);

    ConstableEngine engine;
};

/** EVES load value prediction (trains at commit, CVP-style). */
class EvesMech
{
  public:
    EvesMech() = default;

    void renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled);
    void warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc);
    void squashOp(InFlight& e);
    void retireLoad(InFlight& e);
    void retireBranch(bool taken) { eves.pushHistory(taken); }

    EvesPredictor eves;
};

/** Memory Renaming: forward from the predicted in-flight store. */
class MrnMech
{
  public:
    MrnMech() = default;

    void renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled);
    void loadWriteback(CoreState& cs, ThreadCtx& t, InFlight& e);
    void warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc);
    void onValueMispredict(InFlight& e);

    MrnTable mrn;
};

/** Register File Prefetching: early access via a predicted address. */
class RfpMech
{
  public:
    explicit RfpMech(unsigned latency) : latency_(latency) {}

    void renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled);
    void warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc);
    void onValueMispredict(InFlight& e);
    void squashOp(InFlight& e);
    void retireLoad(InFlight& e);

    RfpPredictor rfp;

  private:
    unsigned latency_;
};

/** ELAR: stack loads have their address resolved before execute. */
class ElarMech
{
  public:
    void renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot,
                    bool& handled);
};

/** One entry of the active-mechanism dispatch list. */
using MechRef = std::variant<IdealOracleMech*, ConstableMech*, EvesMech*,
                             MrnMech*, RfpMech*, ElarMech*>;

/**
 * The full mechanism bundle of one core, built from a MechanismConfig.
 * Stage code calls the hook points below; each fans out over the active
 * mechanisms (see file header). Constable-only pipeline interactions (SLD
 * port pressure, AMT store/snoop probes, xPRF release) have dedicated
 * pass-throughs so the hot paths stay branch-cheap.
 */
class MechanismSet
{
  public:
    explicit MechanismSet(const MechanismConfig& mc);

    MechanismSet(const MechanismSet&) = delete;
    MechanismSet& operator=(const MechanismSet&) = delete;

    /** Core-construction hooks (e.g. Constable-AMT-I L1 eviction). */
    void attach(CoreState& cs);

    // ----------------------------------------------------------- rename
    /** SLD read-port constraint: true when one more load lookup this
     *  rename group would exceed the ports (§6.7.1). */
    bool
    renameLoadGateStall(unsigned loads_this_cycle) const
    {
        return constableActive_ &&
               loads_this_cycle >=
                   constable_.engine.config().sld.readPorts;
    }

    /** A load reached rename: let each active mechanism eliminate,
     *  predict, or mark it (flags land on the InFlight entry). */
    void
    renameLoad(CoreState& cs, ThreadCtx& t, InFlight& e, int slot)
    {
        bool handled = false;
        dispatch([&](auto* m) {
            if constexpr (requires { m->renameLoad(cs, t, e, slot,
                                                   handled); })
                m->renameLoad(cs, t, e, slot, handled);
        });
    }

    /** A renamed instruction writes @p dst: drain the RMT entry and reset
     *  listed loads in the SLD. @return SLD updates performed (write-port
     *  pressure modeling). */
    unsigned
    renameDstWrite(uint8_t dst)
    {
        return constableActive_ ? constable_.engine.renameDstWrite(dst) : 0;
    }

    /** SLD write ports; unlimited when Constable is off so the rename
     *  group never stalls on it. */
    unsigned
    sldWritePortLimit() const
    {
        return constableActive_
                   ? constable_.engine.config().sld.writePorts
                   : std::numeric_limits<unsigned>::max();
    }

    /** True when the SLD updates-per-cycle histogram is being modeled. */
    bool tracksSldPressure() const { return constableActive_; }

    /** True when wrong-path renames mutate RMT/SLD state (those cycles
     *  cannot be fast-forwarded in bulk). */
    bool
    wrongPathMutatesRename() const
    {
        return constableActive_ && constableWrongPath_;
    }

    /** Eliminated load retired, squashed, or superseded: free its xPRF
     *  register. Reachable only when Constable armed the elimination. */
    void releaseEliminated() { constable_.engine.releaseEliminated(); }

    // ----------------------------------------------------- memory events
    /** Store address generated (Fig 8 step 9): probe the AMT. */
    void
    onStoreAddr(Addr addr)
    {
        if (constableActive_)
            constable_.engine.storeOrSnoopAddr(addr);
    }

    /** Coherence snoop delivered (step 10). */
    void
    onSnoop(Addr addr)
    {
        if (constableActive_) {
            constable_.engine.storeOrSnoopAddr(addr);
            ++constable_.engine.snoopResets;
        }
    }

    /** An eliminated instance violated memory ordering: back off. */
    void
    onEliminationViolation(PC pc)
    {
        if (constableActive_)
            constable_.engine.onEliminationViolation(pc);
    }

    /** Sampled warm-up skipped a trace region outright (cpu/warmup.cc):
     *  stores in the gap never probed the AMT, so armed eliminations may
     *  hold stale values. Flush the tracking tables (the paper's §6.7.3
     *  context-switch path); the warm horizon after the gap re-trains
     *  them, keeping the golden invariant by construction. */
    void
    onWarmupGap()
    {
        if (constableActive_)
            constable_.engine.contextSwitch();
    }

    // ------------------------------------------------ writeback / recovery
    /** A non-eliminated load delivered its value (writeback stage). */
    void
    loadWriteback(CoreState& cs, ThreadCtx& t, InFlight& e)
    {
        dispatch([&](auto* m) {
            if constexpr (requires { m->loadWriteback(cs, t, e); })
                m->loadWriteback(cs, t, e);
        });
    }

    /** Functional warm-up of a load (sampled simulation, cpu/warmup.cc):
     *  each active mechanism replays the training its rename + writeback /
     *  retire hooks would perform for an untimed, in-order instance of
     *  @p op. @p fwd_store_pc is the static store that would forward to
     *  this load (0 = value came from memory), mirroring the detailed
     *  pipeline's store-buffer forwarding outcome for MRN training. */
    void
    warmupLoad(CoreState& cs, const MicroOp& op, PC fwd_store_pc)
    {
        dispatch([&](auto* m) {
            if constexpr (requires { m->warmupLoad(cs, op, fwd_store_pc); })
                m->warmupLoad(cs, op, fwd_store_pc);
        });
    }

    /** A speculative value was verified wrong (pre-flush training). */
    void
    onValueMispredict(InFlight& e)
    {
        dispatch([&](auto* m) {
            if constexpr (requires { m->onValueMispredict(e); })
                m->onValueMispredict(e);
        });
    }

    /** An in-flight op is being squashed (release mechanism resources). */
    void
    squashOp(InFlight& e)
    {
        dispatch([&](auto* m) {
            if constexpr (requires { m->squashOp(e); })
                m->squashOp(e);
        });
    }

    // ------------------------------------------------------------ retire
    /** A non-eliminated load retired: commit-time training (in order,
     *  exactly once). */
    void
    retireLoad(InFlight& e)
    {
        dispatch([&](auto* m) {
            if constexpr (requires { m->retireLoad(e); })
                m->retireLoad(e);
        });
    }

    /** A branch retired (global-history update). */
    void
    retireBranch(bool taken)
    {
        dispatch([&](auto* m) {
            if constexpr (requires { m->retireBranch(taken); })
                m->retireBranch(taken);
        });
    }

    /** Publish mechanism statistics. Emits the same key set for every
     *  configuration (inactive mechanisms report zeros). */
    void exportStats(StatSet& s) const;

    /** The Constable engine (tests, table/energy benches). */
    const ConstableEngine& constableEngine() const { return constable_.engine; }
    ConstableEngine& constableEngine() { return constable_.engine; }

  private:
    /** Invoke cb on every active mechanism, in canonical priority order.
     *  The callback guards itself with `if constexpr (requires ...)` so
     *  mechanisms that do not implement a hook compile away. */
    template <typename Cb>
    void
    dispatch(Cb&& cb)
    {
        for (size_t i = 0; i < active_.size(); ++i)
            std::visit(cb, active_[i]);
    }

    // Every mechanism always exists (stat-key stability; cf. file header);
    // only the ones the config enables join the dispatch list.
    IdealOracleMech ideal_;
    ConstableMech constable_;
    EvesMech eves_;
    MrnMech mrn_;
    RfpMech rfp_;
    ElarMech elar_;

    SmallVec<MechRef, 6> active_;
    bool constableActive_ = false;
    bool constableWrongPath_ = false;

  public:
    // Read-only engine access for stat export and benches.
    const EvesPredictor& evesPredictor() const { return eves_.eves; }
    const MrnTable& mrnTable() const { return mrn_.mrn; }
    const RfpPredictor& rfpPredictor() const { return rfp_.rfp; }
};

} // namespace constable

#endif
