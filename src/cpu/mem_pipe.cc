/**
 * @file
 * The memory pipeline: load AGU + memory-dependence prediction, store
 * address resolution + disambiguation (ordering-violation detection),
 * writeback/completion with the mechanism training hooks, blocked-load
 * replay, and squash recovery.
 */

#include "cpu/core.hh"

#include <algorithm>

namespace constable {

namespace {

/** First 8-byte chunk a byte range [addr, addr+size) touches. */
inline Addr
chunkLo(Addr addr)
{
    return addr >> 3;
}

/** Last chunk of the range (sizes are >= 1, <= 8: at most two chunks). */
inline Addr
chunkHi(Addr addr, unsigned size)
{
    return (addr + size - 1) >> 3;
}

/** Remove one slot from a chunk bucket (order-free swap erase; queries
 *  take a seq maximum, so bucket order never matters). */
inline void
bucketErase(SmallVec<int, 2>& bucket, int slot)
{
    for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i] == slot) {
            bucket[i] = bucket[bucket.size() - 1];
            bucket.pop_back();
            return;
        }
    }
}

} // namespace

/** Index a store whose address just resolved (STA). */
void
OooCore::storeIndexInsert(ThreadCtx& t, int slot)
{
    const InFlight& st = at(slot);
    for (Addr c = chunkLo(st.op.effAddr);
         c <= chunkHi(st.op.effAddr, st.op.size); ++c)
        t.storeAddrIndex[c].push_back(slot);
}

/** Un-index a resolved store leaving the window (retire or squash).
 *  Emptied buckets stay in the map: store footprints revisit the same
 *  chunks constantly, so keeping the node (and the SmallVec's inline
 *  storage) makes steady-state index maintenance allocation-free. */
void
OooCore::storeIndexErase(ThreadCtx& t, int slot)
{
    const InFlight& st = at(slot);
    for (Addr c = chunkLo(st.op.effAddr);
         c <= chunkHi(st.op.effAddr, st.op.size); ++c) {
        auto it = t.storeAddrIndex.find(c);
        if (it != t.storeAddrIndex.end())
            bucketErase(it->second, slot);
    }
}

void
OooCore::onLoadAgu(int slot)
{
    InFlight& e = at(slot);
    ThreadCtx& t = threads[e.tid];
    e.lbAddr = e.op.effAddr;
    e.lbAddrValid = true;

    // Memory dependence prediction: wait only on older unresolved stores in
    // the same store set (aggressive OOO load issue otherwise). Walk the
    // unresolved-store list backward -- it is program-ordered, so the first
    // older same-set hit is exactly the youngest one the old full-SB scan
    // kept -- instead of scanning every in-flight store.
    Ssid lss = storeSets.lookup(e.op.pc);
    int blocking = -1;
    if (lss != kInvalidSsid) {
        for (size_t i = t.unresolvedStores.size(); i-- > 0;) {
            const InFlight& st = at(t.unresolvedStores[i]);
            if (st.seq >= e.seq)
                continue;
            if (storeSets.lookup(st.op.pc) == lss) {
                blocking = t.unresolvedStores[i];
                break;
            }
        }
    }
    // Store-to-load forwarding candidate: the youngest older resolved
    // store overlapping the load's bytes, found through the chunk index
    // (overlapping ranges always share a chunk).
    int fwdStore = -1;
    SeqNum fwdSeq = 0;
    for (Addr c = chunkLo(e.lbAddr); c <= chunkHi(e.lbAddr, e.op.size);
         ++c) {
        auto it = t.storeAddrIndex.find(c);
        if (it == t.storeAddrIndex.end())
            continue;
        const SmallVec<int, 2>& bucket = it->second;
        for (size_t i = 0; i < bucket.size(); ++i) {
            const InFlight& st = at(bucket[i]);
            if (st.seq >= e.seq)
                continue;
            if (!overlaps(st.op.effAddr, st.op.size, e.lbAddr, e.op.size))
                continue;
            if (fwdStore < 0 || st.seq > fwdSeq) {
                fwdStore = bucket[i];
                fwdSeq = st.seq;
            }
        }
    }
    if (blocking >= 0) {
        e.state = OpState::Blocked;
        e.blockingStore = SlotRef{ blocking, at(blocking).gen };
        blockedLoads.push_back(SlotRef{ slot, e.gen });
        return;
    }
    if (fwdStore >= 0) {
        // Store-to-load forwarding from the SB.
        e.fwdFromStorePc = at(fwdStore).op.pc;
        schedule(slot, EventKind::ExecDone, cfg.storeForwardLat);
        return;
    }
    if (e.noDataFetch) {
        // Ideal Stable LVP + data-fetch elimination: stop after the AGU.
        schedule(slot, EventKind::ExecDone, 1);
        return;
    }
    MemAccessResult res = memory.load(e.op.pc, e.op.effAddr);
    schedule(slot, EventKind::ExecDone, std::max(1u, res.latency));
}

void
OooCore::onStaDone(int slot)
{
    InFlight& st = at(slot);
    ThreadCtx& t = threads[st.tid];
    st.storeAddrResolved = true;

    // Move the store from the unresolved list into the address index (it
    // is usually near the back: stores resolve a few cycles after issue).
    bool foundUnresolved = false;
    for (size_t i = t.unresolvedStores.size(); i-- > 0;) {
        if (t.unresolvedStores[i] == slot) {
            t.unresolvedStores.erase(t.unresolvedStores.begin() +
                                     static_cast<ptrdiff_t>(i));
            foundUnresolved = true;
            break;
        }
    }
    CONSTABLE_ASSERT(foundUnresolved,
                     "STA completed for a store absent from "
                     "unresolvedStores: the list diverged from the SB");
    storeIndexInsert(t, slot);

    // Constable step 9: the generated store address probes the AMT and
    // resets the elimination status of matching loads.
    mechs.onStoreAddr(st.op.effAddr);

    // Memory disambiguation: any younger load with a delivered value and an
    // overlapping address violated ordering -> flush from that load. Only
    // loads can match, and loadList is program-ordered, so binary-search to
    // the first load younger than the store instead of walking the ROB.
    CONSTABLE_DCHECK(std::is_sorted(t.loadList.begin(), t.loadList.end(),
                                    [this](int a, int b) {
                                        return at(a).seq < at(b).seq;
                                    }),
                     "loadList not in program order at disambiguation: "
                     "binary search would miss violating loads");
    auto seqOf = [this](int sid, SeqNum seq) { return at(sid).seq < seq; };
    auto it = std::upper_bound(t.loadList.begin(), t.loadList.end(), st.seq,
                               [this](SeqNum seq, int sid) {
                                   return seq < at(sid).seq;
                               });
    int violSlot = -1;
    for (; it != t.loadList.end(); ++it) {
        InFlight& ld = at(*it);
        if (!ld.lbAddrValid || !ld.loadValueDelivered)
            continue;
        // Oracle eliminations are correct by construction (global-stable
        // loads never change value), so the limit study excludes them from
        // ordering flushes; the retirement golden check still verifies.
        if (ld.idealEliminated)
            continue;
        if (overlaps(st.op.effAddr, st.op.size, ld.lbAddr, ld.op.size)) {
            violSlot = *it;
            ++orderingViolations;
            if (ld.eliminated) {
                ++elimOrderingViolations;
                mechs.onEliminationViolation(ld.op.pc);
            }
            storeSets.merge(ld.op.pc, st.op.pc);
            break;
        }
    }
    if (violSlot >= 0) {
        // The ROB is program-ordered too: recover the flush position by seq.
        auto rit = std::lower_bound(t.rob.begin(), t.rob.end(),
                                    at(violSlot).seq, seqOf);
        squashFrom(t, static_cast<size_t>(rit - t.rob.begin()),
                   cfg.branchMispredictPenalty);
    }

    completeOp(slot);
}

void
OooCore::wakeConsumers(InFlight& e)
{
    for (size_t i = 0; i < e.consumers.size(); ++i) {
        const SlotRef r = e.consumers[i];
        if (!refValid(r))
            continue;
        InFlight& c = at(r.slot);
        if (c.state != OpState::WaitDeps || c.pendingSrcs == 0)
            continue;
        if (--c.pendingSrcs == 0)
            addReady(r.slot);
    }
    e.consumers.clear();
}

void
OooCore::completeOp(int slot)
{
    InFlight& e = at(slot);
    ThreadCtx& t = threads[e.tid];
    e.state = OpState::Done;
    e.valueAvailable = true;
    wakeConsumers(e);

    if (e.op.isLoad() && !e.eliminated && !e.idealEliminated) {
        e.loadValueDelivered = true;
        // Mechanism writeback hooks: MRN trains, Constable arms (steps 4-6
        // plus the writeback/store race probe).
        mechs.loadWriteback(*this, t, e);
        // Value-speculation verification.
        if (e.vpApplied && e.vpWrong) {
            ++vpFlushes;
            mechs.onValueMispredict(e);
            // Squash everything younger than the mispredicted load.
            for (size_t i = 0; i < t.rob.size(); ++i) {
                if (t.rob[i] == slot) {
                    squashFrom(t, i + 1, cfg.valueMispredictPenalty);
                    break;
                }
            }
            e.vpWrong = false;
        }
    }

    if (e.op.cls == OpClass::Branch && refValid(t.pendingBranch) &&
        t.pendingBranch.slot == slot) {
        // Mispredicted branch resolved: redirect after the penalty.
        t.pendingBranch = SlotRef{};
        t.frontendBlockedUntil = now + cfg.branchMispredictPenalty;
        ++fbuBranch;
    }
}

void
OooCore::checkBlockedLoads()
{
    size_t w = 0;
    for (size_t i = 0; i < blockedLoads.size(); ++i) {
        SlotRef r = blockedLoads[i];
        if (!refValid(r))
            continue;
        InFlight& e = at(r.slot);
        if (e.state != OpState::Blocked)
            continue;
        bool storeGone = !refValid(e.blockingStore) ||
                         at(e.blockingStore.slot).storeAddrResolved;
        if (storeGone) {
            e.state = OpState::Issued;
            onLoadAgu(r.slot);
            if (e.state == OpState::Blocked) {
                // Re-blocked on another store; keep it in the list.
                blockedLoads[w++] = SlotRef{ r.slot, e.gen };
            }
            continue;
        }
        blockedLoads[w++] = r;
    }
    blockedLoads.resize(w);
}

void
OooCore::squashFrom(ThreadCtx& t, size_t rob_pos, Cycle restart_delay)
{
    if (rob_pos >= t.rob.size())
        return;
    size_t firstTraceIdx = at(t.rob[rob_pos]).traceIdx;
    SeqNum firstSeq = at(t.rob[rob_pos]).seq;

    for (size_t i = t.rob.size(); i-- > rob_pos;) {
        int s = t.rob[i];
        InFlight& e = at(s);
        if (e.dstReg != kNoReg)
            t.renameMap[e.dstReg] = e.prevWriter;
        if (e.inRs)
            --rsUsed;
        if (e.state == OpState::Ready)
            removeReady(s);
        if (e.op.isLoad())
            --t.lbUsed;
        if (e.op.isStore()) {
            --t.sbUsed;
            if (e.storeAddrResolved)
                storeIndexErase(t, s);
        }
        mechs.squashOp(e);
        freeSlot(s);
    }
    t.rob.resize(rob_pos);

    // Rebuild the store/load lists from surviving entries.
    t.storeList.clear();
    t.loadList.clear();
    t.unresolvedStores.clear();
    for (int s : t.rob) {
        if (at(s).op.isStore()) {
            t.storeList.push_back(s);
            if (!at(s).storeAddrResolved)
                t.unresolvedStores.push_back(s);
        } else if (at(s).op.isLoad()) {
            t.loadList.push_back(s);
        }
    }

    CONSTABLE_DCHECK(t.loadList.size() <= t.lbUsed &&
                         t.storeList.size() <= t.sbUsed,
                     "squash rebuild left more list entries than allocated "
                     "LB/SB slots");

    if (refValid(t.pendingBranch) && at(t.pendingBranch.slot).seq >= firstSeq)
        t.pendingBranch = SlotRef{};

    t.traceIdx = firstTraceIdx;
    t.nextSeq = firstSeq;
    t.frontendBlockedUntil =
        std::max(t.frontendBlockedUntil, now + restart_delay);
    ++fbuSquash;
}

} // namespace constable
