/**
 * @file
 * Frontend of the core: SMT thread selection, wrong-path rename injection,
 * and the allocate/rename stage (structural resource checks, mechanism
 * rename hooks, RAT update with squash checkpoints, dependence capture).
 */

#include "cpu/core.hh"

namespace constable {

unsigned
OooCore::pickThread() const
{
    if (threads.size() == 1)
        return 0;
    // ICOUNT-style: among fetchable threads, fewer in-flight ops wins; a
    // frontend-blocked thread cedes the rename stage to its sibling.
    auto weight = [this](const ThreadCtx& t) -> size_t {
        if (t.done)
            return SIZE_MAX;
        if (now < t.frontendBlockedUntil || refValid(t.pendingBranch))
            return SIZE_MAX - 1;
        return t.rob.size();
    };
    size_t s0 = weight(threads[0]);
    size_t s1 = weight(threads[1]);
    return s0 <= s1 ? 0 : 1;
}

void
OooCore::injectWrongPath(ThreadCtx& t)
{
    if (!mechs.wrongPathMutatesRename())
        return;
    if (t.recentOps.empty())
        return;
    // Wrong-path micro-ops rename (and pollute the RMT/SLD) but are
    // squashed before allocation, so they never hold ROB/RS resources.
    for (unsigned w = 0; w < cfg.renameWidth; ++w) {
        const MicroOp& op = t.recentOps[t.recentIdx++ % t.recentOps.size()];
        if (op.dst != kNoReg)
            sldUpdateTotal += mechs.renameDstWrite(op.dst);
    }
}

bool
OooCore::renameOne(ThreadCtx& t, unsigned& loads_this_cycle,
                   unsigned& sld_updates_this_cycle)
{
    if (t.traceIdx >= t.opsEnd())
        return false;
    const MicroOp& op = t.trace->ops[t.traceIdx];

    // Structural resource checks (allocate stage).
    if (t.rob.size() >= cfg.robPerThread()) {
        ++stallRobFull;
        return false;
    }
    bool classRenameDone =
        op.cls == OpClass::Nop || op.cls == OpClass::Jump ||
        op.cls == OpClass::Move || op.cls == OpClass::ZeroIdiom ||
        op.cls == OpClass::StackAdj;
    if (!classRenameDone && rsUsed >= cfg.rsTotal()) {
        ++stallRsFull;
        return false;
    }
    if (op.isLoad() && t.lbUsed >= cfg.lbPerThread()) {
        ++stallLbFull;
        return false;
    }
    if (op.isStore() && t.sbUsed >= cfg.sbPerThread()) {
        ++stallSbFull;
        return false;
    }

    // SLD read-port constraint: at most 3 load lookups per rename group
    // (§6.7.1); a fourth load stalls the group to the next cycle.
    if (op.isLoad() && mechs.renameLoadGateStall(loads_this_cycle)) {
        ++renameStallsSldRead;
        return false;
    }

    int s = allocSlot();
    if (s < 0)
        return false;
    InFlight& e = at(s);
    e.op = op;
    e.traceIdx = t.traceIdx;
    e.seq = t.nextSeq;
    e.tid = static_cast<ThreadId>(&t - threads.data());
    ++robAllocs;
    ++renamedOps;

    // Branch direction prediction at fetch; jumps are branch-folded.
    bool mispredict = false;
    if (op.cls == OpClass::Branch) {
        bool pred = branchPred.predict(op.pc);
        branchPred.update(op.pc, op.taken);
        mispredict = pred != op.taken;
        if (mispredict)
            ++branchMispredicts;
    }

    if (classRenameDone)
        e.doneAtRename = true;

    if (op.isLoad()) {
        ++loads_this_cycle;
        e.isGsLoad = globalStable && globalStable->count(op.pc);
        // Mechanism rename hooks: oracle elimination, Constable steps 1-3,
        // EVES / MRN / RFP value speculation, ELAR address pre-resolution.
        mechs.renameLoad(*this, t, e, s);
    }

    // Register source dependences (rename lookup of the RAT). An op that
    // completed at rename, or whose address the mechanism pre-resolved
    // (ELAR), needs no register sources.
    if (!classRenameDone && !e.doneAtRename && !e.elarReady) {
        for (uint8_t src : op.src) {
            if (src == kNoReg)
                continue;
            SlotRef w = t.renameMap[src];
            if (!refValid(w))
                continue;
            InFlight& p = at(w.slot);
            if (p.state == OpState::Done || p.doneAtRename ||
                p.valueAvailable)
                continue;
            p.consumers.push_back(SlotRef{ s, e.gen });
            ++e.pendingSrcs;
        }
    }

    // Constable steps 7-8: every instruction's destination write drains the
    // RMT and resets listed loads in the SLD; the SLD has 2 write ports, so
    // a third update in one cycle stalls the rename group (§6.7.1).
    bool stopAfterThis = false;
    if (op.dst != kNoReg) {
        unsigned n = mechs.renameDstWrite(op.dst);
        sld_updates_this_cycle += n;
        sldUpdateTotal += n;
        if (sld_updates_this_cycle > mechs.sldWritePortLimit()) {
            ++renameStallsSldWrite;
            stopAfterThis = true;
        }
    }

    // Rename-map update with squash checkpoint.
    e.dstReg = op.dst;
    if (op.dst != kNoReg) {
        e.prevWriter = t.renameMap[op.dst];
        t.renameMap[op.dst] = SlotRef{ s, e.gen };
        // The superseded writer's xPRF register can be reclaimed: its
        // mapping is no longer architecturally visible and all in-flight
        // consumers took their mapping at their own rename.
        if (refValid(e.prevWriter)) {
            InFlight& prev = at(e.prevWriter.slot);
            if (prev.xprfHeld) {
                prev.xprfHeld = false;
                mechs.releaseEliminated();
            }
        }
    }

    // Allocate downstream resources.
    if (!e.doneAtRename) {
        ++rsUsed;
        e.inRs = true;
        ++rsAllocs;
    }
    if (op.isLoad()) {
        ++t.lbUsed;
        // mem_pipe.cc's onStaDone binary-searches loadList by seq, so
        // rename (the only producer) must append in program order.
        CONSTABLE_DCHECK(t.loadList.empty() ||
                             at(t.loadList.back()).seq < e.seq,
                         "loadList append out of program order");
        t.loadList.push_back(s);
    }
    if (op.isStore()) {
        ++t.sbUsed;
        CONSTABLE_DCHECK(t.storeList.empty() ||
                             at(t.storeList.back()).seq < e.seq,
                         "storeList append out of program order");
        CONSTABLE_DCHECK(t.unresolvedStores.empty() ||
                             at(t.unresolvedStores.back()).seq < e.seq,
                         "unresolvedStores append out of program order");
        t.storeList.push_back(s);
        t.unresolvedStores.push_back(s);
        t.lastStoreByPc[op.pc] = SlotRef{ s, e.gen };
    }
    t.rob.push_back(s);

    // Wrong-path template ring.
    if (t.recentOps.size() < 32)
        t.recentOps.push_back(op);
    else
        t.recentOps[e.seq % 32] = op;

    if (e.doneAtRename) {
        e.state = OpState::Done;
        e.valueAvailable = true;
    } else if (e.pendingSrcs == 0) {
        addReady(s);
    }

    ++t.traceIdx;
    ++t.nextSeq;

    if (mispredict) {
        // Frontend redirect: no younger op enters the pipeline until the
        // branch resolves at execute plus the redirect penalty.
        t.pendingBranch = SlotRef{ s, e.gen };
        return false;
    }
    return !stopAfterThis;
}

void
OooCore::renameStage()
{
    unsigned tid = pickThread();
    ThreadCtx& t = threads[tid];
    unsigned loadsThisCycle = 0;
    unsigned sldUpdatesThisCycle = 0;

    bool blocked = t.done || now < t.frontendBlockedUntil ||
                   refValid(t.pendingBranch);
    if (blocked) {
        if (!t.done) {
            ++stallFrontend;
            if (refValid(t.pendingBranch))
                ++stallPendingBranch;
        }
        if (refValid(t.pendingBranch))
            injectWrongPath(t);
    } else {
        unsigned renamed = 0;
        for (unsigned w = 0; w < cfg.renameWidth; ++w) {
            if (!renameOne(t, loadsThisCycle, sldUpdatesThisCycle))
                break;
            ++renamed;
        }
        if (renamed == 0)
            ++renameZeroCycles;
    }
    if (mechs.tracksSldPressure()) {
        sldUpdateHist.add(sldUpdatesThisCycle);
        ++sldUpdateCycles;
    }
}

} // namespace constable
