/**
 * @file
 * In-order retirement: snoop delivery at commit boundaries, the paper's
 * golden check (§8.5) on every retired load, commit-time mechanism
 * training, and resource release.
 */

#include "cpu/core.hh"

#include <cstdio>

namespace constable {

void
OooCore::deliverSnoops(ThreadCtx& t, size_t upto_trace_idx)
{
    const auto& snoops = t.trace->snoops;
    while (t.snoopIdx < snoops.size() &&
           snoops[t.snoopIdx].beforeSeq <= upto_trace_idx) {
        Addr addr = snoops[t.snoopIdx].addr;
        // Step 10: snoop probes the AMT; directory CV bit resets; caches
        // invalidate the line.
        mechs.onSnoop(addr);
        directory.snoopDelivered(lineAddr(addr));
        memory.snoop(addr);
        ++t.snoopIdx;
    }
}

void
OooCore::goldenCheck(const InFlight& e)
{
    if (!e.op.isLoad())
        return;
    if (e.eliminated || e.idealEliminated) {
        if (e.lbAddr != e.op.effAddr || e.elimValue != e.op.value) {
            goldenFailed = true;
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "golden check failed: pc=%#llx addr %#llx vs "
                          "%#llx value %#llx vs %#llx",
                          (unsigned long long)e.op.pc,
                          (unsigned long long)e.lbAddr,
                          (unsigned long long)e.op.effAddr,
                          (unsigned long long)e.elimValue,
                          (unsigned long long)e.op.value);
            goldenMsg = buf;
        }
    }
    // Executed loads fetch their value from the functional trace record,
    // so their golden check is satisfied by construction.
}

void
OooCore::retireStage()
{
    unsigned budget = cfg.retireWidth;
    for (size_t round = 0; round < threads.size() && budget > 0; ++round) {
        // Alternate priority between SMT threads cycle by cycle.
        ThreadCtx& t =
            threads[(round + static_cast<size_t>(now)) % threads.size()];
        while (budget > 0 && !t.rob.empty()) {
            int s = t.rob.front();
            InFlight& e = at(s);
            if (e.state != OpState::Done)
                break;
            deliverSnoops(t, e.traceIdx);
            goldenCheck(e);

            if (e.op.isLoad()) {
                ++loadsRetired;
                // Commit-time predictor training (in order, exactly once).
                if (!e.eliminated && !e.idealEliminated)
                    mechs.retireLoad(e);
                bool gs = e.isGsLoad;
                if (gs)
                    ++gsLoadsRetired;
                if (e.eliminated || e.idealEliminated) {
                    ++loadsEliminatedRetired;
                    ++loadsElimRetiredByMode[static_cast<unsigned>(
                        e.op.addrMode)];
                    if (gs)
                        ++gsElimRetired;
                    else
                        ++nonGsElimRetired;
                } else if (e.vpApplied) {
                    ++loadsVpRetired;
                }
                --t.lbUsed;
                if (!t.loadList.empty() && t.loadList.front() == s)
                    t.loadList.pop_front();
            }
            if (e.op.isStore()) {
                // Senior-store drain into the L1D.
                memory.store(e.op.pc, e.op.effAddr);
                --t.sbUsed;
                if (!t.storeList.empty() && t.storeList.front() == s)
                    t.storeList.pop_front();
                storeIndexErase(t, s);
            }
            if (e.eliminated && e.xprfHeld) {
                e.xprfHeld = false;
                mechs.releaseEliminated();
            }
            if (e.op.isBranch())
                mechs.retireBranch(e.op.taken);

            t.rob.pop_front();
            freeSlot(s);
            ++t.retired;
            --budget;

            if (t.traceIdx >= t.opsEnd() && t.rob.empty()) {
                // Finished only when the *trace* drained; a sampled-window
                // fence (renameLimit) ending early leaves the context open
                // for the next warm-up/window pass (cpu/warmup.cc).
                if (t.opsEnd() == t.trace->ops.size()) {
                    // Deliver any trailing snoops, then finish the context.
                    deliverSnoops(t, t.trace->ops.size());
                    t.done = true;
                    t.finishCycle = now;
                }
                break;
            }
        }
    }
}

} // namespace constable
