/**
 * @file
 * The scheduler: per-port issue with the load-token bucket, event-wheel
 * dispatch, the idle-cycle fast-forward, and the top-level run() loop.
 */

#include "cpu/core.hh"

#include "common/logging.hh"
#include "common/obs.hh"

namespace constable {

void
OooCore::issueStage()
{
    unsigned capacity[4] = { cfg.aluPorts, cfg.loadPorts, cfg.staPorts,
                             cfg.aluPorts };

    // Replenish load-issue tokens (burst cap: one cycle's worth extra).
    loadTokens = std::min(loadTokens + cfg.loadPorts, 2 * cfg.loadPorts);

    // Branches first (they share ALU ports): fast branch resolution.
    static const unsigned order[4] = { 3, 0, 1, 2 };
    unsigned branchIssued = 0;
    for (unsigned oi = 0; oi < 4; ++oi) {
        unsigned ty = order[oi];
        unsigned used = 0;
        unsigned cap = capacity[ty];
        if (ty == static_cast<unsigned>(PortType::Alu))
            cap = cap > branchIssued ? cap - branchIssued : 0;
        bool isLoadPort = ty == static_cast<unsigned>(PortType::Load);
        bool gsIssued = false;
        while (used < cap) {
            if (isLoadPort && loadTokens < cfg.loadPortOccupancy)
                break;
            int s = popReady(ty);
            if (s < 0)
                break;
            InFlight& e = at(s);
            e.state = OpState::Issued;
            ++issueEvents;
            if (e.inRs) {
                e.inRs = false;
                --rsUsed;
            }
            switch (e.op.cls) {
              case OpClass::Load:
                if (!e.elarReady)
                    ++aguExecs;
                schedule(s, EventKind::AguDone, cfg.aguLat);
                loadTokens -= cfg.loadPortOccupancy;
                if (e.isGsLoad)
                    gsIssued = true;
                break;
              case OpClass::Store:
                ++aguExecs;
                schedule(s, EventKind::StaDone, cfg.aguLat);
                break;
              case OpClass::Mul:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.mulLat);
                break;
              case OpClass::Div:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.divLat);
                break;
              case OpClass::FpOp:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.fpLat);
                break;
              default:
                ++aluExecs;
                schedule(s, EventKind::ExecDone, cfg.aluLat);
                break;
            }
            ++used;
        }
        if (ty == static_cast<unsigned>(PortType::Branch))
            branchIssued = used;
        if (ty == static_cast<unsigned>(PortType::Load)) {
            if (used > 0)
                ++loadUtilCycles;
            if (gsIssued) {
                // Fig 6b: is a non-global-stable load waiting on the same
                // ports this cycle? O(1) via the live ready-non-GS count
                // (equals what a scan of the remaining queue would find).
                if (readyNonGsLoads > 0)
                    ++gsOccupiedWaitCycles;
                else
                    ++gsOccupiedNoWaitCycles;
            }
        }
    }
}

void
OooCore::handleEvent(int slot, uint64_t gen, EventKind kind)
{
    InFlight& e = at(slot);
    if (!e.valid || e.gen != gen)
        return; // squashed
    switch (kind) {
      case EventKind::AguDone:
        onLoadAgu(slot);
        break;
      case EventKind::StaDone:
        onStaDone(slot);
        break;
      case EventKind::ExecDone:
        completeOp(slot);
        break;
      case EventKind::ValueAvail:
        e.valueAvailable = true;
        wakeConsumers(e);
        break;
    }
}

/**
 * Idle-cycle fast-forward: when the next cycle provably does nothing but
 * bump per-cycle stall counters -- no event due, nothing ready to issue,
 * nothing retirable, the rename stage stalled for a frozen reason -- jump
 * `now` to just before the next cycle that can make progress (next
 * populated wheel bucket or frontend-unblock point) and account the skipped
 * cycles' counters in bulk. Every branch here mirrors what the skipped
 * renameStage()/issueStage() iterations would have done, so RunResult stays
 * bit-identical to the cycle-by-cycle loop (the golden snapshot test locks
 * this).
 */
void
OooCore::tryFastForward()
{
    for (const ReadyQueue& q : readyQ)
        if (q.live > 0)
            return; // issueStage would issue
    for (const ThreadCtx& t : threads)
        if (!t.rob.empty() && at(t.rob.front()).state == OpState::Done)
            return; // retireStage would retire

    unsigned d = nextEventDelay();
    if (d == 1)
        return; // events due next cycle
    uint64_t target = d ? now + d : UINT64_MAX;
    // A frontend-blocked thread wakes exactly at frontendBlockedUntil:
    // rename-ability and pickThread() weights are frozen strictly before it.
    for (const ThreadCtx& t : threads)
        if (!t.done && t.frontendBlockedUntil > now)
            target = std::min<uint64_t>(target, t.frontendBlockedUntil);
    target = std::min<uint64_t>(target, cfg.maxCycles);
    if (target <= now + 1)
        return;

    // Replicate the one rename attempt every skipped cycle would make (all
    // inputs are frozen across the window, so one evaluation stands for k).
    const Cycle c = now + 1;
    unsigned tid = 0;
    if (threads.size() > 1) {
        auto weight = [&](const ThreadCtx& t) -> size_t {
            if (t.done)
                return SIZE_MAX;
            if (c < t.frontendBlockedUntil || refValid(t.pendingBranch))
                return SIZE_MAX - 1;
            return t.rob.size();
        };
        tid = weight(threads[0]) <= weight(threads[1]) ? 0 : 1;
    }
    ThreadCtx& t = threads[tid];
    bool pb = refValid(t.pendingBranch);
    bool blocked = t.done || c < t.frontendBlockedUntil || pb;
    uint64_t dFrontend = 0, dPendingBranch = 0, dRobFull = 0, dRsFull = 0;
    uint64_t dLbFull = 0, dSbFull = 0, dSldRead = 0, dZero = 0;
    if (blocked) {
        // Wrong-path injection mutates the RMT/SLD every blocked cycle;
        // those cycles cannot be batched.
        if (pb && mechs.wrongPathMutatesRename() && !t.recentOps.empty())
            return;
        if (!t.done) {
            dFrontend = 1;
            dPendingBranch = pb ? 1 : 0;
        }
    } else if (t.traceIdx >= t.opsEnd()) {
        dZero = 1; // trace drained; renameOne returns without a stall stat
    } else {
        const MicroOp& op = t.trace->ops[t.traceIdx];
        bool classRenameDone =
            op.cls == OpClass::Nop || op.cls == OpClass::Jump ||
            op.cls == OpClass::Move || op.cls == OpClass::ZeroIdiom ||
            op.cls == OpClass::StackAdj;
        if (t.rob.size() >= cfg.robPerThread()) {
            dRobFull = dZero = 1;
        } else if (!classRenameDone && rsUsed >= cfg.rsTotal()) {
            dRsFull = dZero = 1;
        } else if (op.isLoad() && t.lbUsed >= cfg.lbPerThread()) {
            dLbFull = dZero = 1;
        } else if (op.isStore() && t.sbUsed >= cfg.sbPerThread()) {
            dSbFull = dZero = 1;
        } else if (op.isLoad() && mechs.renameLoadGateStall(0)) {
            dSldRead = dZero = 1;
        } else if (freeSlots.empty()) {
            dZero = 1;
        } else {
            return; // the next cycle would rename: real progress
        }
    }

    uint64_t k = target - 1 - now;
    idleFastForwardedCycles += k;
    stallFrontend += dFrontend * k;
    stallPendingBranch += dPendingBranch * k;
    stallRobFull += dRobFull * k;
    stallRsFull += dRsFull * k;
    stallLbFull += dLbFull * k;
    stallSbFull += dSbFull * k;
    renameStallsSldRead += dSldRead * k;
    renameZeroCycles += dZero * k;
    if (mechs.tracksSldPressure()) {
        sldUpdateHist.add(0, k);
        sldUpdateCycles += k;
    }
    // issueStage token replenish saturates monotonically: k steps == one.
    loadTokens = static_cast<unsigned>(
        std::min<uint64_t>(loadTokens + k * cfg.loadPorts,
                           2 * cfg.loadPorts));
    now = target - 1;
}

RunResult
OooCore::run()
{
    bool allDone = false;
    while (!allDone && now < cfg.maxCycles) {
        tryFastForward();
        ++now;
        auto& events = wheel[now % kWheelSize];
        if (!events.empty()) {
            // Recycled slab: drain in place (schedule() can never target
            // the live bucket -- delays are clamped to [1, kWheelSize-1])
            // and clear() keeps the capacity for the next lap.
            size_t n = events.size();
            unsigned idx = static_cast<unsigned>(now % kWheelSize);
            CONSTABLE_ASSERT((wheelOccupied[idx / 64] >> (idx % 64)) & 1,
                             "draining a populated wheel bucket whose "
                             "occupancy bit is clear");
            CONSTABLE_ASSERT(pendingEvents >= n,
                             "wheel bucket holds more events than the "
                             "global pending count");
            pendingEvents -= n;
            wheelOccupied[idx / 64] &= ~(1ull << (idx % 64));
            for (size_t i = 0; i < n; ++i) {
                Event ev = events[i];
                handleEvent(ev.slot, ev.gen, ev.kind);
            }
            events.clear();
        }
        checkBlockedLoads();
        retireStage();
        issueStage();
        renameStage();

        allDone = true;
        for (const ThreadCtx& t : threads)
            allDone &= t.done;
    }
    if (!allDone)
        panic("OooCore: exceeded maxCycles (model deadlock?)");

    RunResult r;
    r.cycles = now;
    for (size_t i = 0; i < threads.size(); ++i) {
        r.instructions += threads[i].retired;
        r.threadInstructions[i] = threads[i].retired;
        r.threadFinishCycle[i] = threads[i].finishCycle;
    }
    r.goldenCheckFailed = goldenFailed;
    r.goldenCheckMessage = goldenMsg;
    exportFinalStats(r);
    // Obs-only: idle fast-forward totals go to the observability registry,
    // deliberately not into RunResult (which golden fingerprints cover).
    {
        static ObsCounter& ffCycles = obsCounter("sim.idle_ff_cycles");
        ffCycles.add(idleFastForwardedCycles);
    }
    return r;
}

} // namespace constable
