/**
 * @file
 * Sampled-simulation support: the functional fast-forward (warm-up) mode
 * and the measured detailed windows. warmupAdvance() replays trace ops in
 * order without OoO scheduling — a branch-predictor-only fast skip far
 * from the next window, then a full functional horizon updating caches/
 * TLB, the store-set heuristic and the active mechanisms' tables — so a
 * later detailed window starts from representative microarchitectural
 * state; runSampleWindows() then runs the normal cycle loop over a chain
 * of measured segments and times only the regions where the pipeline is
 * hot at both endpoints.
 * Driven by sim/sample.cc; full-fidelity run() never calls any of this.
 */

#include "cpu/core.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"

namespace constable {

namespace {

/** 8-byte-aligned chunk key (the same granularity the store-buffer
 *  forwarding index in cpu/mem_pipe.cc probes by). */
inline Addr
chunkOf(Addr a)
{
    return a >> 3;
}

/** A recently warmed store, indexed by chunk for the load probe. */
struct WarmStore
{
    PC pc = 0;
    Addr addr = 0;
    uint8_t size = 0;
    size_t idx = 0;
};

/** Ops within which a store->load pair is treated as an in-flight
 *  dependence by the warm-up heuristics (SB/ROB-distance scale). */
constexpr size_t kWarmStoreRecency = 64;

} // namespace

void
OooCore::warmupAdvance(size_t target_idx, size_t touch_from_idx)
{
    ThreadCtx& t = threads[0];
    CONSTABLE_ASSERT(t.rob.empty(),
                     "functional warm-up with ops still in flight");
    target_idx = std::min(target_idx, t.trace->ops.size());
    if (t.traceIdx >= target_idx)
        return;

    // Outside the detailed-warm horizon only the branch predictor is kept
    // current: its history tables converge over hundreds of thousands of
    // branches, far beyond any affordable full-replay horizon, and the
    // branch-bound configurations (the eliminating mechanisms) are acutely
    // sensitive to its state. Everything else is recency-bounded and
    // converges within the detailed horizon below.
    size_t touchFrom = std::clamp(touch_from_idx, t.traceIdx, target_idx);
    if (t.traceIdx < touchFrom) {
        for (size_t i = t.traceIdx; i < touchFrom; ++i) {
            const MicroOp& op = t.trace->ops[i];
            if (op.cls == OpClass::Branch) {
                branchPred.predict(op.pc);
                branchPred.update(op.pc, op.taken);
                mechs.retireBranch(op.taken);
            }
        }
        t.nextSeq += touchFrom - t.traceIdx;
        t.traceIdx = touchFrom;
        deliverSnoops(t, t.traceIdx);
        // Stores inside the gap were never probed against the AMT, so any
        // armed elimination could deliver a stale value in the next
        // window. Flush the mechanism tracking state; the horizon below
        // re-trains it from true values.
        mechs.onWarmupGap();
    }

    // Recent-store chunk map: drives the store-set (MDP) warm heuristic
    // and the MRN forwarding-producer guess. Entries past the recency
    // bound are dead weight, so a FIFO log retires them as the cursor
    // advances -- without it the map grows with the whole warm region
    // and its lookups dominate long advances.
    std::unordered_map<Addr, WarmStore> recentStores;
    std::deque<std::pair<Addr, size_t>> storeLog;

    while (t.traceIdx < target_idx) {
        const size_t idx = t.traceIdx;
        const MicroOp& op = t.trace->ops[idx];
        deliverSnoops(t, idx);

        while (!storeLog.empty() &&
               idx - storeLog.front().second > kWarmStoreRecency) {
            auto it = recentStores.find(storeLog.front().first);
            if (it != recentStores.end() &&
                it->second.idx == storeLog.front().second)
                recentStores.erase(it);
            storeLog.pop_front();
        }

        if (op.cls == OpClass::Branch) {
            // predict() + update() in the same step, exactly as rename does.
            branchPred.predict(op.pc);
            branchPred.update(op.pc, op.taken);
            mechs.retireBranch(op.taken);
        }

        if (op.isLoad()) {
            memory.load(op.pc, op.effAddr);
            // Store-set / forwarding heuristic: a store to overlapping
            // bytes within ROB/SB distance would disambiguate against (and
            // possibly forward to) this load in the detailed pipeline.
            PC fwdStorePc = 0;
            Addr c0 = chunkOf(op.effAddr);
            Addr c1 = chunkOf(op.effAddr + op.size - 1);
            for (Addr c = c0; c <= c1; ++c) {
                auto it = recentStores.find(c);
                if (it == recentStores.end())
                    continue;
                const WarmStore& st = it->second;
                if (idx - st.idx > kWarmStoreRecency)
                    continue;
                if (!overlaps(st.addr, st.size, op.effAddr, op.size))
                    continue;
                storeSets.merge(op.pc, st.pc);
                if (st.addr <= op.effAddr &&
                    op.effAddr + op.size <= st.addr + st.size)
                    fwdStorePc = st.pc; // full coverage: SB would forward
            }
            mechs.warmupLoad(*this, op, fwdStorePc);
        }

        if (op.isStore()) {
            memory.store(op.pc, op.effAddr);
            mechs.onStoreAddr(op.effAddr);
            Addr c0 = chunkOf(op.effAddr);
            Addr c1 = chunkOf(op.effAddr + op.size - 1);
            for (Addr c = c0; c <= c1; ++c) {
                recentStores[c] = WarmStore{ op.pc, op.effAddr, op.size,
                                             idx };
                storeLog.emplace_back(c, idx);
            }
        }

        // Every destination write drains the RMT / resets SLD entries,
        // exactly as the rename stage's dst-write hook does.
        if (op.dst != kNoReg)
            sldUpdateTotal += mechs.renameDstWrite(op.dst);

        // Keep the wrong-path template ring warm for the detailed window.
        // Only the final 32 ops of the advance survive in the ring, so
        // skip the copy until the cursor is within reach of the target --
        // the result is bit-identical to copying on every iteration.
        if (idx + 32 >= target_idx || t.recentOps.size() < 32) {
            if (t.recentOps.size() < 32)
                t.recentOps.push_back(op);
            else
                t.recentOps[t.nextSeq % 32] = op;
        }

        ++t.traceIdx;
        ++t.nextSeq;
    }
}

std::vector<OooCore::WindowTiming>
OooCore::runSampleWindows(const std::vector<SampleSegment>& segs,
                          size_t rename_limit)
{
    ThreadCtx& t = threads[0];
    const size_t traceSize = t.trace->ops.size();
    CONSTABLE_ASSERT(t.rob.empty(),
                     "sampled window started with ops still in flight");
    CONSTABLE_ASSERT(!segs.empty(), "runSampleWindows with no segments");

    // Retired-count boundary per segment: retiring op index x maps to the
    // count base + (x - cursor), because every op from the cursor to the
    // fence retires exactly once and in order.
    const uint64_t base = t.retired;
    const size_t cursor = t.traceIdx;
    std::vector<uint64_t> startAt(segs.size()), endAt(segs.size());
    size_t lastEnd = 0;
    for (size_t i = 0; i < segs.size(); ++i) {
        size_t b = std::max(segs[i].begin, cursor);
        size_t e = std::min(segs[i].end, traceSize);
        CONSTABLE_ASSERT(b < e && e > lastEnd,
                         "sampled segments must be sorted, non-empty and "
                         "non-overlapping");
        startAt[i] = base + (b - cursor);
        endAt[i] = base + (e - cursor);
        lastEnd = e;
    }
    rename_limit = std::min(std::max(rename_limit, lastEnd), traceSize);
    t.renameLimit = rename_limit;

    std::vector<WindowTiming> out(segs.size());
    size_t cur = 0;
    bool inSeg = false;
    Cycle segStart = now;
    bool done = false;

    // The run() loop body with a different exit condition: stop the moment
    // the retired-op count crosses the last measurement end (checked right
    // after retireStage(), before rename could cross the fence and the
    // idle fast-forward could mistake the fence for a drained trace).
    while (now < cfg.maxCycles) {
        tryFastForward();
        ++now;
        auto& events = wheel[now % kWheelSize];
        if (!events.empty()) {
            size_t n = events.size();
            unsigned idx = static_cast<unsigned>(now % kWheelSize);
            CONSTABLE_ASSERT((wheelOccupied[idx / 64] >> (idx % 64)) & 1,
                             "draining a populated wheel bucket whose "
                             "occupancy bit is clear");
            CONSTABLE_ASSERT(pendingEvents >= n,
                             "wheel bucket holds more events than the "
                             "global pending count");
            pendingEvents -= n;
            wheelOccupied[idx / 64] &= ~(1ull << (idx % 64));
            for (size_t i = 0; i < n; ++i) {
                Event ev = events[i];
                handleEvent(ev.slot, ev.gen, ev.kind);
            }
            events.clear();
        }
        checkBlockedLoads();
        retireStage();
        // Advance over every boundary this cycle's retires crossed. Two
        // boundaries can land on the same cycle (adjacent segments share
        // one), so loop until the retire count stops crossing.
        while (cur < out.size()) {
            if (!inSeg) {
                if (t.retired < startAt[cur] && !t.done)
                    break;
                inSeg = true;
                segStart = now;
            }
            if (t.retired < endAt[cur] && !t.done)
                break;
            // Nominal segment length, not the possibly-overshot retire
            // count: same-cycle extras past the boundary belong to the
            // boundary cycle the next segment starts on.
            out[cur].ops = std::min<uint64_t>(t.retired, endAt[cur]) -
                           startAt[cur];
            out[cur].cycles = now > segStart ? now - segStart : 1;
            inSeg = false;
            ++cur;
        }
        if (cur >= out.size() || t.done) {
            done = cur >= out.size();
            break;
        }
        issueStage();
        renameStage();
    }
    if (!done)
        panic("OooCore: sampled window exceeded maxCycles (model "
              "deadlock?)");

    // Flush everything still in flight (the overrun that kept the pipeline
    // fed): squashFrom rewinds the cursor to the first unretired op, so
    // the next warm-up pass resumes exactly where measurement stopped.
    if (!t.rob.empty())
        squashFrom(t, 0, 1);
    t.renameLimit = SIZE_MAX;
    return out;
}

RunResult
OooCore::sampledResult()
{
    RunResult r;
    r.cycles = now;
    for (size_t i = 0; i < threads.size(); ++i) {
        r.instructions += threads[i].retired;
        r.threadInstructions[i] = threads[i].retired;
        r.threadFinishCycle[i] = threads[i].finishCycle;
    }
    r.goldenCheckFailed = goldenFailed;
    r.goldenCheckMessage = goldenMsg;
    exportFinalStats(r);
    return r;
}

} // namespace constable
