#include "inspector/load_inspector.hh"

namespace constable {

double
LoadInspectorResult::globalStableFrac() const
{
    return ratio(static_cast<double>(dynGlobalStableLoads),
                 static_cast<double>(dynLoads));
}

double
LoadInspectorResult::modeFrac(AddrMode m) const
{
    return ratio(static_cast<double>(
                     dynGlobalStableByMode[static_cast<unsigned>(m)]),
                 static_cast<double>(dynGlobalStableLoads));
}

std::unordered_set<PC>
LoadInspectorResult::globalStablePcs() const
{
    std::unordered_set<PC> pcs;
    for (const auto& [pc, info] : loads) {
        if (info.globalStable)
            pcs.insert(pc);
    }
    return pcs;
}

LoadInspectorResult
inspectLoads(const Trace& trace)
{
    LoadInspectorResult r;
    r.dynOps = trace.ops.size();

    // Pass 1: classify static loads and record first-seen (addr, value).
    struct Hist { uint64_t lastIdx = 0; bool seen = false; };
    std::unordered_map<PC, Hist> prev;

    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const MicroOp& op = trace.ops[i];
        if (!op.isLoad())
            continue;
        ++r.dynLoads;
        auto [it, inserted] = r.loads.try_emplace(op.pc);
        StaticLoadInfo& info = it->second;
        if (inserted) {
            info.pc = op.pc;
            info.mode = op.addrMode;
            info.addr = op.effAddr;
            info.value = op.value;
        } else if (info.addr != op.effAddr || info.value != op.value) {
            info.globalStable = false;
        }
        ++info.dynCount;
    }

    // Pass 2: dynamic accounting and distance histograms restricted to
    // global-stable loads (the paper's Fig 3c/d population).
    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const MicroOp& op = trace.ops[i];
        if (!op.isLoad())
            continue;
        const StaticLoadInfo& info = r.loads.at(op.pc);
        if (!info.globalStable)
            continue;
        ++r.dynGlobalStableLoads;
        ++r.dynGlobalStableByMode[static_cast<unsigned>(op.addrMode)];
        auto& h = prev[op.pc];
        if (h.seen) {
            uint64_t dist = static_cast<uint64_t>(i) - h.lastIdx;
            r.distanceHist.add(dist);
            r.distByMode[static_cast<unsigned>(op.addrMode)].add(dist);
        }
        h.lastIdx = static_cast<uint64_t>(i);
        h.seen = true;
    }
    return r;
}

} // namespace constable
