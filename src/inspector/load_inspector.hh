/**
 * @file
 * Load Inspector: the offline whole-trace analysis the paper open-sources
 * as a binary-instrumentation tool (§4.2). Identifies global-stable loads
 * (every dynamic instance fetched the same value from the same address),
 * their addressing-mode mix, and inter-occurrence distances (Fig 3), and
 * feeds the Ideal Constable / Ideal Stable LVP configurations (Fig 7).
 */

#ifndef CONSTABLE_INSPECTOR_LOAD_INSPECTOR_HH
#define CONSTABLE_INSPECTOR_LOAD_INSPECTOR_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "trace/trace.hh"

namespace constable {

/** Per-static-load summary produced by the inspector. */
struct StaticLoadInfo
{
    PC pc = 0;
    AddrMode mode = AddrMode::None;
    uint64_t dynCount = 0;
    bool globalStable = true;     ///< same (addr, value) across all instances
    Addr addr = 0;
    uint64_t value = 0;
};

/** Whole-trace load analysis results. */
class LoadInspectorResult
{
  public:
    /** All static loads, keyed by PC. */
    std::unordered_map<PC, StaticLoadInfo> loads;

    uint64_t dynLoads = 0;
    uint64_t dynGlobalStableLoads = 0;
    uint64_t dynOps = 0;

    /** Fraction of dynamic loads that are global-stable (Fig 3a). */
    double globalStableFrac() const;

    /** Distribution of global-stable dynamic loads by mode (Fig 3b). */
    double modeFrac(AddrMode m) const;

    /** Inter-occurrence-distance histogram of global-stable loads,
     *  buckets [0,50) [50,100) [100,250) 250+ (Fig 3c). */
    Histogram distanceHist = Histogram({ 50, 100, 250 });

    /** Per-addressing-mode distance histograms (Fig 3d). */
    Histogram distByMode[4] = {
        Histogram({ 50, 100, 250 }), Histogram({ 50, 100, 250 }),
        Histogram({ 50, 100, 250 }), Histogram({ 50, 100, 250 }),
    };

    /** PCs of global-stable loads (Ideal configurations). */
    std::unordered_set<PC> globalStablePcs() const;

    uint64_t dynGlobalStableByMode[4] = { 0, 0, 0, 0 };
};

/** Run the inspector over a trace. */
LoadInspectorResult inspectLoads(const Trace& trace);

} // namespace constable

#endif
