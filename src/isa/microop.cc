#include "isa/microop.hh"

#include <cstdio>

namespace constable {

std::string
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::Alu: return "alu";
      case OpClass::Mul: return "mul";
      case OpClass::Div: return "div";
      case OpClass::FpOp: return "fp";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::Jump: return "jump";
      case OpClass::Move: return "move";
      case OpClass::ZeroIdiom: return "zero";
      case OpClass::StackAdj: return "stackadj";
      case OpClass::Nop: return "nop";
    }
    return "?";
}

std::string
addrModeName(AddrMode m)
{
    switch (m) {
      case AddrMode::None: return "none";
      case AddrMode::PcRel: return "pc-rel";
      case AddrMode::StackRel: return "stack-rel";
      case AddrMode::RegRel: return "reg-rel";
    }
    return "?";
}

std::string
MicroOp::str() const
{
    char buf[256];
    if (isMem()) {
        std::snprintf(buf, sizeof(buf),
                      "%s pc=%#llx %s [%#llx]=%#llx sz=%u dst=%s src=%s,%s",
                      opClassName(cls).c_str(),
                      static_cast<unsigned long long>(pc),
                      addrModeName(addrMode).c_str(),
                      static_cast<unsigned long long>(effAddr),
                      static_cast<unsigned long long>(value), size,
                      regName(dst).c_str(), regName(src[0]).c_str(),
                      regName(src[1]).c_str());
    } else if (isBranch()) {
        std::snprintf(buf, sizeof(buf), "%s pc=%#llx %s -> %#llx",
                      opClassName(cls).c_str(),
                      static_cast<unsigned long long>(pc),
                      taken ? "T" : "NT",
                      static_cast<unsigned long long>(target));
    } else {
        std::snprintf(buf, sizeof(buf), "%s pc=%#llx dst=%s src=%s,%s",
                      opClassName(cls).c_str(),
                      static_cast<unsigned long long>(pc),
                      regName(dst).c_str(), regName(src[0]).c_str(),
                      regName(src[1]).c_str());
    }
    return buf;
}

} // namespace constable
