/**
 * @file
 * Dynamic micro-op record: the unit of the trace and of every pipeline
 * structure. A trace entry carries both the static description (PC, op
 * class, registers, addressing mode) and the golden functional outcome
 * (effective address, loaded/stored value, branch direction) so the timing
 * model can perform the paper's retirement golden check (§8.5).
 */

#ifndef CONSTABLE_ISA_MICROOP_HH
#define CONSTABLE_ISA_MICROOP_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/reg.hh"

namespace constable {

/** Functional classes of micro-ops modeled by the core. */
enum class OpClass : uint8_t {
    Alu,        ///< single-cycle integer op
    Mul,        ///< 3-cycle integer multiply
    Div,        ///< long-latency divide
    FpOp,       ///< floating-point arithmetic (vector ports 0/1/5)
    Load,       ///< memory read (AGU + load port + L1D)
    Store,      ///< memory write (STA + STD ports)
    Branch,     ///< conditional/indirect control flow
    Jump,       ///< unconditional direct branch (foldable)
    Move,       ///< reg-reg move (eliminable at rename)
    ZeroIdiom,  ///< xor r,r / mov r,0 (eliminable at rename)
    StackAdj,   ///< rsp +/- imm (constant-foldable at rename)
    Nop,
};

/** Addressing mode of a memory micro-op, following the paper's taxonomy. */
enum class AddrMode : uint8_t {
    None,      ///< not a memory op
    PcRel,     ///< rip-relative (global-scope data)
    StackRel,  ///< RSP/RBP-based (stack segment)
    RegRel,    ///< any other general-purpose base register
};

/** Printable op-class name. */
std::string opClassName(OpClass c);
/** Printable addressing-mode name. */
std::string addrModeName(AddrMode m);

/**
 * One dynamic micro-op. Fixed-size POD so traces stay compact and the
 * generator can stream millions of them cheaply.
 */
struct MicroOp
{
    PC pc = 0;
    OpClass cls = OpClass::Nop;
    AddrMode addrMode = AddrMode::None;

    /** Source architectural registers (kNoReg when absent). For loads these
     *  are the address-generation sources — exactly the registers the RMT
     *  must monitor (Condition 1). */
    std::array<uint8_t, 3> src { kNoReg, kNoReg, kNoReg };
    /** Destination architectural register (kNoReg when absent). */
    uint8_t dst = kNoReg;

    /** Memory access size in bytes (loads/stores). */
    uint8_t size = 8;

    /** Golden effective address (loads/stores). */
    Addr effAddr = 0;
    /** Golden data value: value loaded, or value stored. */
    uint64_t value = 0;

    /** Branch outcome. */
    bool taken = false;
    /** Branch target (unused by the timing model except for BTB indexing). */
    Addr target = 0;

    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const
    {
        return cls == OpClass::Branch || cls == OpClass::Jump;
    }

    /** Number of valid source registers. */
    unsigned
    numSrcs() const
    {
        unsigned n = 0;
        for (uint8_t s : src)
            if (s != kNoReg)
                ++n;
        return n;
    }

    /** Debug rendering. */
    std::string str() const;
};

} // namespace constable

#endif
