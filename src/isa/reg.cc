#include "isa/reg.hh"

namespace constable {

std::string
regName(uint8_t r)
{
    static const char* names16[] = {
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    };
    if (r < 16)
        return names16[r];
    if (r < kMaxArchRegs)
        return "r" + std::to_string(static_cast<int>(r));
    if (r == kNoReg)
        return "<none>";
    return "<bad:" + std::to_string(static_cast<int>(r)) + ">";
}

} // namespace constable
