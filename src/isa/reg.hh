/**
 * @file
 * Architectural register model. The trace generator and core model an
 * x86-64-like integer register file with 16 architectural registers, or 32
 * when the APX mode (paper appendix B) is enabled.
 */

#ifndef CONSTABLE_ISA_REG_HH
#define CONSTABLE_ISA_REG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace constable {

/** x86-64 integer register indices. R16..R31 exist only in APX mode. */
enum Reg : uint8_t {
    RAX = 0, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
    R8, R9, R10, R11, R12, R13, R14, R15,
    // APX extended registers
    R16, R17, R18, R19, R20, R21, R22, R23,
    R24, R25, R26, R27, R28, R29, R30, R31,
};

/** Baseline x86-64 architectural register count. */
inline constexpr unsigned kNumArchRegs = 16;
/** Register count with the APX extension (appendix B study). */
inline constexpr unsigned kNumArchRegsApx = 32;
/** Upper bound used to size tables. */
inline constexpr unsigned kMaxArchRegs = 32;

/** True for the two stack registers whose RMT entries are larger (Table 1). */
constexpr bool
isStackReg(uint8_t r)
{
    return r == RSP || r == RBP;
}

/** Printable register name. */
std::string regName(uint8_t r);

} // namespace constable

#endif
