#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace constable {

namespace {

/** Retired tag arrays kept per thread for reuse. Three geometries recur
 *  (L1D/L2/LLC), so the pool reaches steady state after one run; the cap
 *  bounds a thread at a few MB even when tests churn odd sizes. */
constexpr size_t kMaxPooledArrays = 6;

} // namespace

std::vector<std::vector<Cache::Line>>&
Cache::linePool()
{
    thread_local std::vector<std::vector<Line>> pool;
    return pool;
}

std::vector<Cache::Line>
Cache::acquireLines(size_t n)
{
    auto& pool = linePool();
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool[i].capacity() >= n) {
            std::vector<Line> v = std::move(pool[i]);
            pool[i] = std::move(pool.back());
            pool.pop_back();
            // Value-reset every line: bit-identical starting state to a
            // freshly value-initialized vector (golden snapshot guarded).
            v.assign(n, Line{});
            return v;
        }
    }
    return std::vector<Line>(n);
}

void
Cache::releaseLines(std::vector<Line>&& v)
{
    auto& pool = linePool();
    if (v.capacity() == 0 || pool.size() >= kMaxPooledArrays)
        return; // dropped: freed normally
    v.clear();
    pool.push_back(std::move(v));
}

Cache::Cache(const CacheConfig& cache_cfg) : cfg(cache_cfg)
{
    uint64_t numLines = static_cast<uint64_t>(cfg.sizeKB) * 1024 / kLineBytes;
    if (cfg.ways == 0 || numLines % cfg.ways != 0)
        fatal("Cache " + cfg.name + ": bad geometry");
    sets = static_cast<unsigned>(numLines / cfg.ways);
    if (!std::has_single_bit(sets))
        fatal("Cache " + cfg.name + ": set count must be a power of two");
    setShift = static_cast<unsigned>(std::countr_zero(sets));
    lines = acquireLines(numLines);
}

Cache::~Cache()
{
    releaseLines(std::move(lines));
}

bool
Cache::lookup(Addr line, bool is_write)
{
    unsigned set = setIndex(line);
    Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line& l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == tag) {
            l.lru = ++stamp;
            l.rrpv = 0;
            l.dirty |= is_write;
            ++hits;
            return true;
        }
    }
    ++misses;
    return false;
}

bool
Cache::contains(Addr line) const
{
    unsigned set = setIndex(line);
    Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        const Line& l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

unsigned
Cache::victimWay(unsigned set)
{
    // Prefer an invalid way.
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (!lines[set * cfg.ways + w].valid)
            return w;
    }
    if (cfg.policy == ReplPolicy::LRU) {
        unsigned best = 0;
        uint64_t bestStamp = UINT64_MAX;
        for (unsigned w = 0; w < cfg.ways; ++w) {
            const Line& l = lines[set * cfg.ways + w];
            if (l.lru < bestStamp) {
                bestStamp = l.lru;
                best = w;
            }
        }
        return best;
    }
    // RRIP: evict first line with max RRPV, aging the set until one exists.
    for (;;) {
        for (unsigned w = 0; w < cfg.ways; ++w) {
            if (lines[set * cfg.ways + w].rrpv >= 3)
                return w;
        }
        for (unsigned w = 0; w < cfg.ways; ++w)
            ++lines[set * cfg.ways + w].rrpv;
    }
}

void
Cache::insert(Addr line, bool is_write, bool from_prefetch)
{
    unsigned set = setIndex(line);
    Addr tag = tagOf(line);
    // Refresh if already present (prefetch racing a demand fill).
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line& l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == tag) {
            l.dirty |= is_write;
            return;
        }
    }
    unsigned w = victimWay(set);
    Line& l = lines[set * cfg.ways + w];
    if (l.valid) {
        ++evictions;
        if (evictHook) {
            Addr victimLine = (l.tag << setShift) | set;
            evictHook(victimLine, l.dirty);
        }
    }
    l.valid = true;
    l.tag = tag;
    l.dirty = is_write;
    l.lru = ++stamp;
    l.rrpv = from_prefetch ? 3 : 2;
}

std::optional<bool>
Cache::invalidate(Addr line)
{
    unsigned set = setIndex(line);
    Addr tag = tagOf(line);
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line& l = lines[set * cfg.ways + w];
        if (l.valid && l.tag == tag) {
            l.valid = false;
            return l.dirty;
        }
    }
    return std::nullopt;
}

} // namespace constable
