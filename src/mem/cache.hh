/**
 * @file
 * Generic set-associative cache tag array with pluggable replacement.
 * Timing is owned by the hierarchy facade; this class models presence,
 * recency and evictions (the latter feed the Constable-AMT-I variant and
 * the directory CV-bit logic).
 */

#ifndef CONSTABLE_MEM_CACHE_HH
#define CONSTABLE_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace constable {

/** Replacement policies used across the hierarchy (Table 2). */
enum class ReplPolicy : uint8_t {
    LRU,
    RRIP,   ///< re-reference interval prediction (dead-block-aware stand-in)
};

/** Cache geometry + behaviour configuration. */
struct CacheConfig
{
    std::string name = "cache";
    unsigned sizeKB = 48;
    unsigned ways = 12;
    unsigned latency = 5;          ///< round-trip hit latency in cycles
    ReplPolicy policy = ReplPolicy::LRU;
};

/**
 * Set-associative tag array over 64-byte lines.
 * Eviction notifications carry the victim line address and its dirty bit.
 */
class Cache
{
  public:
    using EvictHook = std::function<void(Addr line, bool dirty)>;

    explicit Cache(const CacheConfig& cfg);
    ~Cache();

    /** The backing tag array is recycled through a per-thread pool across
     *  Cache lifetimes (a batch worker constructs three arrays per
     *  simulated run; reusing the allocations keeps construction out of
     *  the sweep profile), so a Cache must be destroyed on the thread
     *  that created it — true for every runTrace/runSmtPair job. Copies
     *  would each release into the pool independently, which is safe but
     *  pointless; moves keep the buffer. */
    Cache(const Cache&) = delete;
    Cache& operator=(const Cache&) = delete;
    Cache(Cache&&) = default;
    Cache& operator=(Cache&&) = default;

    /** Probe for a line; updates recency on hit. @param line line address. */
    bool lookup(Addr line, bool is_write);

    /** Probe without recency update or stats. */
    bool contains(Addr line) const;

    /**
     * Fill a line (allocate-on-miss). Evicts a victim if the set is full
     * and calls the eviction hook.
     * @param from_prefetch fills from prefetchers get distant RRIP ages.
     */
    void insert(Addr line, bool is_write, bool from_prefetch = false);

    /** Invalidate a line if present (snoop); @return was present+dirty. */
    std::optional<bool> invalidate(Addr line);

    void setEvictHook(EvictHook hook) { evictHook = std::move(hook); }

    const CacheConfig& config() const { return cfg; }
    unsigned numSets() const { return sets; }

    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

  private:
    /** Packed to 24 bytes: the tag array is value-initialized per run and
     *  scanned way-by-way, so line size is both memset and probe cost. */
    struct Line
    {
        Addr tag = 0;
        uint64_t lru = 0;     ///< recency stamp (LRU)
        uint8_t rrpv = 3;     ///< re-reference prediction value (RRIP)
        bool valid = false;
        bool dirty = false;
    };

    unsigned setIndex(Addr line) const { return line & (sets - 1); }
    Addr tagOf(Addr line) const { return line >> setShift; }
    unsigned victimWay(unsigned set);

    /** Per-thread recycled tag-array storage (see the dtor note above). */
    static std::vector<std::vector<Line>>& linePool();
    static std::vector<Line> acquireLines(size_t n);
    static void releaseLines(std::vector<Line>&& v);

    CacheConfig cfg;
    unsigned sets;
    unsigned setShift;
    uint64_t stamp = 0;
    std::vector<Line> lines;   ///< sets * ways, row-major
    EvictHook evictHook;
};

} // namespace constable

#endif
