/**
 * @file
 * Coherence-directory model for Constable's CV-bit pinning (paper §6.6).
 * Tracks, per cacheline, whether the own core's core-valid (CV) bit is
 * pinned because an eliminated load depends on that line. With pinning,
 * snoops to the line are always delivered to the core even after a clean
 * private-cache eviction; without pinning (the Constable-AMT-I variant),
 * the core must instead invalidate AMT state on every L1D eviction.
 */

#ifndef CONSTABLE_MEM_DIRECTORY_HH
#define CONSTABLE_MEM_DIRECTORY_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"

namespace constable {

/** Single-core view of the directory's CV-bit state. */
class Directory
{
  public:
    /** Pin the own core's CV bit for a line (eliminated-load dependence). */
    void
    pin(Addr line)
    {
        if (pinned.insert(line).second)
            ++pinCount;
    }

    /** Snoop delivery resets the CV bit (normal directory behaviour). */
    void
    snoopDelivered(Addr line)
    {
        pinned.erase(line);
        ++snoopsDelivered;
    }

    /** Would a snoop to this line reach the core after a clean eviction? */
    bool isPinned(Addr line) const { return pinned.count(line) > 0; }

    size_t numPinned() const { return pinned.size(); }

    uint64_t pinCount = 0;
    uint64_t snoopsDelivered = 0;

  private:
    std::unordered_set<Addr> pinned;
};

} // namespace constable

#endif
