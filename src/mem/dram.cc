#include "mem/dram.hh"

namespace constable {

Dram::Dram(const DramConfig& dram_cfg)
    : cfg(dram_cfg),
      banks(dram_cfg.channels * dram_cfg.ranksPerChannel *
            dram_cfg.banksPerRank)
{
}

unsigned
Dram::access(Addr addr)
{
    ++accesses;
    // Address interleave: line -> channel -> rank -> bank; row above that.
    Addr line = lineAddr(addr);
    unsigned chan = line % cfg.channels;
    Addr l1 = line / cfg.channels;
    unsigned rank = l1 % cfg.ranksPerChannel;
    Addr l2 = l1 / cfg.ranksPerChannel;
    unsigned bank = l2 % cfg.banksPerRank;
    Addr row = l2 / cfg.banksPerRank / (cfg.rowBufferBytes / kLineBytes);

    Bank& b = banks[(chan * cfg.ranksPerChannel + rank) * cfg.banksPerRank +
                    bank];
    unsigned latency;
    if (b.rowValid && b.openRow == row) {
        ++rowHits;
        latency = cfg.tCas + cfg.busTransfer;
    } else {
        ++rowMisses;
        latency = cfg.tRp + cfg.tRcd + cfg.tCas + cfg.busTransfer;
        b.openRow = row;
        b.rowValid = true;
    }
    return latency;
}

} // namespace constable
