/**
 * @file
 * DDR4-like main-memory timing model: channels, ranks, banks, open-row
 * policy, with the paper's Table 2 timings (tCAS = tRCD = tRP = 22 ns,
 * converted to core cycles at 3.2 GHz).
 */

#ifndef CONSTABLE_MEM_DRAM_HH
#define CONSTABLE_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** DRAM geometry/timing configuration. */
struct DramConfig
{
    unsigned channels = 4;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    unsigned rowBufferBytes = 2048;
    unsigned tCas = 70;   ///< 22 ns @ 3.2 GHz
    unsigned tRcd = 70;
    unsigned tRp = 70;
    unsigned busTransfer = 8;
};

/** Bank-state DRAM latency model. */
class Dram
{
  public:
    explicit Dram(const DramConfig& cfg = DramConfig{});

    /** Latency in core cycles for an access to @p addr. */
    unsigned access(Addr addr);

    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t accesses = 0;

  private:
    DramConfig cfg;
    struct Bank
    {
        Addr openRow = 0;
        bool rowValid = false;
    };
    std::vector<Bank> banks;
};

} // namespace constable

#endif
