#include "mem/dtlb.hh"

namespace constable {

Dtlb::Dtlb(unsigned entries, unsigned num_ways, unsigned miss_penalty)
    : sets(entries / num_ways), ways(num_ways), missPenalty(miss_penalty),
      table(entries)
{
}

unsigned
Dtlb::access(Addr addr)
{
    Addr vpn = addr >> 12;
    unsigned set = vpn % sets;
    for (unsigned w = 0; w < ways; ++w) {
        Entry& e = table[set * ways + w];
        if (e.valid && e.vpn == vpn) {
            e.lru = ++stamp;
            ++hits;
            return 0;
        }
    }
    ++misses;
    // Fill the LRU way.
    unsigned victim = 0;
    uint64_t best = UINT64_MAX;
    for (unsigned w = 0; w < ways; ++w) {
        Entry& e = table[set * ways + w];
        if (!e.valid) {
            victim = w;
            break;
        }
        if (e.lru < best) {
            best = e.lru;
            victim = w;
        }
    }
    table[set * ways + victim] = Entry{ vpn, true, ++stamp };
    return missPenalty;
}

} // namespace constable
