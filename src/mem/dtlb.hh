/**
 * @file
 * Data TLB: small fully-counted translation structure. Translation in this
 * model is identity (VA == PA); the DTLB exists for timing on misses and
 * for the MEU power breakdown (Fig 19c).
 */

#ifndef CONSTABLE_MEM_DTLB_HH
#define CONSTABLE_MEM_DTLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** Set-associative DTLB over 4 KiB pages. */
class Dtlb
{
  public:
    Dtlb(unsigned entries = 64, unsigned ways = 4, unsigned miss_penalty = 20);

    /** Translate; @return extra latency cycles (0 on hit). */
    unsigned access(Addr addr);

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        uint64_t lru = 0;
    };
    unsigned sets;
    unsigned ways;
    unsigned missPenalty;
    uint64_t stamp = 0;
    std::vector<Entry> table;
};

} // namespace constable

#endif
