#include "mem/hierarchy.hh"

namespace constable {

MemHierarchy::MemHierarchy(const HierarchyConfig& hier_cfg)
    : cfg(hier_cfg), l1d(hier_cfg.l1d), l2(hier_cfg.l2), llc(hier_cfg.llc),
      dram(hier_cfg.dram)
{
}

void
MemHierarchy::setL1EvictHook(L1EvictHook hook)
{
    l1d.setEvictHook(std::move(hook));
}

MemAccessResult
MemHierarchy::accessTimed(PC pc, Addr addr, bool is_write)
{
    Addr line = lineAddr(addr);
    unsigned latency = dtlb.access(addr);
    ++dtlbAccesses;

    MemAccessResult res;
    if (l1d.lookup(line, is_write)) {
        res.level = MemLevel::L1D;
        latency += cfg.l1d.latency;
    } else if (l2.lookup(line, false)) {
        res.level = MemLevel::L2;
        latency += cfg.l2.latency + cfg.l1d.latency;
        l1d.insert(line, is_write);
    } else if (llc.lookup(line, false)) {
        res.level = MemLevel::LLC;
        latency += cfg.llc.latency;
        l2.insert(line, false);
        l1d.insert(line, is_write);
    } else {
        res.level = MemLevel::Dram;
        latency += cfg.llc.latency + dram.access(addr);
        llc.insert(line, false);
        l2.insert(line, false);
        l1d.insert(line, is_write);
    }

    if (cfg.enablePrefetchers) {
        pfBuf.clear();
        l1Stride.observe(pc, addr, pfBuf);
        doPrefetchFills(pfBuf, MemLevel::L1D);
        if (res.level != MemLevel::L1D) {
            pfBuf.clear();
            l2Streamer.observe(addr, pfBuf);
            l2Spp.observe(addr, pfBuf);
            doPrefetchFills(pfBuf, MemLevel::L2);
        }
    }

    res.latency = latency;
    return res;
}

void
MemHierarchy::doPrefetchFills(const std::vector<Addr>& candidates,
                              MemLevel into)
{
    for (Addr a : candidates) {
        Addr line = lineAddr(a);
        if (into == MemLevel::L1D) {
            if (!l1d.contains(line))
                l1d.insert(line, false, true);
        } else {
            if (!l2.contains(line))
                l2.insert(line, false, true);
        }
        if (!llc.contains(line))
            llc.insert(line, false, true);
    }
}

MemAccessResult
MemHierarchy::load(PC pc, Addr addr)
{
    ++l1dReads;
    return accessTimed(pc, addr, false);
}

MemAccessResult
MemHierarchy::store(PC pc, Addr addr)
{
    ++l1dWrites;
    return accessTimed(pc, addr, true);
}

void
MemHierarchy::warmLine(Addr line)
{
    if (!llc.contains(line))
        llc.insert(line, false, true);
    if (!l2.contains(line))
        l2.insert(line, false, true);
}

void
MemHierarchy::snoop(Addr addr)
{
    Addr line = lineAddr(addr);
    l1d.invalidate(line);
    l2.invalidate(line);
    llc.invalidate(line);
}

void
MemHierarchy::exportStats(StatSet& stats) const
{
    stats.set("mem.l1d.hits", static_cast<double>(l1d.hits));
    stats.set("mem.l1d.misses", static_cast<double>(l1d.misses));
    stats.set("mem.l1d.evictions", static_cast<double>(l1d.evictions));
    stats.set("mem.l1d.reads", static_cast<double>(l1dReads));
    stats.set("mem.l1d.writes", static_cast<double>(l1dWrites));
    stats.set("mem.l2.hits", static_cast<double>(l2.hits));
    stats.set("mem.l2.misses", static_cast<double>(l2.misses));
    stats.set("mem.llc.hits", static_cast<double>(llc.hits));
    stats.set("mem.llc.misses", static_cast<double>(llc.misses));
    stats.set("mem.dram.accesses", static_cast<double>(dram.accesses));
    stats.set("mem.dram.rowHits", static_cast<double>(dram.rowHits));
    stats.set("mem.dtlb.misses", static_cast<double>(dtlb.misses));
    stats.set("mem.dtlb.accesses", static_cast<double>(dtlbAccesses));
}

} // namespace constable
