/**
 * @file
 * Memory-hierarchy facade: L1D + L2 + LLC + DRAM + DTLB + prefetchers
 * (paper Table 2 geometry/latencies). The core calls load()/store() and
 * receives a total round-trip latency; the facade maintains inclusion-free
 * tag state, triggers prefetch fills, and exposes eviction notifications
 * for the Constable-AMT-I variant (Fig 22).
 */

#ifndef CONSTABLE_MEM_HIERARCHY_HH
#define CONSTABLE_MEM_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/dtlb.hh"
#include "mem/prefetcher.hh"

namespace constable {

/** Hierarchy configuration; defaults follow the paper's Table 2. */
struct HierarchyConfig
{
    CacheConfig l1d { "L1D", 48, 12, 5, ReplPolicy::LRU };
    CacheConfig l2 { "L2", 2048, 16, 12, ReplPolicy::LRU };
    CacheConfig llc { "LLC", 3072, 12, 50, ReplPolicy::RRIP };
    DramConfig dram {};
    bool enablePrefetchers = true;
};

/** Where an access was served from. */
enum class MemLevel : uint8_t { L1D, L2, LLC, Dram };

/** Result of a timed access. */
struct MemAccessResult
{
    unsigned latency = 0;
    MemLevel level = MemLevel::L1D;
};

class MemHierarchy
{
  public:
    using L1EvictHook = std::function<void(Addr line, bool dirty)>;

    explicit MemHierarchy(const HierarchyConfig& cfg = HierarchyConfig{});

    /** Timed demand load (counts an L1D read access). */
    MemAccessResult load(PC pc, Addr addr);

    /** Timed store (senior-store drain; counts an L1D write access). */
    MemAccessResult store(PC pc, Addr addr);

    /** Invalidate a line everywhere (external snoop). */
    void snoop(Addr addr);

    /** Pre-fill a line into L2 + LLC (trace warm-up, like the paper's
     *  memory-state snapshots; avoids cold-miss artifacts on short traces). */
    void warmLine(Addr line);

    /** Register the L1D eviction hook (Constable-AMT-I). */
    void setL1EvictHook(L1EvictHook hook);

    /** Export counters into a StatSet under a prefix. */
    void exportStats(StatSet& stats) const;

    uint64_t l1dReads = 0;
    uint64_t l1dWrites = 0;
    uint64_t dtlbAccesses = 0;

    Cache& l1dCache() { return l1d; }

  private:
    MemAccessResult accessTimed(PC pc, Addr addr, bool is_write);
    void doPrefetchFills(const std::vector<Addr>& candidates, MemLevel into);

    HierarchyConfig cfg;
    Cache l1d;
    Cache l2;
    Cache llc;
    Dram dram;
    Dtlb dtlb;
    StridePrefetcher l1Stride;
    StreamerPrefetcher l2Streamer;
    SppPrefetcher l2Spp;
    std::vector<Addr> pfBuf;
};

} // namespace constable

#endif
