#include "mem/prefetcher.hh"

namespace constable {

StridePrefetcher::StridePrefetcher(unsigned entries, unsigned fetch_degree)
    : table(entries), degree(fetch_degree)
{
}

void
StridePrefetcher::observe(PC pc, Addr addr, std::vector<Addr>& out)
{
    Entry& e = table[pc % table.size()];
    if (!e.valid || e.pc != pc) {
        e = Entry{ pc, addr, 0, 0, true };
        return;
    }
    int64_t stride = static_cast<int64_t>(addr) -
                     static_cast<int64_t>(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        if (e.conf < 3)
            ++e.conf;
    } else {
        e.conf = stride == 0 ? e.conf : 0;
        e.stride = stride;
    }
    e.lastAddr = addr;
    if (e.conf >= 2 && e.stride != 0) {
        for (unsigned d = 1; d <= degree; ++d) {
            out.push_back(addr + static_cast<Addr>(e.stride * d));
            ++issued;
        }
    }
}

StreamerPrefetcher::StreamerPrefetcher(unsigned regions,
                                       unsigned fetch_degree)
    : table(regions), degree(fetch_degree)
{
}

void
StreamerPrefetcher::observe(Addr addr, std::vector<Addr>& out)
{
    Addr region = addr >> 12; // 4 KiB regions
    Addr line = lineAddr(addr);
    Region& r = table[region % table.size()];
    if (!r.valid || r.regionBase != region) {
        r = Region{ region, line, 0, true };
        return;
    }
    int dir = line > r.lastLine ? 1 : (line < r.lastLine ? -1 : 0);
    if (dir != 0 && dir == r.dir) {
        for (unsigned d = 1; d <= degree; ++d) {
            out.push_back((line + static_cast<Addr>(dir * (int)d))
                          << kLineShift);
            ++issued;
        }
    }
    if (dir != 0)
        r.dir = dir;
    r.lastLine = line;
}

SppPrefetcher::SppPrefetcher(unsigned sig_entries, unsigned lookahead)
    : pages(256), patterns(sig_entries), depth(lookahead)
{
}

void
SppPrefetcher::observe(Addr addr, std::vector<Addr>& out)
{
    Addr page = addr >> 12;
    Addr line = lineAddr(addr);
    PageEntry& pe = pages[page % pages.size()];
    if (!pe.valid || pe.page != page) {
        pe = PageEntry{ page, 0, line, true };
        return;
    }
    int16_t delta = static_cast<int16_t>(
        static_cast<int64_t>(line) - static_cast<int64_t>(pe.lastLine));
    if (delta != 0) {
        // Train the pattern table with the observed delta.
        PatternEntry& tr = patterns[pe.signature % patterns.size()];
        if (tr.delta == delta) {
            if (tr.conf < 3)
                ++tr.conf;
        } else if (tr.conf > 0) {
            --tr.conf;
        } else {
            tr.delta = delta;
            tr.conf = 1;
        }
        // Advance the signature and walk the speculative path.
        pe.signature = static_cast<uint16_t>((pe.signature << 3) ^
                                             (delta & 0x3f));
        uint16_t sig = pe.signature;
        Addr cur = line;
        for (unsigned d = 0; d < depth; ++d) {
            const PatternEntry& p = patterns[sig % patterns.size()];
            if (p.conf < 2 || p.delta == 0)
                break;
            cur += static_cast<Addr>(static_cast<int64_t>(p.delta));
            out.push_back(cur << kLineShift);
            ++issued;
            sig = static_cast<uint16_t>((sig << 3) ^ (p.delta & 0x3f));
        }
    }
    pe.lastLine = line;
}

} // namespace constable
