/**
 * @file
 * Hardware prefetchers of the baseline hierarchy (paper Table 2):
 * a PC-based stride prefetcher at L1D, and a next-line streamer plus an
 * SPP-style lookahead delta prefetcher at L2.
 */

#ifndef CONSTABLE_MEM_PREFETCHER_HH
#define CONSTABLE_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** PC-indexed stride prefetcher (Fu et al., MICRO'92 flavour). */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(unsigned entries = 256, unsigned degree = 2);

    /**
     * Observe a demand access.
     * @param out prefetch candidate byte addresses are appended here.
     */
    void observe(PC pc, Addr addr, std::vector<Addr>& out);

    uint64_t issued = 0;

  private:
    struct Entry
    {
        PC pc = 0;
        Addr lastAddr = 0;
        int64_t stride = 0;
        uint8_t conf = 0;
        bool valid = false;
    };
    std::vector<Entry> table;
    unsigned degree;
};

/** Per-region next-N-lines streamer with direction detection. */
class StreamerPrefetcher
{
  public:
    explicit StreamerPrefetcher(unsigned regions = 64, unsigned degree = 4);

    void observe(Addr addr, std::vector<Addr>& out);

    uint64_t issued = 0;

  private:
    struct Region
    {
        Addr regionBase = 0;
        Addr lastLine = 0;
        int dir = 0;
        bool valid = false;
    };
    std::vector<Region> table;
    unsigned degree;
};

/**
 * Signature-Path-style delta prefetcher (SPP-lite): per-page delta history
 * signature mapped to a predicted next delta with confidence.
 */
class SppPrefetcher
{
  public:
    explicit SppPrefetcher(unsigned sig_entries = 512, unsigned depth = 3);

    void observe(Addr addr, std::vector<Addr>& out);

    uint64_t issued = 0;

  private:
    struct PageEntry
    {
        Addr page = 0;
        uint16_t signature = 0;
        Addr lastLine = 0;
        bool valid = false;
    };
    struct PatternEntry
    {
        int16_t delta = 0;
        uint8_t conf = 0;
    };
    std::vector<PageEntry> pages;
    std::vector<PatternEntry> patterns;
    unsigned depth;
};

} // namespace constable

#endif
