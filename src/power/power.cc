#include "power/power.hh"

namespace constable {

PowerBreakdown
computePower(const StatSet& s, const PowerParams& p)
{
    PowerBreakdown b;
    double renamed = s.get("renamed.ops");
    double instructions = s.get("instructions");

    b.fe = renamed * (p.fetchPerOp + p.decodePerOp);
    b.oooRat = renamed * p.ratPerRename;
    b.oooRob = s.get("rob.allocs") * p.robPerAlloc +
               instructions * p.robPerRetire;
    b.oooRs = s.get("rs.allocs") * p.rsPerAlloc +
              s.get("issue.events") * p.rsPerIssue;
    b.eu = s.get("exec.alu") * p.aluPerOp;
    // PRF writes: every issued op producing a result (eliminated loads
    // write the small xPRF instead, charged with the RAT below).
    b.eu += s.get("issue.events") * p.prfPerWrite;
    b.meuL1d = s.get("mem.l1d.reads") * p.l1dPerRead +
               s.get("mem.l1d.writes") * p.l1dPerWrite;
    b.meuDtlb = s.get("mem.dtlb.accesses") * p.dtlbPerAccess;
    // AGU and LSQ CAM-search energy are part of the memory execution unit;
    // eliminated loads skip both.
    b.meuL1d += s.get("exec.agu") * (p.aguPerOp + p.lsqSearchPerMemOp);

    // Constable structures: SLD + RMT accounted in RAT, AMT in L1D (§8.2).
    double sldReads = s.get("constable.sld.lookups");
    double sldWrites = s.get("constable.sld.arms") +
                       s.get("constable.sld.resets") +
                       s.get("constable.sld.trainMatches") +
                       s.get("constable.sld.trainMismatches");
    b.oooRat += sldReads * p.sldRead + sldWrites * p.sldWrite;
    b.oooRat += (s.get("constable.rmt.inserts") + renamed) * p.rmtAccess;
    b.meuL1d += (s.get("constable.amt.inserts") +
                 s.get("constable.amt.invalidations")) * p.amtAccess;

    // EVES predictor energy.
    b.other += s.get("eves.predictions") * p.evesPerAccess;

    return b;
}

} // namespace constable
