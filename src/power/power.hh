/**
 * @file
 * Event-based core dynamic power model (paper §8.2). Per-event energies
 * (pJ) are charged against the event counters a run exports; the breakdown
 * follows the paper's units: front end (FE), out-of-order (OOO: RS, RAT,
 * ROB), non-memory execution (EU) and memory execution (MEU: L1D, DTLB).
 * Constable's structures are charged where the paper accounts them:
 * SLD + RMT in the RAT component, AMT in the L1D component.
 */

#ifndef CONSTABLE_POWER_POWER_HH
#define CONSTABLE_POWER_POWER_HH

#include "common/stats.hh"

namespace constable {

/** Per-event energies in pJ. Values are plausible 14 nm-class numbers;
 *  the paper's comparisons are relative, which is what these drive. */
struct PowerParams
{
    double fetchPerOp = 32.0;
    double decodePerOp = 22.0;
    double ratPerRename = 12.0;
    double robPerAlloc = 8.0;
    double robPerRetire = 5.0;
    double rsPerAlloc = 20.0;
    double rsPerIssue = 16.0;
    double aluPerOp = 24.0;
    double aguPerOp = 16.0;
    double l1dPerRead = 110.0;
    double l1dPerWrite = 120.0;
    /** Load/store-queue CAM search per address-generating memory op. */
    double lsqSearchPerMemOp = 70.0;
    /** Physical-register-file write per produced result. */
    double prfPerWrite = 24.0;
    double dtlbPerAccess = 10.0;
    double evesPerAccess = 12.0;  ///< 32 KB predictor lookup + train

    // Constable structures (paper Table 3, 14 nm).
    double sldRead = 10.76;
    double sldWrite = 16.70;
    double rmtAccess = 0.18;
    double amtAccess = 2.90;
};

/** Per-unit dynamic-energy breakdown for one run (pJ totals). */
struct PowerBreakdown
{
    double fe = 0;
    double oooRs = 0;
    double oooRat = 0;   ///< includes SLD + RMT when Constable is on
    double oooRob = 0;
    double eu = 0;
    double meuL1d = 0;   ///< includes AMT when Constable is on
    double meuDtlb = 0;
    double other = 0;    ///< EVES and miscellany

    double ooo() const { return oooRs + oooRat + oooRob; }
    double meu() const { return meuL1d + meuDtlb; }
    double total() const { return fe + ooo() + eu + meu() + other; }
};

/** Charge a run's exported stats against the energy parameters. */
PowerBreakdown computePower(const StatSet& stats,
                            const PowerParams& params = PowerParams{});

} // namespace constable

#endif
