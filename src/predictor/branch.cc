#include "predictor/branch.hh"

namespace constable {

TageLite::TageLite() : base(1u << kBaseBits, 0)
{
    for (auto& t : tagged)
        t.resize(1u << kTaggedBits);
}

uint64_t
TageLite::foldHistory(unsigned bits, unsigned len) const
{
    uint64_t h = ghist & (len >= 64 ? ~0ull : ((1ull << len) - 1));
    uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ull << bits) - 1);
        h >>= bits;
    }
    return folded;
}

unsigned
TageLite::taggedIndex(PC pc, unsigned t) const
{
    uint64_t f = foldHistory(kTaggedBits, kHistLen[t]);
    return static_cast<unsigned>((pc ^ (pc >> kTaggedBits) ^ f) &
                                 ((1u << kTaggedBits) - 1));
}

uint16_t
TageLite::taggedTag(PC pc, unsigned t) const
{
    uint64_t f = foldHistory(9, kHistLen[t]);
    return static_cast<uint16_t>((pc ^ (pc >> 7) ^ (f << 1)) & 0x1ff);
}

bool
TageLite::predict(PC pc)
{
    ++lookups;
    provider = -1;
    unsigned baseIdx = static_cast<unsigned>(pc & ((1u << kBaseBits) - 1));
    altPred = base[baseIdx] >= 0;
    lastPred = altPred;
    for (int t = kNumTagged - 1; t >= 0; --t) {
        unsigned idx = taggedIndex(pc, t);
        const TaggedEntry& e = tagged[t][idx];
        if (e.tag == taggedTag(pc, t)) {
            provider = t;
            providerIdx = idx;
            lastPred = e.ctr >= 0;
            break;
        }
    }
    return lastPred;
}

void
TageLite::update(PC pc, bool taken)
{
    if (taken != lastPred)
        ++mispredicts;

    unsigned baseIdx = static_cast<unsigned>(pc & ((1u << kBaseBits) - 1));
    auto bump = [](int8_t& c, bool up, int lo, int hi) {
        if (up && c < hi)
            ++c;
        else if (!up && c > lo)
            --c;
    };

    if (provider >= 0) {
        TaggedEntry& e = tagged[provider][providerIdx];
        bump(e.ctr, taken, -4, 3);
        bool providerPred = lastPred;
        if (providerPred != altPred) {
            if (providerPred == taken && e.useful < 3)
                ++e.useful;
            else if (providerPred != taken && e.useful > 0)
                --e.useful;
        }
    } else {
        bump(base[baseIdx], taken, -2, 1);
    }

    // On a mispredict, try to allocate an entry in a longer-history table.
    if (taken != lastPred && provider < static_cast<int>(kNumTagged) - 1) {
        unsigned start = provider + 1;
        for (unsigned t = start; t < kNumTagged; ++t) {
            unsigned idx = taggedIndex(pc, t);
            TaggedEntry& e = tagged[t][idx];
            if (e.useful == 0) {
                e.tag = taggedTag(pc, t);
                e.ctr = taken ? 0 : -1;
                break;
            }
            // Gracefully age a victim so allocation succeeds eventually.
            if (rng.chance(0.25))
                --e.useful;
        }
    }

    ghist = (ghist << 1) | (taken ? 1 : 0);
}

} // namespace constable
