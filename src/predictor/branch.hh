/**
 * @file
 * TAGE-lite conditional branch predictor (Seznec & Michaud flavour): a
 * bimodal base table plus tagged tables with geometric history lengths.
 * The trace-driven core calls predict() then update() with the golden
 * outcome in the same cycle, so history management is exact.
 */

#ifndef CONSTABLE_PREDICTOR_BRANCH_HH
#define CONSTABLE_PREDICTOR_BRANCH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace constable {

/** Compact TAGE-style direction predictor. */
class TageLite
{
  public:
    TageLite();

    /** Predict the direction of the branch at @p pc. */
    bool predict(PC pc);

    /** Train with the actual outcome (call right after predict). */
    void update(PC pc, bool taken);

    uint64_t lookups = 0;
    uint64_t mispredicts = 0;

  private:
    static constexpr unsigned kNumTagged = 3;
    static constexpr unsigned kTaggedBits = 10;   // 1024 entries
    static constexpr unsigned kBaseBits = 13;     // 8192 entries
    static constexpr std::array<unsigned, kNumTagged> kHistLen { 8, 16, 32 };

    struct TaggedEntry
    {
        uint16_t tag = 0;
        int8_t ctr = 0;      // -4..3, taken when >= 0
        uint8_t useful = 0;
    };

    unsigned taggedIndex(PC pc, unsigned t) const;
    uint16_t taggedTag(PC pc, unsigned t) const;
    uint64_t foldHistory(unsigned bits, unsigned len) const;

    std::vector<int8_t> base;                      // 2-bit counters
    std::array<std::vector<TaggedEntry>, kNumTagged> tagged;
    uint64_t ghist = 0;
    Rng rng { 0xb4a9c };

    // Prediction bookkeeping between predict() and update().
    int provider = -1;
    unsigned providerIdx = 0;
    bool lastPred = false;
    bool altPred = false;
};

} // namespace constable

#endif
