#include "predictor/storeset.hh"

namespace constable {

StoreSets::StoreSets(unsigned entries) : table(entries)
{
}

void
StoreSets::merge(PC load_pc, PC store_pc)
{
    ++violations;
    Entry& le = table[index(load_pc)];
    Entry& se = table[index(store_pc)];
    if (le.ssid == kInvalidSsid && se.ssid == kInvalidSsid) {
        Ssid s = nextSsid++;
        if (nextSsid == kInvalidSsid)
            nextSsid = 0;
        le.ssid = s;
        se.ssid = s;
    } else if (le.ssid != kInvalidSsid && se.ssid == kInvalidSsid) {
        se.ssid = le.ssid;
    } else if (le.ssid == kInvalidSsid && se.ssid != kInvalidSsid) {
        le.ssid = se.ssid;
    } else {
        // Both assigned: converge on the smaller id (classic rule).
        Ssid s = std::min(le.ssid, se.ssid);
        le.ssid = s;
        se.ssid = s;
    }
}

void
StoreSets::clear()
{
    for (auto& e : table)
        e.ssid = kInvalidSsid;
}

} // namespace constable
