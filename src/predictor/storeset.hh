/**
 * @file
 * Store-set memory dependence predictor (Chrysos & Emer, ISCA'98). The
 * SSIT lives here; the last-fetched-store table is managed by the core,
 * which knows about in-flight stores. Supports the baseline's "aggressive
 * out-of-order load scheduling with memory dependence prediction".
 */

#ifndef CONSTABLE_PREDICTOR_STORESET_HH
#define CONSTABLE_PREDICTOR_STORESET_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** Store-set identifier; kInvalidSsid means "no known dependence". */
using Ssid = uint16_t;
inline constexpr Ssid kInvalidSsid = 0xffff;

/** Store-Set Identifier Table. */
class StoreSets
{
  public:
    explicit StoreSets(unsigned entries = 4096);

    /** Store set of a PC (load or store); kInvalidSsid if none. Inline:
     *  the load-AGU disambiguation scan calls this per in-flight store. */
    Ssid lookup(PC pc) const { return table[index(pc)].ssid; }

    /** Record an ordering violation between a load and a store. */
    void merge(PC load_pc, PC store_pc);

    /** Periodic cleanup (the classic scheme clears tables; we decay). */
    void clear();

    uint64_t violations = 0;

  private:
    unsigned index(PC pc) const { return pc % table.size(); }

    struct Entry
    {
        Ssid ssid = kInvalidSsid;
    };
    std::vector<Entry> table;
    Ssid nextSsid = 0;
};

} // namespace constable

#endif
