#include "serve/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <queue>
#include <system_error>

#include "common/faultio.hh"
#include "common/logging.hh"
#include "common/obs.hh"
#include "common/rng.hh"
#include "power/power.hh"
#include "trace/serialize.hh"

namespace constable {

namespace {

/** Arrival-count backstop: a misconfigured inter-arrival/end pair should
 *  fail loudly, not allocate the machine away. */
constexpr size_t kMaxArrivals = 5'000'000;

/** One request entering the fleet. */
struct Arrival
{
    double time;   ///< cycle of arrival
    uint32_t task; ///< task-class index
    uint32_t seq;  ///< per-class sequence number (deterministic tie-break)
};

/** Byte-stable accumulator for the report fingerprint. */
struct FpBuf
{
    std::vector<uint8_t> bytes;

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

void
fingerprintBox(FpBuf& b, const BoxWhisker& w)
{
    b.f64(w.min);
    b.f64(w.q1);
    b.f64(w.median);
    b.f64(w.q3);
    b.f64(w.max);
    b.f64(w.whiskerLo);
    b.f64(w.whiskerHi);
    b.f64(w.meanVal);
    b.u64(w.n);
}

// ----------------------------------------------- calibration cache
//
// Verification-only persistence of the fleet calibration sweep: the
// calibration is always recomputed (it is cheap next to the sweep and
// must stay the single source of truth), then checked against the cached
// copy keyed by the sweep's matrix fingerprint. A stale or corrupt cache
// file is quarantined and rewritten; a failed write degrades to a
// warning. Report fingerprints and stdout never depend on the cache.

constexpr uint64_t kCalibMagic = 0x4c434643ull; // "CFCL"
constexpr uint64_t kCalibVersion = 1;

std::vector<uint8_t>
encodeCalibCache(uint64_t fp, const std::vector<MachineCalibration>& calib)
{
    FpBuf b;
    b.u64(kCalibMagic);
    b.u64(kCalibVersion);
    b.u64(fp);
    b.u64(calib.size());
    for (const MachineCalibration& c : calib) {
        b.u64(c.mech.size());
        for (char ch : c.mech)
            b.bytes.push_back(static_cast<uint8_t>(ch));
        b.f64(c.cyclesPerOp);
        b.f64(c.pjPerOp);
    }
    b.u64(fnv1a(b.bytes.data(), b.bytes.size()));
    return b.bytes;
}

/** Bounds-checked little-endian reader over a calibration cache file. */
struct CalibReader
{
    const uint8_t* p;
    size_t n;
    size_t at = 0;
    bool ok = true;

    uint64_t
    u64()
    {
        if (at + 8 > n) {
            ok = false;
            return 0;
        }
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[at + i]) << (8 * i);
        at += 8;
        return v;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
};

bool
decodeCalibCache(const std::vector<uint8_t>& bytes, uint64_t& fp,
                 std::vector<MachineCalibration>& out)
{
    if (bytes.size() < 8 * 5)
        return false;
    uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        stored |= static_cast<uint64_t>(bytes[bytes.size() - 8 + i])
                  << (8 * i);
    }
    if (fnv1a(bytes.data(), bytes.size() - 8) != stored)
        return false;
    CalibReader r { bytes.data(), bytes.size() - 8 };
    if (r.u64() != kCalibMagic || r.u64() != kCalibVersion)
        return false;
    fp = r.u64();
    uint64_t count = r.u64();
    out.clear();
    for (uint64_t i = 0; i < count && r.ok; ++i) {
        MachineCalibration c;
        uint64_t len = r.u64();
        if (!r.ok || r.at + len > r.n)
            return false;
        c.mech.assign(reinterpret_cast<const char*>(r.p + r.at),
                      static_cast<size_t>(len));
        r.at += static_cast<size_t>(len);
        c.cyclesPerOp = r.f64();
        c.pjPerOp = r.f64();
        out.push_back(std::move(c));
    }
    return r.ok;
}

void
verifyCalibCache(const std::string& dir, const Scenario& sc,
                 const SampleOptions& sample,
                 const std::vector<MachineCalibration>& calib, uint64_t fp)
{
    // Sampled and full-fidelity calibrations have different fingerprints
    // by design; keying the cache file on the sample spec lets the two
    // coexist instead of quarantining each other on every mode switch.
    std::string file = "fleet-" + sanitizeFileName(sc.name);
    if (sample.enabled)
        file += "-" + sanitizeFileName(sample.spec());
    file += ".calib";
    std::string path = dir + "/" + file;
    std::vector<uint8_t> bytes;
    static ObsCounter& cacheHits = obsCounter("fleet.calib.cache_hit");
    static ObsCounter& cacheMisses = obsCounter("fleet.calib.cache_miss");
    if (!faultFailed("fleet.calib.read") && readFileBytes(path, bytes)) {
        uint64_t cachedFp = 0;
        std::vector<MachineCalibration> cached;
        if (decodeCalibCache(bytes, cachedFp, cached) && cachedFp == fp) {
            cacheHits.add();
            inform("fleet calibration for '" + sc.name +
                   "' matches its cached copy (fingerprint verified)");
            return;
        }
        std::error_code ec;
        std::filesystem::create_directories(dir + "/quarantine", ec);
        std::filesystem::rename(path, dir + "/quarantine/" + file, ec);
        warn("cached fleet calibration '" + path +
             "' is stale or corrupt; quarantined and rewritten");
    }
    cacheMisses.add();
    if (faultFailed("fleet.calib.write") ||
        !writeFileAtomic(path, encodeCalibCache(fp, calib))) {
        warn("cannot persist fleet calibration cache '" + path +
             "'; continuing without it");
    }
}

} // namespace

double
slaBudgetMultiplier(SlaTier tier)
{
    switch (tier) {
      case SlaTier::Sla0: return 1.2;
      case SlaTier::Sla1: return 1.5;
      case SlaTier::Sla2: return 2.0;
    }
    panic("unreachable SLA tier");
}

const char*
slaTierName(SlaTier tier)
{
    switch (tier) {
      case SlaTier::Sla0: return "SLA0";
      case SlaTier::Sla1: return "SLA1";
      case SlaTier::Sla2: return "SLA2";
    }
    panic("unreachable SLA tier");
}

std::vector<MachineCalibration>
calibrateMachines(const Scenario& sc, const ExperimentResult& res)
{
    std::vector<MachineCalibration> out;
    out.reserve(sc.machines.size());
    for (const FleetMachineClass& m : sc.machines) {
        MachineCalibration c;
        c.mech = m.mech;
        std::vector<double> cpos, pjs;
        for (size_t row = 0; row < res.numRows(); ++row) {
            const RunResult& rr = res.at(row, m.mech);
            double insts = static_cast<double>(rr.instructions);
            // ratio() maps a zero-instruction row to 0, which the guarded
            // geomean then skips instead of collapsing the mean.
            cpos.push_back(ratio(static_cast<double>(rr.cycles), insts));
            pjs.push_back(ratio(computePower(rr.stats).total(), insts));
        }
        c.cyclesPerOp = geomean(cpos);
        c.pjPerOp = geomean(pjs);
        if (c.cyclesPerOp <= 0.0) {
            fatal("fleet calibration for preset '" + m.mech +
                  "' produced no usable cycles-per-op (empty suite?)");
        }
        out.push_back(std::move(c));
    }
    return out;
}

FleetReport
simulateFleet(const Scenario& sc,
              const std::vector<MachineCalibration>& calib)
{
    if (sc.machines.empty() || sc.tasks.empty())
        fatal("simulateFleet needs a fleet scenario (machine+task classes)");
    if (calib.size() != sc.machines.size())
        fatal("simulateFleet needs one calibration per machine class");
    const uint64_t dispatchStartUs = obsArmed() ? obsTimestampUs() : 0;

    // ---- open-loop arrival generation, one seeded stream per task class.
    std::vector<Arrival> arrivals;
    for (size_t ti = 0; ti < sc.tasks.size(); ++ti) {
        const FleetTaskClass& t = sc.tasks[ti];
        Rng rng(t.seed);
        const double mean = static_cast<double>(t.interArrival);
        double time = static_cast<double>(t.start);
        uint32_t seq = 0;
        for (;;) {
            // First arrival lands one gap after the window opens; fixed
            // gaps make closed-form testcases, poisson models live load.
            double gap =
                t.poisson ? -mean * std::log(1.0 - rng.uniform()) : mean;
            time += gap;
            if (time >= static_cast<double>(t.end))
                break;
            arrivals.push_back(
                { time, static_cast<uint32_t>(ti), seq++ });
            if (arrivals.size() > kMaxArrivals) {
                fatal("fleet scenario '" + sc.name + "' generates more "
                      "than " + std::to_string(kMaxArrivals) +
                      " arrivals; raise inter-arrival or shrink [start, "
                      "end)");
            }
        }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival& a, const Arrival& b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  if (a.task != b.task)
                      return a.task < b.task;
                  return a.seq < b.seq;
              });

    // ---- dispatch onto per-class pools of (replicas * cores) servers.
    using MinHeap = std::priority_queue<double, std::vector<double>,
                                        std::greater<double>>;
    std::vector<MinHeap> freeAt(sc.machines.size());
    for (size_t mi = 0; mi < sc.machines.size(); ++mi) {
        const FleetMachineClass& m = sc.machines[mi];
        for (size_t s = 0;
             s < static_cast<size_t>(m.replicas) * m.cores; ++s)
            freeAt[mi].push(0.0);
    }
    // Pinned classes resolved once (names were validated at parse).
    std::vector<size_t> pin(sc.tasks.size(), SIZE_MAX);
    for (size_t ti = 0; ti < sc.tasks.size(); ++ti) {
        if (sc.tasks[ti].machine.empty())
            continue;
        for (size_t mi = 0; mi < sc.machines.size(); ++mi) {
            if (sc.machines[mi].name == sc.tasks[ti].machine)
                pin[ti] = mi;
        }
    }

    FleetReport rep;
    rep.name = sc.name;
    rep.machines.resize(sc.machines.size());
    for (size_t mi = 0; mi < sc.machines.size(); ++mi) {
        MachineReport& mr = rep.machines[mi];
        mr.name = sc.machines[mi].name;
        mr.mech = sc.machines[mi].mech;
        mr.replicas = sc.machines[mi].replicas;
        mr.cores = sc.machines[mi].cores;
    }
    std::array<std::vector<double>, kNumSlaTiers> latencies;
    std::array<uint64_t, kNumSlaTiers> violations {};

    double horizon = 0;
    for (const FleetTaskClass& t : sc.tasks)
        horizon = std::max(horizon, static_cast<double>(t.end));

    for (const Arrival& a : arrivals) {
        const FleetTaskClass& t = sc.tasks[a.task];
        const double ops = static_cast<double>(t.expectedOps);
        // Choose the serving class: the pin, or whichever class would
        // complete this request first (FIFO within a class; earlier class
        // block wins ties deterministically).
        size_t mi = pin[a.task];
        if (mi == SIZE_MAX) {
            double best = 0;
            for (size_t c = 0; c < sc.machines.size(); ++c) {
                double fin = std::max(a.time, freeAt[c].top()) +
                             ops * calib[c].cyclesPerOp;
                if (mi == SIZE_MAX || fin < best) {
                    mi = c;
                    best = fin;
                }
            }
        }
        const double service = ops * calib[mi].cyclesPerOp;
        const double begin = std::max(a.time, freeAt[mi].top());
        freeAt[mi].pop();
        freeAt[mi].push(begin + service);

        const double latency = begin + service - a.time;
        horizon = std::max(horizon, begin + service);
        MachineReport& mr = rep.machines[mi];
        mr.requests += 1;
        mr.servedOps += ops;
        mr.busyCycles += service;
        const size_t tier = static_cast<size_t>(t.sla);
        latencies[tier].push_back(latency);
        if (latency > slaBudgetMultiplier(t.sla) * service)
            violations[tier] += 1;
        rep.totalRequests += 1;
    }
    rep.horizonCycles = horizon;

    // ---- per-class rollups.
    for (size_t mi = 0; mi < sc.machines.size(); ++mi) {
        const FleetMachineClass& m = sc.machines[mi];
        MachineReport& mr = rep.machines[mi];
        const double servers =
            static_cast<double>(m.replicas) * m.cores;
        mr.utilization = ratio(mr.busyCycles, servers * horizon);
        mr.requestsPerMcycle =
            ratio(static_cast<double>(mr.requests) * 1e6, horizon);
        const double idleCycles =
            std::max(0.0, servers * horizon - mr.busyCycles);
        const double energyPj =
            mr.servedOps * calib[mi].pjPerOp +
            idleCycles * static_cast<double>(m.idlePjPerCycle);
        // pJ -> uJ: requests are ~1e6 pJ each at these op counts.
        mr.uJPerRequest =
            ratio(energyPj, static_cast<double>(mr.requests)) * 1e-6;
    }

    // ---- per-tier latency tails.
    for (size_t tier = 0; tier < kNumSlaTiers; ++tier) {
        std::vector<double>& lats = latencies[tier];
        std::sort(lats.begin(), lats.end());
        SlaReport& sr = rep.sla[tier];
        sr.requests = lats.size();
        sr.p50 = percentileSorted(lats, 0.50);
        sr.p95 = percentileSorted(lats, 0.95);
        sr.p99 = percentileSorted(lats, 0.99);
        sr.violationFrac =
            ratio(static_cast<double>(violations[tier]),
                  static_cast<double>(lats.size()));
        sr.latency = BoxWhisker::from(lats);
    }

    // One synthetic trace lane per machine class: a single span covering
    // this dispatch pass, named so the Perfetto track reads
    // "fleet:<class>" with the scenario and request count on the slice.
    if (obsArmed()) {
        const uint64_t durUs =
            std::max<uint64_t>(1, obsTimestampUs() - dispatchStartUs);
        for (const MachineReport& mr : rep.machines) {
            obsEmitSpan("fleet:" + mr.name, "dispatch:" + sc.name, "fleet",
                        dispatchStartUs, durUs);
        }
    }
    return rep;
}

uint64_t
FleetReport::fingerprint() const
{
    FpBuf b;
    b.u64(fnv1a(name));
    b.f64(horizonCycles);
    b.u64(totalRequests);
    b.u64(calibFingerprint);
    for (const MachineReport& m : machines) {
        b.u64(fnv1a(m.name));
        b.u64(fnv1a(m.mech));
        b.u64(m.replicas);
        b.u64(m.cores);
        b.u64(m.requests);
        b.f64(m.servedOps);
        b.f64(m.busyCycles);
        b.f64(m.utilization);
        b.f64(m.requestsPerMcycle);
        b.f64(m.uJPerRequest);
    }
    for (const SlaReport& s : sla) {
        b.u64(s.requests);
        b.f64(s.p50);
        b.f64(s.p95);
        b.f64(s.p99);
        b.f64(s.violationFrac);
        fingerprintBox(b, s.latency);
    }
    return fnv1a(b.bytes.data(), b.bytes.size());
}

void
FleetReport::print() const
{
    std::printf("fleet '%s': %zu machine classes, %llu requests, horizon "
                "%.0f cycles\n",
                name.c_str(), machines.size(),
                static_cast<unsigned long long>(totalRequests),
                horizonCycles);
    std::printf("calibration fingerprint: %016llx\n",
                static_cast<unsigned long long>(calibFingerprint));
    std::printf("%-14s %-18s %11s %9s %10s %8s %9s\n", "machine class",
                "mech", "repl x cores", "requests", "req/Mcyc", "util",
                "uJ/req");
    for (const MachineReport& m : machines) {
        char geom[24];
        std::snprintf(geom, sizeof(geom), "%u x %u", m.replicas, m.cores);
        std::printf("%-14s %-18s %11s %9llu %10.3f %7.1f%% %9.3f\n",
                    m.name.c_str(), m.mech.c_str(), geom,
                    static_cast<unsigned long long>(m.requests),
                    m.requestsPerMcycle, 100.0 * m.utilization,
                    m.uJPerRequest);
    }
    std::printf("%-8s %9s %11s %11s %11s %8s\n", "SLA tier", "requests",
                "p50", "p95", "p99", "viol");
    for (size_t tier = 0; tier < sla.size(); ++tier) {
        const SlaReport& s = sla[tier];
        std::printf("%-8s %9llu %11.1f %11.1f %11.1f %7.1f%%\n",
                    slaTierName(static_cast<SlaTier>(tier)),
                    static_cast<unsigned long long>(s.requests), s.p50,
                    s.p95, s.p99, 100.0 * s.violationFrac);
        if (s.requests > 0) {
            std::printf("  latency %s\n", s.latency.str().c_str());
        }
    }
    std::printf("fleet fingerprint: %016llx\n",
                static_cast<unsigned long long>(fingerprint()));
}

FleetReport
runFleetScenario(const Scenario& sc, ExperimentOptions opts)
{
    if (!sc.isFleet()) {
        fatal("scenario '" + sc.name + "' declares no machine/task class "
              "blocks; run it through a bench or constable-sweep instead");
    }
    if (sc.traceOps)
        opts.traceOps = sc.traceOps;
    if (sc.suiteLimit)
        opts.suiteLimit = sc.suiteLimit;

    // Calibration sweep over every distinct machine-class preset, through
    // the full Experiment machinery: trace cache, checkpoint/resume, and
    // sharding all apply, and the result is bit-identical regardless.
    std::vector<MachineCalibration> calib;
    uint64_t calibFp = 0;
    size_t resumed = 0;
    {
        ObsSpan calibSpan("fleet.calibrate", "fleet");
        Suite suite = Suite::prepare(opts, /*inspect=*/true);
        Experiment exp("fleet-" + sc.name, suite, opts);
        std::vector<std::string> added;
        for (const FleetMachineClass& m : sc.machines) {
            if (std::find(added.begin(), added.end(), m.mech) ==
                added.end()) {
                exp.addPreset(m.mech);
                added.push_back(m.mech);
            }
        }
        ExperimentResult res = exp.run();
        calib = calibrateMachines(sc, res);
        calibFp = resultFingerprint(res.matrix());
        resumed = res.resumedCells();
    }
    if (!opts.checkpointDir.empty())
        verifyCalibCache(opts.checkpointDir, sc, opts.sample, calib,
                         calibFp);

    FleetReport rep = simulateFleet(sc, calib);
    rep.calibFingerprint = calibFp;
    rep.resumedCells = resumed;
    return rep;
}

} // namespace constable
