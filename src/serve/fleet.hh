/**
 * @file
 * Fleet serving tier: the datacenter layer above Experiment. A fleet
 * scenario (sim/scenario.hh) declares *machine classes* — pools of
 * identical replicas, each `cores` wide, all running one mechanism preset —
 * and *task classes* — open-loop arrival processes of fixed-size trace-job
 * requests carrying an SLA tier, in the style of the cloudsim EEC
 * machine-class/task-class testcases.
 *
 * Per-op service rates and energies are measured, not assumed: every
 * preset a machine class names is calibrated by a real Experiment sweep
 * over the workload suite (reusing the trace cache and per-cell checkpoint
 * machinery, so a killed calibration resumes bit-identically), yielding
 * cycles-per-op and picojoules-per-op as geomeans over the suite rows. A
 * deterministic discrete-event simulation then drives arrivals onto
 * replica cores and reports, per machine class, throughput / utilization /
 * joules-per-request, and per SLA tier, p50/p95/p99 latency plus the
 * fraction of requests over their tier's latency budget.
 *
 * Everything is single-threaded and seed-driven past calibration, so the
 * report's FNV fingerprint is bit-identical across thread counts, shard
 * counts, and checkpoint-resumed calibration runs — the property the CI
 * fleet-smoke job locks.
 */

#ifndef CONSTABLE_SERVE_FLEET_HH
#define CONSTABLE_SERVE_FLEET_HH

#include <array>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "sim/scenario.hh"

namespace constable {

/** Measured serving characteristics of one machine class's preset. */
struct MachineCalibration
{
    std::string mech;       ///< registry preset name
    double cyclesPerOp = 0; ///< geomean cycles per retired op over the suite
    double pjPerOp = 0;     ///< geomean dynamic pJ per retired op
};

/** SLA latency budget as a multiple of a request's pure service time:
 *  SLA0 1.2x, SLA1 1.5x, SLA2 2.0x (strictest tier, tightest budget). */
double slaBudgetMultiplier(SlaTier tier);

/** Printable tier name ("SLA0"...). */
const char* slaTierName(SlaTier tier);

/** Per-SLA-tier latency report (latencies in cycles). */
struct SlaReport
{
    uint64_t requests = 0;
    double p50 = 0, p95 = 0, p99 = 0; ///< request latency percentiles
    double violationFrac = 0;         ///< latency > budget * service time
    BoxWhisker latency;               ///< full five-number summary
};

/** Per-machine-class serving report. */
struct MachineReport
{
    std::string name;
    std::string mech;
    unsigned replicas = 0;
    unsigned cores = 0;
    uint64_t requests = 0;        ///< requests this class served
    double servedOps = 0;         ///< trace-ops executed
    double busyCycles = 0;        ///< per-core busy cycles, summed
    double utilization = 0;       ///< busy / (servers * horizon)
    double requestsPerMcycle = 0; ///< served requests per million cycles
    double uJPerRequest = 0;      ///< dynamic + idle-static energy / request
};

/** A finished fleet simulation. */
struct FleetReport
{
    std::string name;
    double horizonCycles = 0;  ///< last completion (>= latest task end)
    uint64_t totalRequests = 0;
    std::vector<MachineReport> machines;
    std::array<SlaReport, kNumSlaTiers> sla;
    /** resultFingerprint() of the calibration sweep's matrix. */
    uint64_t calibFingerprint = 0;
    /** Calibration cells restored from checkpoints (not fingerprinted —
     *  a resumed run must fingerprint identically to a fresh one). */
    size_t resumedCells = 0;

    /** FNV over every reported figure, bit-exact on the doubles; the
     *  determinism contract of the serving tier. */
    uint64_t fingerprint() const;

    /** Human-readable report, ending in "fleet fingerprint: <16 hex>". */
    void print() const;
};

/** Derive per-machine-class calibrations from a finished calibration
 *  sweep; @p res must contain a config per distinct machine-class preset.
 *  Rows with zero retired instructions are skipped by the geomeans. */
std::vector<MachineCalibration>
calibrateMachines(const Scenario& sc, const ExperimentResult& res);

/**
 * Pure fleet simulation: open-loop arrivals over [start, end) per task
 * class (seeded, exponential or fixed gaps), FIFO dispatch onto the
 * earliest-free core of the pinned class — or, unpinned, of whichever
 * class completes the request first (ties to the earlier class block).
 * @p calib is parallel to sc.machines. Deterministic and single-threaded;
 * unit-testable without running any Experiment.
 */
FleetReport simulateFleet(const Scenario& sc,
                          const std::vector<MachineCalibration>& calib);

/**
 * The full serving-tier driver behind constable-serve: scale opts by the
 * scenario's trace-ops/suite-limit, prepare the suite (trace cache),
 * run — or checkpoint-resume — the calibration sweep for every distinct
 * machine-class preset, then simulate the fleet. fatal() when @p sc is
 * not a fleet scenario.
 */
FleetReport runFleetScenario(const Scenario& sc, ExperimentOptions opts);

} // namespace constable

#endif
