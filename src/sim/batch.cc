#include "sim/batch.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/obs.hh"

namespace constable {

namespace {

/** Set while the current thread executes pool jobs; nested run() calls from
 *  inside a job execute inline instead of deadlocking on runMu_. */
thread_local bool tlsInPoolJob = false;

unsigned
defaultConcurrency()
{
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, std::min(hw == 0 ? 1u : hw, 16u));
}

} // namespace

ThreadPool::ThreadPool(unsigned concurrency)
    : concurrency_(concurrency == 0
                       ? defaultConcurrency()
                       : std::min(concurrency, kMaxConcurrency))
{
    shards_.reserve(concurrency_);
    for (unsigned i = 0; i < concurrency_; ++i)
        shards_.push_back(std::make_unique<Shard>());
    // Worker 0 is the calling thread; only the rest get dedicated threads.
    threads_.reserve(concurrency_ - 1);
    for (unsigned id = 1; id < concurrency_; ++id)
        threads_.emplace_back([this, id]() { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    cvStart_.notify_all();
    for (auto& t : threads_)
        t.join();
}

bool
ThreadPool::grabWork(unsigned id, std::pair<size_t, size_t>& out)
{
    // Own deque first: newest chunk (back) for locality.
    {
        Shard& own = *shards_[id];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.chunks.empty()) {
            out = own.chunks.back();
            own.chunks.pop_back();
            return true;
        }
    }
    // Then steal the oldest chunk (front) from the first non-empty victim.
    for (unsigned k = 1; k < concurrency_; ++k) {
        Shard& victim = *shards_[(id + k) % concurrency_];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.chunks.empty()) {
            out = victim.chunks.front();
            victim.chunks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::drain(unsigned id, const std::function<void(size_t)>& fn)
{
    std::pair<size_t, size_t> range;
    while (grabWork(id, range)) {
        tlsInPoolJob = true;
        for (size_t i = range.first; i < range.second; ++i)
            fn(i);
        tlsInPoolJob = false;
        pending_.fetch_sub(range.second - range.first);
    }
}

void
ThreadPool::workerLoop(unsigned id)
{
    // Name this thread's span lane after its pool slot, so Perfetto shows
    // one row per worker (worker 0 is the calling thread -- its spans land
    // on that thread's existing lane).
    obsSetThreadLane("pool-" + std::to_string(id));
    uint64_t seenBatch = 0;
    for (;;) {
        const std::function<void(size_t)>* fn = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvStart_.wait(lk, [&]() {
                return shutdown_ || (fn_ != nullptr && batchId_ != seenBatch);
            });
            if (shutdown_)
                return;
            seenBatch = batchId_;
            fn = fn_;
            // Committed to this batch: run() must not return (and the next
            // batch must not load chunks) until this worker leaves drain(),
            // or a slow worker could run new chunks with a stale fn.
            ++active_;
        }
        drain(id, *fn);
        {
            std::lock_guard<std::mutex> lk(mu_);
            --active_;
        }
        cvDone_.notify_all();
    }
}

void
ThreadPool::run(size_t n, const std::function<void(size_t)>& fn)
{
    if (n == 0)
        return;
    if (concurrency_ == 1 || n == 1 || tlsInPoolJob) {
        // Serial pool, trivial batch, or nested call from inside a job.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> batch(runMu_);

    // Deal chunks round-robin so stealing starts balanced; ~4 chunks per
    // worker keeps steal traffic low while still smoothing skewed job costs.
    size_t chunk = std::max<size_t>(1, n / (size_t(concurrency_) * 4));
    size_t nextShard = 0;
    for (size_t begin = 0; begin < n; begin += chunk) {
        size_t end = std::min(n, begin + chunk);
        Shard& s = *shards_[nextShard++ % concurrency_];
        std::lock_guard<std::mutex> lk(s.mu);
        s.chunks.emplace_back(begin, end);
    }
    pending_.store(n);
    {
        std::lock_guard<std::mutex> lk(mu_);
        fn_ = &fn;
        ++batchId_;
    }
    cvStart_.notify_all();

    // The submitting thread works too (worker 0's shard is its home).
    drain(0, fn);

    std::unique_lock<std::mutex> lk(mu_);
    cvDone_.wait(lk,
                 [&]() { return pending_.load() == 0 && active_ == 0; });
    fn_ = nullptr;
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

namespace {

/** Dispatch a batch to the right executor for opts.threads. */
void
dispatch(size_t n, const BatchOptions& opts,
         const std::function<void(size_t)>& fn)
{
    if (opts.threads == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    } else if (opts.threads == 0 || opts.threads == defaultConcurrency()) {
        // defaultConcurrency() is what global() was (or will be) built
        // with; comparing against it avoids materializing the global pool
        // just to read its size when a dedicated pool is wanted anyway.
        ThreadPool::global().run(n, fn);
    } else {
        ThreadPool pool(opts.threads);
        pool.run(n, fn);
    }
}

/** Wrap row-independent configs for the factory-based entry points. */
std::vector<ConfigFactory>
toFactories(const std::vector<SystemConfig>& configs)
{
    std::vector<ConfigFactory> factories;
    factories.reserve(configs.size());
    for (const SystemConfig& c : configs)
        factories.push_back([c](size_t) { return c; });
    return factories;
}

} // namespace

BatchOptions
batchOptionsFromEnv()
{
    BatchOptions opts;
    if (auto v = envU64("CONSTABLE_THREADS")) {
        opts.threads = static_cast<unsigned>(
            std::min<uint64_t>(*v, ThreadPool::kMaxConcurrency));
    }
    if (auto v = envU64("CONSTABLE_SEED"))
        opts.seed = *v;
    return opts;
}

void
forEachJob(size_t n, const std::function<void(size_t, Rng&)>& fn,
           const BatchOptions& opts)
{
    dispatch(n, opts, [&](size_t job) {
        // Seeded from (master seed, job) only: independent of the executing
        // worker, so any steal schedule reproduces the same streams.
        Rng rng(Rng::splitmix(opts.seed) ^ Rng::splitmix(job + 1));
        fn(job, rng);
    });
}

std::vector<double>
MatrixResult::speedupsOver(size_t test, size_t base) const
{
    std::vector<double> out(numRows);
    for (size_t r = 0; r < numRows; ++r)
        out[r] = speedup(at(r, test), at(r, base));
    return out;
}

StatSet
MatrixResult::aggregateStats() const
{
    StatSet agg;
    for (const RunResult& r : results)
        agg.merge(r.stats);
    return agg;
}

uint64_t
MatrixResult::totalCycles() const
{
    uint64_t sum = 0;
    for (const RunResult& r : results)
        sum += r.cycles;
    return sum;
}

MatrixResult
runMatrix(const std::vector<const Trace*>& traces,
          const std::vector<ConfigFactory>& configs,
          const std::vector<const std::unordered_set<PC>*>& gs,
          const BatchOptions& opts)
{
    if (!gs.empty() && gs.size() != traces.size())
        panic("runMatrix: gs must be empty or one entry per trace");
    MatrixResult m;
    m.numRows = traces.size();
    m.numConfigs = configs.size();
    m.results.resize(m.numRows * m.numConfigs);
    forEachJob(m.results.size(), [&](size_t job, Rng&) {
        size_t row = job / m.numConfigs;
        size_t cfgIdx = job % m.numConfigs;
        SystemConfig cfg = configs[cfgIdx](row);
        const std::unordered_set<PC>* g = gs.empty() ? nullptr : gs[row];
        m.results[job] = runTrace(*traces[row], cfg, g);
    }, opts);
    return m;
}

MatrixResult
runMatrix(const std::vector<const Trace*>& traces,
          const std::vector<SystemConfig>& configs,
          const std::vector<const std::unordered_set<PC>*>& gs,
          const BatchOptions& opts)
{
    return runMatrix(traces, toFactories(configs), gs, opts);
}

MatrixResult
runSmtMatrix(const std::vector<std::pair<const Trace*, const Trace*>>& pairs,
             const std::vector<ConfigFactory>& configs,
             const BatchOptions& opts)
{
    MatrixResult m;
    m.numRows = pairs.size();
    m.numConfigs = configs.size();
    m.results.resize(m.numRows * m.numConfigs);
    forEachJob(m.results.size(), [&](size_t job, Rng&) {
        size_t row = job / m.numConfigs;
        size_t cfgIdx = job % m.numConfigs;
        SystemConfig cfg = configs[cfgIdx](row);
        m.results[job] =
            runSmtPair(*pairs[row].first, *pairs[row].second, cfg);
    }, opts);
    return m;
}

MatrixResult
runSmtMatrix(const std::vector<std::pair<const Trace*, const Trace*>>& pairs,
             const std::vector<SystemConfig>& configs,
             const BatchOptions& opts)
{
    return runSmtMatrix(pairs, toFactories(configs), opts);
}

} // namespace constable
