/**
 * @file
 * Batch experiment runner: a work-stealing thread pool plus a deterministic
 * {trace x SystemConfig} matrix driver. Results are written into
 * pre-allocated row-major slots and aggregated in index order, so the
 * figures a bench prints are bit-identical whether the matrix ran on one
 * thread or sixteen, and independent of job completion order. Each job also
 * receives a private RNG stream derived from (master seed, job index) via
 * splitmix64 so randomized sweeps stay reproducible under stealing.
 */

#ifndef CONSTABLE_SIM_BATCH_HH
#define CONSTABLE_SIM_BATCH_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "sim/runner.hh"

namespace constable {

/**
 * Work-stealing thread pool. Chunks of the iteration space are dealt
 * round-robin to per-worker deques; owners pop from the back (LIFO, cache
 * friendly) while idle workers steal from the front (FIFO, oldest chunk).
 * The calling thread participates as worker 0, so a pool built on a
 * single-core host still makes progress with zero background threads.
 */
class ThreadPool
{
  public:
    /** Safety cap on explicit concurrency requests (a mistyped
     *  CONSTABLE_THREADS must not try to spawn 100000 OS threads). */
    static constexpr unsigned kMaxConcurrency = 256;

    /** @param concurrency total worker count including the caller, clamped
     *         to kMaxConcurrency; 0 means hardware_concurrency clamped to
     *         [1, 16]. */
    explicit ThreadPool(unsigned concurrency = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned numWorkers() const { return concurrency_; }

    /**
     * Run fn(i) for i in [0, n), blocking until every index completed.
     * Concurrent run() calls from distinct threads serialize; a nested call
     * from inside a pool job executes inline to avoid deadlock.
     */
    void run(size_t n, const std::function<void(size_t)>& fn);

    /** Process-wide shared pool (lazily built at hardware concurrency). */
    static ThreadPool& global();

  private:
    struct Shard
    {
        std::mutex mu;
        std::deque<std::pair<size_t, size_t>> chunks; ///< [begin, end) ranges
    };

    void workerLoop(unsigned id);
    bool grabWork(unsigned id, std::pair<size_t, size_t>& out);
    void drain(unsigned id, const std::function<void(size_t)>& fn);

    unsigned concurrency_ = 1;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> threads_;

    std::mutex runMu_;  ///< one batch in flight at a time
    std::mutex mu_;     ///< guards batch hand-off state below
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    const std::function<void(size_t)>* fn_ = nullptr;
    uint64_t batchId_ = 0;
    std::atomic<size_t> pending_ { 0 };
    unsigned active_ = 0; ///< workers currently inside drain() (guarded by mu_)
    bool shutdown_ = false;
};

/** Knobs shared by every batch entry point. */
struct BatchOptions
{
    /** Total threads; 0 = global pool at hardware concurrency, 1 = serial. */
    unsigned threads = 0;
    /** Master seed for the per-job RNG streams. */
    uint64_t seed = 0x5eed5eedull;
};

/** Options from env: CONSTABLE_THREADS (0 = hardware, 1 = serial) and
 *  CONSTABLE_SEED. Benches use this so sweeps can be replayed serially to
 *  confirm thread-count independence. */
BatchOptions batchOptionsFromEnv();

/**
 * Run fn(job, rng) for job in [0, n). The rng argument is seeded from
 * (opts.seed, job) only, never from the executing worker, so results are
 * reproducible for any thread count and any steal pattern.
 */
void forEachJob(size_t n, const std::function<void(size_t, Rng&)>& fn,
                const BatchOptions& opts = {});

/** Dense row-major result grid of a {row x config} experiment matrix. */
struct MatrixResult
{
    size_t numRows = 0;
    size_t numConfigs = 0;
    std::vector<RunResult> results; ///< results[row * numConfigs + cfg]

    RunResult&
    at(size_t row, size_t cfg)
    {
        return results[row * numConfigs + cfg];
    }

    const RunResult&
    at(size_t row, size_t cfg) const
    {
        return results[row * numConfigs + cfg];
    }

    /** Per-row speedup of config `test` over config `base`. */
    std::vector<double> speedupsOver(size_t test, size_t base) const;

    /** Sum of every cell's stats, merged in index order (deterministic). */
    StatSet aggregateStats() const;

    /** Total simulated cycles across all cells (determinism fingerprint). */
    uint64_t totalCycles() const;
};

/** Builds the SystemConfig for one matrix cell; may depend on the row
 *  (e.g. ideal-oracle presets seeded with per-workload stable-PC sets). */
using ConfigFactory = std::function<SystemConfig(size_t row)>;

/**
 * Fan a {trace x config} matrix out across the pool. gs is optional
 * per-row stats-classification PC sets (empty, or one entry per trace,
 * null entries allowed).
 */
MatrixResult runMatrix(const std::vector<const Trace*>& traces,
                       const std::vector<ConfigFactory>& configs,
                       const std::vector<const std::unordered_set<PC>*>& gs =
                           {},
                       const BatchOptions& opts = {});

/** Convenience overload for row-independent configurations. */
MatrixResult runMatrix(const std::vector<const Trace*>& traces,
                       const std::vector<SystemConfig>& configs,
                       const std::vector<const std::unordered_set<PC>*>& gs =
                           {},
                       const BatchOptions& opts = {});

/** SMT2 variant: each row is a co-running trace pair (Figs 14/15). */
MatrixResult runSmtMatrix(
    const std::vector<std::pair<const Trace*, const Trace*>>& pairs,
    const std::vector<ConfigFactory>& configs,
    const BatchOptions& opts = {});

/** Convenience overload for row-independent SMT configurations. */
MatrixResult runSmtMatrix(
    const std::vector<std::pair<const Trace*, const Trace*>>& pairs,
    const std::vector<SystemConfig>& configs,
    const BatchOptions& opts = {});

} // namespace constable

#endif
