#include "sim/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <system_error>

#include "common/env.hh"
#include "common/faultio.hh"
#include "common/logging.hh"
#include "common/obs.hh"
#include "common/stats.hh"
#include "trace/serialize.hh"

namespace constable {

namespace {

/** boost-style hash_combine over 64-bit values. */
uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
makeDirs(const std::string& dir, const char* what)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal(std::string(what) + " directory '" + dir +
              "' cannot be created: " + ec.message());
}

/** Fresh private scratch directory under the system temp dir. */
std::string
makeTempDir(const char* prefix)
{
#if defined(__unix__) || defined(__APPLE__)
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        (std::string(prefix) + "-XXXXXX"))
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (!mkdtemp(buf.data()))
        fatal("cannot create scratch directory from template " + tmpl);
    return buf.data();
#else
    std::string dir = (std::filesystem::temp_directory_path() /
                       (std::string(prefix) + "-" +
                        sanitizeFileName(processOwnerTag())))
                          .string();
    makeDirs(dir, "scratch");
    return dir;
#endif
}

/** Parse the comma-separated registry preset names in @p list into out
 *  via the shared strict parser; fatal() when the list names nothing. */
void
appendMechNames(const std::string& what, const std::string& list,
                std::vector<std::string>& out)
{
    if (appendPresetNames(what, list, out) == 0)
        fatal(what + " names no mechanism presets (known: " +
              MechanismRegistry::instance().nameList() + ")");
}

[[noreturn]] void
printUsage(const char* prog, int exit_code)
{
    std::FILE* out = exit_code == 0 ? stdout : stderr;
    std::fprintf(out,
        "usage: %s [options]\n"
        "  --threads=N         batch threads (0 = all cores, 1 = serial)\n"
        "  --seed=N            master seed for per-job RNG streams\n"
        "  --trace-ops=N       dynamic micro-ops per generated trace\n"
        "  --suite-limit=N     truncate the suite to its first N traces\n"
        "  --trace-dir=PATH    on-disk trace cache (generate once, then "
        "load)\n"
        "  --checkpoint-dir=PATH  per-cell checkpoints; interrupted sweeps "
        "resume\n"
        "  --trace-cache-max-mb=N       LRU-trim the trace cache to N MB "
        "(0 = off)\n"
        "  --trace-cache-max-age-days=N drop cache entries older than N "
        "days (0 = off)\n"
        "  --shards=N          fork N cooperating worker processes per "
        "sweep\n"
        "  --shard-id=K        join an externally launched fleet as worker "
        "K\n                      (requires --shards and a shared "
        "--checkpoint-dir)\n"
        "  --lease-ttl-sec=N   reclaim a worker's cell lease after N "
        "seconds\n"
        "  --shard-poll-ms=N   poll interval while waiting on other "
        "shards\n"
        "  --cost-model=PATH   prior BENCH_perf.json; sharded workers "
        "claim the\n                      most expensive remaining cells "
        "first\n"
        "  --mech=NAME[,NAME...]  run these registry presets instead of "
        "the\n                      bench's compiled-in figure\n"
        "  --scenario=FILE     run a declarative scenario file (see "
        "README)\n"
        "  --sample=SPEC       phase-sampled simulation: phases:N,window:K "
        "(or\n                      'off'); see README \"Sampled "
        "simulation\"\n"
        "  --fault-plan=SPEC   arm deterministic I/O fault injection "
        "(see\n                      README \"Fault injection & "
        "recovery\")\n"
        "  --trace-out=FILE    write a Chrome/Perfetto trace-event JSON "
        "at exit\n"
        "  --metrics-out=FILE  write an obs metrics snapshot JSON at "
        "exit\n"
        "  --progress-sec=N    seconds between one-line progress reports "
        "(0 = off)\n"
        "  --help              this text\n"
        "Mechanism presets: %s\n"
        "Environment: CONSTABLE_THREADS, CONSTABLE_SEED, "
        "CONSTABLE_TRACE_OPS,\nCONSTABLE_SUITE_LIMIT, CONSTABLE_TRACE_DIR, "
        "CONSTABLE_CHECKPOINT_DIR,\nCONSTABLE_TRACE_CACHE_MAX_MB, "
        "CONSTABLE_TRACE_CACHE_MAX_AGE_DAYS,\nCONSTABLE_SHARDS, "
        "CONSTABLE_SHARD_ID, CONSTABLE_LEASE_TTL_SEC,\n"
        "CONSTABLE_SHARD_POLL_MS, CONSTABLE_COST_MODEL, CONSTABLE_MECH,\n"
        "CONSTABLE_SCENARIO, CONSTABLE_SAMPLE, CONSTABLE_FAULT_PLAN, "
        "CONSTABLE_FAULT_MARKER_DIR,\nCONSTABLE_FAULT_SEED, "
        "CONSTABLE_TRACE_OUT, CONSTABLE_METRICS_OUT,\n"
        "CONSTABLE_PROGRESS_SEC, CONSTABLE_LOG_LEVEL "
        "(strict-parsed; CLI flags override env).\n",
        prog, MechanismRegistry::instance().nameList().c_str());
    std::exit(exit_code);
}

} // namespace

// -------------------------------------------------------- ExperimentOptions

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    if (auto v = envU64("CONSTABLE_THREADS")) {
        opts.threads = static_cast<unsigned>(
            std::min<uint64_t>(*v, ThreadPool::kMaxConcurrency));
    }
    if (auto v = envU64("CONSTABLE_SEED"))
        opts.seed = *v;
    opts.traceOps = defaultTraceOps(); // strict-parses CONSTABLE_TRACE_OPS
    if (auto v = envU64("CONSTABLE_SUITE_LIMIT")) {
        if (*v == 0)
            fatal("CONSTABLE_SUITE_LIMIT must be >= 1");
        opts.suiteLimit = static_cast<size_t>(*v);
    }
    if (auto v = envStr("CONSTABLE_TRACE_DIR"))
        opts.traceDir = *v;
    if (auto v = envStr("CONSTABLE_CHECKPOINT_DIR"))
        opts.checkpointDir = *v;
    if (auto v = envU64("CONSTABLE_TRACE_CACHE_MAX_MB"))
        opts.traceCacheMaxMB = *v;
    if (auto v = envU64("CONSTABLE_TRACE_CACHE_MAX_AGE_DAYS"))
        opts.traceCacheMaxAgeDays = *v;
    if (auto v = envU64InRange("CONSTABLE_SHARDS", 1,
                               ShardOptions::kMaxShards))
        opts.shards = static_cast<unsigned>(*v);
    if (auto v = envU64InRange("CONSTABLE_SHARD_ID", 0,
                               ShardOptions::kMaxShards - 1))
        opts.shardId = static_cast<int>(*v);
    if (auto v = envU64InRange("CONSTABLE_LEASE_TTL_SEC", 1, 7 * 86400))
        opts.leaseTtlSec = static_cast<unsigned>(*v);
    if (auto v = envU64InRange("CONSTABLE_SHARD_POLL_MS", 1, 60'000))
        opts.shardPollMs = static_cast<unsigned>(*v);
    if (auto v = envStr("CONSTABLE_COST_MODEL"))
        opts.costModelPath = *v;
    if (auto v = envStr("CONSTABLE_MECH"))
        appendMechNames("CONSTABLE_MECH", *v, opts.mechNames);
    if (auto v = envStr("CONSTABLE_SCENARIO"))
        opts.scenarioFile = *v;
    if (auto v = envStr("CONSTABLE_SAMPLE"))
        opts.sample = SampleOptions::parse(*v);
    if (auto v = envStr("CONSTABLE_TRACE_OUT"))
        opts.traceOutPath = *v;
    if (auto v = envStr("CONSTABLE_METRICS_OUT"))
        opts.metricsOutPath = *v;
    if (auto v = envU64InRange("CONSTABLE_PROGRESS_SEC", 0, 86400))
        opts.progressSec = static_cast<unsigned>(*v);
    obsConfigureOutputs(opts.traceOutPath, opts.metricsOutPath);
    // Malformed CONSTABLE_FAULT_PLAN should die here, at startup, not at
    // the first I/O call deep inside a sweep.
    faultLoadEnvPlan();
    return opts;
}

ExperimentOptions
ExperimentOptions::fromArgs(int argc, char** argv)
{
    ExperimentOptions opts = fromEnv();
    const char* prog = argc > 0 ? argv[0] : "bench";
    // A sweep selection on the command line replaces one from the
    // environment ("CLI overrides env"), while repeated CLI --mech flags
    // still accumulate; --mech also displaces an env scenario and vice
    // versa, so the mutual-exclusion check only fires within one layer.
    bool mechFromCli = false;
    bool scenarioFromCli = false;

    auto next = [&](int& i, const std::string& flag) -> std::string {
        if (i + 1 >= argc)
            fatal(flag + " requires a value (see --help)");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string flag = arg, value;
        bool inlineValue = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            flag = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            inlineValue = true;
        }
        auto val = [&]() {
            return inlineValue ? value : next(i, flag);
        };
        if (flag == "--help" || flag == "-h") {
            printUsage(prog, 0);
        } else if (flag == "--threads") {
            opts.threads = static_cast<unsigned>(
                std::min<uint64_t>(parseU64Strict(flag, val()),
                                   ThreadPool::kMaxConcurrency));
        } else if (flag == "--seed") {
            opts.seed = parseU64Strict(flag, val());
        } else if (flag == "--trace-ops") {
            uint64_t v = parseU64Strict(flag, val());
            if (v == 0)
                fatal("--trace-ops must be >= 1");
            opts.traceOps = static_cast<size_t>(v);
        } else if (flag == "--suite-limit") {
            uint64_t v = parseU64Strict(flag, val());
            if (v == 0)
                fatal("--suite-limit must be >= 1");
            opts.suiteLimit = static_cast<size_t>(v);
        } else if (flag == "--trace-dir") {
            opts.traceDir = val();
        } else if (flag == "--checkpoint-dir") {
            opts.checkpointDir = val();
        } else if (flag == "--trace-cache-max-mb") {
            opts.traceCacheMaxMB = parseU64Strict(flag, val());
        } else if (flag == "--trace-cache-max-age-days") {
            opts.traceCacheMaxAgeDays = parseU64Strict(flag, val());
        } else if (flag == "--shards") {
            opts.shards = static_cast<unsigned>(
                parseU64InRange(flag, val(), 1, ShardOptions::kMaxShards));
        } else if (flag == "--shard-id") {
            opts.shardId = static_cast<int>(
                parseU64InRange(flag, val(), 0,
                                ShardOptions::kMaxShards - 1));
        } else if (flag == "--lease-ttl-sec") {
            opts.leaseTtlSec = static_cast<unsigned>(
                parseU64InRange(flag, val(), 1, 7 * 86400));
        } else if (flag == "--shard-poll-ms") {
            opts.shardPollMs = static_cast<unsigned>(
                parseU64InRange(flag, val(), 1, 60'000));
        } else if (flag == "--cost-model") {
            opts.costModelPath = val();
        } else if (flag == "--mech") {
            if (!mechFromCli) {
                opts.mechNames.clear();
                mechFromCli = true;
                if (!scenarioFromCli)
                    opts.scenarioFile.clear();
            }
            appendMechNames(flag, val(), opts.mechNames);
        } else if (flag == "--scenario") {
            opts.scenarioFile = val();
            scenarioFromCli = true;
            if (!mechFromCli)
                opts.mechNames.clear();
        } else if (flag == "--sample") {
            opts.sample = SampleOptions::parse(val());
        } else if (flag == "--fault-plan") {
            installFaultPlan(val(),
                             envStr("CONSTABLE_FAULT_MARKER_DIR")
                                 .value_or(std::string()));
        } else if (flag == "--trace-out") {
            opts.traceOutPath = val();
        } else if (flag == "--metrics-out") {
            opts.metricsOutPath = val();
        } else if (flag == "--progress-sec") {
            opts.progressSec = static_cast<unsigned>(
                parseU64InRange(flag, val(), 0, 86400));
        } else {
            warn("unknown argument '" + arg + "'");
            printUsage(prog, 1);
        }
    }
    obsConfigureOutputs(opts.traceOutPath, opts.metricsOutPath);
    return opts;
}

BatchOptions
ExperimentOptions::batch() const
{
    BatchOptions b;
    b.threads = threads;
    b.seed = seed;
    return b;
}

ShardOptions
ExperimentOptions::shard() const
{
    // Cross-field checks live here (not in fromEnv) so a fleet launcher
    // can put CONSTABLE_SHARD_ID in each machine's environment and pass
    // --shards on the shared command line.
    if (shardId >= 0 && static_cast<unsigned>(shardId) >= shards) {
        fatal("shard id " + std::to_string(shardId) +
              " out of range: --shards=" + std::to_string(shards) +
              " (ids are 0-based)");
    }
    ShardOptions s;
    s.shards = shards;
    s.shardId = shardId;
    s.leaseTtlSec = leaseTtlSec;
    s.pollMs = shardPollMs;
    s.costModelPath = costModelPath;
    s.batch = batch();
    return s;
}

// ---------------------------------------------------------------- Suite

Suite
Suite::prepare(const ExperimentOptions& opts, bool inspect)
{
    auto specs = paperSuite(opts.traceOps);
    if (specs.size() > opts.suiteLimit)
        specs.resize(opts.suiteLimit);
    return fromSpecs(std::move(specs), opts, inspect);
}

Suite
Suite::fromSpecs(std::vector<WorkloadSpec> specs,
                 const ExperimentOptions& opts, bool inspect)
{
    Suite s;
    s.inspected_ = inspect;
    s.entries_.resize(specs.size());
    const std::string& dir = opts.traceDir;
    if (!dir.empty())
        makeDirs(dir, "trace cache");
    ObsSpan prepSpan("suite.prepare", "trace");
    // Graceful degradation: any trace-cache fault (corrupt entry, failed
    // read, failed rewrite) downgrades to regeneration, never aborts.
    // Each job owns its own slot; totals are summed after the barrier.
    std::vector<uint8_t> corruptEntry(specs.size(), 0);
    std::vector<uint8_t> rewriteFailed(specs.size(), 0);
    forEachJob(specs.size(), [&](size_t i, Rng&) {
        ObsSpan span("trace.prep", "trace");
        Entry& e = s.entries_[i];
        e.spec = std::move(specs[i]);
        if (!dir.empty()) {
            std::string path = traceCachePath(dir, e.spec);
            e.fromCache = loadTrace(path, e.trace);
            if (!e.fromCache) {
                std::error_code xec;
                if (std::filesystem::exists(path, xec) && !xec)
                    corruptEntry[i] = 1;
            }
            if (e.fromCache && (opts.traceCacheMaxMB != 0 ||
                                opts.traceCacheMaxAgeDays != 0)) {
                // LRU trimming ranks by mtime, which plain reads never
                // advance: touch hits so live entries stay newest.
                std::error_code tec;
                std::filesystem::last_write_time(
                    path, std::filesystem::file_time_type::clock::now(),
                    tec);
            }
            if (!e.fromCache) {
                // Missing, corrupt or stale-format: regenerate and refresh
                // the cache entry (atomic write, safe under concurrency).
                e.trace = generateTrace(e.spec);
                if (!saveTrace(path, e.trace))
                    rewriteFailed[i] = 1;
            }
        } else {
            e.trace = generateTrace(e.spec);
        }
        e.key = specHash(e.spec);
        if (inspect) {
            e.inspection = inspectLoads(e.trace);
            e.gs = e.inspection.globalStablePcs();
        }
    }, opts.batch());
    for (const Entry& e : s.entries_)
        (e.fromCache ? s.cacheHits_ : s.cacheMisses_)++;
    {
        static ObsCounter& hits = obsCounter("trace.cache.hit");
        static ObsCounter& misses = obsCounter("trace.cache.miss");
        hits.add(s.cacheHits_);
        misses.add(s.cacheMisses_);
    }
    size_t corrupt = 0, failedWrites = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
        corrupt += corruptEntry[i];
        failedWrites += rewriteFailed[i];
    }
    if (corrupt > 0) {
        warn(std::to_string(corrupt) +
             " trace cache entr" + (corrupt == 1 ? "y was" : "ies were") +
             " present but unreadable; regenerated");
    }
    if (failedWrites > 0) {
        warn(std::to_string(failedWrites) +
             " regenerated trace(s) could not be written back to the "
             "cache; continuing with in-memory traces");
    }
    if (!dir.empty()) {
        // Opt-in retention: runs after preparation, so entries this suite
        // just wrote or refreshed are the newest and survive the LRU pass.
        TraceCacheTrimPolicy trim;
        trim.maxBytes = opts.traceCacheMaxMB * 1024 * 1024;
        trim.maxAgeSeconds = opts.traceCacheMaxAgeDays * 24 * 3600;
        trimTraceCache(dir, trim);
    }
    return s;
}

Suite
Suite::fromTraces(std::vector<Trace> traces, bool inspect)
{
    Suite s;
    s.inspected_ = inspect;
    s.entries_.resize(traces.size());
    forEachJob(traces.size(), [&](size_t i, Rng&) {
        Entry& e = s.entries_[i];
        e.trace = std::move(traces[i]);
        e.spec.name = e.trace.name;
        e.spec.category = e.trace.category;
        e.spec.numArchRegs = e.trace.numArchRegs;
        // No generating spec exists: key checkpoints on the trace bytes
        // themselves, so an edited hand-built trace invalidates them.
        e.key = traceContentHash(e.trace);
        if (inspect) {
            e.inspection = inspectLoads(e.trace);
            e.gs = e.inspection.globalStablePcs();
        }
    }, BatchOptions{});
    return s;
}

std::vector<const Trace*>
Suite::tracePtrs() const
{
    std::vector<const Trace*> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(&e.trace);
    return out;
}

std::vector<const std::unordered_set<PC>*>
Suite::gsPtrs() const
{
    std::vector<const std::unordered_set<PC>*> out;
    if (!inspected_)
        return out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(&e.gs);
    return out;
}

std::vector<std::pair<const Trace*, const Trace*>>
Suite::smtTracePairs() const
{
    std::vector<std::pair<const Trace*, const Trace*>> out;
    for (auto [a, b] : smtPairs(entries_.size()))
        out.emplace_back(&entries_[a].trace, &entries_[b].trace);
    return out;
}

uint64_t
Suite::contentHash() const
{
    uint64_t h = 0x5417ab1eull;
    for (const Entry& e : entries_)
        h = hashCombine(h, e.key);
    return h;
}

void
Suite::printGeomeans(const std::string& header,
                     const std::vector<std::vector<double>>& series,
                     const std::vector<std::string>& series_names) const
{
    std::map<std::string, std::vector<size_t>> byCat;
    for (size_t i = 0; i < entries_.size(); ++i)
        byCat[entries_[i].spec.category].push_back(i);

    std::printf("%s\n", header.c_str());
    std::printf("%-14s", "config");
    for (const auto& [cat, idx] : byCat)
        std::printf("%12s", cat.c_str());
    std::printf("%12s\n", "GEOMEAN");
    for (size_t s = 0; s < series.size(); ++s) {
        std::printf("%-14s", series_names[s].c_str());
        for (const auto& [cat, idxs] : byCat) {
            std::vector<double> vals;
            for (size_t i : idxs)
                vals.push_back(series[s][i]);
            std::printf("%12.4f", geomean(vals));
        }
        std::printf("%12.4f\n", geomean(series[s]));
    }
}

void
Suite::printMeans(const std::string& header,
                  const std::vector<std::vector<double>>& series,
                  const std::vector<std::string>& series_names, double scale,
                  const char* unit) const
{
    std::map<std::string, std::vector<size_t>> byCat;
    for (size_t i = 0; i < entries_.size(); ++i)
        byCat[entries_[i].spec.category].push_back(i);

    std::printf("%s\n", header.c_str());
    std::printf("%-26s", "series");
    for (const auto& [cat, idx] : byCat)
        std::printf("%12s", cat.c_str());
    std::printf("%12s\n", "AVG");
    for (size_t s = 0; s < series.size(); ++s) {
        std::printf("%-26s", series_names[s].c_str());
        for (const auto& [cat, idxs] : byCat) {
            std::vector<double> vals;
            for (size_t i : idxs)
                vals.push_back(series[s][i]);
            std::printf("%11.2f%s", scale * mean(vals), unit);
        }
        std::printf("%11.2f%s\n", scale * mean(series[s]), unit);
    }
}

void
Suite::printBoxWhisker(const std::string& header,
                       const std::vector<double>& samples) const
{
    std::map<std::string, std::vector<double>> byCat;
    for (size_t i = 0; i < entries_.size(); ++i)
        byCat[entries_[i].spec.category].push_back(samples[i]);
    std::printf("%s\n", header.c_str());
    for (const auto& [cat, vals] : byCat) {
        std::printf("  %-12s %s\n", cat.c_str(),
                    BoxWhisker::from(vals).str().c_str());
    }
    std::printf("  %-12s %s\n", "ALL",
                BoxWhisker::from(samples).str().c_str());
}

// ------------------------------------------------------- ExperimentResult

size_t
ExperimentResult::configIndex(const std::string& config) const
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == config)
            return i;
    }
    fatal("experiment has no configuration named '" + config + "'");
}

std::vector<double>
ExperimentResult::speedups(const std::string& test,
                           const std::string& base) const
{
    return m_.speedupsOver(configIndex(test), configIndex(base));
}

std::vector<double>
ExperimentResult::statColumn(const std::string& config,
                             const std::string& stat) const
{
    size_t cfg = configIndex(config);
    std::vector<double> out(m_.numRows);
    for (size_t r = 0; r < m_.numRows; ++r)
        out[r] = m_.at(r, cfg).stats.get(stat);
    return out;
}

void
ExperimentResult::printGeomeans(
    const std::string& header,
    const std::vector<std::vector<double>>& series,
    const std::vector<std::string>& series_names) const
{
    suite_->printGeomeans(header, series, series_names);
}

void
ExperimentResult::printMeans(const std::string& header,
                             const std::vector<std::vector<double>>& series,
                             const std::vector<std::string>& series_names,
                             double scale, const char* unit) const
{
    suite_->printMeans(header, series, series_names, scale, unit);
}

void
ExperimentResult::printBoxWhisker(const std::string& header,
                                  const std::vector<double>& samples) const
{
    suite_->printBoxWhisker(header, samples);
}

// ------------------------------------------------------------- Experiment

Experiment::Experiment(std::string name, const Suite& suite,
                       ExperimentOptions opts)
    : name_(std::move(name)), suite_(&suite), opts_(std::move(opts))
{}

Experiment&
Experiment::add(const std::string& config_name, MechanismConfig mech,
                CoreConfig core)
{
    SystemConfig cfg { core, std::move(mech) };
    return add(config_name, [cfg](size_t) { return cfg; });
}

Experiment&
Experiment::addPreset(const std::string& preset_name, CoreConfig core)
{
    const MechanismPreset& p = MechanismRegistry::instance().get(preset_name);
    if (!p.perRow)
        return add(preset_name, mechFor(preset_name), core);
    if (!suite_->inspected()) {
        fatal("experiment '" + name_ + "': oracle preset '" + preset_name +
              "' needs an inspected suite (global-stable PC sets)");
    }
    const Suite* s = suite_;
    std::string name = preset_name;
    return add(preset_name, [s, name, core](size_t row) {
        return SystemConfig { core,
                              mechFor(name, &s->globalStablePcs(row)) };
    });
}

Experiment&
Experiment::add(const std::string& config_name, ConfigFactory factory)
{
    for (const std::string& n : names_) {
        if (n == config_name)
            fatal("experiment '" + name_ + "': duplicate configuration '" +
                  config_name + "'");
    }
    names_.push_back(config_name);
    factories_.push_back(std::move(factory));
    return *this;
}

ExperimentResult
Experiment::run()
{
    return runCells(suite_->size(), /*smt=*/false);
}

ExperimentResult
Experiment::runSmt()
{
    return runCells(suite_->smtTracePairs().size(), /*smt=*/true);
}

std::string
Experiment::checkpointDirFor(const std::string& root, bool smt,
                             SweepManifest& manifest, size_t rows) const
{
    // Checkpoints key on the sweep's identity: the experiment name, the
    // suite's content, and the ordered config names. Seed/threads are
    // excluded — cells are deterministic functions of (row, config), so the
    // same sweep resumed at a different thread count stays bit-identical.
    uint64_t key = hashCombine(suite_->contentHash(), smt ? 1 : 0);
    for (const std::string& n : names_)
        key = hashCombine(key, fnv1a(n));
    // Sampled and full-fidelity sweeps must never share cells: fold the
    // sample spec (and the seed, which drives window selection) into the
    // key so each spec gets its own checkpoint directory.
    if (opts_.sample.enabled) {
        key = hashCombine(key, fnv1a("sample:" + opts_.sample.spec()));
        key = hashCombine(key, opts_.seed);
    }
    manifest.experiment = name_;
    manifest.suiteHash = key;
    manifest.smt = smt;
    manifest.numRows = rows;
    manifest.numConfigs = factories_.size();
    manifest.configNames = names_;
    return root + "/" + sanitizeFileName(name_) + "-" + hex16(key);
}

ExperimentResult
Experiment::runCells(size_t rows, bool smt)
{
    if (factories_.empty())
        fatal("experiment '" + name_ + "' has no configurations");

    MatrixResult m;
    m.numRows = rows;
    m.numConfigs = factories_.size();
    m.results.resize(m.numRows * m.numConfigs);

    auto traces = suite_->tracePtrs();
    auto gs = suite_->gsPtrs();
    auto pairs = smt ? suite_->smtTracePairs()
                     : std::vector<std::pair<const Trace*, const Trace*>>{};

    // One cell = one deterministic simulation; shared by the in-process
    // batch path, forked shard workers, and the merge recovery fallback.
    auto computeCell = [&](size_t job) -> RunResult {
        size_t row = job / m.numConfigs;
        size_t cfgIdx = job % m.numConfigs;
        SystemConfig cfg = factories_[cfgIdx](row);
        if (smt) {
            if (opts_.sample.enabled) {
                fatal("--sample does not support SMT-pair sweeps; SMT "
                      "rows stay full-fidelity");
            }
            return runSmtPair(*pairs[row].first, *pairs[row].second, cfg);
        }
        const std::unordered_set<PC>* g = gs.empty() ? nullptr : gs[row];
        if (opts_.sample.enabled) {
            return runSampledTrace(*traces[row], cfg.core, cfg.mech,
                                   opts_.sample, opts_.seed, g);
        }
        return runTrace(*traces[row], cfg, g);
    };

    ShardOptions shardOpts = opts_.shard();
    std::string ckptRoot = opts_.checkpointDir;
    std::string tempRoot;
    if (shardOpts.active() && ckptRoot.empty()) {
        if (shardOpts.shardId >= 0) {
            fatal("sharded worker mode (--shard-id / CONSTABLE_SHARD_ID) "
                  "needs --checkpoint-dir on a filesystem every worker "
                  "shares");
        }
        // Fork coordinator without a checkpoint dir: cells still travel
        // between processes as files, so use a private scratch directory
        // and discard it once the matrix is merged.
        tempRoot = makeTempDir("constable-shards");
        ckptRoot = tempRoot;
    }

    std::string ckptDir;
    SweepManifest manifest;
    size_t resumed = 0;
    if (!ckptRoot.empty()) {
        ckptDir = checkpointDirFor(ckptRoot, smt, manifest, rows);
        makeDirs(ckptDir, "checkpoint");
    }

    // Live progress: stderr one-liners plus a status.json next to the
    // cell checkpoints (constable-sweep --status pretty-prints it from
    // another process). Passive state only, so forked shard workers
    // inherit it and keep reporting.
    ObsProgressConfig pcfg;
    pcfg.label = name_;
    pcfg.total = m.results.size();
    pcfg.statusPath = ckptDir.empty() ? "" : ckptDir + "/status.json";
    pcfg.intervalSec = opts_.progressSec;
    obsProgressBegin(pcfg);

    if (shardOpts.active()) {
        ShardOutcome oc =
            runShardedCells(ckptDir, manifest, computeCell, m.results,
                            shardOpts);
        // The workers did the computing; credit the merged matrix's ops
        // so the coordinator's closing report carries a real Mops/s.
        uint64_t mergedOps = 0;
        for (const RunResult& r : m.results)
            mergedOps += r.instructions;
        obsProgressNoteOps(mergedOps);
        obsProgressEnd();
        // The final merge loads every cell, so oc.loaded always spans the
        // matrix; only cells that predated this run count as resumed.
        resumed = oc.preExisting;
        if (!tempRoot.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(tempRoot, ec);
        }
        return ExperimentResult(*suite_, names_, std::move(m), resumed);
    }

    std::vector<uint8_t> done(m.results.size(), 0);
    if (!ckptDir.empty()) {
        writeOrVerifyManifest(ckptDir, manifest);
        // A cell file that exists but fails to load — truncated, corrupt,
        // or empty (0 bytes: a writer died before its first byte) — is
        // regenerated exactly like a missing one, just counted and
        // reported so operators notice a sick disk.
        size_t corruptResume = 0;
        for (size_t cell = 0; cell < m.results.size(); ++cell) {
            std::string path = cellFilePath(ckptDir, manifest, cell);
            if (loadRunResult(path, m.results[cell])) {
                done[cell] = 1;
                ++resumed;
                continue;
            }
            std::error_code xec;
            if (std::filesystem::exists(path, xec) && !xec)
                ++corruptResume;
        }
        if (corruptResume > 0) {
            warn(std::to_string(corruptResume) +
                 " checkpoint cell(s) present but unloadable (corrupt or "
                 "empty); regenerating them");
        }
    }
    obsProgressUpdate(resumed);

    forEachJob(m.results.size(), [&](size_t job, Rng&) {
        if (done[job])
            return;
        {
            ObsSpan span("cell.compute", "cell");
            m.results[job] = computeCell(job);
        }
        if (!ckptDir.empty()) {
            ObsSpan span("cell.checkpoint", "cell");
            if (!saveRunResult(cellFilePath(ckptDir, manifest, job),
                               m.results[job])) {
                warn("cannot write checkpoint cell " + std::to_string(job) +
                     "; the sweep continues but will not resume past it");
            }
        }
        obsProgressCellDone(m.results[job].instructions);
    }, opts_.batch());
    obsProgressEnd();

    return ExperimentResult(*suite_, names_, std::move(m), resumed);
}

ExperimentResult
Experiment::merge(bool smt)
{
    if (factories_.empty())
        fatal("experiment '" + name_ + "' has no configurations");
    if (opts_.checkpointDir.empty())
        fatal("experiment '" + name_ + "': merge() needs --checkpoint-dir");

    size_t rows = smt ? suite_->smtTracePairs().size() : suite_->size();
    SweepManifest manifest;
    std::string ckptDir =
        checkpointDirFor(opts_.checkpointDir, smt, manifest, rows);

    SweepManifest onDisk;
    if (!loadManifest(ckptDir + "/manifest.sweep", onDisk))
        fatal("merge: no sweep manifest under '" + ckptDir +
              "' (was this sweep ever started?)");
    if (!(onDisk == manifest))
        fatal("merge: checkpoint directory '" + ckptDir +
              "' holds a different sweep than '" + name_ + "'");

    MatrixResult m;
    m.numRows = rows;
    m.numConfigs = factories_.size();
    ShardOutcome oc;
    if (!mergeShardedCells(ckptDir, manifest, /*compute=*/nullptr,
                           m.results, opts_.shard(), oc)) {
        fatal("merge: sweep '" + name_ + "' is incomplete (" +
              std::to_string(oc.loaded) + " of " +
              std::to_string(manifest.numCells()) +
              " cells present); let the workers finish or re-run with "
              "run()");
    }
    return ExperimentResult(*suite_, names_, std::move(m), oc.loaded);
}

} // namespace constable
