#include "sim/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <system_error>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "trace/serialize.hh"

namespace constable {

namespace {

/** boost-style hash_combine over 64-bit values. */
uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
makeDirs(const std::string& dir, const char* what)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal(std::string(what) + " directory '" + dir +
              "' cannot be created: " + ec.message());
}

[[noreturn]] void
printUsage(const char* prog, int exit_code)
{
    std::FILE* out = exit_code == 0 ? stdout : stderr;
    std::fprintf(out,
        "usage: %s [options]\n"
        "  --threads=N         batch threads (0 = all cores, 1 = serial)\n"
        "  --seed=N            master seed for per-job RNG streams\n"
        "  --trace-ops=N       dynamic micro-ops per generated trace\n"
        "  --suite-limit=N     truncate the suite to its first N traces\n"
        "  --trace-dir=PATH    on-disk trace cache (generate once, then "
        "load)\n"
        "  --checkpoint-dir=PATH  per-cell checkpoints; interrupted sweeps "
        "resume\n"
        "  --trace-cache-max-mb=N       LRU-trim the trace cache to N MB "
        "(0 = off)\n"
        "  --trace-cache-max-age-days=N drop cache entries older than N "
        "days (0 = off)\n"
        "  --help              this text\n"
        "Environment: CONSTABLE_THREADS, CONSTABLE_SEED, "
        "CONSTABLE_TRACE_OPS,\nCONSTABLE_SUITE_LIMIT, CONSTABLE_TRACE_DIR, "
        "CONSTABLE_CHECKPOINT_DIR,\nCONSTABLE_TRACE_CACHE_MAX_MB, "
        "CONSTABLE_TRACE_CACHE_MAX_AGE_DAYS\n(strict-parsed; CLI flags "
        "override env).\n",
        prog);
    std::exit(exit_code);
}

} // namespace

// -------------------------------------------------------- ExperimentOptions

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    if (auto v = envU64("CONSTABLE_THREADS")) {
        opts.threads = static_cast<unsigned>(
            std::min<uint64_t>(*v, ThreadPool::kMaxConcurrency));
    }
    if (auto v = envU64("CONSTABLE_SEED"))
        opts.seed = *v;
    opts.traceOps = defaultTraceOps(); // strict-parses CONSTABLE_TRACE_OPS
    if (auto v = envU64("CONSTABLE_SUITE_LIMIT")) {
        if (*v == 0)
            fatal("CONSTABLE_SUITE_LIMIT must be >= 1");
        opts.suiteLimit = static_cast<size_t>(*v);
    }
    if (auto v = envStr("CONSTABLE_TRACE_DIR"))
        opts.traceDir = *v;
    if (auto v = envStr("CONSTABLE_CHECKPOINT_DIR"))
        opts.checkpointDir = *v;
    if (auto v = envU64("CONSTABLE_TRACE_CACHE_MAX_MB"))
        opts.traceCacheMaxMB = *v;
    if (auto v = envU64("CONSTABLE_TRACE_CACHE_MAX_AGE_DAYS"))
        opts.traceCacheMaxAgeDays = *v;
    return opts;
}

ExperimentOptions
ExperimentOptions::fromArgs(int argc, char** argv)
{
    ExperimentOptions opts = fromEnv();
    const char* prog = argc > 0 ? argv[0] : "bench";

    auto next = [&](int& i, const std::string& flag) -> std::string {
        if (i + 1 >= argc)
            fatal(flag + " requires a value (see --help)");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string flag = arg, value;
        bool inlineValue = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            flag = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            inlineValue = true;
        }
        auto val = [&]() {
            return inlineValue ? value : next(i, flag);
        };
        if (flag == "--help" || flag == "-h") {
            printUsage(prog, 0);
        } else if (flag == "--threads") {
            opts.threads = static_cast<unsigned>(
                std::min<uint64_t>(parseU64Strict(flag, val()),
                                   ThreadPool::kMaxConcurrency));
        } else if (flag == "--seed") {
            opts.seed = parseU64Strict(flag, val());
        } else if (flag == "--trace-ops") {
            uint64_t v = parseU64Strict(flag, val());
            if (v == 0)
                fatal("--trace-ops must be >= 1");
            opts.traceOps = static_cast<size_t>(v);
        } else if (flag == "--suite-limit") {
            uint64_t v = parseU64Strict(flag, val());
            if (v == 0)
                fatal("--suite-limit must be >= 1");
            opts.suiteLimit = static_cast<size_t>(v);
        } else if (flag == "--trace-dir") {
            opts.traceDir = val();
        } else if (flag == "--checkpoint-dir") {
            opts.checkpointDir = val();
        } else if (flag == "--trace-cache-max-mb") {
            opts.traceCacheMaxMB = parseU64Strict(flag, val());
        } else if (flag == "--trace-cache-max-age-days") {
            opts.traceCacheMaxAgeDays = parseU64Strict(flag, val());
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            printUsage(prog, 1);
        }
    }
    return opts;
}

BatchOptions
ExperimentOptions::batch() const
{
    BatchOptions b;
    b.threads = threads;
    b.seed = seed;
    return b;
}

// ---------------------------------------------------------------- Suite

Suite
Suite::prepare(const ExperimentOptions& opts, bool inspect)
{
    auto specs = paperSuite(opts.traceOps);
    if (specs.size() > opts.suiteLimit)
        specs.resize(opts.suiteLimit);
    return fromSpecs(std::move(specs), opts, inspect);
}

Suite
Suite::fromSpecs(std::vector<WorkloadSpec> specs,
                 const ExperimentOptions& opts, bool inspect)
{
    Suite s;
    s.inspected_ = inspect;
    s.entries_.resize(specs.size());
    const std::string& dir = opts.traceDir;
    if (!dir.empty())
        makeDirs(dir, "trace cache");
    forEachJob(specs.size(), [&](size_t i, Rng&) {
        Entry& e = s.entries_[i];
        e.spec = std::move(specs[i]);
        if (!dir.empty()) {
            std::string path = traceCachePath(dir, e.spec);
            e.fromCache = loadTrace(path, e.trace);
            if (e.fromCache && (opts.traceCacheMaxMB != 0 ||
                                opts.traceCacheMaxAgeDays != 0)) {
                // LRU trimming ranks by mtime, which plain reads never
                // advance: touch hits so live entries stay newest.
                std::error_code tec;
                std::filesystem::last_write_time(
                    path, std::filesystem::file_time_type::clock::now(),
                    tec);
            }
            if (!e.fromCache) {
                // Missing, corrupt or stale-format: regenerate and refresh
                // the cache entry (atomic write, safe under concurrency).
                e.trace = generateTrace(e.spec);
                saveTrace(path, e.trace);
            }
        } else {
            e.trace = generateTrace(e.spec);
        }
        e.key = specHash(e.spec);
        if (inspect) {
            e.inspection = inspectLoads(e.trace);
            e.gs = e.inspection.globalStablePcs();
        }
    }, opts.batch());
    for (const Entry& e : s.entries_)
        (e.fromCache ? s.cacheHits_ : s.cacheMisses_)++;
    if (!dir.empty()) {
        // Opt-in retention: runs after preparation, so entries this suite
        // just wrote or refreshed are the newest and survive the LRU pass.
        TraceCacheTrimPolicy trim;
        trim.maxBytes = opts.traceCacheMaxMB * 1024 * 1024;
        trim.maxAgeSeconds = opts.traceCacheMaxAgeDays * 24 * 3600;
        trimTraceCache(dir, trim);
    }
    return s;
}

Suite
Suite::fromTraces(std::vector<Trace> traces, bool inspect)
{
    Suite s;
    s.inspected_ = inspect;
    s.entries_.resize(traces.size());
    forEachJob(traces.size(), [&](size_t i, Rng&) {
        Entry& e = s.entries_[i];
        e.trace = std::move(traces[i]);
        e.spec.name = e.trace.name;
        e.spec.category = e.trace.category;
        e.spec.numArchRegs = e.trace.numArchRegs;
        // No generating spec exists: key checkpoints on the trace bytes
        // themselves, so an edited hand-built trace invalidates them.
        e.key = traceContentHash(e.trace);
        if (inspect) {
            e.inspection = inspectLoads(e.trace);
            e.gs = e.inspection.globalStablePcs();
        }
    }, BatchOptions{});
    return s;
}

std::vector<const Trace*>
Suite::tracePtrs() const
{
    std::vector<const Trace*> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(&e.trace);
    return out;
}

std::vector<const std::unordered_set<PC>*>
Suite::gsPtrs() const
{
    std::vector<const std::unordered_set<PC>*> out;
    if (!inspected_)
        return out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_)
        out.push_back(&e.gs);
    return out;
}

std::vector<std::pair<const Trace*, const Trace*>>
Suite::smtTracePairs() const
{
    std::vector<std::pair<const Trace*, const Trace*>> out;
    for (auto [a, b] : smtPairs(entries_.size()))
        out.emplace_back(&entries_[a].trace, &entries_[b].trace);
    return out;
}

uint64_t
Suite::contentHash() const
{
    uint64_t h = 0x5417ab1eull;
    for (const Entry& e : entries_)
        h = hashCombine(h, e.key);
    return h;
}

void
Suite::printGeomeans(const std::string& header,
                     const std::vector<std::vector<double>>& series,
                     const std::vector<std::string>& series_names) const
{
    std::map<std::string, std::vector<size_t>> byCat;
    for (size_t i = 0; i < entries_.size(); ++i)
        byCat[entries_[i].spec.category].push_back(i);

    std::printf("%s\n", header.c_str());
    std::printf("%-14s", "config");
    for (const auto& [cat, idx] : byCat)
        std::printf("%12s", cat.c_str());
    std::printf("%12s\n", "GEOMEAN");
    for (size_t s = 0; s < series.size(); ++s) {
        std::printf("%-14s", series_names[s].c_str());
        for (const auto& [cat, idxs] : byCat) {
            std::vector<double> vals;
            for (size_t i : idxs)
                vals.push_back(series[s][i]);
            std::printf("%12.4f", geomean(vals));
        }
        std::printf("%12.4f\n", geomean(series[s]));
    }
}

void
Suite::printMeans(const std::string& header,
                  const std::vector<std::vector<double>>& series,
                  const std::vector<std::string>& series_names, double scale,
                  const char* unit) const
{
    std::map<std::string, std::vector<size_t>> byCat;
    for (size_t i = 0; i < entries_.size(); ++i)
        byCat[entries_[i].spec.category].push_back(i);

    std::printf("%s\n", header.c_str());
    std::printf("%-26s", "series");
    for (const auto& [cat, idx] : byCat)
        std::printf("%12s", cat.c_str());
    std::printf("%12s\n", "AVG");
    for (size_t s = 0; s < series.size(); ++s) {
        std::printf("%-26s", series_names[s].c_str());
        for (const auto& [cat, idxs] : byCat) {
            std::vector<double> vals;
            for (size_t i : idxs)
                vals.push_back(series[s][i]);
            std::printf("%11.2f%s", scale * mean(vals), unit);
        }
        std::printf("%11.2f%s\n", scale * mean(series[s]), unit);
    }
}

void
Suite::printBoxWhisker(const std::string& header,
                       const std::vector<double>& samples) const
{
    std::map<std::string, std::vector<double>> byCat;
    for (size_t i = 0; i < entries_.size(); ++i)
        byCat[entries_[i].spec.category].push_back(samples[i]);
    std::printf("%s\n", header.c_str());
    for (const auto& [cat, vals] : byCat) {
        std::printf("  %-12s %s\n", cat.c_str(),
                    BoxWhisker::from(vals).str().c_str());
    }
    std::printf("  %-12s %s\n", "ALL",
                BoxWhisker::from(samples).str().c_str());
}

// ------------------------------------------------------- ExperimentResult

size_t
ExperimentResult::configIndex(const std::string& config) const
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == config)
            return i;
    }
    fatal("experiment has no configuration named '" + config + "'");
}

std::vector<double>
ExperimentResult::speedups(const std::string& test,
                           const std::string& base) const
{
    return m_.speedupsOver(configIndex(test), configIndex(base));
}

std::vector<double>
ExperimentResult::statColumn(const std::string& config,
                             const std::string& stat) const
{
    size_t cfg = configIndex(config);
    std::vector<double> out(m_.numRows);
    for (size_t r = 0; r < m_.numRows; ++r)
        out[r] = m_.at(r, cfg).stats.get(stat);
    return out;
}

void
ExperimentResult::printGeomeans(
    const std::string& header,
    const std::vector<std::vector<double>>& series,
    const std::vector<std::string>& series_names) const
{
    suite_->printGeomeans(header, series, series_names);
}

void
ExperimentResult::printMeans(const std::string& header,
                             const std::vector<std::vector<double>>& series,
                             const std::vector<std::string>& series_names,
                             double scale, const char* unit) const
{
    suite_->printMeans(header, series, series_names, scale, unit);
}

void
ExperimentResult::printBoxWhisker(const std::string& header,
                                  const std::vector<double>& samples) const
{
    suite_->printBoxWhisker(header, samples);
}

// ------------------------------------------------------------- Experiment

Experiment::Experiment(std::string name, const Suite& suite,
                       ExperimentOptions opts)
    : name_(std::move(name)), suite_(&suite), opts_(std::move(opts))
{}

Experiment&
Experiment::add(const std::string& config_name, MechanismConfig mech,
                CoreConfig core)
{
    SystemConfig cfg { core, std::move(mech) };
    return add(config_name, [cfg](size_t) { return cfg; });
}

Experiment&
Experiment::add(const std::string& config_name, ConfigFactory factory)
{
    for (const std::string& n : names_) {
        if (n == config_name)
            fatal("experiment '" + name_ + "': duplicate configuration '" +
                  config_name + "'");
    }
    names_.push_back(config_name);
    factories_.push_back(std::move(factory));
    return *this;
}

ExperimentResult
Experiment::run()
{
    return runCells(suite_->size(), /*smt=*/false);
}

ExperimentResult
Experiment::runSmt()
{
    return runCells(suite_->smtTracePairs().size(), /*smt=*/true);
}

ExperimentResult
Experiment::runCells(size_t rows, bool smt)
{
    if (factories_.empty())
        fatal("experiment '" + name_ + "' has no configurations");

    MatrixResult m;
    m.numRows = rows;
    m.numConfigs = factories_.size();
    m.results.resize(m.numRows * m.numConfigs);

    auto traces = suite_->tracePtrs();
    auto gs = suite_->gsPtrs();
    auto pairs = smt ? suite_->smtTracePairs()
                     : std::vector<std::pair<const Trace*, const Trace*>>{};

    // Checkpoints key on the sweep's identity: the experiment name, the
    // suite's content, and the ordered config names. Seed/threads are
    // excluded — cells are deterministic functions of (row, config), so the
    // same sweep resumed at a different thread count stays bit-identical.
    std::string ckptDir;
    std::vector<uint8_t> done(m.results.size(), 0);
    size_t resumed = 0;
    auto cellPath = [&](size_t row, size_t cfg) {
        return ckptDir + "/cell-" + std::to_string(row) + "-" +
               std::to_string(cfg) + ".rr";
    };
    if (!opts_.checkpointDir.empty()) {
        uint64_t key = hashCombine(suite_->contentHash(), smt ? 1 : 0);
        for (const std::string& n : names_)
            key = hashCombine(key, fnv1a(n));
        ckptDir = opts_.checkpointDir + "/" + sanitizeFileName(name_) +
                  "-" + hex16(key);
        makeDirs(ckptDir, "checkpoint");
        for (size_t row = 0; row < m.numRows; ++row) {
            for (size_t cfg = 0; cfg < m.numConfigs; ++cfg) {
                size_t cell = row * m.numConfigs + cfg;
                if (loadRunResult(cellPath(row, cfg), m.results[cell])) {
                    done[cell] = 1;
                    ++resumed;
                }
            }
        }
    }

    forEachJob(m.results.size(), [&](size_t job, Rng&) {
        if (done[job])
            return;
        size_t row = job / m.numConfigs;
        size_t cfgIdx = job % m.numConfigs;
        SystemConfig cfg = factories_[cfgIdx](row);
        if (smt) {
            m.results[job] =
                runSmtPair(*pairs[row].first, *pairs[row].second, cfg);
        } else {
            const std::unordered_set<PC>* g = gs.empty() ? nullptr : gs[row];
            m.results[job] = runTrace(*traces[row], cfg, g);
        }
        if (!ckptDir.empty())
            saveRunResult(cellPath(row, cfgIdx), m.results[job]);
    }, opts_.batch());

    return ExperimentResult(*suite_, names_, std::move(m), resumed);
}

} // namespace constable
