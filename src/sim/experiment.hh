/**
 * @file
 * The unified experiment-driving API every bench and example goes through:
 *
 *  - ExperimentOptions: one strict-parsed layer over the CONSTABLE_THREADS /
 *    CONSTABLE_SEED / CONSTABLE_TRACE_OPS / CONSTABLE_SUITE_LIMIT /
 *    CONSTABLE_TRACE_DIR / CONSTABLE_CHECKPOINT_DIR env knobs, plus the
 *    matching --threads-style CLI flags (CLI overrides env).
 *
 *  - Suite: owns workload specs, their traces, offline load inspections and
 *    global-stable PC sets, generated in parallel and transparently backed
 *    by the on-disk trace cache (trace/serialize.hh) when a trace directory
 *    is configured: each trace is generated once and loaded thereafter,
 *    keyed by a hash of the full spec.
 *
 *  - Experiment: a facade over runMatrix()/runSmtMatrix() with *named*
 *    configurations, optional per-cell RunResult checkpointing (an
 *    interrupted sweep resumes from completed cells, bit-identical to an
 *    uninterrupted run), and the paper's category geomean / mean /
 *    box-whisker reporters as methods on the result.
 */

#ifndef CONSTABLE_SIM_EXPERIMENT_HH
#define CONSTABLE_SIM_EXPERIMENT_HH

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "inspector/load_inspector.hh"
#include "sim/batch.hh"
#include "sim/mechanisms.hh"
#include "sim/runner.hh"
#include "sim/sample.hh"
#include "sim/shard.hh"
#include "trace/generator.hh"
#include "workloads/suite.hh"

namespace constable {

/** Unified knobs for suite preparation and sweep execution. */
struct ExperimentOptions
{
    /** Batch threads; 0 = all hardware threads, 1 = serial replay. */
    unsigned threads = 0;
    /** Master seed for per-job RNG streams (randomized sweeps). */
    uint64_t seed = 0x5eed5eedull;
    /** Dynamic micro-ops per generated trace. */
    size_t traceOps = 60'000;
    /** Truncate the paper suite to its first N workloads. */
    size_t suiteLimit = SIZE_MAX;
    /** Trace-cache directory; empty disables the on-disk cache. */
    std::string traceDir;
    /** Per-cell checkpoint directory; empty disables checkpointing. */
    std::string checkpointDir;
    /** Trace-cache size cap in MB; 0 (default) disables size trimming.
     *  Applied to traceDir after suite preparation (LRU by mtime). */
    uint64_t traceCacheMaxMB = 0;
    /** Trace-cache entry age cap in days; 0 (default) disables age
     *  trimming. */
    uint64_t traceCacheMaxAgeDays = 0;
    /** Process-level sharding: > 1 forks that many cooperating worker
     *  processes per sweep (coordinator mode; see sim/shard.hh). */
    unsigned shards = 1;
    /** >= 0: this process is worker `shardId` of `shards` independently
     *  launched processes sharing checkpointDir (multi-machine mode). */
    int shardId = -1;
    /** Stale-lease reclaim threshold for sharded sweeps (seconds); must
     *  exceed the worst-case single-cell runtime. */
    unsigned leaseTtlSec = 120;
    /** Poll interval while a shard waits on other workers' cells (ms). */
    unsigned shardPollMs = 100;
    /** Cell cost model for shard-aware scheduling: path to a prior
     *  BENCH_perf.json whose per-preset Mops/s rank cell expense; workers
     *  then claim the most expensive remaining cells first. Empty = claim
     *  in stride order. */
    std::string costModelPath;
    /** Registry preset names from --mech / CONSTABLE_MECH: benches run
     *  this sweep instead of their compiled-in figure
     *  (sim/scenario.hh: runNamedSweepIfRequested). */
    std::vector<std::string> mechNames;
    /** Scenario file from --scenario / CONSTABLE_SCENARIO (ditto). */
    std::string scenarioFile;
    /** Chrome trace-event JSON written at exit (--trace-out /
     *  CONSTABLE_TRACE_OUT); non-empty arms the obs registry. */
    std::string traceOutPath;
    /** Metrics snapshot JSON written at exit (--metrics-out /
     *  CONSTABLE_METRICS_OUT); non-empty arms the obs registry. */
    std::string metricsOutPath;
    /** Min seconds between one-line stderr progress reports during a
     *  sweep; 0 disables them (status.json still updates when a
     *  checkpoint directory exists). */
    unsigned progressSec = 10;
    /** Phase-sampled simulation (--sample=phases:N,window:K /
     *  CONSTABLE_SAMPLE): when enabled, single-trace sweep cells run
     *  through runSampledTrace() instead of full fidelity, and checkpoint
     *  cells are keyed by the sample spec so sampled and full sweeps never
     *  share cells. SMT-pair sweeps reject sampling (fatal). */
    SampleOptions sample;

    /** All knobs from CONSTABLE_* env vars (strict: malformed -> fatal).
     *  New: CONSTABLE_MECH, CONSTABLE_SCENARIO, CONSTABLE_COST_MODEL,
     *  CONSTABLE_SAMPLE. */
    static ExperimentOptions fromEnv();

    /**
     * Env first, then CLI flags override: --threads=N --seed=N
     * --trace-ops=N --suite-limit=N --trace-dir=PATH --checkpoint-dir=PATH
     * --shards=N --shard-id=K --lease-ttl-sec=N --shard-poll-ms=N
     * --cost-model=PATH --mech=NAME[,NAME...] --scenario=FILE
     * --sample=phases:N,window:K
     * ("--flag value" also accepted). --help prints usage and exits;
     * unknown arguments fatal().
     */
    static ExperimentOptions fromArgs(int argc, char** argv);

    /** The thread/seed subset consumed by the batch runner. */
    BatchOptions batch() const;

    /** The process-parallelism subset consumed by sim/shard.hh; fatal()
     *  on inconsistent settings (shardId >= shards). */
    ShardOptions shard() const;

    /** True when this process should print human-readable reports: single
     *  process runs, fork coordinators, and shard 0 of a launched fleet
     *  (every shard computes and merges the same full result; only one
     *  should narrate it). */
    bool printsReport() const { return shardId <= 0; }
};

/**
 * A prepared workload suite: specs plus generated (or cache-loaded) traces,
 * and optionally the offline load inspection with owned global-stable PC
 * sets. All preparation fans out over the batch pool.
 */
class Suite
{
  public:
    /** The paper's 90-trace suite, scaled/truncated/cached per opts. */
    static Suite prepare(const ExperimentOptions& opts, bool inspect = true);

    /** Arbitrary spec list through the same generate-or-load path. */
    static Suite fromSpecs(std::vector<WorkloadSpec> specs,
                           const ExperimentOptions& opts,
                           bool inspect = true);

    /** Pre-built traces (e.g. ProgramBuilder micro-traces); never cached. */
    static Suite fromTraces(std::vector<Trace> traces, bool inspect = true);

    size_t size() const { return entries_.size(); }
    bool inspected() const { return inspected_; }

    const WorkloadSpec& spec(size_t i) const { return entries_[i].spec; }
    const Trace& trace(size_t i) const { return entries_[i].trace; }
    const LoadInspectorResult&
    inspection(size_t i) const
    {
        return entries_[i].inspection;
    }

    /** Owned per-workload global-stable PC set (empty if !inspected()). */
    const std::unordered_set<PC>&
    globalStablePcs(size_t i) const
    {
        return entries_[i].gs;
    }

    /** Matrix row views. */
    std::vector<const Trace*> tracePtrs() const;
    /** Per-row stats-classification sets; empty when not inspected. */
    std::vector<const std::unordered_set<PC>*> gsPtrs() const;
    /** Deterministic SMT2 co-run pairings (workloads/suite.hh). */
    std::vector<std::pair<const Trace*, const Trace*>> smtTracePairs() const;

    /** Trace-cache effectiveness (for tests and cache-warmth assertions). */
    size_t cacheHits() const { return cacheHits_; }
    size_t cacheMisses() const { return cacheMisses_; }

    /** Content fingerprint over all specs (checkpoint keying). */
    uint64_t contentHash() const;

    // ---- category reporters (shared by the paper's figure benches) ----

    /** Per-category and overall geomean of per-workload ratio series. */
    void printGeomeans(const std::string& header,
                       const std::vector<std::vector<double>>& series,
                       const std::vector<std::string>& series_names) const;

    /** Per-category and overall arithmetic mean (fraction-type series). */
    void printMeans(const std::string& header,
                    const std::vector<std::vector<double>>& series,
                    const std::vector<std::string>& series_names,
                    double scale = 100.0, const char* unit = "%") const;

    /** Box-and-whisker summary line per category (Figs 9, 18, 21). */
    void printBoxWhisker(const std::string& header,
                         const std::vector<double>& samples) const;

  private:
    struct Entry
    {
        WorkloadSpec spec;
        Trace trace;
        LoadInspectorResult inspection;
        std::unordered_set<PC> gs;
        bool fromCache = false;
        /** Checkpoint-keying hash: the spec hash for generated entries, a
         *  trace-content hash for hand-built (fromTraces) ones. */
        uint64_t key = 0;
    };

    std::vector<Entry> entries_;
    bool inspected_ = false;
    size_t cacheHits_ = 0;
    size_t cacheMisses_ = 0;
};

/** A finished sweep: the result matrix plus name-addressed accessors and
 *  the category reporters, bound to the suite that produced it. */
class ExperimentResult
{
  public:
    ExperimentResult(const Suite& suite, std::vector<std::string> names,
                     MatrixResult m, size_t resumed_cells)
        : suite_(&suite), names_(std::move(names)), m_(std::move(m)),
          resumedCells_(resumed_cells)
    {}

    const MatrixResult& matrix() const { return m_; }
    const Suite& suite() const { return *suite_; }
    size_t numRows() const { return m_.numRows; }

    /** Index of a named configuration; fatal() on unknown names. */
    size_t configIndex(const std::string& config) const;

    const RunResult&
    at(size_t row, size_t config) const
    {
        return m_.at(row, config);
    }

    const RunResult&
    at(size_t row, const std::string& config) const
    {
        return m_.at(row, configIndex(config));
    }

    /** Per-row speedup of one named config over another. */
    std::vector<double> speedups(const std::string& test,
                                 const std::string& base) const;

    /** One named stat read across every row of a config. */
    std::vector<double> statColumn(const std::string& config,
                                   const std::string& stat) const;

    /** Determinism fingerprint (sum of every cell's cycles). */
    uint64_t totalCycles() const { return m_.totalCycles(); }

    /** Cells restored from a checkpoint instead of simulated. */
    size_t resumedCells() const { return resumedCells_; }

    // Reporters, delegating to the suite's category grouping.
    void printGeomeans(const std::string& header,
                       const std::vector<std::vector<double>>& series,
                       const std::vector<std::string>& series_names) const;
    void printMeans(const std::string& header,
                    const std::vector<std::vector<double>>& series,
                    const std::vector<std::string>& series_names,
                    double scale = 100.0, const char* unit = "%") const;
    void printBoxWhisker(const std::string& header,
                         const std::vector<double>& samples) const;

  private:
    const Suite* suite_;
    std::vector<std::string> names_;
    MatrixResult m_;
    size_t resumedCells_ = 0;
};

/**
 * A named {suite x configurations} sweep. Configurations are added under
 * unique names; run() executes the full matrix on the batch pool, and when
 * opts.checkpointDir is set every finished cell is persisted so a killed
 * sweep resumes from completed cells on the next invocation.
 *
 * Checkpoints are keyed by (experiment name, suite content, config names):
 * changing a configuration's *parameters* without renaming it requires
 * clearing the checkpoint directory.
 */
class Experiment
{
  public:
    Experiment(std::string name, const Suite& suite, ExperimentOptions opts);

    /** Row-independent column from a mechanism (and optional core) config. */
    Experiment& add(const std::string& config_name, MechanismConfig mech,
                    CoreConfig core = CoreConfig{});

    /** Row-dependent column (e.g. per-workload oracle presets). */
    Experiment& add(const std::string& config_name, ConfigFactory factory);

    /**
     * Column from a MechanismRegistry preset; the registry name is the
     * config name, so checkpoint/cell keys derive from registry names.
     * Oracle (perRow) presets become per-row factories over the suite's
     * global-stable PC sets and require an inspected suite.
     */
    Experiment& addPreset(const std::string& preset_name,
                          CoreConfig core = CoreConfig{});

    size_t numConfigs() const { return factories_.size(); }

    /** Run the {trace x config} matrix (gs sets attached when inspected).
     *  With opts.shards > 1 the matrix is executed by forked worker
     *  processes claiming cells through the checkpoint directory; with
     *  opts.shardId >= 0 this process joins an externally launched fleet.
     *  Either way the returned matrix is complete and bit-identical to a
     *  single-process run. */
    ExperimentResult run();

    /** Run the {SMT2 pair x config} matrix over smtTracePairs(). */
    ExperimentResult runSmt();

    /**
     * Assemble the result matrix purely from the checkpoint directory
     * (e.g. after a fleet of workers on other machines finished), without
     * simulating anything; fatal() if the sweep's manifest is absent or
     * any cell is missing/corrupt. Requires opts.checkpointDir.
     */
    ExperimentResult merge(bool smt = false);

    /** Keyed per-sweep checkpoint subdirectory + its manifest. Public so
     *  harnesses (constable-faultsweep) can pre-seed the directory — e.g.
     *  plant a stale foreign lease — before run() ever sees it. */
    std::string checkpointDirFor(const std::string& root, bool smt,
                                 SweepManifest& manifest, size_t rows) const;

  private:
    ExperimentResult runCells(size_t rows, bool smt);

    std::string name_;
    const Suite* suite_;
    ExperimentOptions opts_;
    std::vector<std::string> names_;
    std::vector<ConfigFactory> factories_;
};

} // namespace constable

#endif
