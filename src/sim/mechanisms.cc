#include "sim/mechanisms.hh"

#include <sstream>

#include "common/logging.hh"

namespace constable {

namespace {

/** Split a ':'-joined token list ("constable:pcrel:amt-i"). */
std::vector<std::string>
splitMods(const std::string& token)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= token.size()) {
        size_t colon = token.find(':', start);
        if (colon == std::string::npos) {
            parts.push_back(token.substr(start));
            break;
        }
        parts.push_back(token.substr(start, colon - start));
        start = colon + 1;
    }
    return parts;
}

void
applyConstableToken(const std::vector<std::string>& mods,
                    const std::string& spec, MechanismConfig& m)
{
    m.constable.enabled = true;
    bool modesNarrowed = false;
    auto narrowModes = [&]() {
        if (!modesNarrowed) {
            m.constable.eliminatePcRel = false;
            m.constable.eliminateStackRel = false;
            m.constable.eliminateRegRel = false;
            modesNarrowed = true;
        }
    };
    for (size_t i = 1; i < mods.size(); ++i) {
        const std::string& mod = mods[i];
        if (mod == "pcrel") {
            narrowModes();
            m.constable.eliminatePcRel = true;
        } else if (mod == "stackrel") {
            narrowModes();
            m.constable.eliminateStackRel = true;
        } else if (mod == "regrel") {
            narrowModes();
            m.constable.eliminateRegRel = true;
        } else if (mod == "none") {
            narrowModes();
        } else if (mod == "amt-i") {
            m.constable.cvBitPinning = false;
        } else if (mod == "no-wrong-path") {
            m.constable.wrongPathUpdates = false;
        } else {
            fatal("mechanism spec '" + spec +
                  "': unknown constable modifier ':" + mod + "'");
        }
    }
}

} // namespace

MechanismConfig
parseMechanismSpec(const std::string& spec, const std::unordered_set<PC>* gs)
{
    MechanismConfig m;
    std::istringstream in(spec);
    std::string token;
    bool any = false;
    while (in >> token) {
        any = true;
        auto mods = splitMods(token);
        const std::string& head = mods[0];
        if (head == "baseline") {
            if (mods.size() > 1)
                fatal("mechanism spec '" + spec +
                      "': 'baseline' takes no modifiers");
        } else if (head == "no-mrn") {
            m.mrn = false;
        } else if (head == "eves") {
            m.eves = true;
        } else if (head == "elar") {
            m.elar = true;
        } else if (head == "rfp") {
            m.rfp = true;
        } else if (head == "constable") {
            applyConstableToken(mods, spec, m);
        } else if (head == "ideal") {
            if (mods.size() != 2)
                fatal("mechanism spec '" + spec +
                      "': 'ideal' needs exactly one mode modifier");
            if (mods[1] == "stable-lvp")
                m.ideal.mode = IdealMode::StableLvp;
            else if (mods[1] == "stable-lvp-nofetch")
                m.ideal.mode = IdealMode::StableLvpNoFetch;
            else if (mods[1] == "constable")
                m.ideal.mode = IdealMode::Constable;
            else
                fatal("mechanism spec '" + spec +
                      "': unknown ideal mode ':" + mods[1] + "'");
            if (gs)
                m.ideal.stablePcs = *gs;
        } else {
            fatal("mechanism spec '" + spec + "': unknown token '" + token +
                  "'");
        }
    }
    if (!any)
        fatal("empty mechanism spec");
    return m;
}

std::string
mechanismSpec(const MechanismConfig& m)
{
    std::vector<std::string> toks;
    if (!m.mrn)
        toks.push_back("no-mrn");
    if (m.eves)
        toks.push_back("eves");
    if (m.elar)
        toks.push_back("elar");
    if (m.rfp)
        toks.push_back("rfp");
    if (m.constable.enabled) {
        std::string t = "constable";
        bool all = m.constable.eliminatePcRel &&
                   m.constable.eliminateStackRel &&
                   m.constable.eliminateRegRel;
        if (!all) {
            bool anyMode = false;
            if (m.constable.eliminatePcRel) {
                t += ":pcrel";
                anyMode = true;
            }
            if (m.constable.eliminateStackRel) {
                t += ":stackrel";
                anyMode = true;
            }
            if (m.constable.eliminateRegRel) {
                t += ":regrel";
                anyMode = true;
            }
            if (!anyMode)
                t += ":none";
        }
        if (!m.constable.cvBitPinning)
            t += ":amt-i";
        if (!m.constable.wrongPathUpdates)
            t += ":no-wrong-path";
        toks.push_back(t);
    }
    switch (m.ideal.mode) {
      case IdealMode::None:
        break;
      case IdealMode::StableLvp:
        toks.push_back("ideal:stable-lvp");
        break;
      case IdealMode::StableLvpNoFetch:
        toks.push_back("ideal:stable-lvp-nofetch");
        break;
      case IdealMode::Constable:
        toks.push_back("ideal:constable");
        break;
    }
    if (toks.empty())
        return "baseline";
    std::string out;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (i)
            out += ' ';
        out += toks[i];
    }
    return out;
}

// ------------------------------------------------------ MechanismRegistry

MechanismRegistry::MechanismRegistry()
{
    // Canonical evaluation order: §8.4 presets and combinations, the
    // Fig 13 addressing-mode filters, the Fig 22 AMT-I variant, then the
    // Fig 7 oracles. The golden-snapshot test and constable-sweep iterate
    // this order.
    presets_ = {
        { "baseline", "baseline",
          "MRN + move/zero elimination + folding (always-on baseline)",
          false },
        { "constable", "constable",
          "Constable load elimination (the paper's mechanism)", false },
        { "eves", "eves", "EVES load value prediction (CVP-1 winner)",
          false },
        { "eves+constable", "eves constable", "EVES on top of Constable",
          false },
        { "elar", "elar", "Early Load Address Resolution (stack loads)",
          false },
        { "rfp", "rfp", "Register File Prefetching (ISCA'22)", false },
        { "elar+constable", "elar constable", "ELAR on top of Constable",
          false },
        { "rfp+constable", "rfp constable", "RFP on top of Constable",
          false },
        { "constable-pcrel", "constable:pcrel",
          "Constable, PC-relative loads only (Fig 13)", false },
        { "constable-stackrel", "constable:stackrel",
          "Constable, stack-relative loads only (Fig 13)", false },
        { "constable-regrel", "constable:regrel",
          "Constable, register-relative loads only (Fig 13)", false },
        { "constable-amt-i", "constable:amt-i",
          "Constable-AMT-I: AMT invalidated on L1D eviction (Fig 22)",
          false },
        { "ideal-stable-lvp", "ideal:stable-lvp",
          "oracle: perfect value prediction of global-stable loads (Fig 7)",
          true },
        { "ideal-stable-lvp-nofetch", "ideal:stable-lvp-nofetch",
          "oracle: perfect prediction + data-fetch elimination (Fig 7)",
          true },
        { "ideal-constable", "ideal:constable",
          "oracle: full elimination of global-stable loads (Fig 7)", true },
        { "eves+ideal-constable", "eves ideal:constable",
          "EVES on top of the ideal-Constable oracle (Fig 11/16 bound)",
          true },
    };
    for (size_t i = 0; i < presets_.size(); ++i)
        byName_[presets_[i].name] = i;
}

const MechanismRegistry&
MechanismRegistry::instance()
{
    static const MechanismRegistry reg;
    return reg;
}

const MechanismPreset*
MechanismRegistry::find(const std::string& name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : &presets_[it->second];
}

const MechanismPreset&
MechanismRegistry::get(const std::string& name) const
{
    const MechanismPreset* p = find(name);
    if (!p) {
        fatal("unknown mechanism preset '" + name + "' (known: " +
              nameList() + ")");
    }
    return *p;
}

MechanismConfig
MechanismRegistry::build(const std::string& name,
                         const std::unordered_set<PC>* gs) const
{
    return parseMechanismSpec(get(name).spec, gs);
}

size_t
appendPresetNames(const std::string& what, const std::string& list,
                  std::vector<std::string>& out)
{
    size_t added = 0;
    size_t start = 0;
    while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string name = comma == std::string::npos
                               ? list.substr(start)
                               : list.substr(start, comma - start);
        if (!name.empty()) {
            MechanismRegistry::instance().get(name); // fatal if unknown
            for (const std::string& prev : out) {
                if (prev == name)
                    fatal(what + ": duplicate mechanism preset '" + name +
                          "'");
            }
            out.push_back(name);
            ++added;
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return added;
}

std::string
MechanismRegistry::nameList() const
{
    std::string out;
    for (size_t i = 0; i < presets_.size(); ++i) {
        if (i)
            out += ", ";
        out += presets_[i].name;
    }
    return out;
}

} // namespace constable
