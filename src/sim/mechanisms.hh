/**
 * @file
 * MechanismRegistry: the named, enumerable, serializable catalogue of every
 * mechanism preset the paper evaluates (§8.4 baselines and combinations,
 * the Fig 7 oracles, the Fig 13 addressing-mode filters, the Fig 22 AMT-I
 * variant). Benches, tools and tests resolve presets by name --
 * `mechFor("eves+constable")` -- instead of calling per-preset factory
 * functions, so a new preset is one registry entry, not a code change in
 * every driver, and `--mech=<name>` / scenario files can name any of them
 * at run time.
 *
 * Each preset carries a *spec*: a compact textual serialization of its
 * MechanismConfig ("eves constable:pcrel:amt-i"). parseMechanismSpec() and
 * mechanismSpec() round-trip the preset space exactly; the registry test
 * locks that, and the golden-snapshot test proves registry-built configs
 * are bit-identical to the hand-built ones they replaced.
 */

#ifndef CONSTABLE_SIM_MECHANISMS_HH
#define CONSTABLE_SIM_MECHANISMS_HH

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/config.hh"

namespace constable {

/** One named preset of the registry. */
struct MechanismPreset
{
    std::string name;        ///< registry key ("eves+constable")
    std::string spec;        ///< serialized MechanismConfig (see file header)
    std::string description; ///< one-liner for --help / README tables
    /** Oracle presets need the row's offline-identified global-stable PC
     *  set; Experiment::addPreset() turns them into per-row factories. */
    bool perRow = false;
};

/**
 * Parse a mechanism spec into a MechanismConfig. Grammar (whitespace-
 * separated tokens; fatal() on anything unknown):
 *
 *   baseline                      explicit no-op (MRN stays on)
 *   no-mrn                        drop MRN from the baseline
 *   eves | elar | rfp             enable that technique
 *   constable[:MOD[:MOD...]]      enable Constable; modifiers:
 *       pcrel|stackrel|regrel     restrict elimination to listed modes
 *       none                      eliminate nothing (sensitivity studies)
 *       amt-i                     AMT invalidate-on-evict (no CV pinning)
 *       no-wrong-path             wrong-path renames skip RMT/SLD
 *   ideal:stable-lvp | ideal:stable-lvp-nofetch | ideal:constable
 *                                 Fig 7 oracle over @p gs
 *
 * @param gs stable-PC set consumed by ideal:* tokens (empty oracle set
 *        when null, matching a run without offline inspection).
 */
MechanismConfig parseMechanismSpec(const std::string& spec,
                                   const std::unordered_set<PC>* gs =
                                       nullptr);

/** Canonical spec of a config: parseMechanismSpec(mechanismSpec(m))
 *  rebuilds m for every config reachable from the grammar above. */
std::string mechanismSpec(const MechanismConfig& m);

class MechanismRegistry
{
  public:
    /** The process-wide registry (immutable after construction). */
    static const MechanismRegistry& instance();

    /** Every preset, in the paper's canonical evaluation order (the same
     *  order the golden-snapshot test and constable-sweep use). */
    const std::vector<MechanismPreset>& presets() const { return presets_; }

    /** Lookup; null when the name is unknown. */
    const MechanismPreset* find(const std::string& name) const;

    /** Lookup; fatal() (listing all known names) when unknown. */
    const MechanismPreset& get(const std::string& name) const;

    /** Build the preset's MechanismConfig; @p gs feeds ideal presets. */
    MechanismConfig build(const std::string& name,
                          const std::unordered_set<PC>* gs = nullptr) const;

    /** Comma-separated preset names (usage/error messages). */
    std::string nameList() const;

  private:
    MechanismRegistry();

    std::vector<MechanismPreset> presets_;
    std::unordered_map<std::string, size_t> byName_;
};

/** Shorthand: MechanismRegistry::instance().build(name, gs). */
inline MechanismConfig
mechFor(const std::string& preset, const std::unordered_set<PC>* gs = nullptr)
{
    return MechanismRegistry::instance().build(preset, gs);
}

/**
 * Split a comma-separated preset list, validate every name against the
 * registry, reject names already in @p out, and append. The one parser
 * behind both `--mech=` / CONSTABLE_MECH and scenario-file `mech`
 * directives, so both report unknown and duplicate names identically.
 * @param what names the source in fatal() messages.
 * @return number of names appended.
 */
size_t appendPresetNames(const std::string& what, const std::string& list,
                         std::vector<std::string>& out);

} // namespace constable

#endif
