#include "sim/runner.hh"

#include "common/logging.hh"
#include "sim/batch.hh"

namespace constable {

RunResult
runTrace(const Trace& trace, const SystemConfig& cfg,
         const std::unordered_set<PC>* gs)
{
    CoreConfig core = cfg.core;
    core.smt2 = false;
    OooCore sim(core, cfg.mech, { &trace }, gs);
    RunResult r = sim.run();
    if (r.goldenCheckFailed)
        panic("golden check failed on " + trace.name + ": " +
              r.goldenCheckMessage);
    return r;
}

Trace
relocateTrace(const Trace& t, PC pc_off, Addr addr_off)
{
    Trace out = t;
    for (MicroOp& op : out.ops) {
        op.pc += pc_off;
        if (op.isMem())
            op.effAddr += addr_off;
        if (op.isBranch())
            op.target += pc_off;
    }
    for (SnoopEvent& s : out.snoops)
        s.addr += addr_off;
    return out;
}

RunResult
runSmtPair(const Trace& t0, const Trace& t1, SystemConfig cfg,
           const std::unordered_set<PC>* gs)
{
    cfg.core.smt2 = true;
    // Separate address spaces: thread 1 lives in its own PC/data region.
    Trace t1r = relocateTrace(t1, 0x4000'0000ull, 0x40'0000'0000ull);
    OooCore sim(cfg.core, cfg.mech, { &t0, &t1r }, gs);
    RunResult r = sim.run();
    if (r.goldenCheckFailed)
        panic("golden check failed on SMT pair " + t0.name + "+" + t1.name +
              ": " + r.goldenCheckMessage);
    return r;
}

double
speedup(const RunResult& test, const RunResult& base)
{
    return test.cycles == 0
        ? 0.0
        : static_cast<double>(base.cycles) /
              static_cast<double>(test.cycles);
}

void
parallelFor(size_t n, const std::function<void(size_t)>& fn)
{
    ThreadPool::global().run(n, fn);
}

} // namespace constable
