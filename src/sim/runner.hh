/**
 * @file
 * System wiring: single-trace and SMT2 drivers, trace relocation for SMT
 * address-space separation, and speedup math. Mechanism presets live in
 * the MechanismRegistry (sim/mechanisms.hh); resolve them by name with
 * mechFor("constable") etc.
 */

#ifndef CONSTABLE_SIM_RUNNER_HH
#define CONSTABLE_SIM_RUNNER_HH

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cpu/core.hh"
#include "inspector/load_inspector.hh"
#include "trace/generator.hh"

namespace constable {

/** A complete system configuration. */
struct SystemConfig
{
    CoreConfig core;
    MechanismConfig mech;
};

/** Run one trace on one core. @param gs optional stats-classification set. */
RunResult runTrace(const Trace& trace, const SystemConfig& cfg,
                   const std::unordered_set<PC>* gs = nullptr);

/** Run two traces in SMT2 on one core (thread 1 is relocated to a disjoint
 *  PC/address region to model separate address spaces). */
RunResult runSmtPair(const Trace& t0, const Trace& t1, SystemConfig cfg,
                     const std::unordered_set<PC>* gs = nullptr);

/** Relocate a trace's PCs and data addresses by fixed offsets. */
Trace relocateTrace(const Trace& t, PC pc_off, Addr addr_off);

/** Performance ratio (same work): base cycles / test cycles. */
double speedup(const RunResult& test, const RunResult& base);

/** Run fn(i) for i in [0, n) on a small thread pool. */
void parallelFor(size_t n, const std::function<void(size_t)>& fn);

} // namespace constable

#endif
