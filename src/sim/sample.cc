/**
 * @file
 * Phase-sampled simulation: fingerprinting, deterministic seeded k-means
 * window selection, and the warm-up/measure/extrapolate driver over
 * cpu/warmup.cc. See sim/sample.hh for the contract.
 */

#include "sim/sample.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "cpu/core.hh"
#include "trace/serialize.hh"

namespace constable {

namespace {

/** Rename overrun past the measured region: keeps the frontend feeding
 *  the window's tail so drain never leaks into the measurement (matches
 *  the ROB depth, the farthest the frontend can run ahead anyway). */
constexpr size_t kOverrunOps = 512;

constexpr size_t kPcBuckets = 32;
constexpr size_t kOpClasses = 12; // OpClass has 12 enumerators
constexpr size_t kAddrBuckets = 16;
constexpr size_t kDims = kPcBuckets + kOpClasses + kAddrBuckets;

using Fingerprint = std::array<double, kDims>;

double
dist2(const Fingerprint& a, const Fingerprint& b)
{
    double d = 0;
    for (size_t i = 0; i < kDims; ++i) {
        double x = a[i] - b[i];
        d += x * x;
    }
    return d;
}

/** L1-normalized hashed-PC + op-class-mix + hashed-line-address vector of
 *  one phase. The address buckets matter: two phases with identical code
 *  (same PC/op-mix image) but disjoint data working sets behave very
 *  differently in the cache hierarchy, and only the address dimensions
 *  can keep them out of the same cluster. */
Fingerprint
fingerprintPhase(const Trace& trace, size_t begin, size_t end)
{
    Fingerprint fp {};
    for (size_t i = begin; i < end; ++i) {
        const MicroOp& op = trace.ops[i];
        fp[Rng::splitmix(op.pc) % kPcBuckets] += 1.0;
        fp[kPcBuckets + static_cast<size_t>(op.cls)] += 1.0;
        if (op.isLoad() || op.isStore()) {
            fp[kPcBuckets + kOpClasses +
               Rng::splitmix(op.effAddr >> 6) % kAddrBuckets] += 1.0;
        }
    }
    double total = static_cast<double>(end - begin);
    if (total > 0)
        for (double& v : fp)
            v /= total;
    return fp;
}

/**
 * Selection is a pure function of (seed, trace content, opts) and every
 * preset of a sweep row shares the same trace, so one fingerprint+k-means
 * pass serves all 16 cells. Keyed by trace identity (name + size + a
 * content probe, in case one process builds same-named traces of
 * different shapes) plus the spec and seed.
 */
const std::vector<SampleWindow>&
cachedWindows(const Trace& trace, const SampleOptions& opts, uint64_t seed)
{
    uint64_t id = fnv1a(trace.name);
    id = Rng::splitmix(id ^ trace.ops.size());
    if (!trace.ops.empty()) {
        id = Rng::splitmix(id ^ trace.ops.front().pc);
        id = Rng::splitmix(id ^ trace.ops[trace.ops.size() / 2].effAddr);
        id = Rng::splitmix(id ^ trace.ops.back().pc);
    }
    std::string key = opts.spec() + '#' + std::to_string(seed) + '#' +
                      std::to_string(id);
    static std::mutex mu;
    static std::unordered_map<std::string, std::vector<SampleWindow>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, selectSampleWindows(trace, opts, seed))
                 .first;
    return it->second;
}

} // namespace

SampleOptions
SampleOptions::parse(const std::string& spec)
{
    SampleOptions o;
    if (spec == "off")
        return o;
    o.enabled = true;
    if (spec.empty())
        fatal("--sample: empty spec (expected phases:N,window:K or off)");
    bool sawPhases = false;
    bool sawWindow = false;
    bool sawFill = false;
    bool sawWarm = false;
    bool sawSpread = false;
    size_t pos = 0;
    while (true) {
        size_t comma = spec.find(',', pos);
        std::string part = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        size_t colon = part.find(':');
        if (colon == std::string::npos || colon == 0) {
            fatal("--sample: expected key:value, got '" + part +
                  "' (grammar: phases:N,window:K,fill:F,warm:W,"
                  "spread:S)");
        }
        std::string key = part.substr(0, colon);
        std::string val = part.substr(colon + 1);
        if (key == "phases") {
            if (sawPhases)
                fatal("--sample: duplicate key 'phases'");
            sawPhases = true;
            o.phases = parseU64InRange("--sample phases", val, 1, 4096);
        } else if (key == "window") {
            if (sawWindow)
                fatal("--sample: duplicate key 'window'");
            sawWindow = true;
            o.window = parseU64InRange("--sample window", val, 16,
                                       1ull << 22);
        } else if (key == "fill") {
            if (sawFill)
                fatal("--sample: duplicate key 'fill'");
            sawFill = true;
            o.fill = parseU64InRange("--sample fill", val, 0, 1ull << 22);
        } else if (key == "warm") {
            if (sawWarm)
                fatal("--sample: duplicate key 'warm'");
            sawWarm = true;
            o.warm = parseU64InRange("--sample warm", val, 0, 1ull << 30);
        } else if (key == "spread") {
            if (sawSpread)
                fatal("--sample: duplicate key 'spread'");
            sawSpread = true;
            o.spread = parseU64InRange("--sample spread", val, 1, 64);
        } else {
            fatal("--sample: unknown key '" + key +
                  "' (expected phases, window, fill, warm or spread)");
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return o;
}

std::string
SampleOptions::spec() const
{
    if (!enabled)
        return "off";
    return "phases:" + std::to_string(phases) +
           ",window:" + std::to_string(window) +
           ",fill:" + std::to_string(fill) +
           ",warm:" + std::to_string(warm) +
           ",spread:" + std::to_string(spread);
}

std::vector<SampleWindow>
selectSampleWindows(const Trace& trace, const SampleOptions& opts,
                    uint64_t seed)
{
    const size_t traceSize = trace.ops.size();
    const size_t window = static_cast<size_t>(opts.window);
    const size_t numPhases = traceSize / window; // drop a ragged tail phase
    std::vector<SampleWindow> out;
    if (numPhases == 0)
        return out;

    if (numPhases <= opts.phases) {
        // Fewer phases than clusters: every phase is its own window.
        for (size_t p = 0; p < numPhases; ++p) {
            size_t end = p + 1 == numPhases ? traceSize : (p + 1) * window;
            out.push_back(SampleWindow{ p * window, end,
                                        1.0 / numPhases });
        }
        return out;
    }

    std::vector<Fingerprint> fps(numPhases);
    for (size_t p = 0; p < numPhases; ++p)
        fps[p] = fingerprintPhase(trace, p * window, (p + 1) * window);

    // Seeded from (master seed, trace identity) only — never thread/row/
    // shard — so selection is bit-identical across execution layouts.
    Rng rng(Rng::splitmix(seed ^ fnv1a(trace.name)));
    const size_t k = static_cast<size_t>(opts.phases);

    // Initial centroids: k distinct phases picked uniformly.
    std::vector<size_t> centers;
    std::vector<bool> used(numPhases, false);
    while (centers.size() < k) {
        size_t p = static_cast<size_t>(rng.next() % numPhases);
        if (!used[p]) {
            used[p] = true;
            centers.push_back(p);
        }
    }
    std::sort(centers.begin(), centers.end()); // order-independent init
    std::vector<Fingerprint> centroids(k);
    for (size_t c = 0; c < k; ++c)
        centroids[c] = fps[centers[c]];

    std::vector<size_t> assign(numPhases, 0);
    constexpr unsigned kIters = 12;
    for (unsigned iter = 0; iter < kIters; ++iter) {
        for (size_t p = 0; p < numPhases; ++p) {
            size_t best = 0;
            double bestD = dist2(fps[p], centroids[0]);
            for (size_t c = 1; c < k; ++c) {
                double d = dist2(fps[p], centroids[c]);
                if (d < bestD) { // strict: ties keep the lowest index
                    bestD = d;
                    best = c;
                }
            }
            assign[p] = best;
        }
        std::vector<Fingerprint> sums(k, Fingerprint{});
        std::vector<size_t> counts(k, 0);
        for (size_t p = 0; p < numPhases; ++p) {
            ++counts[assign[p]];
            for (size_t i = 0; i < kDims; ++i)
                sums[assign[p]][i] += fps[p][i];
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // empty cluster keeps its old centroid
            for (size_t i = 0; i < kDims; ++i)
                centroids[c][i] = sums[c][i] / counts[c];
        }
    }

    // Representatives per non-empty cluster: up to `spread` members picked
    // at evenly spaced TIME quantiles of the cluster's member list, each
    // carrying an equal share of the cluster's population weight. Time
    // stratification matters more than centroid proximity: long traces
    // drift (caches and predictors keep warming), so same-fingerprint
    // phases get faster over the run — a single "closest to centroid"
    // pick (ties toward low indices) lands early and overestimates
    // cycles, with the error growing with trace length.
    std::vector<std::vector<size_t>> members(k);
    for (size_t p = 0; p < numPhases; ++p)
        members[assign[p]].push_back(p); // ascending by construction
    for (size_t c = 0; c < k; ++c) {
        size_t n = members[c].size();
        if (n == 0)
            continue;
        size_t reps = std::min<size_t>(n, opts.spread);
        double w = static_cast<double>(n) /
                   (static_cast<double>(numPhases) *
                    static_cast<double>(reps));
        for (size_t j = 0; j < reps; ++j) {
            size_t p = members[c][(2 * j + 1) * n / (2 * reps)];
            out.push_back(SampleWindow{ p * window, (p + 1) * window, w });
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SampleWindow& a, const SampleWindow& b) {
                  return a.begin < b.begin;
              });
    return out;
}

RunResult
runSampledTrace(const Trace& trace, const CoreConfig& core_cfg,
                const MechanismConfig& mech_cfg, const SampleOptions& opts,
                uint64_t seed, const std::unordered_set<PC>* gs)
{
    if (!opts.enabled)
        fatal("runSampledTrace called with sampling disabled");

    const std::vector<SampleWindow>& windows =
        cachedWindows(trace, opts, seed);

    OooCore core(core_cfg, mech_cfg, { &trace }, gs);

    // Too small to sample (or selection degenerated to full coverage):
    // run at full fidelity. The result still carries the sample.* keys so
    // consumers can tell a degenerate sampled cell from a full-mode one.
    double totalOps = static_cast<double>(trace.ops.size());
    bool degenerate = windows.empty();
    if (!degenerate) {
        double covered = 0;
        for (const SampleWindow& w : windows)
            covered += static_cast<double>(w.end - w.begin);
        degenerate = covered >= totalOps;
    }
    if (degenerate) {
        RunResult r = core.run();
        if (r.goldenCheckFailed)
            panic("sampled run (full-fidelity fallback) failed golden "
                  "check: " + r.goldenCheckMessage);
        r.stats.set("sample.enabled", 1.0);
        r.stats.set("sample.phases", static_cast<double>(opts.phases));
        r.stats.set("sample.window", static_cast<double>(opts.window));
        r.stats.set("sample.windows", 0.0);
        r.stats.set("sample.coverage", 1.0);
        r.stats.set("sample.cpi",
                    r.instructions ? static_cast<double>(r.cycles) /
                                         static_cast<double>(r.instructions)
                                   : 0.0);
        r.stats.set("sample.cpi.ci95", 0.0);
        r.stats.set("sample.cycles.ci95", 0.0);
        return r;
    }

    // Warm up to and measure the selected windows in trace order. Windows
    // whose gap to the previous one is at most the fill length are chained
    // into ONE continuous detailed run (the gap ops stay detailed but
    // unmeasured): squashing between near-adjacent windows would make the
    // later one measure a pipeline-refill ramp instead of steady state.
    struct Measured
    {
        double cpi = 0;
        double weight = 0;
        uint64_t ops = 0;
    };
    std::vector<Measured> measured;
    uint64_t measuredOps = 0;
    size_t i = 0;
    while (i < windows.size()) {
        size_t begin = std::max(windows[i].begin, core.sampleCursor());
        if (begin >= windows[i].end) {
            ++i; // swallowed by the previous chain's overrun
            continue;
        }
        std::vector<OooCore::SampleSegment> segs {
            OooCore::SampleSegment{ begin, windows[i].end }
        };
        std::vector<double> weights { windows[i].weight };
        size_t j = i + 1;
        while (j < windows.size() &&
               windows[j].begin - segs.back().end <= opts.fill) {
            segs.push_back(OooCore::SampleSegment{ windows[j].begin,
                                                   windows[j].end });
            weights.push_back(windows[j].weight);
            ++j;
        }

        size_t fillBegin = begin > opts.fill ? begin - opts.fill : 0;
        fillBegin = std::max(fillBegin, core.sampleCursor());
        size_t touchFrom =
            fillBegin > opts.warm ? fillBegin - opts.warm : 0;
        core.warmupAdvance(fillBegin, touchFrom);
        std::vector<OooCore::WindowTiming> timings =
            core.runSampleWindows(segs, segs.back().end + kOverrunOps);
        for (size_t s = 0; s < segs.size(); ++s) {
            const OooCore::WindowTiming& t = timings[s];
            if (t.ops == 0)
                continue;
            measured.push_back(Measured{
                static_cast<double>(t.cycles) / static_cast<double>(t.ops),
                weights[s], t.ops });
            measuredOps += t.ops;
        }
        i = j;
    }

    RunResult r = core.sampledResult();
    if (r.goldenCheckFailed)
        panic("sampled window failed golden check: " +
              r.goldenCheckMessage);
    if (measured.empty())
        panic("sampled run measured no windows (trace " + trace.name + ")");

    // Weighted-CPI extrapolation with a dispersion-based interval: the
    // weighted spread of per-cluster CPIs stands in for within-cluster
    // variance (one sample per cluster), a SimPoint-style heuristic that
    // is exact when phases cluster cleanly and conservative when not.
    double wsum = 0;
    for (const Measured& m : measured)
        wsum += m.weight;
    double cpi = 0;
    for (const Measured& m : measured)
        cpi += (m.weight / wsum) * m.cpi;
    double var = 0;
    for (const Measured& m : measured)
        var += (m.weight / wsum) * (m.cpi - cpi) * (m.cpi - cpi);
    double se = measured.size() > 1
                    ? std::sqrt(var / static_cast<double>(measured.size() -
                                                          1))
                    : 0.0;
    double ci95 = 1.96 * se;

    double estCycles = cpi * totalOps;
    r.cycles = static_cast<Cycle>(std::llround(estCycles));
    r.instructions = trace.ops.size();
    r.threadInstructions[0] = trace.ops.size();
    r.threadFinishCycle[0] = r.cycles;
    r.stats.set("cycles", static_cast<double>(r.cycles));
    r.stats.set("instructions", static_cast<double>(r.instructions));
    r.stats.set("ipc", r.ipc());
    r.stats.set("sample.enabled", 1.0);
    r.stats.set("sample.phases", static_cast<double>(opts.phases));
    r.stats.set("sample.window", static_cast<double>(opts.window));
    r.stats.set("sample.windows", static_cast<double>(measured.size()));
    r.stats.set("sample.coverage",
                static_cast<double>(measuredOps) / totalOps);
    r.stats.set("sample.cpi", cpi);
    r.stats.set("sample.cpi.ci95", ci95);
    r.stats.set("sample.cycles.ci95", ci95 * totalOps);
    return r;
}

} // namespace constable
