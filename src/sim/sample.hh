/**
 * @file
 * Phase-sampled simulation (SimPoint/SMARTS tradition): slice a trace into
 * fixed-size phases, fingerprint each with a basic-block/op-mix vector,
 * pick representative windows by deterministic seeded k-means clustering,
 * run each selected window in full detail after a functional warm-up pass
 * (cpu/warmup.cc), and extrapolate whole-trace cycles with a per-metric
 * confidence interval carried in RunResult.stats under "sample.*".
 *
 * Layering: this pair is its own constable-lint DAG node between cpu/ and
 * the rest of sim/ — it may use the core but not sim/runner.hh, which is
 * why runSampledTrace() takes CoreConfig + MechanismConfig separately
 * instead of a SystemConfig. sim/experiment.cc dispatches to it per cell.
 *
 * Sampled results never reach the full-fidelity golden-snapshot surface:
 * a full run's RunResult carries no "sample.*" keys and its serialized
 * bytes are unchanged, and sampled sweeps checkpoint under a different
 * cell key (Experiment::checkpointDirFor folds the sample spec in).
 */

#ifndef CONSTABLE_SIM_SAMPLE_HH
#define CONSTABLE_SIM_SAMPLE_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/run_result.hh"
#include "cpu/config.hh"
#include "trace/trace.hh"

namespace constable {

/**
 * Sampling knobs, parsed from `--sample=phases:N,window:K` (or the
 * CONSTABLE_SAMPLE env var). `phases` is the number of representative
 * windows k-means selects; `window` is both the phase size and the number
 * of measured ops per selected window. The literal "off" disables
 * sampling (useful to override an inherited env setting).
 */
struct SampleOptions
{
    bool enabled = false;
    /** Representative windows to select (k of the k-means clustering). */
    uint64_t phases = 8;
    /** Ops per phase / measured ops per selected window. */
    uint64_t window = 2000;
    /** Detailed (pipelined but unmeasured) fill ops renamed before each
     *  window so measurement starts from steady state. */
    uint64_t fill = 2048;
    /** Functional warm-up horizon: ops closer than this to a window's
     *  fill are replayed with cache/predictor/mechanism updates; earlier
     *  ops run a branch-predictor-only fast skip (the predictor is the
     *  one structure whose convergence outruns any affordable horizon). */
    uint64_t warm = 8192;
    /** Measured instances per cluster, picked at evenly spaced time
     *  quantiles of the cluster's members. >1 cancels warm-up drift: a
     *  phase class recurring across a long trace runs faster late than
     *  early, so one early representative overestimates cycles. */
    uint64_t spread = 4;

    /** Strict grammar `phases:N,window:K,fill:F,warm:W,spread:S` (every
     *  key optional, no duplicates, values range-checked) or "off";
     *  fatal() on anything else. The parsed options have enabled=true
     *  unless spec=="off". */
    static SampleOptions parse(const std::string& spec);

    /** Canonical spec string ("phases:N,window:K,fill:F,warm:W,spread:S",
     *  or "off" when disabled); feeds checkpoint-key hashing, so equal
     *  specs — and only equal specs — share sampled checkpoint cells. */
    std::string spec() const;
};

/** One selected representative window (exposed for determinism tests). */
struct SampleWindow
{
    size_t begin = 0;   ///< first measured trace index
    size_t end = 0;     ///< one past the last measured trace index
    double weight = 0;  ///< cluster weight (fraction of all phases)
};

/**
 * Deterministic window selection: fingerprint each `opts.window`-op phase
 * (hashed-PC buckets + op-class mix + address-locality buckets,
 * L1-normalized), cluster with seeded k-means, return up to `opts.spread`
 * time-stratified members per non-empty cluster, each weighted an equal
 * share of the cluster population, sorted by begin. A pure function
 * of (seed, trace content, opts) — thread count, row index and shard
 * layout never reach it, which is what makes sampled sweeps bit-identical
 * across 1/N-thread and fork-shard execution.
 */
std::vector<SampleWindow> selectSampleWindows(const Trace& trace,
                                              const SampleOptions& opts,
                                              uint64_t seed);

/**
 * Run one trace in sampled mode and extrapolate: cycles = weighted-CPI x
 * total trace ops, instructions = total trace ops (so downstream Mops/s
 * accounting measures *effective* throughput), with "sample.*" stat keys
 * (coverage, per-metric ci95) alongside. Falls back to a plain full run
 * when the trace is too small to sample ("sample.windows" = 0 then).
 * panic()s if any measured window fails the golden check, exactly like
 * the full-fidelity runner.
 */
RunResult runSampledTrace(const Trace& trace, const CoreConfig& core,
                          const MechanismConfig& mech,
                          const SampleOptions& opts, uint64_t seed,
                          const std::unordered_set<PC>* gs = nullptr);

} // namespace constable

#endif
