#include "sim/scenario.hh"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/mechanisms.hh"
#include "trace/serialize.hh"

namespace constable {

namespace {

/**
 * Strip a '#'-comment and surrounding whitespace. '#' opens a comment only
 * at the start of the line or after whitespace, so a value may carry an
 * embedded '#' (e.g. a task-class name like "burst#2"); "key value # note"
 * still drops the trailing note.
 */
std::string
stripLine(const std::string& line)
{
    size_t cut = line.size();
    for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '#' &&
            (i == 0 ||
             std::isspace(static_cast<unsigned char>(line[i - 1])))) {
            cut = i;
            break;
        }
    }
    std::string s = line.substr(0, cut);
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

[[noreturn]] void
parseFatal(const std::string& what, size_t line_no, const std::string& msg)
{
    fatal(what + ":" + std::to_string(line_no) + ": " + msg);
}

/** A stripped, non-empty scenario line with its 1-based source line. */
struct ScnLine
{
    size_t no;
    std::string text;
};

/**
 * Parse one `machine class { ... }` / `task class { ... }` block starting
 * at lines[i] (whose first word is "machine" or "task"); appends to
 * sc.machines / sc.tasks and returns the index of the first line after the
 * closing '}'.
 */
size_t
parseFleetBlock(const std::string& what, const std::vector<ScnLine>& lines,
                size_t i, Scenario& sc)
{
    const size_t headNo = lines[i].no;
    std::istringstream hs(lines[i].text);
    std::string kind, cls, brace, extra;
    hs >> kind >> cls;
    const bool isMachine = kind == "machine";
    if (cls != "class")
        parseFatal(what, headNo, "expected '" + kind + " class {'");
    bool braceOpen = false;
    if (hs >> brace) {
        if (brace != "{" || (hs >> extra))
            parseFatal(what, headNo,
                       "expected '{' after '" + kind + " class'");
        braceOpen = true;
    }
    ++i;
    if (!braceOpen) {
        // cloudsim style: the '{' may sit on its own following line.
        if (i >= lines.size() || lines[i].text != "{")
            parseFatal(what, headNo,
                       "expected '{' after '" + kind + " class'");
        ++i;
    }

    FleetMachineClass m;
    FleetTaskClass t;
    std::unordered_set<std::string> seen;
    bool sawEnd = false, sawSeed = false;
    for (;; ++i) {
        if (i >= lines.size()) {
            parseFatal(what, headNo, "unterminated '" + kind +
                       " class {' block (missing '}')");
        }
        const size_t no = lines[i].no;
        if (lines[i].text == "}") {
            ++i;
            break;
        }
        std::istringstream ls(lines[i].text);
        std::string k, v, junk;
        ls >> k;
        if (!(ls >> v) || (ls >> junk))
            parseFatal(what, no, "'" + k + "' takes exactly one value");
        if (!seen.insert(k).second)
            parseFatal(what, no, "duplicate '" + k + "'");
        const std::string where =
            what + ":" + std::to_string(no) + ": " + k;
        if (isMachine) {
            if (k == "name") {
                m.name = v;
            } else if (k == "mech") {
                if (!MechanismRegistry::instance().find(v)) {
                    parseFatal(what, no, "unknown mechanism preset '" + v +
                               "' (known: " +
                               MechanismRegistry::instance().nameList() +
                               ")");
                }
                m.mech = v;
            } else if (k == "cores") {
                m.cores = static_cast<unsigned>(
                    parseU64InRange(where, v, 1, 1024));
            } else if (k == "replicas") {
                m.replicas = static_cast<unsigned>(
                    parseU64InRange(where, v, 1, 1'000'000));
            } else if (k == "idle-pj-per-cycle") {
                m.idlePjPerCycle = parseU64Strict(where, v);
            } else {
                parseFatal(what, no, "unknown machine-class key '" + k +
                           "' (known: name, mech, cores, replicas, "
                           "idle-pj-per-cycle)");
            }
        } else {
            if (k == "name") {
                t.name = v;
            } else if (k == "machine") {
                t.machine = v;
            } else if (k == "inter-arrival") {
                t.interArrival = parseU64InRange(where, v, 1, UINT64_MAX);
            } else if (k == "expected-ops") {
                t.expectedOps = parseU64InRange(where, v, 1, UINT64_MAX);
            } else if (k == "sla") {
                if (v == "SLA0")
                    t.sla = SlaTier::Sla0;
                else if (v == "SLA1")
                    t.sla = SlaTier::Sla1;
                else if (v == "SLA2")
                    t.sla = SlaTier::Sla2;
                else
                    parseFatal(what, no, "'sla' must be SLA0, SLA1 or "
                               "SLA2, got '" + v + "'");
            } else if (k == "seed") {
                t.seed = parseU64Strict(where, v);
                sawSeed = true;
            } else if (k == "start") {
                t.start = parseU64Strict(where, v);
            } else if (k == "end") {
                t.end = parseU64Strict(where, v);
                sawEnd = true;
            } else if (k == "arrivals") {
                if (v == "poisson")
                    t.poisson = true;
                else if (v == "fixed")
                    t.poisson = false;
                else
                    parseFatal(what, no, "'arrivals' must be 'poisson' or "
                               "'fixed', got '" + v + "'");
            } else {
                parseFatal(what, no, "unknown task-class key '" + k +
                           "' (known: name, machine, inter-arrival, "
                           "expected-ops, sla, seed, start, end, "
                           "arrivals)");
            }
        }
    }

    if (isMachine) {
        if (m.name.empty())
            parseFatal(what, headNo, "machine class needs a 'name'");
        if (m.mech.empty()) {
            parseFatal(what, headNo, "machine class '" + m.name +
                       "' needs a 'mech' preset");
        }
        for (const FleetMachineClass& prev : sc.machines) {
            if (prev.name == m.name) {
                parseFatal(what, headNo, "duplicate machine class '" +
                           m.name + "'");
            }
        }
        sc.machines.push_back(std::move(m));
    } else {
        if (t.name.empty())
            parseFatal(what, headNo, "task class needs a 'name'");
        if (t.interArrival == 0) {
            parseFatal(what, headNo, "task class '" + t.name +
                       "' needs an 'inter-arrival'");
        }
        if (t.expectedOps == 0) {
            parseFatal(what, headNo, "task class '" + t.name +
                       "' needs 'expected-ops'");
        }
        if (!sawEnd || t.end <= t.start) {
            parseFatal(what, headNo, "task class '" + t.name +
                       "' needs an 'end' greater than its 'start'");
        }
        if (!sawSeed)
            t.seed = fnv1a(t.name); // distinct default stream per class
        for (const FleetTaskClass& prev : sc.tasks) {
            if (prev.name == t.name) {
                parseFatal(what, headNo, "duplicate task class '" +
                           t.name + "'");
            }
        }
        sc.tasks.push_back(std::move(t));
    }
    return i;
}

} // namespace

Scenario
parseScenarioText(const std::string& text, const std::string& what)
{
    // Pre-strip into (line number, text) pairs so the fleet block parser
    // can consume multiple lines per directive.
    std::vector<ScnLine> lines;
    {
        std::istringstream in(text);
        std::string raw;
        size_t n = 0;
        while (std::getline(in, raw)) {
            ++n;
            std::string s = stripLine(raw);
            if (!s.empty())
                lines.push_back({ n, s });
        }
    }

    Scenario sc;
    bool sawName = false, sawSmt = false, sawOps = false, sawLimit = false;
    size_t i = 0;
    while (i < lines.size()) {
        const size_t lineNo = lines[i].no;
        const std::string& line = lines[i].text;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "machine" || key == "task") {
            i = parseFleetBlock(what, lines, i, sc);
            continue;
        }
        ++i;
        if (key == "name") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'name' takes exactly one word");
            if (sawName)
                parseFatal(what, lineNo, "duplicate 'name'");
            sawName = true;
            sc.name = v;
        } else if (key == "mech") {
            // Space- and comma-separated lists, validated (and duplicate-
            // checked) by the same parser --mech/CONSTABLE_MECH use.
            std::string v;
            size_t added = 0;
            std::string where = what + ":" + std::to_string(lineNo);
            while (ls >> v)
                added += appendPresetNames(where, v, sc.mechs);
            if (added == 0)
                parseFatal(what, lineNo,
                           "'mech' needs at least one preset name");
        } else if (key == "smt") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'smt' takes exactly 'on' or 'off'");
            if (sawSmt)
                parseFatal(what, lineNo, "duplicate 'smt'");
            sawSmt = true;
            if (v == "on")
                sc.smt = true;
            else if (v == "off")
                sc.smt = false;
            else
                parseFatal(what, lineNo,
                           "'smt' must be 'on' or 'off', got '" + v + "'");
        } else if (key == "trace-ops") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'trace-ops' takes one integer");
            if (sawOps)
                parseFatal(what, lineNo, "duplicate 'trace-ops'");
            sawOps = true;
            uint64_t n = parseU64Strict(what + ": trace-ops", v);
            if (n == 0)
                parseFatal(what, lineNo, "'trace-ops' must be >= 1");
            sc.traceOps = static_cast<size_t>(n);
        } else if (key == "suite-limit") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'suite-limit' takes one integer");
            if (sawLimit)
                parseFatal(what, lineNo, "duplicate 'suite-limit'");
            sawLimit = true;
            uint64_t n = parseU64Strict(what + ": suite-limit", v);
            if (n == 0)
                parseFatal(what, lineNo, "'suite-limit' must be >= 1");
            sc.suiteLimit = static_cast<size_t>(n);
        } else {
            parseFatal(what, lineNo,
                       "unknown directive '" + key +
                           "' (known: name, mech, smt, trace-ops, "
                           "suite-limit, machine class, task class)");
        }
    }

    if (!sc.machines.empty() || !sc.tasks.empty()) {
        // Fleet validation: presets come from machine classes, so the
        // sweep-style directives make no sense alongside the blocks.
        if (!sc.mechs.empty()) {
            fatal(what + ": top-level 'mech' and machine/task class blocks "
                  "are mutually exclusive (fleet presets come from machine "
                  "classes)");
        }
        if (sawSmt)
            fatal(what + ": 'smt' does not apply to fleet scenarios");
        if (sc.machines.empty())
            fatal(what + ": fleet scenario declares task classes but no "
                  "'machine class' block");
        if (sc.tasks.empty())
            fatal(what + ": fleet scenario declares machine classes but no "
                  "'task class' block");
        for (const FleetTaskClass& t : sc.tasks) {
            if (t.machine.empty())
                continue;
            bool found = false;
            for (const FleetMachineClass& m : sc.machines)
                found = found || m.name == t.machine;
            if (!found) {
                fatal(what + ": task class '" + t.name +
                      "' pins unknown machine class '" + t.machine + "'");
            }
        }
    } else if (sc.mechs.empty()) {
        fatal(what + ": scenario names no mechanisms (add 'mech <preset>'; "
              "known presets: " +
              MechanismRegistry::instance().nameList() + ")");
    }
    return sc;
}

Scenario
loadScenarioFile(const std::string& path)
{
    std::string text;
    if (!readFileText(path, text))
        fatal("cannot read scenario file '" + path + "'");
    return parseScenarioText(text, path);
}

uint64_t
resultFingerprint(const MatrixResult& m)
{
    uint64_t h = 0x5eedf00dull;
    for (const RunResult& r : m.results) {
        auto bytes = serializeRunResult(r);
        h ^= fnv1a(bytes.data(), bytes.size());
        h *= 0x100000001b3ull;
    }
    return h;
}

void
printResultFingerprint(const ExperimentResult& res)
{
    std::printf("result fingerprint: %016llx\n",
                static_cast<unsigned long long>(
                    resultFingerprint(res.matrix())));
}

void
runScenario(const Scenario& sc, ExperimentOptions opts)
{
    if (sc.isFleet()) {
        fatal("scenario '" + sc.name + "' declares a fleet (machine/task "
              "class blocks); run it with constable-serve");
    }
    if (sc.traceOps)
        opts.traceOps = sc.traceOps;
    if (sc.suiteLimit)
        opts.suiteLimit = sc.suiteLimit;

    Suite suite = Suite::prepare(opts, /*inspect=*/true);
    Experiment exp(sc.name, suite, opts);
    for (const std::string& name : sc.mechs)
        exp.addPreset(name);
    ExperimentResult res = sc.smt ? exp.runSmt() : exp.run();

    if (!opts.printsReport())
        return;

    const std::string& base = sc.mechs.front();
    if (sc.mechs.size() > 1) {
        std::vector<std::vector<double>> series;
        std::vector<std::string> names(sc.mechs.begin() + 1,
                                       sc.mechs.end());
        for (const std::string& n : names)
            series.push_back(res.speedups(n, base));
        res.printGeomeans("scenario '" + sc.name + "': speedup over " +
                              base + (sc.smt ? " (SMT2)" : ""),
                          series, names);
    }
    std::printf("cells: %zu (%zu resumed from prior checkpoints)\n",
                res.matrix().results.size(), res.resumedCells());
    printResultFingerprint(res);
}

bool
runNamedSweepIfRequested(const std::string& bench_name,
                         const ExperimentOptions& opts)
{
    if (opts.mechNames.empty() && opts.scenarioFile.empty())
        return false;
    if (!opts.mechNames.empty() && !opts.scenarioFile.empty())
        fatal("--mech and --scenario are mutually exclusive");

    Scenario sc;
    if (!opts.scenarioFile.empty()) {
        sc = loadScenarioFile(opts.scenarioFile);
    } else {
        sc.name = bench_name + "-mech";
        for (const std::string& n : opts.mechNames) {
            MechanismRegistry::instance().get(n); // fatal if unknown
            sc.mechs.push_back(n);
        }
    }
    runScenario(sc, opts);
    return true;
}

} // namespace constable
