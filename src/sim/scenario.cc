#include "sim/scenario.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/mechanisms.hh"
#include "trace/serialize.hh"

namespace constable {

namespace {

/** Strip a trailing '#'-comment and surrounding whitespace. */
std::string
stripLine(const std::string& line)
{
    std::string s = line.substr(0, line.find('#'));
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

[[noreturn]] void
parseFatal(const std::string& what, size_t line_no, const std::string& msg)
{
    fatal(what + ":" + std::to_string(line_no) + ": " + msg);
}

} // namespace

Scenario
parseScenarioText(const std::string& text, const std::string& what)
{
    Scenario sc;
    bool sawName = false, sawSmt = false, sawOps = false, sawLimit = false;
    std::istringstream in(text);
    std::string rawLine;
    size_t lineNo = 0;
    while (std::getline(in, rawLine)) {
        ++lineNo;
        std::string line = stripLine(rawLine);
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "name") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'name' takes exactly one word");
            if (sawName)
                parseFatal(what, lineNo, "duplicate 'name'");
            sawName = true;
            sc.name = v;
        } else if (key == "mech") {
            // Space- and comma-separated lists, validated (and duplicate-
            // checked) by the same parser --mech/CONSTABLE_MECH use.
            std::string v;
            size_t added = 0;
            std::string where = what + ":" + std::to_string(lineNo);
            while (ls >> v)
                added += appendPresetNames(where, v, sc.mechs);
            if (added == 0)
                parseFatal(what, lineNo,
                           "'mech' needs at least one preset name");
        } else if (key == "smt") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'smt' takes exactly 'on' or 'off'");
            if (sawSmt)
                parseFatal(what, lineNo, "duplicate 'smt'");
            sawSmt = true;
            if (v == "on")
                sc.smt = true;
            else if (v == "off")
                sc.smt = false;
            else
                parseFatal(what, lineNo,
                           "'smt' must be 'on' or 'off', got '" + v + "'");
        } else if (key == "trace-ops") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'trace-ops' takes one integer");
            if (sawOps)
                parseFatal(what, lineNo, "duplicate 'trace-ops'");
            sawOps = true;
            uint64_t n = parseU64Strict(what + ": trace-ops", v);
            if (n == 0)
                parseFatal(what, lineNo, "'trace-ops' must be >= 1");
            sc.traceOps = static_cast<size_t>(n);
        } else if (key == "suite-limit") {
            std::string v, extra;
            if (!(ls >> v) || (ls >> extra))
                parseFatal(what, lineNo, "'suite-limit' takes one integer");
            if (sawLimit)
                parseFatal(what, lineNo, "duplicate 'suite-limit'");
            sawLimit = true;
            uint64_t n = parseU64Strict(what + ": suite-limit", v);
            if (n == 0)
                parseFatal(what, lineNo, "'suite-limit' must be >= 1");
            sc.suiteLimit = static_cast<size_t>(n);
        } else {
            parseFatal(what, lineNo,
                       "unknown directive '" + key +
                           "' (known: name, mech, smt, trace-ops, "
                           "suite-limit)");
        }
    }
    if (sc.mechs.empty())
        fatal(what + ": scenario names no mechanisms (add 'mech <preset>'; "
              "known presets: " +
              MechanismRegistry::instance().nameList() + ")");
    return sc;
}

Scenario
loadScenarioFile(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot read scenario file '" + path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseScenarioText(buf.str(), path);
}

uint64_t
resultFingerprint(const MatrixResult& m)
{
    uint64_t h = 0x5eedf00dull;
    for (const RunResult& r : m.results) {
        auto bytes = serializeRunResult(r);
        h ^= fnv1a(bytes.data(), bytes.size());
        h *= 0x100000001b3ull;
    }
    return h;
}

void
printResultFingerprint(const ExperimentResult& res)
{
    std::printf("result fingerprint: %016llx\n",
                static_cast<unsigned long long>(
                    resultFingerprint(res.matrix())));
}

void
runScenario(const Scenario& sc, ExperimentOptions opts)
{
    if (sc.traceOps)
        opts.traceOps = sc.traceOps;
    if (sc.suiteLimit)
        opts.suiteLimit = sc.suiteLimit;

    Suite suite = Suite::prepare(opts, /*inspect=*/true);
    Experiment exp(sc.name, suite, opts);
    for (const std::string& name : sc.mechs)
        exp.addPreset(name);
    ExperimentResult res = sc.smt ? exp.runSmt() : exp.run();

    if (!opts.printsReport())
        return;

    const std::string& base = sc.mechs.front();
    if (sc.mechs.size() > 1) {
        std::vector<std::vector<double>> series;
        std::vector<std::string> names(sc.mechs.begin() + 1,
                                       sc.mechs.end());
        for (const std::string& n : names)
            series.push_back(res.speedups(n, base));
        res.printGeomeans("scenario '" + sc.name + "': speedup over " +
                              base + (sc.smt ? " (SMT2)" : ""),
                          series, names);
    }
    std::printf("cells: %zu (%zu resumed from prior checkpoints)\n",
                res.matrix().results.size(), res.resumedCells());
    printResultFingerprint(res);
}

bool
runNamedSweepIfRequested(const std::string& bench_name,
                         const ExperimentOptions& opts)
{
    if (opts.mechNames.empty() && opts.scenarioFile.empty())
        return false;
    if (!opts.mechNames.empty() && !opts.scenarioFile.empty())
        fatal("--mech and --scenario are mutually exclusive");

    Scenario sc;
    if (!opts.scenarioFile.empty()) {
        sc = loadScenarioFile(opts.scenarioFile);
    } else {
        sc.name = bench_name + "-mech";
        for (const std::string& n : opts.mechNames) {
            MechanismRegistry::instance().get(n); // fatal if unknown
            sc.mechs.push_back(n);
        }
    }
    runScenario(sc, opts);
    return true;
}

} // namespace constable
