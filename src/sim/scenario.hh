/**
 * @file
 * Declarative scenario files and run-time mechanism selection: new sweeps
 * without recompiling. A scenario is a small line-based text file,
 *
 *     # Fig 13 without the binary's compiled-in preset table
 *     name addr-modes
 *     mech baseline constable-pcrel constable-stackrel
 *     mech constable-regrel constable
 *     smt off
 *     trace-ops 3000      # optional; inherits --trace-ops when absent
 *     suite-limit 6       # optional; inherits --suite-limit when absent
 *
 * naming registry presets (sim/mechanisms.hh). Every bench driver calls
 * runNamedSweepIfRequested() first: `--mech=<name>[,<name>...]` or
 * `--scenario=<file>` (CONSTABLE_MECH / CONSTABLE_SCENARIO) replaces the
 * bench's compiled-in figure with the named sweep. The generic runner
 * prints per-config geomean speedups over the first named config plus the
 * byte-level FNV result fingerprint, so a scenario run can be diffed for
 * bit-identity against the preset-table path (the CI scenario-smoke job
 * does exactly that). Parsing is strict: unknown directives, malformed
 * numbers, duplicate scalars and unknown preset names all fatal().
 */

#ifndef CONSTABLE_SIM_SCENARIO_HH
#define CONSTABLE_SIM_SCENARIO_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace constable {

/** A parsed scenario: which presets over which suite, SMT or not. */
struct Scenario
{
    std::string name = "scenario";      ///< experiment/checkpoint identity
    std::vector<std::string> mechs;     ///< registry preset names, >= 1
    bool smt = false;                   ///< run the SMT2 pair matrix
    size_t traceOps = 0;                ///< 0 = inherit ExperimentOptions
    size_t suiteLimit = 0;              ///< 0 = inherit ExperimentOptions
};

/** Parse scenario text; @p what names the source in fatal() messages. */
Scenario parseScenarioText(const std::string& text, const std::string& what);

/** Load and parse a scenario file; fatal() on I/O or parse errors. */
Scenario loadScenarioFile(const std::string& path);

/** Byte-identity fingerprint: FNV chained over every cell's serialized
 *  RunResult in row-major order (same chain constable-sweep prints). */
uint64_t resultFingerprint(const MatrixResult& m);

/** Print the standard "result fingerprint: <16 hex>" line. */
void printResultFingerprint(const ExperimentResult& res);

/** Prepare the suite and run @p sc through the Experiment API (honoring
 *  checkpoints/shards from @p opts), then print the generic report. */
void runScenario(const Scenario& sc, ExperimentOptions opts);

/**
 * The bench-driver entry point: when @p opts names mechanisms (--mech) or
 * a scenario file (--scenario), run that sweep instead of the caller's
 * compiled-in figure and return true (the bench should exit 0). Returns
 * false when neither was requested. fatal() when both are.
 */
bool runNamedSweepIfRequested(const std::string& bench_name,
                              const ExperimentOptions& opts);

} // namespace constable

#endif
