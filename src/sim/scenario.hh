/**
 * @file
 * Declarative scenario files and run-time mechanism selection: new sweeps
 * without recompiling. A scenario is a small line-based text file,
 *
 *     # Fig 13 without the binary's compiled-in preset table
 *     name addr-modes
 *     mech baseline constable-pcrel constable-stackrel
 *     mech constable-regrel constable
 *     smt off
 *     trace-ops 3000      # optional; inherits --trace-ops when absent
 *     suite-limit 6       # optional; inherits --suite-limit when absent
 *
 * naming registry presets (sim/mechanisms.hh). Every bench driver calls
 * runNamedSweepIfRequested() first: `--mech=<name>[,<name>...]` or
 * `--scenario=<file>` (CONSTABLE_MECH / CONSTABLE_SCENARIO) replaces the
 * bench's compiled-in figure with the named sweep. The generic runner
 * prints per-config geomean speedups over the first named config plus the
 * byte-level FNV result fingerprint, so a scenario run can be diffed for
 * bit-identity against the preset-table path (the CI scenario-smoke job
 * does exactly that). Parsing is strict: unknown directives, malformed
 * numbers, duplicate scalars and unknown preset names all fatal().
 *
 * Scenarios can also declare a *fleet* (the serving tier, serve/fleet.hh)
 * with brace-delimited blocks in the style of the cloudsim EEC testcases:
 *
 *     name web-fleet
 *     machine class {
 *         name big            # unique machine-class name
 *         mech constable      # registry preset serving this class
 *         cores 8             # cores per replica
 *         replicas 4          # replicas (machines) of this class
 *         idle-pj-per-cycle 8 # optional static draw per idle core-cycle
 *     }
 *     task class {
 *         name steady-web
 *         machine big         # optional pin; absent = dispatcher's choice
 *         inter-arrival 2000  # mean gap between arrivals (cycles)
 *         expected-ops 40000  # trace-ops of work per request
 *         sla SLA0            # SLA0 | SLA1 | SLA2 (strictest first)
 *         seed 520030         # arrival-process RNG stream (optional)
 *         start 0             # first arrivals no earlier than this cycle
 *         end 1500000         # arrivals stop here (required, > start)
 *         arrivals poisson    # poisson (default) | fixed gaps
 *     }
 *
 * Fleet scenarios are driven by `constable-serve`; the top-level `mech`
 * and `smt` directives are mutually exclusive with fleet blocks, while
 * `trace-ops` / `suite-limit` still scale the calibration sweep.
 */

#ifndef CONSTABLE_SIM_SCENARIO_HH
#define CONSTABLE_SIM_SCENARIO_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace constable {

/** SLA tiers of the fleet serving grammar, strictest first (mirroring the
 *  cloudsim testcases). The tier sets a request's latency budget as a
 *  multiple of its pure service time (serve/fleet.hh). */
enum class SlaTier : uint8_t { Sla0 = 0, Sla1 = 1, Sla2 = 2 };

/** Number of SLA tiers (array sizing for per-tier reports). */
inline constexpr size_t kNumSlaTiers = 3;

/** One `machine class { ... }` block: a pool of identical replicas, each
 *  with `cores` cores, all running one mechanism preset. */
struct FleetMachineClass
{
    std::string name;            ///< unique class name
    std::string mech;            ///< registry preset serving this class
    unsigned cores = 1;          ///< cores per replica
    unsigned replicas = 1;       ///< replicas (machines) of this class
    uint64_t idlePjPerCycle = 0; ///< static draw per idle core-cycle (pJ)
};

/** One `task class { ... }` block: an open-loop arrival process of
 *  fixed-size trace-job requests carrying an SLA tier. */
struct FleetTaskClass
{
    std::string name;          ///< unique class name
    std::string machine;       ///< pin to a machine class; empty = any
    uint64_t interArrival = 0; ///< mean gap between arrivals (cycles)
    uint64_t expectedOps = 0;  ///< trace-ops of work per request
    SlaTier sla = SlaTier::Sla2;
    uint64_t seed = 0;         ///< arrival-process RNG stream
    uint64_t start = 0;        ///< first arrivals no earlier than this
    uint64_t end = 0;          ///< arrivals stop here (exclusive)
    bool poisson = true;       ///< exponential gaps; false = fixed gaps
};

/** A parsed scenario: which presets over which suite, SMT or not — or a
 *  fleet of machine/task classes for the serving tier. */
struct Scenario
{
    std::string name = "scenario";      ///< experiment/checkpoint identity
    std::vector<std::string> mechs;     ///< registry preset names, >= 1
    bool smt = false;                   ///< run the SMT2 pair matrix
    size_t traceOps = 0;                ///< 0 = inherit ExperimentOptions
    size_t suiteLimit = 0;              ///< 0 = inherit ExperimentOptions
    std::vector<FleetMachineClass> machines; ///< fleet machine classes
    std::vector<FleetTaskClass> tasks;       ///< fleet task classes

    /** True when the scenario declares a fleet (serve/fleet.hh); such
     *  scenarios run under constable-serve, not the bench sweep path. */
    bool isFleet() const { return !machines.empty(); }
};

/** Parse scenario text; @p what names the source in fatal() messages. */
Scenario parseScenarioText(const std::string& text, const std::string& what);

/** Load and parse a scenario file; fatal() on I/O or parse errors. */
Scenario loadScenarioFile(const std::string& path);

/** Byte-identity fingerprint: FNV chained over every cell's serialized
 *  RunResult in row-major order (same chain constable-sweep prints). */
uint64_t resultFingerprint(const MatrixResult& m);

/** Print the standard "result fingerprint: <16 hex>" line. */
void printResultFingerprint(const ExperimentResult& res);

/** Prepare the suite and run @p sc through the Experiment API (honoring
 *  checkpoints/shards from @p opts), then print the generic report. */
void runScenario(const Scenario& sc, ExperimentOptions opts);

/**
 * The bench-driver entry point: when @p opts names mechanisms (--mech) or
 * a scenario file (--scenario), run that sweep instead of the caller's
 * compiled-in figure and return true (the bench should exit 0). Returns
 * false when neither was requested. fatal() when both are.
 */
bool runNamedSweepIfRequested(const std::string& bench_name,
                              const ExperimentOptions& opts);

} // namespace constable

#endif
