#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <thread>

#include "common/logging.hh"

// fork()-based coordinator mode is POSIX-only; other platforms fall back
// to computing the whole matrix in-process (still through the lease
// protocol, so on-disk artifacts are identical).
#if defined(__unix__) || defined(__APPLE__)
#define CONSTABLE_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace constable {

namespace {

namespace fs = std::filesystem;

bool
fileExists(const std::string& path)
{
    std::error_code ec;
    return fs::exists(path, ec) && !ec;
}

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

LeaseRecord
makeLease(int shard_id)
{
    LeaseRecord r;
    r.owner = processOwnerTag();
#if defined(__unix__) || defined(__APPLE__)
    r.pid = static_cast<uint64_t>(::getpid());
#endif
    r.shardId = shard_id;
    r.acquiredUnixSec = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return r;
}

unsigned
effectiveThreads(const BatchOptions& b)
{
    if (b.threads != 0)
        return b.threads;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, std::min(hw == 0 ? 1u : hw, 16u));
}

/** Mutable per-process view of the claim loop. */
struct WorkerCtx
{
    const std::string& dir;
    const SweepManifest& m;
    const CellFn& compute;
    ShardOptions opts;
    ShardOutcome outcome;
    /** Cell known complete (its checkpoint file was observed). Written
     *  concurrently from batch jobs, but each job owns distinct indices. */
    std::vector<uint8_t> done;
};

/**
 * One claim pass: scan cells in shard-strided order, claim up to one per
 * local thread (so a queued claim's lease never sits idle long enough to
 * go stale), compute + commit + release. Returns cells computed.
 */
size_t
workerPass(WorkerCtx& ctx)
{
    const size_t n = ctx.m.numCells();
    // Stride the scan start by shard id so a fleet of freshly launched
    // workers fans out across the matrix instead of racing on cell 0.
    const size_t offset =
        ctx.opts.shardId > 0 && ctx.opts.shards > 1
            ? (static_cast<size_t>(ctx.opts.shardId) * n) / ctx.opts.shards
            : 0;
    const size_t maxClaims =
        std::max<size_t>(1, effectiveThreads(ctx.opts.batch));
    const double ttl = static_cast<double>(ctx.opts.leaseTtlSec);

    std::vector<size_t> claimed;
    LeaseRecord lease = makeLease(ctx.opts.shardId);
    for (size_t i = 0; i < n && claimed.size() < maxClaims; ++i) {
        size_t c = (i + offset) % n;
        if (ctx.done[c])
            continue;
        if (fileExists(cellFilePath(ctx.dir, ctx.m, c))) {
            ctx.done[c] = 1;
            continue;
        }
        std::string lp = cellLeasePath(ctx.dir, ctx.m, c);
        if (tryAcquireLease(lp, lease)) {
            claimed.push_back(c);
            continue;
        }
        // Held by someone else: reclaim only if stale (its holder died or
        // lost the filesystem). The remove/re-acquire pair can race with
        // another reclaimer; determinism + atomic commits make a double
        // execution benign, so no stronger protocol is needed.
        double age = leaseAgeSeconds(lp);
        if (age >= ttl) {
            removeLease(lp);
            if (tryAcquireLease(lp, lease)) {
                ++ctx.outcome.reclaimed;
                claimed.push_back(c);
            }
        }
    }
    if (claimed.empty())
        return 0;

    forEachJob(claimed.size(), [&](size_t i, Rng&) {
        size_t c = claimed[i];
        std::string lp = cellLeasePath(ctx.dir, ctx.m, c);
        // The claim may have queued behind other jobs: refresh the lease
        // mtime so its TTL measures compute time, not queue time.
        std::error_code ec;
        fs::last_write_time(lp, fs::file_time_type::clock::now(), ec);
        RunResult r = ctx.compute(c);
        if (!saveRunResult(cellFilePath(ctx.dir, ctx.m, c), r,
                           /*durable=*/true)) {
            fatal("shard worker cannot write cell checkpoint in '" +
                  ctx.dir + "'");
        }
        removeLease(lp);
        ctx.done[c] = 1;
    }, ctx.opts.batch);
    ctx.outcome.computed += claimed.size();
    return claimed.size();
}

/** Claim until every cell of the matrix has a committed checkpoint file
 *  (this process's cells and everyone else's). */
void
workerLoop(WorkerCtx& ctx)
{
    const size_t n = ctx.m.numCells();
    for (;;) {
        size_t ran = workerPass(ctx);
        bool all = true;
        for (size_t c = 0; c < n && all; ++c) {
            if (!ctx.done[c] && !fileExists(cellFilePath(ctx.dir, ctx.m, c)))
                all = false;
        }
        if (all)
            return;
        if (ran == 0)
            sleepMs(ctx.opts.pollMs);
    }
}

#ifdef CONSTABLE_HAVE_FORK

/** Fork `shards` single-threaded workers over the claim loop and reap
 *  them. Child processes _exit() without running static destructors: they
 *  inherited the coordinator's thread pool, whose worker threads do not
 *  exist after fork(). */
void
forkWorkers(const std::string& dir, const SweepManifest& m,
            const CellFn& compute, const ShardOptions& opts,
            ShardOutcome& outcome)
{
    std::vector<pid_t> pids;
    for (unsigned k = 0; k < opts.shards; ++k) {
        pid_t pid = ::fork();
        if (pid < 0) {
            warn("fork() failed for shard worker " + std::to_string(k) +
                 "; continuing with fewer workers");
            break;
        }
        if (pid == 0) {
            ShardOptions w = opts;
            w.shardId = static_cast<int>(k);
            w.batch.threads = 1; // never touch the inherited pool
            WorkerCtx ctx { dir, m, compute, w, {}, {} };
            ctx.done.assign(m.numCells(), 0);
            workerLoop(ctx);
            std::fflush(nullptr);
            ::_exit(0);
        }
        pids.push_back(pid);
        ++outcome.workersForked;
    }
    for (pid_t pid : pids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0 ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            ++outcome.workersFailed;
            warn("shard worker pid " + std::to_string(pid) +
                 " exited abnormally; its cells will be recovered");
        }
    }
}

#endif // CONSTABLE_HAVE_FORK

} // namespace

std::string
cellFilePath(const std::string& dir, const SweepManifest& m, size_t cell)
{
    size_t row = cell / m.numConfigs;
    size_t cfg = cell % m.numConfigs;
    return dir + "/cell-" + std::to_string(row) + "-" +
           std::to_string(cfg) + ".rr";
}

std::string
cellLeasePath(const std::string& dir, const SweepManifest& m, size_t cell)
{
    return cellFilePath(dir, m, cell) + ".lease";
}

void
writeOrVerifyManifest(const std::string& dir, const SweepManifest& m)
{
    std::string path = dir + "/manifest.sweep";
    SweepManifest existing;
    if (!loadManifest(path, existing)) {
        if (!saveManifest(path, m))
            fatal("cannot write sweep manifest '" + path + "'");
        // Two sweeps racing on an empty directory both "win" the write
        // (last rename sticks): re-read so exactly one of them survives.
        if (!loadManifest(path, existing))
            fatal("cannot re-read sweep manifest '" + path + "'");
    }
    if (!(existing == m)) {
        fatal("checkpoint directory '" + dir + "' belongs to sweep '" +
              existing.experiment + "' (" + std::to_string(existing.numRows) +
              "x" + std::to_string(existing.numConfigs) +
              "), not to this sweep '" + m.experiment +
              "'; use a distinct --checkpoint-dir per sweep");
    }
}

bool
mergeShardedCells(const std::string& dir, const SweepManifest& m,
                  const CellFn* compute, std::vector<RunResult>& out,
                  const ShardOptions& opts, ShardOutcome& outcome)
{
    const size_t n = m.numCells();
    out.resize(n);
    bool complete = true;
    for (size_t c = 0; c < n; ++c) {
        if (loadRunResult(cellFilePath(dir, m, c), out[c])) {
            ++outcome.loaded;
            continue;
        }
        // Missing, or present but failing its FNV checksum (a worker died
        // after rename was scheduled but before the data hit disk, or the
        // file was mangled): regenerate rather than aborting the merge.
        if (compute) {
            out[c] = (*compute)(c);
            saveRunResult(cellFilePath(dir, m, c), out[c], /*durable=*/true);
            removeLease(cellLeasePath(dir, m, c));
            ++outcome.computed;
        } else {
            complete = false;
        }
    }
    // Orphaned tmp files (a writer SIGKILLed mid-write) are invisible to
    // the commit protocol but accumulate; sweep old ones here.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        double age = leaseAgeSeconds(entry.path().string());
        if (age >= static_cast<double>(opts.leaseTtlSec)) {
            std::error_code rec;
            if (fs::remove(entry.path(), rec) && !rec)
                ++outcome.staleTmpRemoved;
        }
    }
    return complete;
}

ShardOutcome
runShardedCells(const std::string& dir, const SweepManifest& m,
                const CellFn& compute, std::vector<RunResult>& out,
                const ShardOptions& opts)
{
    ShardOutcome outcome;
    writeOrVerifyManifest(dir, m);
    if (m.numCells() == 0) {
        out.clear();
        return outcome;
    }
    // Resumed-work accounting must be taken before any worker runs: after
    // the sweep every cell has a file, so a post-hoc count says nothing.
    for (size_t c = 0; c < m.numCells(); ++c) {
        if (fileExists(cellFilePath(dir, m, c)))
            ++outcome.preExisting;
    }

    if (opts.shardId >= 0) {
        // Worker mode: independently launched process of a fleet sharing
        // this directory. Claim until the matrix is complete, then merge
        // so every shard returns the same full result.
        WorkerCtx ctx { dir, m, compute, opts, outcome, {} };
        ctx.done.assign(m.numCells(), 0);
        workerLoop(ctx);
        outcome = ctx.outcome;
        mergeShardedCells(dir, m, &compute, out, opts, outcome);
        return outcome;
    }

#ifdef CONSTABLE_HAVE_FORK
    // Coordinator mode: fork the fleet, reap it, assemble the matrix.
    forkWorkers(dir, m, compute, opts, outcome);
#else
    // No fork(): compute everything here, still via the lease protocol.
    WorkerCtx ctx { dir, m, compute, opts, outcome, {} };
    ctx.done.assign(m.numCells(), 0);
    workerLoop(ctx);
    outcome = ctx.outcome;
#endif
    mergeShardedCells(dir, m, &compute, out, opts, outcome);
    return outcome;
}

} // namespace constable
