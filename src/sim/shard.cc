#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <thread>
#include <unordered_map>

#include "common/check.hh"
#include "common/faultio.hh"
#include "common/logging.hh"
#include "common/obs.hh"

// fork()-based coordinator mode is POSIX-only; other platforms fall back
// to computing the whole matrix in-process (still through the lease
// protocol, so on-disk artifacts are identical).
#if defined(__unix__) || defined(__APPLE__)
#define CONSTABLE_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace constable {

namespace {

namespace fs = std::filesystem;

bool
fileExists(const std::string& path)
{
    std::error_code ec;
    return fs::exists(path, ec) && !ec;
}

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

LeaseRecord
makeLease(int shard_id)
{
    LeaseRecord r;
    r.owner = processOwnerTag();
#if defined(__unix__) || defined(__APPLE__)
    r.pid = static_cast<uint64_t>(::getpid());
#endif
    r.shardId = shard_id;
    r.acquiredUnixSec = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            // informational lease timestamp only; expiry is judged from
            // the file's mtime, never from this field. lint:wallclock
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return r;
}

unsigned
effectiveThreads(const BatchOptions& b)
{
    if (b.threads != 0)
        return b.threads;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, std::min(hw == 0 ? 1u : hw, 16u));
}

/**
 * Background mtime refresh of a held lease while its cell computes, so a
 * fleet can run lease TTLs far shorter than the worst-case cell time
 * (fast crash recovery) without a live worker's cell being benignly
 * double-computed by a reclaimer. The thread dies with the process
 * (SIGKILL included), leaving the mtime to go stale exactly as before --
 * crashed workers' cells are still reclaimed.
 */
class LeaseHeartbeat
{
  public:
    LeaseHeartbeat(std::string path, unsigned ttl_sec)
        : path_(std::move(path)),
          interval_(std::max(50u, ttl_sec * 1000u / 4))
    {
        thread_ = std::thread([this] { loop(); });
    }

    ~LeaseHeartbeat()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_one();
        thread_.join();
    }

    LeaseHeartbeat(const LeaseHeartbeat&) = delete;
    LeaseHeartbeat& operator=(const LeaseHeartbeat&) = delete;

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lk(mu_);
        while (!cv_.wait_for(lk, interval_, [this] { return stop_; })) {
            // An injected heartbeat failure models a stalled refresh: the
            // mtime goes stale, the lease gets reclaimed, and the commit
            // path's ownership check must catch the loss.
            if (faultFailed("lease.heartbeat"))
                continue;
            std::error_code ec;
            fs::last_write_time(path_, fs::file_time_type::clock::now(),
                                ec);
            static ObsCounter& beats = obsCounter("lease.heartbeats");
            beats.add();
        }
    }

    std::string path_;
    std::chrono::milliseconds interval_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Lease age for the claim loop, guarded against clock skew between the
 * mtime writer and this reader (distinct machines on a shared filesystem,
 * or an injected "lease.age" skew clause). A raw negative age on an
 * existing file means the mtime is ahead of our clock: clamp to 0 (the
 * lease reads as freshly refreshed, never as reclaimable), count it, and
 * warn once the skew is large enough to distort expiry decisions. Missing
 * files keep leaseAgeSeconds' negative sentinel untouched.
 */
double
guardedLeaseAge(const std::string& path, double ttl, ShardOutcome& outcome)
{
    double age = leaseAgeSeconds(path) - faultSkewSeconds("lease.age");
    if (age >= 0.0 || !fileExists(path))
        return age;
    ++outcome.skewClamped;
    if (-age > ttl / 2) {
        // Once per lease path: the claim loop polls this every pollMs.
        warnOnce("lease-skew:" + path,
                 "lease '" + path + "' mtime is " + std::to_string(-age) +
                     "s in the future (clock skew beyond TTL/2); treating "
                     "as fresh");
    }
    return 0.0;
}

/** Per-preset Mops/s from the "presets" array of a BENCH_perf.json (the
 *  format bench/perf_regression.cc emits); empty map when unparsable. */
std::unordered_map<std::string, double>
parsePerfPresets(const std::string& json)
{
    std::unordered_map<std::string, double> mops;
    size_t pos = 0;
    for (;;) {
        size_t at = json.find("\"name\":\"", pos);
        if (at == std::string::npos)
            break;
        size_t nameStart = at + 8;
        size_t nameEnd = json.find('"', nameStart);
        if (nameEnd == std::string::npos)
            break;
        std::string name = json.substr(nameStart, nameEnd - nameStart);
        size_t next = json.find("\"name\":\"", nameEnd);
        size_t mopsAt = json.find("\"mops_per_sec\":", nameEnd);
        if (mopsAt != std::string::npos &&
            (next == std::string::npos || mopsAt < next)) {
            mops[name] =
                std::strtod(json.c_str() + mopsAt + 15, nullptr);
        }
        pos = nameEnd;
    }
    return mops;
}

/**
 * Mean observed per-config compute seconds from the `.cost` sidecars
 * committed next to cell checkpoints (workerPass writes one per computed
 * cell). Resumed or partially complete sweeps thus order claims by what
 * cells of THIS sweep actually cost on THIS machine — strictly better
 * information than any static prior. Empty when no sidecar is readable.
 */
std::vector<double>
observedConfigCosts(const std::string& dir, const SweepManifest& m)
{
    std::vector<double> sum(m.numConfigs, 0.0);
    std::vector<size_t> cnt(m.numConfigs, 0);
    size_t seen = 0;
    for (size_t c = 0; c < m.numCells(); ++c) {
        std::string text;
        if (!readFileText(cellFilePath(dir, m, c) + ".cost", text))
            continue;
        double sec = std::strtod(text.c_str(), nullptr);
        if (!(sec > 0.0))
            continue;
        sum[c % m.numConfigs] += sec;
        ++cnt[c % m.numConfigs];
        ++seen;
    }
    if (seen == 0)
        return {};
    std::vector<double> cost(m.numConfigs, 0.0);
    double total = 0.0;
    size_t known = 0;
    for (size_t c = 0; c < m.numConfigs; ++c) {
        if (cnt[c] > 0) {
            cost[c] = sum[c] / static_cast<double>(cnt[c]);
            total += cost[c];
            ++known;
        }
    }
    // Configs with no observation yet get the mean observed cost, same
    // neutral treatment as unknown presets under the static prior.
    double fallback = total / static_cast<double>(known);
    for (size_t c = 0; c < m.numConfigs; ++c) {
        if (cost[c] == 0.0)
            cost[c] = fallback;
    }
    return cost;
}

/**
 * The order a worker scans cells for claiming. Default: stride rotation
 * by shard id (freshly launched fleets fan out instead of racing on cell
 * 0). With cost information, the most expensive configs come first --
 * rows ascending within a config -- which shrinks the tail where one
 * worker holds the last big cell while everyone else polls. Observed
 * per-cell wall-clock from this sweep's `.cost` sidecars takes priority;
 * the static `--cost-model` prior (a BENCH_perf.json, cost = 1 / recorded
 * Mops/s) is the fallback for fresh directories. Claim order never
 * affects results (cells are deterministic); only wall-clock.
 */
std::vector<size_t>
buildClaimOrder(const std::string& dir, const SweepManifest& m,
                const ShardOptions& opts)
{
    const size_t n = m.numCells();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;

    std::vector<double> observed = observedConfigCosts(dir, m);
    if (!observed.empty()) {
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return observed[a % m.numConfigs] >
                                    observed[b % m.numConfigs];
                         });
        return order;
    }

    if (!opts.costModelPath.empty()) {
        std::string json;
        if (readFileText(opts.costModelPath, json)) {
            auto mops = parsePerfPresets(json);
            std::vector<double> cost(m.numConfigs, 0.0);
            double sum = 0.0;
            size_t known = 0;
            for (size_t c = 0; c < m.numConfigs; ++c) {
                auto it = mops.find(m.configNames[c]);
                if (it != mops.end() && it->second > 0.0) {
                    cost[c] = 1.0 / it->second;
                    sum += cost[c];
                    ++known;
                }
            }
            if (known > 0) {
                // Presets the model has never timed get the mean known
                // cost: neither hoarded first nor starved to the tail.
                double fallback = sum / static_cast<double>(known);
                for (size_t c = 0; c < m.numConfigs; ++c) {
                    if (cost[c] == 0.0)
                        cost[c] = fallback;
                }
                std::stable_sort(order.begin(), order.end(),
                                 [&](size_t a, size_t b) {
                                     return cost[a % m.numConfigs] >
                                            cost[b % m.numConfigs];
                                 });
                return order;
            }
        }
        if (opts.shardId <= 0) {
            warn("cost model '" + opts.costModelPath +
                 "' missing or unparsable; claiming cells in stride order");
        }
    }

    if (opts.shardId > 0 && opts.shards > 1) {
        size_t offset =
            (static_cast<size_t>(opts.shardId) * n) / opts.shards;
        std::rotate(order.begin(),
                    order.begin() + static_cast<ptrdiff_t>(offset),
                    order.end());
    }
    return order;
}

/** Mutable per-process view of the claim loop. */
struct WorkerCtx
{
    const std::string& dir;
    const SweepManifest& m;
    const CellFn& compute;
    ShardOptions opts;
    ShardOutcome outcome;
    /** Cell known complete (its checkpoint file was observed). Written
     *  concurrently from batch jobs, but each job owns distinct indices. */
    std::vector<uint8_t> done;
    /** Claim-scan order (buildClaimOrder): cost-ranked or stride-rotated. */
    std::vector<size_t> claimOrder;
};

/**
 * One claim pass: scan cells in claim order, claim up to one per local
 * thread (so a queued claim's lease never sits idle long enough to go
 * stale), compute + commit + release. Returns cells computed.
 */
size_t
workerPass(WorkerCtx& ctx)
{
    const size_t n = ctx.m.numCells();
    const size_t maxClaims =
        std::max<size_t>(1, effectiveThreads(ctx.opts.batch));
    const double ttl = static_cast<double>(ctx.opts.leaseTtlSec);

    std::vector<size_t> claimed;
    LeaseRecord lease = makeLease(ctx.opts.shardId);
    {
        ObsSpan claimSpan("cell.claim", "cell");
        for (size_t i = 0; i < n && claimed.size() < maxClaims; ++i) {
            size_t c = ctx.claimOrder[i];
            if (ctx.done[c])
                continue;
            if (fileExists(cellFilePath(ctx.dir, ctx.m, c))) {
                ctx.done[c] = 1;
                continue;
            }
            std::string lp = cellLeasePath(ctx.dir, ctx.m, c);
            if (tryAcquireLease(lp, lease)) {
                // A successful O_CREAT|O_EXCL claim implies nobody
                // committed the cell between our existence probe and
                // now... except a racer who claimed, computed, committed,
                // AND released in that window; committed cells are never
                // recomputed, so re-probe.
                CONSTABLE_ASSERT(!ctx.done[c],
                                 "claimed a cell already marked done in "
                                 "this process: claim loop state diverged");
                if (fileExists(cellFilePath(ctx.dir, ctx.m, c))) {
                    removeLease(lp);
                    ctx.done[c] = 1;
                    continue;
                }
                claimed.push_back(c);
                continue;
            }
            // Held by someone else: reclaim only if stale (its holder died
            // or lost the filesystem). The remove/re-acquire pair can race
            // with another reclaimer; determinism + atomic commits make a
            // double execution benign, so no stronger protocol is needed.
            double age = guardedLeaseAge(lp, ttl, ctx.outcome);
            if (age >= ttl) {
                removeLease(lp);
                if (tryAcquireLease(lp, lease)) {
                    ++ctx.outcome.reclaimed;
                    static ObsCounter& reclaims =
                        obsCounter("lease.reclaimed");
                    reclaims.add();
                    claimed.push_back(c);
                }
            }
        }
    }
    if (claimed.empty())
        return 0;
    CONSTABLE_ASSERT(claimed.size() <= maxClaims,
                     "claim pass took more cells than local threads");

    std::vector<uint8_t> committed(claimed.size(), 0);
    std::vector<uint8_t> abandoned(claimed.size(), 0);
    forEachJob(claimed.size(), [&](size_t i, Rng&) {
        size_t c = claimed[i];
        std::string lp = cellLeasePath(ctx.dir, ctx.m, c);
        // The claim may have queued behind other jobs: refresh the lease
        // mtime so its TTL measures compute time, not queue time. Same
        // fault point as the background refresh — a lost refresh here just
        // means the TTL measures queue time too.
        if (!faultFailed("lease.heartbeat")) {
            std::error_code ec;
            fs::last_write_time(lp, fs::file_time_type::clock::now(), ec);
        }
        uint64_t cellOps = 0;
        {
            // Keep the lease fresh for as long as the cell computes (and
            // commits): the TTL can now be shorter than a cell.
            LeaseHeartbeat heartbeat(lp, ctx.opts.leaseTtlSec);
            auto computeStart = std::chrono::steady_clock::now();
            RunResult r = [&] {
                ObsSpan span("cell.compute", "cell");
                return ctx.compute(c);
            }();
            double computeSec = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    computeStart)
                                    .count();
            cellOps = r.instructions;
            // Commit-time ownership check: if the heartbeat stalled past
            // the TTL, a reclaimer owns this cell now — committing over
            // its lease would double-commit, so abandon instead. The
            // retry absorbs transient read failures, which would
            // otherwise masquerade as a lost lease.
            LeaseRecord cur;
            bool owned = retryWithBackoff("lease.read", [&] {
                return readLease(lp, cur);
            }) && cur.owner == lease.owner;
            if (!owned) {
                warn("lease for cell " + std::to_string(c) +
                     " was lost during compute (heartbeat stalled past "
                     "TTL?); abandoning the cell to its new owner");
                static ObsCounter& lost = obsCounter("shard.abandoned");
                lost.add();
                abandoned[i] = 1;
                return;
            }
            ObsSpan span("cell.commit", "cell");
            if (!retryWithBackoff("ckpt.cell.commit", [&] {
                    return saveRunResult(cellFilePath(ctx.dir, ctx.m, c), r,
                                         /*durable=*/true);
                })) {
                fatal("shard worker cannot write cell checkpoint in '" +
                      ctx.dir + "'");
            }
            // Advisory wall-clock sidecar: later claim passes (and
            // resumed sweeps) order by observed per-config cost instead
            // of the static BENCH prior. Best-effort by design — a lost
            // sidecar only costs scheduling quality, never correctness.
            char costBuf[32];
            int costLen = std::snprintf(costBuf, sizeof(costBuf), "%.6f\n",
                                        computeSec);
            writeFileAtomic(cellFilePath(ctx.dir, ctx.m, c) + ".cost",
                            std::vector<uint8_t>(costBuf,
                                                 costBuf + costLen));
        }
        // Commit precedes release: between saveRunResult's rename and
        // removeLease, observers see both the cell file and the lease,
        // which the claim scan tolerates (file check comes first).
        CONSTABLE_ASSERT(fileExists(cellFilePath(ctx.dir, ctx.m, c)),
                         "lease released before the cell checkpoint became "
                         "visible: commit/release order inverted");
        removeLease(lp);
        ctx.done[c] = 1;
        committed[i] = 1;
        obsProgressCellDone(cellOps);
    }, ctx.opts.batch);
    size_t ran = 0;
    for (size_t i = 0; i < claimed.size(); ++i) {
        ran += committed[i];
        ctx.outcome.abandoned += abandoned[i];
    }
    ctx.outcome.computed += ran;
    return ran;
}

/** Claim until every cell of the matrix has a committed checkpoint file
 *  (this process's cells and everyone else's). */
void
workerLoop(WorkerCtx& ctx)
{
    const size_t n = ctx.m.numCells();
    for (;;) {
        size_t ran = workerPass(ctx);
        size_t doneCells = 0;
        for (size_t c = 0; c < n; ++c) {
            if (ctx.done[c] || fileExists(cellFilePath(ctx.dir, ctx.m, c)))
                ++doneCells;
        }
        // Fleet-wide progress: count *everyone's* committed cells, not
        // just this worker's, so the status line tracks the sweep.
        obsProgressUpdate(doneCells);
        if (doneCells == n)
            return;
        if (ran == 0)
            sleepMs(ctx.opts.pollMs);
    }
}

#ifdef CONSTABLE_HAVE_FORK

/** Fork `shards` single-threaded workers over the claim loop and reap
 *  them. Child processes _exit() without running static destructors: they
 *  inherited the coordinator's thread pool, whose worker threads do not
 *  exist after fork(). */
void
forkWorkers(const std::string& dir, const SweepManifest& m,
            const CellFn& compute, const ShardOptions& opts,
            ShardOutcome& outcome)
{
    std::vector<pid_t> pids;
    for (unsigned k = 0; k < opts.shards; ++k) {
        pid_t pid = ::fork();
        if (pid < 0) {
            warn("fork() failed for shard worker " + std::to_string(k) +
                 "; continuing with fewer workers");
            break;
        }
        if (pid == 0) {
            ShardOptions w = opts;
            w.shardId = static_cast<int>(k);
            w.batch.threads = 1; // never touch the inherited pool
            WorkerCtx ctx { dir, m, compute, w, {}, {}, {} };
            ctx.done.assign(m.numCells(), 0);
            ctx.claimOrder = buildClaimOrder(dir, m, w);
            workerLoop(ctx);
            // _exit() skips the atexit trace/metrics writers on purpose
            // (they belong to the coordinator); hand the child's obs state
            // back through a partial file instead, lane-tagged by shard.
            if (obsArmed()) {
                obsSavePartial(dir + "/obs-shard-" + std::to_string(k) +
                                   ".partial",
                               "shard-" + std::to_string(k));
            }
            std::fflush(nullptr);
            ::_exit(0);
        }
        pids.push_back(pid);
        ++outcome.workersForked;
    }
    for (pid_t pid : pids) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0 ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            ++outcome.workersFailed;
            warn("shard worker pid " + std::to_string(pid) +
                 " exited abnormally; its cells will be recovered");
        }
    }
    if (obsArmed()) {
        for (unsigned k = 0; k < opts.shards; ++k) {
            std::string p =
                dir + "/obs-shard-" + std::to_string(k) + ".partial";
            if (!fileExists(p))
                continue; // worker died before saving: cells recover, obs
                          // from that shard is simply absent
            obsMergePartial(p);
            std::error_code ec;
            fs::remove(p, ec);
        }
    }
}

#endif // CONSTABLE_HAVE_FORK

} // namespace

std::string
cellFilePath(const std::string& dir, const SweepManifest& m, size_t cell)
{
    size_t row = cell / m.numConfigs;
    size_t cfg = cell % m.numConfigs;
    return dir + "/cell-" + std::to_string(row) + "-" +
           std::to_string(cfg) + ".rr";
}

std::string
cellLeasePath(const std::string& dir, const SweepManifest& m, size_t cell)
{
    return cellFilePath(dir, m, cell) + ".lease";
}

void
writeOrVerifyManifest(const std::string& dir, const SweepManifest& m)
{
    std::string path = dir + "/manifest.sweep";
    SweepManifest existing;
    if (!loadManifest(path, existing)) {
        // Save-then-reload, retried: a transient write failure is absorbed
        // by the backoff, and a torn write (half a manifest under a valid
        // rename) fails the reload and is rewritten rather than trusted.
        // The reload also arbitrates two sweeps racing on an empty
        // directory (last rename sticks, so exactly one survives).
        bool ok = false;
        for (unsigned a = 0; a < 3 && !ok; ++a) {
            ok = retryWithBackoff("sweep.manifest.write",
                                  [&] { return saveManifest(path, m); }) &&
                 loadManifest(path, existing);
        }
        if (!ok)
            fatal("cannot write and re-read sweep manifest '" + path + "'");
    }
    if (!(existing == m)) {
        fatal("checkpoint directory '" + dir + "' belongs to sweep '" +
              existing.experiment + "' (" + std::to_string(existing.numRows) +
              "x" + std::to_string(existing.numConfigs) +
              "), not to this sweep '" + m.experiment +
              "'; use a distinct --checkpoint-dir per sweep");
    }
}

bool
mergeShardedCells(const std::string& dir, const SweepManifest& m,
                  const CellFn* compute, std::vector<RunResult>& out,
                  const ShardOptions& opts, ShardOutcome& outcome)
{
    const size_t n = m.numCells();
    out.resize(n);
    bool complete = true;
    for (size_t c = 0; c < n; ++c) {
        if (loadRunResult(cellFilePath(dir, m, c), out[c])) {
            ++outcome.loaded;
            continue;
        }
        // Missing, or present but failing its FNV checksum (a worker died
        // after rename was scheduled but before the data hit disk, or the
        // file was mangled): regenerate rather than aborting the merge.
        std::string path = cellFilePath(dir, m, c);
        if (fileExists(path)) {
            ++outcome.corruptCells;
            static ObsCounter& corrupt = obsCounter("shard.corrupt_cells");
            corrupt.add();
            warn("cell checkpoint '" + path +
                 "' is present but corrupt; regenerating");
        }
        if (compute) {
            out[c] = (*compute)(c);
            // Save-then-verify: a checkpoint that keeps failing its own
            // reload (bad disk, torn-write injection) must not be
            // rewritten forever — after quarantineAfter attempts the bad
            // file is moved aside and reported; the in-memory result
            // keeps the merged matrix complete either way.
            RunResult check;
            bool verified = false;
            for (unsigned a = 0; a < opts.quarantineAfter && !verified;
                 ++a) {
                verified = saveRunResult(path, out[c], /*durable=*/true) &&
                           loadRunResult(path, check);
            }
            if (!verified) {
                std::string qdir = dir + "/quarantine";
                std::error_code qec;
                fs::create_directories(qdir, qec);
                fs::rename(path,
                           qdir + "/cell-" + std::to_string(c / m.numConfigs) +
                               "-" + std::to_string(c % m.numConfigs) + ".rr",
                           qec);
                ++outcome.quarantined;
                static ObsCounter& quarantined =
                    obsCounter("shard.quarantined");
                quarantined.add();
                warn("cell checkpoint '" + path + "' failed verification " +
                     std::to_string(opts.quarantineAfter) +
                     " times; quarantined into '" + qdir + "'");
            }
            removeLease(cellLeasePath(dir, m, c));
            ++outcome.computed;
        } else {
            complete = false;
        }
    }
    // Orphaned tmp files (a writer SIGKILLed mid-write) are invisible to
    // the commit protocol but accumulate; sweep old ones here.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        double age = leaseAgeSeconds(entry.path().string());
        if (age >= static_cast<double>(opts.leaseTtlSec)) {
            std::error_code rec;
            if (fs::remove(entry.path(), rec) && !rec)
                ++outcome.staleTmpRemoved;
        }
    }
    return complete;
}

ShardOutcome
runShardedCells(const std::string& dir, const SweepManifest& m,
                const CellFn& compute, std::vector<RunResult>& out,
                const ShardOptions& opts)
{
    ShardOutcome outcome;
    writeOrVerifyManifest(dir, m);
    if (m.numCells() == 0) {
        out.clear();
        return outcome;
    }
    // Resumed-work accounting must be taken before any worker runs: after
    // the sweep every cell has a file, so a post-hoc count says nothing.
    for (size_t c = 0; c < m.numCells(); ++c) {
        if (fileExists(cellFilePath(dir, m, c)))
            ++outcome.preExisting;
    }

    if (opts.shardId >= 0) {
        // Worker mode: independently launched process of a fleet sharing
        // this directory. Claim until the matrix is complete, then merge
        // so every shard returns the same full result.
        WorkerCtx ctx { dir, m, compute, opts, outcome, {}, {} };
        ctx.done.assign(m.numCells(), 0);
        ctx.claimOrder = buildClaimOrder(dir, m, opts);
        workerLoop(ctx);
        outcome = ctx.outcome;
        mergeShardedCells(dir, m, &compute, out, opts, outcome);
        return outcome;
    }

#ifdef CONSTABLE_HAVE_FORK
    // Coordinator mode: fork the fleet, reap it, assemble the matrix.
    forkWorkers(dir, m, compute, opts, outcome);
#else
    // No fork(): compute everything here, still via the lease protocol.
    WorkerCtx ctx { dir, m, compute, opts, outcome, {}, {} };
    ctx.done.assign(m.numCells(), 0);
    ctx.claimOrder = buildClaimOrder(dir, m, opts);
    workerLoop(ctx);
    outcome = ctx.outcome;
#endif
    mergeShardedCells(dir, m, &compute, out, opts, outcome);
    return outcome;
}

} // namespace constable
