/**
 * @file
 * Sharded multi-process sweep execution: a process tier above the batch
 * thread pool. A sweep's {row x config} cells are deterministic functions
 * of their index, its checkpoint files are mergeable (PR 2), so any number
 * of processes sharing one checkpoint directory can cooperate on a matrix:
 *
 *  - Cells are claimed dynamically through atomic O_CREAT|O_EXCL lease
 *    files next to the cell checkpoints. A claimed cell is computed,
 *    committed with an fsync'd atomic rename, and its lease released.
 *
 *  - Leases expire by file mtime: a SIGKILLed worker's claims go stale
 *    after leaseTtlSec and are reclaimed by survivors, so crashed cells
 *    are re-run, never lost. Because cells are deterministic and commits
 *    are atomic renames of byte-identical results, the (rare) reclaim race
 *    where two workers compute one cell is benign.
 *
 *  - Two launch modes share the claim loop. Coordinator mode
 *    (opts.shards > 1, shardId < 0) fork()s N single-threaded workers,
 *    waits for them, then merges the checkpoint files — missing or
 *    checksum-failing cells are recomputed locally, so the merged matrix
 *    is always complete and bit-identical to a single-process run.
 *    Worker mode (shardId >= 0, set via CONSTABLE_SHARD_ID or --shard-id)
 *    is for independently launched processes on machines sharing a
 *    filesystem: each claims cells until the matrix is done, then merges,
 *    so every shard returns the same full result.
 *
 *  - A manifest record written once into the directory pins the sweep's
 *    identity (experiment, suite hash, grid shape, config names); a
 *    process whose sweep disagrees fails fast instead of interleaving
 *    incompatible cells.
 */

#ifndef CONSTABLE_SIM_SHARD_HH
#define CONSTABLE_SIM_SHARD_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/batch.hh"
#include "trace/serialize.hh"

namespace constable {

/** Process-level parallelism knobs (ExperimentOptions::shard()). */
struct ShardOptions
{
    /** Safety cap on the worker count a coordinator will fork. */
    static constexpr unsigned kMaxShards = 256;

    /** Cooperating worker count: fork count in coordinator mode, expected
     *  fleet size (for claim-order striding) in worker mode. */
    unsigned shards = 1;
    /** >= 0: this process is worker k of `shards` on a shared checkpoint
     *  directory; it claims cells instead of forking. */
    int shardId = -1;
    /** A lease older than this is considered orphaned and is reclaimed.
     *  Must exceed the worst-case single-cell runtime. */
    unsigned leaseTtlSec = 120;
    /** Poll interval while waiting on cells other workers hold. */
    unsigned pollMs = 100;
    /** A cell whose regenerated checkpoint still fails verification after
     *  this many save/reload attempts is quarantined (moved into
     *  <dir>/quarantine/) instead of being rewritten forever. */
    unsigned quarantineAfter = 3;
    /** Optional cost model (a prior BENCH_perf.json): cells of presets
     *  with lower recorded Mops/s are claimed first, shrinking the tail
     *  where one worker holds the last big cell while the rest poll.
     *  Empty, missing or unparsable files fall back to stride order. */
    std::string costModelPath;
    /** Thread/seed knobs for cells this process computes itself. Forked
     *  workers are forced serial (threads = 1): process-level parallelism
     *  replaces the pool, and a fork()ed child must never touch the
     *  global pool it inherited from the coordinator. */
    BatchOptions batch;

    bool active() const { return shards > 1 || shardId >= 0; }
};

/** What a sharded execution did locally (stats for logs/benches/tests). */
struct ShardOutcome
{
    size_t computed = 0;      ///< cells this process simulated
    size_t loaded = 0;        ///< cells merged from checkpoint files
    /** Cells whose checkpoint file already existed when this execution
     *  started — i.e. genuinely resumed work, as opposed to `loaded`,
     *  which counts the final merge and so always spans the matrix. */
    size_t preExisting = 0;
    size_t reclaimed = 0;     ///< stale leases this process reclaimed
    size_t staleTmpRemoved = 0; ///< orphaned tmp files cleaned at merge
    size_t workersForked = 0;
    size_t workersFailed = 0; ///< forked workers that exited abnormally
    /** Cells whose checkpoint file existed at merge but failed its
     *  checksum (torn write / mangled file); each is regenerated. */
    size_t corruptCells = 0;
    /** Cells whose regenerated checkpoint kept failing verification and
     *  were moved into <dir>/quarantine/ (in-memory result still used). */
    size_t quarantined = 0;
    /** Cells this worker computed but did not commit because its lease
     *  was lost (reclaimed by another worker) before the commit. */
    size_t abandoned = 0;
    /** Lease-age reads whose raw age was negative (file mtime ahead of
     *  the reader's clock — cross-machine skew) and were clamped to 0. */
    size_t skewClamped = 0;
};

/** Computes one cell of the matrix; must be a pure function of the index
 *  (same index -> bit-identical RunResult in every process). */
using CellFn = std::function<RunResult(size_t cell)>;

/** Checkpoint file of one cell: <dir>/cell-<row>-<cfg>.rr (the same layout
 *  single-process checkpoint/resume uses, so the two tiers interoperate). */
std::string cellFilePath(const std::string& dir, const SweepManifest& m,
                         size_t cell);

/** Lease file guarding a cell's claim: <cell path>.lease. */
std::string cellLeasePath(const std::string& dir, const SweepManifest& m,
                          size_t cell);

/**
 * Write the manifest into `dir` if absent, or verify the existing one
 * matches `m`; fatal() on a mismatch (the directory belongs to a
 * different sweep). Safe under concurrent callers: writers race with
 * byte-identical atomic renames.
 */
void writeOrVerifyManifest(const std::string& dir, const SweepManifest& m);

/**
 * Execute all cells of `m` cooperatively and fill `out` (resized to
 * m.numCells()) with the complete merged matrix. Dispatches on opts:
 * coordinator mode forks workers and merges; worker mode claims cells and
 * merges when the matrix is complete. `dir` must exist.
 */
ShardOutcome runShardedCells(const std::string& dir, const SweepManifest& m,
                             const CellFn& compute,
                             std::vector<RunResult>& out,
                             const ShardOptions& opts);

/**
 * Merge-only entry: load every cell of `m` from `dir` into `out`.
 * Missing or corrupt cells are recomputed via `compute` when provided,
 * otherwise reported by returning false (out is left partially filled;
 * absent cells are default RunResults). Also sweeps orphaned *.tmp.*
 * files older than opts.leaseTtlSec.
 */
bool mergeShardedCells(const std::string& dir, const SweepManifest& m,
                       const CellFn* compute, std::vector<RunResult>& out,
                       const ShardOptions& opts, ShardOutcome& outcome);

} // namespace constable

#endif
