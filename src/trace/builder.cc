#include "trace/builder.hh"

#include <unordered_map>

#include "common/logging.hh"

namespace constable {

ProgramBuilder::ProgramBuilder(uint64_t seed, unsigned num_arch_regs)
    : rngState(seed), numArchRegs(num_arch_regs), regs(kMaxArchRegs, 0)
{
    if (num_arch_regs != kNumArchRegs && num_arch_regs != kNumArchRegsApx)
        fatal("ProgramBuilder: numArchRegs must be 16 or 32");
    // Callee-saved-flavoured pool first; APX registers extend it.
    persistentPool = { RBX, R12, R13, R14, R15, RSI, RDI, R8, R9 };
    if (num_arch_regs == kNumArchRegsApx) {
        for (uint8_t r = R16; r < R16 + 16; ++r)
            persistentPool.push_back(r);
    }
    regs[RSP] = 0x7fff'ffff'0000ull;
    regs[RBP] = 0x7fff'ffff'0000ull;
}

uint8_t
ProgramBuilder::allocPersistentReg()
{
    if (nextPersistent >= persistentPool.size())
        return kNoReg;
    return persistentPool[nextPersistent++];
}

uint8_t
ProgramBuilder::scratch(unsigned i) const
{
    static const uint8_t pool[] = { RAX, RCX, RDX, R10, R11 };
    return pool[i % 5];
}

uint64_t
ProgramBuilder::regVal(uint8_t r) const
{
    if (r >= kMaxArchRegs)
        panic("regVal: bad register");
    return regs[r];
}

void
ProgramBuilder::writeReg(uint8_t r, uint64_t v)
{
    if (r == kNoReg)
        return;
    if (r >= numArchRegs)
        panic("writeReg: register out of range for this ISA mode");
    regs[r] = v;
}

void
ProgramBuilder::push(MicroOp op)
{
    ops.push_back(op);
}

void
ProgramBuilder::loadImm(PC pc, uint8_t dst, uint64_t value)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Alu;
    op.dst = dst;
    push(op);
    writeReg(dst, value);
}

void
ProgramBuilder::alu(PC pc, uint8_t dst, uint8_t s0, uint8_t s1)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Alu;
    op.dst = dst;
    op.src[0] = s0;
    op.src[1] = s1;
    push(op);
    uint64_t v = Rng::splitmix(regVal(s0 == kNoReg ? 0 : s0) + pc);
    if (s1 != kNoReg)
        v += regVal(s1);
    writeReg(dst, v);
}

void
ProgramBuilder::mul(PC pc, uint8_t dst, uint8_t s0, uint8_t s1)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Mul;
    op.dst = dst;
    op.src[0] = s0;
    op.src[1] = s1;
    push(op);
    writeReg(dst, regVal(s0) * (regVal(s1) | 1));
}

void
ProgramBuilder::div(PC pc, uint8_t dst, uint8_t s0, uint8_t s1)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Div;
    op.dst = dst;
    op.src[0] = s0;
    op.src[1] = s1;
    push(op);
    writeReg(dst, regVal(s0) / (regVal(s1) | 1));
}

void
ProgramBuilder::fp(PC pc, uint8_t dst, uint8_t s0, uint8_t s1)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::FpOp;
    op.dst = dst;
    op.src[0] = s0;
    op.src[1] = s1;
    push(op);
    writeReg(dst, Rng::splitmix(regVal(s0) ^ pc));
}

void
ProgramBuilder::move(PC pc, uint8_t dst, uint8_t src)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Move;
    op.dst = dst;
    op.src[0] = src;
    push(op);
    writeReg(dst, regVal(src));
}

void
ProgramBuilder::zero(PC pc, uint8_t dst)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::ZeroIdiom;
    op.dst = dst;
    push(op);
    writeReg(dst, 0);
}

void
ProgramBuilder::nop(PC pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Nop;
    push(op);
}

uint64_t
ProgramBuilder::load(PC pc, uint8_t dst, AddrMode mode, Addr addr,
                     uint8_t base, uint8_t index, uint8_t size)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Load;
    op.addrMode = mode;
    op.dst = dst;
    op.src[0] = base;
    op.src[1] = index;
    op.size = size;
    op.effAddr = addr;
    op.value = image.read(addr, size);
    push(op);
    writeReg(dst, op.value);
    return op.value;
}

void
ProgramBuilder::store(PC pc, AddrMode mode, Addr addr, uint64_t value,
                      uint8_t base, uint8_t index, uint8_t size)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Store;
    op.addrMode = mode;
    op.src[0] = base;
    op.src[1] = index;
    op.size = size;
    op.effAddr = addr;
    op.value = value;
    push(op);
    image.write(addr, value, size);
}

void
ProgramBuilder::branch(PC pc, bool taken, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Branch;
    op.taken = taken;
    op.target = target;
    push(op);
}

void
ProgramBuilder::jump(PC pc, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Jump;
    op.taken = true;
    op.target = target;
    push(op);
}

void
ProgramBuilder::stackAdj(PC pc, int64_t delta)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::StackAdj;
    op.dst = RSP;
    op.src[0] = RSP;
    push(op);
    writeReg(RSP, regVal(RSP) + static_cast<uint64_t>(delta));
}

void
ProgramBuilder::snoopHere(Addr addr)
{
    snoops.push_back(SnoopEvent{ ops.size(), addr });
}

Trace
ProgramBuilder::finish(std::string name, std::string category)
{
    Trace t;
    t.name = std::move(name);
    t.category = std::move(category);
    t.numArchRegs = numArchRegs;
    t.ops = std::move(ops);
    t.snoops = std::move(snoops);
    ops.clear();
    snoops.clear();
    return t;
}

std::vector<std::string>
validateTrace(const Trace& trace)
{
    std::vector<std::string> issues;
    // For each register, the index of the last op that wrote it.
    std::vector<int64_t> lastWrite(kMaxArchRegs, -1);
    struct LoadHist { Addr addr; int64_t idx; bool valid = false; };
    std::unordered_map<PC, LoadHist> lastLoad;

    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const MicroOp& op = trace.ops[i];
        if (op.isLoad()) {
            auto& h = lastLoad[op.pc];
            if (h.valid && h.addr != op.effAddr) {
                // Address changed: require a source-register write in
                // between (or the load must have at least one source).
                bool writtenBetween = false;
                for (uint8_t s : op.src) {
                    // ">=" admits a pointer-chase load that writes its own
                    // base register (dst == src): that write is "between"
                    // the two instances in dataflow order.
                    if (s != kNoReg && lastWrite[s] >= h.idx)
                        writtenBetween = true;
                }
                if (!writtenBetween) {
                    issues.push_back(
                        "load pc=" + std::to_string(op.pc) +
                        " changed address without a source-register write" +
                        " at index " + std::to_string(i));
                }
            }
            h.addr = op.effAddr;
            h.idx = static_cast<int64_t>(i);
            h.valid = true;
        }
        if (op.dst != kNoReg)
            lastWrite[op.dst] = static_cast<int64_t>(i);
    }
    return issues;
}

} // namespace constable
