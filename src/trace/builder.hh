/**
 * @file
 * ProgramBuilder: the functional half of the synthetic workload generator.
 * Fragments (trace/fragments.hh) call into the builder to emit micro-ops;
 * the builder maintains architectural register values and a memory image so
 * every emitted load carries its architecturally-correct (golden) value.
 *
 * Generator invariant (checked by validateTrace): between two dynamic
 * instances of the same static load PC, the effective address may change
 * only if one of that load's source registers was written in between, and
 * the loaded value may change only through an intervening store. This is
 * exactly the contract Constable's safety argument (paper §5) relies on.
 */

#ifndef CONSTABLE_TRACE_BUILDER_HH
#define CONSTABLE_TRACE_BUILDER_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "isa/microop.hh"
#include "trace/mem_image.hh"
#include "trace/trace.hh"

namespace constable {

/** Emission-side builder for synthetic programs. */
class ProgramBuilder
{
  public:
    ProgramBuilder(uint64_t seed, unsigned num_arch_regs);

    Rng& rng() { return rngState; }
    MemImage& mem() { return image; }
    unsigned numRegs() const { return numArchRegs; }
    size_t numOps() const { return ops.size(); }

    /**
     * Allocate a callee-saved-style register that no other fragment will
     * write. @return kNoReg when the pool is exhausted (more likely with 16
     * architectural registers than with 32 — the APX effect).
     */
    uint8_t allocPersistentReg();

    /** i-th rotating scratch register (shared; any fragment may clobber). */
    uint8_t scratch(unsigned i) const;

    /** Current architectural value of a register. */
    uint64_t regVal(uint8_t r) const;

    // --- emission helpers (each appends exactly one micro-op) ---

    /** Materialize an immediate (models mov r, imm; no source registers). */
    void loadImm(PC pc, uint8_t dst, uint64_t value);

    /** Single-cycle ALU op; result value derived from the sources. */
    void alu(PC pc, uint8_t dst, uint8_t s0, uint8_t s1 = kNoReg);

    /** 3-cycle integer multiply. */
    void mul(PC pc, uint8_t dst, uint8_t s0, uint8_t s1);

    /** Long-latency divide. */
    void div(PC pc, uint8_t dst, uint8_t s0, uint8_t s1);

    /** Floating-point op (vector port group). */
    void fp(PC pc, uint8_t dst, uint8_t s0, uint8_t s1 = kNoReg);

    /** Register-register move (move-eliminable at rename). */
    void move(PC pc, uint8_t dst, uint8_t src);

    /** Zero idiom (xor r,r; eliminated at rename). */
    void zero(PC pc, uint8_t dst);

    void nop(PC pc);

    /**
     * Emit a load. Reads the memory image for the golden value and writes
     * the destination register.
     * @return the loaded value.
     */
    uint64_t load(PC pc, uint8_t dst, AddrMode mode, Addr addr,
                  uint8_t base = kNoReg, uint8_t index = kNoReg,
                  uint8_t size = 8);

    /** Emit a store and update the memory image. */
    void store(PC pc, AddrMode mode, Addr addr, uint64_t value,
               uint8_t base = kNoReg, uint8_t index = kNoReg,
               uint8_t size = 8);

    /** Conditional branch with a concrete outcome. */
    void branch(PC pc, bool taken, Addr target);

    /** Unconditional direct jump (branch-foldable at rename). */
    void jump(PC pc, Addr target);

    /** rsp += delta (constant-foldable at rename; writes RSP). */
    void stackAdj(PC pc, int64_t delta);

    /** Queue a snoop to arrive before the next emitted op retires. */
    void snoopHere(Addr addr);

    /** Move the accumulated ops/snoops into a Trace. */
    Trace finish(std::string name, std::string category);

  private:
    void writeReg(uint8_t r, uint64_t v);
    void push(MicroOp op);

    Rng rngState;
    unsigned numArchRegs;
    std::vector<uint64_t> regs;
    MemImage image;
    std::vector<MicroOp> ops;
    std::vector<SnoopEvent> snoops;
    std::vector<uint8_t> persistentPool;
    size_t nextPersistent = 0;
};

/**
 * Check the generator invariant over a whole trace.
 * @return list of human-readable violations (empty when the trace is sound).
 */
std::vector<std::string> validateTrace(const Trace& trace);

} // namespace constable

#endif
