#include "trace/fragments.hh"

#include <algorithm>

namespace constable {

// ---------------------------------------------------------------- globals

GlobalConstFragment::GlobalConstFragment(PC pc_base, Addr data_base,
                                         unsigned num_globals,
                                         unsigned mutate_period)
    : Fragment(pc_base, data_base), numGlobals(std::max(1u, num_globals)),
      mutatePeriod(mutate_period)
{
}

void
GlobalConstFragment::setup(ProgramBuilder& b)
{
    // Stable globals at dataBase; one mutable global on its own line.
    for (unsigned i = 0; i < numGlobals; ++i)
        b.mem().write(dataBase + 8 * i, b.rng().next() | 1, 8);
    b.mem().write(dataBase + 0x1000, b.rng().next() | 1, 8);
}

void
GlobalConstFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    // One stable global per burst, round-robin: long inter-occurrence
    // distance per static PC (paper Fig 3d: PC-relative loads mostly 250+).
    unsigned i = rot;
    rot = (rot + 1) % numGlobals;
    uint8_t r = b.scratch(0);
    b.load(pc(2 * i), r, AddrMode::PcRel, dataBase + 8 * i);
    // Dependent chain: the constant feeds real work (index computation,
    // bounds checks), so breaking the load's data dependence matters.
    b.alu(pc(2 * i + 1), b.scratch(1), r);
    b.mul(pc(40 + i), b.scratch(3), b.scratch(1), r);

    // The mutable global: loaded every burst; occasionally overwritten so
    // its loads are not global-stable.
    unsigned base = 2 * numGlobals;
    uint8_t m = b.scratch(2);
    b.load(pc(base), m, AddrMode::PcRel, dataBase + 0x1000);
    b.alu(pc(base + 1), b.scratch(3), m, b.scratch(1));
    if (mutatePeriod && burstCount % mutatePeriod == 0) {
        b.store(pc(base + 2), AddrMode::PcRel, dataBase + 0x1000,
                b.rng().next() | 1);
    }
}

// ---------------------------------------------------------------- inlined

InlinedFuncFragment::InlinedFuncFragment(PC pc_base, Addr stack_off,
                                         unsigned num_args,
                                         StoreMode store_mode,
                                         unsigned body_ops)
    : Fragment(pc_base, 0), stackOff(stack_off),
      numArgs(std::clamp(num_args, 1u, 4u)), mode(store_mode),
      bodyOps(body_ops)
{
}

void
InlinedFuncFragment::setup(ProgramBuilder& b)
{
    argVals.resize(numArgs);
    for (unsigned i = 0; i < numArgs; ++i) {
        argVals[i] = b.rng().next() | 1;
        // Initial argument spill: part of pre-trace state, plus one real
        // store so MRN has a producer to learn from.
        Addr a = b.regVal(RSP) + stackOff + 8 * i;
        b.store(pc(60 + i), AddrMode::StackRel, a, argVals[i], RSP);
    }
    // With APX's 32 registers the compiler can keep some args register-
    // resident instead of reloading them from the stack (appendix B).
    if (b.numRegs() == kNumArchRegsApx) {
        unsigned cap = (numArgs + 1) / 2; // register pressure still binds
        for (unsigned i = 0; i < cap; ++i) {
            uint8_t r = b.allocPersistentReg();
            if (r == kNoReg)
                break;
            argRegs.push_back(r);
            b.loadImm(pc(70 + i), r, argVals[i]);
            ++regResident;
        }
    }
}

void
InlinedFuncFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    Addr frame = b.regVal(RSP) + stackOff;

    // Argument reloads: stack-relative loads, or register moves when APX
    // register-residency removed the load.
    for (unsigned i = 0; i < numArgs; ++i) {
        uint8_t r = b.scratch(i);
        if (i < regResident)
            b.move(pc(20 + i), r, argRegs[i]);
        else
            b.load(pc(20 + i), r, AddrMode::StackRel, frame + 8 * i, RSP);
    }
    // Function body.
    for (unsigned j = 0; j < bodyOps; ++j) {
        uint8_t d = b.scratch(j % numArgs);
        if (j % 5 == 4)
            b.mul(pc(30 + j), d, b.scratch(j % 3), b.scratch((j + 1) % 3));
        else
            b.alu(pc(30 + j), d, b.scratch(j % 3), b.scratch((j + 1) % 3));
    }
    // Result spill (changing value; plain store traffic). Lives on its own
    // cacheline of the frame: compilers lay stable argument slots apart
    // from mutable spill slots, which is what keeps the paper's cacheline-
    // granular AMT viable (§6.6).
    b.store(pc(50), AddrMode::StackRel, frame + 0x80,
            b.regVal(b.scratch(0)), RSP);

    // Argument (re-)stores for the NEXT call happen at the tail of the
    // burst, far from the reloads above: the store's address resolves long
    // before the next instance renames, so the AMT reset lands in time
    // (coverage loss, not an ordering-violation storm — §9.3.1).
    if (mode == StoreMode::Silent) {
        for (unsigned i = 0; i < numArgs; ++i)
            b.store(pc(10 + i), AddrMode::StackRel, frame + 8 * i,
                    argVals[i], RSP);
    } else if (mode == StoreMode::Changing) {
        for (unsigned i = 0; i < numArgs; ++i) {
            argVals[i] = b.rng().next() | 1;
            b.store(pc(10 + i), AddrMode::StackRel, frame + 8 * i,
                    argVals[i], RSP);
        }
    }
}

// ----------------------------------------------------------------- object

ObjectFieldFragment::ObjectFieldFragment(PC pc_base, Addr data_base,
                                         unsigned num_fields,
                                         unsigned iters_per_burst,
                                         unsigned rewrite_period,
                                         bool accum_field)
    : Fragment(pc_base, data_base), numFields(std::clamp(num_fields, 1u, 6u)),
      itersPerBurst(std::max(1u, iters_per_burst)),
      rewritePeriod(rewrite_period), accumField(accum_field)
{
}

void
ObjectFieldFragment::setup(ProgramBuilder& b)
{
    objAddr = dataBase;
    // Field 0 of the object is a pointer to a sub-object; the remaining
    // stable fields live in the sub-object. Eliminating the pointer load
    // lets the dependent field loads issue immediately — the load-to-load
    // chain the paper's Fig 2 motivates.
    Addr subObj = dataBase + 0x1000;
    b.mem().write(objAddr, subObj, 8);
    for (unsigned f = 0; f < numFields; ++f)
        b.mem().write(subObj + 8 * f, b.rng().next() | 1, 8);
    // Accumulator field on its own cacheline so its stores don't collide
    // with the stable fields in a cacheline-granular AMT.
    b.mem().write(objAddr + 0x100, 1000, 8);

    baseReg = b.allocPersistentReg();
    if (baseReg == kNoReg)
        baseReg = RBP; // fall back to frame register (never re-written here)
    b.loadImm(pc(63), baseReg, objAddr);
}

void
ObjectFieldFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    if (rewritePeriod && burstCount % rewritePeriod == 0) {
        // Rewrite the base pointer with the same value: loads stay global-
        // stable but the register write resets their elimination (the
        // paper's 23.3% coverage-loss category).
        b.loadImm(pc(62), baseReg, objAddr);
    }
    Addr subObj = dataBase + 0x1000;
    for (unsigned it = 0; it < itersPerBurst; ++it) {
        // Root pointer load: global-stable, register-relative, and on the
        // address-critical path of every field load below.
        uint8_t p = b.scratch(4);
        b.load(pc(60), p, AddrMode::RegRel, objAddr, baseReg);
        // Iteration-local reduction seeded from the pointer: the chain
        // starts at the (eliminable) load, and iterations stay independent
        // so the out-of-order window can overlap them.
        b.alu(pc(61), b.scratch(3), p);
        for (unsigned f = 0; f < numFields; ++f) {
            uint8_t r = b.scratch(f % 3);
            b.load(pc(2 * f), r, AddrMode::RegRel, subObj + 8 * f, p);
            b.alu(pc(2 * f + 1), b.scratch(3), r, b.scratch(3));
        }
        if (accumField && burstCount % 4 == 0 && it == 0) {
            unsigned base = 2 * numFields;
            uint64_t cur = b.mem().read(objAddr + 0x100, 8);
            uint8_t r = b.scratch(0);
            b.load(pc(base), r, AddrMode::RegRel, objAddr + 0x100, baseReg);
            b.alu(pc(base + 1), r, r);
            b.store(pc(base + 2), AddrMode::RegRel, objAddr + 0x100, cur + 7,
                    baseReg);
        }
    }
    // Occasional sub-object field update at the burst tail: objects are not
    // frozen in real programs. Keeps the dependent field loads below the
    // stability threshold (no arm/reset churn on the SLD write ports) while
    // the root pointer stays eliminable; far from the reloads, so the AMT
    // reset lands before the next instance renames.
    {
        unsigned f = static_cast<unsigned>(burstCount % numFields);
        uint8_t q = b.scratch(1);
        b.load(pc(58), q, AddrMode::RegRel, objAddr, baseReg);
        b.store(pc(56), AddrMode::RegRel, subObj + 8 * f,
                b.rng().next() | 1, q);
    }
}

// ------------------------------------------------------------------- call

CallFragment::CallFragment(PC pc_base, unsigned num_params,
                           StoreMode store_mode)
    : Fragment(pc_base, 0), numParams(std::clamp(num_params, 1u, 4u)),
      mode(store_mode)
{
}

void
CallFragment::setup(ProgramBuilder& b)
{
    paramVals.resize(numParams);
    for (unsigned i = 0; i < numParams; ++i)
        paramVals[i] = b.rng().next() | 1;
}

void
CallFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    // Caller: open a frame and pass parameters through the stack.
    b.stackAdj(pc(0), -64);
    Addr frame = b.regVal(RSP);
    for (unsigned i = 0; i < numParams; ++i) {
        if (mode == StoreMode::Changing)
            paramVals[i] = b.rng().next() | 1;
        b.store(pc(1 + i), AddrMode::StackRel, frame + 8 * i, paramVals[i],
                RSP);
    }
    b.jump(pc(8), pcBase + 0x40);
    // Callee: reload parameters (store->load pairs MRN can rename) and work.
    for (unsigned i = 0; i < numParams; ++i)
        b.load(pc(16 + i), b.scratch(i), AddrMode::StackRel, frame + 8 * i,
               RSP);
    for (unsigned j = 0; j < 4; ++j)
        b.alu(pc(24 + j), b.scratch(j % 3), b.scratch(j % 2),
              b.scratch((j + 1) % 3));
    b.stackAdj(pc(30), 64);
    b.jump(pc(31), pcBase + 4);
}

// ----------------------------------------------------------------- stream

StreamFragment::StreamFragment(PC pc_base, Addr data_base,
                               unsigned footprint_bytes,
                               unsigned elems_per_burst)
    : Fragment(pc_base, data_base),
      footprintBytes(std::max(footprint_bytes, 512u)),
      elemsPerBurst(std::max(1u, elems_per_burst))
{
}

void
StreamFragment::setup(ProgramBuilder& b)
{
    // Fully-initialized input region: unwritten gaps would read as zero and
    // create artificial value predictability.
    for (Addr off = 0; off < footprintBytes; off += 8)
        b.mem().write(dataBase + off, b.rng().next() | 1, 8);
    baseReg = b.allocPersistentReg();
    if (baseReg != kNoReg)
        b.loadImm(pc(63), baseReg, dataBase);
}

void
StreamFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    uint8_t base = baseReg;
    if (base == kNoReg) {
        base = b.scratch(4);
        b.loadImm(pc(62), base, dataBase);
    }
    uint8_t idx = b.scratch(3);
    b.loadImm(pc(0), idx, pos);
    for (unsigned e = 0; e < elemsPerBurst; ++e) {
        uint8_t r = b.scratch(e % 3);
        b.load(pc(1), r, AddrMode::RegRel, dataBase + pos, base, idx);
        // Element-local two-deep dependent work hanging off the load.
        b.alu(pc(2), r, r);
        b.alu(pc(5), b.scratch((e + 1) % 3), r);
        b.store(pc(3), AddrMode::RegRel,
                dataBase + (footprintBytes / 2) + pos / 2,
                b.regVal(r), base, idx);
        pos = (pos + 8) % (footprintBytes / 2);
        b.alu(pc(4), idx, idx); // idx advance (source-register write)
    }
}

// ---------------------------------------------------------------- strided

StridedValueFragment::StridedValueFragment(PC pc_base, Addr data_base,
                                           unsigned footprint_bytes,
                                           unsigned elems_per_burst)
    : Fragment(pc_base, data_base),
      footprintBytes(std::max(footprint_bytes, 512u)),
      elemsPerBurst(std::max(1u, elems_per_burst))
{
}

void
StridedValueFragment::setup(ProgramBuilder& b)
{
    // Values form an arithmetic sequence over the sweep so the load's value
    // stream is stride-predictable (EVES E-Stride) even though its address
    // changes every instance (Constable cannot eliminate it).
    uint64_t v = 1000;
    for (Addr off = 0; off < footprintBytes; off += 8, v += 7)
        b.mem().write(dataBase + off, v, 8);
    baseReg = b.allocPersistentReg();
    if (baseReg != kNoReg)
        b.loadImm(pc(63), baseReg, dataBase);
}

void
StridedValueFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    uint8_t base = baseReg;
    if (base == kNoReg) {
        base = b.scratch(4);
        b.loadImm(pc(62), base, dataBase);
    }
    uint8_t idx = b.scratch(3);
    b.loadImm(pc(0), idx, pos);
    for (unsigned e = 0; e < elemsPerBurst; ++e) {
        uint8_t r = b.scratch(e % 2);
        b.load(pc(1), r, AddrMode::RegRel, dataBase + pos, base, idx);
        // Element-local dependent pair off the (value-predictable) load.
        b.alu(pc(2), b.scratch(2), r);
        b.alu(pc(3), b.scratch(2), b.scratch(2));
        pos = (pos + 8) % footprintBytes;
        b.alu(pc(4), idx, idx);
    }
}

// ------------------------------------------------------- predictable chase

PredictableChaseFragment::PredictableChaseFragment(PC pc_base,
                                                   Addr data_base,
                                                   unsigned ring_elems,
                                                   unsigned steps_per_burst)
    : Fragment(pc_base, data_base), ringElems(std::max(8u, ring_elems)),
      stepsPerBurst(std::max(1u, steps_per_burst))
{
}

void
PredictableChaseFragment::setup(ProgramBuilder& b)
{
    // Allocation-order list: node i at dataBase + 64*i points to node i+1,
    // so loaded values advance by a constant 64-byte stride until the wrap.
    for (unsigned i = 0; i < ringElems; ++i) {
        Addr node = dataBase + static_cast<Addr>(i) * 64;
        Addr next = dataBase +
                    static_cast<Addr>((i + 1) % ringElems) * 64;
        b.mem().write(node, next, 8);
    }
    ptrReg = b.allocPersistentReg();
    if (ptrReg == kNoReg)
        ptrReg = RBP;
    b.loadImm(pc(63), ptrReg, dataBase);
}

void
PredictableChaseFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    for (unsigned s = 0; s < stepsPerBurst; ++s) {
        Addr cur = b.regVal(ptrReg);
        b.load(pc(0), ptrReg, AddrMode::RegRel, cur, ptrReg); // p = [p]
        b.alu(pc(1), b.scratch(0), ptrReg);
    }
}

// ------------------------------------------------------------------ chase

PointerChaseFragment::PointerChaseFragment(PC pc_base, Addr data_base,
                                           unsigned ring_elems,
                                           unsigned steps_per_burst)
    : Fragment(pc_base, data_base), ringElems(std::max(4u, ring_elems)),
      stepsPerBurst(std::max(1u, steps_per_burst))
{
}

void
PointerChaseFragment::setup(ProgramBuilder& b)
{
    // Shuffled singly-linked ring across the footprint.
    std::vector<Addr> slots(ringElems);
    for (unsigned i = 0; i < ringElems; ++i)
        slots[i] = dataBase + static_cast<Addr>(i) * 64;
    for (unsigned i = ringElems - 1; i > 0; --i)
        std::swap(slots[i], slots[b.rng().below(i + 1)]);
    for (unsigned i = 0; i < ringElems; ++i)
        b.mem().write(slots[i], slots[(i + 1) % ringElems], 8);

    ptrReg = b.allocPersistentReg();
    homeSlot = dataBase + static_cast<Addr>(ringElems) * 64 + 128;
    if (ptrReg == kNoReg) {
        b.mem().write(homeSlot, slots[0], 8);
    } else {
        b.loadImm(pc(63), ptrReg, slots[0]);
    }
}

void
PointerChaseFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    uint8_t p = ptrReg;
    if (p == kNoReg) {
        p = b.scratch(4);
        // Reload the chase pointer from its spill slot (value changes every
        // burst, so this load is not stable).
        b.load(pc(60), p, AddrMode::PcRel, homeSlot);
    }
    for (unsigned s = 0; s < stepsPerBurst; ++s) {
        Addr cur = b.regVal(p);
        b.load(pc(0), p, AddrMode::RegRel, cur, p); // p = [p]
        b.alu(pc(1), b.scratch(0), p);
    }
    if (ptrReg == kNoReg)
        b.store(pc(61), AddrMode::PcRel, homeSlot, b.regVal(p));
}

// ------------------------------------------------------------ accumulator

AccumulatorFragment::AccumulatorFragment(PC pc_base, Addr data_base,
                                         unsigned num_counters)
    : Fragment(pc_base, data_base), numCounters(std::max(1u, num_counters))
{
}

void
AccumulatorFragment::setup(ProgramBuilder& b)
{
    for (unsigned i = 0; i < numCounters; ++i)
        b.mem().write(dataBase + 64 * i, 17 + 13 * i, 8);
}

void
AccumulatorFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    unsigned i = rot;
    rot = (rot + 1) % numCounters;
    Addr a = dataBase + 64 * i;
    uint64_t cur = b.mem().read(a, 8);
    uint8_t r = b.scratch(0);
    // load; add stride; store back. The load's value advances by a fixed
    // stride per instance: E-Stride-predictable, never Constable-stable.
    b.load(pc(3 * i), r, AddrMode::PcRel, a);
    b.alu(pc(3 * i + 1), r, r);
    b.store(pc(3 * i + 2), AddrMode::PcRel, a, cur + 13);
}

// ---------------------------------------------------------------- branchy

BranchyFragment::BranchyFragment(PC pc_base, unsigned num_branches,
                                 double random_frac)
    : Fragment(pc_base, 0), numBranches(std::max(1u, num_branches)),
      randomFrac(random_frac)
{
}

void
BranchyFragment::setup(ProgramBuilder&)
{
}

void
BranchyFragment::burst(ProgramBuilder& b)
{
    ++burstCount;
    for (unsigned j = 0; j < numBranches; ++j) {
        b.alu(pc(3 * j), b.scratch(j % 3), b.scratch((j + 1) % 3));
        bool taken;
        if (b.rng().uniform() < randomFrac) {
            taken = b.rng().chance(0.5);  // data-dependent: mispredicts
        } else {
            taken = ((burstCount >> (j % 3)) & 1) != 0; // patterned: learned
        }
        b.branch(pc(3 * j + 1), taken, pcBase + 0x800 + 16 * j);
    }
}

} // namespace constable
