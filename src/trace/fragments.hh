/**
 * @file
 * Code fragments composed by the workload generator. Each fragment models
 * one empirically-observed source of (non-)stable load behaviour from the
 * paper's §4.1-4.2 characterization:
 *
 *  - GlobalConstFragment: PC-relative loads of runtime constants
 *    (541.leela_r s_rng example) — global-stable, long reuse distance.
 *  - InlinedFuncFragment: stack-relative loads of inlined-function argument
 *    slots (557.xz_r rc_shift_low example) — global-stable when the args are
 *    stored once; blocked by silent stores when re-stored with equal values.
 *  - ObjectFieldFragment: register-relative loads of immutable object fields
 *    in tight loops — global-stable, short reuse distance; a base-pointer
 *    rewrite models the "source register written" coverage-loss category.
 *  - CallFragment: non-inlined calls whose parameter stores/loads exercise
 *    Memory Renaming and RSP adjustment (resets stack-load elimination).
 *  - StreamFragment / StridedValueFragment / PointerChaseFragment /
 *    AccumulatorFragment: non-stable load populations (streaming, value-
 *    stride-predictable, dependent-chain, read-modify-write).
 *  - BranchyFragment: patterned + random branches for wrong-path behaviour.
 */

#ifndef CONSTABLE_TRACE_FRAGMENTS_HH
#define CONSTABLE_TRACE_FRAGMENTS_HH

#include <memory>
#include <vector>

#include "trace/builder.hh"

namespace constable {

/** How an InlinedFuncFragment / CallFragment treats its argument slots. */
enum class StoreMode : uint8_t {
    Once,       ///< stored at setup only: loads are global-stable & eliminable
    Silent,     ///< re-stored every call with identical values (silent stores)
    Changing,   ///< re-stored with fresh values: loads are not stable
};

/** Base class for all code fragments. */
class Fragment
{
  public:
    Fragment(PC pc_base, Addr data_base)
        : pcBase(pc_base), dataBase(data_base) {}
    virtual ~Fragment() = default;

    /** One-time initialization (memory image, persistent registers). */
    virtual void setup(ProgramBuilder& b) = 0;

    /** Emit one burst (a call / loop iteration / stream chunk). */
    virtual void burst(ProgramBuilder& b) = 0;

  protected:
    PC pc(unsigned i) const { return pcBase + 4 * i; }

    PC pcBase;
    Addr dataBase;
    uint64_t burstCount = 0;
};

/** PC-relative loads of runtime constants. */
class GlobalConstFragment : public Fragment
{
  public:
    GlobalConstFragment(PC pc_base, Addr data_base, unsigned num_globals,
                        unsigned mutate_period);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned numGlobals;
    unsigned mutatePeriod;   ///< 0 = never store to the mutable global
    unsigned rot = 0;
};

/** Stack-relative loads of inlined-function argument slots. */
class InlinedFuncFragment : public Fragment
{
  public:
    InlinedFuncFragment(PC pc_base, Addr stack_off, unsigned num_args,
                        StoreMode mode, unsigned body_ops);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    Addr stackOff;
    unsigned numArgs;
    StoreMode mode;
    unsigned bodyOps;
    std::vector<uint64_t> argVals;
    /** With 32 architectural registers (APX), args the compiler could keep
     *  in registers: indexes < regResident use moves instead of loads. */
    unsigned regResident = 0;
    std::vector<uint8_t> argRegs;
};

/** Register-relative loads of immutable object fields in a tight loop. */
class ObjectFieldFragment : public Fragment
{
  public:
    ObjectFieldFragment(PC pc_base, Addr data_base, unsigned num_fields,
                        unsigned iters_per_burst, unsigned rewrite_period,
                        bool accum_field);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned numFields;
    unsigned itersPerBurst;
    unsigned rewritePeriod;  ///< 0 = base register never rewritten
    bool accumField;
    uint8_t baseReg = kNoReg;
    Addr objAddr = 0;
};

/** Non-inlined call: parameter stores + loads (MRN-friendly), RSP adjust. */
class CallFragment : public Fragment
{
  public:
    CallFragment(PC pc_base, unsigned num_params, StoreMode mode);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned numParams;
    StoreMode mode;
    std::vector<uint64_t> paramVals;
};

/** Streaming loads/stores over a large array (non-stable addresses). */
class StreamFragment : public Fragment
{
  public:
    StreamFragment(PC pc_base, Addr data_base, unsigned footprint_bytes,
                   unsigned elems_per_burst);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned footprintBytes;
    unsigned elemsPerBurst;
    uint8_t baseReg = kNoReg;
    uint64_t pos = 0;
};

/** Loads whose values follow an arithmetic stride (EVES-predictable). */
class StridedValueFragment : public Fragment
{
  public:
    StridedValueFragment(PC pc_base, Addr data_base, unsigned footprint_bytes,
                         unsigned elems_per_burst);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned footprintBytes;
    unsigned elemsPerBurst;
    uint8_t baseReg = kNoReg;
    uint64_t pos = 0;
};

/**
 * Dependent pointer chase over a ring laid out in allocation order: each
 * node points to the next at a fixed byte stride, so the loaded pointer
 * values form an arithmetic sequence. A value predictor (EVES E-Stride)
 * breaks the serialized chain completely; Constable cannot, because the
 * load's address changes every instance. This is the classic LVP win the
 * paper's EVES comparison relies on.
 */
class PredictableChaseFragment : public Fragment
{
  public:
    PredictableChaseFragment(PC pc_base, Addr data_base, unsigned ring_elems,
                             unsigned steps_per_burst);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned ringElems;
    unsigned stepsPerBurst;
    uint8_t ptrReg = kNoReg;
};

/** Dependent pointer chase over a shuffled ring (latency-bound). */
class PointerChaseFragment : public Fragment
{
  public:
    PointerChaseFragment(PC pc_base, Addr data_base, unsigned ring_elems,
                         unsigned steps_per_burst);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned ringElems;
    unsigned stepsPerBurst;
    uint8_t ptrReg = kNoReg;
    Addr homeSlot = 0;       ///< spill slot when no persistent reg available
};

/** Read-modify-write memory accumulator (value stride: EVES-friendly). */
class AccumulatorFragment : public Fragment
{
  public:
    AccumulatorFragment(PC pc_base, Addr data_base, unsigned num_counters);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned numCounters;
    unsigned rot = 0;
};

/** Patterned + random conditional branches. */
class BranchyFragment : public Fragment
{
  public:
    BranchyFragment(PC pc_base, unsigned num_branches, double random_frac);
    void setup(ProgramBuilder& b) override;
    void burst(ProgramBuilder& b) override;

  private:
    unsigned numBranches;
    double randomFrac;
};

} // namespace constable

#endif
