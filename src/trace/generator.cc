#include "trace/generator.hh"

#include <memory>

#include "common/logging.hh"

namespace constable {

Trace
generateTrace(const WorkloadSpec& spec)
{
    ProgramBuilder b(spec.seed, spec.numArchRegs);

    struct Entry
    {
        std::unique_ptr<Fragment> frag;
        unsigned bursts;
    };
    std::vector<Entry> frags;
    std::vector<Addr> snoopTargets;

    unsigned idx = 0;
    auto nextPc = [&idx]() {
        return static_cast<PC>(0x400000 + idx * 0x1000);
    };
    auto nextData = [&idx]() {
        return static_cast<Addr>(0x10000000ull + idx * 0x200000ull);
    };
    unsigned stackFrames = 0;
    auto nextStackOff = [&stackFrames]() {
        return static_cast<Addr>(0x100 + 0x100 * stackFrames++);
    };

    for (unsigned i = 0; i < spec.nGlobalConst; ++i, ++idx) {
        Addr data = nextData();
        for (unsigned g = 0; g < spec.globalsPerFrag; ++g)
            snoopTargets.push_back(data + 8 * g);
        frags.push_back({ std::make_unique<GlobalConstFragment>(
                              nextPc(), data, spec.globalsPerFrag,
                              spec.globalMutatePeriod),
                          spec.globalBursts });
    }
    auto addInlined = [&](unsigned n, StoreMode mode) {
        for (unsigned i = 0; i < n; ++i, ++idx) {
            frags.push_back({ std::make_unique<InlinedFuncFragment>(
                                  nextPc(), nextStackOff(), spec.inlinedArgs,
                                  mode, spec.inlinedBodyOps),
                              spec.inlinedBursts });
        }
    };
    addInlined(spec.nInlinedOnce, StoreMode::Once);
    addInlined(spec.nInlinedSilent, StoreMode::Silent);
    addInlined(spec.nInlinedChanging, StoreMode::Changing);

    for (unsigned i = 0; i < spec.nObject; ++i, ++idx) {
        frags.push_back({ std::make_unique<ObjectFieldFragment>(
                              nextPc(), nextData(), spec.objectFields,
                              spec.objectIters, spec.objectRewritePeriod,
                              spec.objectAccum),
                          spec.objectBursts });
    }
    for (unsigned i = 0; i < spec.nCall; ++i, ++idx) {
        frags.push_back({ std::make_unique<CallFragment>(
                              nextPc(), spec.callParams, spec.callMode),
                          spec.callBursts });
    }
    unsigned footprint = spec.footprintKB * 1024;
    for (unsigned i = 0; i < spec.nStream; ++i, ++idx) {
        frags.push_back({ std::make_unique<StreamFragment>(
                              nextPc(), nextData(), footprint,
                              spec.streamElems),
                          spec.streamBursts });
    }
    for (unsigned i = 0; i < spec.nStrided; ++i, ++idx) {
        frags.push_back({ std::make_unique<StridedValueFragment>(
                              nextPc(), nextData(), footprint,
                              spec.stridedElems),
                          1 });
    }
    for (unsigned i = 0; i < spec.nChase; ++i, ++idx) {
        frags.push_back({ std::make_unique<PointerChaseFragment>(
                              nextPc(), nextData(),
                              spec.chaseFootprintKB * 1024 / 64,
                              spec.chaseSteps),
                          1 });
    }
    for (unsigned i = 0; i < spec.nPredChase; ++i, ++idx) {
        frags.push_back({ std::make_unique<PredictableChaseFragment>(
                              nextPc(), nextData(),
                              spec.predChaseFootprintKB * 1024 / 64,
                              spec.predChaseSteps),
                          1 });
    }
    for (unsigned i = 0; i < spec.nAccum; ++i, ++idx) {
        frags.push_back({ std::make_unique<AccumulatorFragment>(
                              nextPc(), nextData(), spec.accumCounters),
                          spec.accumBursts });
    }
    for (unsigned i = 0; i < spec.nBranchy; ++i, ++idx) {
        frags.push_back({ std::make_unique<BranchyFragment>(
                              nextPc(), spec.branchBranches,
                              spec.branchRandomFrac),
                          1 });
    }

    if (frags.empty())
        fatal("generateTrace: spec has no fragments");

    for (auto& e : frags)
        e.frag->setup(b);

    unsigned maxBursts = 1;
    for (auto& e : frags)
        maxBursts = std::max(maxBursts, e.bursts);

    // Interleaved round-robin schedule: fragment f runs e.bursts times per
    // round, spread across sub-rounds so its loads keep a regular
    // inter-occurrence distance.
    uint64_t nextSnoopAt = spec.snoopPerKilOp > 0
        ? static_cast<uint64_t>(1000.0 / spec.snoopPerKilOp)
        : 0;
    while (b.numOps() < spec.targetOps) {
        for (unsigned sub = 0; sub < maxBursts; ++sub) {
            for (auto& e : frags) {
                if (sub < e.bursts)
                    e.frag->burst(b);
            }
            if (nextSnoopAt && b.numOps() >= nextSnoopAt &&
                !snoopTargets.empty()) {
                b.snoopHere(
                    snoopTargets[b.rng().below(snoopTargets.size())]);
                nextSnoopAt = b.numOps() +
                    static_cast<uint64_t>(1000.0 / spec.snoopPerKilOp);
            }
            if (b.numOps() >= spec.targetOps)
                break;
        }
    }

    return b.finish(spec.name, spec.category);
}

} // namespace constable
