/**
 * @file
 * Workload specification and trace generation driver. A WorkloadSpec fully
 * determines a trace (deterministic from the seed); the paper's 90-trace
 * suite (workloads/suite.hh) is a library of these specs.
 */

#ifndef CONSTABLE_TRACE_GENERATOR_HH
#define CONSTABLE_TRACE_GENERATOR_HH

#include <string>

#include "trace/fragments.hh"
#include "trace/trace.hh"

namespace constable {

/**
 * Tunable description of one synthetic workload. Fragment counts select how
 * many independent instances of each fragment kind the program contains;
 * "bursts" control how often a fragment runs per scheduler round, which sets
 * the inter-occurrence distance of its static loads.
 */
struct WorkloadSpec
{
    std::string name = "workload";
    std::string category = "Client";
    uint64_t seed = 1;
    size_t targetOps = 120'000;
    unsigned numArchRegs = 16;

    // PC-relative runtime constants.
    unsigned nGlobalConst = 1;
    unsigned globalsPerFrag = 6;
    unsigned globalMutatePeriod = 0;   ///< 0 = stable forever
    unsigned globalBursts = 1;

    // Inlined functions with stack-argument reloads.
    unsigned nInlinedOnce = 1;
    unsigned nInlinedSilent = 0;
    unsigned nInlinedChanging = 0;
    unsigned inlinedArgs = 3;
    unsigned inlinedBodyOps = 6;
    unsigned inlinedBursts = 2;

    // Object-field loops (register-relative).
    unsigned nObject = 1;
    unsigned objectFields = 3;
    unsigned objectIters = 2;
    unsigned objectBursts = 2;
    unsigned objectRewritePeriod = 0;  ///< 0 = base register never rewritten
    bool objectAccum = true;

    // Non-inlined calls (MRN traffic + RSP adjustment).
    unsigned nCall = 0;
    unsigned callParams = 2;
    StoreMode callMode = StoreMode::Changing;
    unsigned callBursts = 1;

    // Non-stable load populations.
    unsigned nStream = 1;
    unsigned streamElems = 6;
    unsigned streamBursts = 1;
    unsigned nStrided = 0;
    unsigned stridedElems = 6;
    unsigned nChase = 0;
    unsigned chaseSteps = 4;
    /** Pointer-chase working set (linked structures mostly cache-resident;
     *  large values model memory-latency-bound chasing). */
    unsigned chaseFootprintKB = 8;
    /** Allocation-order linked lists: value-predictable chains (EVES wins,
     *  Constable cannot help). */
    unsigned nPredChase = 0;
    unsigned predChaseSteps = 3;
    unsigned predChaseFootprintKB = 64;
    unsigned nAccum = 0;
    unsigned accumCounters = 2;
    unsigned accumBursts = 1;

    // Control flow.
    unsigned nBranchy = 1;
    unsigned branchBranches = 3;
    double branchRandomFrac = 0.12;

    /** Footprint per streaming/chasing fragment (cache pressure). */
    unsigned footprintKB = 64;

    /** Injected snoops per 1000 ops (multicore interference, §6.4.4). */
    double snoopPerKilOp = 0.0;
};

/** Generate the full trace for a spec. Deterministic. */
Trace generateTrace(const WorkloadSpec& spec);

} // namespace constable

#endif
