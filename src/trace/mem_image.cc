#include "trace/mem_image.hh"

#include "common/logging.hh"

namespace constable {

uint8_t
MemImage::readByte(Addr addr) const
{
    auto it = pages.find(addr >> kPageShift);
    if (it == pages.end())
        return 0;
    return (*it->second)[addr & (kPageBytes - 1)];
}

void
MemImage::writeByte(Addr addr, uint8_t b)
{
    auto& page = pages[addr >> kPageShift];
    if (!page)
        page = std::make_unique<Page>(Page{});
    (*page)[addr & (kPageBytes - 1)] = b;
}

uint64_t
MemImage::read(Addr addr, unsigned size) const
{
    if (size == 0 || size > 8)
        panic("MemImage::read: bad size");
    uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
MemImage::write(Addr addr, uint64_t value, unsigned size)
{
    if (size == 0 || size > 8)
        panic("MemImage::write: bad size");
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

} // namespace constable
