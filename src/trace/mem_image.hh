/**
 * @file
 * Sparse byte-addressable memory image used by the functional side of the
 * trace generator. Backed by 4 KiB pages allocated on demand.
 */

#ifndef CONSTABLE_TRACE_MEM_IMAGE_HH
#define CONSTABLE_TRACE_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace constable {

/**
 * Little-endian sparse memory. Reads of never-written bytes return zero,
 * matching zero-initialized process memory.
 */
class MemImage
{
  public:
    static constexpr unsigned kPageBytes = 4096;
    static constexpr unsigned kPageShift = 12;

    /** Read @p size bytes (1..8) at @p addr, little-endian. */
    uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes (1..8) of @p value at @p addr. */
    void write(Addr addr, uint64_t value, unsigned size);

    /** Number of resident pages (footprint diagnostic). */
    size_t numPages() const { return pages.size(); }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, uint8_t b);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace constable

#endif
