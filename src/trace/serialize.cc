#include "trace/serialize.hh"

#include "common/faultio.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <system_error>

// mmap-backed trace loads: map the cache file instead of slurping it into a
// heap buffer (saves a full copy + allocation per warm-suite trace load).
// Platforms without POSIX mmap use the plain read path below.
#if defined(__unix__) || defined(__APPLE__)
#define CONSTABLE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#endif

namespace constable {

namespace {

// Magic numbers lead every file so a wrong-type or zero-length file is
// rejected before any payload parsing.
constexpr uint32_t kTraceMagic = 0x43545243;    // "CTRC"
constexpr uint32_t kResultMagic = 0x43525253;   // "CRRS"
constexpr uint32_t kManifestMagic = 0x464d5343; // "CSMF"
constexpr uint32_t kLeaseMagic = 0x534c5343;    // "CSLS"

/** Little-endian append-only encoder. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<uint64_t>(v));
    }

    void
    str(const std::string& s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /** Append the checksum of everything written so far. */
    void
    sealChecksum()
    {
        u64(fnv1a(buf_.data(), buf_.size()));
    }

    std::vector<uint8_t> take() { return std::move(buf_); }
    const std::vector<uint8_t>& bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked decoder; every read reports success so callers bail out
 *  cleanly on truncated input instead of reading past the end. */
class ByteReader
{
  public:
    ByteReader(const uint8_t* data, size_t n) : data_(data), n_(n) {}

    bool
    u8(uint8_t& v)
    {
        if (pos_ + 1 > n_)
            return false;
        v = data_[pos_++];
        return true;
    }

    // Multi-byte reads go through memcpy, never a reinterpret_cast of
    // data_ + pos_: the buffer may be an mmap view at arbitrary offset
    // (loadTrace), where a cast load is an unaligned access UBSan rejects.
    // memcpy compiles to a single load on every target we build for, and
    // the explicit byteswap keeps the on-disk format little-endian.
    bool
    u32(uint32_t& v)
    {
        if (pos_ + 4 > n_)
            return false;
        std::memcpy(&v, data_ + pos_, 4);
        if constexpr (std::endian::native == std::endian::big)
            v = __builtin_bswap32(v);
        pos_ += 4;
        return true;
    }

    bool
    u64(uint64_t& v)
    {
        if (pos_ + 8 > n_)
            return false;
        std::memcpy(&v, data_ + pos_, 8);
        if constexpr (std::endian::native == std::endian::big)
            v = __builtin_bswap64(v);
        pos_ += 8;
        return true;
    }

    bool
    f64(double& v)
    {
        uint64_t bits;
        if (!u64(bits))
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    bool
    str(std::string& s)
    {
        uint32_t len;
        if (!u32(len) || pos_ + len > n_)
            return false;
        s.assign(reinterpret_cast<const char*>(data_ + pos_), len);
        pos_ += len;
        return true;
    }

    size_t remaining() const { return n_ - pos_; }

  private:
    const uint8_t* data_;
    size_t n_;
    size_t pos_ = 0;
};

/** Split payload from trailing checksum and verify it. */
bool
checkedPayload(const uint8_t* bytes, size_t n, size_t& payload_len)
{
    if (n < 8)
        return false;
    payload_len = n - 8;
    ByteReader tail(bytes + payload_len, 8);
    uint64_t want;
    tail.u64(want);
    return fnv1a(bytes, payload_len) == want;
}

/** Per-write unique tmp suffix: pid + process-random nonce + counter.
 *  Sharded sweeps have many processes (and threads) writing into one
 *  directory, possibly targeting the same entry after a lease reclaim; a
 *  pid-only suffix would let two threads of one process collide. */
std::string
tmpSuffix()
{
    static const uint64_t nonce = [] {
        std::random_device rd;
        return (static_cast<uint64_t>(rd()) << 32) ^ rd();
    }();
    static std::atomic<uint64_t> counter { 0 };
    char buf[64];
    std::snprintf(buf, sizeof(buf), ".tmp.%llu.%08llx.%llu",
                  static_cast<unsigned long long>(::getpid()),
                  static_cast<unsigned long long>(nonce & 0xffffffffull),
                  static_cast<unsigned long long>(
                      counter.fetch_add(1, std::memory_order_relaxed)));
    return buf;
}

/** Flush a directory's metadata so a just-renamed entry survives a crash
 *  (best-effort: not every filesystem needs or supports it). */
void
fsyncDirOf(const std::string& path)
{
#if defined(__unix__) || defined(__APPLE__)
    std::string dir = std::filesystem::path(path).parent_path().string();
    if (dir.empty())
        dir = ".";
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

} // namespace

bool
writeFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes,
                bool durable)
{
    if (faultFailed("atomic.tmp.open"))
        return false;
    std::string tmp = path + tmpSuffix();
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    if (faultFailed("atomic.tmp.write")) {
        std::fclose(f);
        std::remove(tmp.c_str());
        return false;
    }
    // A pending torn write (armed here or at a higher-level point like
    // ckpt.cell.commit:torn) silently commits half the payload: the write
    // and rename both "succeed", and only the trailing checksum can tell.
    size_t n = bytes.size();
    if (faultConsumeTorn())
        n /= 2;
    size_t wrote = n == 0 ? 0 : std::fwrite(bytes.data(), 1, n, f);
    bool ok = wrote == n;
    if (ok && durable) {
        ok = std::fflush(f) == 0 && !faultFailed("atomic.tmp.fsync");
    }
#if defined(__unix__) || defined(__APPLE__)
    if (ok && durable)
        ok = ::fsync(::fileno(f)) == 0;
#endif
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    // Crash at atomic.commit.rename models death just before the commit
    // (an orphaned tmp file); crash at atomic.dir.fsync models death just
    // after it (the file is committed but its dir entry not yet synced).
    if (faultFailed("atomic.commit.rename")) {
        std::remove(tmp.c_str());
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    if (durable && !faultFailed("atomic.dir.fsync"))
        fsyncDirOf(path);
    return true;
}

namespace {

void
putOp(ByteWriter& w, const MicroOp& op)
{
    w.u64(op.pc);
    w.u8(static_cast<uint8_t>(op.cls));
    w.u8(static_cast<uint8_t>(op.addrMode));
    for (uint8_t s : op.src)
        w.u8(s);
    w.u8(op.dst);
    w.u8(op.size);
    w.u64(op.effAddr);
    w.u64(op.value);
    w.u8(op.taken ? 1 : 0);
    w.u64(op.target);
}

bool
getOp(ByteReader& r, MicroOp& op)
{
    uint8_t cls, mode, taken;
    bool ok = r.u64(op.pc) && r.u8(cls) && r.u8(mode) && r.u8(op.src[0]) &&
              r.u8(op.src[1]) && r.u8(op.src[2]) && r.u8(op.dst) &&
              r.u8(op.size) && r.u64(op.effAddr) && r.u64(op.value) &&
              r.u8(taken) && r.u64(op.target);
    if (!ok)
        return false;
    op.cls = static_cast<OpClass>(cls);
    op.addrMode = static_cast<AddrMode>(mode);
    op.taken = taken != 0;
    return true;
}

} // namespace

bool
readFileBytes(const std::string& path, std::vector<uint8_t>& bytes)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    if (sz < 0) {
        std::fclose(f);
        return false;
    }
    std::fseek(f, 0, SEEK_SET);
    bytes.resize(static_cast<size_t>(sz));
    // A 0-byte file (a touched-but-never-written cell) must read as an
    // empty buffer, not fread into a null data() pointer.
    size_t got =
        bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    return got == bytes.size();
}

bool
readFileText(const std::string& path, std::string& out)
{
    std::vector<uint8_t> bytes;
    if (!readFileBytes(path, bytes))
        return false;
    out.assign(bytes.begin(), bytes.end());
    return true;
}

uint64_t
fnv1a(const uint8_t* data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1a(const std::string& s)
{
    return fnv1a(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

std::string
sanitizeFileName(std::string name)
{
    for (char& c : name) {
        bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
        if (!keep)
            c = '_';
    }
    return name;
}

uint64_t
traceContentHash(const Trace& t)
{
    auto bytes = serializeTrace(t);
    return fnv1a(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------- traces

std::vector<uint8_t>
serializeTrace(const Trace& t)
{
    ByteWriter w;
    w.u32(kTraceMagic);
    w.u32(kSerializeVersion);
    w.str(t.name);
    w.str(t.category);
    w.u32(t.numArchRegs);
    w.u64(t.ops.size());
    for (const MicroOp& op : t.ops)
        putOp(w, op);
    w.u64(t.snoops.size());
    for (const SnoopEvent& s : t.snoops) {
        w.u64(s.beforeSeq);
        w.u64(s.addr);
    }
    w.sealChecksum();
    return w.take();
}

bool
deserializeTrace(const uint8_t* bytes, size_t n, Trace& out)
{
    size_t payload;
    if (!checkedPayload(bytes, n, payload))
        return false;
    ByteReader r(bytes, payload);
    uint32_t magic, version;
    if (!r.u32(magic) || magic != kTraceMagic || !r.u32(version) ||
        version != kSerializeVersion)
        return false;
    Trace t;
    uint32_t regs;
    uint64_t nOps, nSnoops;
    if (!r.str(t.name) || !r.str(t.category) || !r.u32(regs) || !r.u64(nOps))
        return false;
    t.numArchRegs = regs;
    // Per-op payload is 40 bytes; reject absurd counts before reserving.
    if (nOps > r.remaining() / 40 + 1)
        return false;
    t.ops.resize(nOps);
    for (MicroOp& op : t.ops) {
        if (!getOp(r, op))
            return false;
    }
    if (!r.u64(nSnoops) || nSnoops > r.remaining() / 16 + 1)
        return false;
    t.snoops.resize(nSnoops);
    for (SnoopEvent& s : t.snoops) {
        if (!r.u64(s.beforeSeq) || !r.u64(s.addr))
            return false;
    }
    if (r.remaining() != 0)
        return false;
    out = std::move(t);
    return true;
}

bool
deserializeTrace(const std::vector<uint8_t>& bytes, Trace& out)
{
    return deserializeTrace(bytes.data(), bytes.size(), out);
}

bool
saveTrace(const std::string& path, const Trace& t)
{
    if (faultFailed("trace.cache.write"))
        return false;
    return writeFileAtomic(path, serializeTrace(t));
}

bool
loadTrace(const std::string& path, Trace& out)
{
    if (faultFailed("trace.cache.read"))
        return false;
#ifdef CONSTABLE_HAVE_MMAP
    // Fast path: decode straight out of a read-only mapping. Any failure
    // (open, stat, empty file, mmap) falls back to the buffered read below
    // rather than reporting an error of its own.
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st;
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            size_t n = static_cast<size_t>(st.st_size);
            void* map = ::mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);
            if (map != MAP_FAILED) {
                bool ok = deserializeTrace(
                    static_cast<const uint8_t*>(map), n, out);
                ::munmap(map, n);
                ::close(fd);
                return ok;
            }
        }
        ::close(fd);
    }
#endif
    std::vector<uint8_t> bytes;
    return readFileBytes(path, bytes) && deserializeTrace(bytes, out);
}

// ------------------------------------------------------------ run results

std::vector<uint8_t>
serializeRunResult(const RunResult& r)
{
    ByteWriter w;
    w.u32(kResultMagic);
    w.u32(kSerializeVersion);
    w.u64(r.cycles);
    w.u64(r.instructions);
    for (uint64_t v : r.threadInstructions)
        w.u64(v);
    for (Cycle v : r.threadFinishCycle)
        w.u64(v);
    w.u8(r.goldenCheckFailed ? 1 : 0);
    w.str(r.goldenCheckMessage);
    // std::map iterates name-ordered, so the encoding is deterministic.
    w.u64(r.stats.all().size());
    for (const auto& [name, value] : r.stats.all()) {
        w.str(name);
        w.f64(value);
    }
    w.sealChecksum();
    return w.take();
}

bool
deserializeRunResult(const std::vector<uint8_t>& bytes, RunResult& out)
{
    size_t payload;
    if (!checkedPayload(bytes.data(), bytes.size(), payload))
        return false;
    ByteReader r(bytes.data(), payload);
    uint32_t magic, version;
    if (!r.u32(magic) || magic != kResultMagic || !r.u32(version) ||
        version != kSerializeVersion)
        return false;
    RunResult res;
    uint8_t failed;
    uint64_t nStats;
    if (!r.u64(res.cycles) || !r.u64(res.instructions) ||
        !r.u64(res.threadInstructions[0]) ||
        !r.u64(res.threadInstructions[1]) ||
        !r.u64(res.threadFinishCycle[0]) ||
        !r.u64(res.threadFinishCycle[1]) || !r.u8(failed) ||
        !r.str(res.goldenCheckMessage) || !r.u64(nStats))
        return false;
    res.goldenCheckFailed = failed != 0;
    for (uint64_t i = 0; i < nStats; ++i) {
        std::string name;
        double value;
        if (!r.str(name) || !r.f64(value))
            return false;
        res.stats.set(name, value);
    }
    if (r.remaining() != 0)
        return false;
    out = std::move(res);
    return true;
}

bool
saveRunResult(const std::string& path, const RunResult& r, bool durable)
{
    if (faultFailed("ckpt.cell.commit"))
        return false;
    return writeFileAtomic(path, serializeRunResult(r), durable);
}

bool
loadRunResult(const std::string& path, RunResult& out)
{
    if (faultFailed("ckpt.cell.read"))
        return false;
    std::vector<uint8_t> bytes;
    return readFileBytes(path, bytes) && deserializeRunResult(bytes, out);
}

// ------------------------------------------------- multi-process sweep files

std::vector<uint8_t>
serializeManifest(const SweepManifest& m)
{
    ByteWriter w;
    w.u32(kManifestMagic);
    w.u32(kSerializeVersion);
    w.str(m.experiment);
    w.u64(m.suiteHash);
    w.u8(m.smt ? 1 : 0);
    w.u64(m.numRows);
    w.u64(m.numConfigs);
    w.u64(m.configNames.size());
    for (const std::string& n : m.configNames)
        w.str(n);
    w.sealChecksum();
    return w.take();
}

bool
deserializeManifest(const std::vector<uint8_t>& bytes, SweepManifest& out)
{
    size_t payload;
    if (!checkedPayload(bytes.data(), bytes.size(), payload))
        return false;
    ByteReader r(bytes.data(), payload);
    uint32_t magic, version;
    if (!r.u32(magic) || magic != kManifestMagic || !r.u32(version) ||
        version != kSerializeVersion)
        return false;
    SweepManifest m;
    uint8_t smt;
    uint64_t nNames;
    if (!r.str(m.experiment) || !r.u64(m.suiteHash) || !r.u8(smt) ||
        !r.u64(m.numRows) || !r.u64(m.numConfigs) || !r.u64(nNames) ||
        nNames > r.remaining() / 4 + 1)
        return false;
    m.smt = smt != 0;
    m.configNames.resize(nNames);
    for (std::string& n : m.configNames) {
        if (!r.str(n))
            return false;
    }
    if (r.remaining() != 0)
        return false;
    out = std::move(m);
    return true;
}

bool
saveManifest(const std::string& path, const SweepManifest& m)
{
    if (faultFailed("sweep.manifest.write"))
        return false;
    return writeFileAtomic(path, serializeManifest(m), /*durable=*/true);
}

bool
loadManifest(const std::string& path, SweepManifest& out)
{
    if (faultFailed("sweep.manifest.read"))
        return false;
    std::vector<uint8_t> bytes;
    return readFileBytes(path, bytes) && deserializeManifest(bytes, out);
}

std::string
processOwnerTag()
{
    char host[256] = "unknown-host";
#if defined(__unix__) || defined(__APPLE__)
    if (::gethostname(host, sizeof(host)) != 0)
        std::snprintf(host, sizeof(host), "unknown-host");
    host[sizeof(host) - 1] = '\0';
#endif
    return std::string(host) + ":" + std::to_string(::getpid());
}

bool
tryAcquireLease(const std::string& path, const LeaseRecord& r)
{
    // An injected failure here looks exactly like "someone else holds the
    // claim"; the claim loop re-scans every pass, so it self-heals.
    if (faultFailed("lease.acquire"))
        return false;
    // "x" (C11): O_CREAT|O_EXCL — creation atomically decides the claim.
    std::FILE* f = std::fopen(path.c_str(), "wbx");
    if (!f)
        return false;
    ByteWriter w;
    w.u32(kLeaseMagic);
    w.u32(kSerializeVersion);
    w.str(r.owner);
    w.u64(r.pid);
    w.u64(static_cast<uint64_t>(r.shardId));
    w.u64(r.acquiredUnixSec);
    w.sealChecksum();
    const auto& bytes = w.bytes();
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    if (ok)
        ok = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
    if (ok)
        ::fsync(::fileno(f)); // best-effort: the claim itself is the open
#endif
    ok = (std::fclose(f) == 0) && ok;
    if (!ok)
        std::remove(path.c_str());
    return ok;
}

bool
readLease(const std::string& path, LeaseRecord& out)
{
    if (faultFailed("lease.read"))
        return false;
    std::vector<uint8_t> bytes;
    if (!readFileBytes(path, bytes))
        return false;
    size_t payload;
    if (!checkedPayload(bytes.data(), bytes.size(), payload))
        return false;
    ByteReader r(bytes.data(), payload);
    uint32_t magic, version;
    if (!r.u32(magic) || magic != kLeaseMagic || !r.u32(version) ||
        version != kSerializeVersion)
        return false;
    LeaseRecord l;
    uint64_t shard;
    if (!r.str(l.owner) || !r.u64(l.pid) || !r.u64(shard) ||
        !r.u64(l.acquiredUnixSec) || r.remaining() != 0)
        return false;
    l.shardId = static_cast<int64_t>(shard);
    out = std::move(l);
    return true;
}

double
leaseAgeSeconds(const std::string& path)
{
    std::error_code ec;
    auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return -1.0;
    auto now = std::filesystem::file_time_type::clock::now();
    return std::chrono::duration<double>(now - mtime).count();
}

bool
removeLease(const std::string& path)
{
    if (faultFailed("lease.release"))
        return false;
    std::error_code ec;
    return std::filesystem::remove(path, ec) && !ec;
}

// ----------------------------------------------------------- cache keying

uint64_t
specHash(const WorkloadSpec& s)
{
    // Serialize every field in declaration order and hash the bytes. New
    // WorkloadSpec fields must be appended here — kSerializeVersion guards
    // encoding changes, and test_experiment locks the field count.
    ByteWriter w;
    w.u32(kSerializeVersion);
    w.str(s.name);
    w.str(s.category);
    w.u64(s.seed);
    w.u64(s.targetOps);
    w.u32(s.numArchRegs);
    w.u32(s.nGlobalConst);
    w.u32(s.globalsPerFrag);
    w.u32(s.globalMutatePeriod);
    w.u32(s.globalBursts);
    w.u32(s.nInlinedOnce);
    w.u32(s.nInlinedSilent);
    w.u32(s.nInlinedChanging);
    w.u32(s.inlinedArgs);
    w.u32(s.inlinedBodyOps);
    w.u32(s.inlinedBursts);
    w.u32(s.nObject);
    w.u32(s.objectFields);
    w.u32(s.objectIters);
    w.u32(s.objectBursts);
    w.u32(s.objectRewritePeriod);
    w.u8(s.objectAccum ? 1 : 0);
    w.u32(s.nCall);
    w.u32(s.callParams);
    w.u8(static_cast<uint8_t>(s.callMode));
    w.u32(s.callBursts);
    w.u32(s.nStream);
    w.u32(s.streamElems);
    w.u32(s.streamBursts);
    w.u32(s.nStrided);
    w.u32(s.stridedElems);
    w.u32(s.nChase);
    w.u32(s.chaseSteps);
    w.u32(s.chaseFootprintKB);
    w.u32(s.nPredChase);
    w.u32(s.predChaseSteps);
    w.u32(s.predChaseFootprintKB);
    w.u32(s.nAccum);
    w.u32(s.accumCounters);
    w.u32(s.accumBursts);
    w.u32(s.nBranchy);
    w.u32(s.branchBranches);
    w.f64(s.branchRandomFrac);
    w.u32(s.footprintKB);
    w.f64(s.snoopPerKilOp);
    const auto& bytes = w.bytes();
    return fnv1a(bytes.data(), bytes.size());
}

std::string
traceCachePath(const std::string& dir, const WorkloadSpec& spec)
{
    std::string name = sanitizeFileName(spec.name);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(specHash(spec)));
    return dir + "/" + name + "-" + hex + ".trace";
}

// ---------------------------------------------------------------- cache trim

size_t
trimTraceCache(const std::string& dir, const TraceCacheTrimPolicy& policy)
{
    namespace fs = std::filesystem;
    if (!policy.enabled())
        return 0;
    std::error_code ec;
    if (!fs::is_directory(dir, ec) || ec)
        return 0;

    struct CacheFile
    {
        fs::path path;
        uint64_t size = 0;
        fs::file_time_type mtime;
    };
    std::vector<CacheFile> files;
    uint64_t totalBytes = 0;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            return 0;
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".trace")
            continue;
        CacheFile f;
        f.path = entry.path();
        f.size = entry.file_size(ec);
        if (ec)
            continue;
        f.mtime = entry.last_write_time(ec);
        if (ec)
            continue;
        totalBytes += f.size;
        files.push_back(std::move(f));
    }

    size_t deleted = 0;
    auto remove = [&](const CacheFile& f) {
        std::error_code rec;
        if (fs::remove(f.path, rec) && !rec) {
            totalBytes -= f.size;
            ++deleted;
            return true;
        }
        return false;
    };

    // Age cap: anything older than maxAgeSeconds goes, regardless of size.
    if (policy.maxAgeSeconds != 0) {
        auto cutoff = fs::file_time_type::clock::now() -
                      std::chrono::seconds(policy.maxAgeSeconds);
        std::vector<CacheFile> kept;
        kept.reserve(files.size());
        for (CacheFile& f : files) {
            if (f.mtime < cutoff)
                remove(f);
            else
                kept.push_back(std::move(f));
        }
        files = std::move(kept);
    }

    // Size cap: evict least-recently-modified first (the generate-or-load
    // path rewrites entries it regenerates, so mtime tracks usefulness).
    if (policy.maxBytes != 0 && totalBytes > policy.maxBytes) {
        std::sort(files.begin(), files.end(),
                  [](const CacheFile& a, const CacheFile& b) {
                      return a.mtime < b.mtime;
                  });
        for (const CacheFile& f : files) {
            if (totalBytes <= policy.maxBytes)
                break;
            remove(f);
        }
    }
    return deleted;
}

} // namespace constable
