/**
 * @file
 * Compact binary serialization for generated traces and per-run results.
 * Backs the CONSTABLE_TRACE_DIR on-disk suite cache (generate a trace once,
 * load it on every later bench invocation) and the per-cell checkpoint files
 * of Experiment sweeps. The encoding is explicit little-endian field-by-field
 * (never raw struct memory), so files are byte-stable across compilers, and
 * every file carries a version tag plus a trailing checksum: corrupt or
 * truncated files are detected and the caller regenerates instead of
 * crashing or silently computing on garbage.
 */

#ifndef CONSTABLE_TRACE_SERIALIZE_HH
#define CONSTABLE_TRACE_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_result.hh"
#include "trace/generator.hh"
#include "trace/trace.hh"

namespace constable {

/** Bumped whenever the on-disk encoding (or the hashed spec field set)
 *  changes; stale cache files then fail to load and are regenerated. */
inline constexpr uint32_t kSerializeVersion = 1;

// ------------------------------------------------------------------ traces

/** Encode a trace (byte-stable: same trace -> same bytes). */
std::vector<uint8_t> serializeTrace(const Trace& t);

/** Decode; returns false (leaving out untouched on header failures) on any
 *  corruption, truncation, or version mismatch. */
bool deserializeTrace(const std::vector<uint8_t>& bytes, Trace& out);

/** Decode from raw bytes (e.g. an mmap view) without an owning buffer. */
bool deserializeTrace(const uint8_t* bytes, size_t n, Trace& out);

/** Write atomically (tmp file + rename), so readers never observe a
 *  half-written cache entry. Returns false on I/O failure. */
bool saveTrace(const std::string& path, const Trace& t);

/**
 * The atomic-write primitive behind every save* helper: bytes go to a tmp
 * file named with a PID + per-process-random suffix (safe when many
 * processes write the same entry concurrently), and the rename is the
 * commit point. With durable=true the tmp file is fsync'd before the
 * rename (and the directory after it), so a renamed file survives a crash
 * with its full contents — the invariant the sharded-sweep merge relies
 * on: a visible cell file is either complete or fails its checksum.
 */
bool writeFileAtomic(const std::string& path,
                     const std::vector<uint8_t>& bytes,
                     bool durable = false);

/** Read a whole file into @p bytes; false on missing/unreadable files.
 *  The read-side primitive behind every load* helper — and the only
 *  sanctioned way for sim/serve code to slurp a file (see the lint
 *  raw-io rule); an empty file reads as an empty buffer, not an error. */
bool readFileBytes(const std::string& path, std::vector<uint8_t>& bytes);

/** Read a whole file as text (same contract as readFileBytes). */
bool readFileText(const std::string& path, std::string& out);

/** Load and verify; false on missing/corrupt/truncated/mismatched files.
 *  Decodes from an mmap view of the file where the platform supports it
 *  (no intermediate whole-file heap buffer), falling back to a buffered
 *  read otherwise. */
bool loadTrace(const std::string& path, Trace& out);

// -------------------------------------------------------------- run results

/** Encode one simulation result, including the full named-stat map (doubles
 *  preserved bit-exactly, so a resumed sweep is bit-identical). */
std::vector<uint8_t> serializeRunResult(const RunResult& r);

bool deserializeRunResult(const std::vector<uint8_t>& bytes, RunResult& out);

/** @param durable fsync before the rename commit (checkpoint cells written
 *  by sharded workers; see writeFileAtomic). */
bool saveRunResult(const std::string& path, const RunResult& r,
                   bool durable = false);

bool loadRunResult(const std::string& path, RunResult& out);

// ------------------------------------------------- multi-process sweep files

/**
 * Identity of a sharded sweep, written once (atomically) into its
 * checkpoint directory as `manifest.sweep`. Every cooperating process
 * verifies it against its own sweep before claiming cells, so two
 * different experiments pointed at one directory fail fast instead of
 * silently interleaving incompatible cell files.
 */
struct SweepManifest
{
    std::string experiment;
    uint64_t suiteHash = 0;
    bool smt = false;
    uint64_t numRows = 0;
    uint64_t numConfigs = 0;
    std::vector<std::string> configNames;

    uint64_t numCells() const { return numRows * numConfigs; }
    bool operator==(const SweepManifest&) const = default;
};

std::vector<uint8_t> serializeManifest(const SweepManifest& m);
bool deserializeManifest(const std::vector<uint8_t>& bytes,
                         SweepManifest& out);
bool saveManifest(const std::string& path, const SweepManifest& m);
bool loadManifest(const std::string& path, SweepManifest& out);

/**
 * A worker's claim on one matrix cell, stored as `<cell>.lease` next to the
 * cell file. Creation is atomic (O_CREAT|O_EXCL semantics), which is the
 * whole claim protocol; expiry is judged from the lease file's mtime, not
 * from the timestamp written inside it, so a worker whose wall clock is
 * wrong cannot make its own leases look fresh or stale. Readers still
 * compare that mtime against their local clock (leaseAgeSeconds), so a
 * fleet's clocks must agree with the file server to well within the lease
 * TTL — run NTP, and size the TTL above worst cell time + clock error.
 */
struct LeaseRecord
{
    std::string owner;            ///< "<hostname>:<pid>" diagnostic tag
    uint64_t pid = 0;
    int64_t shardId = -1;
    uint64_t acquiredUnixSec = 0; ///< informational only (see mtime note)
};

/** "<hostname>:<pid>" of the calling process (lease ownership tag). */
std::string processOwnerTag();

/** Atomically create the lease file; false if it already exists (someone
 *  else holds the claim) or on I/O error. The write is fsync'd. */
bool tryAcquireLease(const std::string& path, const LeaseRecord& r);

/** Read a lease (diagnostics); false if missing or corrupt. */
bool readLease(const std::string& path, LeaseRecord& out);

/** Seconds since the lease file was last written; negative if missing. */
double leaseAgeSeconds(const std::string& path);

/** Remove a lease file (release after commit, or reclaim of a stale one). */
bool removeLease(const std::string& path);

// ------------------------------------------------------------- cache keying

/** FNV-1a content hash (the checksum/keying primitive of this format). */
uint64_t fnv1a(const uint8_t* data, size_t n);

/** FNV-1a over a string (config names, etc.). */
uint64_t fnv1a(const std::string& s);

/** Replace filesystem-hostile characters with '_' (cache/checkpoint file
 *  and directory names). */
std::string sanitizeFileName(std::string name);

/** Content hash of a trace's serialized bytes: the checkpoint-key analogue
 *  of specHash() for hand-built (Suite::fromTraces) workloads. */
uint64_t traceContentHash(const Trace& t);

/**
 * Content hash over every WorkloadSpec field (and the serialization
 * version): the trace-cache key. Two specs that would generate different
 * traces hash differently; in particular targetOps is covered, so changing
 * CONSTABLE_TRACE_OPS never serves a stale cached trace.
 */
uint64_t specHash(const WorkloadSpec& spec);

/** Cache file path for a spec under a cache directory:
 *  <dir>/<sanitized name>-<16-hex specHash>.trace */
std::string traceCachePath(const std::string& dir, const WorkloadSpec& spec);

// -------------------------------------------------------------- cache trim

/**
 * Age/LRU retention policy for a trace-cache directory. Both caps default
 * to 0 = unlimited, so trimming is strictly opt-in (long-lived CI cache
 * dirs set CONSTABLE_TRACE_CACHE_MAX_MB / _MAX_AGE_DAYS; see
 * ExperimentOptions).
 */
struct TraceCacheTrimPolicy
{
    uint64_t maxBytes = 0;      ///< total *.trace size cap; 0 = uncapped
    uint64_t maxAgeSeconds = 0; ///< per-file age cap; 0 = uncapped

    bool enabled() const { return maxBytes != 0 || maxAgeSeconds != 0; }
};

/**
 * Enforce a trim policy over the *.trace files of a cache directory:
 * first drop entries older than maxAgeSeconds, then drop
 * least-recently-modified entries until the directory fits maxBytes.
 * Non-trace files are never touched; a missing directory is a no-op.
 * @return number of files deleted.
 */
size_t trimTraceCache(const std::string& dir,
                      const TraceCacheTrimPolicy& policy);

} // namespace constable

#endif
