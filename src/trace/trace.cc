#include "trace/trace.hh"

#include <algorithm>

namespace constable {

size_t
Trace::countClass(OpClass c) const
{
    return static_cast<size_t>(
        std::count_if(ops.begin(), ops.end(),
                      [c](const MicroOp& op) { return op.cls == c; }));
}

} // namespace constable
