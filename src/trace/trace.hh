/**
 * @file
 * A dynamic instruction trace: the interface between the synthetic workload
 * generator (functional side) and the cycle-level core (timing side).
 */

#ifndef CONSTABLE_TRACE_TRACE_HH
#define CONSTABLE_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "isa/microop.hh"

namespace constable {

/**
 * An externally-generated coherence snoop to inject before a given dynamic
 * instruction retires. Models another core's request in a multi-core system
 * (§6.4.4). Snoops in this model are ownership probes that do not change
 * memory contents, so golden values stay valid; the point is to exercise
 * AMT invalidation and CV-bit behaviour.
 */
struct SnoopEvent
{
    SeqNum beforeSeq = 0;   ///< deliver before this trace index retires
    Addr addr = 0;          ///< full byte address (AMT uses the line address)
};

/** A complete workload trace plus metadata. */
struct Trace
{
    std::string name;
    std::string category;           ///< Client/Enterprise/FSPEC17/ISPEC17/Server
    unsigned numArchRegs = 16;      ///< 16, or 32 in APX mode
    std::vector<MicroOp> ops;
    std::vector<SnoopEvent> snoops; ///< sorted by beforeSeq

    size_t size() const { return ops.size(); }

    /** Count of dynamic ops of a class. */
    size_t countClass(OpClass c) const;
};

} // namespace constable

#endif
