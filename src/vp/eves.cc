#include "vp/eves.hh"

namespace constable {

EvesPredictor::EvesPredictor(const EvesConfig& eves_cfg)
    : cfg(eves_cfg), strideTable(eves_cfg.strideEntries),
      vtage(eves_cfg.vtageTables,
            std::vector<VtageEntry>(eves_cfg.vtageEntries))
{
}

uint64_t
EvesPredictor::foldHistory(unsigned bits, unsigned len) const
{
    uint64_t h = ghist & (len >= 64 ? ~0ull : ((1ull << len) - 1));
    uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ull << bits) - 1);
        h >>= bits;
    }
    return folded;
}

unsigned
EvesPredictor::vtIndex(PC pc, unsigned t) const
{
    uint64_t f = foldHistory(10, histLens[t + 1]);
    return static_cast<unsigned>((pc ^ (pc >> 10) ^ f) %
                                 vtage[t].size());
}

uint16_t
EvesPredictor::vtTag(PC pc, unsigned t) const
{
    uint64_t f = foldHistory(11, histLens[t + 1]);
    return static_cast<uint16_t>((pc ^ (pc >> 5) ^ (f << 2)) & 0x7ff);
}

ValuePrediction
EvesPredictor::predict(PC pc)
{
    ValuePrediction pred;

    // VTAGE: longest-history tag match with saturated confidence wins.
    for (int t = static_cast<int>(cfg.vtageTables) - 1; t >= 0; --t) {
        const VtageEntry& e = vtage[t][vtIndex(pc, t)];
        if (e.tag == vtTag(pc, t) && e.conf >= cfg.confMax) {
            pred.valid = true;
            pred.value = e.value;
            ++predictions;
            return pred;
        }
    }

    // E-Stride: predict last committed value + stride * (inflight + 1).
    StrideEntry& s = strideTable[strideIndex(pc)];
    if (s.valid && s.tag == pc && s.conf >= cfg.confMax &&
        s.strideConf >= 3) {
        pred.valid = true;
        pred.value = s.lastVal + static_cast<uint64_t>(
            s.stride * static_cast<int64_t>(s.inflight + 1));
        ++predictions;
    }
    return pred;
}

void
EvesPredictor::notifyRename(PC pc)
{
    StrideEntry& s = strideTable[strideIndex(pc)];
    if (s.valid && s.tag == pc && s.inflight < 1023)
        ++s.inflight;
}

void
EvesPredictor::train(PC pc, uint64_t actual)
{
    // VTAGE training.
    bool vtageHit = false;
    for (int t = static_cast<int>(cfg.vtageTables) - 1; t >= 0; --t) {
        VtageEntry& e = vtage[t][vtIndex(pc, t)];
        if (e.tag == vtTag(pc, t)) {
            vtageHit = true;
            if (e.value == actual) {
                if (e.conf < cfg.confMax &&
                    (e.conf < 2 || rng.chance(cfg.confIncProb)))
                    ++e.conf;
                if (e.useful < 3)
                    ++e.useful;
            } else {
                e.conf = 0;
                e.value = actual;
                if (e.useful > 0)
                    --e.useful;
            }
            break;
        }
    }
    if (!vtageHit) {
        // Allocate in a random table whose entry is not useful.
        unsigned t = static_cast<unsigned>(rng.below(cfg.vtageTables));
        VtageEntry& e = vtage[t][vtIndex(pc, t)];
        if (e.useful == 0) {
            e.tag = vtTag(pc, t);
            e.value = actual;
            e.conf = 0;
        } else {
            --e.useful;
        }
    }

    // E-Stride training.
    StrideEntry& s = strideTable[strideIndex(pc)];
    if (!s.valid || s.tag != pc) {
        s = StrideEntry{};
        s.tag = pc;
        s.lastVal = actual;
        s.valid = true;
        return;
    }
    int64_t delta = static_cast<int64_t>(actual - s.lastVal);
    bool wasPredicting = s.conf >= cfg.confMax && s.strideConf >= 3;
    if (delta == s.stride) {
        if (s.strideConf < 3)
            ++s.strideConf;
        if (s.conf < cfg.confMax &&
            (s.conf < 2 || rng.chance(cfg.confIncProb)))
            ++s.conf;
        if (wasPredicting)
            ++correct;
    } else {
        if (wasPredicting) {
            ++incorrect;
            ++wrongByPc[pc];
        }
        s.conf = 0;
        if (s.strideConf > 0)
            --s.strideConf;
        else
            s.stride = delta;
    }
    s.lastVal = actual;
    if (s.inflight > 0)
        --s.inflight;
}

void
EvesPredictor::abortInflight(PC pc)
{
    StrideEntry& s = strideTable[strideIndex(pc)];
    if (s.valid && s.tag == pc && s.inflight > 0)
        --s.inflight;
}

void
EvesPredictor::pushHistory(bool taken)
{
    ghist = (ghist << 1) | (taken ? 1 : 0);
}

} // namespace constable
