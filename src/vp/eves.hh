/**
 * @file
 * EVES load value predictor (Seznec, CVP-1 winner) reimplementation:
 * E-Stride (per-PC last value + stride, accounting for in-flight instances)
 * plus VTAGE (tagged tables indexed by PC and folded global branch
 * history), with saturating confidence and probabilistic increments.
 * A predicted load's dependents wake at rename; the load itself still
 * executes to verify — which is exactly the resource dependence Constable
 * removes and EVES cannot (paper §3).
 */

#ifndef CONSTABLE_VP_EVES_HH
#define CONSTABLE_VP_EVES_HH

#include <array>
#include <unordered_map>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace constable {

/** EVES sizing; defaults approximate the 32 KB CVP-1 budget. */
struct EvesConfig
{
    unsigned strideEntries = 4096;
    unsigned vtageTables = 3;
    unsigned vtageEntries = 1024;
    uint8_t confMax = 7;
    /** Probability of a confidence increment on a correct prediction. */
    double confIncProb = 0.125;
};

/** One load value prediction. */
struct ValuePrediction
{
    bool valid = false;
    uint64_t value = 0;
};

class EvesPredictor
{
  public:
    explicit EvesPredictor(const EvesConfig& cfg = EvesConfig{});

    /** Predict the value of the load at @p pc (called at rename, before
     *  notifyRename for this instance). */
    ValuePrediction predict(PC pc);

    /**
     * Account a renamed in-flight instance of the load (predicted or not):
     * E-Stride projects lastValue + stride * (inflight + 1), so the counter
     * must cover every instance that will commit before this one.
     */
    void notifyRename(PC pc);

    /** Train with the architecturally-correct value (at writeback). */
    void train(PC pc, uint64_t actual);

    /** Squash bookkeeping: an in-flight instance was discarded. */
    void abortInflight(PC pc);

    /** Push a retired-branch outcome into the global history. */
    void pushHistory(bool taken);

    /** Per-PC mispredict counts (debug/diagnostics). */
    std::unordered_map<PC, uint64_t> wrongByPc;

    uint64_t predictions = 0;
    uint64_t correct = 0;
    uint64_t incorrect = 0;

  private:
    struct StrideEntry
    {
        uint64_t tag = 0;
        uint64_t lastVal = 0;
        int64_t stride = 0;
        uint8_t conf = 0;
        uint8_t strideConf = 0;
        uint16_t inflight = 0;
        bool valid = false;
    };
    struct VtageEntry
    {
        uint16_t tag = 0;
        uint64_t value = 0;
        uint8_t conf = 0;
        uint8_t useful = 0;
    };

    unsigned
    strideIndex(PC pc) const
    {
        // Hashed to spread aligned code regions (see Sld::setOf).
        return static_cast<unsigned>((pc ^ (pc >> 7) ^ (pc >> 13)) %
                                     strideTable.size());
    }
    unsigned vtIndex(PC pc, unsigned t) const;
    uint16_t vtTag(PC pc, unsigned t) const;
    uint64_t foldHistory(unsigned bits, unsigned len) const;

    EvesConfig cfg;
    std::vector<StrideEntry> strideTable;
    std::vector<std::vector<VtageEntry>> vtage;
    std::array<unsigned, 8> histLens { 0, 4, 8, 16, 24, 32, 48, 64 };
    uint64_t ghist = 0;
    Rng rng { 0xe4e5 };
};

} // namespace constable

#endif
