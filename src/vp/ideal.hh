/**
 * @file
 * Ideal (oracle) configurations for the headroom study (paper §4.4, Fig 7):
 * global-stable load PCs are identified offline by the Load Inspector and
 * either perfectly value-predicted (still executed), value-predicted with
 * the data fetch eliminated (AGU only), or fully eliminated.
 */

#ifndef CONSTABLE_VP_IDEAL_HH
#define CONSTABLE_VP_IDEAL_HH

#include <unordered_set>

#include "common/types.hh"

namespace constable {

/** Which oracle treatment global-stable loads receive. */
enum class IdealMode : uint8_t {
    None,
    StableLvp,          ///< perfect value prediction; load fully executes
    StableLvpNoFetch,   ///< perfect value prediction; AGU only, no data fetch
    Constable,          ///< full elimination (no RS/AGU/load port/L1D)
};

/** Oracle specification handed to the core. */
struct IdealSpec
{
    IdealMode mode = IdealMode::None;
    std::unordered_set<PC> stablePcs;   ///< offline-identified loads
};

} // namespace constable

#endif
