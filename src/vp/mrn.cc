#include "vp/mrn.hh"

namespace constable {

MrnTable::MrnTable(unsigned entries, uint8_t conf_threshold)
    : table(entries), confThreshold(conf_threshold)
{
}

MrnPrediction
MrnTable::predict(PC load_pc) const
{
    const Entry& e = table[(load_pc ^ (load_pc >> 7) ^ (load_pc >> 13)) % table.size()];
    MrnPrediction p;
    if (e.valid && e.loadPc == load_pc && e.conf >= confThreshold &&
        e.storePc != 0) {
        p.valid = true;
        p.storePc = e.storePc;
    }
    return p;
}

void
MrnTable::train(PC load_pc, PC store_pc)
{
    Entry& e = table[(load_pc ^ (load_pc >> 7) ^ (load_pc >> 13)) % table.size()];
    if (!e.valid || e.loadPc != load_pc) {
        e = Entry{ load_pc, store_pc, 0, true };
        return;
    }
    if (e.storePc == store_pc && store_pc != 0) {
        if (e.conf < 7)
            ++e.conf;
    } else {
        // Unstable communication: a misforward costs a pipeline flush, so
        // confidence resets outright rather than decaying.
        e.conf = 0;
        e.storePc = store_pc;
    }
}

void
MrnTable::punish(PC load_pc)
{
    Entry& e = table[(load_pc ^ (load_pc >> 7) ^ (load_pc >> 13)) % table.size()];
    if (e.valid && e.loadPc == load_pc)
        e.conf = 0;
}

} // namespace constable
