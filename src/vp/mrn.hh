/**
 * @file
 * Memory Renaming (Tyson & Austin / Moshovos & Sohi): learns stable
 * store→load communication pairs and, at rename, speculatively forwards the
 * producing store's data to the load's dependents. The load still executes
 * to verify the forwarding. Part of the paper's baseline (Table 2).
 */

#ifndef CONSTABLE_VP_MRN_HH
#define CONSTABLE_VP_MRN_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** Prediction: which static store will feed this load. */
struct MrnPrediction
{
    bool valid = false;
    PC storePc = 0;
};

class MrnTable
{
  public:
    explicit MrnTable(unsigned entries = 1024, uint8_t conf_threshold = 6);

    /** Predict the producing store for the load at @p pc (rename stage). */
    MrnPrediction predict(PC load_pc) const;

    /**
     * Train at load execution: @p store_pc is the static store that actually
     * forwarded to this load (0 when the value came from memory).
     */
    void train(PC load_pc, PC store_pc);

    /** A forwarding from this entry was verified wrong (pipeline flush):
     *  reset its confidence so unstable pairs back off. */
    void punish(PC load_pc);

    uint64_t predictions = 0;
    uint64_t correctForwards = 0;
    uint64_t misforwards = 0;

  private:
    struct Entry
    {
        PC loadPc = 0;
        PC storePc = 0;
        uint8_t conf = 0;
        bool valid = false;
    };
    std::vector<Entry> table;
    uint8_t confThreshold;
};

} // namespace constable

#endif
