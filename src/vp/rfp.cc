#include "vp/rfp.hh"

namespace constable {

RfpPredictor::RfpPredictor(unsigned entries, uint8_t conf_threshold)
    : table(entries), confThreshold(conf_threshold)
{
}

RfpPrediction
RfpPredictor::predict(PC pc)
{
    Entry& e = table[(pc ^ (pc >> 7) ^ (pc >> 13)) % table.size()];
    RfpPrediction p;
    if (e.valid && e.pc == pc && e.conf >= confThreshold) {
        p.valid = true;
        p.addr = e.lastAddr + static_cast<Addr>(
            e.stride * static_cast<int64_t>(e.inflight + 1));
        if (e.inflight < 255)
            ++e.inflight;
        ++predictions;
    }
    return p;
}

void
RfpPredictor::train(PC pc, Addr actual)
{
    Entry& e = table[(pc ^ (pc >> 7) ^ (pc >> 13)) % table.size()];
    if (!e.valid || e.pc != pc) {
        e = Entry{ pc, actual, 0, 0, 0, true };
        return;
    }
    int64_t delta = static_cast<int64_t>(actual - e.lastAddr);
    if (delta == e.stride) {
        if (e.conf < 7)
            ++e.conf;
    } else {
        e.conf = 0;
        e.stride = delta;
    }
    e.lastAddr = actual;
    if (e.inflight > 0)
        --e.inflight;
}

void
RfpPredictor::abortInflight(PC pc)
{
    Entry& e = table[(pc ^ (pc >> 7) ^ (pc >> 13)) % table.size()];
    if (e.valid && e.pc == pc && e.inflight > 0)
        --e.inflight;
}

void
RfpPredictor::punish(PC pc)
{
    Entry& e = table[(pc ^ (pc >> 7) ^ (pc >> 13)) % table.size()];
    if (e.valid && e.pc == pc) {
        e.conf = 0;
        e.inflight = 0;
    }
}

} // namespace constable
