/**
 * @file
 * Register File Prefetching (Shukla et al., ISCA'22): a PC-indexed stride
 * address predictor drives an early L1D access at rename so the load's
 * value lands in the register file before execution; the load still
 * executes to verify. Compared against Constable in Fig 15.
 */

#ifndef CONSTABLE_VP_RFP_HH
#define CONSTABLE_VP_RFP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace constable {

/** Predicted load address for an early register-file prefetch. */
struct RfpPrediction
{
    bool valid = false;
    Addr addr = 0;
};

class RfpPredictor
{
  public:
    explicit RfpPredictor(unsigned entries = 2048, uint8_t conf_threshold = 3);

    /** Predict the address of the load at @p pc (rename stage). */
    RfpPrediction predict(PC pc);

    /** Train with the actual effective address (execution). */
    void train(PC pc, Addr actual);

    /** Squash bookkeeping: an in-flight predicted instance was discarded. */
    void abortInflight(PC pc);

    /** A prefetch was verified wrong (flush): reset confidence. */
    void punish(PC pc);

    uint64_t predictions = 0;
    uint64_t correct = 0;
    uint64_t incorrect = 0;

  private:
    struct Entry
    {
        PC pc = 0;
        Addr lastAddr = 0;
        int64_t stride = 0;
        uint8_t conf = 0;
        uint8_t inflight = 0;
        bool valid = false;
    };
    std::vector<Entry> table;
    uint8_t confThreshold;
};

} // namespace constable

#endif
