#include "workloads/suite.hh"

#include "common/env.hh"
#include "common/rng.hh"

namespace constable {

namespace {

/**
 * Category templates. Each builder takes the workload's index within its
 * category and a jitter RNG, and fills a spec whose mix matches the paper's
 * characterization of that category (Fig 3):
 *  - Client/Enterprise/Server: 40-50% global-stable loads, UI/RPC-style
 *    inlined functions and runtime-constant tables.
 *  - FSPEC17: streaming FP kernels, ~20% global-stable, predictable branches.
 *  - ISPEC17: pointer-heavy integer codes, ~30% global-stable, branchy.
 */

WorkloadSpec
clientSpec(unsigned i, Rng& jit)
{
    WorkloadSpec s;
    s.category = "Client";
    s.nGlobalConst = 2;
    s.globalsPerFrag = 5 + jit.below(4);
    s.globalMutatePeriod = (i % 4 == 3) ? 40 : 0;
    s.nInlinedOnce = 2;
    s.nInlinedSilent = 1;
    s.nInlinedChanging = 1;
    s.inlinedArgs = 3 + jit.below(2);
    s.inlinedBodyOps = 4 + jit.below(5);
    s.inlinedBursts = 2;
    s.nObject = 2;
    s.objectFields = 3 + jit.below(3);
    s.objectIters = 2;
    s.objectBursts = 2;
    s.objectRewritePeriod = (i % 3 == 2) ? 6 : 0;
    s.nCall = 1;
    s.callMode = StoreMode::Changing;
    s.nStream = 1;
    s.streamElems = 6 + jit.below(3);
    s.nStrided = (i % 5 == 4) ? 2 : 0; // a few EVES-friendly client traces
    s.nPredChase = 1;
    s.predChaseSteps = (i % 5 == 4) ? 5 : 2;
    s.predChaseFootprintKB = 64;
    s.nChase = 1;
    s.chaseSteps = 2;
    s.chaseFootprintKB = 8;
    s.nAccum = 1;
    s.nBranchy = 2;
    s.branchBranches = 2 + jit.below(3);
    s.branchRandomFrac = 0.04 + 0.04 * jit.uniform();
    s.footprintKB = 48 + jit.below(96);
    return s;
}

WorkloadSpec
enterpriseSpec(unsigned i, Rng& jit)
{
    WorkloadSpec s;
    s.category = "Enterprise";
    s.nGlobalConst = 3;
    s.globalsPerFrag = 6 + jit.below(5);
    s.nInlinedOnce = 2;
    s.nInlinedSilent = 2;
    s.inlinedArgs = 3;
    s.inlinedBodyOps = 5 + jit.below(4);
    s.inlinedBursts = 2;
    s.nObject = 2;
    s.objectFields = 3 + jit.below(3);
    s.objectIters = 2;
    s.objectBursts = 2;
    s.nCall = 2;
    s.callMode = (i % 2) ? StoreMode::Silent : StoreMode::Changing;
    s.nStream = 1;
    s.streamElems = 4;
    s.nStrided = (i % 7 == 6) ? 2 : 0;
    s.nPredChase = 1;
    s.predChaseSteps = (i % 7 >= 5) ? 5 : 2;
    s.predChaseFootprintKB = 64;
    s.nChase = 1;
    s.chaseSteps = 2;
    s.chaseFootprintKB = 8;
    s.nAccum = 2; // transaction counters
    s.accumCounters = 2 + jit.below(3);
    s.nBranchy = 1;
    s.branchBranches = 3;
    s.branchRandomFrac = 0.03 + 0.03 * jit.uniform();
    s.footprintKB = 96 + jit.below(160);
    s.snoopPerKilOp = (i % 3 == 0) ? 0.5 : 0.0;
    return s;
}

WorkloadSpec
fspecSpec(unsigned i, Rng& jit)
{
    WorkloadSpec s;
    s.category = "FSPEC17";
    s.nGlobalConst = 1;
    s.globalsPerFrag = 3 + jit.below(3);
    s.nInlinedOnce = 1;
    s.nInlinedSilent = (i % 3 == 0) ? 1 : 0;
    s.inlinedArgs = 2 + jit.below(2);
    s.inlinedBodyOps = 6 + jit.below(6);
    s.inlinedBursts = 1;
    s.nObject = 1;
    s.objectFields = 2;
    s.objectIters = 2;
    s.objectBursts = 1;
    s.nCall = 0;
    s.nStream = 2 + jit.below(2);
    s.streamElems = 6 + jit.below(4);
    s.streamBursts = 2;
    s.nStrided = 1 + (i % 3 == 1 ? 2 : 0); // FP value locality: EVES-friendly
    s.nPredChase = 1;
    s.predChaseSteps = (i % 3 == 1) ? 5 : 2;
    s.predChaseFootprintKB = 96;
    s.stridedElems = 6 + jit.below(4);
    s.nChase = (i % 4 == 3) ? 1 : 0;
    s.chaseSteps = 1;
    s.chaseFootprintKB = 8;
    s.nAccum = 1;
    s.nBranchy = 1;
    s.branchBranches = 2;
    s.branchRandomFrac = 0.01 + 0.02 * jit.uniform(); // loops: predictable
    s.footprintKB = 192 + jit.below(320);
    return s;
}

WorkloadSpec
ispecSpec(unsigned i, Rng& jit)
{
    WorkloadSpec s;
    s.category = "ISPEC17";
    s.nGlobalConst = 2;
    s.globalsPerFrag = 4 + jit.below(3);
    s.globalMutatePeriod = (i % 5 == 4) ? 60 : 0;
    s.nInlinedOnce = 1;
    s.nInlinedSilent = 1;
    s.nInlinedChanging = 1;
    s.inlinedArgs = 2 + jit.below(2);
    s.inlinedBodyOps = 5;
    s.inlinedBursts = 2;
    s.nObject = 1;
    s.objectFields = 3;
    s.objectIters = 2;
    s.objectBursts = 2;
    s.objectRewritePeriod = (i % 2) ? 8 : 0;
    s.nCall = 1;
    s.callMode = StoreMode::Changing;
    s.nStream = 1;
    s.streamElems = 4;
    s.nStrided = (i % 4 == 2) ? 1 : 0;
    s.nPredChase = 1;
    s.predChaseSteps = (i % 4 == 2) ? 5 : 2;
    s.predChaseFootprintKB = 64;
    s.nChase = 1;
    s.chaseSteps = 2;
    s.chaseFootprintKB = 16;
    s.nAccum = 1;
    s.nBranchy = 2;
    s.branchBranches = 3 + jit.below(2);
    s.branchRandomFrac = 0.06 + 0.05 * jit.uniform(); // hard branches
    s.footprintKB = 64 + jit.below(192);
    return s;
}

WorkloadSpec
serverSpec(unsigned i, Rng& jit)
{
    WorkloadSpec s;
    s.category = "Server";
    s.nGlobalConst = 3;
    s.globalsPerFrag = 7 + jit.below(5);
    s.nInlinedOnce = 2;
    s.nInlinedSilent = 1;
    s.inlinedArgs = 3 + jit.below(2);
    s.inlinedBodyOps = 4 + jit.below(4);
    s.inlinedBursts = 2;
    s.nObject = 3;
    s.objectFields = 3 + jit.below(3);
    s.objectIters = 2;
    s.objectBursts = 2;
    s.nCall = 2;
    s.callMode = StoreMode::Changing;
    s.nStream = 1;
    s.streamElems = 4;
    s.nStrided = (i % 6 == 5) ? 1 : 0;
    s.nPredChase = 1;
    s.predChaseSteps = (i % 6 == 5) ? 5 : 2;
    s.predChaseFootprintKB = 64;
    s.nChase = 1;
    s.chaseSteps = 2;
    s.chaseFootprintKB = 16;
    s.nAccum = 2;
    s.nBranchy = 1;
    s.branchBranches = 3;
    s.branchRandomFrac = 0.03 + 0.04 * jit.uniform();
    s.footprintKB = 128 + jit.below(384);
    s.snoopPerKilOp = (i % 2 == 0) ? 1.0 : 0.0;
    return s;
}

struct CategoryDef
{
    const char* category;
    unsigned count;
    WorkloadSpec (*build)(unsigned, Rng&);
    std::vector<const char*> names;
};

const std::vector<CategoryDef>&
categoryDefs()
{
    static const std::vector<CategoryDef> defs = {
        { "Client", 22, clientSpec,
          { "dacapo_avrora", "dacapo_batik", "dacapo_fop", "dacapo_h2",
            "dacapo_jython", "dacapo_luindex", "sysmark_office",
            "sysmark_chrome", "sysmark_media", "sysmark_productivity",
            "tabletmark_web", "tabletmark_photo", "jetstream2_richards",
            "jetstream2_gbemu", "jetstream2_pdfjs", "jetstream2_wasm",
            "jetstream2_splay", "client_mail", "client_editor",
            "client_spreadsheet", "client_browser_tabs", "client_video" } },
        { "Enterprise", 14, enterpriseSpec,
          { "specjenterprise_web", "specjenterprise_ejb",
            "specjenterprise_db", "specjbb_composite", "specjbb_critical",
            "specjbb_maxjops", "lammps_lj", "lammps_chain", "lammps_eam",
            "enterprise_oltp", "enterprise_cache_tier", "enterprise_queue",
            "enterprise_rpc", "enterprise_serializer" } },
        { "FSPEC17", 29, fspecSpec,
          { "bwaves_t0", "bwaves_t1", "cactuBSSN_t0", "namd_t0", "namd_t1",
            "parest_t0", "povray_t0", "povray_t1", "lbm_t0", "lbm_t1",
            "wrf_t0", "wrf_t1", "wrf_t2", "blender_t0", "blender_t1",
            "cam4_t0", "cam4_t1", "cam4_t2", "imagick_t0", "imagick_t1",
            "nab_t0", "nab_t1", "fotonik3d_t0", "fotonik3d_t1",
            "fotonik3d_t2", "roms_t0", "roms_t1", "roms_t2",
            "cactuBSSN_t1" } },
        { "ISPEC17", 11, ispecSpec,
          { "perlbench_t0", "gcc_t0", "mcf_t0", "omnetpp_t0",
            "xalancbmk_t0", "x264_t0", "deepsjeng_t0", "leela_t0",
            "exchange2_t0", "xz_t0", "xz_t1" } },
        { "Server", 14, serverSpec,
          { "hadoop_kmeans", "hadoop_sort", "hadoop_wordcount",
            "linpack_hpl_t0", "linpack_hpl_t1", "snort_ids_t0",
            "snort_ids_t1", "bigbench_q1", "bigbench_q2", "bigbench_q3",
            "server_kv_store", "server_web_front", "server_log_ingest",
            "server_proxy" } },
    };
    return defs;
}

} // namespace

std::vector<WorkloadSpec>
paperSuite(size_t target_ops)
{
    std::vector<WorkloadSpec> suite;
    uint64_t seedBase = 0xc0'5417'ab1e; // deterministic suite seed
    for (const auto& def : categoryDefs()) {
        for (unsigned i = 0; i < def.count; ++i) {
            Rng jit(Rng::splitmix(seedBase + i * 977 +
                                  std::hash<std::string>{}(def.category)));
            WorkloadSpec s = def.build(i, jit);
            s.name = std::string(def.category) + "/" + def.names.at(i);
            s.seed = Rng::splitmix(seedBase ^ (jit.next() + i));
            s.targetOps = target_ops;
            suite.push_back(std::move(s));
        }
    }
    return suite;
}

std::vector<WorkloadSpec>
smokeSuite(size_t target_ops)
{
    std::vector<WorkloadSpec> suite;
    unsigned i = 0;
    for (const auto& def : categoryDefs()) {
        Rng jit(0x5eed + i);
        WorkloadSpec s = def.build(0, jit);
        s.name = std::string(def.category) + "/smoke";
        s.seed = 0x5eed'0000 + i++;
        s.targetOps = target_ops;
        suite.push_back(std::move(s));
    }
    return suite;
}

std::vector<std::pair<size_t, size_t>>
smtPairs(size_t suite_size)
{
    // Pair i with i + stride so most pairs mix categories.
    std::vector<std::pair<size_t, size_t>> pairs;
    if (suite_size < 2)
        return pairs;
    size_t stride = suite_size / 2;
    for (size_t i = 0; i < stride; ++i)
        pairs.emplace_back(i, i + stride);
    return pairs;
}

size_t
defaultTraceOps()
{
    if (auto v = envU64("CONSTABLE_TRACE_OPS")) {
        if (*v == 0)
            fatal("CONSTABLE_TRACE_OPS must be >= 1");
        return static_cast<size_t>(*v);
    }
    return 60'000;
}

} // namespace constable
