/**
 * @file
 * The evaluation workload suite: 90 synthetic trace specs mirroring the
 * paper's Table 4 (Client 22, Enterprise 14, FSPEC17 29, ISPEC17 11,
 * Server 14). Per-category parameter templates are tuned so the suite's
 * global-stable-load characteristics track the paper's Fig 3, and
 * per-workload jitter creates the diversity behind Fig 12 (Constable wins
 * most workloads; value-locality-heavy ones favour EVES).
 */

#ifndef CONSTABLE_WORKLOADS_SUITE_HH
#define CONSTABLE_WORKLOADS_SUITE_HH

#include <utility>
#include <vector>

#include "trace/generator.hh"

namespace constable {

/** The full 90-trace suite. @param target_ops dynamic ops per trace. */
std::vector<WorkloadSpec> paperSuite(size_t target_ops);

/** A small smoke subset (one trace per category) for quick tests. */
std::vector<WorkloadSpec> smokeSuite(size_t target_ops);

/** Deterministic SMT2 pairings over a suite (adjacent distinct categories). */
std::vector<std::pair<size_t, size_t>> smtPairs(size_t suite_size);

/** Default per-trace op count, overridable via env CONSTABLE_TRACE_OPS. */
size_t defaultTraceOps();

} // namespace constable

#endif
