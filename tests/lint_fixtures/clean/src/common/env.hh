// Fixture copy of the one file allowed to touch raw parsing and getenv.
#ifndef FIXTURE_COMMON_ENV_HH
#define FIXTURE_COMMON_ENV_HH

#include <cstdlib>
#include <string>

inline unsigned long long
parseStrict(const std::string& v)
{
    // Raw strtoull and getenv are legal here and only here.
    const char* raw = std::getenv("IGNORED");
    (void)raw;
    return std::strtoull(v.c_str(), nullptr, 10);
}

#endif
