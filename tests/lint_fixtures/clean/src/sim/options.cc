// A file exercising every escape hatch and allowed pattern at once:
// documented env var, justified wall-clock, justified unordered iteration
// in a printf-bearing (therefore order-sensitive) file, and a
// lower-layer include. Must lint clean.
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "common/env.hh"

static std::unordered_map<int, int> histogram;

void
report()
{
    std::string knob = "CONSTABLE_FIXTURE_KNOB";
    long stamp =
        // informational timestamp in a side channel. lint:wallclock
        std::chrono::system_clock::now().time_since_epoch().count();
    int sum = 0;
    // summing is order-insensitive. lint:ordered
    for (const auto& [k, v] : histogram)
        sum += v;
    std::printf("%s %ld %d\n", knob.c_str(), stamp, sum);
    // usage text goes to the stream the caller picked. lint:rawlog
    std::fprintf(stderr, "report emitted\n");
}
