// Must trip determinism: rand() and system_clock in src/, no escape.
#include <chrono>
#include <cstdlib>

unsigned long long
jitter()
{
    auto t = std::chrono::system_clock::now().time_since_epoch().count();
    return static_cast<unsigned long long>(t) + std::rand();
}
