// Must trip env-doc: reads an env var README.md does not document.
#include <string>

std::string
knobName()
{
    return "CONSTABLE_UNDOCUMENTED_KNOB";
}
