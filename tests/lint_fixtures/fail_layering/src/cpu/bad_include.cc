// Must trip layering: cpu/ (layer 4) reaching up into sim/ (layer 5).
#include "sim/shard.hh"

void
pipelineStage()
{
}
