// Must trip layering: the sample node (layer 5) reaching up into the
// rest of sim/ (layer 6) — sim/experiment.cc dispatches into sampling,
// never the reverse.
#include "sim/experiment.hh"

void
samplePass()
{
}
