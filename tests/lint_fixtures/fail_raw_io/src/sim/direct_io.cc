// Fixture: direct stream I/O in src/sim must be flagged by raw-io (the
// fault-injection shim is the only sanctioned path to the filesystem).
#include <fstream>
#include <string>

namespace constable {

void
dumpDirectly(const std::string& path)
{
    std::ofstream out(path);
    out << "bypasses the faultio shim\n";
}

} // namespace constable
