// Fixture: direct fprintf(stderr, ...) in src/sim must be flagged by
// raw-log (diagnostics route through warn()/inform() in common/logging.hh
// so CONSTABLE_LOG_LEVEL can gate them).
#include <cstdio>
#include <string>

namespace constable {

void
complainDirectly(const std::string& what)
{
    std::fprintf(stderr, "something went wrong: %s\n", what.c_str());
}

} // namespace constable
