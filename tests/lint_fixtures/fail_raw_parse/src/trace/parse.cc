// Must trip raw-parse: atoi outside common/env.hh.
#include <cstdlib>

int
parsePort(const char* s)
{
    return std::atoi(s);
}
