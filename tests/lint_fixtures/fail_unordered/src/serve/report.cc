// Must trip unordered-iter: range-for over an unordered_map in a file
// that prints a report, with no lint:ordered justification.
#include <cstdio>
#include <string>
#include <unordered_map>

static std::unordered_map<std::string, double> latencies;

void
printReport()
{
    for (const auto& [name, ms] : latencies)
        std::printf("%s: %f\n", name.c_str(), ms);
}
