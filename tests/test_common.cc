/**
 * @file
 * Unit tests for the common substrate: statistics toolkit and RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

namespace constable {
namespace {

TEST(Stats, GeomeanOfEqualValues)
{
    EXPECT_DOUBLE_EQ(geomean({ 2.0, 2.0, 2.0 }), 2.0);
}

TEST(Stats, GeomeanMixed)
{
    EXPECT_NEAR(geomean({ 1.0, 4.0 }), 2.0, 1e-12);
}

TEST(Stats, GeomeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanSkipsNonPositiveSamples)
{
    // Regression: log(0) = -inf used to collapse the whole mean to 0 and
    // a negative sample NaN-poisoned it. Both are skipped now (stats.hh);
    // the mean of the remaining positives {2, 8} is 4.
    EXPECT_DOUBLE_EQ(geomean({ 0.0, 2.0, 8.0 }), 4.0);
    EXPECT_DOUBLE_EQ(geomean({ -3.0, 2.0, 8.0 }), 4.0);
    EXPECT_FALSE(std::isnan(geomean({ -3.0, 2.0, 8.0 })));
    // No positive sample at all degrades to the empty-input answer.
    EXPECT_DOUBLE_EQ(geomean({ 0.0, -1.0 }), 0.0);
}

TEST(Stats, PercentileSortedEdges)
{
    EXPECT_DOUBLE_EQ(percentileSorted({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted({ 9.0 }, 0.0), 9.0);
    EXPECT_DOUBLE_EQ(percentileSorted({ 9.0 }, 0.99), 9.0);
    // n=2 interpolates linearly between the two samples.
    EXPECT_DOUBLE_EQ(percentileSorted({ 10.0, 20.0 }, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted({ 10.0, 20.0 }, 0.5), 15.0);
    EXPECT_DOUBLE_EQ(percentileSorted({ 10.0, 20.0 }, 0.95), 19.5);
    EXPECT_DOUBLE_EQ(percentileSorted({ 10.0, 20.0 }, 1.0), 20.0);
    EXPECT_DOUBLE_EQ(percentileSorted({ 5.0, 5.0, 5.0 }, 0.99), 5.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({ 1.0, 2.0, 3.0 }), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, RatioZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(6.0, 2.0), 3.0);
}

TEST(Stats, BoxWhiskerSingleSample)
{
    BoxWhisker b = BoxWhisker::from({ 7.0 });
    EXPECT_DOUBLE_EQ(b.min, 7.0);
    EXPECT_DOUBLE_EQ(b.max, 7.0);
    EXPECT_DOUBLE_EQ(b.median, 7.0);
    EXPECT_EQ(b.n, 1u);
}

TEST(Stats, BoxWhiskerQuartiles)
{
    BoxWhisker b = BoxWhisker::from({ 1, 2, 3, 4, 5 });
    EXPECT_DOUBLE_EQ(b.median, 3.0);
    EXPECT_DOUBLE_EQ(b.q1, 2.0);
    EXPECT_DOUBLE_EQ(b.q3, 4.0);
    EXPECT_DOUBLE_EQ(b.meanVal, 3.0);
}

TEST(Stats, BoxWhiskerOutlierWhiskers)
{
    // 100 is beyond q3 + 1.5*IQR: the whisker must stop at 5.
    BoxWhisker b = BoxWhisker::from({ 1, 2, 3, 4, 5, 100 });
    EXPECT_LT(b.whiskerHi, 100.0);
    EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(Stats, BoxWhiskerEmpty)
{
    BoxWhisker b = BoxWhisker::from({});
    EXPECT_EQ(b.n, 0u);
}

TEST(Stats, BoxWhiskerTwoSamples)
{
    BoxWhisker b = BoxWhisker::from({ 1.0, 3.0 });
    EXPECT_EQ(b.n, 2u);
    EXPECT_DOUBLE_EQ(b.q1, 1.5);
    EXPECT_DOUBLE_EQ(b.median, 2.0);
    EXPECT_DOUBLE_EQ(b.q3, 2.5);
    // IQR 1 puts the limits at [0, 4]: both samples are inside, so the
    // whiskers reach the extremes.
    EXPECT_DOUBLE_EQ(b.whiskerLo, 1.0);
    EXPECT_DOUBLE_EQ(b.whiskerHi, 3.0);
}

TEST(Stats, BoxWhiskerAllEqualSamples)
{
    BoxWhisker b = BoxWhisker::from({ 5.0, 5.0, 5.0, 5.0 });
    EXPECT_DOUBLE_EQ(b.min, 5.0);
    EXPECT_DOUBLE_EQ(b.q1, 5.0);
    EXPECT_DOUBLE_EQ(b.median, 5.0);
    EXPECT_DOUBLE_EQ(b.q3, 5.0);
    EXPECT_DOUBLE_EQ(b.max, 5.0);
    EXPECT_DOUBLE_EQ(b.whiskerLo, 5.0);
    EXPECT_DOUBLE_EQ(b.whiskerHi, 5.0);
}

TEST(Stats, BoxWhiskerZeroIqrClampsWhiskersToTheBox)
{
    // q1 = q3 = 5 makes the 1.5*IQR limits degenerate to [5, 5]: the
    // outlier at 100 stays an outlier and the whisker stops at the box.
    BoxWhisker b = BoxWhisker::from({ 5.0, 5.0, 5.0, 5.0, 100.0 });
    EXPECT_DOUBLE_EQ(b.q1, 5.0);
    EXPECT_DOUBLE_EQ(b.q3, 5.0);
    EXPECT_DOUBLE_EQ(b.whiskerHi, 5.0);
    EXPECT_DOUBLE_EQ(b.whiskerLo, 5.0);
    EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(Stats, HistogramBucketsAndLabels)
{
    Histogram h({ 50, 100, 250 });
    ASSERT_EQ(h.numBuckets(), 4u);
    h.add(0);
    h.add(49);
    h.add(50);
    h.add(249);
    h.add(250);
    h.add(100000);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.bucketLabel(0), "[0,50)");
    EXPECT_EQ(h.bucketLabel(3), "250+");
    EXPECT_DOUBLE_EQ(h.bucketFrac(0), 2.0 / 6.0);
}

TEST(Stats, HistogramWeights)
{
    Histogram h({ 10 });
    h.add(5, 3);
    EXPECT_EQ(h.bucketCount(0), 3u);
}

TEST(Stats, StatSetGetMerge)
{
    StatSet a;
    a.set("x", 3);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
    EXPECT_FALSE(a.has("missing"));

    StatSet b;
    b.set("x", 10);
    b.set("y", 1);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 13.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 1.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

} // namespace
} // namespace constable
