/**
 * @file
 * Unit tests for Constable's hardware structures (SLD, RMT, AMT, xPRF),
 * the engine facade, and the storage/energy accounting (Tables 1 and 3).
 */

#include <gtest/gtest.h>

#include "core/amt.hh"
#include "core/constable.hh"
#include "core/rmt.hh"
#include "core/sld.hh"
#include "core/storage.hh"
#include "core/xprf.hh"

namespace constable {
namespace {

// ------------------------------------------------------------------- SLD

TEST(Sld, MissOnEmpty)
{
    Sld s;
    EXPECT_FALSE(s.lookup(0x100).hit);
}

TEST(Sld, TrainAllocatesEntry)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    SldLookup r = s.lookup(0x100);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.likelyStable);
    EXPECT_EQ(r.addr, 0x5000u);
    EXPECT_EQ(r.value, 42u);
}

class SldThreshold : public ::testing::TestWithParam<uint8_t>
{
};

TEST_P(SldThreshold, LikelyStableExactlyAtThreshold)
{
    SldConfig cfg;
    cfg.confThreshold = GetParam();
    Sld s(cfg);
    s.train(0x100, 0x5000, 42, false); // allocation (conf 0)
    for (unsigned i = 0; i < GetParam(); ++i) {
        EXPECT_FALSE(s.lookup(0x100).likelyStable)
            << "premature at " << i;
        s.train(0x100, 0x5000, 42, false);
    }
    EXPECT_TRUE(s.lookup(0x100).likelyStable);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SldThreshold,
                         ::testing::Values(1, 4, 15, 30));

TEST(Sld, ArmOnlyWhenMarkedLikelyStable)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 40; ++i)
        s.train(0x100, 0x5000, 42, false);
    EXPECT_FALSE(s.lookup(0x100).canEliminate);
    EXPECT_TRUE(s.train(0x100, 0x5000, 42, true)); // armed now
    EXPECT_TRUE(s.lookup(0x100).canEliminate);
    EXPECT_EQ(s.arms, 1u);
}

TEST(Sld, MismatchHalvesConfidenceAndDisarms)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 31; ++i)
        s.train(0x100, 0x5000, 42, true);
    ASSERT_TRUE(s.lookup(0x100).canEliminate);
    s.train(0x100, 0x5000, 43, false); // value changed
    SldLookup r = s.lookup(0x100);
    EXPECT_FALSE(r.canEliminate);
    EXPECT_FALSE(r.likelyStable); // 31/2 = 15 < 30
    EXPECT_EQ(r.value, 43u);
}

TEST(Sld, AddressChangeAlsoMismatch)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    s.train(0x100, 0x5000, 42, false);
    s.train(0x100, 0x5008, 42, false);
    EXPECT_EQ(s.trainMismatches, 1u);
    EXPECT_EQ(s.lookup(0x100).addr, 0x5008u);
}

TEST(Sld, ResetCanEliminateKeepsConfidence)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 31; ++i)
        s.train(0x100, 0x5000, 42, true);
    s.resetCanEliminate(0x100);
    SldLookup r = s.lookup(0x100);
    EXPECT_FALSE(r.canEliminate);
    EXPECT_TRUE(r.likelyStable); // confidence survives the reset
    // One matching writeback re-arms (paper example, step B).
    EXPECT_TRUE(s.train(0x100, 0x5000, 42, true));
}

TEST(Sld, HalveConfidenceOnViolation)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 31; ++i)
        s.train(0x100, 0x5000, 42, true);
    s.halveConfidence(0x100);
    SldLookup r = s.lookup(0x100);
    EXPECT_FALSE(r.canEliminate);
    EXPECT_FALSE(r.likelyStable);
}

TEST(Sld, ConfidenceSaturatesAtMax)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 100; ++i)
        s.train(0x100, 0x5000, 42, false);
    // After one mismatch, confidence halves from 31 to 15.
    s.train(0x100, 0x5000, 1, false);
    s.train(0x100, 0x5000, 1, false); // 16
    for (int i = 0; i < 14; ++i)
        s.train(0x100, 0x5000, 1, false);
    EXPECT_TRUE(s.lookup(0x100).likelyStable); // back above 30
}

TEST(Sld, SetCapacityEviction)
{
    SldConfig cfg;
    cfg.sets = 2;
    cfg.ways = 2;
    Sld s(cfg);
    // More distinct PCs than entries: older ones must be evicted.
    for (PC pc = 0; pc < 64; ++pc)
        s.train(pc << 2, 0x100, 1, false);
    unsigned present = 0;
    for (PC pc = 0; pc < 64; ++pc)
        present += s.lookup(pc << 2).hit;
    EXPECT_LE(present, 4u);
}

TEST(Sld, FlushAllInvalidates)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    s.flushAll();
    EXPECT_FALSE(s.lookup(0x100).hit);
}

TEST(Sld, LikelyStableFracDiagnostic)
{
    Sld s;
    s.train(0x100, 0x1, 1, false);
    for (int i = 0; i < 40; ++i)
        s.train(0x100, 0x1, 1, false);
    s.train(0x104, 0x2, 2, false);
    EXPECT_NEAR(s.likelyStableFrac(), 0.5, 1e-9);
}

TEST(Sld, CustomThresholdReclimbsAfterHalving)
{
    SldConfig cfg;
    cfg.confThreshold = 10;
    cfg.confMax = 12;
    Sld s(cfg);
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 50; ++i)
        s.train(0x100, 0x5000, 42, false); // saturates at confMax = 12
    ASSERT_TRUE(s.lookup(0x100).likelyStable);
    s.train(0x100, 0x5000, 7, false); // mismatch: 12 -> 6
    EXPECT_FALSE(s.lookup(0x100).likelyStable);
    for (int i = 0; i < 4; ++i)
        s.train(0x100, 0x5000, 7, false); // 6 -> 10
    EXPECT_TRUE(s.lookup(0x100).likelyStable);
}

TEST(Sld, ResetAndHalveOnUnknownPcAreSafe)
{
    Sld s;
    s.resetCanEliminate(0x900);
    s.halveConfidence(0x900);
    EXPECT_EQ(s.resets, 0u);
    EXPECT_FALSE(s.lookup(0x900).hit);
}

TEST(Sld, ArmRequiresMatchingOutcome)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 31; ++i)
        s.train(0x100, 0x5000, 42, false);
    ASSERT_TRUE(s.lookup(0x100).likelyStable);
    // Marked likely-stable at rename, but the outcome changed: no arm.
    EXPECT_FALSE(s.train(0x100, 0x5000, 43, true));
    EXPECT_FALSE(s.lookup(0x100).canEliminate);
}

TEST(Sld, RepeatedHalvingBottomsOutAndRetrains)
{
    Sld s;
    s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 31; ++i)
        s.train(0x100, 0x5000, 42, false);
    for (int i = 0; i < 10; ++i)
        s.halveConfidence(0x100); // must clamp at zero without wrapping
    EXPECT_FALSE(s.lookup(0x100).likelyStable);
    for (int i = 0; i < 31; ++i)
        s.train(0x100, 0x5000, 42, false);
    EXPECT_TRUE(s.lookup(0x100).likelyStable);
}

// ------------------------------------------------------------------- RMT

TEST(Rmt, InsertAndDrain)
{
    Rmt r;
    std::vector<PC> evicted;
    EXPECT_TRUE(r.insert(RBX, 0x100, evicted));
    EXPECT_FALSE(r.insert(RBX, 0x100, evicted)); // duplicate
    EXPECT_TRUE(evicted.empty());
    auto drained = r.drainOnWrite(RBX);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0], 0x100u);
    EXPECT_TRUE(r.drainOnWrite(RBX).empty());
}

TEST(Rmt, StackRegistersHaveLargerCapacity)
{
    Rmt r;
    std::vector<PC> evicted;
    for (PC pc = 0; pc < 16; ++pc)
        r.insert(RSP, 0x1000 + pc * 4, evicted);
    EXPECT_TRUE(evicted.empty());
    r.insert(RSP, 0x2000, evicted);
    ASSERT_EQ(evicted.size(), 1u); // 17th insert evicts the oldest
    EXPECT_EQ(evicted[0], 0x1000u);
}

TEST(Rmt, OtherRegistersCapacityEight)
{
    Rmt r;
    std::vector<PC> evicted;
    for (PC pc = 0; pc < 9; ++pc)
        r.insert(RBX, 0x1000 + pc * 4, evicted);
    EXPECT_EQ(evicted.size(), 1u);
    EXPECT_EQ(r.capacityEvictions, 1u);
}

TEST(Rmt, RemovePcEverywhere)
{
    Rmt r;
    std::vector<PC> evicted;
    r.insert(RBX, 0x100, evicted);
    r.insert(RCX, 0x100, evicted);
    r.removePc(0x100);
    EXPECT_TRUE(r.drainOnWrite(RBX).empty());
    EXPECT_TRUE(r.drainOnWrite(RCX).empty());
}

TEST(Rmt, DrainLeavesOtherRegistersIntact)
{
    Rmt r;
    std::vector<PC> evicted;
    r.insert(RBX, 0x100, evicted);
    r.insert(RCX, 0x100, evicted);
    auto drained = r.drainOnWrite(RBX);
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0], 0x100u);
    // RCX still monitors the PC until its own write (or removePc).
    EXPECT_EQ(r.occupancy(RCX), 1u);
    EXPECT_EQ(r.drainOnWrite(RCX).size(), 1u);
}

TEST(Rmt, FlushAll)
{
    Rmt r;
    std::vector<PC> evicted;
    r.insert(RBX, 0x100, evicted);
    r.flushAll();
    EXPECT_EQ(r.occupancy(RBX), 0u);
}

// ------------------------------------------------------------------- AMT

TEST(Amt, InsertAndInvalidate)
{
    Amt a;
    std::vector<PC> evicted;
    a.insert(0x5000, 0x100, evicted);
    EXPECT_TRUE(a.contains(0x5000));
    auto pcs = a.invalidate(0x5000);
    ASSERT_EQ(pcs.size(), 1u);
    EXPECT_EQ(pcs[0], 0x100u);
    EXPECT_FALSE(a.contains(0x5000));
}

TEST(Amt, CachelineGranularityAliases)
{
    Amt a;
    std::vector<PC> evicted;
    a.insert(0x5000, 0x100, evicted);
    // A store to a different byte of the same 64B line must hit.
    auto pcs = a.invalidate(0x5038);
    EXPECT_EQ(pcs.size(), 1u);
}

TEST(Amt, FullAddressModeDistinguishesBytes)
{
    AmtConfig cfg;
    cfg.fullAddress = true;
    Amt a(cfg);
    std::vector<PC> evicted;
    a.insert(0x5000, 0x100, evicted);
    EXPECT_TRUE(a.invalidate(0x5038).empty());
    EXPECT_EQ(a.invalidate(0x5000).size(), 1u);
}

TEST(Amt, MultiplePcsPerEntry)
{
    Amt a;
    std::vector<PC> evicted;
    a.insert(0x5000, 0x100, evicted);
    a.insert(0x5008, 0x200, evicted); // same line
    auto pcs = a.invalidate(0x5000);
    EXPECT_EQ(pcs.size(), 2u);
}

TEST(Amt, PcListOverflowEvictsOldest)
{
    Amt a; // 4 PCs per entry
    std::vector<PC> evicted;
    for (PC pc = 0; pc < 5; ++pc)
        a.insert(0x5000, 0x100 + 4 * pc, evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0x100u);
}

TEST(Amt, SetCapacityEvictionReportsPcs)
{
    AmtConfig cfg;
    cfg.sets = 1;
    cfg.ways = 2;
    Amt a(cfg);
    std::vector<PC> evicted;
    a.insert(0x0 * 64, 0x100, evicted);
    a.insert(0x1 * 64, 0x200, evicted);
    EXPECT_TRUE(evicted.empty());
    a.insert(0x2 * 64, 0x300, evicted);
    ASSERT_EQ(evicted.size(), 1u); // LRU entry's PC handed back for reset
}

TEST(Amt, DuplicateInsertIgnored)
{
    Amt a;
    std::vector<PC> evicted;
    a.insert(0x5000, 0x100, evicted);
    a.insert(0x5000, 0x100, evicted);
    EXPECT_EQ(a.invalidate(0x5000).size(), 1u);
}

TEST(Amt, FlushAll)
{
    Amt a;
    std::vector<PC> evicted;
    a.insert(0x5000, 0x100, evicted);
    a.flushAll();
    EXPECT_FALSE(a.contains(0x5000));
}

// ------------------------------------------------------------------ xPRF

TEST(Xprf, AllocateUntilFull)
{
    Xprf x(2);
    EXPECT_TRUE(x.tryAlloc());
    EXPECT_TRUE(x.tryAlloc());
    EXPECT_FALSE(x.tryAlloc());
    EXPECT_EQ(x.allocFailures, 1u);
    x.release();
    EXPECT_TRUE(x.tryAlloc());
}

TEST(Xprf, ReleaseBelowZeroIsSafe)
{
    Xprf x(1);
    x.release();
    EXPECT_EQ(x.occupancy(), 0u);
}

// ---------------------------------------------------------------- engine

/** Drive the engine until pc becomes eliminable. */
void
warmUntilArmed(ConstableEngine& e, PC pc, Addr addr, uint64_t value,
               AddrMode mode = AddrMode::PcRel,
               std::array<uint8_t, 3> srcs = { kNoReg, kNoReg, kNoReg })
{
    for (int i = 0; i < 64; ++i) {
        ElimDecision d = e.renameLoad(pc, mode);
        if (d.eliminate) {
            // Retire the probe instance so the xPRF register is free again.
            e.releaseEliminated();
            return;
        }
        e.writebackLoad(pc, addr, value, d.likelyStable, srcs);
    }
}

TEST(Engine, DetectsAndEliminatesStableLoad)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
    ASSERT_TRUE(d.eliminate);
    EXPECT_EQ(d.addr, 0x5000u);
    EXPECT_EQ(d.value, 42u);
    e.releaseEliminated();
}

TEST(Engine, RequiresThresholdInstances)
{
    ConstableEngine e;
    // Fewer instances than the threshold: never eliminates.
    for (int i = 0; i < 25; ++i) {
        ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
        EXPECT_FALSE(d.eliminate);
        e.writebackLoad(0x100, 0x5000, 42, d.likelyStable,
                        { kNoReg, kNoReg, kNoReg });
    }
}

TEST(Engine, RegisterWriteResetsElimination)
{
    ConstableEngine e;
    std::array<uint8_t, 3> srcs = { RBX, kNoReg, kNoReg };
    warmUntilArmed(e, 0x100, 0x5000, 42, AddrMode::RegRel, srcs);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::RegRel).eliminate);
    e.releaseEliminated();
    // Condition 1: a write to RBX must stop further elimination.
    unsigned updates = e.renameDstWrite(RBX);
    EXPECT_EQ(updates, 1u);
    ElimDecision d = e.renameLoad(0x100, AddrMode::RegRel);
    EXPECT_FALSE(d.eliminate);
    EXPECT_TRUE(d.likelyStable); // confidence survives; re-arms next wb
    EXPECT_TRUE(e.writebackLoad(0x100, 0x5000, 42, true, srcs));
    EXPECT_TRUE(e.renameLoad(0x100, AddrMode::RegRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, StoreToAddressResetsElimination)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    // Condition 2: store to the same cacheline.
    e.storeOrSnoopAddr(0x5010);
    EXPECT_FALSE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
}

TEST(Engine, SnoopToOtherLineDoesNotReset)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    e.storeOrSnoopAddr(0x9000);
    EXPECT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, ViolationHalvesConfidence)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    e.onEliminationViolation(0x100);
    ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
    EXPECT_FALSE(d.eliminate);
    EXPECT_FALSE(d.likelyStable); // halved below threshold
}

TEST(Engine, AddressingModeFilter)
{
    ConstableConfig cfg;
    cfg.eliminateStackRel = false;
    ConstableEngine e(cfg);
    for (int i = 0; i < 64; ++i) {
        ElimDecision d = e.renameLoad(0x100, AddrMode::StackRel);
        EXPECT_FALSE(d.eliminate);
        e.writebackLoad(0x100, 0x5000, 42, d.likelyStable,
                        { RSP, kNoReg, kNoReg });
    }
}

TEST(Engine, XprfExhaustionFallsBackToExecution)
{
    ConstableConfig cfg;
    cfg.xprfEntries = 1;
    ConstableEngine e(cfg);
    warmUntilArmed(e, 0x100, 0x5000, 42);
    warmUntilArmed(e, 0x200, 0x6000, 43);
    EXPECT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    ElimDecision d = e.renameLoad(0x200, AddrMode::PcRel);
    EXPECT_FALSE(d.eliminate); // xPRF full
    EXPECT_EQ(e.xprfRejected, 1u);
    e.releaseEliminated();
    EXPECT_TRUE(e.renameLoad(0x200, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, ContextSwitchFlushesEverything)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    e.contextSwitch();
    ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
    EXPECT_FALSE(d.eliminate);
    EXPECT_FALSE(d.likelyStable);
}

TEST(Engine, AmtIVariantResetsOnL1Evict)
{
    ConstableConfig cfg;
    cfg.cvBitPinning = false;
    ConstableEngine e(cfg);
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    e.onL1Evict(lineAddr(0x5000));
    EXPECT_FALSE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
}

TEST(Engine, PinnedVariantIgnoresL1Evict)
{
    ConstableEngine e; // cvBitPinning = true (default)
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    e.onL1Evict(lineAddr(0x5000));
    EXPECT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, AmtIEvictOfOtherLineKeepsElimination)
{
    ConstableConfig cfg;
    cfg.cvBitPinning = false; // the mechFor("constable-amt-i") variant
    ConstableEngine e(cfg);
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    e.onL1Evict(lineAddr(0x9000)); // unrelated line
    EXPECT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, AmtIReArmsWithOneWritebackAfterEvict)
{
    ConstableConfig cfg;
    cfg.cvBitPinning = false;
    ConstableEngine e(cfg);
    warmUntilArmed(e, 0x100, 0x5000, 42);
    e.onL1Evict(lineAddr(0x5000));
    ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
    ASSERT_FALSE(d.eliminate);
    // Confidence survives the eviction reset, so one matching writeback
    // re-arms (the cheapness of recovery is what makes AMT-I viable).
    EXPECT_TRUE(d.likelyStable);
    EXPECT_TRUE(e.writebackLoad(0x100, 0x5000, 42, true,
                                { kNoReg, kNoReg, kNoReg }));
    EXPECT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, PinningDoesNotProtectAgainstStoreConflicts)
{
    ConstableEngine e; // cvBitPinning = true (default full Constable)
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    // Pinning only rides out L1D capacity evictions; a real store to the
    // monitored line must still reset elimination (correctness).
    e.storeOrSnoopAddr(0x5020);
    EXPECT_EQ(e.storeResets, 1u);
    EXPECT_FALSE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    EXPECT_EQ(e.snoopResets, 0u);
}

TEST(Engine, AmtCapacityEvictionResetsVictimEvenWhenPinned)
{
    ConstableConfig cfg;
    cfg.amt.sets = 1;
    cfg.amt.ways = 2;
    ConstableEngine e(cfg); // pinned variant
    warmUntilArmed(e, 0x100, 0x5000, 1);
    warmUntilArmed(e, 0x200, 0x6000, 2);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
    // Arming a third line overflows the single set: the LRU victim (0x100)
    // loses AMT monitoring and must stop eliminating, pinning or not.
    warmUntilArmed(e, 0x300, 0x7000, 3);
    ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
    EXPECT_FALSE(d.eliminate);
    EXPECT_TRUE(d.likelyStable); // confidence itself is kept
    EXPECT_TRUE(e.renameLoad(0x300, AddrMode::PcRel).eliminate);
    e.releaseEliminated();
}

TEST(Engine, AnyAddressSourceWriteResetsElimination)
{
    ConstableEngine e;
    std::array<uint8_t, 3> srcs = { RBX, RCX, kNoReg };
    warmUntilArmed(e, 0x100, 0x5000, 42, AddrMode::RegRel, srcs);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::RegRel).eliminate);
    e.releaseEliminated();
    // Second source register written: elimination stops.
    EXPECT_EQ(e.renameDstWrite(RCX), 1u);
    EXPECT_FALSE(e.renameLoad(0x100, AddrMode::RegRel).eliminate);
    // The reset also dropped the RBX monitor (fresh re-insert policy), so a
    // write to RBX now drains nothing.
    EXPECT_EQ(e.renameDstWrite(RBX), 0u);
    // Re-arming re-inserts all sources; the first register works again.
    EXPECT_TRUE(e.writebackLoad(0x100, 0x5000, 42, true, srcs));
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::RegRel).eliminate);
    e.releaseEliminated();
    EXPECT_EQ(e.renameDstWrite(RBX), 1u);
    EXPECT_FALSE(e.renameLoad(0x100, AddrMode::RegRel).eliminate);
}

TEST(Engine, StoreConflictBackoffStillRetrainable)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    // A store changes the value; training follows the new value and the
    // load becomes eliminable again at the updated contents.
    e.storeOrSnoopAddr(0x5000);
    ASSERT_FALSE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    warmUntilArmed(e, 0x100, 0x5000, 99);
    ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
    ASSERT_TRUE(d.eliminate);
    EXPECT_EQ(d.value, 99u);
    e.releaseEliminated();
}

TEST(Engine, DisabledEngineNeverEliminates)
{
    ConstableConfig cfg;
    cfg.enabled = false;
    ConstableEngine e(cfg);
    for (int i = 0; i < 64; ++i) {
        ElimDecision d = e.renameLoad(0x100, AddrMode::PcRel);
        EXPECT_FALSE(d.eliminate);
        EXPECT_FALSE(e.writebackLoad(0x100, 0x5000, 42, true,
                                     { kNoReg, kNoReg, kNoReg }));
    }
}

TEST(Engine, StatsExport)
{
    ConstableEngine e;
    warmUntilArmed(e, 0x100, 0x5000, 42);
    ASSERT_TRUE(e.renameLoad(0x100, AddrMode::PcRel).eliminate);
    StatSet s;
    e.exportStats(s);
    // warmUntilArmed consumed one elimination itself.
    EXPECT_DOUBLE_EQ(s.get("constable.eliminated"), 2.0);
    EXPECT_GE(s.get("constable.sld.arms"), 1.0);
}

// -------------------------------------------------------------- Table 1/3

TEST(Storage, MatchesPaperTable1)
{
    ConstableConfig cfg;
    auto rows = storageOverhead(cfg);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_NEAR(rows[0].kb(), 7.875, 0.01); // SLD ~7.9 KB
    EXPECT_NEAR(rows[1].kb(), 0.42, 0.01);  // RMT ~0.4 KB
    EXPECT_NEAR(rows[2].kb(), 4.0, 0.01);   // AMT 4.0 KB
    EXPECT_NEAR(totalStorageKb(cfg), 12.4, 0.15); // paper: 12.4 KB
}

TEST(Storage, ScalesWithGeometry)
{
    ConstableConfig cfg;
    cfg.sld.sets = 64; // double the SLD
    EXPECT_GT(totalStorageKb(cfg), 12.4 + 7.0);
}

TEST(Energy, Table3Values)
{
    auto rows = constableEnergyTable();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_DOUBLE_EQ(rows[0].readPj, 10.76);
    EXPECT_DOUBLE_EQ(rows[0].writePj, 16.70);
    EXPECT_DOUBLE_EQ(rows[2].areaMm2, 0.017);
}

} // namespace
} // namespace constable
