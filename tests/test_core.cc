/**
 * @file
 * Integration tests of the out-of-order core: golden-check verification
 * (paper §8.5) across all mechanisms, conservation invariants, adversarial
 * store/eliminated-load ordering races, SMT2, oracle modes and scaling.
 */

#include <gtest/gtest.h>

#include "inspector/load_inspector.hh"
#include "sim/mechanisms.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

Trace
smokeTrace(size_t category, size_t ops = 20'000)
{
    auto specs = smokeSuite(ops);
    return generateTrace(specs[category]);
}

// Parameterized over workload category x mechanism: the paper's §8.5
// functional verification, in miniature: no run may deliver a wrong value
// to retirement.
struct GoldenParam
{
    size_t category;
    int mechanism;
};

class GoldenCheck
    : public ::testing::TestWithParam<std::tuple<size_t, int>>
{
  public:
    static MechanismConfig
    mechConfigFor(int id, const Trace& trace)
    {
        switch (id) {
          case 0: return mechFor("baseline");
          case 1: return mechFor("constable");
          case 2: return mechFor("eves");
          case 3: return mechFor("eves+constable");
          case 4: return mechFor("elar");
          case 5: return mechFor("rfp");
          case 6: return mechFor("constable-amt-i");
          case 7: {
              auto gs = inspectLoads(trace).globalStablePcs();
              return mechFor("ideal-constable", &gs);
          }
          case 8: {
              auto gs = inspectLoads(trace).globalStablePcs();
              return mechFor("ideal-stable-lvp", &gs);
          }
          default: {
              auto gs = inspectLoads(trace).globalStablePcs();
              return mechFor("ideal-stable-lvp-nofetch", &gs);
          }
        }
    }
};

TEST_P(GoldenCheck, EveryRetiredLoadMatchesFunctionalModel)
{
    auto [category, mechanism] = GetParam();
    Trace t = smokeTrace(category);
    SystemConfig cfg { CoreConfig{}, GoldenCheck::mechConfigFor(mechanism, t) };
    // runTrace() panics on a golden-check failure; also verify invariants.
    RunResult r = runTrace(t, cfg);
    EXPECT_FALSE(r.goldenCheckFailed);
    EXPECT_EQ(r.instructions, t.size());
    EXPECT_EQ(static_cast<uint64_t>(r.stats.get("loads.retired")),
              t.countClass(OpClass::Load));
    EXPECT_GT(r.ipc(), 0.1);
    EXPECT_LT(r.ipc(), 6.01);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GoldenCheck,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)));

TEST(Core, DeterministicCycles)
{
    Trace t = smokeTrace(0, 10'000);
    SystemConfig cfg { CoreConfig{}, mechFor("constable") };
    RunResult a = runTrace(t, cfg);
    RunResult b = runTrace(t, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.get("loads.eliminated"),
              b.stats.get("loads.eliminated"));
}

TEST(Core, ConstableEliminatesSubstantialFraction)
{
    Trace t = smokeTrace(1, 40'000); // Enterprise: stable-heavy
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    double frac = r.stats.get("loads.eliminated") /
                  r.stats.get("loads.retired");
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.60);
}

TEST(Core, BaselineNeverEliminates)
{
    Trace t = smokeTrace(0, 10'000);
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("baseline") });
    EXPECT_DOUBLE_EQ(r.stats.get("loads.eliminated"), 0.0);
}

TEST(Core, ConstableReducesRsAllocationsAndL1dAccesses)
{
    Trace t = smokeTrace(1, 40'000);
    RunResult base = runTrace(t, { CoreConfig{}, mechFor("baseline") });
    RunResult cons = runTrace(t, { CoreConfig{}, mechFor("constable") });
    EXPECT_LT(cons.stats.get("rs.allocs"), base.stats.get("rs.allocs"));
    EXPECT_LT(cons.stats.get("mem.l1d.reads"),
              base.stats.get("mem.l1d.reads"));
}

TEST(Core, AdversarialStoreRaceIsCaughtByDisambiguation)
{
    // A load becomes stable, then an older store changes its value in the
    // same rename neighbourhood: the eliminated load must be squashed and
    // re-executed (paper §6.5 / Fig 10), and the golden check must hold.
    ProgramBuilder b(1, 16);
    b.mem().write(0x5000, 7, 8);
    // Warm to threshold with benign instances.
    for (int i = 0; i < 40; ++i) {
        b.load(0x100, RAX, AddrMode::PcRel, 0x5000);
        b.alu(0x104, RCX, RAX);
        for (int j = 0; j < 6; ++j)
            b.alu(0x110 + 4 * j, RDX, RCX);
    }
    // Race phase: store (new value) immediately before the load.
    for (int k = 0; k < 30; ++k) {
        uint64_t nv = 1000 + k;
        b.store(0x200, AddrMode::PcRel, 0x5000, nv);
        b.load(0x100, RAX, AddrMode::PcRel, 0x5000);
        b.alu(0x104, RCX, RAX);
        // Re-stabilize between races.
        for (int i = 0; i < 35; ++i) {
            b.load(0x100, RAX, AddrMode::PcRel, 0x5000);
            b.alu(0x104, RCX, RAX);
        }
    }
    Trace t = b.finish("race", "Test");
    ASSERT_TRUE(validateTrace(t).empty());
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    EXPECT_FALSE(r.goldenCheckFailed);
    EXPECT_GT(r.stats.get("loads.eliminated"), 0.0);
}

TEST(Core, SnoopResetsEliminationMidTrace)
{
    ProgramBuilder b(1, 16);
    b.mem().write(0x5000, 7, 8);
    for (int i = 0; i < 120; ++i) {
        b.load(0x100, RAX, AddrMode::PcRel, 0x5000);
        b.alu(0x104, RCX, RAX);
        // Filler work so training keeps pace with rename.
        for (int j = 0; j < 8; ++j)
            b.mul(0x110 + 4 * j, RDX, RCX, RAX);
        if (i == 90)
            b.snoopHere(0x5000);
    }
    Trace t = b.finish("snoop", "Test");
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    EXPECT_FALSE(r.goldenCheckFailed);
    EXPECT_GT(r.stats.get("constable.amt.invalidations"), 0.0);
}

TEST(Core, IdealConstableBeatsIdealStableLvp)
{
    // Paper §4.4 / Fig 7: eliminating execution must outperform perfect
    // value prediction of the same loads.
    Trace t = smokeTrace(4, 40'000); // Server: stable-heavy
    auto insp = inspectLoads(t);
    auto pcs = insp.globalStablePcs();
    RunResult base = runTrace(t, { CoreConfig{}, mechFor("baseline") });
    RunResult lvp = runTrace(
        t, { CoreConfig{}, mechFor("ideal-stable-lvp", &pcs) });
    RunResult cons = runTrace(
        t, { CoreConfig{}, mechFor("ideal-constable", &pcs) });
    EXPECT_GE(speedup(lvp, base), 0.99);
    EXPECT_GT(speedup(cons, base), speedup(lvp, base));
}

TEST(Core, IdealNoFetchBetweenLvpAndConstable)
{
    Trace t = smokeTrace(4, 40'000);
    auto pcs = inspectLoads(t).globalStablePcs();
    RunResult lvp = runTrace(
        t, { CoreConfig{}, mechFor("ideal-stable-lvp", &pcs) });
    RunResult nofetch = runTrace(
        t, { CoreConfig{}, mechFor("ideal-stable-lvp-nofetch", &pcs) });
    RunResult cons = runTrace(
        t, { CoreConfig{}, mechFor("ideal-constable", &pcs) });
    EXPECT_GE(static_cast<double>(lvp.cycles) + 1,
              static_cast<double>(nofetch.cycles));
    EXPECT_GE(static_cast<double>(nofetch.cycles) + 1,
              static_cast<double>(cons.cycles));
}

TEST(Core, WiderLoadExecutionHelpsBaseline)
{
    Trace t = smokeTrace(4, 40'000);
    CoreConfig narrow;
    CoreConfig wide;
    wide.loadPorts = 6;
    RunResult rn = runTrace(t, { narrow, mechFor("baseline") });
    RunResult rw = runTrace(t, { wide, mechFor("baseline") });
    EXPECT_LE(rw.cycles, rn.cycles);
}

TEST(Core, DeeperPipelineHelpsBaseline)
{
    Trace t = smokeTrace(2, 40'000);
    CoreConfig deep;
    deep.depthScale = 2.0;
    RunResult r1 = runTrace(t, { CoreConfig{}, mechFor("baseline") });
    RunResult r2 = runTrace(t, { deep, mechFor("baseline") });
    EXPECT_LE(r2.cycles, r1.cycles + r1.cycles / 50);
}

TEST(Core, ModeFilteredRunsEliminateOnlyThatMode)
{
    Trace t = smokeTrace(1, 40'000);
    RunResult r = runTrace(
        t, { CoreConfig{}, mechFor("constable-stackrel") });
    EXPECT_GT(r.stats.get("loads.elim.stackRel"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("loads.elim.pcRel"), 0.0);
    EXPECT_DOUBLE_EQ(r.stats.get("loads.elim.regRel"), 0.0);
}

TEST(Core, EliminationViolationsAreRare)
{
    // Paper Fig 21a: only ~0.09% of eliminated loads violate ordering.
    Trace t = smokeTrace(1, 40'000);
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    double frac = ratio(r.stats.get("ordering.elimViolations"),
                        r.stats.get("loads.eliminated"));
    EXPECT_LT(frac, 0.02);
}

TEST(Core, XprfRejectionsAreBounded)
{
    Trace t = smokeTrace(1, 40'000);
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    double frac = ratio(r.stats.get("constable.xprfRejected"),
                        r.stats.get("loads.eliminated") +
                            r.stats.get("constable.xprfRejected"));
    EXPECT_LT(frac, 0.25);
}

TEST(Core, WrongPathUpdatesLoseLittlePerformance)
{
    // Paper Fig 9b: enabling wrong-path updates changes performance by a
    // small amount.
    Trace t = smokeTrace(3, 40'000); // ISPEC: branchy
    MechanismConfig on = mechFor("constable");
    MechanismConfig off = mechFor("constable");
    off.constable.wrongPathUpdates = false;
    RunResult ron = runTrace(t, { CoreConfig{}, on });
    RunResult roff = runTrace(t, { CoreConfig{}, off });
    double change = std::abs(speedup(ron, roff) - 1.0);
    EXPECT_LT(change, 0.05);
}

TEST(Core, SldUpdateRateMatchesPaperScale)
{
    // Paper Fig 9a: ~0.28 SLD updates/cycle on average; we require the
    // same order of magnitude.
    Trace t = smokeTrace(1, 40'000);
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    EXPECT_LT(r.stats.get("sld.updates.perCycle"), 1.5);
}

// --------------------------------------------------------------- SMT2

TEST(Smt, RunsAndPassesGoldenCheck)
{
    Trace a = smokeTrace(0, 15'000);
    Trace b = smokeTrace(4, 15'000);
    RunResult r = runSmtPair(a, b, { CoreConfig{}, mechFor("baseline") });
    EXPECT_FALSE(r.goldenCheckFailed);
    EXPECT_EQ(r.instructions, a.size() + b.size());
}

TEST(Smt, SharingBeatsSerialExecution)
{
    Trace a = smokeTrace(0, 15'000);
    Trace b = smokeTrace(4, 15'000);
    SystemConfig cfg { CoreConfig{}, mechFor("baseline") };
    RunResult smt = runSmtPair(a, b, cfg);
    RunResult sa = runTrace(a, cfg);
    RunResult sb = runTrace(b, cfg);
    EXPECT_LT(smt.cycles, sa.cycles + sb.cycles);
}

TEST(Smt, ConstableWorksUnderSmt)
{
    Trace a = smokeTrace(1, 15'000);
    Trace b = smokeTrace(4, 15'000);
    RunResult base = runSmtPair(a, b, { CoreConfig{}, mechFor("baseline") });
    RunResult cons = runSmtPair(a, b, { CoreConfig{}, mechFor("constable") });
    EXPECT_FALSE(cons.goldenCheckFailed);
    EXPECT_GT(cons.stats.get("loads.eliminated"), 0.0);
    EXPECT_GT(speedup(cons, base), 0.97);
}

TEST(Runner, RelocateTraceShiftsEverything)
{
    Trace t = smokeTrace(0, 2'000);
    Trace r = relocateTrace(t, 0x1000, 0x100000);
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(r.ops[i].pc, t.ops[i].pc + 0x1000);
        if (t.ops[i].isMem()) {
            EXPECT_EQ(r.ops[i].effAddr, t.ops[i].effAddr + 0x100000);
        }
    }
}

TEST(Runner, SpeedupMath)
{
    RunResult a, b;
    a.cycles = 50;
    b.cycles = 100;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
}

TEST(Runner, ParallelForCoversAllIndices)
{
    std::vector<std::atomic<int>> hits(64);
    parallelFor(64, [&](size_t i) { hits[i]++; });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Runner, PresetsSelectMechanisms)
{
    EXPECT_FALSE(mechFor("baseline").constable.enabled);
    EXPECT_TRUE(mechFor("baseline").mrn);
    EXPECT_TRUE(mechFor("constable").constable.enabled);
    EXPECT_TRUE(mechFor("eves").eves);
    EXPECT_TRUE(mechFor("eves+constable").eves);
    EXPECT_TRUE(mechFor("eves+constable").constable.enabled);
    EXPECT_TRUE(mechFor("elar").elar);
    EXPECT_TRUE(mechFor("rfp").rfp);
    EXPECT_FALSE(mechFor("constable-amt-i").constable.cvBitPinning);
    std::unordered_set<PC> idealPcs { 0x100 };
    auto ideal = mechFor("ideal-constable", &idealPcs);
    EXPECT_EQ(static_cast<int>(ideal.ideal.mode),
              static_cast<int>(IdealMode::Constable));
    EXPECT_EQ(ideal.ideal.stablePcs.size(), 1u);
}

// ------------------------------------------------- idle-cycle fast-forward

/** One long-latency op over an otherwise drained pipeline: the completion
 *  event is the only thing in the machine, so the idle-cycle fast-forward
 *  must jump the intervening window and land cycle-exactly on it. */
static RunResult
runWithDivLatency(unsigned div_lat)
{
    ProgramBuilder b(1, 16);
    b.loadImm(0x100, RAX, 6);
    b.div(0x104, RCX, RAX, RAX);
    b.alu(0x108, RDX, RCX);
    Trace t = b.finish("wheel-edge", "Test");
    CoreConfig cfg;
    cfg.divLat = div_lat;
    return runTrace(t, { cfg, mechFor("baseline") });
}

TEST(FastForward, EventAtWheelBoundaryIsCycleExact)
{
    // kWheelSize-1 is the farthest an event can sit in the wheel: the skip
    // window and the occupancy-bitmap search both wrap exactly here.
    RunResult atEdge = runWithDivLatency(OooCore::kWheelSize - 1);
    RunResult oneLess = runWithDivLatency(OooCore::kWheelSize - 2);
    EXPECT_EQ(atEdge.cycles, oneLess.cycles + 1);
    EXPECT_EQ(atEdge.instructions, oneLess.instructions);
}

TEST(FastForward, DelaysBeyondTheWheelClampToItsEdge)
{
    RunResult atEdge = runWithDivLatency(OooCore::kWheelSize - 1);
    RunResult clamped = runWithDivLatency(OooCore::kWheelSize + 500);
    EXPECT_EQ(clamped.cycles, atEdge.cycles);
}

TEST(FastForward, SkippedWindowsKeepStallAccountingExact)
{
    // Every cycle of the idle window renames nothing; the bulk-accounted
    // renameZero counter must cover the whole run minus the active cycles,
    // exactly as the cycle-by-cycle loop would.
    RunResult r = runWithDivLatency(OooCore::kWheelSize - 1);
    EXPECT_GE(r.stats.get("stall.renameZero"),
              static_cast<double>(OooCore::kWheelSize) - 64);
    EXPECT_EQ(r.stats.get("cycles"),
              static_cast<double>(r.cycles));
}

} // namespace
} // namespace constable
