/**
 * @file
 * Tests for the unified experiment API: binary trace/result serialization
 * (byte-stable round trips, corruption fallback), the CONSTABLE_TRACE_DIR
 * suite cache (warm-cache invocations skip generation and are bit-identical
 * to fresh ones), per-cell checkpoint/resume (a half-completed sweep
 * resumes to a bit-identical result), and strict option parsing from env
 * and CLI.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "sim/experiment.hh"
#include "trace/serialize.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

namespace fs = std::filesystem;

/** Fresh temp directory per test, removed on teardown. */
class TempDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string tmpl = fs::temp_directory_path() /
                           "constable-test-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

std::vector<WorkloadSpec>
twoSpecs(size_t ops = 1500)
{
    auto specs = smokeSuite(ops);
    specs.resize(2);
    return specs;
}

ExperimentOptions
serialOpts()
{
    ExperimentOptions opts;
    opts.threads = 1;
    opts.traceOps = 1500;
    return opts;
}

// ------------------------------------------------------------ serialization

TEST(TraceSerialize, RoundTripIsByteStableAndLossless)
{
    Trace t = generateTrace(twoSpecs()[0]);
    t.snoops.push_back({ 17, 0xdeadbe00 });

    auto bytes = serializeTrace(t);
    Trace back;
    ASSERT_TRUE(deserializeTrace(bytes, back));

    EXPECT_EQ(back.name, t.name);
    EXPECT_EQ(back.category, t.category);
    EXPECT_EQ(back.numArchRegs, t.numArchRegs);
    ASSERT_EQ(back.ops.size(), t.ops.size());
    for (size_t i = 0; i < t.ops.size(); ++i) {
        EXPECT_EQ(back.ops[i].pc, t.ops[i].pc);
        EXPECT_EQ(back.ops[i].cls, t.ops[i].cls);
        EXPECT_EQ(back.ops[i].effAddr, t.ops[i].effAddr);
        EXPECT_EQ(back.ops[i].value, t.ops[i].value);
    }
    ASSERT_EQ(back.snoops.size(), t.snoops.size());
    EXPECT_EQ(back.snoops.back().addr, 0xdeadbe00u);

    // Byte stability: re-encoding the decoded trace reproduces the bytes.
    EXPECT_EQ(serializeTrace(back), bytes);
}

TEST(TraceSerialize, RejectsCorruptionAndTruncation)
{
    Trace t = generateTrace(twoSpecs()[0]);
    auto bytes = serializeTrace(t);

    Trace out;
    EXPECT_FALSE(deserializeTrace({}, out));

    auto truncated = bytes;
    truncated.resize(bytes.size() / 2);
    EXPECT_FALSE(deserializeTrace(truncated, out));

    auto flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    EXPECT_FALSE(deserializeTrace(flipped, out));

    auto wrongMagic = bytes;
    wrongMagic[0] ^= 0xff;
    EXPECT_FALSE(deserializeTrace(wrongMagic, out));
}

TEST(RunResultSerialize, RoundTripPreservesStatsBitExactly)
{
    auto specs = twoSpecs();
    Trace t = generateTrace(specs[0]);
    RunResult r = runTrace(t, { CoreConfig{}, mechFor("constable") });
    r.stats.set("test.awkward", 0.1 + 0.2); // not exactly representable

    auto bytes = serializeRunResult(r);
    RunResult back;
    ASSERT_TRUE(deserializeRunResult(bytes, back));

    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.instructions, r.instructions);
    EXPECT_EQ(back.threadInstructions, r.threadInstructions);
    EXPECT_EQ(back.threadFinishCycle, r.threadFinishCycle);
    EXPECT_EQ(back.goldenCheckFailed, r.goldenCheckFailed);
    // The full named map, doubles compared bit-exactly via ==.
    EXPECT_EQ(back.stats.all(), r.stats.all());
    EXPECT_EQ(serializeRunResult(back), bytes);

    auto truncated = bytes;
    truncated.resize(bytes.size() - 9);
    EXPECT_FALSE(deserializeRunResult(truncated, back));
}

TEST(TraceSerialize, SpecHashSeparatesSpecs)
{
    auto specs = twoSpecs();
    EXPECT_NE(specHash(specs[0]), specHash(specs[1]));

    WorkloadSpec scaled = specs[0];
    scaled.targetOps *= 2; // CONSTABLE_TRACE_OPS must invalidate the cache
    EXPECT_NE(specHash(scaled), specHash(specs[0]));

    WorkloadSpec apx = specs[0];
    apx.numArchRegs = 32;
    EXPECT_NE(specHash(apx), specHash(specs[0]));
}

// -------------------------------------------------------------- trace cache

class TraceCache : public TempDirTest
{};

TEST_F(TraceCache, WarmCacheSkipsGenerationAndIsIdentical)
{
    ExperimentOptions opts = serialOpts();
    opts.traceDir = dir;

    Suite cold = Suite::fromSpecs(twoSpecs(), opts);
    EXPECT_EQ(cold.cacheMisses(), 2u);
    EXPECT_EQ(cold.cacheHits(), 0u);

    // Second invocation: every trace comes from disk, none regenerated.
    Suite warm = Suite::fromSpecs(twoSpecs(), opts);
    EXPECT_EQ(warm.cacheHits(), 2u);
    EXPECT_EQ(warm.cacheMisses(), 0u);

    // Cached traces are byte-identical to freshly generated ones.
    ExperimentOptions noCache = serialOpts();
    Suite fresh = Suite::fromSpecs(twoSpecs(), noCache);
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(serializeTrace(warm.trace(i)),
                  serializeTrace(fresh.trace(i)));
    }
}

TEST_F(TraceCache, CacheHitProducesIdenticalRunResult)
{
    ExperimentOptions opts = serialOpts();
    opts.traceDir = dir;

    auto runBoth = [&](const Suite& suite) {
        return Experiment("cachecheck", suite, opts)
            .add("baseline", mechFor("baseline"))
            .add("constable", mechFor("constable"))
            .run();
    };
    Suite cold = Suite::fromSpecs(twoSpecs(), opts);
    Suite warm = Suite::fromSpecs(twoSpecs(), opts);
    ASSERT_EQ(warm.cacheHits(), 2u);

    auto a = runBoth(cold);
    auto b = runBoth(warm);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_EQ(a.matrix().aggregateStats().all(),
              b.matrix().aggregateStats().all());
}

TEST_F(TraceCache, CorruptOrTruncatedFilesFallBackToRegeneration)
{
    ExperimentOptions opts = serialOpts();
    opts.traceDir = dir;
    Suite cold = Suite::fromSpecs(twoSpecs(), opts);
    ASSERT_EQ(cold.cacheMisses(), 2u);

    // Truncate one cache file, corrupt the other in place.
    std::vector<std::string> files;
    for (const auto& e : fs::directory_iterator(dir))
        files.push_back(e.path().string());
    ASSERT_EQ(files.size(), 2u);
    fs::resize_file(files[0], fs::file_size(files[0]) / 3);
    {
        std::fstream f(files[1],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(64);
        f.put('\x7f');
    }

    // No crash: both entries regenerate (and rewrite the cache)...
    Suite repaired = Suite::fromSpecs(twoSpecs(), opts);
    EXPECT_EQ(repaired.cacheMisses(), 2u);
    Suite fresh = Suite::fromSpecs(twoSpecs(), serialOpts());
    for (size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(serializeTrace(repaired.trace(i)),
                  serializeTrace(fresh.trace(i)));
    }
    // ...and the rewritten files serve hits again.
    Suite warm = Suite::fromSpecs(twoSpecs(), opts);
    EXPECT_EQ(warm.cacheHits(), 2u);
}

// --------------------------------------------------------- checkpoint/resume

class Checkpoint : public TempDirTest
{};

TEST_F(Checkpoint, ResumeFromPartialCheckpointIsBitIdentical)
{
    ExperimentOptions opts = serialOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), opts);

    auto makeExp = [&](const ExperimentOptions& o) {
        Experiment e("resume", suite, o);
        e.add("baseline", mechFor("baseline"))
            .add("eves", mechFor("eves"))
            .add("constable", mechFor("constable"));
        return e;
    };

    // Uninterrupted reference, no checkpointing.
    auto ref = makeExp(opts).run();

    // Full checkpointed run, then drop half the cells to model a kill.
    ExperimentOptions ck = opts;
    ck.checkpointDir = dir;
    auto first = makeExp(ck).run();
    EXPECT_EQ(first.resumedCells(), 0u);
    EXPECT_EQ(first.totalCycles(), ref.totalCycles());

    std::vector<std::string> cells;
    for (const auto& sub : fs::directory_iterator(dir)) {
        for (const auto& f : fs::directory_iterator(sub.path())) {
            if (f.path().extension() == ".rr") // skip the sweep manifest
                cells.push_back(f.path().string());
        }
    }
    ASSERT_EQ(cells.size(), 6u); // 2 rows x 3 configs
    std::sort(cells.begin(), cells.end());
    for (size_t i = 0; i < cells.size() / 2; ++i)
        fs::remove(cells[i]);

    // Resume: half the cells load from disk, the rest re-simulate; the
    // merged result must be bit-identical to the uninterrupted run.
    auto resumed = makeExp(ck).run();
    EXPECT_EQ(resumed.resumedCells(), 3u);
    EXPECT_EQ(resumed.totalCycles(), ref.totalCycles());
    EXPECT_EQ(resumed.matrix().aggregateStats().all(),
              ref.matrix().aggregateStats().all());

    // A fully warm checkpoint resumes every cell.
    auto warm = makeExp(ck).run();
    EXPECT_EQ(warm.resumedCells(), 6u);
    EXPECT_EQ(warm.totalCycles(), ref.totalCycles());
}

/**
 * The 0-byte-cell regression: a checkpoint cell truncated to nothing (a
 * crash between open and first write, or an enospc-starved writer) and one
 * holding garbage must both be treated as corrupt — regenerated with a
 * counted warning, never trusted, never fatal — and the resumed sweep must
 * stay bit-identical to an uninterrupted run.
 */
TEST_F(Checkpoint, ZeroByteAndGarbageCellsAreRegeneratedNotTrusted)
{
    ExperimentOptions opts = serialOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), opts);
    auto makeExp = [&](const ExperimentOptions& o) {
        Experiment e("zerobyte", suite, o);
        e.add("baseline", mechFor("baseline"))
            .add("constable", mechFor("constable"));
        return e;
    };
    auto ref = makeExp(opts).run();

    ExperimentOptions ck = opts;
    ck.checkpointDir = dir;
    makeExp(ck).run();
    std::vector<std::string> cells;
    for (const auto& sub : fs::directory_iterator(dir))
        for (const auto& f : fs::directory_iterator(sub.path()))
            if (f.path().extension() == ".rr")
                cells.push_back(f.path().string());
    ASSERT_EQ(cells.size(), 4u); // 2 rows x 2 configs
    std::sort(cells.begin(), cells.end());
    fs::resize_file(cells[0], 0);              // the classic 0-byte cell
    std::ofstream(cells[1]) << "not a cell";   // and a garbage sibling

    auto resumed = makeExp(ck).run();
    EXPECT_EQ(resumed.resumedCells(), 2u); // only the intact pair loads
    EXPECT_EQ(resumed.totalCycles(), ref.totalCycles());
    EXPECT_EQ(resumed.matrix().aggregateStats().all(),
              ref.matrix().aggregateStats().all());

    // The regenerated cells are back on disk and trusted on the next run.
    auto warm = makeExp(ck).run();
    EXPECT_EQ(warm.resumedCells(), 4u);
    EXPECT_EQ(warm.totalCycles(), ref.totalCycles());
}

TEST_F(Checkpoint, SmtSweepCheckpointsSeparatelyFromNoSmt)
{
    ExperimentOptions ck = serialOpts();
    ck.checkpointDir = dir;
    Suite suite = Suite::fromSpecs(twoSpecs(), ck);

    auto makeExp = [&]() {
        Experiment e("smt-vs-not", suite, ck);
        e.add("baseline", mechFor("baseline"));
        return e;
    };
    auto plain = makeExp().run();
    auto smt = makeExp().runSmt();
    EXPECT_EQ(smt.resumedCells(), 0u); // distinct key: no cross-pollution
    EXPECT_NE(plain.totalCycles(), smt.totalCycles());

    auto smtAgain = makeExp().runSmt();
    EXPECT_EQ(smtAgain.resumedCells(), 1u); // 1 pair x 1 config
    EXPECT_EQ(smtAgain.totalCycles(), smt.totalCycles());
}

// ----------------------------------------------------------- option parsing

TEST(Options, StrictParserAcceptsPlainDecimal)
{
    EXPECT_EQ(parseU64Strict("X", "42"), 42u);
    EXPECT_EQ(parseU64Strict("X", "0"), 0u);
    EXPECT_EQ(parseU64Strict("X", " 7"), 7u);
    EXPECT_EQ(parseU64Strict("X", "18446744073709551615"), UINT64_MAX);
}

TEST(OptionsDeathTest, StrictParserRejectsGarbage)
{
    EXPECT_EXIT(parseU64Strict("CONSTABLE_THREADS", "abc"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(parseU64Strict("CONSTABLE_THREADS", "4x"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(parseU64Strict("CONSTABLE_THREADS", ""),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(parseU64Strict("CONSTABLE_THREADS", "-3"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(parseU64Strict("CONSTABLE_SEED",
                               "99999999999999999999999999"),
                ::testing::ExitedWithCode(1), "non-negative integer");
}

TEST(OptionsDeathTest, OctalAndHexSurprisesAreFatalNotRebased)
{
    // The historical bug: strtoull(..., 0) auto-detected the base, so
    // CONSTABLE_SHARDS=010 silently meant 8 workers and 0x10 meant 16.
    // Both now terminate instead of being silently reinterpreted.
    EXPECT_EXIT(parseU64Strict("CONSTABLE_SHARDS", "010"),
                ::testing::ExitedWithCode(1), "base-10");
    EXPECT_EXIT(parseU64Strict("CONSTABLE_SHARDS", "0x10"),
                ::testing::ExitedWithCode(1), "base-10");
    EXPECT_EXIT(parseU64Strict("CONSTABLE_SHARDS", "00"),
                ::testing::ExitedWithCode(1), "base-10");
    EXPECT_EXIT(
        {
            setenv("CONSTABLE_SHARDS", "010", 1);
            ExperimentOptions::fromEnv();
        },
        ::testing::ExitedWithCode(1), "CONSTABLE_SHARDS");
}

TEST(OptionsDeathTest, MalformedEnvIsFatalNotSilent)
{
    // The historical bug: CONSTABLE_THREADS=abc silently became 0 (all
    // cores). Now it must terminate with a clear message.
    EXPECT_EXIT(
        {
            setenv("CONSTABLE_THREADS", "abc", 1);
            ExperimentOptions::fromEnv();
        },
        ::testing::ExitedWithCode(1), "CONSTABLE_THREADS");
    EXPECT_EXIT(
        {
            setenv("CONSTABLE_TRACE_OPS", "0", 1);
            ExperimentOptions::fromEnv();
        },
        ::testing::ExitedWithCode(1), "CONSTABLE_TRACE_OPS");
}

TEST(Options, FromArgsOverridesEnv)
{
    setenv("CONSTABLE_THREADS", "2", 1);
    const char* argv[] = { "prog", "--threads=5", "--seed", "42",
                           "--trace-ops=4000", "--suite-limit=3",
                           "--trace-dir=/tmp/x", "--checkpoint-dir",
                           "/tmp/y" };
    auto opts = ExperimentOptions::fromArgs(
        static_cast<int>(std::size(argv)), const_cast<char**>(argv));
    unsetenv("CONSTABLE_THREADS");

    EXPECT_EQ(opts.threads, 5u);
    EXPECT_EQ(opts.seed, 42u);
    EXPECT_EQ(opts.traceOps, 4000u);
    EXPECT_EQ(opts.suiteLimit, 3u);
    EXPECT_EQ(opts.traceDir, "/tmp/x");
    EXPECT_EQ(opts.checkpointDir, "/tmp/y");
}

TEST(OptionsDeathTest, UnknownFlagIsFatal)
{
    const char* argv[] = { "prog", "--no-such-flag=1" };
    EXPECT_EXIT(ExperimentOptions::fromArgs(2, const_cast<char**>(argv)),
                ::testing::ExitedWithCode(1), "unknown argument");
}

// ------------------------------------------------------------- facade shape

TEST(Experiment, MatchesDirectRunMatrixBitExactly)
{
    ExperimentOptions opts = serialOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), opts);

    auto res = Experiment("parity", suite, opts)
                   .add("baseline", mechFor("baseline"))
                   .add("constable", mechFor("constable"))
                   .run();

    std::vector<SystemConfig> configs = {
        { CoreConfig{}, mechFor("baseline") },
        { CoreConfig{}, mechFor("constable") },
    };
    MatrixResult direct =
        runMatrix(suite.tracePtrs(), configs, suite.gsPtrs(), opts.batch());

    ASSERT_EQ(res.matrix().results.size(), direct.results.size());
    EXPECT_EQ(res.totalCycles(), direct.totalCycles());
    EXPECT_EQ(res.matrix().aggregateStats().all(),
              direct.aggregateStats().all());
    // Name-addressed accessors hit the right cells.
    EXPECT_EQ(res.at(1, "constable").cycles, direct.at(1, 1).cycles);
    EXPECT_EQ(res.speedups("constable", "baseline")[0],
              speedup(direct.at(0, 1), direct.at(0, 0)));
}

TEST(ExperimentDeathTest, UnknownConfigNameIsFatal)
{
    ExperimentOptions opts = serialOpts();
    auto specs = twoSpecs();
    specs.resize(1);
    Suite suite = Suite::fromSpecs(specs, opts);
    auto res = Experiment("names", suite, opts)
                   .add("baseline", mechFor("baseline"))
                   .run();
    EXPECT_EXIT(res.at(0, "typo"), ::testing::ExitedWithCode(1),
                "no configuration named");
}

TEST(Suite, FromTracesSupportsHandBuiltWorkloads)
{
    auto specs = twoSpecs();
    std::vector<Trace> traces;
    traces.push_back(generateTrace(specs[0]));
    traces.push_back(generateTrace(specs[1]));
    std::string name0 = traces[0].name;

    Suite suite = Suite::fromTraces(std::move(traces));
    EXPECT_EQ(suite.size(), 2u);
    EXPECT_EQ(suite.spec(0).name, name0);
    EXPECT_TRUE(suite.inspected());
    EXPECT_EQ(suite.gsPtrs().size(), 2u);

    // Checkpoints key on the trace bytes: an edited hand-built trace with
    // the same name must change the suite's content hash.
    std::vector<Trace> edited;
    edited.push_back(generateTrace(specs[0]));
    edited.push_back(generateTrace(specs[1]));
    edited[0].ops[0].value ^= 1;
    Suite editedSuite = Suite::fromTraces(std::move(edited));
    EXPECT_NE(editedSuite.contentHash(), suite.contentHash());
}

// ----------------------------------------------------------- cache trimming

class CacheTrim : public TempDirTest
{
  protected:
    /** Drop a file of @p bytes into the cache dir, backdated by @p ageSec. */
    std::string
    put(const std::string& name, size_t bytes, uint64_t age_sec = 0)
    {
        std::string p = dir + "/" + name;
        std::ofstream f(p, std::ios::binary);
        f << std::string(bytes, 'x');
        f.close();
        if (age_sec) {
            fs::last_write_time(p, fs::file_time_type::clock::now() -
                                       std::chrono::seconds(age_sec));
        }
        return p;
    }

    size_t
    filesLeft() const
    {
        size_t n = 0;
        for (const auto& e : fs::directory_iterator(dir)) {
            (void)e;
            ++n;
        }
        return n;
    }
};

TEST_F(CacheTrim, DisabledPolicyIsNoOp)
{
    put("a.trace", 1000, 3600);
    put("b.trace", 1000);
    EXPECT_EQ(trimTraceCache(dir, TraceCacheTrimPolicy{}), 0u);
    EXPECT_EQ(filesLeft(), 2u);
}

TEST_F(CacheTrim, MissingDirectoryIsNoOp)
{
    TraceCacheTrimPolicy p;
    p.maxBytes = 1;
    EXPECT_EQ(trimTraceCache(dir + "/does-not-exist", p), 0u);
}

TEST_F(CacheTrim, AgeCapDropsOnlyOldEntries)
{
    put("old.trace", 100, 10'000);
    put("fresh.trace", 100);
    TraceCacheTrimPolicy p;
    p.maxAgeSeconds = 5'000;
    EXPECT_EQ(trimTraceCache(dir, p), 1u);
    EXPECT_FALSE(fs::exists(dir + "/old.trace"));
    EXPECT_TRUE(fs::exists(dir + "/fresh.trace"));
}

TEST_F(CacheTrim, SizeCapEvictsLeastRecentlyModifiedFirst)
{
    put("oldest.trace", 600, 3000);
    put("middle.trace", 600, 2000);
    put("newest.trace", 600, 1000);
    TraceCacheTrimPolicy p;
    p.maxBytes = 1300; // fits two of three
    EXPECT_EQ(trimTraceCache(dir, p), 1u);
    EXPECT_FALSE(fs::exists(dir + "/oldest.trace"));
    EXPECT_TRUE(fs::exists(dir + "/middle.trace"));
    EXPECT_TRUE(fs::exists(dir + "/newest.trace"));
}

TEST_F(CacheTrim, NonTraceFilesAreNeverTouched)
{
    put("huge.bin", 100'000, 50'000);
    put("cache.trace", 100, 50'000);
    TraceCacheTrimPolicy p;
    p.maxBytes = 1; // far exceeded, but only by the non-trace file
    p.maxAgeSeconds = 1;
    EXPECT_EQ(trimTraceCache(dir, p), 1u);
    EXPECT_TRUE(fs::exists(dir + "/huge.bin"));
    EXPECT_FALSE(fs::exists(dir + "/cache.trace"));
}

TEST_F(CacheTrim, SuitePreparationAppliesPolicyAndKeepsLiveEntries)
{
    // A stale multi-MB entry from a long-gone spec shares the dir with the
    // live suite: the size cap must evict the stale file, never the traces
    // the suite just wrote or (touched) re-read.
    put("stale.trace", 2 * 1024 * 1024, 100'000);
    ExperimentOptions opts = serialOpts();
    opts.traceDir = dir;
    opts.traceCacheMaxMB = 1;

    Suite cold = Suite::fromSpecs(twoSpecs(), opts);
    EXPECT_EQ(cold.cacheMisses(), 2u);
    EXPECT_FALSE(fs::exists(dir + "/stale.trace"));

    // The live entries survived the trim and serve hits.
    Suite warm = Suite::fromSpecs(twoSpecs(), opts);
    EXPECT_EQ(warm.cacheHits(), 2u);
}

} // namespace
} // namespace constable
