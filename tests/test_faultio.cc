/**
 * @file
 * Tests for the deterministic fault-injection shim (common/faultio.hh):
 * plan grammar + fatal diagnostics, fail-N eio/enospc semantics, torn-write
 * arming and its writeFileAtomic integration, crash-once markers, clock
 * skew, seeded backoff determinism, the retry absorber, and thread-safety
 * of the armed counters (this file is part of the TSan CI subset — keep
 * "Fault" in every test suite name).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/faultio.hh"
#include "trace/serialize.hh"

namespace constable {
namespace {

namespace fs = std::filesystem;

/** Every test leaves the process disarmed, so ordering never matters. */
class FaultIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearFaultPlan();
        std::string tmpl = fs::temp_directory_path() /
                           "constable-faultio-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        clearFaultPlan();
        setFaultSleepFn(nullptr);
        fs::remove_all(dir);
    }

    std::string dir;
};

// ---------------------------------------------------------------- registry

TEST_F(FaultIoTest, RegistryIsLargeUniqueAndWellKinded)
{
    const auto& table = faultPointTable();
    EXPECT_GE(table.size(), 15u); // the faultsweep acceptance floor
    std::set<std::string> names;
    const std::set<std::string> kinds = { "read", "write", "sync", "clock" };
    for (const auto& p : table) {
        EXPECT_TRUE(names.insert(p.name).second)
            << "duplicate fault point " << p.name;
        EXPECT_TRUE(kinds.count(p.kind))
            << p.name << " has unknown kind " << p.kind;
        EXPECT_NE(std::string(p.site), "");
    }
}

// ------------------------------------------------------------ plan grammar

TEST_F(FaultIoTest, UnarmedFastPathInjectsNothing)
{
    EXPECT_FALSE(faultPlanArmed());
    EXPECT_FALSE(faultFailed("ckpt.cell.read"));
    EXPECT_FALSE(faultConsumeTorn());
    EXPECT_EQ(faultSkewSeconds("lease.age"), 0.0);
    EXPECT_EQ(faultPointHits("ckpt.cell.read"), 0u);
}

TEST(FaultPlanDeathTest, UnknownPointIsFatal)
{
    EXPECT_EXIT(installFaultPlan("no.such.point:eio"),
                ::testing::ExitedWithCode(1), "fault point");
}

TEST(FaultPlanDeathTest, UnknownActionIsFatal)
{
    EXPECT_EXIT(installFaultPlan("ckpt.cell.read:explode"),
                ::testing::ExitedWithCode(1), "action");
}

TEST(FaultPlanDeathTest, MalformedClauseIsFatal)
{
    EXPECT_EXIT(installFaultPlan("ckpt.cell.read"),
                ::testing::ExitedWithCode(1), "clause");
    EXPECT_EXIT(installFaultPlan("ckpt.cell.read:eio@zero"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(installFaultPlan("ckpt.cell.read:eio@0"),
                ::testing::ExitedWithCode(1), "");
}

TEST_F(FaultIoTest, ClausesSplitOnSemicolonAndComma)
{
    installFaultPlan("ckpt.cell.read:eio;lease.read:enospc@2,"
                     "lease.age:skew");
    EXPECT_TRUE(faultPlanArmed());
    auto armed = faultArmedHits();
    ASSERT_EQ(armed.size(), 3u);
    EXPECT_EQ(armed[0].first, "ckpt.cell.read");
    EXPECT_EQ(armed[1].first, "lease.read");
    EXPECT_EQ(armed[2].first, "lease.age");
}

// ------------------------------------------------------- fail-N semantics

TEST_F(FaultIoTest, EioFailsFirstNThenHeals)
{
    installFaultPlan("ckpt.cell.read:eio@2");
    EXPECT_TRUE(faultFailed("ckpt.cell.read"));
    EXPECT_TRUE(faultFailed("ckpt.cell.read"));
    EXPECT_FALSE(faultFailed("ckpt.cell.read")); // healed
    EXPECT_FALSE(faultFailed("ckpt.cell.read"));
    EXPECT_EQ(faultPointHits("ckpt.cell.read"), 4u);
    // Unarmed points are untouched even while a plan is live.
    EXPECT_FALSE(faultFailed("ckpt.cell.commit"));
    EXPECT_EQ(faultPointHits("ckpt.cell.commit"), 0u);
}

TEST_F(FaultIoTest, DefaultCountIsOneAndClearDisarms)
{
    installFaultPlan("lease.acquire:enospc");
    EXPECT_TRUE(faultFailed("lease.acquire"));
    EXPECT_FALSE(faultFailed("lease.acquire"));
    clearFaultPlan();
    EXPECT_FALSE(faultPlanArmed());
    EXPECT_EQ(faultPointHits("lease.acquire"), 0u); // forgotten with plan
}

// -------------------------------------------------------------- torn writes

TEST_F(FaultIoTest, TornArmsThreadLocalFlagOnce)
{
    installFaultPlan("atomic.tmp.write:torn@1");
    EXPECT_FALSE(faultFailed("atomic.tmp.write")); // torn is not a failure
    EXPECT_TRUE(faultConsumeTorn());
    EXPECT_FALSE(faultConsumeTorn()); // consumed
    EXPECT_FALSE(faultFailed("atomic.tmp.write")); // @1 exhausted
    EXPECT_FALSE(faultConsumeTorn());
}

TEST_F(FaultIoTest, TornFlagIsThreadLocal)
{
    installFaultPlan("atomic.tmp.write:torn@1");
    EXPECT_FALSE(faultFailed("atomic.tmp.write"));
    bool otherThreadSawTorn = true;
    std::thread t([&] { otherThreadSawTorn = faultConsumeTorn(); });
    t.join();
    EXPECT_FALSE(otherThreadSawTorn);
    EXPECT_TRUE(faultConsumeTorn()); // still pending on the arming thread
}

TEST_F(FaultIoTest, TornWriteCommitsHalfThePayloadButReportsSuccess)
{
    std::string path = dir + "/victim.bin";
    std::vector<uint8_t> payload(100, 0xab);
    installFaultPlan("atomic.tmp.write:torn@1");
    EXPECT_TRUE(writeFileAtomic(path, payload)); // silent corruption
    std::vector<uint8_t> back;
    ASSERT_TRUE(readFileBytes(path, back));
    EXPECT_LT(back.size(), payload.size());
    // The next write heals: full payload lands.
    EXPECT_TRUE(writeFileAtomic(path, payload));
    ASSERT_TRUE(readFileBytes(path, back));
    EXPECT_EQ(back.size(), payload.size());
}

// ------------------------------------------------------------ crash points

TEST_F(FaultIoTest, CrashExitsWithTheSentinelCode)
{
    installFaultPlan("ckpt.cell.commit:crash@1"); // no marker dir: always
    EXPECT_EXIT(faultFailed("ckpt.cell.commit"),
                ::testing::ExitedWithCode(kFaultCrashExitCode), "");
}

TEST_F(FaultIoTest, CrashFiresOnTheNthHitOnly)
{
    installFaultPlan("ckpt.cell.commit:crash@3");
    EXPECT_FALSE(faultFailed("ckpt.cell.commit"));
    EXPECT_FALSE(faultFailed("ckpt.cell.commit"));
    EXPECT_EXIT(faultFailed("ckpt.cell.commit"),
                ::testing::ExitedWithCode(kFaultCrashExitCode), "");
}

TEST_F(FaultIoTest, CrashMarkerMakesTheCrashOneShot)
{
    installFaultPlan("ckpt.cell.commit:crash@1", dir);
    // The EXPECT_EXIT child crashes and leaves the O_EXCL marker behind...
    EXPECT_EXIT(faultFailed("ckpt.cell.commit"),
                ::testing::ExitedWithCode(kFaultCrashExitCode), "");
    bool marker = false;
    for (const auto& e : fs::directory_iterator(dir))
        marker |= e.path().filename().string().rfind("crash-", 0) == 0;
    EXPECT_TRUE(marker);
    // ...so this "relaunched" process survives the same plan: the crash is
    // disarmed and the call site proceeds normally.
    EXPECT_FALSE(faultFailed("ckpt.cell.commit"));
    EXPECT_FALSE(faultFailed("ckpt.cell.commit"));
}

// -------------------------------------------------------------- clock skew

TEST_F(FaultIoTest, SkewReportsItsParamAndCountsHits)
{
    installFaultPlan("lease.age:skew@400");
    EXPECT_EQ(faultSkewSeconds("lease.age"), 400.0);
    EXPECT_EQ(faultSkewSeconds("lease.age"), 400.0); // not fail-N: sticky
    EXPECT_EQ(faultSkewSeconds("ckpt.cell.read"), 0.0);
    EXPECT_GE(faultPointHits("lease.age"), 2u);
    EXPECT_FALSE(faultFailed("lease.age")); // skew never fails the call
}

TEST_F(FaultIoTest, SkewDefaultsTo300Seconds)
{
    installFaultPlan("lease.age:skew");
    EXPECT_EQ(faultSkewSeconds("lease.age"), 300.0);
}

// ----------------------------------------------------- deterministic backoff

TEST(FaultBackoff, SameInputsSameDelayAcrossCalls)
{
    BackoffPolicy p;
    for (unsigned attempt = 0; attempt < 4; ++attempt) {
        unsigned a = backoffDelayMs("lease.read", attempt, p);
        unsigned b = backoffDelayMs("lease.read", attempt, p);
        EXPECT_EQ(a, b) << "attempt " << attempt;
    }
}

TEST(FaultBackoff, DelaysGrowExponentiallyWithinJitterBounds)
{
    BackoffPolicy p;
    p.baseMs = 8;
    p.mult = 2.0;
    p.jitterFrac = 0.5;
    p.capMs = 10000;
    for (unsigned attempt = 0; attempt < 5; ++attempt) {
        double nominal = p.baseMs * std::pow(p.mult, attempt);
        unsigned d = backoffDelayMs("ckpt.cell.commit", attempt, p);
        EXPECT_GE(d + 1.0, nominal) << "attempt " << attempt; // +1: rounding
        EXPECT_LE(d, nominal * (1.0 + p.jitterFrac) + 1.0)
            << "attempt " << attempt;
    }
}

TEST(FaultBackoff, CapBoundsEveryDelay)
{
    BackoffPolicy p;
    p.baseMs = 100;
    p.mult = 10.0;
    p.capMs = 250;
    for (unsigned attempt = 0; attempt < 8; ++attempt)
        EXPECT_LE(backoffDelayMs("lease.acquire", attempt, p), p.capMs);
}

TEST(FaultBackoff, DifferentPointsDesynchronize)
{
    // Seeded jitter exists to spread contending writers apart: across a few
    // attempts, two points must not share an identical delay schedule.
    BackoffPolicy p;
    bool differ = false;
    for (unsigned attempt = 0; attempt < 6 && !differ; ++attempt)
        differ = backoffDelayMs("lease.read", attempt, p) !=
                 backoffDelayMs("lease.release", attempt, p);
    EXPECT_TRUE(differ);
}

// ------------------------------------------------------------- retry loop

unsigned g_sleepCalls = 0;
unsigned g_sleepTotalMs = 0;

void
countingSleep(unsigned ms)
{
    ++g_sleepCalls;
    g_sleepTotalMs += ms;
}

TEST_F(FaultIoTest, RetryAbsorbsTransientFailuresAndSleepsBetween)
{
    g_sleepCalls = g_sleepTotalMs = 0;
    setFaultSleepFn(&countingSleep);
    installFaultPlan("lease.read:eio@2");
    unsigned tries = 0;
    bool ok = retryWithBackoff("lease.read", [&] {
        ++tries;
        return !faultFailed("lease.read");
    });
    EXPECT_TRUE(ok);
    EXPECT_EQ(tries, 3u);      // two injected failures, then success
    EXPECT_EQ(g_sleepCalls, 2u);
    EXPECT_GT(g_sleepTotalMs, 0u);
}

TEST_F(FaultIoTest, RetryGivesUpAfterThePolicyBudget)
{
    g_sleepCalls = 0;
    setFaultSleepFn(&countingSleep);
    BackoffPolicy p;
    p.attempts = 3;
    unsigned tries = 0;
    bool ok = retryWithBackoff("lease.read", [&] {
        ++tries;
        return false;
    }, p);
    EXPECT_FALSE(ok);
    EXPECT_EQ(tries, 3u);
    EXPECT_EQ(g_sleepCalls, 2u); // no sleep after the final failure
}

// ------------------------------------------------------------ thread safety

TEST_F(FaultIoTest, ConcurrentHitCountingIsExactUnderContention)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 250;
    installFaultPlan("trace.cache.read:eio@100");
    std::vector<unsigned> injected(kThreads, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i)
                if (faultFailed("trace.cache.read"))
                    ++injected[t];
        });
    }
    for (auto& th : pool)
        th.join();
    unsigned total = 0;
    for (unsigned n : injected)
        total += n;
    EXPECT_EQ(total, 100u); // exactly the first N hits fail, race-free
    EXPECT_EQ(faultPointHits("trace.cache.read"), kThreads * kPerThread);
}

} // namespace
} // namespace constable
