/**
 * @file
 * Golden-stats snapshot over every evaluated mechanism preset.
 *
 * Each fingerprint hashes the full serialized RunResult (cycles,
 * instructions, golden-check state and the complete StatSet) of a fixed
 * deterministic mini-suite, so ANY behavioural drift in the core --
 * scheduling order, event timing, stat accounting -- flips a hash. The
 * expected values below were captured before the allocation-free
 * scheduling-structure overhaul of the simulation inner loop and prove the
 * rebuilt core is bit-identical to the red-black-tree/per-cycle-alloc one.
 *
 * If a deliberate model change invalidates them, re-run this test and paste
 * the printed actual values (every mismatch logs its preset name).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "trace/serialize.hh"

namespace constable {
namespace {

/** Pinned options: independent of CONSTABLE_* env so the fingerprints are
 *  stable no matter how the test binary is invoked. */
ExperimentOptions
snapshotOpts()
{
    ExperimentOptions opts;
    opts.threads = 1;
    opts.seed = 0x5eed5eedull;
    opts.traceOps = 2000;
    opts.suiteLimit = 4;
    opts.traceDir.clear();
    opts.checkpointDir.clear();
    return opts;
}

struct PresetCase
{
    const char* name;
    const char* expected; ///< 16-hex-digit fingerprint
};

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

TEST(GoldenSnapshot, NoSmtPresetsBitIdentical)
{
    const PresetCase kCases[16] = {
        { "baseline", "2c2c513ee217b659" },
        { "constable", "a066e75f1345cea2" },
        { "eves", "7ba233650af92ce5" },
        { "eves+constable", "e53d9422417ce9e4" },
        { "elar", "a60ae0b8afc9f498" },
        { "rfp", "53576a47c3ffb152" },
        { "elar+constable", "c34ca1ce318531ff" },
        { "rfp+constable", "41aebdb3235b0839" },
        { "constable-pcrel", "9782e9d45cac3fb6" },
        { "constable-stackrel", "4e45b750c288f7da" },
        { "constable-regrel", "f18d4f47e6dde2ae" },
        { "constable-amt-i", "a066e75f1345cea2" },
        { "ideal-stable-lvp", "e0d5b5079882d932" },
        { "ideal-stable-lvp-nofetch", "2e9513580076ea28" },
        { "ideal-constable", "5b2f6d1adf9b1214" },
        { "eves+ideal-constable", "5b2f6d1adf9b1214" },
    };

    Suite suite = Suite::prepare(snapshotOpts(), true);
    ASSERT_EQ(suite.size(), 4u);

    // The case table's names ARE registry keys: presets resolve through
    // MechanismRegistry, and the unchanged fingerprints prove the
    // registry-built configs bit-identical to the deleted factories.
    const auto& presets = MechanismRegistry::instance().presets();
    ASSERT_EQ(presets.size(), 16u);
    for (size_t p = 0; p < 16; ++p) {
        ASSERT_EQ(presets[p].name, kCases[p].name)
            << "registry order drifted from the snapshot table";
        // One fingerprint per preset over every suite row: chain the FNV
        // hashes of each row's serialized RunResult.
        uint64_t fp = 0xcbf29ce484222325ull;
        for (size_t row = 0; row < suite.size(); ++row) {
            const auto& gs = suite.globalStablePcs(row);
            SystemConfig cfg { CoreConfig{}, mechFor(kCases[p].name, &gs) };
            RunResult r = runTrace(suite.trace(row), cfg, &gs);
            EXPECT_FALSE(r.goldenCheckFailed)
                << kCases[p].name << ": " << r.goldenCheckMessage;
            auto bytes = serializeRunResult(r);
            fp ^= fnv1a(bytes.data(), bytes.size());
            fp *= 0x100000001b3ull;
        }
        EXPECT_EQ(kCases[p].expected, hex16(fp)) << kCases[p].name;
    }
}

TEST(GoldenSnapshot, Smt2PresetsBitIdentical)
{
    const PresetCase kCases[2] = {
        { "smt2-baseline", "0f180dc1341b5034" },
        { "smt2-constable", "0dd46e32890ab99a" },
    };

    Suite suite = Suite::prepare(snapshotOpts(), true);
    auto pairs = suite.smtTracePairs();
    ASSERT_FALSE(pairs.empty());

    for (size_t p = 0; p < 2; ++p) {
        uint64_t fp = 0xcbf29ce484222325ull;
        for (const auto& [t0, t1] : pairs) {
            SystemConfig cfg { CoreConfig{},
                               p == 0 ? mechFor("baseline") : mechFor("constable") };
            cfg.core.smt2 = true;
            RunResult r = runSmtPair(*t0, *t1, cfg);
            EXPECT_FALSE(r.goldenCheckFailed)
                << kCases[p].name << ": " << r.goldenCheckMessage;
            auto bytes = serializeRunResult(r);
            fp ^= fnv1a(bytes.data(), bytes.size());
            fp *= 0x100000001b3ull;
        }
        EXPECT_EQ(kCases[p].expected, hex16(fp)) << kCases[p].name;
    }
}

} // namespace
} // namespace constable
