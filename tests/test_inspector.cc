/**
 * @file
 * Load Inspector tests over hand-built traces with known properties.
 */

#include <gtest/gtest.h>

#include "inspector/load_inspector.hh"

namespace constable {
namespace {

MicroOp
mkLoad(PC pc, Addr addr, uint64_t value, AddrMode mode = AddrMode::PcRel)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Load;
    op.addrMode = mode;
    op.effAddr = addr;
    op.value = value;
    op.dst = RAX;
    return op;
}

MicroOp
mkNop(PC pc)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Nop;
    return op;
}

TEST(Inspector, DetectsGlobalStable)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.ops.push_back(mkLoad(0x100, 0x5000, 42));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_DOUBLE_EQ(r.globalStableFrac(), 1.0);
    EXPECT_TRUE(r.globalStablePcs().count(0x100));
}

TEST(Inspector, ValueChangeBreaksStability)
{
    Trace t;
    t.ops.push_back(mkLoad(0x100, 0x5000, 42));
    t.ops.push_back(mkLoad(0x100, 0x5000, 43));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_DOUBLE_EQ(r.globalStableFrac(), 0.0);
    EXPECT_TRUE(r.globalStablePcs().empty());
}

TEST(Inspector, AddressChangeBreaksStability)
{
    Trace t;
    t.ops.push_back(mkLoad(0x100, 0x5000, 42));
    t.ops.push_back(mkLoad(0x100, 0x5008, 42));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_DOUBLE_EQ(r.globalStableFrac(), 0.0);
}

TEST(Inspector, SingleInstanceIsStable)
{
    Trace t;
    t.ops.push_back(mkLoad(0x100, 0x5000, 1));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_DOUBLE_EQ(r.globalStableFrac(), 1.0);
}

TEST(Inspector, MixedPopulationFraction)
{
    Trace t;
    // 6 dynamic stable + 4 dynamic unstable.
    for (int i = 0; i < 6; ++i)
        t.ops.push_back(mkLoad(0x100, 0x5000, 42));
    for (int i = 0; i < 4; ++i)
        t.ops.push_back(mkLoad(0x200, 0x6000 + 8 * i, 7));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_NEAR(r.globalStableFrac(), 0.6, 1e-12);
}

TEST(Inspector, AddressingModeBreakdown)
{
    Trace t;
    for (int i = 0; i < 2; ++i)
        t.ops.push_back(mkLoad(0x100, 0x5000, 1, AddrMode::PcRel));
    for (int i = 0; i < 3; ++i)
        t.ops.push_back(mkLoad(0x200, 0x6000, 2, AddrMode::StackRel));
    for (int i = 0; i < 5; ++i)
        t.ops.push_back(mkLoad(0x300, 0x7000, 3, AddrMode::RegRel));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_NEAR(r.modeFrac(AddrMode::PcRel), 0.2, 1e-12);
    EXPECT_NEAR(r.modeFrac(AddrMode::StackRel), 0.3, 1e-12);
    EXPECT_NEAR(r.modeFrac(AddrMode::RegRel), 0.5, 1e-12);
}

TEST(Inspector, InterOccurrenceDistanceBuckets)
{
    Trace t;
    t.ops.push_back(mkLoad(0x100, 0x5000, 1));
    for (int i = 0; i < 60; ++i)
        t.ops.push_back(mkNop(0x200 + 4 * i));
    t.ops.push_back(mkLoad(0x100, 0x5000, 1)); // distance 61 -> [50,100)
    t.ops.push_back(mkLoad(0x100, 0x5000, 1)); // distance 1 -> [0,50)
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_EQ(r.distanceHist.total(), 2u);
    EXPECT_EQ(r.distanceHist.bucketCount(0), 1u);
    EXPECT_EQ(r.distanceHist.bucketCount(1), 1u);
}

TEST(Inspector, PerModeDistanceHistogramsOnlyCountOwnMode)
{
    Trace t;
    t.ops.push_back(mkLoad(0x100, 0x5000, 1, AddrMode::PcRel));
    t.ops.push_back(mkLoad(0x100, 0x5000, 1, AddrMode::PcRel));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_EQ(r.distByMode[static_cast<unsigned>(AddrMode::PcRel)].total(),
              1u);
    EXPECT_EQ(r.distByMode[static_cast<unsigned>(AddrMode::RegRel)].total(),
              0u);
}

TEST(Inspector, UnstableLoadsExcludedFromDistance)
{
    Trace t;
    t.ops.push_back(mkLoad(0x100, 0x5000, 1));
    t.ops.push_back(mkLoad(0x100, 0x5000, 2)); // value changed: unstable
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_EQ(r.distanceHist.total(), 0u);
}

TEST(Inspector, CountsDynOps)
{
    Trace t;
    t.ops.push_back(mkNop(0x1));
    t.ops.push_back(mkLoad(0x100, 0x5000, 1));
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_EQ(r.dynOps, 2u);
    EXPECT_EQ(r.dynLoads, 1u);
}

} // namespace
} // namespace constable
