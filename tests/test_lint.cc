/**
 * @file
 * Tests for the constable-lint static checker: each rule must fire on its
 * checked-in failing fixture (tests/lint_fixtures/fail_<rule>/), the
 * all-escapes fixture must lint clean, and the real source tree must be
 * clean too (the same gate the dedicated `constable_lint_tree` ctest entry
 * and the CI lint job enforce — kept here as well so a plain test binary
 * run catches regressions).
 *
 * LINT_BINARY and REPO_ROOT are injected by tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun
{
    int exitCode = -1;
    std::string output;
};

LintRun
runLint(const std::string& root)
{
    std::string cmd =
        std::string(LINT_BINARY) + " --root=" + root + " 2>&1";
    LintRun r;
    std::FILE* p = popen(cmd.c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), p)) > 0)
        r.output.append(buf, got);
    int status = pclose(p);
    if (WIFEXITED(status))
        r.exitCode = WEXITSTATUS(status);
    return r;
}

std::string
fixture(const std::string& name)
{
    return std::string(REPO_ROOT) + "/tests/lint_fixtures/" + name;
}

/** The fixture must fail with >= 1 diagnostic of exactly `rule`, in the
 *  file:line: rule: message format. */
void
expectRuleFires(const std::string& fixtureName, const std::string& rule)
{
    LintRun r = runLint(fixture(fixtureName));
    EXPECT_EQ(r.exitCode, 1) << fixtureName << " output:\n" << r.output;
    EXPECT_NE(r.output.find(": " + rule + ": "), std::string::npos)
        << fixtureName << " did not report rule '" << rule
        << "'; output:\n" << r.output;
}

TEST(Lint, CleanFixturePasses)
{
    LintRun r = runLint(fixture("clean"));
    EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(Lint, RawParseFires)
{
    expectRuleFires("fail_raw_parse", "raw-parse");
}

TEST(Lint, DeterminismFires)
{
    expectRuleFires("fail_determinism", "determinism");
}

TEST(Lint, UnorderedIterFires)
{
    expectRuleFires("fail_unordered", "unordered-iter");
}

TEST(Lint, LayeringFires)
{
    expectRuleFires("fail_layering", "layering");
}

TEST(Lint, LayeringSampleNodeFires)
{
    // sim/sample.{hh,cc} is its own DAG node below the rest of sim/:
    // including sim/experiment.hh from it must trip layering.
    expectRuleFires("fail_layering_sample", "layering");
}

TEST(Lint, EnvDocFires)
{
    expectRuleFires("fail_env_doc", "env-doc");
}

TEST(Lint, RawIoFires)
{
    expectRuleFires("fail_raw_io", "raw-io");
}

TEST(Lint, RawLogFires)
{
    expectRuleFires("fail_raw_log", "raw-log");
}

TEST(Lint, DiagnosticFormat)
{
    // file:line: rule: message — machine-parseable, clickable in editors.
    LintRun r = runLint(fixture("fail_raw_parse"));
    EXPECT_NE(r.output.find("src/trace/parse.cc:7: raw-parse: "),
              std::string::npos)
        << r.output;
}

TEST(Lint, RealTreeIsClean)
{
    LintRun r = runLint(REPO_ROOT);
    EXPECT_EQ(r.exitCode, 0)
        << "the source tree has lint violations:\n" << r.output;
}

TEST(Lint, UnknownArgumentRejected)
{
    std::string cmd = std::string(LINT_BINARY) + " --bogus 2>&1";
    std::FILE* p = popen(cmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    char buf[256];
    while (fread(buf, 1, sizeof(buf), p) > 0) {
    }
    int status = pclose(p);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 2);
}

} // namespace
