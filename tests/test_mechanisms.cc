/**
 * @file
 * Tests for the mechanism registry (sim/mechanisms.hh) and the declarative
 * scenario layer (sim/scenario.hh): every preset name resolves, its spec
 * round-trips through serialization, registry-built configs drive the core
 * bit-identically to hand-built ones, and malformed specs / scenario files
 * / --mech flags die with clear messages (strict-env style, matching
 * test_experiment.cc).
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "sim/experiment.hh"
#include "sim/mechanisms.hh"
#include "sim/scenario.hh"
#include "trace/serialize.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

// ---------------------------------------------------------------- registry

TEST(Registry, ListsTheSixteenPresetsInCanonicalOrder)
{
    const char* expected[] = {
        "baseline", "constable", "eves", "eves+constable",
        "elar", "rfp", "elar+constable", "rfp+constable",
        "constable-pcrel", "constable-stackrel", "constable-regrel",
        "constable-amt-i", "ideal-stable-lvp", "ideal-stable-lvp-nofetch",
        "ideal-constable", "eves+ideal-constable",
    };
    const auto& presets = MechanismRegistry::instance().presets();
    ASSERT_EQ(presets.size(), std::size(expected));
    for (size_t i = 0; i < presets.size(); ++i) {
        EXPECT_EQ(presets[i].name, expected[i]);
        EXPECT_FALSE(presets[i].description.empty()) << presets[i].name;
    }
}

TEST(Registry, EveryPresetResolvesAndItsSpecRoundTrips)
{
    std::unordered_set<PC> gs { 0x40, 0x80 };
    for (const auto& p : MechanismRegistry::instance().presets()) {
        ASSERT_NE(MechanismRegistry::instance().find(p.name), nullptr);
        MechanismConfig m = mechFor(p.name, &gs);
        // Canonical serialization reproduces the registry spec...
        EXPECT_EQ(mechanismSpec(m), p.spec) << p.name;
        // ...and parses back to the same config (spec fixed point).
        MechanismConfig back = parseMechanismSpec(mechanismSpec(m), &gs);
        EXPECT_EQ(mechanismSpec(back), p.spec) << p.name;
        // Oracle presets consume the stable-PC set; others ignore it.
        EXPECT_EQ(m.ideal.stablePcs.size(), p.perRow ? gs.size() : 0u)
            << p.name;
    }
}

TEST(Registry, PresetsMatchHandBuiltConfigsBitIdentically)
{
    // Inline rebuilds of the deleted factory functions; the full 16-preset
    // proof over the paper suite is the golden-snapshot test.
    MechanismConfig evesConstable;
    evesConstable.eves = true;
    evesConstable.constable.enabled = true;

    MechanismConfig amtI;
    amtI.constable.enabled = true;
    amtI.constable.cvBitPinning = false;

    MechanismConfig stackOnly;
    stackOnly.constable.enabled = true;
    stackOnly.constable.eliminatePcRel = false;
    stackOnly.constable.eliminateRegRel = false;

    auto specs = smokeSuite(1500);
    Trace t = generateTrace(specs[0]);
    auto gs = inspectLoads(t).globalStablePcs();

    MechanismConfig idealC;
    idealC.ideal.mode = IdealMode::Constable;
    idealC.ideal.stablePcs = gs;

    struct Case
    {
        const char* preset;
        MechanismConfig hand;
    };
    const Case cases[] = {
        { "baseline", MechanismConfig{} },
        { "eves+constable", evesConstable },
        { "constable-amt-i", amtI },
        { "constable-stackrel", stackOnly },
        { "ideal-constable", idealC },
    };
    for (const Case& c : cases) {
        SCOPED_TRACE(c.preset);
        RunResult viaRegistry =
            runTrace(t, { CoreConfig{}, mechFor(c.preset, &gs) }, &gs);
        RunResult viaHand = runTrace(t, { CoreConfig{}, c.hand }, &gs);
        EXPECT_EQ(serializeRunResult(viaRegistry),
                  serializeRunResult(viaHand));
    }
}

TEST(Registry, SpecGrammarCoversNonPresetCombinations)
{
    // The sensitivity-study corners: everything off, everything modified.
    MechanismConfig m = parseMechanismSpec(
        "no-mrn constable:none:amt-i:no-wrong-path");
    EXPECT_FALSE(m.mrn);
    EXPECT_TRUE(m.constable.enabled);
    EXPECT_FALSE(m.constable.eliminatePcRel);
    EXPECT_FALSE(m.constable.eliminateStackRel);
    EXPECT_FALSE(m.constable.eliminateRegRel);
    EXPECT_FALSE(m.constable.cvBitPinning);
    EXPECT_FALSE(m.constable.wrongPathUpdates);
    EXPECT_EQ(mechanismSpec(m),
              "no-mrn constable:none:amt-i:no-wrong-path");

    MechanismConfig two = parseMechanismSpec("constable:pcrel:stackrel");
    EXPECT_TRUE(two.constable.eliminatePcRel);
    EXPECT_TRUE(two.constable.eliminateStackRel);
    EXPECT_FALSE(two.constable.eliminateRegRel);
    EXPECT_EQ(mechanismSpec(two), "constable:pcrel:stackrel");
}

TEST(RegistryDeathTest, UnknownPresetAndMalformedSpecsAreFatal)
{
    EXPECT_EXIT(mechFor("constable-typo"), ::testing::ExitedWithCode(1),
                "unknown mechanism preset");
    EXPECT_EXIT(parseMechanismSpec("bogus"), ::testing::ExitedWithCode(1),
                "unknown token");
    EXPECT_EXIT(parseMechanismSpec("constable:bogus"),
                ::testing::ExitedWithCode(1), "unknown constable modifier");
    EXPECT_EXIT(parseMechanismSpec("ideal"), ::testing::ExitedWithCode(1),
                "exactly one mode");
    EXPECT_EXIT(parseMechanismSpec("ideal:perfect"),
                ::testing::ExitedWithCode(1), "unknown ideal mode");
    EXPECT_EXIT(parseMechanismSpec(""), ::testing::ExitedWithCode(1),
                "empty mechanism spec");
    EXPECT_EXIT(parseMechanismSpec("baseline:fast"),
                ::testing::ExitedWithCode(1), "takes no modifiers");
}

// ---------------------------------------------------------------- scenarios

TEST(Scenario, ParsesTheFullDirectiveSet)
{
    Scenario sc = parseScenarioText(
        "# a comment line\n"
        "name my-sweep\n"
        "mech baseline constable   # trailing comment\n"
        "mech eves,eves+constable\n"
        "smt on\n"
        "trace-ops 4000\n"
        "suite-limit 8\n"
        "\n",
        "test");
    EXPECT_EQ(sc.name, "my-sweep");
    std::vector<std::string> mechs = { "baseline", "constable", "eves",
                                       "eves+constable" };
    EXPECT_EQ(sc.mechs, mechs);
    EXPECT_TRUE(sc.smt);
    EXPECT_EQ(sc.traceOps, 4000u);
    EXPECT_EQ(sc.suiteLimit, 8u);
}

TEST(Scenario, HashInsideAValueIsNotACommentStart)
{
    // Regression: stripLine used to truncate at the first '#' anywhere,
    // silently turning "name spike#2" into "name spike". A '#' now only
    // starts a comment at line start or after whitespace.
    Scenario sc = parseScenarioText(
        "name spike#2   # trailing comment still stripped\n"
        "mech constable\n"
        "#full-line comment\n",
        "test");
    EXPECT_EQ(sc.name, "spike#2");
    ASSERT_EQ(sc.mechs.size(), 1u);
}

TEST(Scenario, MinimalScenarioInheritsEverythingElse)
{
    Scenario sc = parseScenarioText("mech constable\n", "test");
    EXPECT_EQ(sc.name, "scenario");
    EXPECT_FALSE(sc.smt);
    EXPECT_EQ(sc.traceOps, 0u);
    EXPECT_EQ(sc.suiteLimit, 0u);
    ASSERT_EQ(sc.mechs.size(), 1u);
}

TEST(ScenarioDeathTest, MalformedFilesAreFatalNotSilent)
{
    auto parse = [](const char* text) {
        return parseScenarioText(text, "scn");
    };
    EXPECT_EXIT(parse("speed 9000\n"), ::testing::ExitedWithCode(1),
                "unknown directive 'speed'");
    EXPECT_EXIT(parse("mech constable\nname a\nname b\n"),
                ::testing::ExitedWithCode(1), "duplicate 'name'");
    EXPECT_EXIT(parse("mech constable\nsmt maybe\n"),
                ::testing::ExitedWithCode(1), "'smt' must be");
    EXPECT_EXIT(parse("mech constable\ntrace-ops 0\n"),
                ::testing::ExitedWithCode(1), "must be >= 1");
    EXPECT_EXIT(parse("mech constable\ntrace-ops many\n"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(parse("mech constable\nsuite-limit 3 7\n"),
                ::testing::ExitedWithCode(1), "one integer");
    EXPECT_EXIT(parse("mech warp-drive\n"), ::testing::ExitedWithCode(1),
                "unknown mechanism preset");
    EXPECT_EXIT(parse("mech constable constable\n"),
                ::testing::ExitedWithCode(1), "duplicate mechanism");
    EXPECT_EXIT(parse("mech\n"), ::testing::ExitedWithCode(1),
                "at least one preset");
    EXPECT_EXIT(parse("smt off\n"), ::testing::ExitedWithCode(1),
                "names no mechanisms");
    EXPECT_EXIT(loadScenarioFile("/no/such/file.scn"),
                ::testing::ExitedWithCode(1), "cannot read scenario file");
}

// ------------------------------------------------------- options plumbing

TEST(MechOptions, FlagAndEnvSelectRegistryPresets)
{
    const char* argv[] = { "prog", "--mech=baseline,constable",
                           "--mech=eves" };
    auto opts = ExperimentOptions::fromArgs(
        static_cast<int>(std::size(argv)), const_cast<char**>(argv));
    std::vector<std::string> expected = { "baseline", "constable", "eves" };
    EXPECT_EQ(opts.mechNames, expected);

    setenv("CONSTABLE_MECH", "constable-amt-i", 1);
    setenv("CONSTABLE_SCENARIO", "some.scn", 1);
    auto env = ExperimentOptions::fromEnv();
    ASSERT_EQ(env.mechNames.size(), 1u);
    EXPECT_EQ(env.mechNames[0], "constable-amt-i");
    EXPECT_EQ(env.scenarioFile, "some.scn");

    // CLI overrides env: a --mech list replaces (not extends) the env
    // selection, and displaces an env scenario; --scenario likewise
    // displaces env-provided mech names.
    const char* cliMech[] = { "prog", "--mech=baseline,constable" };
    auto m = ExperimentOptions::fromArgs(2, const_cast<char**>(cliMech));
    std::vector<std::string> cliOnly = { "baseline", "constable" };
    EXPECT_EQ(m.mechNames, cliOnly);
    EXPECT_TRUE(m.scenarioFile.empty());

    const char* cliScen[] = { "prog", "--scenario=other.scn" };
    auto sopt = ExperimentOptions::fromArgs(2, const_cast<char**>(cliScen));
    EXPECT_TRUE(sopt.mechNames.empty());
    EXPECT_EQ(sopt.scenarioFile, "other.scn");
    unsetenv("CONSTABLE_MECH");
    unsetenv("CONSTABLE_SCENARIO");
}

TEST(MechOptionsDeathTest, UnknownOrEmptyMechListsAreFatal)
{
    const char* bad[] = { "prog", "--mech=nonsense" };
    EXPECT_EXIT(ExperimentOptions::fromArgs(2, const_cast<char**>(bad)),
                ::testing::ExitedWithCode(1), "unknown mechanism preset");
    const char* empty[] = { "prog", "--mech=," };
    EXPECT_EXIT(ExperimentOptions::fromArgs(2, const_cast<char**>(empty)),
                ::testing::ExitedWithCode(1), "names no mechanism presets");
    const char* dup[] = { "prog", "--mech=constable,constable" };
    EXPECT_EXIT(ExperimentOptions::fromArgs(2, const_cast<char**>(dup)),
                ::testing::ExitedWithCode(1), "duplicate mechanism preset");

    // --mech and --scenario cannot both drive the sweep.
    ExperimentOptions both;
    both.mechNames = { "constable" };
    both.scenarioFile = "x.scn";
    EXPECT_EXIT(runNamedSweepIfRequested("bench", both),
                ::testing::ExitedWithCode(1), "mutually exclusive");
}

TEST(MechOptionsDeathTest, OraclePresetNeedsInspectedSuite)
{
    ExperimentOptions opts;
    opts.threads = 1;
    opts.traceOps = 1500;
    auto specs = smokeSuite(1500);
    specs.resize(1);
    Suite suite = Suite::fromSpecs(specs, opts, /*inspect=*/false);
    Experiment e("oracle", suite, opts);
    EXPECT_EXIT(e.addPreset("ideal-constable"),
                ::testing::ExitedWithCode(1), "inspected suite");
}

} // namespace
} // namespace constable
