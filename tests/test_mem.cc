/**
 * @file
 * Memory-hierarchy substrate tests: cache tag array, replacement,
 * prefetchers, DRAM timing, DTLB, directory and the facade.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/dram.hh"
#include "mem/dtlb.hh"
#include "mem/hierarchy.hh"
#include "mem/prefetcher.hh"

namespace constable {
namespace {

CacheConfig
tinyCache(ReplPolicy pol = ReplPolicy::LRU)
{
    // 4 sets x 2 ways x 64B = 512B.
    CacheConfig c;
    c.name = "tiny";
    c.sizeKB = 1;
    c.ways = 2;
    c.policy = pol;
    return c;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.lookup(0x10, false));
    c.insert(0x10, false);
    EXPECT_TRUE(c.lookup(0x10, false));
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(tinyCache());
    unsigned sets = c.numSets();
    // Three lines mapping to set 0: evict the least recently used.
    c.insert(0 * sets, false);
    c.insert(1 * sets, false);
    c.lookup(0 * sets, false);       // touch line 0: line 1 becomes LRU
    c.insert(2 * sets, false);       // evicts line 1
    EXPECT_TRUE(c.contains(0 * sets));
    EXPECT_FALSE(c.contains(1 * sets));
    EXPECT_TRUE(c.contains(2 * sets));
}

TEST(Cache, EvictHookReportsVictimAndDirty)
{
    Cache c(tinyCache());
    unsigned sets = c.numSets();
    Addr victim = 0;
    bool dirty = false;
    int calls = 0;
    c.setEvictHook([&](Addr line, bool d) {
        victim = line;
        dirty = d;
        ++calls;
    });
    c.insert(0 * sets, true);  // dirty
    c.insert(1 * sets, false);
    c.insert(2 * sets, false); // evicts line 0 (oldest)
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(victim, 0u * sets);
    EXPECT_TRUE(dirty);
}

TEST(Cache, InvalidateReturnsDirtyState)
{
    Cache c(tinyCache());
    c.insert(0x20, true);
    auto r = c.invalidate(0x20);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(*r);
    EXPECT_FALSE(c.contains(0x20));
    EXPECT_FALSE(c.invalidate(0x20).has_value());
}

TEST(Cache, WriteSetsDirty)
{
    Cache c(tinyCache());
    c.insert(0x30, false);
    c.lookup(0x30, true);
    auto r = c.invalidate(0x30);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(*r);
}

TEST(Cache, RripPrefetchInsertsEvictFirst)
{
    Cache c(tinyCache(ReplPolicy::RRIP));
    unsigned sets = c.numSets();
    c.insert(0 * sets, false);             // demand: rrpv 2
    c.insert(1 * sets, false, true);       // prefetch: rrpv 3 (distant)
    c.insert(2 * sets, false);             // evicts the prefetch
    EXPECT_TRUE(c.contains(0 * sets));
    EXPECT_FALSE(c.contains(1 * sets));
}

TEST(Prefetch, StrideDetectsAfterTraining)
{
    StridePrefetcher p;
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i) {
        out.clear();
        p.observe(0x100, 0x1000 + 64 * i, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 0x1000u + 64 * 3 + 64);
}

TEST(Prefetch, StrideIgnoresRandom)
{
    StridePrefetcher p;
    std::vector<Addr> out;
    Addr addrs[] = { 0x1000, 0x5020, 0x2310, 0x8fa8, 0x1458 };
    for (Addr a : addrs) {
        out.clear();
        p.observe(0x100, a, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST(Prefetch, StreamerFollowsDirection)
{
    StreamerPrefetcher p;
    std::vector<Addr> out;
    p.observe(0x10000, out);
    p.observe(0x10040, out);
    out.clear();
    p.observe(0x10080, out); // two increasing steps: direction up
    ASSERT_FALSE(out.empty());
    EXPECT_GT(out[0], 0x10080u);
}

TEST(Prefetch, SppLearnsDeltaChain)
{
    SppPrefetcher p;
    std::vector<Addr> out;
    for (int i = 0; i < 12; ++i) {
        out.clear();
        p.observe(0x20000 + 128 * i, out); // delta of 2 lines within page
    }
    EXPECT_FALSE(out.empty());
}

TEST(Dram, RowHitFasterThanMiss)
{
    Dram d;
    unsigned first = d.access(0x10000);     // row miss
    unsigned second = d.access(0x10000);    // same row: hit
    EXPECT_GT(first, second);
    EXPECT_EQ(d.rowMisses, 1u);
    EXPECT_EQ(d.rowHits, 1u);
}

TEST(Dram, LatenciesMatchConfig)
{
    DramConfig cfg;
    Dram d(cfg);
    unsigned miss = d.access(0x40000);
    EXPECT_EQ(miss, cfg.tRp + cfg.tRcd + cfg.tCas + cfg.busTransfer);
    unsigned hit = d.access(0x40000);
    EXPECT_EQ(hit, cfg.tCas + cfg.busTransfer);
}

TEST(Dtlb, MissThenHit)
{
    Dtlb t(64, 4, 20);
    EXPECT_EQ(t.access(0x123456), 20u);
    EXPECT_EQ(t.access(0x123456 + 8), 0u); // same page
    EXPECT_EQ(t.misses, 1u);
    EXPECT_EQ(t.hits, 1u);
}

TEST(Directory, PinAndSnoop)
{
    Directory d;
    d.pin(0x55);
    EXPECT_TRUE(d.isPinned(0x55));
    d.pin(0x55); // idempotent
    EXPECT_EQ(d.numPinned(), 1u);
    d.snoopDelivered(0x55);
    EXPECT_FALSE(d.isPinned(0x55));
    EXPECT_EQ(d.snoopsDelivered, 1u);
}

TEST(Hierarchy, LatencyOrderingAcrossLevels)
{
    HierarchyConfig cfg;
    cfg.enablePrefetchers = false;
    MemHierarchy m(cfg);
    unsigned dramLat = m.load(0x1, 0x100000).latency; // cold: DRAM
    unsigned l1Lat = m.load(0x1, 0x100000).latency;   // now in L1
    EXPECT_GT(dramLat, l1Lat);
    EXPECT_GE(l1Lat, cfg.l1d.latency);
}

TEST(Hierarchy, WarmLineServesFromL2)
{
    HierarchyConfig cfg;
    cfg.enablePrefetchers = false;
    MemHierarchy m(cfg);
    m.warmLine(lineAddr(0x200000));
    MemAccessResult r = m.load(0x1, 0x200000);
    EXPECT_EQ(static_cast<int>(r.level), static_cast<int>(MemLevel::L2));
}

TEST(Hierarchy, SnoopInvalidatesEverywhere)
{
    HierarchyConfig cfg;
    cfg.enablePrefetchers = false;
    MemHierarchy m(cfg);
    m.load(0x1, 0x300000);
    m.snoop(0x300000);
    MemAccessResult r = m.load(0x1, 0x300000);
    EXPECT_EQ(static_cast<int>(r.level), static_cast<int>(MemLevel::Dram));
}

TEST(Hierarchy, CountsReadsAndWrites)
{
    MemHierarchy m;
    m.load(0x1, 0x1000);
    m.store(0x2, 0x2000);
    m.store(0x2, 0x2000);
    EXPECT_EQ(m.l1dReads, 1u);
    EXPECT_EQ(m.l1dWrites, 2u);
    StatSet s;
    m.exportStats(s);
    EXPECT_DOUBLE_EQ(s.get("mem.l1d.reads"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("mem.l1d.writes"), 2.0);
}

TEST(Hierarchy, L1EvictHookFires)
{
    HierarchyConfig cfg;
    cfg.enablePrefetchers = false;
    cfg.l1d.sizeKB = 1;   // 16 lines: easy to overflow
    cfg.l1d.ways = 2;
    MemHierarchy m(cfg);
    int evictions = 0;
    m.setL1EvictHook([&](Addr, bool) { ++evictions; });
    for (Addr a = 0; a < 64 * 64; a += 64)
        m.load(0x1, 0x400000 + a);
    EXPECT_GT(evictions, 0);
}

} // namespace
} // namespace constable
