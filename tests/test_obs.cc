/**
 * @file
 * Tests for the observability tier (common/obs.hh): the armed/disarmed
 * gate never perturbs simulated results (RunResult bytes are bit-identical
 * either way), the span ring drops and counts on overflow, status.json is
 * atomically rewritten (a concurrent reader never sees a torn file), the
 * emitted Chrome trace-event JSON is well-formed, and shard partial files
 * round-trip counters/histograms/spans through save + merge. Plus the
 * CONSTABLE_LOG_LEVEL satellite: warnOnce/warnEvery dedup state.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/obs.hh"
#include "sim/mechanisms.hh"
#include "sim/runner.hh"
#include "trace/serialize.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

namespace fs = std::filesystem;

/** Fresh temp dir per test; obs state reset on both ends so test order
 *  never matters (counters/lanes are process-global). */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obsReset();
        std::string tmpl = fs::temp_directory_path() /
                           "constable-obs-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void
    TearDown() override
    {
        obsReset();
        fs::remove_all(dir);
    }

    std::string dir;
};

// --------------------------------------------------------- registry gate

TEST_F(ObsTest, ArmedRunIsBitIdenticalToDisarmed)
{
    auto specs = smokeSuite(1200);
    Trace t = generateTrace(specs[0]);
    SystemConfig cfg { CoreConfig{}, mechFor("constable") };

    ASSERT_FALSE(obsArmed());
    std::vector<uint8_t> disarmed = serializeRunResult(runTrace(t, cfg));

    obsArm();
    ASSERT_TRUE(obsArmed());
    std::vector<uint8_t> armed = serializeRunResult(runTrace(t, cfg));

    // Obs state lives strictly outside RunResult: arming the registry
    // must never reach the simulated bytes (golden fingerprints depend
    // on this).
    EXPECT_EQ(armed, disarmed);
    // ...but the armed run did observe something (the idle fast-forward
    // flush at minimum fires once per core run).
    EXPECT_GT(obsCounter("sim.idle_ff_cycles").value(), 0u);
}

TEST_F(ObsTest, CountersGaugesHistogramsGateOnArmed)
{
    ObsCounter& c = obsCounter("test.gate.counter");
    ObsGauge& g = obsGauge("test.gate.gauge");
    ObsHistogram& h = obsHistogram("test.gate.hist");

    c.add(5);
    g.set(7);
    h.record(9);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0u);
    EXPECT_EQ(h.count(), 0u);

    obsArm();
    c.add(5);
    g.set(7);
    h.record(9);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.value(), 7u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 9u);
    // Power-of-two buckets: 0 and 1 -> bucket 0, 2..3 -> 1, 1024 -> 10.
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(1024);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u); // 9 lives in [8,16)
    EXPECT_EQ(h.bucket(10), 1u);
}

// --------------------------------------------------------- span recorder

TEST_F(ObsTest, SpanRingOverflowDropsAndCounts)
{
    obsArm();
    const size_t emitted = 5000; // ring capacity is 4096 per lane
    for (size_t i = 0; i < emitted; ++i)
        obsEmitSpan("overflow-lane", "span", "test", i, 1);
    EXPECT_EQ(obsSpanCount(), 4096u);
    EXPECT_EQ(obsSpansDropped(), emitted - 4096u);

    // The drop total must survive into the metrics snapshot.
    std::string path = dir + "/metrics.json";
    ASSERT_TRUE(obsWriteMetrics(path));
    std::string json = obsReadStatus(path);
    EXPECT_NE(json.find("\"dropped\": " + std::to_string(emitted - 4096)),
              std::string::npos)
        << json;
}

/** Validate brace/bracket balance outside string literals — the mini
 *  well-formedness check for the emitted JSON. */
bool
jsonBalanced(const std::string& s)
{
    int depth = 0;
    bool inStr = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (inStr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (c == '"')
            inStr = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !inStr;
}

TEST_F(ObsTest, TraceEventJsonIsWellFormedWithLaneMetadata)
{
    obsArm();
    {
        ObsSpan s("outer", "test");
        ObsSpan inner("inner", "test");
    }
    obsEmitSpan("shard-3", "cell.compute", "cell", 10, 20);
    obsEmitSpan("fleet:web", "dispatch:\"quoted\"", "fleet", 5, 1);

    std::string path = dir + "/trace.json";
    ASSERT_TRUE(obsWriteTrace(path));
    std::string json = obsReadStatus(path);
    ASSERT_FALSE(json.empty());

    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    EXPECT_TRUE(jsonBalanced(json)) << json;
    // One thread_name metadata record per lane, and the lanes we named.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"shard-3\""), std::string::npos);
    EXPECT_NE(json.find("\"fleet:web\""), std::string::npos);
    // The quoted span name must arrive escaped, not raw.
    EXPECT_NE(json.find("dispatch:\\\"quoted\\\""), std::string::npos);
    // Complete events carry the X phase with timestamps.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":10,\"dur\":20"), std::string::npos);
}

TEST_F(ObsTest, MetricsSnapshotIsWellFormedJson)
{
    obsArm();
    obsCounter("test.snapshot.counter").add(3);
    obsHistogram("test.snapshot.hist").record(42);
    std::string path = dir + "/metrics.json";
    ASSERT_TRUE(obsWriteMetrics(path));
    std::string json = obsReadStatus(path);
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"test.snapshot.counter\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1, \"sum\": 42"), std::string::npos);
}

// ------------------------------------------------------- shard partials

TEST_F(ObsTest, PartialSaveMergeRoundTrips)
{
    obsArm();
    obsCounter("test.partial.counter").add(11);
    obsHistogram("test.partial.hist").record(100);
    {
        ObsSpan s("cell.compute", "cell");
    }
    std::string path = dir + "/obs-shard-0.partial";
    ASSERT_TRUE(obsSavePartial(path, "shard-0"));

    obsReset();
    obsArm();
    EXPECT_EQ(obsCounter("test.partial.counter").value(), 0u);
    ASSERT_TRUE(obsMergePartial(path));
    EXPECT_EQ(obsCounter("test.partial.counter").value(), 11u);
    EXPECT_EQ(obsHistogram("test.partial.hist").count(), 1u);
    EXPECT_EQ(obsHistogram("test.partial.hist").sum(), 100u);
    // The span came back under the override lane.
    std::string trace = dir + "/trace.json";
    ASSERT_TRUE(obsWriteTrace(trace));
    std::string json = obsReadStatus(trace);
    EXPECT_NE(json.find("\"shard-0\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"cell.compute\""), std::string::npos) << json;
}

TEST_F(ObsTest, CorruptPartialFailsWholeMerge)
{
    obsArm();
    std::string path = dir + "/bad.partial";

    // Wrong header.
    ASSERT_TRUE(fs::exists(dir));
    {
        std::string text = "not-a-partial\nC x 1\n";
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    EXPECT_FALSE(obsMergePartial(path));

    // Malformed counter value: merge must reject, not half-apply.
    {
        std::string text = "obs-partial v1\nC test.bad.counter 12x4\n";
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
    }
    EXPECT_FALSE(obsMergePartial(path));
}

// --------------------------------------------------------- live progress

TEST_F(ObsTest, StatusJsonIsAtomicUnderConcurrentReader)
{
    std::string path = dir + "/status.json";
    std::atomic<bool> stop { false };
    std::atomic<uint64_t> reads { 0 };
    std::atomic<uint64_t> tornReads { 0 };

    std::thread reader([&] {
        while (!stop.load()) {
            std::string json = obsReadStatus(path);
            if (json.empty())
                continue; // not written yet, or mid-rename: both fine
            ++reads;
            // Every observed file content must render: a torn write
            // would drop required fields and format to "".
            if (obsFormatStatus(json).empty())
                ++tornReads;
        }
    });

    ObsProgressConfig cfg;
    cfg.label = "atomic-test";
    cfg.total = 4;
    cfg.statusPath = path;
    cfg.intervalSec = 0; // no stderr chatter from the test
    for (int iter = 0; iter < 200; ++iter) {
        obsProgressBegin(cfg);
        obsProgressCellDone(1'000'000);
        obsProgressUpdate(3);
        obsProgressEnd(); // final: unconditional atomic rewrite
    }
    stop.store(true);
    reader.join();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(tornReads.load(), 0u);

    // The final status is "done" and renders with the label.
    std::string line = obsFormatStatus(obsReadStatus(path));
    EXPECT_NE(line.find("atomic-test"), std::string::npos) << line;
    EXPECT_NE(line.find("done"), std::string::npos) << line;
}

TEST_F(ObsTest, StatusFormatterRejectsGarbage)
{
    EXPECT_EQ(obsFormatStatus(""), "");
    EXPECT_EQ(obsFormatStatus("{\"experiment\":\"x\"}"), "");
    EXPECT_EQ(obsFormatStatus("hello"), "");
    std::string ok =
        "{\"experiment\":\"fig11\",\"state\":\"running\","
        "\"cells_done\":3,\"cells_total\":16,\"mops\":1.250,"
        "\"eta_sec\":40,\"elapsed_sec\":9.5,\"owner\":\"pid-7\","
        "\"updated_unix_sec\":1}";
    std::string line = obsFormatStatus(ok);
    EXPECT_NE(line.find("fig11"), std::string::npos) << line;
    EXPECT_NE(line.find("3/16"), std::string::npos) << line;
    EXPECT_NE(line.find("pid-7"), std::string::npos) << line;
}

// ------------------------------------------------- logging satellites

TEST(LogOnce, FirstOccurrenceAndEveryNth)
{
    // warnOnce/warnEvery route through these; the print itself depends on
    // CONSTABLE_LOG_LEVEL, the dedup state does not.
    EXPECT_TRUE(logdetail::firstOccurrence("obs-test-once-key"));
    EXPECT_FALSE(logdetail::firstOccurrence("obs-test-once-key"));
    EXPECT_TRUE(logdetail::firstOccurrence("obs-test-once-key-2"));

    int fired = 0;
    for (int i = 0; i < 25; ++i) {
        if (logdetail::everyNth("obs-test-nth-key", 10))
            ++fired;
    }
    EXPECT_EQ(fired, 3); // occurrences 1, 11, 21
}

} // namespace
} // namespace constable
