/**
 * @file
 * Power-model tests: event accounting, unit attribution, and the
 * Constable-reduces-power property (paper §9.5).
 */

#include <gtest/gtest.h>

#include "core/storage.hh"
#include "power/power.hh"
#include "sim/mechanisms.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

/**
 * Synthetic stat set for a run where a fraction `elimFrac` of `loads`
 * dynamic loads is eliminated by Constable. Eliminated loads skip the AGU,
 * LSQ search, DTLB and L1D read, but every load still pays the SLD/RMT
 * lookups, and elimination adds AMT traffic — the energy trade the paper's
 * Fig 19 / Table 3 constants encode.
 */
StatSet
elimStats(double elim_frac)
{
    constexpr double kLoads = 10'000.0;
    constexpr double kOps = 40'000.0;
    double executed = kLoads * (1.0 - elim_frac);
    StatSet s;
    s.set("renamed.ops", kOps);
    s.set("instructions", kOps);
    s.set("rob.allocs", kOps);
    s.set("rs.allocs", kOps - kLoads * elim_frac);
    s.set("issue.events", kOps - kLoads * elim_frac);
    s.set("exec.alu", kOps - kLoads);
    s.set("exec.agu", executed);
    s.set("mem.l1d.reads", executed);
    s.set("mem.dtlb.accesses", executed);
    s.set("constable.sld.lookups", kLoads);
    s.set("constable.sld.arms", kLoads * elim_frac * 0.1);
    s.set("constable.rmt.inserts", kLoads);
    s.set("constable.amt.inserts", kLoads * elim_frac * 0.2);
    s.set("constable.amt.invalidations", kLoads * elim_frac * 0.05);
    return s;
}

TEST(Power, ZeroStatsZeroPower)
{
    StatSet s;
    PowerBreakdown b = computePower(s);
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(Power, L1dAccessesChargeMeu)
{
    StatSet s;
    s.set("mem.l1d.reads", 100);
    PowerParams p;
    PowerBreakdown b = computePower(s, p);
    EXPECT_DOUBLE_EQ(b.meuL1d, 100 * p.l1dPerRead);
    EXPECT_DOUBLE_EQ(b.fe, 0.0);
}

TEST(Power, RsEventsChargeOoo)
{
    StatSet s;
    s.set("rs.allocs", 10);
    s.set("issue.events", 5);
    PowerParams p;
    PowerBreakdown b = computePower(s, p);
    EXPECT_DOUBLE_EQ(b.oooRs, 10 * p.rsPerAlloc + 5 * p.rsPerIssue);
}

TEST(Power, ConstableStructuresChargedToRatAndL1d)
{
    StatSet s;
    s.set("constable.sld.lookups", 10);
    s.set("constable.amt.inserts", 4);
    PowerParams p;
    PowerBreakdown b = computePower(s, p);
    EXPECT_GE(b.oooRat, 10 * p.sldRead);
    EXPECT_GE(b.meuL1d, 4 * p.amtAccess);
}

TEST(Power, BreakdownSumsToTotal)
{
    StatSet s;
    s.set("renamed.ops", 100);
    s.set("rob.allocs", 100);
    s.set("instructions", 100);
    s.set("exec.alu", 50);
    s.set("mem.l1d.reads", 20);
    PowerBreakdown b = computePower(s);
    EXPECT_NEAR(b.total(),
                b.fe + b.ooo() + b.eu + b.meu() + b.other, 1e-9);
    EXPECT_GT(b.total(), 0.0);
}

TEST(Power, ConstableReducesCoreDynamicEnergy)
{
    // Paper §9.5: Constable reduces core dynamic power (driven by RS
    // allocation and L1D access reductions) despite its own structures.
    auto specs = smokeSuite(40'000);
    Trace t = generateTrace(specs[1]); // Enterprise
    RunResult base = runTrace(t, { CoreConfig{}, mechFor("baseline") });
    RunResult cons = runTrace(t, { CoreConfig{}, mechFor("constable") });
    double eb = computePower(base.stats).total();
    double ec = computePower(cons.stats).total();
    EXPECT_LT(ec, eb);
}

// Sensitivity of the fixed per-event constants (fig19/table3) to the
// eliminated-load fraction: a stepping stone to McPAT calibration — any
// recalibrated parameter set must preserve these monotonic responses.
TEST(Power, EnergyRespondsMonotonicallyToEliminatedLoadFraction)
{
    PowerParams p;
    double prevTotal = -1.0, prevMeu = -1.0;
    for (int step = 0; step <= 10; ++step) {
        double f = 0.1 * step;
        PowerBreakdown b = computePower(elimStats(f), p);
        if (step > 0) {
            // More elimination -> strictly less total and memory-execution
            // energy, despite the growing AMT/SLD-arm overhead.
            EXPECT_LT(b.total(), prevTotal) << "at fraction " << f;
            EXPECT_LT(b.meu(), prevMeu) << "at fraction " << f;
        }
        prevTotal = b.total();
        prevMeu = b.meu();
    }

    // The response is linear in the eliminated fraction with slope
    // (per-load execution energy saved) - (per-load Constable overhead
    // added); the model holds it exactly, so check the endpoints against
    // the analytic value.
    double e0 = computePower(elimStats(0.0), p).total();
    double e1 = computePower(elimStats(1.0), p).total();
    double perLoadSaved = p.l1dPerRead + p.aguPerOp + p.lsqSearchPerMemOp +
                          p.dtlbPerAccess + p.rsPerAlloc + p.rsPerIssue +
                          p.prfPerWrite;
    double perLoadAdded =
        0.1 * p.sldWrite + 0.2 * p.amtAccess + 0.05 * p.amtAccess;
    EXPECT_NEAR(e0 - e1, 10'000.0 * (perLoadSaved - perLoadAdded),
                1e-6 * e0);
    // Sanity for any future recalibration: the elimination win must
    // dominate the structure overhead by a wide margin (paper §9.5).
    EXPECT_GT(perLoadSaved, 10.0 * perLoadAdded);
}

// The power model's Constable constants are the same 14 nm numbers the
// Table 3 reproduction prints; a calibration that touches one must touch
// both, and this pins them together.
TEST(Power, ConstableConstantsMatchTable3)
{
    PowerParams p;
    bool sawSld = false, sawAmt = false, sawRmt = false;
    for (const EnergyRow& row : constableEnergyTable()) {
        if (row.name.find("SLD") != std::string::npos) {
            EXPECT_DOUBLE_EQ(p.sldRead, row.readPj);
            EXPECT_DOUBLE_EQ(p.sldWrite, row.writePj);
            sawSld = true;
        }
        // The model charges AMT/RMT with one blended per-access energy:
        // the mean of the table's read and write numbers (rounded to two
        // decimals for RMT).
        if (row.name.find("AMT") != std::string::npos) {
            EXPECT_NEAR(p.amtAccess, (row.readPj + row.writePj) / 2.0,
                        1e-9);
            sawAmt = true;
        }
        if (row.name.find("RMT") != std::string::npos) {
            EXPECT_NEAR(p.rmtAccess, (row.readPj + row.writePj) / 2.0,
                        0.01);
            sawRmt = true;
        }
    }
    EXPECT_TRUE(sawSld);
    EXPECT_TRUE(sawAmt);
    EXPECT_TRUE(sawRmt);
}

TEST(Power, EvesDoesNotReduceEnergyMuch)
{
    // Paper Fig 19: EVES reduces power by only ~0.2% (the predicted load
    // still executes, and the predictor itself burns energy).
    auto specs = smokeSuite(40'000);
    Trace t = generateTrace(specs[1]);
    RunResult base = runTrace(t, { CoreConfig{}, mechFor("baseline") });
    RunResult eves = runTrace(t, { CoreConfig{}, mechFor("eves") });
    RunResult cons = runTrace(t, { CoreConfig{}, mechFor("constable") });
    double eb = computePower(base.stats).total();
    double ee = computePower(eves.stats).total();
    double ec = computePower(cons.stats).total();
    // Constable saves more energy than EVES.
    EXPECT_LT(ec, ee);
    EXPECT_GT(ee, eb * 0.97);
}

} // namespace
} // namespace constable
