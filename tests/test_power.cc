/**
 * @file
 * Power-model tests: event accounting, unit attribution, and the
 * Constable-reduces-power property (paper §9.5).
 */

#include <gtest/gtest.h>

#include "power/power.hh"
#include "sim/runner.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

TEST(Power, ZeroStatsZeroPower)
{
    StatSet s;
    PowerBreakdown b = computePower(s);
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(Power, L1dAccessesChargeMeu)
{
    StatSet s;
    s.set("mem.l1d.reads", 100);
    PowerParams p;
    PowerBreakdown b = computePower(s, p);
    EXPECT_DOUBLE_EQ(b.meuL1d, 100 * p.l1dPerRead);
    EXPECT_DOUBLE_EQ(b.fe, 0.0);
}

TEST(Power, RsEventsChargeOoo)
{
    StatSet s;
    s.set("rs.allocs", 10);
    s.set("issue.events", 5);
    PowerParams p;
    PowerBreakdown b = computePower(s, p);
    EXPECT_DOUBLE_EQ(b.oooRs, 10 * p.rsPerAlloc + 5 * p.rsPerIssue);
}

TEST(Power, ConstableStructuresChargedToRatAndL1d)
{
    StatSet s;
    s.set("constable.sld.lookups", 10);
    s.set("constable.amt.inserts", 4);
    PowerParams p;
    PowerBreakdown b = computePower(s, p);
    EXPECT_GE(b.oooRat, 10 * p.sldRead);
    EXPECT_GE(b.meuL1d, 4 * p.amtAccess);
}

TEST(Power, BreakdownSumsToTotal)
{
    StatSet s;
    s.set("renamed.ops", 100);
    s.set("rob.allocs", 100);
    s.set("instructions", 100);
    s.set("exec.alu", 50);
    s.set("mem.l1d.reads", 20);
    PowerBreakdown b = computePower(s);
    EXPECT_NEAR(b.total(),
                b.fe + b.ooo() + b.eu + b.meu() + b.other, 1e-9);
    EXPECT_GT(b.total(), 0.0);
}

TEST(Power, ConstableReducesCoreDynamicEnergy)
{
    // Paper §9.5: Constable reduces core dynamic power (driven by RS
    // allocation and L1D access reductions) despite its own structures.
    auto specs = smokeSuite(40'000);
    Trace t = generateTrace(specs[1]); // Enterprise
    RunResult base = runTrace(t, { CoreConfig{}, baselineMech() });
    RunResult cons = runTrace(t, { CoreConfig{}, constableMech() });
    double eb = computePower(base.stats).total();
    double ec = computePower(cons.stats).total();
    EXPECT_LT(ec, eb);
}

TEST(Power, EvesDoesNotReduceEnergyMuch)
{
    // Paper Fig 19: EVES reduces power by only ~0.2% (the predicted load
    // still executes, and the predictor itself burns energy).
    auto specs = smokeSuite(40'000);
    Trace t = generateTrace(specs[1]);
    RunResult base = runTrace(t, { CoreConfig{}, baselineMech() });
    RunResult eves = runTrace(t, { CoreConfig{}, evesMech() });
    RunResult cons = runTrace(t, { CoreConfig{}, constableMech() });
    double eb = computePower(base.stats).total();
    double ee = computePower(eves.stats).total();
    double ec = computePower(cons.stats).total();
    // Constable saves more energy than EVES.
    EXPECT_LT(ec, ee);
    EXPECT_GT(ee, eb * 0.97);
}

} // namespace
} // namespace constable
