/**
 * @file
 * Tests for the branch predictor, store sets, and the value-speculation
 * baselines (EVES, MRN, RFP).
 */

#include <gtest/gtest.h>

#include "predictor/branch.hh"
#include "predictor/storeset.hh"
#include "vp/eves.hh"
#include "vp/mrn.hh"
#include "vp/rfp.hh"

namespace constable {
namespace {

TEST(Tage, LearnsAlwaysTaken)
{
    TageLite p;
    for (int i = 0; i < 50; ++i) {
        p.predict(0x100);
        p.update(0x100, true);
    }
    EXPECT_TRUE(p.predict(0x100));
    p.update(0x100, true);
}

TEST(Tage, LearnsAlternatingPattern)
{
    TageLite p;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        bool taken = i % 2 == 0;
        bool pred = p.predict(0x200);
        p.update(0x200, taken);
        if (i >= 200 && pred != taken)
            ++wrong;
    }
    // Tagged history tables must capture a period-2 pattern.
    EXPECT_LT(wrong, 20);
}

TEST(Tage, LearnsLongerPeriodicPattern)
{
    TageLite p;
    int wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        bool taken = (i % 5) < 2;
        bool pred = p.predict(0x300);
        p.update(0x300, taken);
        if (i >= 1500 && pred != taken)
            ++wrong;
    }
    EXPECT_LT(wrong, 100);
}

TEST(Tage, CountsMispredicts)
{
    TageLite p;
    p.predict(0x400);
    p.update(0x400, true);
    EXPECT_EQ(p.lookups, 1u);
}

TEST(StoreSet, InvalidByDefault)
{
    StoreSets s;
    EXPECT_EQ(s.lookup(0x123), kInvalidSsid);
}

TEST(StoreSet, MergeAssignsSameSet)
{
    StoreSets s;
    s.merge(0x100, 0x200);
    Ssid a = s.lookup(0x100);
    EXPECT_NE(a, kInvalidSsid);
    EXPECT_EQ(a, s.lookup(0x200));
}

TEST(StoreSet, MergeIntoExistingSet)
{
    StoreSets s;
    s.merge(0x100, 0x200);
    s.merge(0x100, 0x300); // store joins load's existing set
    EXPECT_EQ(s.lookup(0x300), s.lookup(0x100));
}

TEST(StoreSet, ConvergesOnSmallerId)
{
    StoreSets s;
    s.merge(0x100, 0x200);
    s.merge(0x300, 0x400);
    Ssid a = s.lookup(0x100);
    Ssid b = s.lookup(0x300);
    s.merge(0x100, 0x400); // both assigned: converge
    EXPECT_EQ(s.lookup(0x100), std::min(a, b));
    EXPECT_EQ(s.lookup(0x400), std::min(a, b));
}

TEST(StoreSet, ClearResets)
{
    StoreSets s;
    s.merge(0x100, 0x200);
    s.clear();
    EXPECT_EQ(s.lookup(0x100), kInvalidSsid);
}

// ------------------------------------------------------------------ EVES

TEST(Eves, PredictsConstantAfterWarmup)
{
    EvesPredictor e;
    ValuePrediction p;
    for (int i = 0; i < 400; ++i) {
        p = e.predict(0x100);
        e.notifyRename(0x100);
        e.train(0x100, 42);
    }
    p = e.predict(0x100);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 42u);
}

TEST(Eves, PredictsStrideWithInflightAccounting)
{
    EvesPredictor e;
    uint64_t v = 0;
    for (int i = 0; i < 600; ++i) {
        e.predict(0x200);
        e.notifyRename(0x200);
        e.train(0x200, v);
        v += 64;
    }
    // Three in-flight instances: predictions must project 1, 2, 3 strides.
    ValuePrediction p1 = e.predict(0x200);
    e.notifyRename(0x200);
    ValuePrediction p2 = e.predict(0x200);
    e.notifyRename(0x200);
    ValuePrediction p3 = e.predict(0x200);
    e.notifyRename(0x200);
    ASSERT_TRUE(p1.valid);
    ASSERT_TRUE(p2.valid);
    ASSERT_TRUE(p3.valid);
    EXPECT_EQ(p2.value, p1.value + 64);
    EXPECT_EQ(p3.value, p2.value + 64);
    EXPECT_EQ(p1.value, v); // next value to be committed
}

TEST(Eves, AbortInflightRestoresProjection)
{
    EvesPredictor e;
    uint64_t v = 0;
    for (int i = 0; i < 600; ++i) {
        e.predict(0x300);
        e.notifyRename(0x300);
        e.train(0x300, v);
        v += 8;
    }
    ValuePrediction p1 = e.predict(0x300);
    e.notifyRename(0x300);
    e.abortInflight(0x300); // squashed
    ValuePrediction p2 = e.predict(0x300);
    ASSERT_TRUE(p1.valid);
    ASSERT_TRUE(p2.valid);
    EXPECT_EQ(p1.value, p2.value);
}

TEST(Eves, DoesNotPredictRandomValues)
{
    EvesPredictor e;
    Rng rng(3);
    unsigned valid = 0;
    for (int i = 0; i < 500; ++i) {
        ValuePrediction p = e.predict(0x400);
        e.notifyRename(0x400);
        valid += p.valid;
        e.train(0x400, rng.next());
    }
    EXPECT_EQ(valid, 0u);
}

TEST(Eves, ConfidenceResetsOnValueChange)
{
    EvesPredictor e;
    for (int i = 0; i < 400; ++i) {
        e.predict(0x500);
        e.notifyRename(0x500);
        e.train(0x500, 7);
    }
    ASSERT_TRUE(e.predict(0x500).valid);
    e.notifyRename(0x500);
    e.train(0x500, 1234567); // break the pattern
    e.notifyRename(0x500);
    e.train(0x500, 42);
    EXPECT_FALSE(e.predict(0x500).valid);
}

// ------------------------------------------------------------------- MRN

TEST(Mrn, LearnsStablePair)
{
    MrnTable m;
    for (int i = 0; i < 10; ++i)
        m.train(0x100, 0x900);
    MrnPrediction p = m.predict(0x100);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.storePc, 0x900u);
}

TEST(Mrn, NoForwardingMeansNoPrediction)
{
    MrnTable m;
    for (int i = 0; i < 10; ++i)
        m.train(0x100, 0);
    EXPECT_FALSE(m.predict(0x100).valid);
}

TEST(Mrn, UnstablePairResets)
{
    MrnTable m;
    for (int i = 0; i < 10; ++i)
        m.train(0x100, 0x900);
    m.train(0x100, 0x800); // different producer: confidence resets
    EXPECT_FALSE(m.predict(0x100).valid);
}

TEST(Mrn, PunishClearsConfidence)
{
    MrnTable m;
    for (int i = 0; i < 10; ++i)
        m.train(0x100, 0x900);
    ASSERT_TRUE(m.predict(0x100).valid);
    m.punish(0x100);
    EXPECT_FALSE(m.predict(0x100).valid);
}

// ------------------------------------------------------------------- RFP

TEST(Rfp, PredictsStridedAddresses)
{
    RfpPredictor r;
    Addr a = 0x1000;
    for (int i = 0; i < 10; ++i) {
        r.predict(0x100);
        r.train(0x100, a);
        a += 64;
    }
    RfpPrediction p = r.predict(0x100);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.addr, a);
    r.train(0x100, a);
}

TEST(Rfp, NoPredictionForRandomAddresses)
{
    RfpPredictor r;
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.predict(0x200).valid);
        r.train(0x200, rng.next() & 0xffffff);
    }
}

TEST(Rfp, InflightProjection)
{
    RfpPredictor r;
    Addr a = 0;
    for (int i = 0; i < 10; ++i) {
        r.train(0x300, a);
        a += 8;
    }
    RfpPrediction p1 = r.predict(0x300);
    RfpPrediction p2 = r.predict(0x300);
    ASSERT_TRUE(p1.valid && p2.valid);
    EXPECT_EQ(p2.addr, p1.addr + 8);
}

} // namespace
} // namespace constable
