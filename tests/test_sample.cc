/**
 * @file
 * Tests for phase-sampled simulation (sim/sample.hh): window selection is
 * a pure function of (seed, trace, spec); a sampled sweep is bit-identical
 * across 1/4/8 threads and fork-shard execution; malformed --sample specs
 * terminate instead of being reinterpreted; sampled and full-fidelity
 * sweeps checkpoint under different cell directories; and "sample.*" stat
 * keys appear exactly when sampling ran (never on the full-fidelity
 * golden-snapshot surface).
 *
 * Specs here are small and explicit (the ctest env pins
 * CONSTABLE_TRACE_OPS=2000): traces are built at 4000+ ops so selection
 * stays non-degenerate (measured windows strictly under full coverage).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/serialize.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

/** Small but non-degenerate sampling spec for 4000-op traces: 20 phases
 *  of 200 ops, at most 4x2 measured windows (40% coverage). */
SampleOptions
testSpec()
{
    return SampleOptions::parse("phases:4,window:200,fill:128,warm:512,"
                                "spread:2");
}

std::vector<WorkloadSpec>
twoSpecs(size_t ops = 4000)
{
    auto specs = smokeSuite(ops);
    specs.resize(2);
    return specs;
}

ExperimentOptions
sampledOpts(unsigned threads = 1)
{
    ExperimentOptions opts;
    opts.threads = threads;
    opts.traceOps = 4000;
    opts.sample = testSpec();
    return opts;
}

ExperimentResult
runSampled(const ExperimentOptions& opts)
{
    Suite suite = Suite::fromSpecs(twoSpecs(), opts);
    return Experiment("sampled", suite, opts)
        .add("baseline", mechFor("baseline"))
        .add("constable", mechFor("constable"))
        .run();
}

// ----------------------------------------------------------- selection

TEST(SampleSelect, SameSeedSelectsIdenticalWindows)
{
    ExperimentOptions opts = sampledOpts();
    Trace t = generateTrace(twoSpecs()[0]);

    auto a = selectSampleWindows(t, opts.sample, /*seed=*/42);
    auto b = selectSampleWindows(t, opts.sample, /*seed=*/42);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].begin, b[i].begin);
        EXPECT_EQ(a[i].end, b[i].end);
        EXPECT_EQ(a[i].weight, b[i].weight);
    }

    // Windows are window-sized, sorted, in range, and weights partition
    // (sum to at most 1; equal shares of each cluster's population).
    double wsum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].end - a[i].begin, opts.sample.window);
        EXPECT_LE(a[i].end, t.ops.size());
        if (i > 0)
            EXPECT_GT(a[i].begin, a[i - 1].begin);
        wsum += a[i].weight;
    }
    EXPECT_LE(wsum, 1.0 + 1e-9);
    EXPECT_GT(wsum, 0.0);
}

// --------------------------------------------------------- determinism

TEST(SampleDeterminism, BitIdenticalAcrossThreadCounts)
{
    ExperimentResult r1 = runSampled(sampledOpts(1));
    ExperimentResult r4 = runSampled(sampledOpts(4));
    ExperimentResult r8 = runSampled(sampledOpts(8));

    ASSERT_EQ(r1.numRows(), 2u);
    for (size_t row = 0; row < r1.numRows(); ++row) {
        for (size_t cfg = 0; cfg < 2; ++cfg) {
            auto bytes = serializeRunResult(r1.at(row, cfg));
            EXPECT_EQ(serializeRunResult(r4.at(row, cfg)), bytes);
            EXPECT_EQ(serializeRunResult(r8.at(row, cfg)), bytes);
        }
    }
}

TEST(SampleDeterminism, ForkShardMatchesInProcess)
{
#if !defined(__unix__) && !defined(__APPLE__)
    GTEST_SKIP() << "fork-shard mode is POSIX-only";
#endif
    ExperimentResult serial = runSampled(sampledOpts(1));

    ExperimentOptions sharded = sampledOpts(1);
    sharded.shards = 3; // fork coordinator, private scratch checkpoint
    ExperimentResult forked = runSampled(sharded);

    for (size_t row = 0; row < serial.numRows(); ++row) {
        for (size_t cfg = 0; cfg < 2; ++cfg) {
            EXPECT_EQ(serializeRunResult(forked.at(row, cfg)),
                      serializeRunResult(serial.at(row, cfg)));
        }
    }
}

// -------------------------------------------------------- spec parsing

TEST(SampleOptionsDeathTest, MalformedSpecsAreFatal)
{
    EXPECT_EXIT(SampleOptions::parse(""), ::testing::ExitedWithCode(1),
                "empty spec");
    EXPECT_EXIT(SampleOptions::parse("bogus"),
                ::testing::ExitedWithCode(1), "key:value");
    EXPECT_EXIT(SampleOptions::parse("phases:0"),
                ::testing::ExitedWithCode(1), "phases");
    EXPECT_EXIT(SampleOptions::parse("window:8"),
                ::testing::ExitedWithCode(1), "window");
    EXPECT_EXIT(SampleOptions::parse("phases:4,phases:8"),
                ::testing::ExitedWithCode(1), "duplicate");
    EXPECT_EXIT(SampleOptions::parse("frobnicate:3"),
                ::testing::ExitedWithCode(1), "unknown");
    EXPECT_EXIT(SampleOptions::parse("spread:0"),
                ::testing::ExitedWithCode(1), "spread");
    EXPECT_EXIT(SampleOptions::parse("spread:65"),
                ::testing::ExitedWithCode(1), "spread");
    EXPECT_EXIT(SampleOptions::parse("phases:"),
                ::testing::ExitedWithCode(1), "phases");
}

TEST(SampleOptions, SpecRoundTripsAndOffDisables)
{
    SampleOptions o = testSpec();
    EXPECT_TRUE(o.enabled);
    EXPECT_EQ(o.spec(), "phases:4,window:200,fill:128,warm:512,spread:2");
    SampleOptions back = SampleOptions::parse(o.spec());
    EXPECT_EQ(back.spec(), o.spec());

    SampleOptions off = SampleOptions::parse("off");
    EXPECT_FALSE(off.enabled);
    EXPECT_EQ(off.spec(), "off");
}

// -------------------------------------------------- checkpoint isolation

TEST(SampleCheckpoint, SampledAndFullCellsNeverCollide)
{
    ExperimentOptions full = sampledOpts();
    full.sample = SampleOptions{}; // disabled
    ExperimentOptions sampled = sampledOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), full);

    auto dirFor = [&](const ExperimentOptions& o) {
        Experiment exp("ckpt", suite, o);
        exp.add("baseline", mechFor("baseline"));
        SweepManifest m;
        return exp.checkpointDirFor("/ckpt-root", /*smt=*/false, m,
                                    suite.size());
    };
    EXPECT_NE(dirFor(full), dirFor(sampled));

    // Different sample specs and different seeds also get their own cells
    // (the seed drives window selection, so it is part of the identity).
    ExperimentOptions widened = sampled;
    widened.sample.spread = 1;
    EXPECT_NE(dirFor(sampled), dirFor(widened));
    ExperimentOptions reseeded = sampled;
    reseeded.seed += 1;
    EXPECT_NE(dirFor(sampled), dirFor(reseeded));
    // Full-fidelity checkpoints ignore the seed (cells are deterministic
    // functions of (row, config) alone) — the sampled-only sensitivity
    // above must not leak into the full path.
    ExperimentOptions fullReseeded = full;
    fullReseeded.seed += 1;
    EXPECT_EQ(dirFor(full), dirFor(fullReseeded));
}

// ---------------------------------------------------------------- stats

TEST(SampleStats, SampleKeysAppearExactlyWhenSamplingRan)
{
    ExperimentOptions opts = sampledOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), opts);

    ExperimentResult sampled = Experiment("stats", suite, opts)
                                   .add("constable", mechFor("constable"))
                                   .run();
    const RunResult& s = sampled.at(0, 0);
    EXPECT_EQ(s.stats.get("sample.enabled"), 1.0);
    EXPECT_GT(s.stats.get("sample.windows"), 0.0);
    EXPECT_GT(s.stats.get("sample.coverage"), 0.0);
    EXPECT_LT(s.stats.get("sample.coverage"), 1.0);
    EXPECT_GE(s.stats.get("sample.cycles.ci95"), 0.0);
    // Extrapolation covers the whole trace: effective instruction count
    // is the full trace length, not the measured-window subset.
    EXPECT_EQ(s.instructions, suite.trace(0).ops.size());

    ExperimentOptions fullOpts = opts;
    fullOpts.sample = SampleOptions{};
    ExperimentResult full = Experiment("stats_full", suite, fullOpts)
                                .add("constable", mechFor("constable"))
                                .run();
    for (const auto& [key, value] : full.at(0, 0).stats.all()) {
        EXPECT_EQ(key.rfind("sample.", 0), std::string::npos)
            << "full-fidelity result leaked stat key " << key;
    }
}

} // namespace
} // namespace constable
