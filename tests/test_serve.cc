/**
 * @file
 * Tests for the fleet serving tier: the machine/task class scenario
 * grammar (including the stripLine '#'-in-value regression and the fatal
 * paths for malformed blocks), the pure discrete-event simulation against
 * closed-form fixed-arrival expectations, seeded Poisson determinism,
 * unpinned dispatch, and the end-to-end runFleetScenario fingerprint
 * contract across thread counts and checkpoint-resumed calibrations.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "serve/fleet.hh"
#include "sim/scenario.hh"

namespace constable {
namespace {

namespace fs = std::filesystem;

/** Fresh temp directory per test, removed on teardown. */
class FleetTempDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string tmpl = fs::temp_directory_path() /
                           "constable-serve-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

/** A one-machine / one-task fleet whose arrival process and calibration
 *  are hand-specified, so every report figure has a closed form. */
Scenario
analyticScenario()
{
    Scenario sc;
    sc.name = "analytic";
    FleetMachineClass m;
    m.name = "solo";
    m.mech = "baseline";
    m.cores = 1;
    m.replicas = 1;
    m.idlePjPerCycle = 0;
    sc.machines.push_back(m);
    FleetTaskClass t;
    t.name = "steady";
    t.machine = "solo";
    t.interArrival = 100;
    t.expectedOps = 150;
    t.sla = SlaTier::Sla2;
    t.seed = 7;
    t.start = 0;
    t.end = 1000;
    t.poisson = false;
    sc.tasks.push_back(t);
    return sc;
}

// ------------------------------------------------------------ fleet grammar

TEST(FleetScenario, ParsesMachineAndTaskClassBlocks)
{
    Scenario sc = parseScenarioText(
        "name my-fleet   # trailing comment\n"
        "# machine classes first, cloudsim style '{' on its own line\n"
        "machine class\n"
        "{\n"
        "    name big\n"
        "    mech constable\n"
        "    cores 8\n"
        "    replicas 2\n"
        "    idle-pj-per-cycle 12\n"
        "}\n"
        "machine class {\n"
        "    name small\n"
        "    mech baseline\n"
        "}\n"
        "task class {\n"
        "    name web#frontend\n"
        "    machine big\n"
        "    inter-arrival 2500\n"
        "    expected-ops 40000\n"
        "    sla SLA0\n"
        "    seed 99\n"
        "    start 1000\n"
        "    end 500000\n"
        "    arrivals fixed\n"
        "}\n"
        "task class {\n"
        "    name batch\n"
        "    inter-arrival 9000\n"
        "    expected-ops 90000\n"
        "    end 400000\n"
        "}\n",
        "test");
    EXPECT_TRUE(sc.isFleet());
    EXPECT_EQ(sc.name, "my-fleet");
    ASSERT_EQ(sc.machines.size(), 2u);
    EXPECT_EQ(sc.machines[0].name, "big");
    EXPECT_EQ(sc.machines[0].mech, "constable");
    EXPECT_EQ(sc.machines[0].cores, 8u);
    EXPECT_EQ(sc.machines[0].replicas, 2u);
    EXPECT_EQ(sc.machines[0].idlePjPerCycle, 12u);
    EXPECT_EQ(sc.machines[1].name, "small");
    EXPECT_EQ(sc.machines[1].cores, 1u); // defaults
    EXPECT_EQ(sc.machines[1].replicas, 1u);
    EXPECT_EQ(sc.machines[1].idlePjPerCycle, 0u);

    ASSERT_EQ(sc.tasks.size(), 2u);
    // stripLine regression: '#' embedded in a value is not a comment.
    EXPECT_EQ(sc.tasks[0].name, "web#frontend");
    EXPECT_EQ(sc.tasks[0].machine, "big");
    EXPECT_EQ(sc.tasks[0].interArrival, 2500u);
    EXPECT_EQ(sc.tasks[0].expectedOps, 40000u);
    EXPECT_EQ(sc.tasks[0].sla, SlaTier::Sla0);
    EXPECT_EQ(sc.tasks[0].seed, 99u);
    EXPECT_EQ(sc.tasks[0].start, 1000u);
    EXPECT_EQ(sc.tasks[0].end, 500000u);
    EXPECT_FALSE(sc.tasks[0].poisson);
    // Defaults: unpinned, poisson, start 0, SLA2, per-name seed.
    EXPECT_TRUE(sc.tasks[1].machine.empty());
    EXPECT_TRUE(sc.tasks[1].poisson);
    EXPECT_EQ(sc.tasks[1].start, 0u);
    EXPECT_EQ(sc.tasks[1].sla, SlaTier::Sla2);
    EXPECT_NE(sc.tasks[1].seed, 0u);
    EXPECT_NE(sc.tasks[1].seed, sc.tasks[0].seed);
}

TEST(FleetScenarioDeathTest, MalformedBlocksAreFatalNotSilent)
{
    auto parse = [](const std::string& text) {
        return parseScenarioText(text, "scn");
    };
    const std::string machine =
        "machine class {\nname m\nmech baseline\n}\n";
    const std::string task =
        "task class {\nname t\nmachine m\ninter-arrival 100\n"
        "expected-ops 50\nend 1000\n}\n";

    EXPECT_EXIT(parse("machine class {\nmech baseline\n}\n" + task),
                ::testing::ExitedWithCode(1), "needs a 'name'");
    EXPECT_EXIT(parse("machine class {\nname m\n}\n" + task),
                ::testing::ExitedWithCode(1), "needs a 'mech' preset");
    EXPECT_EXIT(parse("machine class {\nname m\nmech warp-drive\n}\n"),
                ::testing::ExitedWithCode(1), "unknown mechanism preset");
    EXPECT_EXIT(
        parse("machine class {\nname m\nmech baseline\nspeed 9\n}\n"),
        ::testing::ExitedWithCode(1), "unknown machine-class key");
    EXPECT_EXIT(
        parse("machine class {\nname m\nmech baseline\ncores 0\n}\n"),
        ::testing::ExitedWithCode(1), "cores");
    EXPECT_EXIT(
        parse("machine class {\nname m\nname m2\nmech baseline\n}\n"),
        ::testing::ExitedWithCode(1), "duplicate 'name'");
    EXPECT_EXIT(parse(machine + machine + task),
                ::testing::ExitedWithCode(1), "duplicate machine class");
    EXPECT_EXIT(parse("machine class\nname m\n"),
                ::testing::ExitedWithCode(1), "expected '\\{'");
    EXPECT_EXIT(parse("machine class {\nname m\nmech baseline\n"),
                ::testing::ExitedWithCode(1), "unterminated");

    EXPECT_EXIT(
        parse(machine + "task class {\nname t\nmachine m\n"
                        "inter-arrival 100\nexpected-ops 50\nend 1000\n"
                        "priority high\n}\n"),
        ::testing::ExitedWithCode(1), "unknown task-class key");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\ninter-arrival 100\n"
                        "expected-ops 50\nend 1000\nsla SLA9\n}\n"),
        ::testing::ExitedWithCode(1), "'sla' must be");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\nexpected-ops 50\n"
                        "end 1000\n}\n"),
        ::testing::ExitedWithCode(1), "needs an 'inter-arrival'");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\ninter-arrival 100\n"
                        "end 1000\n}\n"),
        ::testing::ExitedWithCode(1), "needs 'expected-ops'");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\ninter-arrival 100\n"
                        "expected-ops 50\n}\n"),
        ::testing::ExitedWithCode(1), "'end' greater than its 'start'");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\ninter-arrival 100\n"
                        "expected-ops 50\nstart 500\nend 500\n}\n"),
        ::testing::ExitedWithCode(1), "'end' greater than its 'start'");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\nmachine ghost\n"
                        "inter-arrival 100\nexpected-ops 50\nend 1000\n}\n"),
        ::testing::ExitedWithCode(1), "unknown machine class 'ghost'");
    EXPECT_EXIT(parse(machine + task + task),
                ::testing::ExitedWithCode(1), "duplicate task class");
    EXPECT_EXIT(
        parse(machine + "task class {\nname t\ninter-arrival 100 200\n"
                        "expected-ops 50\nend 1000\n}\n"),
        ::testing::ExitedWithCode(1), "exactly one value");

    // Fleet blocks and classic sweep directives are mutually exclusive,
    // and a half-declared fleet is an error, not an empty sweep.
    EXPECT_EXIT(parse("mech constable\n" + machine + task),
                ::testing::ExitedWithCode(1), "mutually exclusive");
    EXPECT_EXIT(parse("smt on\n" + machine + task),
                ::testing::ExitedWithCode(1),
                "'smt' does not apply to fleet");
    EXPECT_EXIT(parse(machine), ::testing::ExitedWithCode(1),
                "no 'task class' block");
    EXPECT_EXIT(parse("task class {\nname t\ninter-arrival 100\n"
                      "expected-ops 50\nend 1000\n}\n"),
                ::testing::ExitedWithCode(1), "no 'machine class' block");
}

TEST(FleetScenarioDeathTest, RunScenarioRedirectsFleetsToConstableServe)
{
    Scenario sc = analyticScenario();
    ExperimentOptions opts;
    opts.threads = 1;
    EXPECT_EXIT(runScenario(sc, opts), ::testing::ExitedWithCode(1),
                "constable-serve");
}

// ------------------------------------------------------- pure simulation

TEST(FleetSim, FixedArrivalsMatchClosedForm)
{
    Scenario sc = analyticScenario();
    std::vector<MachineCalibration> calib(1);
    calib[0].mech = "baseline";
    calib[0].cyclesPerOp = 1.0;
    calib[0].pjPerOp = 100.0;

    FleetReport rep = simulateFleet(sc, calib);

    // Fixed gaps of 100 over [0, 1000): arrivals at 100..900, service
    // 150 cycles each on one core, so request k's latency is 100 + 50k.
    EXPECT_EQ(rep.totalRequests, 9u);
    ASSERT_EQ(rep.machines.size(), 1u);
    const MachineReport& m = rep.machines[0];
    EXPECT_EQ(m.requests, 9u);
    EXPECT_DOUBLE_EQ(m.servedOps, 9.0 * 150.0);
    EXPECT_DOUBLE_EQ(m.busyCycles, 9.0 * 150.0);
    // Last completion 100 + 9*150 = 1450 extends the horizon past 'end'.
    EXPECT_DOUBLE_EQ(rep.horizonCycles, 1450.0);
    EXPECT_DOUBLE_EQ(m.utilization, 1350.0 / 1450.0);
    EXPECT_DOUBLE_EQ(m.requestsPerMcycle, 9.0 * 1e6 / 1450.0);
    // 9 * 150 ops * 100 pJ/op, no idle draw, over 9 requests, in uJ.
    EXPECT_DOUBLE_EQ(m.uJPerRequest, 0.015);

    const SlaReport& s2 = rep.sla[static_cast<size_t>(SlaTier::Sla2)];
    EXPECT_EQ(s2.requests, 9u);
    EXPECT_DOUBLE_EQ(s2.p50, 350.0);
    EXPECT_DOUBLE_EQ(s2.p95, 530.0);
    EXPECT_DOUBLE_EQ(s2.p99, 546.0);
    // SLA2 budget is 2x the 150-cycle service time; latencies above 300
    // are the last five of 150, 200, ..., 550.
    EXPECT_DOUBLE_EQ(s2.violationFrac, 5.0 / 9.0);
    EXPECT_DOUBLE_EQ(s2.latency.min, 150.0);
    EXPECT_DOUBLE_EQ(s2.latency.max, 550.0);
    EXPECT_DOUBLE_EQ(s2.latency.q1, 250.0);
    EXPECT_DOUBLE_EQ(s2.latency.q3, 450.0);
    EXPECT_EQ(s2.latency.n, 9u);

    // Untouched tiers stay empty rather than inventing figures.
    EXPECT_EQ(rep.sla[static_cast<size_t>(SlaTier::Sla0)].requests, 0u);
    EXPECT_DOUBLE_EQ(rep.sla[static_cast<size_t>(SlaTier::Sla0)].p99, 0.0);

    // Pure function: a re-run fingerprints identically.
    EXPECT_EQ(rep.fingerprint(), simulateFleet(sc, calib).fingerprint());
}

TEST(FleetSim, PoissonArrivalsAreSeedDeterministic)
{
    Scenario sc = analyticScenario();
    sc.tasks[0].poisson = true;
    sc.tasks[0].end = 20000;
    std::vector<MachineCalibration> calib(1);
    calib[0].mech = "baseline";
    calib[0].cyclesPerOp = 1.0;
    calib[0].pjPerOp = 100.0;

    FleetReport a = simulateFleet(sc, calib);
    FleetReport b = simulateFleet(sc, calib);
    EXPECT_GT(a.totalRequests, 0u);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    // A different seed is a different arrival stream.
    sc.tasks[0].seed += 1;
    FleetReport c = simulateFleet(sc, calib);
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(FleetSim, UnpinnedRequestsPickTheFastestCompletion)
{
    Scenario sc = analyticScenario();
    sc.machines.push_back(sc.machines[0]);
    sc.machines[1].name = "slow";
    sc.tasks[0].machine.clear(); // unpinned: dispatcher's choice

    std::vector<MachineCalibration> calib(2);
    calib[0].mech = calib[1].mech = "baseline";
    calib[0].pjPerOp = calib[1].pjPerOp = 100.0;
    calib[0].cyclesPerOp = 1.0;
    calib[1].cyclesPerOp = 5.0;

    FleetReport rep = simulateFleet(sc, calib);
    EXPECT_EQ(rep.machines[0].requests, rep.totalRequests);
    EXPECT_EQ(rep.machines[1].requests, 0u);

    // Swap the speeds and every request migrates to the other class.
    std::swap(calib[0].cyclesPerOp, calib[1].cyclesPerOp);
    FleetReport swapped = simulateFleet(sc, calib);
    EXPECT_EQ(swapped.machines[0].requests, 0u);
    EXPECT_EQ(swapped.machines[1].requests, swapped.totalRequests);
}

TEST(FleetSimDeathTest, RunawayArrivalStreamsFailLoudly)
{
    Scenario sc = analyticScenario();
    sc.tasks[0].interArrival = 1;
    sc.tasks[0].end = 50'000'000;
    std::vector<MachineCalibration> calib(1);
    calib[0].cyclesPerOp = 1.0;
    EXPECT_EXIT(simulateFleet(sc, calib), ::testing::ExitedWithCode(1),
                "arrivals");
}

// --------------------------------------------------- end-to-end determinism

class FleetEndToEnd : public FleetTempDirTest
{};

TEST_F(FleetEndToEnd, FingerprintSurvivesThreadsAndCheckpointResume)
{
    Scenario sc = parseScenarioText(
        "name e2e\n"
        "machine class {\n"
        "    name node\n"
        "    mech baseline\n"
        "    cores 2\n"
        "}\n"
        "task class {\n"
        "    name load\n"
        "    machine node\n"
        "    inter-arrival 3000\n"
        "    expected-ops 5000\n"
        "    sla SLA1\n"
        "    seed 41\n"
        "    end 120000\n"
        "}\n",
        "test");

    ExperimentOptions opts;
    opts.threads = 1;
    opts.traceOps = 1200;
    opts.suiteLimit = 2;

    FleetReport serial = runFleetScenario(sc, opts);
    EXPECT_GT(serial.totalRequests, 0u);
    EXPECT_NE(serial.calibFingerprint, 0u);
    EXPECT_EQ(serial.resumedCells, 0u);

    // Calibration parallelism must not leak into the report.
    ExperimentOptions threaded = opts;
    threaded.threads = 2;
    EXPECT_EQ(runFleetScenario(sc, threaded).fingerprint(),
              serial.fingerprint());

    // A checkpointed calibration, then a warm resume of every cell: the
    // resumed report must fingerprint identically to the fresh one.
    ExperimentOptions ck = opts;
    ck.checkpointDir = dir;
    FleetReport fresh = runFleetScenario(sc, ck);
    EXPECT_EQ(fresh.fingerprint(), serial.fingerprint());
    FleetReport resumed = runFleetScenario(sc, ck);
    EXPECT_GT(resumed.resumedCells, 0u);
    EXPECT_EQ(resumed.fingerprint(), serial.fingerprint());
}

} // namespace
} // namespace constable
