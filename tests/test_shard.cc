/**
 * @file
 * Tests for the sharded multi-process sweep subsystem (sim/shard.hh):
 * lease-file claim semantics, manifest pinning, fork-coordinator runs that
 * are bit-identical to single-process runs, SIGKILL crash recovery through
 * mtime-based lease reclaim, and merge-time regeneration of corrupt cells
 * and cleanup of orphaned tmp files.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "common/faultio.hh"
#include "sim/experiment.hh"
#include "sim/shard.hh"
#include "trace/serialize.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

namespace fs = std::filesystem;

class ShardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string tmpl = fs::temp_directory_path() /
                           "constable-shard-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        ASSERT_NE(mkdtemp(buf.data()), nullptr);
        dir = buf.data();
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

/** A 2x3 synthetic sweep: cells are cheap deterministic functions of the
 *  index, which is all the shard layer requires of a cell. */
SweepManifest
syntheticManifest()
{
    SweepManifest m;
    m.experiment = "shard-test";
    m.suiteHash = 0x5eed;
    m.numRows = 2;
    m.numConfigs = 3;
    m.configNames = { "a", "b", "c" };
    return m;
}

RunResult
syntheticCell(size_t cell)
{
    RunResult r;
    r.cycles = 1000 + cell * 17;
    r.instructions = 100 + cell;
    r.stats.set("cell.index", static_cast<double>(cell));
    r.stats.set("cell.awkward", 0.1 + 0.2 * static_cast<double>(cell));
    return r;
}

ShardOptions
workerOpts(int shard_id, unsigned ttl_sec = 120)
{
    ShardOptions o;
    o.shards = 1;
    o.shardId = shard_id;
    o.leaseTtlSec = ttl_sec;
    o.pollMs = 20;
    o.batch.threads = 1;
    return o;
}

// ---------------------------------------------------------------- leases

TEST_F(ShardTest, LeaseAcquireIsExclusiveAndRoundTrips)
{
    std::string lp = dir + "/cell-0-0.rr.lease";
    LeaseRecord r;
    r.owner = processOwnerTag();
    r.pid = static_cast<uint64_t>(getpid());
    r.shardId = 3;
    r.acquiredUnixSec = 1234567;
    ASSERT_TRUE(tryAcquireLease(lp, r));
    EXPECT_FALSE(tryAcquireLease(lp, r)); // second claim loses

    LeaseRecord back;
    ASSERT_TRUE(readLease(lp, back));
    EXPECT_EQ(back.owner, r.owner);
    EXPECT_EQ(back.pid, r.pid);
    EXPECT_EQ(back.shardId, 3);
    EXPECT_EQ(back.acquiredUnixSec, 1234567u);

    double age = leaseAgeSeconds(lp);
    EXPECT_GE(age, 0.0);
    EXPECT_LT(age, 60.0);

    EXPECT_TRUE(removeLease(lp));
    EXPECT_LT(leaseAgeSeconds(lp), 0.0); // missing
    EXPECT_TRUE(tryAcquireLease(lp, r)); // claimable again
}

TEST_F(ShardTest, CorruptLeaseIsUnreadableButStillBlocksAndExpires)
{
    std::string lp = dir + "/x.lease";
    std::ofstream(lp) << "garbage";
    LeaseRecord back;
    EXPECT_FALSE(readLease(lp, back));
    LeaseRecord mine;
    EXPECT_FALSE(tryAcquireLease(lp, mine)); // existence is the claim
    // Backdate: expiry is mtime-based, so even junk leases age out.
    fs::last_write_time(lp, fs::file_time_type::clock::now() -
                                std::chrono::seconds(500));
    EXPECT_GE(leaseAgeSeconds(lp), 499.0);
}

// -------------------------------------------------------------- manifests

TEST_F(ShardTest, ManifestRoundTripsAndPinsTheSweep)
{
    SweepManifest m = syntheticManifest();
    writeOrVerifyManifest(dir, m);
    SweepManifest back;
    ASSERT_TRUE(loadManifest(dir + "/manifest.sweep", back));
    EXPECT_EQ(back, m);
    writeOrVerifyManifest(dir, m); // idempotent
}

TEST_F(ShardTest, ManifestMismatchIsFatal)
{
    SweepManifest m = syntheticManifest();
    writeOrVerifyManifest(dir, m);
    SweepManifest other = m;
    other.experiment = "different-sweep";
    EXPECT_EXIT(writeOrVerifyManifest(dir, other),
                ::testing::ExitedWithCode(1), "belongs to sweep");
}

// ------------------------------------------------------------ worker mode

TEST_F(ShardTest, SingleWorkerCompletesAndMergesTheMatrix)
{
    SweepManifest m = syntheticManifest();
    std::vector<RunResult> out;
    ShardOutcome oc =
        runShardedCells(dir, m, syntheticCell, out, workerOpts(0));
    EXPECT_EQ(oc.computed, 6u);
    EXPECT_EQ(oc.loaded, 6u);      // the final merge spans the matrix
    EXPECT_EQ(oc.preExisting, 0u); // nothing was resumed
    EXPECT_EQ(oc.reclaimed, 0u);
    ASSERT_EQ(out.size(), 6u);
    for (size_t c = 0; c < out.size(); ++c) {
        EXPECT_EQ(serializeRunResult(out[c]),
                  serializeRunResult(syntheticCell(c)));
        EXPECT_FALSE(fs::exists(cellLeasePath(dir, m, c))); // released
    }
}

TEST_F(ShardTest, TwoSequentialWorkersSplitViaCommittedCells)
{
    SweepManifest m = syntheticManifest();
    std::vector<RunResult> out1, out2;
    ShardOutcome a =
        runShardedCells(dir, m, syntheticCell, out1, workerOpts(0));
    ShardOutcome b =
        runShardedCells(dir, m, syntheticCell, out2, workerOpts(0));
    EXPECT_EQ(a.computed, 6u);
    EXPECT_EQ(a.preExisting, 0u);
    EXPECT_EQ(b.computed, 0u); // everything already committed
    EXPECT_EQ(b.loaded, 6u);
    EXPECT_EQ(b.preExisting, 6u); // a fully resumed sweep
    for (size_t c = 0; c < out1.size(); ++c) {
        EXPECT_EQ(serializeRunResult(out1[c]), serializeRunResult(out2[c]));
    }
}

// ------------------------------------------------------- crash recovery

/**
 * The ISSUE's crash drill: a worker claims a cell, commits some others,
 * and is SIGKILLed while holding a lease mid-compute. A surviving worker
 * with a short TTL must reclaim the orphaned lease, re-run the cell, and
 * produce a matrix bit-identical to an undisturbed single-worker run.
 */
TEST_F(ShardTest, SigkilledWorkerLeasesAreReclaimedAndCellsReRun)
{
    SweepManifest m = syntheticManifest();
    const size_t hangCell = 2;
    std::string marker = dir + "/hanging";

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Worker that wedges (lease held, cell never committed) on cell 2
        // after committing cells 0 and 1.
        auto compute = [&](size_t cell) -> RunResult {
            if (cell == hangCell) {
                std::ofstream(marker) << "hung";
                for (;;)
                    ::pause();
            }
            return syntheticCell(cell);
        };
        std::vector<RunResult> out;
        runShardedCells(dir, m, compute, out, workerOpts(0));
        ::_exit(0); // not reached
    }
    // Wait for the child to wedge, then kill it without any cleanup.
    for (int i = 0; i < 2000 && !fs::exists(marker); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(fs::exists(marker)) << "worker never reached the hang cell";
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    // The orphaned claim is still on disk.
    ASSERT_TRUE(fs::exists(cellLeasePath(dir, m, hangCell)));
    ASSERT_FALSE(fs::exists(cellFilePath(dir, m, hangCell)));

    // Survivor with a 1 s TTL: waits out the stale lease, reclaims it,
    // re-runs the dead worker's cell and finishes the rest.
    std::vector<RunResult> out;
    ShardOutcome oc = runShardedCells(dir, m, syntheticCell, out,
                                      workerOpts(0, /*ttl_sec=*/1));
    EXPECT_GE(oc.reclaimed, 1u);
    EXPECT_EQ(oc.computed, 4u); // hangCell + the three never-claimed cells
    EXPECT_EQ(oc.preExisting, 2u); // the dead worker's two committed cells
    EXPECT_EQ(oc.loaded, 6u);

    // Bit-identical to an undisturbed 1-shard run in a fresh directory.
    std::string refDir = dir + "/ref";
    fs::create_directories(refDir);
    std::vector<RunResult> ref;
    runShardedCells(refDir, m, syntheticCell, ref, workerOpts(0));
    ASSERT_EQ(out.size(), ref.size());
    for (size_t c = 0; c < out.size(); ++c) {
        EXPECT_EQ(serializeRunResult(out[c]), serializeRunResult(ref[c]));
    }
}

TEST_F(ShardTest, FreshLeaseOfALiveWorkerIsNotReclaimed)
{
    SweepManifest m = syntheticManifest();
    writeOrVerifyManifest(dir, m);
    // Another (live) worker holds cell 0: lease fresh, no cell file. A
    // second worker must compute everything else, then wait for the lease
    // to expire before touching cell 0 — with a generous TTL it would
    // block, so commit the cell from "the other worker" mid-wait.
    LeaseRecord other;
    other.owner = "other-host:99999";
    ASSERT_TRUE(tryAcquireLease(cellLeasePath(dir, m, 0), other));

    std::thread committer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        ASSERT_TRUE(saveRunResult(cellFilePath(dir, m, 0), syntheticCell(0),
                                  true));
        removeLease(cellLeasePath(dir, m, 0));
    });
    std::vector<RunResult> out;
    ShardOutcome oc = runShardedCells(dir, m, syntheticCell, out,
                                      workerOpts(1, /*ttl_sec=*/300));
    committer.join();
    EXPECT_EQ(oc.reclaimed, 0u);
    EXPECT_EQ(oc.computed, 5u); // all but the foreign-committed cell 0
    EXPECT_EQ(serializeRunResult(out[0]),
              serializeRunResult(syntheticCell(0)));
}

// ------------------------------------------------------ merge robustness

TEST_F(ShardTest, CorruptCellsAreRegeneratedAndStaleTmpFilesSwept)
{
    SweepManifest m = syntheticManifest();
    std::vector<RunResult> out;
    runShardedCells(dir, m, syntheticCell, out, workerOpts(0));

    // Mangle one committed cell (checksum now fails) and truncate another,
    // then drop an orphaned tmp file from a "killed writer", backdated
    // past the TTL, plus a fresh one that must survive.
    {
        std::fstream f(cellFilePath(dir, m, 1),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(10);
        f.put('\x7f');
    }
    fs::resize_file(cellFilePath(dir, m, 4), 5);
    std::string staleTmp = cellFilePath(dir, m, 3) + ".tmp.4242.dead.0";
    std::ofstream(staleTmp) << "partial";
    fs::last_write_time(staleTmp, fs::file_time_type::clock::now() -
                                      std::chrono::seconds(1000));
    std::string freshTmp = cellFilePath(dir, m, 5) + ".tmp.4242.live.0";
    std::ofstream(freshTmp) << "in-flight";

    std::vector<RunResult> merged;
    ShardOutcome oc;
    CellFn compute = syntheticCell;
    EXPECT_TRUE(mergeShardedCells(dir, m, &compute, merged,
                                  workerOpts(0), oc));
    EXPECT_EQ(oc.computed, 2u); // the two mangled cells
    EXPECT_EQ(oc.loaded, 4u);
    EXPECT_EQ(oc.staleTmpRemoved, 1u);
    EXPECT_FALSE(fs::exists(staleTmp));
    EXPECT_TRUE(fs::exists(freshTmp));
    for (size_t c = 0; c < merged.size(); ++c) {
        EXPECT_EQ(serializeRunResult(merged[c]),
                  serializeRunResult(syntheticCell(c)));
    }

    // Without a compute fallback the same damage makes the merge report
    // incompleteness instead of fatal()ing or returning garbage.
    fs::resize_file(cellFilePath(dir, m, 2), 5);
    std::vector<RunResult> partial;
    ShardOutcome oc2;
    EXPECT_FALSE(mergeShardedCells(dir, m, nullptr, partial, workerOpts(0),
                                   oc2));
    EXPECT_EQ(oc2.loaded, 5u);
}

// ---------------------------------------------------------------- scaling

/**
 * The subsystem's reason to exist: N workers must genuinely overlap. Cells
 * that sleep (rather than burn CPU) make the measurement independent of
 * how many cores this machine has, so the >= 2.5x-at-4-shards floor holds
 * even on a 1-CPU CI container; perf_regression --shard-scaling records
 * the CPU-bound counterpart (which needs >= 4 real cores to hit 2.5x).
 */
TEST_F(ShardTest, FourShardsOverlapForAtLeast2point5x)
{
    SweepManifest m;
    m.experiment = "scaling";
    m.suiteHash = 0xabc;
    m.numRows = 10;
    m.numConfigs = 4; // 40 cells x 20 ms
    m.configNames = { "a", "b", "c", "d" };
    auto compute = [](size_t cell) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return syntheticCell(cell);
    };
    auto timeRun = [&](unsigned shards, const std::string& sub) {
        std::string d = dir + "/" + sub;
        fs::create_directories(d);
        ShardOptions o;
        o.shards = shards;
        o.pollMs = 10;
        o.batch.threads = 1;
        std::vector<RunResult> out;
        auto t0 = std::chrono::steady_clock::now();
        runShardedCells(d, m, compute, out, o);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    double serial = timeRun(1, "s1");
    double sharded = timeRun(4, "s4");
    EXPECT_GE(serial, 40 * 0.020); // sanity: the sleeps really happened
    EXPECT_GE(serial / sharded, 2.5)
        << "serial " << serial << "s vs 4-shard " << sharded << "s";
}

// ------------------------------------------------------- lease heartbeats

/**
 * The ROADMAP lease-heartbeat drill: a cell that computes LONGER than the
 * lease TTL. The background mtime refresh must keep the held lease fresh
 * the whole time, so observers never see it as stale.
 */
TEST_F(ShardTest, HeartbeatKeepsLeaseFreshThroughSubComputeTtl)
{
    SweepManifest m = syntheticManifest();
    m.numRows = 1;
    m.numConfigs = 1;
    m.configNames = { "slow" };
    auto compute = [](size_t cell) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1600));
        return syntheticCell(cell);
    };

    ShardOutcome oc;
    std::vector<RunResult> out;
    std::thread worker([&] {
        oc = runShardedCells(dir, m, compute, out, workerOpts(0, 1));
    });

    // Sample the lease's age while the cell computes: with a 1 s TTL and a
    // ~250 ms heartbeat it must never look reclaimable.
    std::string lp = cellLeasePath(dir, m, 0);
    double maxAge = -1.0;
    for (int i = 0; i < 2000 && !fs::exists(lp); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(fs::exists(lp)) << "worker never claimed the cell";
    while (fs::exists(lp)) {
        maxAge = std::max(maxAge, leaseAgeSeconds(lp));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    worker.join();

    EXPECT_GE(maxAge, 0.0);
    EXPECT_LT(maxAge, 1.0) << "heartbeat failed to refresh the lease";
    EXPECT_EQ(oc.computed, 1u);
    EXPECT_EQ(oc.reclaimed, 0u);
}

/**
 * Two cooperating workers, cells slower than the TTL: without heartbeats
 * the idle worker would reclaim its sibling's in-progress lease and
 * benignly double-compute the cell; with them, every cell computes
 * exactly once.
 */
TEST_F(ShardTest, NoDoubleComputationWithSlowCellsAndShortTtl)
{
    SweepManifest m = syntheticManifest();
    m.numRows = 3;
    m.numConfigs = 1; // 3 cells x 1.5 s vs a 1 s TTL
    m.configNames = { "slow" };
    auto compute = [](size_t cell) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        return syntheticCell(cell);
    };
    auto opts = [&](int id) {
        ShardOptions o = workerOpts(id, /*ttl_sec=*/1);
        o.shards = 2;
        return o;
    };

    ShardOutcome a, b;
    std::vector<RunResult> outA, outB;
    std::thread wa([&] { a = runShardedCells(dir, m, compute, outA,
                                             opts(0)); });
    std::thread wb([&] { b = runShardedCells(dir, m, compute, outB,
                                             opts(1)); });
    wa.join();
    wb.join();

    EXPECT_EQ(a.reclaimed + b.reclaimed, 0u);
    EXPECT_EQ(a.computed + b.computed, 3u) << "a cell was double-computed";
    for (size_t c = 0; c < m.numCells(); ++c) {
        EXPECT_EQ(serializeRunResult(outA[c]),
                  serializeRunResult(syntheticCell(c)));
        EXPECT_EQ(serializeRunResult(outB[c]),
                  serializeRunResult(syntheticCell(c)));
    }
}

/**
 * The heartbeat-vs-reclaim race, from the losing side: while a worker
 * computes, its lease is usurped (as a TTL-expiry reclaim by another worker
 * would). The commit-time ownership check must detect the lost lease,
 * abandon the cell without committing over the usurper, and let the normal
 * claim loop reclaim + recompute it — exactly once, no double-commit.
 */
TEST_F(ShardTest, LostLeaseIsDetectedAtCommitAndCellAbandoned)
{
    SweepManifest m = syntheticManifest();
    m.numRows = 1;
    m.numConfigs = 1;
    m.configNames = { "contested" };
    std::string lp = cellLeasePath(dir, m, 0);

    unsigned invocations = 0;
    auto compute = [&](size_t cell) -> RunResult {
        if (++invocations == 1) {
            // Simulate a sibling reclaiming mid-compute: our lease file is
            // replaced by one bearing a foreign owner.
            removeLease(lp);
            LeaseRecord foreign;
            foreign.owner = "other-host:4242";
            EXPECT_TRUE(tryAcquireLease(lp, foreign));
        }
        return syntheticCell(cell);
    };

    std::vector<RunResult> out;
    ShardOutcome oc = runShardedCells(dir, m, compute, out,
                                      workerOpts(0, /*ttl_sec=*/1));
    EXPECT_EQ(oc.abandoned, 1u);   // first pass computed but never committed
    EXPECT_EQ(oc.computed, 1u);    // the reclaimed re-run is the only commit
    EXPECT_GE(oc.reclaimed, 1u);   // the foreign lease aged out
    EXPECT_EQ(invocations, 2u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(serializeRunResult(out[0]), serializeRunResult(syntheticCell(0)));
}

/**
 * Quarantine: a cell whose regenerated checkpoint keeps failing
 * verification (every write torn via the fault shim) must be moved into
 * <dir>/quarantine/ after opts.quarantineAfter attempts instead of being
 * rewritten forever — while the in-memory result keeps the matrix complete.
 */
TEST_F(ShardTest, PersistentlyCorruptCellIsQuarantined)
{
    SweepManifest m = syntheticManifest();
    std::vector<RunResult> out;
    runShardedCells(dir, m, syntheticCell, out, workerOpts(0));

    // Corrupt one committed cell, then make every rewrite tear.
    fs::resize_file(cellFilePath(dir, m, 2), 5);
    installFaultPlan("atomic.tmp.write:torn@999");

    std::vector<RunResult> merged;
    ShardOutcome oc;
    CellFn compute = syntheticCell;
    EXPECT_TRUE(mergeShardedCells(dir, m, &compute, merged, workerOpts(0),
                                  oc));
    clearFaultPlan();

    EXPECT_GE(oc.corruptCells, 1u);
    EXPECT_EQ(oc.quarantined, 1u);
    EXPECT_FALSE(fs::exists(cellFilePath(dir, m, 2))); // moved, not left
    bool inQuarantine = false;
    for (const auto& e : fs::directory_iterator(dir + "/quarantine"))
        inQuarantine |= e.path().filename().string().rfind("cell-", 0) == 0;
    EXPECT_TRUE(inQuarantine);
    ASSERT_EQ(merged.size(), m.numCells());
    for (size_t c = 0; c < merged.size(); ++c) {
        EXPECT_EQ(serializeRunResult(merged[c]),
                  serializeRunResult(syntheticCell(c)));
    }
}

/**
 * The lease-expiry skew guard: with injected clock skew larger than the
 * lease's raw age, the adjusted age goes negative. It must be clamped to 0
 * (fresh — never "instantly reclaimable") and counted, and the sweep must
 * still complete once the lease's real owner commits the cell.
 */
TEST_F(ShardTest, ClockSkewOnLeaseAgeIsClampedNotReclaimed)
{
    SweepManifest m = syntheticManifest();
    m.numRows = 1;
    m.numConfigs = 1;
    m.configNames = { "skewed" };
    writeOrVerifyManifest(dir, m);
    std::string lp = cellLeasePath(dir, m, 0);
    LeaseRecord other;
    other.owner = "other-host:99999";
    ASSERT_TRUE(tryAcquireLease(lp, other));

    installFaultPlan("lease.age:skew@400");
    std::thread committer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        ASSERT_TRUE(saveRunResult(cellFilePath(dir, m, 0), syntheticCell(0),
                                  true));
        removeLease(lp);
    });
    std::vector<RunResult> out;
    ShardOutcome oc = runShardedCells(dir, m, syntheticCell, out,
                                      workerOpts(0, /*ttl_sec=*/300));
    committer.join();
    clearFaultPlan();

    EXPECT_GE(oc.skewClamped, 1u); // raw age ~0 minus 400 s of skew
    EXPECT_EQ(oc.reclaimed, 0u);   // clamped-to-fresh is never reclaimed
    EXPECT_EQ(oc.computed, 0u);    // the real owner's commit was honored
    EXPECT_EQ(serializeRunResult(out[0]),
              serializeRunResult(syntheticCell(0)));
}

// -------------------------------------------------- cost-model scheduling

/** Shard-aware scheduling: with a prior BENCH_perf.json as cost model,
 *  workers claim the most expensive preset's cells first (rows ascending
 *  within a preset), not stride order. */
TEST_F(ShardTest, CostModelClaimsExpensiveCellsFirst)
{
    SweepManifest m = syntheticManifest();
    m.configNames = { "fast", "mid", "slow" }; // 2 rows x 3 configs
    std::string model = dir + "/BENCH_perf.json";
    std::ofstream(model)
        << "{\n  \"presets\": [\n"
           "    {\"name\":\"fast\", \"mops_per_sec\":100.0},\n"
           "    {\"name\":\"mid\", \"mops_per_sec\":10.0},\n"
           "    {\"name\":\"slow\", \"mops_per_sec\":1.0}\n  ]\n}\n";

    std::vector<size_t> computedOrder;
    auto compute = [&](size_t cell) {
        computedOrder.push_back(cell); // serial worker: no locking needed
        return syntheticCell(cell);
    };
    ShardOptions o = workerOpts(0);
    o.costModelPath = model;
    std::vector<RunResult> out;
    ShardOutcome oc = runShardedCells(dir, m, compute, out, o);
    EXPECT_EQ(oc.computed, 6u);

    // Cells are row * 3 + cfg; slow = cfg 2, mid = 1, fast = 0.
    std::vector<size_t> expected = { 2, 5, 1, 4, 0, 3 };
    EXPECT_EQ(computedOrder, expected);

    // An unknown preset name gets the mean known cost (neutral), and a
    // missing file falls back to stride order rather than failing.
    ShardOptions missing = workerOpts(0);
    missing.costModelPath = dir + "/no-such.json";
    std::string d2 = dir + "/fallback";
    fs::create_directories(d2);
    std::vector<size_t> fallbackOrder;
    auto compute2 = [&](size_t cell) {
        fallbackOrder.push_back(cell);
        return syntheticCell(cell);
    };
    runShardedCells(d2, m, compute2, out, missing);
    std::vector<size_t> stride = { 0, 1, 2, 3, 4, 5 };
    EXPECT_EQ(fallbackOrder, stride);
}

// --------------------------------------------------- experiment integration

ExperimentOptions
tinyOpts()
{
    ExperimentOptions o;
    o.threads = 1;
    o.traceOps = 1500;
    return o;
}

std::vector<WorkloadSpec>
twoSpecs()
{
    auto specs = smokeSuite(1500);
    specs.resize(2);
    return specs;
}

TEST_F(ShardTest, ForkCoordinatorMatchesSerialRunBitExactly)
{
    ExperimentOptions serial = tinyOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), serial);
    auto build = [&](const ExperimentOptions& o) {
        Experiment e("forked", suite, o);
        e.add("baseline", mechFor("baseline"))
            .add("constable", mechFor("constable"))
            .add("eves", mechFor("eves"));
        return e;
    };
    auto ref = build(serial).run();

    ExperimentOptions sharded = tinyOpts();
    sharded.shards = 3;
    sharded.checkpointDir = dir;
    auto res = build(sharded).run();
    EXPECT_EQ(res.resumedCells(), 0u); // fresh sweep: nothing was resumed

    ASSERT_EQ(res.matrix().results.size(), ref.matrix().results.size());
    for (size_t c = 0; c < ref.matrix().results.size(); ++c) {
        EXPECT_EQ(serializeRunResult(res.matrix().results[c]),
                  serializeRunResult(ref.matrix().results[c]));
    }
    EXPECT_EQ(res.totalCycles(), ref.totalCycles());
    EXPECT_EQ(res.matrix().aggregateStats().all(),
              ref.matrix().aggregateStats().all());

    // The checkpoint dir now holds the finished sweep: merge() assembles
    // the same matrix without simulating.
    auto merged = build(sharded).merge();
    EXPECT_EQ(merged.totalCycles(), ref.totalCycles());
    EXPECT_EQ(merged.resumedCells(), 6u);
}

TEST_F(ShardTest, ForkCoordinatorWithoutCheckpointDirUsesScratch)
{
    ExperimentOptions serial = tinyOpts();
    Suite suite = Suite::fromSpecs(twoSpecs(), serial);
    auto run = [&](const ExperimentOptions& o) {
        return Experiment("scratch", suite, o)
            .add("baseline", mechFor("baseline"))
            .run();
    };
    auto ref = run(serial);
    ExperimentOptions sharded = tinyOpts();
    sharded.shards = 2; // no checkpointDir: private scratch, auto-removed
    auto res = run(sharded);
    EXPECT_EQ(res.totalCycles(), ref.totalCycles());
}

TEST_F(ShardTest, WorkerModeRequiresCheckpointDir)
{
    ExperimentOptions o = tinyOpts();
    o.shards = 2;
    o.shardId = 1;
    Suite suite = Suite::fromSpecs(twoSpecs(), o);
    Experiment e("nockpt", suite, o);
    e.add("baseline", mechFor("baseline"));
    EXPECT_EXIT(e.run(), ::testing::ExitedWithCode(1),
                "needs --checkpoint-dir");
}

TEST_F(ShardTest, ShardIdBeyondShardCountIsFatal)
{
    ExperimentOptions o = tinyOpts();
    o.shards = 2;
    o.shardId = 2;
    EXPECT_EXIT(o.shard(), ::testing::ExitedWithCode(1), "out of range");
}

TEST(ShardOptionsParse, FlagsAndEnvRoundTrip)
{
    const char* argv[] = { "prog", "--shards=4", "--shard-id=2",
                           "--lease-ttl-sec=7", "--shard-poll-ms=5",
                           "--cost-model=perf.json" };
    auto opts = ExperimentOptions::fromArgs(
        static_cast<int>(std::size(argv)), const_cast<char**>(argv));
    EXPECT_EQ(opts.shards, 4u);
    EXPECT_EQ(opts.shardId, 2);
    EXPECT_EQ(opts.leaseTtlSec, 7u);
    EXPECT_EQ(opts.shardPollMs, 5u);
    EXPECT_FALSE(opts.printsReport()); // shard 2 stays silent
    ShardOptions s = opts.shard();
    EXPECT_EQ(s.shards, 4u);
    EXPECT_EQ(s.shardId, 2);
    EXPECT_EQ(s.costModelPath, "perf.json");

    setenv("CONSTABLE_SHARDS", "3", 1);
    setenv("CONSTABLE_SHARD_ID", "0", 1);
    auto env = ExperimentOptions::fromEnv();
    unsetenv("CONSTABLE_SHARDS");
    unsetenv("CONSTABLE_SHARD_ID");
    EXPECT_EQ(env.shards, 3u);
    EXPECT_EQ(env.shardId, 0);
    EXPECT_TRUE(env.printsReport()); // shard 0 is the reporter
}

TEST(ShardOptionsParseDeathTest, OutOfRangeValuesAreFatal)
{
    const char* argv[] = { "prog", "--shards=0" };
    EXPECT_EXIT(ExperimentOptions::fromArgs(2, const_cast<char**>(argv)),
                ::testing::ExitedWithCode(1), "must be in");
    EXPECT_EXIT(
        {
            setenv("CONSTABLE_SHARDS", "100000", 1);
            ExperimentOptions::fromEnv();
        },
        ::testing::ExitedWithCode(1), "CONSTABLE_SHARDS");
}

} // namespace
} // namespace constable
