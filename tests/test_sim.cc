/**
 * @file
 * Tests for the sim layer: the work-stealing ThreadPool, determinism of the
 * batch matrix runner across thread counts, and smoke coverage of every
 * mechanism registry preset in sim/mechanisms.hh.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "inspector/load_inspector.hh"
#include "sim/batch.hh"
#include "sim/mechanisms.hh"
#include "sim/runner.hh"
#include "trace/generator.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<unsigned>> hits(kN);
    pool.run(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<size_t> sum { 0 };
        pool.run(64, [&](size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 64u * 63u / 2);
    }
}

TEST(ThreadPool, NestedRunExecutesInline)
{
    ThreadPool pool(4);
    std::atomic<size_t> inner { 0 };
    pool.run(8, [&](size_t) {
        // A job that itself submits a batch must not deadlock.
        pool.run(4, [&](size_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 32u);
}

TEST(ThreadPool, ZeroAndOneSizedBatches)
{
    ThreadPool pool(4);
    unsigned calls = 0;
    pool.run(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0u);
    pool.run(1, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 1u);
}

TEST(ForEachJob, RngStreamsIndependentOfThreadCount)
{
    constexpr size_t kJobs = 64;
    auto draw = [&](unsigned threads) {
        std::vector<uint64_t> out(kJobs);
        BatchOptions opts;
        opts.threads = threads;
        opts.seed = 1234;
        forEachJob(kJobs,
                   [&](size_t job, Rng& rng) { out[job] = rng.next(); },
                   opts);
        return out;
    };
    auto serial = draw(1);
    EXPECT_EQ(serial, draw(4));
    EXPECT_EQ(serial, draw(7));
    // Distinct jobs must see distinct streams.
    EXPECT_NE(serial[0], serial[1]);
}

TEST(ForEachJob, SeedChangesStreams)
{
    std::vector<uint64_t> a(8), b(8);
    BatchOptions opts;
    opts.threads = 1;
    opts.seed = 1;
    forEachJob(8, [&](size_t j, Rng& r) { a[j] = r.next(); }, opts);
    opts.seed = 2;
    forEachJob(8, [&](size_t j, Rng& r) { b[j] = r.next(); }, opts);
    EXPECT_NE(a, b);
}

// ------------------------------------------------------- matrix determinism

/** Small two-trace fixture shared by the matrix tests. */
class MatrixDeterminism : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto specs = smokeSuite(1500);
        specs.resize(2);
        for (const auto& spec : specs)
            traces.push_back(generateTrace(spec));
        for (const auto& t : traces)
            tracePtrs.push_back(&t);
    }

    std::vector<Trace> traces;
    std::vector<const Trace*> tracePtrs;
};

TEST_F(MatrixDeterminism, ParallelMatchesSerialBitExactly)
{
    std::vector<SystemConfig> configs = {
        { CoreConfig{}, mechFor("baseline") },
        { CoreConfig{}, mechFor("constable") },
        { CoreConfig{}, mechFor("eves+constable") },
    };

    BatchOptions serial;
    serial.threads = 1;
    MatrixResult ref = runMatrix(tracePtrs, configs, {}, serial);

    for (unsigned threads : { 2u, 4u, 8u }) {
        BatchOptions par;
        par.threads = threads;
        MatrixResult got = runMatrix(tracePtrs, configs, {}, par);
        ASSERT_EQ(got.results.size(), ref.results.size());
        for (size_t i = 0; i < ref.results.size(); ++i) {
            EXPECT_EQ(got.results[i].cycles, ref.results[i].cycles)
                << "cell " << i << " @ " << threads << " threads";
            EXPECT_EQ(got.results[i].instructions,
                      ref.results[i].instructions);
        }
        // Aggregate stats merge in index order: the full named-counter map
        // must be bit-identical, not just the headline numbers.
        EXPECT_EQ(got.aggregateStats().all(), ref.aggregateStats().all())
            << "aggregate stats diverge @ " << threads << " threads";
        EXPECT_EQ(got.totalCycles(), ref.totalCycles());
    }
}

TEST_F(MatrixDeterminism, SmtMatrixParallelMatchesSerial)
{
    std::vector<std::pair<const Trace*, const Trace*>> pairs = {
        { &traces[0], &traces[1] },
        { &traces[1], &traces[0] },
    };
    std::vector<SystemConfig> configs = {
        { CoreConfig{}, mechFor("baseline") },
        { CoreConfig{}, mechFor("constable") },
    };

    BatchOptions serial;
    serial.threads = 1;
    MatrixResult ref = runSmtMatrix(pairs, configs, serial);

    BatchOptions par;
    par.threads = 4;
    MatrixResult got = runSmtMatrix(pairs, configs, par);
    ASSERT_EQ(got.results.size(), ref.results.size());
    for (size_t i = 0; i < ref.results.size(); ++i)
        EXPECT_EQ(got.results[i].cycles, ref.results[i].cycles);
    EXPECT_EQ(got.aggregateStats().all(), ref.aggregateStats().all());
}

TEST_F(MatrixDeterminism, RowDependentConfigsAndGsSets)
{
    std::vector<std::unordered_set<PC>> gsSets;
    for (const Trace& t : traces)
        gsSets.push_back(inspectLoads(t).globalStablePcs());
    std::vector<const std::unordered_set<PC>*> gs;
    for (const auto& s : gsSets)
        gs.push_back(&s);

    std::vector<ConfigFactory> configs = {
        [](size_t) { return SystemConfig { CoreConfig{}, mechFor("baseline") }; },
        [&](size_t row) {
            return SystemConfig { CoreConfig{},
                                  mechFor("eves+ideal-constable", &gsSets[row]) };
        },
    };

    BatchOptions serial;
    serial.threads = 1;
    MatrixResult ref = runMatrix(tracePtrs, configs, gs, serial);
    BatchOptions par;
    par.threads = 4;
    MatrixResult got = runMatrix(tracePtrs, configs, gs, par);
    EXPECT_EQ(got.aggregateStats().all(), ref.aggregateStats().all());
    // The oracle must not lose to the baseline on its own stable set.
    EXPECT_GE(speedup(ref.at(0, 1), ref.at(0, 0)), 0.9);
}

TEST(Matrix, SpeedupsOverShape)
{
    auto specs = smokeSuite(1000);
    specs.resize(1);
    Trace t = generateTrace(specs[0]);
    std::vector<SystemConfig> configs = {
        { CoreConfig{}, mechFor("baseline") },
        { CoreConfig{}, mechFor("constable") },
    };
    BatchOptions opts;
    opts.threads = 1;
    MatrixResult m = runMatrix({ &t }, configs, {}, opts);
    EXPECT_EQ(m.numRows, 1u);
    EXPECT_EQ(m.numConfigs, 2u);
    auto s = m.speedupsOver(1, 0);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_GT(s[0], 0.0);
}

// ------------------------------------------------------------ preset smoke

/** Every registry preset must run a trace to completion
 *  (runTrace panics on a golden-check failure, so surviving the run plus
 *  retiring every instruction is a real end-to-end check). */
TEST(Presets, EveryFactoryRunsCleanly)
{
    auto specs = smokeSuite(1200);
    specs.resize(1);
    Trace t = generateTrace(specs[0]);
    auto gs = inspectLoads(t).globalStablePcs();

    struct Case
    {
        const char* name;
        MechanismConfig mech;
    };
    std::vector<Case> cases = {
        { "baseline", mechFor("baseline") },
        { "constable", mechFor("constable") },
        { "eves", mechFor("eves") },
        { "eves+constable", mechFor("eves+constable") },
        { "elar", mechFor("elar") },
        { "rfp", mechFor("rfp") },
        { "elar+constable", mechFor("elar+constable") },
        { "rfp+constable", mechFor("rfp+constable") },
        { "constable-amt-i", mechFor("constable-amt-i") },
        { "mode-pcrel", mechFor("constable-pcrel") },
        { "mode-stackrel", mechFor("constable-stackrel") },
        { "mode-regrel", mechFor("constable-regrel") },
        { "ideal-lvp", mechFor("ideal-stable-lvp", &gs) },
        { "ideal-lvp-nofetch", mechFor("ideal-stable-lvp-nofetch", &gs) },
        { "ideal-constable", mechFor("ideal-constable", &gs) },
        { "eves+ideal-constable", mechFor("eves+ideal-constable", &gs) },
    };

    for (const Case& c : cases) {
        SCOPED_TRACE(c.name);
        SystemConfig cfg { CoreConfig{}, c.mech };
        RunResult r = runTrace(t, cfg, &gs);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_EQ(r.instructions, t.ops.size());
        EXPECT_FALSE(r.goldenCheckFailed);
    }
}

/** Presets must actually differ from the baseline where it matters. */
TEST(Presets, FlagsMatchIntent)
{
    EXPECT_FALSE(mechFor("baseline").constable.enabled);
    EXPECT_TRUE(mechFor("constable").constable.enabled);
    EXPECT_TRUE(mechFor("eves").eves);
    EXPECT_TRUE(mechFor("eves+constable").eves);
    EXPECT_TRUE(mechFor("eves+constable").constable.enabled);
    EXPECT_TRUE(mechFor("elar+constable").elar);
    EXPECT_TRUE(mechFor("rfp+constable").rfp);
    EXPECT_FALSE(mechFor("constable-amt-i").constable.cvBitPinning);
    EXPECT_TRUE(mechFor("constable").constable.cvBitPinning);
    MechanismConfig pcrel = mechFor("constable-pcrel");
    EXPECT_TRUE(pcrel.constable.eliminatePcRel);
    EXPECT_FALSE(pcrel.constable.eliminateStackRel);
    EXPECT_FALSE(pcrel.constable.eliminateRegRel);
}

} // namespace
} // namespace constable
