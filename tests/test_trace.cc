/**
 * @file
 * Tests for the trace substrate: memory image, program builder, generator
 * invariant, fragments and the workload suite.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "inspector/load_inspector.hh"
#include "trace/builder.hh"
#include "trace/generator.hh"
#include "workloads/suite.hh"

namespace constable {
namespace {

TEST(MemImage, ZeroInitialized)
{
    MemImage m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(MemImage, WriteReadRoundTrip)
{
    MemImage m;
    m.write(0x1000, 0xdeadbeefcafef00dull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafef00dull);
}

TEST(MemImage, LittleEndianSubword)
{
    MemImage m;
    m.write(0x2000, 0x0807060504030201ull, 8);
    EXPECT_EQ(m.read(0x2000, 1), 0x01u);
    EXPECT_EQ(m.read(0x2000, 2), 0x0201u);
    EXPECT_EQ(m.read(0x2000, 4), 0x04030201u);
    EXPECT_EQ(m.read(0x2004, 4), 0x08070605u);
}

TEST(MemImage, CrossPageAccess)
{
    MemImage m;
    Addr a = 4096 - 4;
    m.write(a, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(MemImage, PartialOverwrite)
{
    MemImage m;
    m.write(0x100, 0xffffffffffffffffull, 8);
    m.write(0x102, 0x00, 1);
    EXPECT_EQ(m.read(0x100, 8), 0xffffffffff00ffffull);
}

TEST(Builder, RegisterValueTracking)
{
    ProgramBuilder b(1, 16);
    b.loadImm(0x100, RAX, 1234);
    EXPECT_EQ(b.regVal(RAX), 1234u);
    b.move(0x104, RCX, RAX);
    EXPECT_EQ(b.regVal(RCX), 1234u);
    b.zero(0x108, RCX);
    EXPECT_EQ(b.regVal(RCX), 0u);
    EXPECT_EQ(b.numOps(), 3u);
}

TEST(Builder, LoadReadsImageAndWritesDst)
{
    ProgramBuilder b(1, 16);
    b.mem().write(0x9000, 777, 8);
    uint64_t v = b.load(0x100, RDX, AddrMode::PcRel, 0x9000);
    EXPECT_EQ(v, 777u);
    EXPECT_EQ(b.regVal(RDX), 777u);
}

TEST(Builder, StoreUpdatesImage)
{
    ProgramBuilder b(1, 16);
    b.store(0x100, AddrMode::PcRel, 0x9000, 42);
    EXPECT_EQ(b.mem().read(0x9000, 8), 42u);
}

TEST(Builder, StackAdjMovesRsp)
{
    ProgramBuilder b(1, 16);
    uint64_t before = b.regVal(RSP);
    b.stackAdj(0x100, -64);
    EXPECT_EQ(b.regVal(RSP), before - 64);
    b.stackAdj(0x104, 64);
    EXPECT_EQ(b.regVal(RSP), before);
}

TEST(Builder, PersistentRegPoolExhausts16)
{
    ProgramBuilder b(1, 16);
    unsigned got = 0;
    while (b.allocPersistentReg() != kNoReg)
        ++got;
    EXPECT_EQ(got, 9u); // RBX,R12-R15,RSI,RDI,R8,R9
}

TEST(Builder, PersistentRegPoolLargerWithApx)
{
    ProgramBuilder b(1, 32);
    unsigned got = 0;
    while (b.allocPersistentReg() != kNoReg)
        ++got;
    EXPECT_EQ(got, 25u);
}

TEST(Builder, SnoopRecorded)
{
    ProgramBuilder b(1, 16);
    b.nop(0x100);
    b.snoopHere(0xabc0);
    b.nop(0x104);
    Trace t = b.finish("t", "Client");
    ASSERT_EQ(t.snoops.size(), 1u);
    EXPECT_EQ(t.snoops[0].beforeSeq, 1u);
    EXPECT_EQ(t.snoops[0].addr, 0xabc0u);
}

TEST(Validate, CleanTracePasses)
{
    ProgramBuilder b(1, 16);
    b.loadImm(0x100, RBX, 0x5000);
    for (int i = 0; i < 5; ++i)
        b.load(0x104, RAX, AddrMode::RegRel, 0x5000, RBX);
    Trace t = b.finish("t", "Client");
    EXPECT_TRUE(validateTrace(t).empty());
}

TEST(Validate, AddressChangeWithoutWriteFlagged)
{
    // Hand-build a violating trace: same load PC, two different addresses,
    // no source-register write in between.
    Trace t;
    MicroOp ld;
    ld.pc = 0x100;
    ld.cls = OpClass::Load;
    ld.addrMode = AddrMode::RegRel;
    ld.src[0] = RBX;
    ld.dst = RAX;
    ld.effAddr = 0x5000;
    t.ops.push_back(ld);
    ld.effAddr = 0x6000;
    t.ops.push_back(ld);
    EXPECT_FALSE(validateTrace(t).empty());
}

TEST(Validate, AddressChangeWithWriteAccepted)
{
    Trace t;
    MicroOp ld;
    ld.pc = 0x100;
    ld.cls = OpClass::Load;
    ld.addrMode = AddrMode::RegRel;
    ld.src[0] = RBX;
    ld.dst = RAX;
    ld.effAddr = 0x5000;
    t.ops.push_back(ld);
    MicroOp wr;
    wr.pc = 0x104;
    wr.cls = OpClass::Alu;
    wr.dst = RBX;
    t.ops.push_back(wr);
    ld.effAddr = 0x6000;
    t.ops.push_back(ld);
    EXPECT_TRUE(validateTrace(t).empty());
}

TEST(Validate, PointerChaseSelfWriteAccepted)
{
    // dst == src: the load's own write counts as a source write.
    Trace t;
    MicroOp ld;
    ld.pc = 0x100;
    ld.cls = OpClass::Load;
    ld.addrMode = AddrMode::RegRel;
    ld.src[0] = RBX;
    ld.dst = RBX;
    ld.effAddr = 0x5000;
    t.ops.push_back(ld);
    ld.effAddr = 0x6000;
    t.ops.push_back(ld);
    EXPECT_TRUE(validateTrace(t).empty());
}

// ------------------------------------------------------------- generator

class GeneratorCategory : public ::testing::TestWithParam<size_t>
{
};

TEST_P(GeneratorCategory, TraceIsValidAndSized)
{
    auto specs = smokeSuite(20'000);
    Trace t = generateTrace(specs[GetParam()]);
    EXPECT_GE(t.size(), 20'000u);
    EXPECT_LT(t.size(), 25'000u);
    EXPECT_TRUE(validateTrace(t).empty()) << t.name;
    EXPECT_GT(t.countClass(OpClass::Load), t.size() / 10);
}

TEST_P(GeneratorCategory, Deterministic)
{
    auto specs = smokeSuite(5'000);
    Trace a = generateTrace(specs[GetParam()]);
    Trace b = generateTrace(specs[GetParam()]);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.ops[i].pc, b.ops[i].pc);
        EXPECT_EQ(a.ops[i].effAddr, b.ops[i].effAddr);
        EXPECT_EQ(a.ops[i].value, b.ops[i].value);
    }
}

TEST_P(GeneratorCategory, HasGlobalStableLoads)
{
    auto specs = smokeSuite(30'000);
    Trace t = generateTrace(specs[GetParam()]);
    LoadInspectorResult r = inspectLoads(t);
    EXPECT_GT(r.globalStableFrac(), 0.05) << t.name;
    EXPECT_LT(r.globalStableFrac(), 0.90) << t.name;
}

INSTANTIATE_TEST_SUITE_P(AllCategories, GeneratorCategory,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Suite, Has90TracesWithPaperCounts)
{
    auto suite = paperSuite(1'000);
    ASSERT_EQ(suite.size(), 90u);
    std::unordered_map<std::string, int> counts;
    for (const auto& s : suite)
        ++counts[s.category];
    EXPECT_EQ(counts["Client"], 22);
    EXPECT_EQ(counts["Enterprise"], 14);
    EXPECT_EQ(counts["FSPEC17"], 29);
    EXPECT_EQ(counts["ISPEC17"], 11);
    EXPECT_EQ(counts["Server"], 14);
}

TEST(Suite, NamesUnique)
{
    auto suite = paperSuite(1'000);
    std::unordered_set<std::string> names;
    for (const auto& s : suite)
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
}

TEST(Suite, SmtPairsCoverHalf)
{
    auto pairs = smtPairs(90);
    EXPECT_EQ(pairs.size(), 45u);
    std::unordered_set<size_t> used;
    for (auto [a, b] : pairs) {
        EXPECT_TRUE(used.insert(a).second);
        EXPECT_TRUE(used.insert(b).second);
        EXPECT_LT(a, 90u);
        EXPECT_LT(b, 90u);
    }
}

TEST(Suite, ApxModeGeneratesFewerLoads)
{
    auto specs = smokeSuite(30'000);
    WorkloadSpec s = specs[0];
    Trace base = generateTrace(s);
    s.numArchRegs = 32;
    Trace apx = generateTrace(s);
    double lb = static_cast<double>(base.countClass(OpClass::Load)) /
                static_cast<double>(base.size());
    double la = static_cast<double>(apx.countClass(OpClass::Load)) /
                static_cast<double>(apx.size());
    EXPECT_LT(la, lb); // appendix B: APX reduces dynamic loads
}

TEST(Suite, SnoopTracesHaveSnoops)
{
    auto suite = paperSuite(20'000);
    size_t withSnoops = 0;
    for (const auto& s : suite) {
        if (s.snoopPerKilOp > 0) {
            Trace t = generateTrace(s);
            EXPECT_FALSE(t.snoops.empty()) << s.name;
            ++withSnoops;
            if (withSnoops >= 2)
                break;
        }
    }
    EXPECT_GE(withSnoops, 1u);
}

} // namespace
} // namespace constable
