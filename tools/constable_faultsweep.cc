/**
 * @file
 * Fault-injection sweep driver: the executable proof that every recovery
 * path advertised by the checkpoint/lease/cache tiers actually works.
 *
 * The driver enumerates the compiled-in fault-point registry
 * (common/faultio.hh) and, for every (point, action) pair the point's
 * kind admits, re-launches itself as a child with that single fault
 * armed via CONSTABLE_FAULT_PLAN:
 *
 *  - "read"/"sync" points take eio and crash,
 *  - "write" points take eio, torn and crash,
 *  - "clock" points take skew.
 *
 * Child modes run a real workload: `--run-sweep` executes a worker-mode
 * sharded experiment (lease claims, heartbeats, manifest, per-cell
 * checkpoints) and `--run-fleet` a fleet scenario with calibration-cache
 * persistence. Each prints its final matrix/report fingerprint and the
 * armed clause's hit counts.
 *
 * A pair PASSES when the child's fingerprint is bit-identical to the
 * fault-free baseline — crash points included, after re-launching into
 * the same checkpoint + crash-marker directories — or when every launch
 * exited loudly nonzero (a detected, reported failure). It FAILS on a
 * silent fingerprint mismatch, or when the armed fault never fired (a
 * registry entry whose call site has gone dead).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/faultio.hh"
#include "common/logging.hh"
#include "common/obs.hh"
#include "serve/fleet.hh"
#include "sim/experiment.hh"
#include "sim/scenario.hh"
#include "sim/shard.hh"
#include "workloads/suite.hh"

#if defined(__unix__) || defined(__APPLE__)

#include <chrono>
#include <fcntl.h>
#include <filesystem>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

using namespace constable;
namespace fs = std::filesystem;

constexpr size_t kTraceOps = 1500;
constexpr unsigned kLaunchesPerRun = 3;

/** Common child knobs: small, fast, and through the full machinery. */
ExperimentOptions
childOptions()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    opts.threads = 2;
    opts.traceOps = kTraceOps;
    opts.suiteLimit = 3;
    opts.costModelPath.clear();
    // Ambient CONSTABLE_TRACE_OUT/METRICS_OUT must not leak into the
    // crash-and-relaunch children: dozens of processes would race their
    // atexit writers on the same two files. Fingerprint comparison is the
    // observable here, not traces.
    opts.traceOutPath.clear();
    opts.metricsOutPath.clear();
    obsReset();
    opts.leaseTtlSec = 2;
    opts.shardPollMs = 50;
    return opts;
}

void
printChildResult(uint64_t fingerprint)
{
    std::printf("result fingerprint: %016llx\n",
                static_cast<unsigned long long>(fingerprint));
    for (const auto& [point, hits] : faultArmedHits()) {
        std::printf("fault hits: %s %llu\n", point.c_str(),
                    static_cast<unsigned long long>(hits));
    }
    std::fflush(stdout);
}

/**
 * Worker-mode sharded sweep: one process claims every cell itself, so
 * lease acquire/read/release/heartbeat, manifest I/O and cell commits
 * all fire in this process (hit counts stay observable) and an injected
 * crash kills the only worker — recovery is the re-launch resuming from
 * the shared checkpoint directory. A stale foreign lease planted on cell
 * 0 forces the reclaim path (and its skew-guarded age read) every run.
 */
int
runSweepChild()
{
    ExperimentOptions opts = childOptions();
    opts.shards = 2;
    opts.shardId = 0;
    if (opts.checkpointDir.empty())
        fatal("--run-sweep needs CONSTABLE_CHECKPOINT_DIR");

    auto specs = smokeSuite(opts.traceOps);
    if (specs.size() > opts.suiteLimit)
        specs.resize(opts.suiteLimit);
    Suite suite = Suite::fromSpecs(std::move(specs), opts,
                                   /*inspect=*/true);
    Experiment exp("faultsweep", suite, opts);
    exp.addPreset("baseline");
    exp.addPreset("constable");

    SweepManifest manifest;
    std::string dir = exp.checkpointDirFor(opts.checkpointDir,
                                           /*smt=*/false, manifest,
                                           suite.size());
    std::error_code ec;
    fs::create_directories(dir, ec);
    LeaseRecord foreign;
    foreign.owner = "faultsweep-foreign";
    foreign.shardId = 1;
    std::string lp = cellLeasePath(dir, manifest, 0);
    if (tryAcquireLease(lp, foreign)) {
        // Backdate far past both the TTL (2 s) and any injected skew
        // (default 300 s), so the reclaim fires even under "skew".
        fs::last_write_time(
            lp, fs::file_time_type::clock::now() - std::chrono::seconds(500),
            ec);
    }

    ExperimentResult res = exp.run();
    printChildResult(resultFingerprint(res.matrix()));
    return 0;
}

/** Fleet scenario with calibration-cache persistence; the calibration
 *  sweep runs through the plain (non-sharded) checkpoint/resume path. */
int
runFleetChild()
{
    ExperimentOptions opts = childOptions();
    if (opts.checkpointDir.empty())
        fatal("--run-fleet needs CONSTABLE_CHECKPOINT_DIR");

    Scenario sc;
    sc.name = "faultsweep-fleet";
    sc.traceOps = kTraceOps;
    sc.suiteLimit = 2;
    FleetMachineClass m;
    m.name = "m0";
    m.mech = "baseline";
    m.cores = 2;
    m.replicas = 1;
    m.idlePjPerCycle = 1;
    sc.machines.push_back(m);
    FleetTaskClass t;
    t.name = "t0";
    t.interArrival = 5000;
    t.expectedOps = 2000;
    t.start = 0;
    t.end = 200'000;
    t.poisson = false;
    t.sla = SlaTier::Sla1;
    t.seed = 7;
    sc.tasks.push_back(t);

    FleetReport rep = runFleetScenario(sc, opts);
    printChildResult(rep.fingerprint());
    return 0;
}

// ----------------------------------------------------------- driver side

/** The actions a point's kind admits. */
std::vector<std::string>
actionsFor(const std::string& kind)
{
    if (kind == "write")
        return { "eio", "torn", "crash" };
    if (kind == "clock")
        return { "skew" };
    return { "eio", "crash" }; // read, sync
}

/** Path of this executable for the re-exec (argv[0] may be PATH-bare). */
std::string
selfPath(const char* argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

std::string
makeScratchDir()
{
    std::string tmpl =
        (fs::temp_directory_path() / "constable-faultsweep-XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (!mkdtemp(buf.data()))
        fatal("cannot create scratch directory from template " + tmpl);
    return buf.data();
}

/** 16-hex-digit fingerprint parse (the linter bans the strtoull family
 *  repo-wide; a fixed-format log token needs no general parser). */
uint64_t
parseHexToken(const char* s)
{
    uint64_t v = 0;
    for (int i = 0; i < 16 && s[i]; ++i) {
        char c = s[i];
        int d = c >= '0' && c <= '9'   ? c - '0'
                : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                       : -1;
        if (d < 0)
            break;
        v = v * 16 + static_cast<uint64_t>(d);
    }
    return v;
}

uint64_t
parseDecToken(const char* s)
{
    uint64_t v = 0;
    while (*s >= '0' && *s <= '9')
        v = v * 10 + static_cast<uint64_t>(*s++ - '0');
    return v;
}

struct LaunchResult
{
    int exitCode = -1;    ///< child exit code; -1 on signal death
    uint64_t fingerprint = 0;
    bool haveFingerprint = false;
    uint64_t armedHits = 0; ///< summed hits of the armed point
};

/** Fork + exec one child run, stdout+stderr appended to @p logPath. */
LaunchResult
launchChild(const char* self, const char* mode, const std::string& plan,
            const std::string& point, const std::string& markerDir,
            const std::string& ckptDir, const std::string& traceDir,
            const std::string& logPath)
{
    LaunchResult r;
    pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork() failed");
    if (pid == 0) {
        if (plan.empty())
            ::unsetenv("CONSTABLE_FAULT_PLAN");
        else
            ::setenv("CONSTABLE_FAULT_PLAN", plan.c_str(), 1);
        ::setenv("CONSTABLE_FAULT_MARKER_DIR", markerDir.c_str(), 1);
        ::setenv("CONSTABLE_CHECKPOINT_DIR", ckptDir.c_str(), 1);
        ::setenv("CONSTABLE_TRACE_DIR", traceDir.c_str(), 1);
        int fd = ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                        0644);
        if (fd >= 0) {
            ::dup2(fd, 1);
            ::dup2(fd, 2);
            ::close(fd);
        }
        // A fresh exec, not a fork-continue: the env fault plan must be
        // re-armed by static init exactly as in a real process launch.
        ::execl(self, self, mode, static_cast<char*>(nullptr));
        std::fprintf(stderr, "execl('%s') failed\n", self);
        ::_exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0)
        fatal("waitpid() failed");
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

    std::string log;
    if (readFileText(logPath, log)) {
        size_t at = log.rfind("result fingerprint: ");
        if (at != std::string::npos) {
            r.haveFingerprint = true;
            r.fingerprint = parseHexToken(
                log.c_str() + at + std::strlen("result fingerprint: "));
        }
        std::string tag = "fault hits: " + point + " ";
        for (size_t pos = log.find(tag); pos != std::string::npos;
             pos = log.find(tag, pos + 1)) {
            r.armedHits +=
                parseDecToken(log.c_str() + pos + tag.size());
        }
    }
    return r;
}

int
runDriver(const char* self)
{
    std::string scratch = makeScratchDir();
    std::string warmTraces = scratch + "/traces";
    fs::create_directories(warmTraces);

    // Fault-free baselines, one per child kind. The sweep baseline also
    // warms the shared trace cache.
    uint64_t baseFp[2] = { 0, 0 };
    const char* modes[2] = { "--run-sweep", "--run-fleet" };
    for (int k = 0; k < 2; ++k) {
        std::string dir = scratch + std::string("/base") + modes[k][6];
        fs::create_directories(dir);
        LaunchResult r =
            launchChild(self, modes[k], "", "", dir + "/markers", dir,
                        warmTraces, dir + "/log.txt");
        if (r.exitCode != 0 || !r.haveFingerprint) {
            fatal(std::string("fault-free baseline run (") + modes[k] +
                  ") failed; see " + dir + "/log.txt");
        }
        baseFp[k] = r.fingerprint;
        std::printf("baseline %-12s fingerprint %016llx\n", modes[k] + 2,
                    static_cast<unsigned long long>(baseFp[k]));
    }

    size_t pass = 0, fail = 0;
    std::vector<std::string> failures;
    for (const FaultPointInfo& p : faultPointTable()) {
        bool fleetPoint = std::strncmp(p.name, "fleet.", 6) == 0;
        const char* mode = fleetPoint ? "--run-fleet" : "--run-sweep";
        uint64_t want = baseFp[fleetPoint ? 1 : 0];
        for (const std::string& action : actionsFor(p.kind)) {
            std::string plan = std::string(p.name) + ":" + action + "@1";
            if (action == "skew")
                plan = std::string(p.name) + ":skew@400";
            std::string runDir = scratch + "/run-" +
                                 sanitizeFileName(plan);
            std::string markerDir = runDir + "/markers";
            std::string ckptDir = runDir + "/ckpt";
            fs::create_directories(markerDir);
            fs::create_directories(ckptDir);
            // A write fault must see a write: arm trace.cache.write
            // against a cold cache so saveTrace actually runs.
            std::string traceDir =
                std::strncmp(p.name, "trace.cache", 11) == 0 &&
                        action != "eio"
                    ? runDir + "/traces"
                    : warmTraces;
            if (std::strcmp(p.name, "trace.cache.write") == 0)
                traceDir = runDir + "/traces";
            fs::create_directories(traceDir);

            bool crashed = false, loud = false, silent = false;
            bool recovered = false;
            uint64_t hits = 0;
            for (unsigned launch = 0; launch < kLaunchesPerRun; ++launch) {
                LaunchResult r = launchChild(
                    self, mode, plan, p.name, markerDir, ckptDir, traceDir,
                    runDir + "/log.txt");
                if (r.exitCode == kFaultCrashExitCode) {
                    crashed = true;
                    continue; // relaunch into the same directories
                }
                hits = r.armedHits;
                if (r.exitCode == 0 && r.haveFingerprint) {
                    recovered = r.fingerprint == want;
                    silent = !recovered;
                } else {
                    loud = true; // detected + reported, not silent
                }
                break;
            }

            bool exercised = crashed || hits > 0;
            bool ok = exercised && !silent && (recovered || loud);
            if (crashed && !recovered && !loud)
                ok = false; // crash-looped through every launch
            std::printf("%-28s %-6s %s%s\n", p.name, action.c_str(),
                        ok ? "PASS" : "FAIL",
                        !exercised        ? " (fault never fired)"
                        : silent          ? " (silent fingerprint mismatch)"
                        : loud            ? " (loud nonzero exit)"
                        : crashed         ? " (crash + relaunch recovered)"
                                          : "");
            if (ok) {
                ++pass;
            } else {
                ++fail;
                failures.push_back(plan + " — see " + runDir + "/log.txt");
            }
        }
    }

    std::printf("faultsweep: %zu pass, %zu fail over %zu fault points\n",
                pass, fail, faultPointTable().size());
    for (const std::string& f : failures)
        std::printf("  FAIL %s\n", f.c_str());
    if (fail == 0) {
        std::error_code ec;
        fs::remove_all(scratch, ec);
    } else {
        std::printf("scratch kept at %s\n", scratch.c_str());
    }
    return fail == 0 ? 0 : 1;
}

void
printList()
{
    for (const FaultPointInfo& p : faultPointTable())
        std::printf("%-28s %-6s %s\n", p.name, p.kind, p.site);
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        printList();
        return 0;
    }
    if (argc > 1 && std::strcmp(argv[1], "--run-sweep") == 0)
        return runSweepChild();
    if (argc > 1 && std::strcmp(argv[1], "--run-fleet") == 0)
        return runFleetChild();
    if (argc > 1) {
        std::fprintf(stderr,
                     "usage: %s [--list | --run-sweep | --run-fleet]\n",
                     argv[0]);
        return 2;
    }
    return runDriver(selfPath(argv[0]).c_str());
}

#else // !POSIX

int
main(int argc, char** argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const auto& p : constable::faultPointTable())
            std::printf("%-28s %-6s %s\n", p.name, p.kind, p.site);
        return 0;
    }
    std::fprintf(stderr, "constable-faultsweep: fork/exec sweep is "
                         "POSIX-only on this build\n");
    return 0;
}

#endif
